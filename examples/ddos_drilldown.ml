(** DDoS drill-down: the paper's §1 motivating workflow for on-demand
    queries.

    Run with: [dune exec examples/ddos_drilldown.exe]

    A standing query (Q5, UDP-DDoS victims) runs continuously.  When it
    fires, the operator reacts by installing a {e refined} query at
    runtime — zooming in on the victim to enumerate attack sources —
    and, once mitigation is in place, updates it again to a watch-list
    query with a lower threshold.  All three operations are table-rule
    updates that finish in milliseconds; a Sonata-style system would
    reboot the switch (seconds of outage) for each. *)

open Newton

let pct a b = 100.0 *. float_of_int a /. float_of_int b

let () =
  print_endline "== DDoS detection and drill-down ==\n";
  let victim_ip = Packet.ip_of_string "10.200.0.5" in
  let trace =
    Trace.generate
      ~attacks:
        [ Attack.Udp_ddos { victim = victim_ip; attackers = 80; pkts_per_attacker = 15 } ]
      ~seed:7
      (Trace_profile.with_flows Trace_profile.caida_like 2500)
  in
  let device = Device.create () in

  (* Phase 1: standing coarse detection. *)
  let _, lat = Device.add_query device (Catalog.q5 ~th:35 ()) in
  Printf.printf "Phase 1: standing Q5 (UDP DDoS victims) installed in %.1f ms\n" (lat *. 1e3);
  Device.process_trace device trace;
  let victims =
    Device.reports device
    |> List.filter (fun r -> r.Report.query_id = 5)
    |> List.map (fun r -> r.Report.keys.(0))
    |> List.sort_uniq compare
  in
  (match victims with
  | [] -> failwith "no attack detected — trace generation changed?"
  | vs ->
      Printf.printf "  detected %d victim(s): %s\n" (List.length vs)
        (String.concat ", " (List.map Packet.ip_to_string vs)));
  let victim = List.hd victims in
  assert (victim = victim_ip);

  (* Phase 2: drill down on the victim to enumerate sources.  This is a
     brand-new query installed into the running switch. *)
  let drill =
    Query.chain ~id:50 ~name:"ddos_sources"
      ~description:"sources sending UDP to the victim"
      [ Query.Filter
          [ Query.field_is Field.Proto Field.Protocol.udp;
            Query.field_is Field.Dst_ip victim ];
        Query.Map (Query.keys [ Field.Src_ip ]);
        Query.Reduce { keys = Query.keys [ Field.Src_ip ]; agg = Query.Count };
        Query.Filter [ Query.result_gt 3 ];
        Query.Map (Query.keys [ Field.Src_ip ]) ]
  in
  let handle, lat = Device.add_query device drill in
  Printf.printf "\nPhase 2: drill-down query installed in %.1f ms (no reboot)\n" (lat *. 1e3);
  Device.process_trace device trace;
  let sources =
    Device.reports device
    |> List.filter (fun r -> r.Report.query_id = 50)
    |> List.map (fun r -> r.Report.keys.(0))
    |> List.sort_uniq compare
  in
  Printf.printf "  enumerated %d attack sources, e.g. %s\n" (List.length sources)
    (String.concat ", "
       (List.filteri (fun i _ -> i < 3) sources |> List.map Packet.ip_to_string));

  (* Phase 3: after mitigation, swap the drill-down for a cheap
     watch-list query (update = remove + install, still milliseconds). *)
  let watch =
    Query.chain ~id:51 ~name:"victim_watch"
      ~description:"low-rate watch on the victim after mitigation"
      [ Query.Filter
          [ Query.field_is Field.Proto Field.Protocol.udp;
            Query.field_is Field.Dst_ip victim ];
        Query.Map (Query.keys [ Field.Src_ip ]);
        Query.Reduce { keys = Query.keys [ Field.Src_ip ]; agg = Query.Count };
        Query.Filter [ Query.result_gt 100 ];
        Query.Map (Query.keys [ Field.Src_ip ]) ]
  in
  (match Device.update_query device handle watch with
  | Some (_, lat) -> Printf.printf "\nPhase 3: updated to watch-list in %.1f ms\n" (lat *. 1e3)
  | None -> assert false);

  (* Contrast with Sonata: every one of those three operations would
     have rebooted the pipeline. *)
  let sonata = Newton_baselines.Sonata.create () in
  let outage =
    Newton_baselines.Sonata.install_query sonata (Compiler.compile (Catalog.q5 ()))
  in
  Printf.printf
    "\nFor contrast — the same install on Sonata: %.1f s forwarding outage\n" outage;
  Printf.printf "Newton total outage across all operations: %.0f s\n"
    (Newton_dataplane.Switch.outage_time (Device.switch device));
  Printf.printf "Total monitoring overhead: %.3f%% of packets\n"
    (pct (Device.message_count device) (2 * Trace.length trace))
