(** Network-wide monitoring: resilient placement on a fat-tree and
    cross-switch query execution on the paper's chain testbed.

    Run with: [dune exec examples/network_wide.exe]

    Part 1 deploys Q4 (port-scan detection) across an 8-ary fat-tree
    with Algorithm 2: every slice is placed on {e all} switches at the
    right depth from the traffic's edge switches, so when a core link
    fails and ECMP reroutes traffic, the rerouted path already carries
    the right rules — monitoring continues with no controller
    involvement.

    Part 2 reproduces the paper's Fig. 8 setting: a 3-switch chain where
    one query is sliced over the path (CQE), results travelling in the
    12-byte SP header, reporting once per path instead of once per
    switch. *)

open Newton
open Newton_controller

let scan_trace =
  lazy
    (Trace.generate
       ~attacks:
         [ Attack.Port_scan
             { scanner = Packet.ip_of_string "10.200.0.2";
               victim = Packet.ip_of_string "10.200.0.3";
               ports = 800 } ]
       ~seed:11
       (Trace_profile.with_flows Trace_profile.caida_like 1500))

let part1_fat_tree () =
  print_endline "-- Part 1: resilient placement on a fat-tree --\n";
  let topo = Topo.fat_tree 8 in
  Printf.printf "Topology: %s\n" (Topo.to_string topo);
  let net = Network.create topo in
  let _, latency = Network.add_query net (Catalog.q4 ~th:40 ()) in
  let ctl = Network.controller net in
  (match (List.hd (Deploy.deployments ctl)).Deploy.placement with
  | Some p ->
      Printf.printf
        "Deployed Q4: %d switches hold rules, %d total entries (%.1f per \
         switch), slowest switch installed in %.1f ms\n"
        (Placement.switches_used p)
        (Placement.total_entries p)
        (Placement.avg_entries p)
        (latency *. 1e3)
  | None -> assert false);
  let trace = Lazy.force scan_trace in
  Network.process_trace net trace;
  let before = Network.message_count net in
  Printf.printf "\nBefore failure: %d scan reports\n" before;
  assert (before > 0);
  (* Fail a core<->aggregation link: ECMP reroutes affected flows, and
     the redundantly placed rules keep monitoring them. *)
  let core, agg = (0, Topo.fat_tree_num_core 8) in
  Network.fail_link net (core, agg);
  Printf.printf "Failing core link (%d,%d); traffic reroutes...\n" core agg;
  Network.process_trace net trace;
  Printf.printf "After failure: %d further reports — monitoring survived the reroute\n\n"
    (Network.message_count net - before)

let part2_chain () =
  print_endline "-- Part 2: cross-switch execution on the 3-switch chain (Fig. 8) --\n";
  let topo = Topo.linear 3 in
  let ctl = Deploy.create topo in
  let compiled = Compiler.compile (Catalog.q4 ~th:40 ()) in
  let stages = compiled.Compiler.stats.Compiler.stages in
  (* Slice the 11-stage query over the three switches. *)
  let per = (stages + 2) / 3 in
  let _ = Deploy.deploy ~stages_per_switch:per ctl compiled in
  Printf.printf "Q4 needs %d stages; each switch grants %d -> %d-way CQE\n" stages per 3;
  let trace = Lazy.force scan_trace in
  let src = Topo.num_switches topo in
  Trace.iter (fun p -> Deploy.process_packet ctl ~src_host:src ~dst_host:(src + 1) p) trace;
  Printf.printf
    "CQE: %d reports for %d packets; SP header bandwidth %.3f%% (12 bytes \
     between Newton hops; <1%% at 1500-byte packets)\n"
    (Deploy.message_count ctl) (Deploy.packets ctl)
    (100.0 *. Deploy.sp_overhead_ratio ctl);
  (* Sole-switch execution for contrast: one full instance per switch,
     each reporting independently. *)
  let sole = Deploy.create topo in
  let _ = Deploy.deploy ~mode:`Sole sole compiled in
  Trace.iter (fun p -> Deploy.process_packet sole ~src_host:src ~dst_host:(src + 1) p) trace;
  Printf.printf "Sole-switch execution: %d reports — one per hop, 3x the messages\n"
    (Deploy.message_count sole)

let () =
  print_endline "== Network-wide deployment ==\n";
  part1_fat_tree ();
  part2_chain ();
  print_endline "\nDone."
