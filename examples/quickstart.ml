(** Quickstart: install a monitoring query on one switch at runtime,
    replay traffic through it, and read the reports.

    Run with: [dune exec examples/quickstart.exe]

    This walks the paper's Figure 6 story: a query expressed with
    stream-processing primitives compiles to table rules over the four
    reconfigurable modules (K/H/S/R), installs in milliseconds without
    touching packet forwarding, and exports exactly the intent-relevant
    data. *)

open Newton

let () =
  print_endline "== Newton quickstart ==\n";

  (* 1. Express the intent: hosts receiving too many new TCP connections
        (Q1 from the paper's Table 2). *)
  let query = Catalog.q1 ~th:30 () in
  print_endline "Intent (stream-processing query):";
  print_endline (Query.to_string query);

  (* 2. Look at what the compiler produces: module rules, not a new P4
        program. *)
  let compiled = Compiler.compile query in
  let stats = compiled.Compiler.stats in
  Printf.printf
    "\nCompiled: %d primitives -> %d module rules in %d stages (naive layout \
     would need %d modules / %d stages)\n"
    stats.Compiler.primitives stats.Compiler.rules stats.Compiler.stages
    stats.Compiler.modules_naive stats.Compiler.stages_naive;

  (* 3. Install on a running switch. Rule-level reconfiguration: the
        switch keeps forwarding. *)
  let device = Device.create () in
  let handle, latency = Device.add_query device query in
  Printf.printf "Installed in %.1f ms; forwarding outage: %.0f s\n"
    (latency *. 1e3)
    (Newton_dataplane.Switch.outage_time (Device.switch device));

  (* 4. Replay a synthetic backbone trace with a SYN flood inside. *)
  let trace =
    Trace.generate
      ~attacks:
        [ Attack.Syn_flood
            { victim = Packet.ip_of_string "10.200.0.1";
              attackers = 40; syns_per_attacker = 25 } ]
      ~seed:42
      (Trace_profile.with_flows Trace_profile.caida_like 2000)
  in
  Printf.printf "\nReplaying %d packets (%s)...\n" (Trace.length trace)
    (Trace_profile.to_string (Trace.profile trace));
  Device.process_trace device trace;

  (* 5. Read the reports: only intent-relevant data was exported. *)
  let reports = Device.reports device in
  Printf.printf "Monitoring messages: %d (%.4f%% of packets)\n"
    (List.length reports)
    (100.0 *. float_of_int (List.length reports) /. float_of_int (Trace.length trace));
  List.iter
    (fun r ->
      Printf.printf "  window %d: %s received %d new connections\n"
        r.Report.window
        (Packet.ip_to_string r.Report.keys.(0))
        r.Report.value)
    reports;

  (* 6. Remove the query at runtime, again without interruption. *)
  (match Device.remove_query device handle with
  | Some l -> Printf.printf "\nRemoved in %.1f ms.\n" (l *. 1e3)
  | None -> assert false);
  print_endline "Done."
