(** Multi-tenant monitoring-as-a-service: many concurrent queries
    multiplexing the same modules.

    Run with: [dune exec examples/multi_tenant.exe]

    The paper's §3.1 points at cloud providers offering monitoring as a
    service (CloudWatch-style): each tenant installs its own queries on
    demand.  Because Newton queries are {e rules} in shared modules
    (newton_init dispatches each tenant's traffic class), dozens of
    concurrent queries fit in the module/stage budget of a single
    deployment — Fig. 16's P-Newton line. *)

open Newton

(* Each tenant owns a /24 inside 10.0.0.0/16 and asks for a port-scan
   detector scoped to its own prefix. *)
let tenant_query tenant =
  let prefix = 0x0A000000 lor (tenant lsl 8) in
  Query.chain ~id:(200 + tenant)
    ~name:(Printf.sprintf "tenant%d_port_scan" tenant)
    ~description:"per-tenant port-scan detection"
    [ Query.Filter
        [ Query.field_is Field.Proto Field.Protocol.tcp;
          (* dst inside the tenant's /24 *)
          Query.Cmp
            { field = Field.Dst_ip; mask = 0xFFFFFF00; op = Query.Eq; value = prefix } ];
      Query.Map (Query.keys [ Field.Src_ip; Field.Dst_port ]);
      Query.Distinct (Query.keys [ Field.Src_ip; Field.Dst_port ]);
      Query.Map (Query.keys [ Field.Src_ip ]);
      Query.Reduce { keys = Query.keys [ Field.Src_ip ]; agg = Query.Count };
      Query.Filter [ Query.result_gt 40 ];
      Query.Map (Query.keys [ Field.Src_ip ]) ]

let () =
  print_endline "== Multi-tenant concurrent queries ==\n";
  let n_tenants = 24 in
  let device = Device.create () in
  let total_latency = ref 0.0 in
  for t = 1 to n_tenants do
    let _, lat = Device.add_query device (tenant_query t) in
    total_latency := !total_latency +. lat
  done;
  Printf.printf "%d tenant queries installed, %d table rules, %.1f ms total install time\n"
    n_tenants
    (Device.monitor_rules device)
    (!total_latency *. 1e3);
  Printf.printf "Forwarding outage across all installs: %.0f s\n\n"
    (Newton_dataplane.Switch.outage_time (Device.switch device));

  (* One compiled instance tells us the shared-module footprint. *)
  let c = Compiler.compile (tenant_query 1) in
  Printf.printf
    "Module footprint per tenant: %d rules; shared modules: %d in %d stages —\n\
     every additional tenant adds only rules, not modules (Fig. 16 P-Newton)\n\n"
    c.Compiler.stats.Compiler.rules
    c.Compiler.stats.Compiler.modules_shared
    c.Compiler.stats.Compiler.stages;

  (* Scan two tenants; the others stay quiet. *)
  let victim_of t = 0x0A000000 lor (t lsl 8) lor 9 in
  let trace =
    Trace.generate
      ~attacks:
        [ Attack.Port_scan { scanner = Packet.ip_of_string "10.200.0.2";
                             victim = victim_of 3; ports = 800 };
          Attack.Port_scan { scanner = Packet.ip_of_string "10.200.0.4";
                             victim = victim_of 17; ports = 800 } ]
      ~seed:13
      (Trace_profile.with_flows Trace_profile.caida_like 2000)
  in
  Device.process_trace device trace;
  let fired =
    Device.reports device
    |> List.map (fun r -> r.Report.query_id - 200)
    |> List.sort_uniq compare
  in
  Printf.printf "Tenants with alerts: %s (expected: 3, 17)\n"
    (String.concat ", " (List.map string_of_int fired));
  assert (List.mem 3 fired && List.mem 17 fired);
  Printf.printf "Messages: %d for %d packets — isolation plus low overhead\n"
    (Device.message_count device) (Trace.length trace)
