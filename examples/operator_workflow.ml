(** Operator workflow: textual intents, automatic drill-down, and a
    report dashboard — the extension features working together.

    Run with: [dune exec examples/operator_workflow.exe]

    1. Standing intents are written in the query DSL (what an operator
       would type into the shell or check into config management).
    2. A reactive rule turns UDP-DDoS detections into per-victim
       attacker enumeration automatically, at rule-install speed.
    3. The report series renders an incident dashboard: per-query
       sparklines, active spans and top offenders. *)

open Newton_core
open Newton

let standing_intents =
  [ (* hosts receiving too many new TCP connections *)
    "filter(proto == tcp && tcp.flags == syn) | map(dip) | reduce(dip, \
     count) | filter(count > 30) | map(dip)";
    (* UDP DDoS victims by distinct sources *)
    "filter(proto == udp) | map(dip, sip) | distinct(dip, sip) | map(dip) | \
     reduce(dip, count) | filter(count > 35) | map(dip)";
    (* byte heavy hitters by /24 destination prefix *)
    "map(dip & 0xFFFFFF00) | reduce(dip & 0xFFFFFF00, sum len) | \
     filter(count > 200000) | map(dip & 0xFFFFFF00)" ]

let drilldown (r : Report.t) =
  let victim = r.Report.keys.(0) in
  Query.chain ~id:(300 + (victim land 0xff)) ~name:"ddos_sources"
    ~description:"sources flooding the victim"
    [ Query.Filter
        [ Query.field_is Field.Proto Field.Protocol.udp;
          Query.field_is Field.Dst_ip victim ];
      Query.Map (Query.keys [ Field.Src_ip ]);
      Query.Reduce { keys = Query.keys [ Field.Src_ip ]; agg = Query.Count };
      Query.Filter [ Query.result_gt 3 ];
      Query.Map (Query.keys [ Field.Src_ip ]) ]

let () =
  print_endline "== Operator workflow: DSL intents + reactive drill-down ==\n";
  let device = Device.create () in
  List.iteri
    (fun i text ->
      let q =
        Newton_query.Parser.parse ~id:(10 + i)
          ~name:(Printf.sprintf "intent%d" (i + 1))
          text
      in
      let _, lat = Device.add_query device q in
      Printf.printf "intent %d (%s) installed in %.1f ms\n" (i + 1) q.Query.name
        (lat *. 1e3))
    standing_intents;

  let svc =
    Reactive.create device
      [ { Reactive.trigger_id = 11; template = drilldown; max_instances = 4 } ]
  in
  let trace =
    Trace.generate
      ~attacks:
        [ Attack.Udp_ddos
            { victim = Packet.ip_of_string "10.200.0.5"; attackers = 80;
              pkts_per_attacker = 15 };
          Attack.Syn_flood
            { victim = Packet.ip_of_string "10.200.0.1"; attackers = 40;
              syns_per_attacker = 25 } ]
      ~seed:23
      (Trace_profile.with_flows Trace_profile.caida_like 2500)
  in
  Printf.printf "\nreplaying %d packets with the reactive loop engaged...\n"
    (Trace.length trace);
  Reactive.process_trace svc trace;

  List.iter
    (fun (s : Reactive.spawned) ->
      Printf.printf "  drill-down spawned for %s\n"
        (Packet.ip_to_string s.Reactive.trigger_keys.(0)))
    (Reactive.spawned svc);

  print_endline "\n-- incident dashboard --";
  let series = Newton_query.Series.of_reports (Device.reports device) in
  print_string (Newton_query.Series.summary ~top:2 series);

  Printf.printf "\nmonitoring overhead: %d messages for %d packets (%.3f%%)\n"
    (Device.message_count device) (Trace.length trace)
    (100.0
    *. float_of_int (Device.message_count device)
    /. float_of_int (Trace.length trace));
  Printf.printf "forwarding outage across everything: %.0f s\n"
    (Newton_dataplane.Switch.outage_time (Device.switch device))
