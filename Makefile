# Conventional entry points; everything is plain dune underneath.

.PHONY: all build test bench examples doc clean data

all: build

build:
	dune build @all

test:
	dune runtest

# Regenerate every paper table/figure (plus ablations & derived benches)
bench:
	dune exec bench/main.exe

# Also write gnuplot-ready .dat files under out/
data:
	NEWTON_BENCH_DATA=out dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ddos_drilldown.exe
	dune exec examples/network_wide.exe
	dune exec examples/multi_tenant.exe
	dune exec examples/operator_workflow.exe

doc:
	dune build @doc

clean:
	dune clean
