# Conventional entry points; everything is plain dune underneath.

.PHONY: all build test bench bench-check examples doc clean data ci check p4-diff

# Maximum shard count the parallel replay bench measures (powers of two
# up to this value); see EXPERIMENTS.md.
NEWTON_BENCH_JOBS ?= 4

all: build

build:
	dune build @all

test:
	dune runtest

# Regenerate every paper table/figure (plus ablations & derived benches)
bench:
	NEWTON_BENCH_JOBS=$(NEWTON_BENCH_JOBS) dune exec bench/main.exe

# Perf-regression gate: run the parallel replay bench, then diff
# out/bench_parallel.json against the committed baseline
# (bench/baselines/parallel.json) with bench/compare.exe.  Fails when
# the jobs=4 speedup drops more than 20% below the baseline
# (docs/PARALLELISM.md, "Reading the CI perf gate").
bench-check:
	NEWTON_BENCH_JOBS=$(NEWTON_BENCH_JOBS) dune exec bench/main.exe -- parallel
	dune exec bench/compare.exe

# Also write gnuplot-ready .dat files under out/
data:
	NEWTON_BENCH_DATA=out NEWTON_BENCH_JOBS=$(NEWTON_BENCH_JOBS) dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/ddos_drilldown.exe
	dune exec examples/network_wide.exe
	dune exec examples/multi_tenant.exe
	dune exec examples/operator_workflow.exe

doc:
	dune build @doc

# Static analysis over the catalog and a representative DSL intent;
# --strict turns any warning into a failure (docs/ANALYSIS.md).
check:
	dune exec bin/newton_cli.exe -- check --all --strict \
	  --query 'filter(proto == udp) | map(dip) | reduce(dip, count) | filter(count > 100) | map(dip)'

# Differential ground truth: replay the pinned mixed corpus through the
# simulator engine and the interpreted P4 pipeline; every catalog query
# must produce identical report multisets (docs/P4GEN.md).
p4-diff:
	dune exec bin/newton_cli.exe -- p4 diff --all --coverage-corpus

# Exactly what .github/workflows/ci.yml runs: artifact-hygiene guard,
# .mli interface guard, build, tests, static analysis, example
# smoke-runs.
ci:
	@test -z "$$(git ls-files _build)" || \
	  { echo "error: _build artifacts are tracked in git"; exit 1; }
	@missing=0; for f in $$(git ls-files 'lib/*/*.ml'); do \
	  if [ ! -f "$${f}i" ]; then \
	    echo "error: $$f has no $${f}i — every lib module needs an interface"; \
	    missing=1; \
	  fi; \
	done; exit $$missing
	$(MAKE) build
	$(MAKE) test
	$(MAKE) check
	$(MAKE) examples

clean:
	dune clean
