(** Deployment-artifact linting: check a rule JSON document against an
    emitted P4 program.

    A real rollout pushes two artifacts: the module-layout program
    (loaded once) and per-query rule files (pushed at runtime).  This
    validator catches the mismatches that brick such rollouts — rules
    naming tables or actions the program does not declare, more entries
    than a table's size, or malformed rule documents — without needing
    a P4 toolchain. *)

type issue =
  | Unknown_table of string
  | Unknown_action of { table : string; action : string }
  | Table_overflow of { table : string; size : int; entries : int }
  | Malformed of string
  | Unemittable of Rules.issue

let issue_to_string = function
  | Unknown_table t -> Printf.sprintf "rule references undeclared table %s" t
  | Unknown_action { table; action } ->
      Printf.sprintf "table %s has no action %s" table action
  | Table_overflow { table; size; entries } ->
      Printf.sprintf "table %s holds %d entries but its size is %d" table entries size
  | Malformed msg -> "malformed rule document: " ^ msg
  | Unemittable i ->
      "query has no rule encoding for the static program: "
      ^ Rules.issue_to_string i

(* ---------------- program inventory ---------------- *)

(** What the emitted program declares, recovered from its text. *)
type inventory = {
  tables : (string, int) Hashtbl.t;           (* table -> size *)
  actions : (string, string list) Hashtbl.t;  (* table -> action names *)
}

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* Scan [src] for occurrences of [keyword] followed by an identifier. *)
let scan_decls src keyword =
  let kw = keyword ^ " " in
  let n = String.length src and m = String.length kw in
  let out = ref [] in
  let i = ref 0 in
  while !i + m <= n do
    if String.sub src !i m = kw
       && (!i = 0 || not (is_ident_char src.[!i - 1]))
    then begin
      let j = ref (!i + m) in
      let start = !j in
      while !j < n && is_ident_char src.[!j] do incr j done;
      if !j > start then out := (String.sub src start (!j - start), !j) :: !out;
      i := !j
    end
    else incr i
  done;
  List.rev !out

(* The size of the table whose body starts at [from]: look for
   "size = N" between this declaration and the next "table" keyword. *)
let table_size src from =
  let find_sub needle lo hi =
    let m = String.length needle in
    let rec go i =
      if i + m > hi then None
      else if String.sub src i m = needle then Some i
      else go (i + 1)
    in
    go lo
  in
  let bound =
    match find_sub "table " (from + 1) (String.length src) with
    | Some i -> i
    | None -> String.length src
  in
  match find_sub "size = " from bound with
  | None -> max_int (* no explicit size: unbounded in v1model *)
  | Some i ->
      let j = ref (i + String.length "size = ") in
      let start = !j in
      while !j < String.length src && src.[!j] >= '0' && src.[!j] <= '9' do incr j done;
      if !j = start then max_int (* non-numeric size expression: treat as unbounded *)
      else int_of_string (String.sub src start (!j - start))

(** Build the table/action inventory of an emitted program. *)
let inventory_of_program src =
  let tables = Hashtbl.create 64 in
  let actions = Hashtbl.create 64 in
  let action_names = List.map fst (scan_decls src "action") in
  List.iter
    (fun (table, pos) ->
      Hashtbl.replace tables table (table_size src pos);
      (* Actions of a table: the emitted naming convention prefixes
         module actions with the table name; newton_init/fin have fixed
         action sets; NoAction is always available. *)
      let mine =
        List.filter
          (fun a ->
            String.length a > String.length table
            && String.sub a 0 (String.length table) = table)
          action_names
      in
      let extra =
        match table with
        | "newton_init" -> [ "set_class" ]
        | "newton_resume" -> [ "resume_class" ]
        | "newton_recirc" -> [ "cancel_pending" ]
        | "newton_fin" -> [ "sp_emit"; "sp_strip" ]
        | _ -> []
      in
      Hashtbl.replace actions table (("NoAction" :: extra) @ mine))
    (scan_decls src "table");
  { tables; actions }

(* ---------------- rule-document checking ---------------- *)

(** Validate a rule JSON document (as produced by {!Rules.to_json})
    against a program's inventory.  Returns all issues found. *)
let check ~program ~rules_json =
  let inv = inventory_of_program program in
  match Newton_util.Json.of_string rules_json with
  | exception Newton_util.Json.Parse_error { pos; msg } ->
      [ Malformed (Printf.sprintf "JSON error at %d: %s" pos msg) ]
  | Newton_util.Json.List entries ->
      let counts = Hashtbl.create 32 in
      let issues = ref [] in
      List.iter
        (fun entry ->
          match
            ( Newton_util.Json.member "table" entry,
              Newton_util.Json.member "action" entry )
          with
          | Some (Newton_util.Json.String table), Some (Newton_util.Json.String action)
            -> (
              Hashtbl.replace counts table
                (1 + Option.value (Hashtbl.find_opt counts table) ~default:0);
              match Hashtbl.find_opt inv.actions table with
              | None -> issues := Unknown_table table :: !issues
              | Some acts ->
                  if not (List.mem action acts) then
                    issues := Unknown_action { table; action } :: !issues)
          | _ -> issues := Malformed "entry lacks table/action strings" :: !issues)
        entries;
      Hashtbl.iter
        (fun table entries ->
          match Hashtbl.find_opt inv.tables table with
          | Some size when entries > size ->
              issues := Table_overflow { table; size; entries } :: !issues
          | _ -> ())
        counts;
      List.rev !issues
  | _ -> [ Malformed "top level is not an array" ]

(** Convenience: emit a program and a query's rules, then lint them.
    An unemittable query is itself an issue, not an exception. *)
let check_compiled ?(layout = Emit.default_layout) ?class_id compiled =
  match Rules.entries ?class_id ~layout compiled with
  | Error issue -> [ Unemittable issue ]
  | Ok entries ->
      let program = Emit.program ~layout () in
      check ~program ~rules_json:(Rules.to_json entries)
