(** P4-16 program emission for the v1model architecture.

    Emits one complete, self-contained [newton.p4]: parser (Ethernet /
    SP / QinQ / IPv4 / IPv6 / ICMP / TCP / UDP / DNS / VXLAN / GRE and
    the decapsulated inner stack), a header-normalization prologue that
    projects the wire headers onto the engine's 18 canonical fields
    ([meta.f_*]), the [newton_init] ternary classifier, the
    recirculation machinery for multi-branch intents, and the K/H/S/R
    module tables of the paper's 12-stage compact pipeline plus a
    trigger (T) table per R cell that realizes result guards as range
    matches.

    The program is *static*: every checked intent configures it purely
    through table entries ({!Rules}), never through recompilation — the
    paper's core claim.  {!Newton_p4sim} interprets exactly the subset
    emitted here and differentially tests it against the simulator.

    Conventions the interpreter and controller rely on (documented in
    docs/P4GEN.md):
    - [HashAlgorithm.crc32_custom] is the seeded Newton vector hash: the
      first tuple element is a 60-bit key descriptor (12 x 5-bit field
      codes; code 0 terminates, code i+1 selects canonical field i), the
      remaining 18 elements are the masked per-field key copies; [base]
      is the seed and [max] the modulus.
    - [HashAlgorithm.identity] packs the described keys with the
      compiler's 30-bit fold (direct mode); [base]/[max] are ignored.
    - Table-entry priority is numeric-larger-wins.
    - All sketch state lives in the single [newton_state] register file;
      rules carry per-array base offsets. *)

open Newton_packet

(** Layout parameters: how many stages carry Newton modules, register
    count per allocated state array, and rules per module table. *)
type layout = {
  stages : int;
  registers : int;
  rules_per_table : int;
}

let default_layout =
  {
    stages = Newton_dataplane.Switch.default_stages;
    registers = Newton_dataplane.Module_cost.default_registers;
    rules_per_table = Newton_dataplane.Module_cost.rules_per_module;
  }

(** EtherType carrying the SP header between Newton-enabled switches
    (local-experimental range). *)
let sp_ethertype = 0x88B5

(** Default size (in 32-bit words) of the global [newton_state] register
    file: one array-sized bank per (stage, metadata set). *)
let state_words_of_layout l = l.stages * 2 * l.registers

let table_name ~stage ~kind ~set =
  Printf.sprintf "newton_%s_s%d_m%d"
    (String.lowercase_ascii (Newton_dataplane.Module_cost.kind_to_string kind))
    stage set

(** The trigger table paired with the R table of a (stage, set) cell. *)
let trigger_name ~stage ~set = Printf.sprintf "newton_t_s%d_m%d" stage set

let field_slug f =
  String.map (function '.' -> '_' | c -> c) (Field.to_string f)

(** Canonical normalized metadata field for [f] ([meta.f_sip], ...). *)
let meta_field f = "meta.f_" ^ field_slug f

(* P4 metadata field for a (set, global header field) operation key. *)
let key_field ~set f = Printf.sprintf "key%d_%s" set (field_slug f)

let hash_result ~set = Printf.sprintf "meta.hash%d_result" set
let state_result ~set = Printf.sprintf "meta.state%d_result" set

(** Positions in the 60-bit key descriptor: 12 x 5 bits. *)
let desc_positions = 12

(* ---------------- emission helpers ---------------- *)

let buf_add = Buffer.add_string

let line b fmt = Printf.ksprintf (fun s -> buf_add b s; buf_add b "\n") fmt

(* ---------------- headers ---------------- *)

let emit_headers b =
  buf_add b
    {|// ---------------------------------------------------------------
// Headers
// ---------------------------------------------------------------
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

// Newton SP header: the inter-switch snapshot of the per-packet
// execution context (CQE, paper section 5).
header sp_t {
    bit<16> class_id;
    bit<16> pending;
    bit<32> hash0;
    bit<32> hash1;
    bit<32> state0;
    bit<32> state1;
    bit<32> g1;
    bit<32> g2;
    bit<16> next_type;
}

header vlan_t {
    bit<3>  pcp;
    bit<1>  dei;
    bit<12> vid;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  dscp_ecn;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

// IPv6 addresses as four 32-bit words; the canonical field view folds
// them by XOR, matching the simulator's ingest path.
header ipv6_t {
    bit<4>   version;
    bit<8>   traffic_class;
    bit<20>  flow_label;
    bit<16>  payload_len;
    bit<8>   next_hdr;
    bit<8>   hop_limit;
    bit<32>  src_w0;
    bit<32>  src_w1;
    bit<32>  src_w2;
    bit<32>  src_w3;
    bit<32>  dst_w0;
    bit<32>  dst_w1;
    bit<32>  dst_w2;
    bit<32>  dst_w3;
}

header icmp_t {
    bit<8>  type_;
    bit<8>  code;
    bit<16> checksum;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4>  data_offset;
    bit<4>  res;
    bit<8>  flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

header dns_t {
    bit<16> id;
    bit<1>  qr;
    bit<15> flags;
    bit<16> qdcount;
    bit<16> ancount;
}

header vxlan_t {
    bit<8>  flags;
    bit<24> reserved;
    bit<24> vni;
    bit<8>  reserved2;
}

// GRE with the key bit set (the only variant the canonical
// encapsulation produces).
header gre_t {
    bit<16> flags_version;
    bit<16> protocol;
    bit<32> key;
}

struct headers_t {
    ethernet_t ethernet;
    sp_t       sp;
    vlan_t     vlan0;
    vlan_t     vlan1;
    ipv4_t     ipv4;
    ipv6_t     ipv6;
    icmp_t     icmp;
    tcp_t      tcp;
    udp_t      udp;
    dns_t      dns;
    vxlan_t    vxlan;
    gre_t      gre;
    ethernet_t inner_ethernet;
    ipv4_t     inner_ipv4;
    tcp_t      inner_tcp;
    udp_t      inner_udp;
    icmp_t     inner_icmp;
}

|}

let emit_metadata b =
  buf_add b "struct metadata_t {\n";
  buf_add b "    // survives recirculation (v1model field list 1)\n";
  buf_add b "    @field_list(1) bit<16> pending;\n";
  buf_add b "    bit<16> class_id;\n";
  buf_add b "    bit<1>  query_active;\n";
  buf_add b "    bit<1>  report;\n";
  buf_add b "    // canonical fields, normalized from the wire headers\n";
  List.iter (fun f -> line b "    bit<32> f_%s;" (field_slug f)) Field.all;
  for set = 0 to 1 do
    line b "    // operation-key copy, metadata set %d" set;
    line b "    bit<60> key%d_desc;" set;
    List.iter (fun f -> line b "    bit<32> %s;" (key_field ~set f)) Field.all
  done;
  buf_add b "    bit<32> hash0_result;\n";
  buf_add b "    bit<32> hash1_result;\n";
  buf_add b "    bit<32> state0_result;\n";
  buf_add b "    bit<32> state1_result;\n";
  buf_add b "    bit<32> global_result;\n";
  buf_add b "    bit<32> global_result2;\n";
  buf_add b "}\n\n";
  buf_add b "// report digest: class, key descriptor + per-field keys, aggregates\n";
  buf_add b "struct newton_report_t {\n";
  buf_add b "    bit<16> class_id;\n";
  buf_add b "    bit<60> desc;\n";
  List.iter (fun f -> line b "    bit<32> k_%s;" (field_slug f)) Field.all;
  buf_add b "    bit<32> g1;\n";
  buf_add b "    bit<32> g2;\n";
  buf_add b "}\n\n"

(* ---------------- parser ---------------- *)

let emit_parser b =
  line b
    {|parser NewtonParser(packet_in pkt,
                    out headers_t hdr,
                    inout metadata_t meta,
                    inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x%04X: parse_sp;
            0x8100: parse_vlan0;
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_sp {
        pkt.extract(hdr.sp);
        transition select(hdr.sp.next_type) {
            0x8100: parse_vlan0;
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_vlan0 {
        pkt.extract(hdr.vlan0);
        transition select(hdr.vlan0.ether_type) {
            0x8100: parse_vlan1;
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_vlan1 {
        pkt.extract(hdr.vlan1);
        transition select(hdr.vlan1.ether_type) {
            0x0800: parse_ipv4;
            0x86DD: parse_ipv6;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            1: parse_icmp;
            6: parse_tcp;
            17: parse_udp;
            47: parse_gre;
            default: accept;
        }
    }
    state parse_ipv6 {
        pkt.extract(hdr.ipv6);
        transition select(hdr.ipv6.next_hdr) {
            6: parse_tcp;
            17: parse_udp;
            58: parse_icmp;
            default: accept;
        }
    }
    state parse_icmp {
        pkt.extract(hdr.icmp);
        transition accept;
    }
    state parse_tcp {
        pkt.extract(hdr.tcp);
        transition accept;
    }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.src_port, hdr.udp.dst_port) {
            (53, _): parse_dns;
            (_, 53): parse_dns;
            (_, 4789): parse_vxlan;
            default: accept;
        }
    }
    state parse_dns {
        pkt.extract(hdr.dns);
        transition accept;
    }
    state parse_vxlan {
        pkt.extract(hdr.vxlan);
        transition parse_inner_ethernet;
    }
    state parse_gre {
        pkt.extract(hdr.gre);
        transition select(hdr.gre.protocol) {
            0x0800: parse_inner_ipv4;
            default: accept;
        }
    }
    state parse_inner_ethernet {
        pkt.extract(hdr.inner_ethernet);
        transition select(hdr.inner_ethernet.ether_type) {
            0x0800: parse_inner_ipv4;
            default: accept;
        }
    }
    state parse_inner_ipv4 {
        pkt.extract(hdr.inner_ipv4);
        transition select(hdr.inner_ipv4.protocol) {
            1: parse_inner_icmp;
            6: parse_inner_tcp;
            17: parse_inner_udp;
            default: accept;
        }
    }
    state parse_inner_icmp {
        pkt.extract(hdr.inner_icmp);
        transition accept;
    }
    state parse_inner_tcp {
        pkt.extract(hdr.inner_tcp);
        transition accept;
    }
    state parse_inner_udp {
        pkt.extract(hdr.inner_udp);
        transition accept;
    }
}
|}
    sp_ethertype

(* ---------------- normalization prologue ---------------- *)

(* Projects the parsed wire headers onto the engine's canonical field
   set.  Must be the exact inverse of P4sim's PHV synthesis on every
   packet the trace generators produce; the differential harness proves
   that empirically. *)
let emit_normalize b =
  buf_add b
    {|        // ---- canonical field normalization ----
        meta.f_ig_port = (bit<32>) std_meta.ingress_port;
        if (hdr.ipv4.isValid()) {
            meta.f_sip = hdr.ipv4.src_addr;
            meta.f_dip = hdr.ipv4.dst_addr;
            meta.f_proto = (bit<32>) hdr.ipv4.protocol;
            meta.f_len = (bit<32>) hdr.ipv4.total_len;
            meta.f_ttl = (bit<32>) hdr.ipv4.ttl;
            meta.f_ip_ver = 4;
        } else if (hdr.ipv6.isValid()) {
            // 128-bit addresses fold to the engine's 32-bit key words
            meta.f_sip = hdr.ipv6.src_w0 ^ hdr.ipv6.src_w1 ^ hdr.ipv6.src_w2 ^ hdr.ipv6.src_w3;
            meta.f_dip = hdr.ipv6.dst_w0 ^ hdr.ipv6.dst_w1 ^ hdr.ipv6.dst_w2 ^ hdr.ipv6.dst_w3;
            meta.f_proto = (bit<32>) hdr.ipv6.next_hdr;
            meta.f_len = (bit<32>) hdr.ipv6.payload_len + 40;
            meta.f_ttl = (bit<32>) hdr.ipv6.hop_limit;
            meta.f_ip_ver = 6;
        }
        if (hdr.tcp.isValid()) {
            meta.f_sport = (bit<32>) hdr.tcp.src_port;
            meta.f_dport = (bit<32>) hdr.tcp.dst_port;
            meta.f_tcp_flags = (bit<32>) hdr.tcp.flags;
            meta.f_tcp_seq = hdr.tcp.seq_no;
            meta.f_tcp_ack = hdr.tcp.ack_no;
            if (hdr.ipv4.isValid()) {
                meta.f_payload_len = meta.f_len
                    - (((bit<32>) hdr.ipv4.ihl) << 2)
                    - (((bit<32>) hdr.tcp.data_offset) << 2);
            } else {
                meta.f_payload_len = (meta.f_len - 40)
                    - (((bit<32>) hdr.tcp.data_offset) << 2);
            }
        } else if (hdr.udp.isValid()) {
            meta.f_sport = (bit<32>) hdr.udp.src_port;
            meta.f_dport = (bit<32>) hdr.udp.dst_port;
            meta.f_payload_len = (bit<32>) hdr.udp.length - 8;
        } else if (hdr.icmp.isValid()) {
            meta.f_icmp_type = (bit<32>) hdr.icmp.type_;
            meta.f_icmp_code = (bit<32>) hdr.icmp.code;
            if (hdr.ipv4.isValid()) {
                meta.f_payload_len = meta.f_len - (((bit<32>) hdr.ipv4.ihl) << 2) - 8;
            } else {
                meta.f_payload_len = meta.f_len - 48;
            }
        }
        if (hdr.dns.isValid()) {
            meta.f_dns_qr = (bit<32>) hdr.dns.qr;
            meta.f_dns_ancount = (bit<32>) hdr.dns.ancount;
        }
        // tunnel decapsulation: the inner stack overrides the flow view
        if (hdr.vxlan.isValid()) {
            meta.f_tun_id = (bit<32>) hdr.vxlan.vni;
        } else if (hdr.gre.isValid()) {
            meta.f_tun_id = hdr.gre.key;
        }
        if (hdr.inner_ipv4.isValid()) {
            meta.f_sip = hdr.inner_ipv4.src_addr;
            meta.f_dip = hdr.inner_ipv4.dst_addr;
            meta.f_proto = (bit<32>) hdr.inner_ipv4.protocol;
            meta.f_len = (bit<32>) hdr.inner_ipv4.total_len;
            meta.f_ttl = (bit<32>) hdr.inner_ipv4.ttl;
            meta.f_ip_ver = 4;
            meta.f_sport = 0;
            meta.f_dport = 0;
        }
        if (hdr.inner_tcp.isValid()) {
            meta.f_sport = (bit<32>) hdr.inner_tcp.src_port;
            meta.f_dport = (bit<32>) hdr.inner_tcp.dst_port;
            meta.f_tcp_flags = (bit<32>) hdr.inner_tcp.flags;
            meta.f_tcp_seq = hdr.inner_tcp.seq_no;
            meta.f_tcp_ack = hdr.inner_tcp.ack_no;
            meta.f_payload_len = meta.f_len
                - (((bit<32>) hdr.inner_ipv4.ihl) << 2)
                - (((bit<32>) hdr.inner_tcp.data_offset) << 2);
        } else if (hdr.inner_udp.isValid()) {
            meta.f_sport = (bit<32>) hdr.inner_udp.src_port;
            meta.f_dport = (bit<32>) hdr.inner_udp.dst_port;
            meta.f_payload_len = (bit<32>) hdr.inner_udp.length - 8;
        } else if (hdr.inner_icmp.isValid()) {
            meta.f_icmp_type = (bit<32>) hdr.inner_icmp.type_;
            meta.f_icmp_code = (bit<32>) hdr.inner_icmp.code;
            meta.f_payload_len = meta.f_len - (((bit<32>) hdr.inner_ipv4.ihl) << 2) - 8;
        }
|}

(* ---------------- module actions and tables ---------------- *)

(* K: copy the masked operation keys into this set's metadata and record
   the key descriptor the hash extern consumes. *)
let emit_k_cell b ~stage ~set ~size =
  let t = table_name ~stage ~kind:Newton_dataplane.Module_cost.K ~set in
  line b "    action %s_select(bit<60> desc%s) {" t
    (String.concat ""
       (List.map
          (fun f -> Printf.sprintf ", bit<32> m_%s" (field_slug f))
          Field.all));
  line b "        meta.key%d_desc = desc;" set;
  List.iter
    (fun f ->
      line b "        meta.%s = %s & m_%s;" (key_field ~set f) (meta_field f)
        (field_slug f))
    Field.all;
  line b "    }";
  line b "    table %s {" t;
  line b "        key = { meta.class_id : exact; }";
  line b "        actions = { %s_select; NoAction; }" t;
  line b "        size = %d;" size;
  line b "        default_action = NoAction();";
  line b "    }"

let hash_input ~set =
  Printf.sprintf "{ meta.key%d_desc%s }" set
    (String.concat ""
       (List.map
          (fun f -> Printf.sprintf ", meta.%s" (key_field ~set f))
          Field.all))

(* H: seeded vector hash or direct (packing) mode over the recorded
   keys; the key descriptor rides first in the input tuple. *)
let emit_h_cell b ~stage ~set ~size =
  let t = table_name ~stage ~kind:Newton_dataplane.Module_cost.H ~set in
  line b "    action %s_hash(bit<32> seed, bit<32> range) {" t;
  line b "        hash(%s, HashAlgorithm.crc32_custom, seed, %s, range);"
    (hash_result ~set) (hash_input ~set);
  line b "    }";
  line b "    action %s_direct() {" t;
  line b "        hash(%s, HashAlgorithm.identity, 0, %s, 0);"
    (hash_result ~set) (hash_input ~set);
  line b "    }";
  line b "    table %s {" t;
  line b "        key = { meta.class_id : exact; }";
  line b "        actions = { %s_hash; %s_direct; NoAction; }" t t;
  line b "        size = %d;" size;
  line b "        default_action = NoAction();";
  line b "    }"

(* The nested-conditional canonical-field selector used by S actions
   whose operand comes from a packet field rather than a constant. *)
let field_mux fidx_var =
  let rec go = function
    | [] -> "0"
    | f :: rest ->
        Printf.sprintf "(%s == %d) ? %s : (%s)" fidx_var (Field.index f)
          (meta_field f) (go rest)
  in
  go Field.all

(* S: stateful ALUs over the global register file; [base] relocates the
   rule's array inside [newton_state]. *)
let emit_s_cell b ~stage ~set ~size =
  let t = table_name ~stage ~kind:Newton_dataplane.Module_cost.S ~set in
  let idx = Printf.sprintf "base + %s" (hash_result ~set) in
  let res = state_result ~set in
  line b "    action %s_add(bit<32> base, bit<32> inc) {" t;
  line b "        bit<32> tmp;";
  line b "        newton_state.read(tmp, %s);" idx;
  line b "        tmp = tmp + inc;";
  line b "        newton_state.write(%s, tmp);" idx;
  line b "        %s = tmp;" res;
  line b "    }";
  line b "    action %s_add_fld(bit<32> base, bit<32> fidx) {" t;
  line b "        bit<32> tmp;";
  line b "        bit<32> inc = %s;" (field_mux "fidx");
  line b "        newton_state.read(tmp, %s);" idx;
  line b "        tmp = tmp + inc;";
  line b "        newton_state.write(%s, tmp);" idx;
  line b "        %s = tmp;" res;
  line b "    }";
  line b "    action %s_max(bit<32> base, bit<32> val) {" t;
  line b "        bit<32> tmp;";
  line b "        newton_state.read(tmp, %s);" idx;
  line b "        tmp = (tmp > val) ? tmp : val;";
  line b "        newton_state.write(%s, tmp);" idx;
  line b "        %s = tmp;" res;
  line b "    }";
  line b "    action %s_max_fld(bit<32> base, bit<32> fidx) {" t;
  line b "        bit<32> tmp;";
  line b "        bit<32> val = %s;" (field_mux "fidx");
  line b "        newton_state.read(tmp, %s);" idx;
  line b "        tmp = (tmp > val) ? tmp : val;";
  line b "        newton_state.write(%s, tmp);" idx;
  line b "        %s = tmp;" res;
  line b "    }";
  (* Bloom bit: transactional or; the *previous* value is the result *)
  line b "    action %s_bf(bit<32> base) {" t;
  line b "        bit<32> tmp;";
  line b "        newton_state.read(tmp, %s);" idx;
  line b "        %s = tmp;" res;
  line b "        newton_state.write(%s, tmp | 1);" idx;
  line b "    }";
  line b "    action %s_pass() {" t;
  line b "        %s = %s;" res (hash_result ~set);
  line b "    }";
  line b "    action %s_read(bit<32> base) {" t;
  line b "        bit<32> tmp;";
  line b "        newton_state.read(tmp, %s);" idx;
  line b "        %s = tmp;" res;
  line b "    }";
  line b "    table %s {" t;
  line b "        key = { meta.class_id : exact; }";
  line b
    "        actions = { %s_add; %s_add_fld; %s_max; %s_max_fld; %s_bf; %s_pass; %s_read; NoAction; }"
    t t t t t t t;
  line b "        size = %d;" size;
  line b "        default_action = NoAction();";
  line b "    }"

(* R, first ply: merge the state result into the global accumulators,
   with the combine step (paper section 4.2) fused where needed. *)
let emit_r_cell b ~stage ~set ~size =
  let t = table_name ~stage ~kind:Newton_dataplane.Module_cost.R ~set in
  let st = state_result ~set in
  let acts =
    [ ("set_g1", [ Printf.sprintf "meta.global_result = %s;" st ]);
      ("min_g1",
       [ Printf.sprintf
           "meta.global_result = (meta.global_result < %s) ? meta.global_result : %s;"
           st st ]);
      ("max_g1",
       [ Printf.sprintf
           "meta.global_result = (meta.global_result > %s) ? meta.global_result : %s;"
           st st ]);
      ("add_g1",
       [ Printf.sprintf "meta.global_result = meta.global_result + %s;" st ]);
      ("sub_g1",
       [ Printf.sprintf
           "meta.global_result = (meta.global_result > %s) ? meta.global_result - %s : 0;"
           st st ]);
      ("set_g2", [ Printf.sprintf "meta.global_result2 = %s;" st ]);
      ("set_g2_comb_sub",
       [ Printf.sprintf "meta.global_result2 = %s;" st;
         "meta.global_result = (meta.global_result > meta.global_result2) ? \
          meta.global_result - meta.global_result2 : 0;" ]);
      ("set_g2_comb_min",
       [ Printf.sprintf "meta.global_result2 = %s;" st;
         "meta.global_result = (meta.global_result < meta.global_result2) ? \
          meta.global_result : meta.global_result2;" ]) ]
  in
  List.iter
    (fun (suffix, body) ->
      line b "    action %s_%s() {" t suffix;
      List.iter (fun s -> line b "        %s" s) body;
      line b "    }")
    acts;
  line b "    table %s {" t;
  line b "        key = { meta.class_id : exact; }";
  line b "        actions = { %s NoAction; }"
    (String.concat " " (List.map (fun (s, _) -> t ^ "_" ^ s ^ ";") acts));
  line b "        size = %d;" size;
  line b "        default_action = NoAction();";
  line b "    }"

(* T, second ply of R: guards become range entries over the post-merge
   values; a miss means "no guard configured here". *)
let emit_t_cell b ~stage ~set ~size =
  let t = trigger_name ~stage ~set in
  line b "    action %s_stop() {" t;
  line b "        meta.query_active = 0;";
  line b "    }";
  line b "    action %s_report() {" t;
  line b "        meta.report = 1;";
  line b "        digest<newton_report_t>(1, {";
  line b "            meta.class_id,";
  line b "            meta.key%d_desc," set;
  List.iter (fun f -> line b "            meta.%s," (key_field ~set f)) Field.all;
  line b "            meta.global_result,";
  line b "            meta.global_result2 });";
  line b "    }";
  line b "    table %s {" t;
  line b "        key = {";
  line b "            meta.class_id : exact;";
  line b "            %s : range;" (state_result ~set);
  line b "            meta.global_result : range;";
  line b "            meta.global_result2 : range;";
  line b "        }";
  line b "        actions = { %s_stop; %s_report; NoAction; }" t t;
  line b "        size = %d;" size;
  line b "        default_action = NoAction();";
  line b "    }"

(* ---------------- classifier / recirculation / fin ---------------- *)

let emit_init b ~size =
  buf_add b
    {|    // newton_init: ternary intent classifier over the canonical fields.
    // class_id selects the branch to run this pass; pending carries the
    // bitmap of further matching branches (recirculation passes).
    action set_class(bit<16> class_id, bit<16> pending) {
        meta.class_id = class_id;
        meta.query_active = 1;
        meta.pending = pending;
    }
|};
  line b "    table newton_init {";
  line b "        key = {";
  List.iter
    (fun f -> line b "            %s : ternary;" (meta_field f))
    Newton_compiler.Ir.init_fields;
  line b "        }";
  line b "        actions = { set_class; NoAction; }";
  line b "        size = %d;" size;
  line b "        default_action = NoAction();";
  line b "    }";
  buf_add b
    {|    // newton_resume: on a recirculated pass, pick the lowest pending
    // branch and clear its bit.
    action resume_class(bit<16> class_id, bit<16> clear_mask) {
        meta.class_id = class_id;
        meta.query_active = 1;
        meta.pending = meta.pending & clear_mask;
    }
    table newton_resume {
        key = { meta.pending : ternary; }
        actions = { resume_class; NoAction; }
        size = 64;
        default_action = NoAction();
    }
    // newton_recirc: a guard stop on branch 0 cancels the remaining
    // branches of the same intent (engine short-circuit semantics).
    action cancel_pending() {
        meta.pending = 0;
    }
    table newton_recirc {
        key = {
            meta.class_id : exact;
            meta.query_active : exact;
        }
        actions = { cancel_pending; NoAction; }
        size = 256;
        default_action = NoAction();
    }
|}

let emit_fin b ~size =
  line b
    {|    // newton_fin: SP-header snapshot of the execution context (CQE).
    action sp_emit() {
        hdr.sp.setValid();
        hdr.sp.class_id = meta.class_id;
        hdr.sp.pending = 0;
        hdr.sp.hash0 = meta.hash0_result;
        hdr.sp.hash1 = meta.hash1_result;
        hdr.sp.state0 = meta.state0_result;
        hdr.sp.state1 = meta.state1_result;
        hdr.sp.g1 = meta.global_result;
        hdr.sp.g2 = meta.global_result2;
        hdr.sp.next_type = hdr.ethernet.ether_type;
        hdr.ethernet.ether_type = 0x%04X;
    }
    action sp_strip() {
        hdr.ethernet.ether_type = hdr.sp.next_type;
        hdr.sp.setInvalid();
    }
    table newton_fin {
        key = { meta.class_id : exact; }
        actions = { sp_emit; sp_strip; NoAction; }
        size = %d;
        default_action = NoAction();
    }|}
    sp_ethertype size

(* ---------------- the full program ---------------- *)

let program ?(layout = default_layout) ?state_words () =
  if layout.stages <= 0 || layout.registers <= 0 || layout.rules_per_table <= 0
  then invalid_arg "Emit.program: layout dimensions must be positive";
  let state_words =
    match state_words with
    | Some w ->
        if w <= 0 then invalid_arg "Emit.program: state_words must be positive";
        w
    | None -> state_words_of_layout layout
  in
  let b = Buffer.create (1 lsl 16) in
  buf_add b "// newton.p4 — generated by `newton p4 emit`; do not edit.\n";
  line b "// layout: %d stages x 2 metadata sets, %d-word state file"
    layout.stages state_words;
  buf_add b "#include <core.p4>\n#include <v1model.p4>\n\n";
  emit_headers b;
  emit_metadata b;
  emit_parser b;
  buf_add b "\n";
  buf_add b
    {|control NewtonIngress(inout headers_t hdr,
                      inout metadata_t meta,
                      inout standard_metadata_t std_meta) {
|};
  line b "    register<bit<32>>(%d) newton_state;" state_words;
  buf_add b "\n";
  emit_init b ~size:(4 * layout.rules_per_table);
  let size = layout.rules_per_table in
  for stage = 0 to layout.stages - 1 do
    for set = 0 to 1 do
      line b "\n    // ---- stage %d, metadata set %d ----" stage set;
      emit_k_cell b ~stage ~set ~size;
      emit_h_cell b ~stage ~set ~size;
      emit_s_cell b ~stage ~set ~size;
      emit_r_cell b ~stage ~set ~size;
      emit_t_cell b ~stage ~set ~size
    done
  done;
  buf_add b "\n";
  emit_fin b ~size:256;
  buf_add b "\n    apply {\n";
  emit_normalize b;
  buf_add b
    {|        // ---- classification (first pass) or resume (recirculated) ----
        if (std_meta.instance_type == 0) {
            newton_init.apply();
        } else {
            newton_resume.apply();
        }
|};
  for stage = 0 to layout.stages - 1 do
    line b "        // stage %d" stage;
    for set = 0 to 1 do
      List.iter
        (fun t -> line b "        if (meta.query_active == 1) { %s.apply(); }" t)
        [ table_name ~stage ~kind:Newton_dataplane.Module_cost.K ~set;
          table_name ~stage ~kind:Newton_dataplane.Module_cost.H ~set;
          table_name ~stage ~kind:Newton_dataplane.Module_cost.S ~set;
          table_name ~stage ~kind:Newton_dataplane.Module_cost.R ~set;
          trigger_name ~stage ~set ]
    done
  done;
  buf_add b
    {|        newton_recirc.apply();
        if (meta.pending != 0) {
            recirculate_preserving_field_list(1);
        } else {
            newton_fin.apply();
        }
    }
}

control NewtonEgress(inout headers_t hdr,
                     inout metadata_t meta,
                     inout standard_metadata_t std_meta) {
    apply { }
}

control NewtonVerifyChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply { }
}

control NewtonComputeChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply { }
}

control NewtonDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.sp);
        pkt.emit(hdr.vlan0);
        pkt.emit(hdr.vlan1);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.ipv6);
        pkt.emit(hdr.icmp);
        pkt.emit(hdr.tcp);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.dns);
        pkt.emit(hdr.vxlan);
        pkt.emit(hdr.gre);
        pkt.emit(hdr.inner_ethernet);
        pkt.emit(hdr.inner_ipv4);
        pkt.emit(hdr.inner_tcp);
        pkt.emit(hdr.inner_udp);
        pkt.emit(hdr.inner_icmp);
    }
}

V1Switch(NewtonParser(),
         NewtonVerifyChecksum(),
         NewtonIngress(),
         NewtonEgress(),
         NewtonComputeChecksum(),
         NewtonDeparser()) main;
|};
  Buffer.contents b
