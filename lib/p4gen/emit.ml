(** P4₁₆ program generation for the Newton module layout.

    The paper's workflow (§3) starts at initialization time: "operators
    should add Newton module layout into the P4 program, and load the P4
    program into the switch pipeline"; everything after that is table
    rules.  This module emits that one-time program: parser (including
    the SP header on a dedicated EtherType), the two metadata sets, the
    [newton_init] classifier, per-stage K/H/S/R tables with their
    register arrays and stateful ALU actions, and [newton_fin].

    The output targets the v1model architecture so it is readable and
    portable; a Tofino port would swap the externs (Hash, RegisterAction)
    but keep the structure.  Structure and naming are stable — the rule
    generator ({!Rules}) refers to the same table and action names. *)

open Newton_packet

(** Layout parameters: how many stages carry Newton modules, register
    count per state-bank array, and rules per module table. *)
type layout = {
  stages : int;
  registers : int;
  rules_per_table : int;
}

let default_layout =
  {
    stages = Newton_dataplane.Switch.default_stages;
    registers = Newton_dataplane.Module_cost.default_registers;
    rules_per_table = Newton_dataplane.Module_cost.rules_per_module;
  }

(** EtherType carrying the SP header between Newton-enabled switches
    (local-experimental range). *)
let sp_ethertype = 0x88B5

let table_name ~stage ~kind ~set =
  Printf.sprintf "newton_%s_s%d_m%d"
    (String.lowercase_ascii (Newton_dataplane.Module_cost.kind_to_string kind))
    stage set

let register_name ~stage ~set = Printf.sprintf "newton_reg_s%d_m%d" stage set

(* P4 metadata field for a (set, global header field) operation key. *)
let key_field ~set f = Printf.sprintf "key%d_%s" set (String.map (function '.' -> '_' | c -> c) (Field.to_string f))

let bf buf fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let emit_headers buf =
  bf buf {|// ---------------------------------------------------------------
// Headers
// ---------------------------------------------------------------
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

// Result-snapshot header (12 bytes): hash/state results of both
// metadata sets plus the global result, carried between Newton hops.
header sp_t {
    bit<16> hash1;
    bit<24> state1;
    bit<16> hash2;
    bit<24> state2;
    bit<16> global_result;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4>  data_offset;
    bit<4>  res;
    bit<8>  flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

header dns_t {
    bit<16> id;
    bit<1>  qr;
    bit<15> flags;
    bit<16> qdcount;
    bit<16> ancount;
}

struct headers_t {
    ethernet_t ethernet;
    sp_t       sp;
    ipv4_t     ipv4;
    tcp_t      tcp;
    udp_t      udp;
    dns_t      dns;
}

|}

let emit_metadata buf =
  bf buf "// ---------------------------------------------------------------\n";
  bf buf "// Metadata: two independent result sets (compact module layout)\n";
  bf buf "// ---------------------------------------------------------------\n";
  bf buf "struct metadata_t {\n";
  for set = 0 to 1 do
    List.iter
      (fun f ->
        bf buf "    bit<32> %s;\n" (key_field ~set f))
      Field.all;
    bf buf "    bit<16> hash%d_result;\n" (set + 1);
    bf buf "    bit<32> state%d_result;\n" (set + 1)
  done;
  bf buf "    bit<16> global_result;\n";
  bf buf "    bit<16> class_id;      // set by newton_init\n";
  bf buf "    bit<1>  query_active;  // cleared by R's stop action\n";
  bf buf "    bit<1>  report;        // set by R's report action\n";
  bf buf "}\n\n"

let emit_parser buf =
  bf buf {|// ---------------------------------------------------------------
// Parser (decodes the SP header when present and initializes result
// sets from it; otherwise result sets start at zero)
// ---------------------------------------------------------------
parser NewtonParser(packet_in pkt, out headers_t hdr,
                    inout metadata_t meta,
                    inout standard_metadata_t std_meta) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x%04X: parse_sp;
            0x0800: parse_ipv4;
            default: accept;
        }
    }
    state parse_sp {
        pkt.extract(hdr.sp);
        meta.hash1_result  = hdr.sp.hash1;
        meta.state1_result = (bit<32>) hdr.sp.state1;
        meta.hash2_result  = hdr.sp.hash2;
        meta.state2_result = (bit<32>) hdr.sp.state2;
        meta.global_result = hdr.sp.global_result;
        transition parse_ipv4;
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6:  parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_tcp { pkt.extract(hdr.tcp); transition accept; }
    state parse_udp {
        pkt.extract(hdr.udp);
        transition select(hdr.udp.src_port, hdr.udp.dst_port) {
            (53, _): parse_dns;
            (_, 53): parse_dns;
            default: accept;
        }
    }
    state parse_dns { pkt.extract(hdr.dns); transition accept; }
}

|} sp_ethertype

let emit_init_table buf layout =
  bf buf {|    // newton_init: ternary classification over the 5-tuple and TCP
    // control flags; dispatches packets to concurrent queries' chains.
    action set_class(bit<16> class_id) {
        meta.class_id = class_id;
        meta.query_active = 1;
    }
    table newton_init {
        key = {
            hdr.ipv4.src_addr : ternary;
            hdr.ipv4.dst_addr : ternary;
            hdr.ipv4.protocol : ternary;
            hdr.tcp.src_port  : ternary;
            hdr.tcp.dst_port  : ternary;
            hdr.tcp.flags     : ternary;
        }
        actions = { set_class; NoAction; }
        size = %d;
        default_action = NoAction();
    }

|} (4 * layout.rules_per_table)

let emit_k_table buf ~stage ~set layout =
  let name = table_name ~stage ~kind:Newton_dataplane.Module_cost.K ~set in
  bf buf "    // K (field selection), stage %d, metadata set %d:\n" stage (set + 1);
  bf buf "    // bit-masks the global fields into this set's operation keys.\n";
  bf buf "    action %s_select(" name;
  bf buf "%s) {\n"
    (String.concat ", "
       (List.map (fun f -> Printf.sprintf "bit<32> m_%s" (key_field ~set f)) Field.all));
  List.iter
    (fun f ->
      let src =
        match f with
        | Field.Src_ip -> "hdr.ipv4.src_addr"
        | Field.Dst_ip -> "hdr.ipv4.dst_addr"
        | Field.Proto -> "(bit<32>) hdr.ipv4.protocol"
        | Field.Src_port -> "(bit<32>) hdr.tcp.src_port"
        | Field.Dst_port -> "(bit<32>) hdr.tcp.dst_port"
        | Field.Tcp_flags -> "(bit<32>) hdr.tcp.flags"
        | Field.Tcp_seq -> "hdr.tcp.seq_no"
        | Field.Tcp_ack -> "hdr.tcp.ack_no"
        | Field.Pkt_len -> "(bit<32>) hdr.ipv4.total_len"
        | Field.Payload_len -> "(bit<32>) hdr.udp.length"
        | Field.Ttl -> "(bit<32>) hdr.ipv4.ttl"
        | Field.Dns_qr -> "(bit<32>) hdr.dns.qr"
        | Field.Dns_ancount -> "(bit<32>) hdr.dns.ancount"
        | Field.Ingress_port -> "(bit<32>) std_meta.ingress_port"
        | Field.Ip_ver -> "(bit<32>) hdr.ipv4.version"
        | Field.Icmp_type -> "(bit<32>) hdr.icmp.type_"
        | Field.Icmp_code -> "(bit<32>) hdr.icmp.code"
        | Field.Tun_id -> "(bit<32>) hdr.vxlan.vni"
      in
      bf buf "        meta.%s = %s & m_%s;\n" (key_field ~set f) src (key_field ~set f))
    Field.all;
  bf buf "    }\n";
  bf buf "    table %s {\n" name;
  bf buf "        key = { meta.class_id : exact; }\n";
  bf buf "        actions = { %s_select; NoAction; }\n" name;
  bf buf "        size = %d;\n" layout.rules_per_table;
  bf buf "        default_action = NoAction();\n    }\n\n"

let emit_h_table buf ~stage ~set layout =
  let name = table_name ~stage ~kind:Newton_dataplane.Module_cost.H ~set in
  bf buf "    // H (hash calculation), stage %d, set %d: CRC over the\n" stage (set + 1);
  bf buf "    // operation keys, range-reduced; or direct mode.\n";
  bf buf "    action %s_hash(bit<16> range_mask) {\n" name;
  bf buf "        hash(meta.hash%d_result, HashAlgorithm.crc16, (bit<16>) 0,\n" (set + 1);
  bf buf "             { %s },\n"
    (String.concat ", " (List.map (fun f -> "meta." ^ key_field ~set f) Field.all));
  bf buf "             (bit<32>) 65536);\n";
  bf buf "        meta.hash%d_result = meta.hash%d_result & range_mask;\n" (set + 1) (set + 1);
  bf buf "    }\n";
  bf buf "    action %s_direct() {\n" name;
  bf buf "        meta.hash%d_result = (bit<16>) meta.%s;\n" (set + 1)
    (key_field ~set Field.Src_port);
  bf buf "    }\n";
  bf buf "    table %s {\n" name;
  bf buf "        key = { meta.class_id : exact; }\n";
  bf buf "        actions = { %s_hash; %s_direct; NoAction; }\n" name name;
  bf buf "        size = %d;\n" layout.rules_per_table;
  bf buf "        default_action = NoAction();\n    }\n\n"

let emit_s_table buf ~stage ~set layout =
  let name = table_name ~stage ~kind:Newton_dataplane.Module_cost.S ~set in
  let reg = register_name ~stage ~set in
  bf buf "    // S (state bank), stage %d, set %d: register array with the\n" stage (set + 1);
  bf buf "    // transactional ALU menu (+, |, max, read).\n";
  bf buf "    action %s_add(bit<32> inc) {\n" name;
  bf buf "        bit<32> v;\n";
  bf buf "        %s.read(v, (bit<32>) meta.hash%d_result);\n" reg (set + 1);
  bf buf "        v = v + inc;\n";
  bf buf "        %s.write((bit<32>) meta.hash%d_result, v);\n" reg (set + 1);
  bf buf "        meta.state%d_result = v;\n" (set + 1);
  bf buf "    }\n";
  bf buf "    action %s_bf() {\n" name;
  bf buf "        bit<32> v;\n";
  bf buf "        %s.read(v, (bit<32>) meta.hash%d_result);\n" reg (set + 1);
  bf buf "        meta.state%d_result = v;  // previous bit\n" (set + 1);
  bf buf "        %s.write((bit<32>) meta.hash%d_result, v | 1);\n" reg (set + 1);
  bf buf "    }\n";
  bf buf "    action %s_max(bit<32> val) {\n" name;
  bf buf "        bit<32> v;\n";
  bf buf "        %s.read(v, (bit<32>) meta.hash%d_result);\n" reg (set + 1);
  bf buf "        v = (val > v) ? val : v;\n";
  bf buf "        %s.write((bit<32>) meta.hash%d_result, v);\n" reg (set + 1);
  bf buf "        meta.state%d_result = v;\n" (set + 1);
  bf buf "    }\n";
  bf buf "    action %s_pass() { meta.state%d_result = (bit<32>) meta.hash%d_result; }\n"
    name (set + 1) (set + 1);
  bf buf "    action %s_read() {\n" name;
  bf buf "        bit<32> v;\n";
  bf buf "        %s.read(v, (bit<32>) meta.hash%d_result);\n" reg (set + 1);
  bf buf "        meta.state%d_result = v;\n" (set + 1);
  bf buf "    }\n";
  bf buf "    table %s {\n" name;
  bf buf "        key = { meta.class_id : exact; }\n";
  bf buf "        actions = { %s_add; %s_bf; %s_max; %s_pass; %s_read; NoAction; }\n" name name name name name;
  bf buf "        size = %d;\n" layout.rules_per_table;
  bf buf "        default_action = NoAction();\n    }\n\n"

let emit_r_table buf ~stage ~set layout =
  let name = table_name ~stage ~kind:Newton_dataplane.Module_cost.R ~set in
  bf buf "    // R (result process), stage %d, set %d: ternary match over the\n" stage (set + 1);
  bf buf "    // state result; merge into the global result, gate, report.\n";
  bf buf "    action %s_set_global()  { meta.global_result = (bit<16>) meta.state%d_result; }\n" name (set + 1);
  bf buf "    action %s_min_global()  {\n" name;
  bf buf "        meta.global_result = (meta.global_result < (bit<16>) meta.state%d_result)\n" (set + 1);
  bf buf "            ? meta.global_result : (bit<16>) meta.state%d_result;\n    }\n" (set + 1);
  bf buf "    action %s_sub_global()  { meta.global_result = meta.global_result - (bit<16>) meta.state%d_result; }\n" name (set + 1);
  bf buf "    action %s_stop()        { meta.query_active = 0; }\n" name;
  bf buf "    action %s_report()      { meta.report = 1; clone(CloneType.I2E, 250); }\n" name;
  bf buf "    table %s {\n" name;
  bf buf "        key = {\n";
  bf buf "            meta.class_id       : exact;\n";
  bf buf "            meta.state%d_result : ternary;\n" (set + 1);
  bf buf "            meta.global_result  : range;\n";
  bf buf "        }\n";
  bf buf "        actions = { %s_set_global; %s_min_global; %s_sub_global; %s_stop; %s_report; NoAction; }\n"
    name name name name name;
  bf buf "        size = %d;\n" layout.rules_per_table;
  bf buf "        default_action = NoAction();\n    }\n\n"

let emit_registers buf layout =
  bf buf "    // State-bank register arrays, one per stage and metadata set.\n";
  for stage = 0 to layout.stages - 1 do
    for set = 0 to 1 do
      bf buf "    register<bit<32>>(%d) %s;\n" layout.registers
        (register_name ~stage ~set)
    done
  done;
  bf buf "\n"

let emit_fin_table buf =
  bf buf {|    // newton_fin: snapshot the result sets into the SP header for the
    // next Newton hop; the last hop invalidates it instead.
    action sp_emit() {
        hdr.sp.setValid();
        hdr.sp.hash1  = meta.hash1_result;
        hdr.sp.state1 = (bit<24>) meta.state1_result;
        hdr.sp.hash2  = meta.hash2_result;
        hdr.sp.state2 = (bit<24>) meta.state2_result;
        hdr.sp.global_result = meta.global_result;
        hdr.ethernet.ether_type = 0x88B5;
    }
    action sp_strip() {
        hdr.sp.setInvalid();
        hdr.ethernet.ether_type = 0x0800;
    }
    table newton_fin {
        key = { std_meta.egress_spec : exact; }
        actions = { sp_emit; sp_strip; NoAction; }
        default_action = sp_strip();
    }

|}

let emit_control buf layout =
  bf buf "// ---------------------------------------------------------------\n";
  bf buf "// Ingress: newton_init, then the compact module layout — every\n";
  bf buf "// stage applies K, H, S and R of both metadata sets.\n";
  bf buf "// ---------------------------------------------------------------\n";
  bf buf
    "control NewtonIngress(inout headers_t hdr, inout metadata_t meta,\n\
    \                      inout standard_metadata_t std_meta) {\n";
  emit_registers buf layout;
  emit_init_table buf layout;
  for stage = 0 to layout.stages - 1 do
    for set = 0 to 1 do
      emit_k_table buf ~stage ~set layout;
      emit_h_table buf ~stage ~set layout;
      emit_s_table buf ~stage ~set layout;
      emit_r_table buf ~stage ~set layout
    done
  done;
  emit_fin_table buf;
  bf buf "    apply {\n";
  bf buf "        newton_init.apply();\n";
  bf buf "        if (meta.query_active == 1) {\n";
  for stage = 0 to layout.stages - 1 do
    bf buf "            // ---- physical stage %d ----\n" stage;
    for set = 0 to 1 do
      List.iter
        (fun kind ->
          bf buf "            %s.apply();\n" (table_name ~stage ~kind ~set))
        Newton_dataplane.Module_cost.all_kinds
    done
  done;
  bf buf "            newton_fin.apply();\n";
  bf buf "        }\n";
  bf buf "    }\n}\n\n"

let emit_boilerplate buf =
  bf buf {|control NewtonEgress(inout headers_t hdr, inout metadata_t meta,
                     inout standard_metadata_t std_meta) {
    apply { }
}

control NewtonVerifyChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply { }
}
control NewtonComputeChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply { }
}

control NewtonDeparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.sp);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.dns);
    }
}

V1Switch(NewtonParser(), NewtonVerifyChecksum(), NewtonIngress(),
         NewtonEgress(), NewtonComputeChecksum(), NewtonDeparser()) main;
|}

(** Emit the complete P4₁₆ program for a module layout. *)
let program ?(layout = default_layout) () =
  if layout.stages <= 0 || layout.registers <= 0 || layout.rules_per_table <= 0 then
    invalid_arg "Emit.program: layout sizes must be positive";
  let buf = Buffer.create (1 lsl 16) in
  bf buf "// Newton module layout — generated; do not edit.\n";
  bf buf "// stages=%d registers/array=%d rules/table=%d\n" layout.stages
    layout.registers layout.rules_per_table;
  bf buf "#include <core.p4>\n#include <v1model.p4>\n\n";
  emit_headers buf;
  emit_metadata buf;
  emit_parser buf;
  emit_control buf layout;
  emit_boilerplate buf;
  Buffer.contents buf
