(** P4-16 program generation for the Newton module layout — the one-time
    program loaded at initialization; everything afterwards is table
    rules ({!Rules}).  Targets v1model; {!Newton_p4sim} interprets
    exactly the subset emitted here (see docs/P4GEN.md). *)

(** Layout parameters of the emitted pipeline. *)
type layout = {
  stages : int;           (** stages carrying Newton modules *)
  registers : int;        (** registers per allocated state array *)
  rules_per_table : int;  (** capacity of each module table *)
}

val default_layout : layout

(** EtherType carrying the SP header between Newton hops. *)
val sp_ethertype : int

(** Default size in 32-bit words of the global [newton_state] register
    file for a layout: one array-sized bank per (stage, metadata set). *)
val state_words_of_layout : layout -> int

(** Stable table naming scheme shared with {!Rules}. *)
val table_name :
  stage:int -> kind:Newton_dataplane.Module_cost.kind -> set:int -> string

(** The trigger (guard) table paired with the R table of a cell. *)
val trigger_name : stage:int -> set:int -> string

(** [Field.to_string] with ['.'] flattened to ['_'] — the spelling used
    in metadata field names and action parameters. *)
val field_slug : Newton_packet.Field.t -> string

(** Normalized canonical metadata field reference ([meta.f_sip], ...).
    Total over all 18 fields. *)
val meta_field : Newton_packet.Field.t -> string

(** Metadata field name of a (set, global field) operation key. *)
val key_field : set:int -> Newton_packet.Field.t -> string

val hash_result : set:int -> string
val state_result : set:int -> string

(** Number of 5-bit positions in a key descriptor. *)
val desc_positions : int

(** Emit the complete program.  [state_words] overrides the size of the
    global register file (for deployments whose rules need more arrays
    than the per-layout default).
    @raise Invalid_argument on non-positive layout sizes. *)
val program : ?layout:layout -> ?state_words:int -> unit -> string
