(** Deployment-artifact linting: check rule JSON against an emitted P4
    program — undeclared tables/actions, table-size overflows, and
    malformed documents, without a P4 toolchain. *)

type issue =
  | Unknown_table of string
  | Unknown_action of { table : string; action : string }
  | Table_overflow of { table : string; size : int; entries : int }
  | Malformed of string
  | Unemittable of Rules.issue
      (** the compiled query has no rule encoding ({!Rules.issue}) *)

val issue_to_string : issue -> string

(** Tables (with sizes) and per-table action sets recovered from an
    emitted program's text. *)
type inventory = {
  tables : (string, int) Hashtbl.t;
  actions : (string, string list) Hashtbl.t;
}

val inventory_of_program : string -> inventory

(** All issues a rule document has against a program (empty = clean). *)
val check : program:string -> rules_json:string -> issue list

(** Emit program + rules for a compiled query, then lint them. *)
val check_compiled :
  ?layout:Emit.layout -> ?class_id:int -> Newton_compiler.Compose.t ->
  issue list
