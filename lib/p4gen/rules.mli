(** Runtime table-rule generation for the static program emitted by
    {!Emit} — the entries the Newton controller pushes to reconfigure
    the data plane without recompiling it (see docs/P4GEN.md).

    Translation is total over compiler output: anything the static
    action menu cannot express comes back as a typed {!issue} (never an
    exception), which the analyzer surfaces as NA080-NA083. *)

type mtch =
  | M_exact of string * int
  | M_ternary of string * int * int  (** field, value, mask *)
  | M_range of string * int * int    (** field, lo, hi (inclusive) *)

type entry = {
  table : string;
  matches : mtch list;
  action : string;
  params : (string * string) list;
  priority : int;  (** numeric-larger wins on overlap *)
}

(** Why a compiled query has no rule encoding for the static program. *)
type issue =
  | Too_many_keys of { branch : int; prim : int; count : int; limit : int }
  | Duplicate_key of {
      branch : int;
      prim : int;
      field : Newton_packet.Field.t;
    }
  | Unsupported_r of { branch : int; prim : int; reason : string }
  | Missing_read_target of {
      branch : int;
      prim : int;
      target : int * int * int;
    }
  | Registers_exhausted of { needed : int; capacity : int }
  | Too_many_branches of { branches : int; limit : int }

val issue_to_string : issue -> string

(** Maximum parallel branches per intent (classifier-product / pending
    bitmap limit). *)
val max_branches : int

(** Allocator for the global resources entries consume: [newton_state]
    register-file words and pending-bitmap bit positions.  Share one
    allocator across {!entries} calls to build a co-resident deployment
    ([newton p4 emit --all]). *)
type allocator

(** Fresh allocator for a layout; [state_words] overrides the register
    file size (must match the [Emit.program] override). *)
val allocator : ?state_words:int -> Emit.layout -> allocator

(** Register-file words allocated so far. *)
val words_used : allocator -> int

(** The classifier-visible metadata field for a match on [f].  Total
    over all 18 constructors — no wildcard fallback. *)
val init_field_name : Newton_packet.Field.t -> string

(** Packed 60-bit key descriptor of an ordered key list (5 bits per
    position, code = field index + 1, 0 terminates). *)
val descriptor : Newton_query.Ast.key list -> int

(** Pipeline passes (1 + recirculations) the densest packet takes
    through this intent: the size of its largest consistent branch
    subset.  Drives diagnostic NA082. *)
val overlap_passes : Newton_compiler.Compose.t -> int

(** All entries configuring [compiled] as traffic class [class_id]
    (branch [b] runs as [class_id + b]; default 1): classifier product
    entries over [newton_init] / [newton_resume] / [newton_recirc],
    plus per-slot module-table and trigger-table entries.  State arrays
    are carved out of [alloc] (fresh when omitted). *)
val entries :
  ?class_id:int ->
  ?layout:Emit.layout ->
  ?alloc:allocator ->
  Newton_compiler.Compose.t ->
  (entry list, issue) result

(** [entries], raising [Invalid_argument] on an issue — for callers
    that already passed the analyzer gate.
    @raise Invalid_argument on any {!issue}. *)
val entries_exn :
  ?class_id:int ->
  ?layout:Emit.layout ->
  ?alloc:allocator ->
  Newton_compiler.Compose.t ->
  entry list

val entry_to_json : entry -> string

(** Render entries as a JSON array, one entry per line — the wire
    format [newton p4 emit --rules-out] writes and {!Newton_p4sim}
    loads. *)
val to_json : entry list -> string
