(** Runtime table-rule generation: translate a compiled query into the
    control-plane entries that configure the emitted P4 program
    ({!Emit}).  This is what the Newton controller pushes through the
    switch driver instead of reloading a program — the essence of the
    paper's contribution.

    Entries are a typed representation plus a JSON rendering compatible
    with simple_switch_CLI-style tooling.  Compound R configurations
    (merge + guard + report in one rule) are emitted as a single entry
    whose action is the R table's dominant behaviour with the rest
    carried in parameters, mirroring how the extended R module of §4.1
    packs them into one rule. *)

open Newton_packet
open Newton_compiler

type mtch =
  | M_exact of string * int
  | M_ternary of string * int * int (* field, value, mask *)
  | M_range of string * int * int   (* field, lo, hi *)

type entry = {
  table : string;
  matches : mtch list;
  action : string;
  params : (string * string) list;
  priority : int;
}

(* ---------------- per-slot translation ---------------- *)

let guard_to_match set = function
  | None -> []
  | Some (target, op, value) ->
      let field =
        match target with
        | Ir.On_state -> Printf.sprintf "meta.state%d_result" (set + 1)
        | Ir.On_g1 | Ir.On_g2 -> "meta.global_result"
      in
      let max16 = 0xFFFF in
      let r lo hi = [ M_range (field, lo, hi) ] in
      (match op with
      | Newton_query.Ast.Eq -> [ M_ternary (field, value, max_int) ]
      | Newton_query.Ast.Neq -> [] (* encoded via priorities: specific entry + default *)
      | Newton_query.Ast.Gt -> r (value + 1) max16
      | Newton_query.Ast.Ge -> r value max16
      | Newton_query.Ast.Lt -> r 0 (value - 1)
      | Newton_query.Ast.Le -> r 0 value)

let value_src_params = function
  | Ir.Const k -> [ ("inc", string_of_int k) ]
  | Ir.Field_val f -> [ ("inc_from_field", Field.to_string f) ]

let slot_entry ~class_id (s : Ir.slot) =
  let table =
    Emit.table_name ~stage:s.Ir.stage ~kind:s.Ir.kind ~set:s.Ir.meta
  in
  let class_match = [ M_exact ("meta.class_id", class_id) ] in
  match s.Ir.cfg with
  | Ir.K_cfg keys ->
      let selected = List.map (fun (k : Newton_query.Ast.key) -> (k.field, k.mask)) keys in
      let params =
        List.map
          (fun f ->
            let mask =
              match List.assoc_opt f selected with Some m -> m | None -> 0
            in
            (Printf.sprintf "m_%s" (Emit.key_field ~set:s.Ir.meta f),
             Printf.sprintf "0x%x" mask))
          Field.all
      in
      { table; matches = class_match; action = table ^ "_select"; params;
        priority = 1 }
  | Ir.H_cfg { mode = `Hash seed; range } ->
      { table; matches = class_match; action = table ^ "_hash";
        params = [ ("range_mask", Printf.sprintf "0x%x" (range - 1));
                   ("seed", string_of_int seed) ];
        priority = 1 }
  | Ir.H_cfg { mode = `Direct; _ } ->
      { table; matches = class_match; action = table ^ "_direct"; params = [];
        priority = 1 }
  | Ir.S_cfg { op = Ir.S_cm src; _ } ->
      { table; matches = class_match; action = table ^ "_add";
        params = value_src_params src; priority = 1 }
  | Ir.S_cfg { op = Ir.S_max src; _ } ->
      { table; matches = class_match; action = table ^ "_max";
        params = value_src_params src; priority = 1 }
  | Ir.S_cfg { op = Ir.S_bf; _ } ->
      { table; matches = class_match; action = table ^ "_bf"; params = [];
        priority = 1 }
  | Ir.S_cfg { op = Ir.S_pass; _ } ->
      { table; matches = class_match; action = table ^ "_pass"; params = [];
        priority = 1 }
  | Ir.S_cfg { op = Ir.S_read { ar_branch; ar_prim; ar_suite }; _ } ->
      { table; matches = class_match; action = table ^ "_read";
        params =
          [ ("array", Printf.sprintf "b%d_p%d_s%d" ar_branch ar_prim ar_suite) ];
        priority = 1 }
  | Ir.R_cfg { merge; guard; report; combine } ->
      let action, action_params =
        if report then (table ^ "_report", [])
        else
          match merge with
          | Some (_, Ir.M_set) -> (table ^ "_set_global", [])
          | Some (_, Ir.M_min) -> (table ^ "_min_global", [])
          | Some (_, Ir.M_max) -> (table ^ "_max_global", [])
          | Some (_, Ir.M_add) -> (table ^ "_add_global", [])
          | Some (_, Ir.M_sub) -> (table ^ "_sub_global", [])
          | None -> ("NoAction", [])
      in
      let params =
        action_params
        @ (match merge with
          | Some (acc, op) when report ->
              [ ("merge",
                 Printf.sprintf "%s:%s"
                   (match acc with Ir.G1 -> "g1" | Ir.G2 -> "g2")
                   (match op with
                   | Ir.M_set -> "set" | Ir.M_min -> "min" | Ir.M_max -> "max"
                   | Ir.M_add -> "add" | Ir.M_sub -> "sub")) ]
          | _ -> [])
        @ (match combine with
          | Some Ir.M_sub -> [ ("combine", "sub") ]
          | Some Ir.M_min -> [ ("combine", "min") ]
          | Some _ -> [ ("combine", "other") ]
          | None -> [])
      in
      { table;
        matches = class_match @ guard_to_match s.Ir.meta guard;
        action; params; priority = 10 }

let init_entry ~class_id (e : Ir.init_entry) =
  let field_name f =
    match f with
    | Field.Src_ip -> "hdr.ipv4.src_addr"
    | Field.Dst_ip -> "hdr.ipv4.dst_addr"
    | Field.Proto -> "hdr.ipv4.protocol"
    | Field.Src_port -> "hdr.tcp.src_port"
    | Field.Dst_port -> "hdr.tcp.dst_port"
    | Field.Tcp_flags -> "hdr.tcp.flags"
    | Field.Ip_ver -> "hdr.ipv4.version"
    | Field.Icmp_type -> "hdr.icmp.type_"
    | Field.Icmp_code -> "hdr.icmp.code"
    | Field.Tun_id -> "hdr.vxlan.vni"
    | _ -> "hdr.unknown"
  in
  {
    table = "newton_init";
    matches =
      List.map
        (fun (f, v, m) -> M_ternary (field_name f, v, m))
        e.Ir.ie_matches;
    action = "set_class";
    params = [ ("class_id", string_of_int class_id) ];
    priority = 10;
  }

(** All runtime entries configuring [compiled] under the given traffic
    class: one [newton_init] entry per branch plus one entry per module
    slot.  [class_id] is controller-assigned (branch b gets
    [class_id + b]). *)
let entries ?(class_id = 1) (compiled : Compose.t) =
  let inits =
    Array.to_list compiled.Compose.init_entries
    |> List.map (fun e -> init_entry ~class_id:(class_id + e.Ir.ie_branch) e)
  in
  let slots =
    Array.to_list compiled.Compose.branches
    |> List.concat_map (fun slots ->
           List.map
             (fun s -> slot_entry ~class_id:(class_id + s.Ir.branch) s)
             slots)
  in
  inits @ slots

(* ---------------- JSON rendering ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let match_to_json = function
  | M_exact (f, v) -> Printf.sprintf {|{"field":"%s","type":"exact","value":%d}|} (escape f) v
  | M_ternary (f, v, m) ->
      Printf.sprintf {|{"field":"%s","type":"ternary","value":%d,"mask":%d}|} (escape f) v m
  | M_range (f, lo, hi) ->
      Printf.sprintf {|{"field":"%s","type":"range","lo":%d,"hi":%d}|} (escape f) lo hi

let entry_to_json e =
  Printf.sprintf
    {|{"table":"%s","priority":%d,"match":[%s],"action":"%s","params":{%s}}|}
    (escape e.table) e.priority
    (String.concat "," (List.map match_to_json e.matches))
    (escape e.action)
    (String.concat ","
       (List.map (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (escape k) (escape v)) e.params))

(** Render entries as a JSON array (one entry per line). *)
let to_json entries =
  "[\n" ^ String.concat ",\n" (List.map entry_to_json entries) ^ "\n]\n"
