(** Runtime table-rule generation: translate a compiled query into the
    control-plane entries that configure the emitted P4 program
    ({!Emit}).  This is what the Newton controller pushes through the
    switch driver instead of reloading a program — the essence of the
    paper's contribution.

    Translation is *total or refused*: every construct the compiler can
    produce either maps onto the static program's action menu or comes
    back as a typed {!issue} (surfaced by the analyzer as NA080-NA083
    and by [newton check]) — never an exception, never a silently
    dropped match key.

    Key emission decisions (shared with {!Newton_p4sim}, see
    docs/P4GEN.md):
    - K entries carry a 60-bit key descriptor (order-preserving list of
      field codes) plus one mask parameter per canonical field, making
      the mapping total over all 18 {!Newton_packet.Field.t}
      constructors.
    - Sketch arrays are first-fit allocated inside the single
      [newton_state] register file; entries carry base offsets.
    - Result guards become range entries in the trigger (T) table: the
      guard's pass region(s) at priority 20 (action [report] or
      [NoAction]), a class-wide stop fallback at priority 5.
    - Overlapping multi-branch intents install one [newton_init] entry
      per *consistent branch subset*; extra branches run on
      recirculation passes driven by the [pending] bitmap
      ([newton_resume] / [newton_recirc] entries). *)

open Newton_packet
open Newton_compiler

type mtch =
  | M_exact of string * int
  | M_ternary of string * int * int (* field, value, mask *)
  | M_range of string * int * int   (* field, lo, hi *)

type entry = {
  table : string;
  matches : mtch list;
  action : string;
  params : (string * string) list;
  priority : int;
}

(** Why a compiled query cannot be expressed as rules for the static
    program.  [issue_to_string] renders operator-facing text. *)
type issue =
  | Too_many_keys of { branch : int; prim : int; count : int; limit : int }
  | Duplicate_key of { branch : int; prim : int; field : Field.t }
  | Unsupported_r of { branch : int; prim : int; reason : string }
  | Missing_read_target of { branch : int; prim : int;
                             target : int * int * int }
  | Registers_exhausted of { needed : int; capacity : int }
  | Too_many_branches of { branches : int; limit : int }

let issue_to_string = function
  | Too_many_keys { branch; prim; count; limit } ->
      Printf.sprintf
        "branch %d primitive %d selects %d keys; the key descriptor holds %d"
        branch prim count limit
  | Duplicate_key { branch; prim; field } ->
      Printf.sprintf
        "branch %d primitive %d selects field %s twice; the per-field key \
         copy holds one mask"
        branch prim (Field.to_string field)
  | Unsupported_r { branch; prim; reason } ->
      Printf.sprintf "branch %d primitive %d: %s" branch prim reason
  | Missing_read_target { branch; prim; target = (tb, tp, ts) } ->
      Printf.sprintf
        "branch %d primitive %d reads array (branch %d, prim %d, suite %d) \
         which this deployment does not host"
        branch prim tb tp ts
  | Registers_exhausted { needed; capacity } ->
      Printf.sprintf
        "register file exhausted: %d words needed, %d available" needed
        capacity
  | Too_many_branches { branches; limit } ->
      Printf.sprintf
        "%d branches; the pending bitmap / classifier product supports %d"
        branches limit

(** Maximum branches per intent expressible through the classifier
    product and the 16-bit pending bitmap. *)
let max_branches = 6

(* ---------------- shared allocator ---------------- *)

(** Allocates the two global resources rules consume: words of the
    [newton_state] register file (first-fit, never reused) and pending
    bitmap bit positions for recirculation branches.  One allocator is
    shared across every query of a deployment ([newton p4 emit --all]). *)
type allocator = {
  capacity : int;
  mutable next_word : int;
  mutable next_pending_bit : int;
}

let allocator ?state_words (layout : Emit.layout) =
  let capacity =
    match state_words with
    | Some w -> w
    | None -> Emit.state_words_of_layout layout
  in
  { capacity; next_word = 0; next_pending_bit = 0 }

let words_used a = a.next_word

(* ---------------- per-slot translation ---------------- *)

let max32 = 0xFFFFFFFF

(** Total canonical-field mapping used for classifier matches — every
    {!Field.t} constructor maps to a normalized metadata field (no
    wildcard, no [hdr.unknown]); the exhaustive-match test in
    [test_p4gen.ml] pins this. *)
let init_field_name (f : Field.t) =
  match f with
  | Field.Src_ip | Field.Dst_ip | Field.Proto | Field.Src_port
  | Field.Dst_port | Field.Tcp_flags | Field.Tcp_seq | Field.Tcp_ack
  | Field.Pkt_len | Field.Payload_len | Field.Ttl | Field.Dns_qr
  | Field.Dns_ancount | Field.Ingress_port | Field.Ip_ver
  | Field.Icmp_type | Field.Icmp_code | Field.Tun_id ->
      Emit.meta_field f

(* The 60-bit descriptor encoding the ordered key list: position p
   (low-to-high) holds Field.index + 1 in 5 bits; 0 terminates. *)
let descriptor keys =
  List.fold_left
    (fun (pos, acc) (k : Newton_query.Ast.key) ->
      (pos + 1, acc lor ((Field.index k.Newton_query.Ast.field + 1) lsl (5 * pos))))
    (0, 0) keys
  |> snd

let k_entry ~class_id (s : Ir.slot) keys =
  let table =
    Emit.table_name ~stage:s.Ir.stage ~kind:Newton_dataplane.Module_cost.K
      ~set:s.Ir.meta
  in
  if List.length keys > Emit.desc_positions then
    Error
      (Too_many_keys
         { branch = s.Ir.branch; prim = s.Ir.prim; count = List.length keys;
           limit = Emit.desc_positions })
  else
    let fields = List.map (fun (k : Newton_query.Ast.key) -> k.field) keys in
    match
      List.find_opt
        (fun f -> List.length (List.filter (Field.equal f) fields) > 1)
        fields
    with
    | Some f ->
        Error (Duplicate_key { branch = s.Ir.branch; prim = s.Ir.prim; field = f })
    | None ->
        let selected =
          List.map (fun (k : Newton_query.Ast.key) -> (k.field, k.mask)) keys
        in
        let params =
          ("desc", string_of_int (descriptor keys))
          :: List.map
               (fun f ->
                 let mask =
                   match List.assoc_opt f selected with
                   | Some m -> m land max32
                   | None -> 0
                 in
                 (Printf.sprintf "m_%s" (Emit.field_slug f),
                  Printf.sprintf "0x%x" mask))
               Field.all
        in
        Ok
          { table; matches = [ M_exact ("meta.class_id", class_id) ];
            action = table ^ "_select"; params; priority = 1 }

(* Pass region(s) of a comparison guard over [0, 2^32). *)
let pass_regions op value =
  let v = value land max32 in
  match (op : Newton_query.Ast.cmp_op) with
  | Newton_query.Ast.Eq -> [ (v, v) ]
  | Newton_query.Ast.Neq ->
      (if v > 0 then [ (0, v - 1) ] else [])
      @ if v < max32 then [ (v + 1, max32) ] else []
  | Newton_query.Ast.Gt -> if v < max32 then [ (v + 1, max32) ] else []
  | Newton_query.Ast.Ge -> [ (v, max32) ]
  | Newton_query.Ast.Lt -> if v > 0 then [ (0, v - 1) ] else []
  | Newton_query.Ast.Le -> [ (0, v) ]

(* Trigger-table entries realizing an R slot's guard / report flags. *)
let trigger_entries ~class_id (s : Ir.slot) guard report =
  let table = Emit.trigger_name ~stage:s.Ir.stage ~set:s.Ir.meta in
  let state_field = Emit.state_result ~set:s.Ir.meta in
  let ranges ?(state = (0, max32)) ?(g1 = (0, max32)) ?(g2 = (0, max32)) () =
    [ M_range (state_field, fst state, snd state);
      M_range ("meta.global_result", fst g1, snd g1);
      M_range ("meta.global_result2", fst g2, snd g2) ]
  in
  let class_match = [ M_exact ("meta.class_id", class_id) ] in
  let pass_action = if report then table ^ "_report" else "NoAction" in
  match guard with
  | None ->
      if report then
        [ { table; matches = class_match @ ranges (); action = table ^ "_report";
            params = []; priority = 10 } ]
      else []
  | Some (target, op, value) ->
      let region_match r =
        match (target : Ir.guard_target) with
        | Ir.On_state -> ranges ~state:r ()
        | Ir.On_g1 -> ranges ~g1:r ()
        | Ir.On_g2 -> ranges ~g2:r ()
      in
      List.map
        (fun r ->
          { table; matches = class_match @ region_match r; action = pass_action;
            params = []; priority = 20 })
        (pass_regions op value)
      @ [ { table; matches = class_match @ ranges (); action = table ^ "_stop";
            params = []; priority = 5 } ]

let slot_entries ~class_id ~bases (s : Ir.slot) =
  let table =
    Emit.table_name ~stage:s.Ir.stage ~kind:s.Ir.kind ~set:s.Ir.meta
  in
  let class_match = [ M_exact ("meta.class_id", class_id) ] in
  let simple action params =
    Ok [ { table; matches = class_match; action; params; priority = 1 } ]
  in
  let base_of key = List.assoc key bases in
  let own_base () = base_of (s.Ir.branch, s.Ir.prim, s.Ir.suite) in
  let src_params = function
    | Ir.Const k -> ("inc", string_of_int k)
    | Ir.Field_val f -> ("fidx", string_of_int (Field.index f))
  in
  let src_action suffix = function
    | Ir.Const _ -> table ^ "_" ^ suffix
    | Ir.Field_val _ -> table ^ "_" ^ suffix ^ "_fld"
  in
  match s.Ir.cfg with
  | Ir.K_cfg keys -> Result.map (fun e -> [ e ]) (k_entry ~class_id s keys)
  | Ir.H_cfg { mode = `Hash seed; range } ->
      simple (table ^ "_hash")
        [ ("seed", string_of_int seed); ("range", string_of_int range) ]
  | Ir.H_cfg { mode = `Direct; _ } -> simple (table ^ "_direct") []
  | Ir.S_cfg { op = Ir.S_cm src; _ } ->
      simple (src_action "add" src)
        [ ("base", string_of_int (own_base ())); src_params src ]
  | Ir.S_cfg { op = Ir.S_max src; _ } ->
      simple (src_action "max" src)
        [ ("base", string_of_int (own_base ())); src_params src ]
  | Ir.S_cfg { op = Ir.S_bf; _ } ->
      simple (table ^ "_bf") [ ("base", string_of_int (own_base ())) ]
  | Ir.S_cfg { op = Ir.S_pass; _ } -> simple (table ^ "_pass") []
  | Ir.S_cfg { op = Ir.S_read { ar_branch; ar_prim; ar_suite }; _ } -> (
      match List.assoc_opt (ar_branch, ar_prim, ar_suite) bases with
      | Some base -> simple (table ^ "_read") [ ("base", string_of_int base) ]
      | None ->
          Error
            (Missing_read_target
               { branch = s.Ir.branch; prim = s.Ir.prim;
                 target = (ar_branch, ar_prim, ar_suite) }))
  | Ir.R_cfg { merge; guard; report; combine } -> (
      let merge_action =
        match (merge, combine) with
        | None, None -> Ok None
        | Some (Ir.G1, op), None ->
            Ok
              (Some
                 (match op with
                 | Ir.M_set -> "set_g1" | Ir.M_min -> "min_g1"
                 | Ir.M_max -> "max_g1" | Ir.M_add -> "add_g1"
                 | Ir.M_sub -> "sub_g1"))
        | Some (Ir.G2, Ir.M_set), None -> Ok (Some "set_g2")
        | Some (Ir.G2, Ir.M_set), Some Ir.M_sub -> Ok (Some "set_g2_comb_sub")
        | Some (Ir.G2, Ir.M_set), Some Ir.M_min -> Ok (Some "set_g2_comb_min")
        | Some (Ir.G2, _), _ ->
            Error
              (Unsupported_r
                 { branch = s.Ir.branch; prim = s.Ir.prim;
                   reason =
                     "G2 merge other than `set` has no action in the static \
                      R menu" })
        | _, Some _ ->
            Error
              (Unsupported_r
                 { branch = s.Ir.branch; prim = s.Ir.prim;
                   reason =
                     "combine without a G2-set merge has no action in the \
                      static R menu" })
      in
      match merge_action with
      | Error e -> Error e
      | Ok merge_action ->
          let merge_entries =
            match merge_action with
            | None -> []
            | Some suffix ->
                [ { table; matches = class_match; action = table ^ "_" ^ suffix;
                    params = []; priority = 1 } ]
          in
          Ok (merge_entries @ trigger_entries ~class_id s guard report))

(* ---------------- classifier product ---------------- *)

(* A branch's classifier pattern as a per-field ternary vector. *)
let branch_pattern (e : Ir.init_entry) =
  List.map
    (fun f ->
      match
        List.find_opt (fun (f', _, _) -> Field.equal f f') e.Ir.ie_matches
      with
      | Some (_, v, m) -> (v, m)
      | None -> (0, 0))
    Ir.init_fields

let patterns_compatible p0 p1 =
  List.for_all2
    (fun (v0, m0) (v1, m1) -> (v0 lxor v1) land m0 land m1 = 0)
    p0 p1

let merge_patterns p0 p1 =
  List.map2
    (fun (v0, m0) (v1, m1) -> ((v0 land m0) lor (v1 land m1), m0 lor m1))
    p0 p1

(* All consistent non-empty subsets of the branch set, as (members,
   merged pattern), members ascending. *)
let consistent_subsets patterns =
  let n = Array.length patterns in
  let subsets = ref [] in
  for bits = 1 to (1 lsl n) - 1 do
    let members =
      List.filter (fun b -> bits land (1 lsl b) <> 0) (List.init n Fun.id)
    in
    let rec merge acc = function
      | [] -> Some acc
      | b :: rest ->
          if patterns_compatible acc patterns.(b) then
            merge (merge_patterns acc patterns.(b)) rest
          else None
    in
    match members with
    | first :: rest -> (
        match merge patterns.(first) rest with
        | Some merged -> subsets := (members, merged) :: !subsets
        | None -> ())
    | [] -> ()
  done;
  List.rev !subsets

(** Number of pipeline passes (1 + recirculations) the densest packet
    takes through this intent: the largest consistent branch subset. *)
let overlap_passes (compiled : Compose.t) =
  let active b = compiled.Compose.branches.(b) <> [] in
  let patterns =
    Array.of_list
      (List.filter_map
         (fun (e : Ir.init_entry) ->
           if active e.Ir.ie_branch then Some (branch_pattern e) else None)
         (Array.to_list compiled.Compose.init_entries))
  in
  List.fold_left
    (fun acc (members, _) -> max acc (List.length members))
    (min 1 (Array.length patterns))
    (consistent_subsets patterns)

(* init / resume / recirc entries for one intent.  [pending_bit b] is
   the global bit position of local branch b (b >= 1). *)
let classifier_entries ~class_id ~pending_bit (entries : Ir.init_entry list) =
  let patterns = Array.of_list (List.map branch_pattern entries) in
  let branch_ids = Array.of_list (List.map (fun e -> e.Ir.ie_branch) entries) in
  let init =
    List.map
      (fun (members, merged) ->
        let first = List.hd members in
        let rest = List.tl members in
        let pending =
          List.fold_left (fun acc b -> acc lor (1 lsl pending_bit b)) 0 rest
        in
        {
          table = "newton_init";
          matches =
            List.concat
              (List.map2
                 (fun f (v, m) ->
                   if m = 0 then []
                   else [ M_ternary (init_field_name f, v, m) ])
                 Ir.init_fields merged);
          action = "set_class";
          params =
            [ ("class_id", string_of_int (class_id + branch_ids.(first)));
              ("pending", string_of_int pending) ];
          priority = 100 + (10 * List.length members);
        })
      (consistent_subsets patterns)
  in
  let resume =
    List.filteri (fun i _ -> i > 0) (Array.to_list branch_ids)
    |> List.mapi (fun i b ->
           let bit = pending_bit (i + 1) in
           {
             table = "newton_resume";
             matches = [ M_ternary ("meta.pending", 1 lsl bit, 1 lsl bit) ];
             action = "resume_class";
             params =
               [ ("class_id", string_of_int (class_id + b));
                 ("clear_mask",
                  string_of_int (0xFFFF land lnot (1 lsl bit))) ];
             priority = 1000 - bit;
           })
  in
  (* Engine semantics: only literal branch 0's guard stop short-circuits
     the remaining branches; a stop on branch >= 1 leaves them running.
     The cancel entry therefore keys on branch 0's class alone — and only
     exists when branch 0 is active, else no stop ever propagates. *)
  let recirc =
    if Array.length branch_ids > 1 && Array.exists (fun b -> b = 0) branch_ids
    then
      [ { table = "newton_recirc";
          matches =
            [ M_exact ("meta.class_id", class_id);
              M_exact ("meta.query_active", 0) ];
          action = "cancel_pending"; params = []; priority = 1 } ]
    else []
  in
  (init, resume, recirc)

(* ---------------- whole-query translation ---------------- *)

let ( let* ) = Result.bind

(** All runtime entries configuring [compiled] under traffic class
    [class_id] (branch b gets [class_id + b]): classifier product
    entries, recirculation entries, and one or more entries per module
    slot.  State arrays are carved out of [alloc] (fresh per call when
    omitted — pass one allocator across calls to build a co-resident
    deployment).  Every inexpressible construct returns a typed
    {!issue}; this function never raises on compiler output. *)
let entries ?(class_id = 1) ?layout ?alloc (compiled : Compose.t) =
  let layout = Option.value layout ~default:Emit.default_layout in
  let alloc =
    match alloc with Some a -> a | None -> allocator layout
  in
  let branches =
    List.filter
      (fun (e : Ir.init_entry) -> compiled.Compose.branches.(e.Ir.ie_branch) <> [])
      (Array.to_list compiled.Compose.init_entries)
  in
  let nb = List.length branches in
  let* () =
    if nb > max_branches then
      Error (Too_many_branches { branches = nb; limit = max_branches })
    else if alloc.next_pending_bit + (nb - 1) > 16 then
      Error (Too_many_branches { branches = nb; limit = max_branches })
    else Ok ()
  in
  let pending_off = alloc.next_pending_bit in
  if nb > 1 then alloc.next_pending_bit <- pending_off + (nb - 1);
  let pending_bit b = pending_off + b - 1 in
  (* allocate every state array first (deterministic: branch order, then
     chain order) so S_read entries can reference sibling arrays *)
  let bases = ref [] in
  let needed = ref alloc.next_word in
  Array.iter
    (fun slots ->
      List.iter
        (fun (s : Ir.slot) ->
          match s.Ir.cfg with
          | Ir.S_cfg { op = Ir.S_bf | Ir.S_cm _ | Ir.S_max _; registers } ->
              bases := ((s.Ir.branch, s.Ir.prim, s.Ir.suite), !needed) :: !bases;
              needed := !needed + registers
          | _ -> ())
        slots)
    compiled.Compose.branches;
  let* () =
    if !needed > alloc.capacity then
      Error (Registers_exhausted { needed = !needed; capacity = alloc.capacity })
    else Ok ()
  in
  alloc.next_word <- !needed;
  let bases = !bases in
  let init, resume, recirc =
    classifier_entries ~class_id ~pending_bit branches
  in
  let* slot_rules =
    Array.fold_left
      (fun acc slots ->
        List.fold_left
          (fun acc (s : Ir.slot) ->
            let* acc = acc in
            let* es =
              slot_entries ~class_id:(class_id + s.Ir.branch) ~bases s
            in
            Ok (acc @ es))
          acc slots)
      (Ok []) compiled.Compose.branches
  in
  Ok (init @ resume @ recirc @ slot_rules)

(** [entries], raising [Invalid_argument] on a typed issue — for
    callers that already ran the analyzer gate. *)
let entries_exn ?class_id ?layout ?alloc compiled =
  match entries ?class_id ?layout ?alloc compiled with
  | Ok e -> e
  | Error issue -> invalid_arg ("Rules.entries: " ^ issue_to_string issue)

(* ---------------- JSON rendering ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let match_to_json = function
  | M_exact (f, v) ->
      Printf.sprintf {|{"field":"%s","type":"exact","value":%d}|} (escape f) v
  | M_ternary (f, v, m) ->
      Printf.sprintf {|{"field":"%s","type":"ternary","value":%d,"mask":%d}|}
        (escape f) v m
  | M_range (f, lo, hi) ->
      Printf.sprintf {|{"field":"%s","type":"range","lo":%d,"hi":%d}|}
        (escape f) lo hi

let entry_to_json e =
  Printf.sprintf
    {|{"table":"%s","priority":%d,"match":[%s],"action":"%s","params":{%s}}|}
    (escape e.table) e.priority
    (String.concat "," (List.map match_to_json e.matches))
    (escape e.action)
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf {|"%s":"%s"|} (escape k) (escape v))
          e.params))

(** Render entries as a JSON array (one entry per line). *)
let to_json entries =
  "[\n" ^ String.concat ",\n" (List.map entry_to_json entries) ^ "\n]\n"
