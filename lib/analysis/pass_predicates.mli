(** Predicate satisfiability (NA020–NA022): interval analysis over a
    branch's field predicates — contradictions (error), tautologies and
    shadowed predicates (warnings). *)

val name : string
val doc : string
val codes : string list
val run : Pass.ctx -> Diag.t list
