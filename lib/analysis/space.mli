(** Exact packet-space solver: decidable set algebra over the canonical
    18-field header space.

    A value of type {!t} denotes a set of packets — a union of {e
    ternary bit-cubes}, each cube constraining some bits of some fields
    to fixed values and leaving the rest free.  Every predicate atom the
    query language admits ([==], [!=], [<], [<=], [>], [>=] over a
    masked field) compiles to such a union {e exactly}, mirroring
    {!Newton_query.Ref_eval}'s semantics bit for bit:
    [(packet.field land mask) op value], with the packet field truncated
    to its declared width.

    On top of cube unions the module provides intersection, union,
    difference, complement, emptiness, containment and {e model
    extraction} — a concrete witness packet inside any non-empty set.
    These are the primitives the [space] analysis pass family
    (NA090–NA094) uses to turn diagnostics into proofs.

    All operations are exact.  Cube counts can grow on adversarial
    inputs, so every operation runs under a global budget; exceeding it
    raises {!Too_complex} (callers degrade to the interval passes, they
    never report wrong answers). *)

open Newton_packet
open Newton_query

type t

(** Raised when an operation would exceed the internal cube budget.
    Exactness is preserved by refusing, never by approximating. *)
exception Too_complex

(** The set of all packets. *)
val universe : t

(** The empty set. *)
val empty : t

val is_empty : t -> bool

(** [is_universe s] — does [s] contain every packet? *)
val is_universe : t -> bool

(** Number of cubes in the union (a complexity measure, not a
    cardinality). *)
val cube_count : t -> int

(** [atom field mask op value] — the exact set of packets satisfying
    [(packet.field land mask) op value].  Total: malformed masks and
    out-of-range values yield the (exact) constant sets the reference
    evaluator's arithmetic induces — e.g. an equality against a value
    with bits outside the mask is [empty], never an error. *)
val atom : Field.t -> int -> Ast.cmp_op -> int -> t

(** [of_pred p] — [atom] for a [Cmp]; [universe] for a [Result_cmp]
    (aggregate thresholds do not constrain the packet space). *)
val of_pred : Ast.pred -> t

(** Conjunction of a predicate list (a [Filter]'s semantics). *)
val of_preds : Ast.pred list -> t

(** [of_matches ms] — the set matched by a ternary classifier entry:
    the conjunction of [(field land mask) = value] over [ms] (an
    {!Newton_compiler.Ir.init_entry}'s match list; [[]] = match-all). *)
val of_matches : (Field.t * int * int) list -> t

val inter : t -> t -> t
val union : t -> t -> t

(** [diff a b] — packets in [a] but not in [b]. *)
val diff : t -> t -> t

val compl : t -> t

(** [subset a b] — is every packet of [a] in [b]? *)
val subset : t -> t -> bool

val equal : t -> t -> bool

(** [mem s p] — does the set contain the packet? *)
val mem : t -> Packet.t -> bool

(** A concrete packet inside the set, or [None] iff the set is empty.
    The model's unconstrained fields are zero; its timestamp is 0.
    [model s] is guaranteed to satisfy [mem s] (and hence, for a set
    built with {!of_preds}, to pass the same predicates under
    {!Newton_query.Ref_eval}'s comparison arithmetic). *)
val model : t -> Packet.t option

(** [pred_holds p pkt] — the reference evaluator's verdict for one
    [Cmp] atom ([Result_cmp] is vacuously true): exactly
    [Ast.cmp_holds op (Packet.get pkt field land mask) value].  The
    oracle {!atom} is tested against. *)
val pred_holds : Ast.pred -> Packet.t -> bool

(** Human rendering of a set (cube list, constrained fields only). *)
val to_string : t -> string
