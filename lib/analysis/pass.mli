(** The common surface every analysis pass implements, plus the shared
    analysis context the driver ({!Check}) builds once per query. *)

open Newton_packet
open Newton_query
open Newton_compiler

(** How the parallel replay plans to shard the packet stream, as facts
    the shard-coverage pass (NA095) can reason about — decoupled from
    [Newton_runtime.Shard.strategy] so the analysis library stays below
    the runtime in the dependency order.  [Shard_flow] and
    [Shard_branch_key] carry their own documented locality story;
    [Shard_fields] names the hashed fields; [Shard_custom] is an opaque
    user function the checker cannot inspect. *)
type shard_facts =
  | Shard_flow
  | Shard_fields of Field.t list
  | Shard_branch_key
  | Shard_custom

(** Tunables the resource passes check against. *)
type config = {
  options : Decompose.options;  (** compile options analysis assumes *)
  rule_capacity : int;          (** entries per (stage, kind, set) cell *)
  register_budget : int;        (** registers one query may allocate *)
  expected_keys : int;          (** assumed distinct keys per window *)
  fpr_bound : float;            (** tolerated Bloom false-positive rate *)
  cm_epsilon : float;           (** tolerated CM relative error (of mass) *)
  cm_delta : float;             (** tolerated CM error probability *)
  shard : shard_facts option;   (** planned shard strategy, when known *)
}

val default_config : config

(** Placement facts, decoupled from the controller's [Placement.t] so
    the analysis library stays below the controller in the dependency
    order. *)
type target = {
  stages_per_switch : int;
  num_switches : int;
  switch_slices : int list array;   (** per switch: 1-based slice ids *)
  slice_ranges : (int * int) array; (** per slice: stage lo/hi (0-based) *)
  max_path_depth : int;             (** deepest slice id actually placed *)
}

val target :
  stages_per_switch:int -> num_switches:int -> switch_slices:int list array ->
  slice_ranges:(int * int) array -> max_path_depth:int -> target

(** Everything a pass may look at. *)
type ctx = {
  query : Ast.t;
  cfg : config;
  compiled : Compose.t option;        (** None when compilation failed *)
  compile_error : string option;      (** why, when it failed *)
  peers : (Ast.t * Compose.t option) list;
      (** other queries of the deployment (conflict detection) *)
  co_resident : Compose.t list;
      (** compiled queries sharing the pipeline (capacity stacking) *)
  target : target option;             (** placement facts, when known *)
}

module type S = sig
  val name : string
  val doc : string

  (** Codes this pass can emit (documentation + golden-test guard). *)
  val codes : string list

  val run : ctx -> Diag.t list
end
