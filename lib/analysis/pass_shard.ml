(** Shard/state coverage (NA095).

    The sharded replay path splits the packet stream across engine
    domains by a {!Pass.shard_facts} strategy; stateful primitives keep
    per-key state {e inside one domain only}.  The split is sound for a
    [distinct]/[reduce] exactly when packets that share the primitive's
    key always land in the same domain — i.e. every hashed shard field
    is one of the primitive's key fields, at full mask (the shard hash
    sees the raw field value, so a masked key still splits on the
    unmasked low bits).

    [Shard_flow] and [Shard_branch_key] carry their own documented
    locality story and are accepted; [Shard_fields] is judged per
    stateful primitive; [Shard_custom] is opaque, so any stateful
    primitive draws the warning. *)

open Newton_packet
open Newton_query

let name = "shard"
let doc =
  "sharded-replay state coverage: shard key fields that fail to cover a \
   stateful primitive's keys split its per-key state across domains"
let codes = [ "NA095" ]

(* Shard fields not guaranteed constant across packets sharing the
   primitive's key: absent from the key list, or present only under a
   partial mask. *)
let uncovered shard_fields keys =
  List.filter
    (fun f ->
      not
        (List.exists
           (fun (k : Ast.key) ->
             Field.equal k.Ast.field f && k.Ast.mask = Field.full_mask f)
           keys))
    shard_fields

let run (ctx : Pass.ctx) =
  match ctx.Pass.cfg.Pass.shard with
  | None | Some Pass.Shard_flow | Some Pass.Shard_branch_key -> []
  | Some strategy ->
      let query = ctx.Pass.query in
      List.concat
        (List.mapi
           (fun b prims ->
             List.concat
               (List.mapi
                  (fun p prim ->
                    let keys =
                      match prim with
                      | Ast.Distinct ks -> Some ("distinct", ks)
                      | Ast.Reduce { keys; _ } -> Some ("reduce", keys)
                      | Ast.Filter _ | Ast.Map _ -> None
                    in
                    match (keys, strategy) with
                    | None, _ -> []
                    | Some (what, ks), Pass.Shard_fields fs -> (
                        match uncovered fs ks with
                        | [] -> []
                        | missing ->
                            [
                              Diag.make ~code:"NA095" ~severity:Diag.Warning
                                ~span:(Diag.Prim { branch = b; prim = p })
                                ~query
                                ~hint:
                                  "shard by a full-mask subset of the \
                                   primitive's key fields, or merge domain \
                                   results off-path"
                                (Printf.sprintf
                                   "field shard splits this %s's per-key \
                                    state across domains: packets sharing \
                                    (%s) can differ on hashed field%s %s"
                                   what
                                   (Ast.keys_to_string ks)
                                   (if List.length missing = 1 then "" else "s")
                                   (String.concat ", "
                                      (List.map Field.to_string missing)));
                            ])
                    | Some (what, ks), Pass.Shard_custom ->
                        [
                          Diag.make ~code:"NA095" ~severity:Diag.Warning
                            ~span:(Diag.Prim { branch = b; prim = p })
                            ~query
                            ~hint:
                              "the checker cannot inspect a custom shard \
                               function; use a field shard covering the key, \
                               or verify domain placement externally"
                            (Printf.sprintf
                               "custom shard function cannot be proven to \
                                keep this %s's per-key state (%s) within one \
                                domain"
                               what (Ast.keys_to_string ks));
                        ]
                    | Some _, (Pass.Shard_flow | Pass.Shard_branch_key) -> [])
                  prims))
           query.Ast.branches)
