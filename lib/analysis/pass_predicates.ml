(** Predicate satisfiability (NA020–NA022): interval analysis over the
    field predicates of a branch.

    Packet header fields are immutable along a chain, so knowledge
    accumulates across filters: for every (field, mask) pair the pass
    keeps the feasible interval [lo, hi] plus the values excluded by
    [!=] predicates.  Each [Cmp] predicate is judged against

    - the {e fresh} domain of its (field, mask): unchanged means the
      predicate always holds — a tautology (NA021);
    - the accumulated environment: unchanged means an earlier predicate
      (possibly one absorbed into newton_init) already implies it
      (NA022);
    - emptiness after application: the conjunction can never match and
      the branch is dead (NA020).

    [Result_cmp] thresholds are owned by {!Pass_threshold}; predicates
    over different masks of one field are tracked independently (a
    sound under-approximation). *)

open Newton_query
open Newton_packet

let name = "predicates"
let doc = "unsatisfiable, tautological and shadowed filter predicates"
let codes = [ "NA020"; "NA021"; "NA022" ]

(* Feasible set for one (field, mask): interval plus != exclusions. *)
type interval = { lo : int; hi : int; excl : int list }

let fresh mask = { lo = 0; hi = mask; excl = [] }

(* Count exclusions inside [lo, hi] (exclusions are few; intervals can
   be huge, so emptiness is decided arithmetically). *)
let is_empty iv =
  iv.lo > iv.hi
  ||
  let inside = List.filter (fun v -> v >= iv.lo && v <= iv.hi) iv.excl in
  let span = iv.hi - iv.lo + 1 in
  span <= List.length (List.sort_uniq compare inside)

let normalize iv =
  { iv with excl = List.sort_uniq compare (List.filter (fun v -> v >= iv.lo && v <= iv.hi) iv.excl) }

let equal a b =
  let a = normalize a and b = normalize b in
  a.lo = b.lo && a.hi = b.hi && a.excl = b.excl

(* Apply [op value] to an interval.  [value] is already masked. *)
let apply iv op value =
  match op with
  | Ast.Eq ->
      { lo = max iv.lo value; hi = min iv.hi value; excl = iv.excl }
  | Ast.Neq -> { iv with excl = value :: iv.excl }
  | Ast.Gt -> { iv with lo = max iv.lo (value + 1) }
  | Ast.Ge -> { iv with lo = max iv.lo value }
  | Ast.Lt -> { iv with hi = min iv.hi (value - 1) }
  | Ast.Le -> { iv with hi = min iv.hi value }

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  let absorbed b =
    match ctx.Pass.compiled with
    | None -> false
    | Some c ->
        b < Array.length c.Newton_compiler.Compose.init_entries
        && c.Newton_compiler.Compose.init_entries.(b).Newton_compiler.Ir.ie_matches
           <> []
  in
  List.concat
    (List.mapi
       (fun b prims ->
         let env : (Field.t * int, interval) Hashtbl.t = Hashtbl.create 8 in
         let diags = ref [] in
         List.iteri
           (fun p prim ->
             match prim with
             | Ast.Filter preds ->
                 let span = Diag.Prim { branch = b; prim = p } in
                 List.iter
                   (function
                     | Ast.Result_cmp _ -> ()
                     | Ast.Cmp { field; mask; op; value } ->
                         (* Malformed masks/values are NA010-NA013
                            territory; skip them here. *)
                         let fm = Field.full_mask field in
                         if mask <> 0 && mask land lnot fm = 0
                            && value land lnot fm = 0
                         then begin
                           let v = value land mask in
                           let known =
                             match Hashtbl.find_opt env (field, mask) with
                             | Some iv -> iv
                             | None -> fresh mask
                           in
                           let pretty =
                             Ast.pred_to_string
                               (Ast.Cmp { field; mask; op; value })
                           in
                           if equal (apply (fresh mask) op v) (fresh mask) then
                             diags :=
                               Diag.make ~code:"NA021" ~severity:Diag.Warning
                                 ~span ~query
                                 ~hint:"the predicate matches every packet; drop it"
                                 (Printf.sprintf "predicate %s always holds"
                                    pretty)
                               :: !diags
                           else
                             let next = apply known op v in
                             if equal next known then
                               let where =
                                 if p > 0 && absorbed b then
                                   " (the front filter is absorbed into \
                                    newton_init)"
                                 else ""
                               in
                               diags :=
                                 Diag.make ~code:"NA022" ~severity:Diag.Warning
                                   ~span ~query
                                   ~hint:"drop the shadowed predicate"
                                   (Printf.sprintf
                                      "predicate %s is already implied by \
                                       earlier predicates%s"
                                      pretty where)
                                 :: !diags
                             else begin
                               Hashtbl.replace env (field, mask) next;
                               if is_empty next then
                                 diags :=
                                   Diag.make ~code:"NA020" ~severity:Diag.Error
                                     ~span ~query
                                     ~hint:
                                       "the conjunction over this field is \
                                        unsatisfiable; the branch never fires"
                                     (Printf.sprintf
                                        "predicate %s contradicts earlier \
                                         predicates — no packet can match"
                                        pretty)
                                   :: !diags
                             end
                         end)
                   preds
             | Ast.Map _ | Ast.Distinct _ | Ast.Reduce _ -> ())
           prims;
         List.rev !diags)
       query.Ast.branches)
