(** Exact packet-space analysis (NA090–NA094): branch satisfiability
    with near-miss witnesses, branch and cross-intent subsumption,
    exact recirculation overlap, deployment coverage gaps.  Every
    finding carries a concrete witness packet when one exists. *)

include Pass.S
