(** Structured diagnostics.

    Every analysis pass reports findings as {!t} values: a stable code
    (NAxxx), a severity, the query it concerns, a span locating the
    finding inside the query, a human message and an optional fix hint.
    Codes are append-only — front-ends and golden tests key on them. *)

open Newton_util

type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

(** Where in the query (or its compiled/placed form) a finding sits. *)
type span =
  | Query                                  (** the query as a whole *)
  | Branch of int
  | Prim of { branch : int; prim : int }
  | Combine
  | Stage of int                           (** a pipeline stage cell *)
  | Switch of int                          (** a placement switch *)
  | Cut of int                             (** a CQE slice (1-based) *)

let span_to_string = function
  | Query -> "query"
  | Branch b -> Printf.sprintf "b%d" b
  | Prim { branch; prim } -> Printf.sprintf "b%d.p%d" branch prim
  | Combine -> "combine"
  | Stage s -> Printf.sprintf "stage%d" s
  | Switch s -> Printf.sprintf "sw%d" s
  | Cut d -> Printf.sprintf "cut%d" d

type t = {
  code : string;          (** stable, e.g. "NA020" *)
  severity : severity;
  query_id : int;
  query_name : string;
  span : span;
  message : string;
  hint : string option;
}

let make ~code ~severity ?(span = Query) ?hint ~(query : Newton_query.Ast.t)
    message =
  {
    code;
    severity;
    query_id = query.Newton_query.Ast.id;
    query_name = query.Newton_query.Ast.name;
    span;
    message;
    hint;
  }

let to_string d =
  let hint =
    match d.hint with None -> "" | Some h -> Printf.sprintf "\n    hint: %s" h
  in
  Printf.sprintf "%s[%s] %s(Q%d) %s: %s%s"
    (severity_to_string d.severity)
    d.code d.query_name d.query_id (span_to_string d.span) d.message hint

let to_json d =
  Json.Obj
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_to_string d.severity));
      ("query_id", Json.Int d.query_id);
      ("query_name", Json.String d.query_name);
      ("span", Json.String (span_to_string d.span));
      ("message", Json.String d.message);
      ("hint", match d.hint with None -> Json.Null | Some h -> Json.String h);
    ]

(** Severity-major order (errors first), then query, code and span, so
    reports and JSON artifacts are deterministic. *)
let compare a b =
  let c = Stdlib.compare (severity_rank b.severity) (severity_rank a.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.query_id b.query_id in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.code b.code in
      if c <> 0 then c
      else
        let c = Stdlib.compare (span_to_string a.span) (span_to_string b.span) in
        if c <> 0 then c else Stdlib.compare a.message b.message

let max_severity diags =
  List.fold_left
    (fun acc d -> if severity_rank d.severity > severity_rank acc then d.severity else acc)
    Info diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

(** Process exit code of a report: 0 clean/info, 1 warnings, 2 errors. *)
let exit_code diags =
  match diags with [] -> 0 | _ -> severity_rank (max_severity diags)
