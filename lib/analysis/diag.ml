(** Structured diagnostics.

    Every analysis pass reports findings as {!t} values: a stable code
    (NAxxx), a severity, the query it concerns, a span locating the
    finding inside the query, a human message, an optional fix hint and
    — for the exact packet-space passes — an optional {e witness
    packet} proving the finding.  Codes are append-only — front-ends
    and golden tests key on them. *)

open Newton_util
open Newton_packet

type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

(** Where in the query (or its compiled/placed form) a finding sits. *)
type span =
  | Query                                  (** the query as a whole *)
  | Branch of int
  | Prim of { branch : int; prim : int }
  | Combine
  | Stage of int                           (** a pipeline stage cell *)
  | Switch of int                          (** a placement switch *)
  | Cut of int                             (** a CQE slice (1-based) *)

let span_to_string = function
  | Query -> "query"
  | Branch b -> Printf.sprintf "b%d" b
  | Prim { branch; prim } -> Printf.sprintf "b%d.p%d" branch prim
  | Combine -> "combine"
  | Stage s -> Printf.sprintf "stage%d" s
  | Switch s -> Printf.sprintf "sw%d" s
  | Cut d -> Printf.sprintf "cut%d" d

(* Numeric span order (constructor-major, then indices) so sorted
   reports don't depend on string quirks like "b10" < "b2". *)
let span_rank = function
  | Query -> (0, 0, 0)
  | Branch b -> (1, b, 0)
  | Prim { branch; prim } -> (2, branch, prim)
  | Combine -> (3, 0, 0)
  | Stage s -> (4, s, 0)
  | Switch s -> (5, s, 0)
  | Cut d -> (6, d, 0)

type t = {
  code : string;          (** stable, e.g. "NA020" *)
  severity : severity;
  query_id : int;
  query_name : string;
  span : span;
  message : string;
  hint : string option;
  witness : Packet.t option;
      (** a concrete packet demonstrating the finding (space passes) *)
}

let make ~code ~severity ?(span = Query) ?hint ?witness
    ~(query : Newton_query.Ast.t) message =
  {
    code;
    severity;
    query_id = query.Newton_query.Ast.id;
    query_name = query.Newton_query.Ast.name;
    span;
    message;
    hint;
    witness;
  }

(* Compact field=value rendering of a witness (non-zero fields; IPs as
   dotted quads).  An all-zero packet is itself a valid witness. *)
let witness_to_string pkt =
  let parts =
    List.filter_map
      (fun f ->
        let v = Packet.get pkt f in
        if v = 0 then None
        else
          Some
            (match f with
            | Field.Src_ip | Field.Dst_ip ->
                Printf.sprintf "%s=%s" (Field.to_string f)
                  (Packet.ip_to_string v)
            | _ -> Printf.sprintf "%s=%d" (Field.to_string f) v))
      Field.all
  in
  match parts with
  | [] -> "<all fields zero>"
  | _ -> String.concat " " parts

let to_string ?(witness = false) d =
  let hint =
    match d.hint with None -> "" | Some h -> Printf.sprintf "\n    hint: %s" h
  in
  let wit =
    match d.witness with
    | Some p when witness ->
        Printf.sprintf "\n    witness: %s" (witness_to_string p)
    | _ -> ""
  in
  Printf.sprintf "%s[%s] %s(Q%d) %s: %s%s%s"
    (severity_to_string d.severity)
    d.code d.query_name d.query_id (span_to_string d.span) d.message hint wit

(* Witness JSON: the non-zero fields only (absent fields are zero), in
   Field.index order — a lossless, stable encoding. *)
let witness_to_json pkt =
  Json.Obj
    (List.filter_map
       (fun f ->
         let v = Packet.get pkt f in
         if v = 0 then None else Some (Field.to_string f, Json.Int v))
       Field.all)

let to_json ?(witness = false) d =
  Json.Obj
    ([
       ("code", Json.String d.code);
       ("severity", Json.String (severity_to_string d.severity));
       ("query_id", Json.Int d.query_id);
       ("query_name", Json.String d.query_name);
       ("span", Json.String (span_to_string d.span));
       ("message", Json.String d.message);
       ("hint", match d.hint with None -> Json.Null | Some h -> Json.String h);
     ]
    @
    match d.witness with
    | Some p when witness -> [ ("witness", witness_to_json p) ]
    | _ -> [])

(** Severity-major order (errors first), then query, code and span, so
    human reports lead with what matters. *)
let compare a b =
  let c = Stdlib.compare (severity_rank b.severity) (severity_rank a.severity) in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.query_id b.query_id in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.code b.code in
      if c <> 0 then c
      else
        let c = Stdlib.compare (span_rank a.span) (span_rank b.span) in
        if c <> 0 then c else Stdlib.compare a.message b.message

(** Report order for machine output: (query, span, code)-major, so a
    JSON report is stable under pass additions and severity retunes —
    a new pass inserts rows locally instead of reshuffling the file. *)
let compare_stable a b =
  let c = Stdlib.compare a.query_id b.query_id in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.query_name b.query_name in
    if c <> 0 then c
    else
      let c = Stdlib.compare (span_rank a.span) (span_rank b.span) in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.code b.code in
        if c <> 0 then c else Stdlib.compare a.message b.message

let max_severity diags =
  List.fold_left
    (fun acc d -> if severity_rank d.severity > severity_rank acc then d.severity else acc)
    Info diags

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

(** Process exit code of a report: 0 clean/info, 1 warnings, 2 errors. *)
let exit_code diags =
  match diags with [] -> 0 | _ -> severity_rank (max_severity diags)
