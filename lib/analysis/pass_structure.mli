(** Structural validity (NA001–NA009): the {!Newton_query.Ast.validate}
    errors plus combine-shape constraints, as diagnostics. *)

val name : string
val doc : string
val codes : string list
val run : Pass.ctx -> Diag.t list
