(** Field-width and mask validity (NA010–NA015).

    Every key and field predicate carries a mask; the data plane
    silently truncates values to the field width and packs multi-field
    equality filters into a 30-bit word ({!Decompose.pack_values}).
    This pass rejects masks/values that cannot mean what was written,
    warns when the packed comparison loses bits, and warns when a
    protocol-dependent field (ICMP type/code) is used without pinning
    the protocol — the decoder leaves such fields zero on other
    traffic, so the match silently includes non-ICMP packets. *)

open Newton_query
open Newton_packet

let name = "width"
let doc =
  "field widths, masks, comparison values, packed-filter width, \
   protocol-dependent fields"
let codes = [ "NA010"; "NA011"; "NA012"; "NA013"; "NA014"; "NA015" ]

(* Bits needed to represent [mask] (position of its highest set bit + 1). *)
let mask_bits mask =
  let rec go n v = if v = 0 then n else go (n + 1) (v lsr 1) in
  go 0 mask

let check_key ~query ~span { Ast.field; mask } =
  let fm = Field.full_mask field in
  if mask land lnot fm <> 0 then
    [
      Diag.make ~code:"NA010" ~severity:Diag.Error ~span ~query
        ~hint:(Printf.sprintf "%s is %d bits wide (mask <= 0x%x)"
                 (Field.to_string field) (Field.width field) fm)
        (Printf.sprintf "mask 0x%x wider than field %s" mask
           (Field.to_string field));
    ]
  else if mask = 0 then
    [
      Diag.make ~code:"NA011" ~severity:Diag.Error ~span ~query
        ~hint:"a zero mask matches every packet and keys every flow together"
        (Printf.sprintf "zero mask on field %s" (Field.to_string field));
    ]
  else []

let check_pred ~query ~span = function
  | Ast.Result_cmp _ -> []
  | Ast.Cmp { field; mask; op; value } ->
      let fm = Field.full_mask field in
      let key_diags = check_key ~query ~span { Ast.field; mask } in
      let value_diags =
        if value land lnot fm <> 0 then
          [
            Diag.make ~code:"NA012" ~severity:Diag.Error ~span ~query
              ~hint:(Printf.sprintf "%s holds values up to %d"
                       (Field.to_string field) fm)
              (Printf.sprintf "comparison value %d exceeds the %d-bit width of %s"
                 value (Field.width field) (Field.to_string field));
          ]
        else if
          op = Ast.Eq && mask <> 0 && mask land lnot fm = 0
          && value land mask <> value
        then
          [
            Diag.make ~code:"NA013" ~severity:Diag.Error ~span ~query
              ~hint:(Printf.sprintf "the hardware compares (pkt & 0x%x); write %d"
                       mask (value land mask))
              (Printf.sprintf
                 "equality value %d has bits outside mask 0x%x — the match \
                  silently tests %d"
                 value mask (value land mask));
          ]
        else []
      in
      key_diags @ value_diags

(* Is branch [b]'s front filter absorbed into newton_init?  Absorbed
   entries carry ternary matches; a match-all entry has none. *)
let absorbed compiled b =
  match compiled with
  | None -> false
  | Some c ->
      b < Array.length c.Newton_compiler.Compose.init_entries
      && c.Newton_compiler.Compose.init_entries.(b).Newton_compiler.Ir.ie_matches
         <> []

let check_packed ~query ~span preds =
  let eqs =
    List.filter_map
      (function
        | Ast.Cmp { mask; op = Ast.Eq; _ } -> Some (mask_bits mask)
        | _ -> None)
      preds
  in
  let total = List.fold_left ( + ) 0 eqs in
  if List.length eqs >= 2 && total > 30 then
    [
      Diag.make ~code:"NA014" ~severity:Diag.Warning ~span ~query
        ~hint:"split the filter or mask fields down to 30 significant bits"
        (Printf.sprintf
           "multi-field equality filter packs %d significant bits into a \
            30-bit comparison — matches may collide"
           total);
    ]
  else []

(* NA015: ICMP type/code is only populated when the packet is ICMP or
   ICMPv6; a branch using those fields without an equality predicate
   pinning [Proto] to one of the ICMP protocols silently matches the
   zero type/code the decoder leaves on every other packet. *)
let icmp_protos = [ Field.Protocol.icmp; Field.Protocol.icmpv6 ]

let branch_pins_icmp prims =
  List.exists
    (function
      | Ast.Filter preds ->
          List.exists
            (function
              | Ast.Cmp { field = Field.Proto; op = Ast.Eq; mask; value } ->
                  List.mem (value land mask) icmp_protos
              | _ -> false)
            preds
      | _ -> false)
    prims

let check_icmp_fields ~query b prims =
  if branch_pins_icmp prims then []
  else
    List.concat
      (List.mapi
         (fun p prim ->
           let span = Diag.Prim { branch = b; prim = p } in
           let used_fields =
             match prim with
             | Ast.Filter preds ->
                 List.filter_map
                   (function
                     | Ast.Cmp { field; _ } -> Some field
                     | Ast.Result_cmp _ -> None)
                   preds
             | Ast.Map keys | Ast.Distinct keys ->
                 List.map (fun { Ast.field; _ } -> field) keys
             | Ast.Reduce { keys; _ } ->
                 List.map (fun { Ast.field; _ } -> field) keys
           in
           List.filter_map
             (function
               | (Field.Icmp_type | Field.Icmp_code) as f ->
                   Some
                     (Diag.make ~code:"NA015" ~severity:Diag.Warning ~span
                        ~query
                        ~hint:
                          (Printf.sprintf
                             "add a filter like pkt.proto == %d (icmp) or \
                              pkt.proto == %d (icmpv6)"
                             Field.Protocol.icmp Field.Protocol.icmpv6)
                        (Printf.sprintf
                           "%s used without restricting pkt.proto to \
                            ICMP/ICMPv6 — the field is zero on other traffic"
                           (Field.to_string f)))
               | _ -> None)
             used_fields)
         prims)

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  let icmp_diags =
    List.concat
      (List.mapi (fun b prims -> check_icmp_fields ~query b prims)
         query.Ast.branches)
  in
  icmp_diags
  @ List.concat
    (List.mapi
       (fun b prims ->
         List.concat
           (List.mapi
              (fun p prim ->
                let span = Diag.Prim { branch = b; prim = p } in
                match prim with
                | Ast.Filter preds ->
                    let per_pred =
                      List.concat_map (check_pred ~query ~span) preds
                    in
                    (* Absorbed front filters never reach the packed
                       comparison path — newton_init matches ternary. *)
                    let packed =
                      if p = 0 && absorbed ctx.Pass.compiled b then []
                      else check_packed ~query ~span preds
                    in
                    per_pred @ packed
                | Ast.Map keys | Ast.Distinct keys ->
                    List.concat_map (check_key ~query ~span) keys
                | Ast.Reduce { keys; _ } ->
                    List.concat_map (check_key ~query ~span) keys)
              prims))
       query.Ast.branches)
