(** Threshold reachability (NA030–NA031).

    Tracks the range of the global result along each branch: a
    [reduce(count)] / [reduce(sum)] can reach any 31-bit value, a
    [reduce(max f)] is bounded by the field's width, and a [distinct]
    folds a Bloom bit (0 or 1).  A [Result_cmp] threshold that excludes
    the entire range can never fire (NA030); one that excludes nothing
    always fires and filters nothing (NA031).  The combine threshold is
    judged against the combined range: [Sub]/[Pair] report the left
    branch's aggregate, [Min] the smaller of both. *)

open Newton_query
open Newton_packet

let name = "threshold"
let doc = "unreachable and trivially-true aggregate thresholds"
let codes = [ "NA030"; "NA031" ]

(* The engine's accumulators are 31-bit-safe counters. *)
let acc_max = 0x7FFFFFFF

type range = { lo : int; hi : int }

let after_agg = function
  | Ast.Count | Ast.Sum_field _ -> { lo = 0; hi = acc_max }
  | Ast.Max_field f -> { lo = 0; hi = Field.full_mask f }

let clip r op value =
  match op with
  | Ast.Eq -> { lo = max r.lo value; hi = min r.hi value }
  | Ast.Neq -> r (* at most one point leaves; the range survives *)
  | Ast.Gt -> { r with lo = max r.lo (value + 1) }
  | Ast.Ge -> { r with lo = max r.lo value }
  | Ast.Lt -> { r with hi = min r.hi (value - 1) }
  | Ast.Le -> { r with hi = min r.hi value }

let judge ~query ~span r op value =
  let clipped = clip r op value in
  let pretty =
    Printf.sprintf "count %s %d" (Ast.cmp_to_string op) value
  in
  if clipped.lo > clipped.hi then
    [
      Diag.make ~code:"NA030" ~severity:Diag.Error ~span ~query
        ~hint:
          (Printf.sprintf
             "the aggregate here stays within [%d, %d]; lower the threshold"
             r.lo r.hi)
        (Printf.sprintf "threshold %s can never hold" pretty);
    ]
  else if op <> Ast.Neq && clipped.lo = r.lo && clipped.hi = r.hi then
    [
      Diag.make ~code:"NA031" ~severity:Diag.Warning ~span ~query
        ~hint:"the filter passes every update; raise or drop the threshold"
        (Printf.sprintf "threshold %s always holds" pretty);
    ]
  else []

(* Walk one branch; returns (diags, final aggregate range). *)
let walk_branch ~query b prims =
  let diags = ref [] in
  let range = ref { lo = 0; hi = 0 } (* accumulators start at 0 *) in
  List.iteri
    (fun p prim ->
      match prim with
      | Ast.Filter preds ->
          let span = Diag.Prim { branch = b; prim = p } in
          List.iter
            (function
              | Ast.Cmp _ -> ()
              | Ast.Result_cmp { op; value } ->
                  diags := !diags @ judge ~query ~span !range op value;
                  (* downstream only sees aggregates passing the guard *)
                  let clipped = clip !range op value in
                  if clipped.lo <= clipped.hi then range := clipped)
            preds
      | Ast.Distinct _ -> range := { lo = 0; hi = 1 }
      | Ast.Reduce { agg; _ } -> range := after_agg agg
      | Ast.Map _ -> ())
    prims;
  (!diags, !range)

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  let per_branch = List.mapi (walk_branch ~query) query.Ast.branches in
  let branch_diags = List.concat_map fst per_branch in
  let combine_diags =
    match (query.Ast.combine, per_branch) with
    | Some { Ast.op; threshold = Ast.Result_cmp { op = cop; value } },
      [ (_, ra); (_, rb) ] ->
        let combined =
          match op with
          | Ast.Sub | Ast.Pair -> { lo = 0; hi = ra.hi }
          | Ast.Min -> { lo = 0; hi = min ra.hi rb.hi }
        in
        judge ~query ~span:Diag.Combine combined cop value
    | _ -> []
  in
  branch_diags @ combine_diags
