(** Static capacity (NA050–NA053): rule-cell occupancy, register
    budget, and (with placement facts) stage commitment and path-depth
    fit. *)

val name : string
val doc : string
val codes : string list
val run : Pass.ctx -> Diag.t list
