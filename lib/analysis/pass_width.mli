(** Field-width and mask validity (NA010–NA015): oversized/zero masks,
    out-of-width comparison values, equality values outside their mask,
    lossy 30-bit packed multi-field filters, and protocol-dependent
    fields (ICMP type/code) used without pinning the protocol. *)

val name : string
val doc : string
val codes : string list
val run : Pass.ctx -> Diag.t list
