(** Structural validity (NA001–NA009): the {!Ast.validate} errors plus
    the combine-shape constraints the compiler enforces ad hoc
    ([Decompose] raises [Unsupported] for them), surfaced here as
    first-class diagnostics so a bad intent fails with codes instead of
    exceptions. *)

open Newton_query

let name = "structure"
let doc = "query shape: branches, keys, combine arity and thresholds"

let codes =
  [ "NA001"; "NA002"; "NA003"; "NA004"; "NA005"; "NA006"; "NA007"; "NA008"; "NA009" ]

let of_error ~query = function
  | Ast.Empty_query ->
      Diag.make ~code:"NA001" ~severity:Diag.Error ~query
        ~hint:"a query needs at least one branch of primitives"
        "query has no branches"
  | Ast.Empty_branch i ->
      Diag.make ~code:"NA002" ~severity:Diag.Error ~span:(Diag.Branch i) ~query
        "branch is empty"
  | Ast.Missing_combine ->
      Diag.make ~code:"NA003" ~severity:Diag.Error ~span:Diag.Combine ~query
        ~hint:"add combine(op, threshold) to merge the branches"
        "multi-branch query lacks a combine step"
  | Ast.Combine_without_branches ->
      Diag.make ~code:"NA004" ~severity:Diag.Error ~span:Diag.Combine ~query
        "combine given but the query has fewer than two branches"
  | Ast.Reduce_after_nothing i ->
      Diag.make ~code:"NA005" ~severity:Diag.Error ~span:(Diag.Branch i) ~query
        ~hint:"place a distinct/reduce before the threshold filter"
        "threshold filter (count cmp) before any distinct/reduce"
  | Ast.Empty_keys i ->
      Diag.make ~code:"NA006" ~severity:Diag.Error ~span:(Diag.Branch i) ~query
        "primitive with an empty key list"
  | Ast.Combine_branch_without_reduce i ->
      Diag.make ~code:"NA007" ~severity:Diag.Error ~span:(Diag.Branch i) ~query
        ~hint:"each combined branch must aggregate before merging"
        "combine branch has no reduce primitive"
  | Ast.Combine_field_threshold ->
      Diag.make ~code:"NA008" ~severity:Diag.Error ~span:Diag.Combine ~query
        ~hint:"use a count comparison (Result_cmp) as the combine threshold"
        "combine threshold tests a header field, not the combined count"
  | Ast.Combine_arity n ->
      Diag.make ~code:"NA009" ~severity:Diag.Error ~span:Diag.Combine ~query
        (Printf.sprintf "combine requires exactly two branches, query has %d" n)
  | Ast.Internal msg ->
      Diag.make ~code:"NA099" ~severity:Diag.Error ~query
        ("internal invariant violated: " ^ msg)

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  let base = List.map (of_error ~query) (Ast.validate query) in
  let extra =
    match query.Ast.combine with
    | None -> []
    | Some combine ->
        let arity =
          let n = List.length query.Ast.branches in
          if n > 2 then [ of_error ~query (Ast.Combine_arity n) ] else []
        in
        let threshold =
          match combine.Ast.threshold with
          | Ast.Cmp _ -> [ of_error ~query Ast.Combine_field_threshold ]
          | Ast.Result_cmp _ -> []
        in
        let no_reduce =
          List.concat
            (List.mapi
               (fun i prims ->
                 let has_reduce =
                   List.exists (function Ast.Reduce _ -> true | _ -> false) prims
                 in
                 if has_reduce || prims = [] then []
                 else [ of_error ~query (Ast.Combine_branch_without_reduce i) ])
               query.Ast.branches)
        in
        arity @ threshold @ no_reduce
  in
  base @ extra
