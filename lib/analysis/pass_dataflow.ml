(** Map-projection liveness (NA025–NA026).

    A [map] narrows the tuple to its keys; the fields that matter
    downstream are the ones the {e next} keyed primitive ([map] /
    [distinct] / [reduce]) actually keys on — header fields themselves
    remain readable by filters regardless.  Keys projected by a [map]
    but absent from the next keyed primitive do nothing: warn on a
    partial waste (NA025), and louder when the whole projection is
    ignored (NA026).  A [map] with no later keyed primitive is the
    query's final report projection and is never flagged. *)

open Newton_query

let name = "dataflow"
let doc = "dead map projections"
let codes = [ "NA025"; "NA026" ]

let fields_of keys =
  List.sort_uniq compare (List.map (fun k -> k.Ast.field) keys)

let rec next_keyed = function
  | [] -> None
  | Ast.Map ks :: _ | Ast.Distinct ks :: _ -> Some ks
  | Ast.Reduce { keys; _ } :: _ -> Some keys
  | Ast.Filter _ :: rest -> next_keyed rest

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  List.concat
    (List.mapi
       (fun b prims ->
         let rec walk p = function
           | [] -> []
           | Ast.Map keys :: rest -> (
               match next_keyed rest with
               | None -> walk (p + 1) rest (* final projection *)
               | Some used ->
                   let span = Diag.Prim { branch = b; prim = p } in
                   let mine = fields_of keys in
                   let theirs = fields_of used in
                   let dead =
                     List.filter (fun f -> not (List.mem f theirs)) mine
                   in
                   let here =
                     if dead = [] then []
                     else if List.length dead = List.length mine then
                       [
                         Diag.make ~code:"NA026" ~severity:Diag.Warning ~span
                           ~query
                           ~hint:"remove the map, or key the next primitive \
                                  on its fields"
                           "no field of this map is used by the next keyed \
                            primitive — the whole projection is dead";
                       ]
                     else
                       [
                         Diag.make ~code:"NA025" ~severity:Diag.Warning ~span
                           ~query ~hint:"project only the fields that are keyed on"
                           (Printf.sprintf
                              "map field%s %s unused by the next keyed \
                               primitive"
                              (if List.length dead = 1 then "" else "s")
                              (String.concat ", "
                                 (List.map Newton_packet.Field.to_string dead)));
                       ]
                   in
                   here @ walk (p + 1) rest)
           | _ :: rest -> walk (p + 1) rest
         in
         walk 0 prims)
       query.Ast.branches)
