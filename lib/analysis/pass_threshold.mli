(** Threshold reachability (NA030–NA031): aggregate-range analysis of
    [Result_cmp] filters and the combine threshold. *)

val name : string
val doc : string
val codes : string list
val run : Pass.ctx -> Diag.t list
