(** Sketch sizing (NA040–NA042).

    Static accuracy bounds for the sketches a query compiles to, at the
    configured register width and depths:

    - [distinct] → Bloom filter of [distinct_depth] rows × [registers]
      bits.  With [n] expected keys, each row fills to
      [1 - exp(-n/w)] and the false-positive rate is [fill^rows]; above
      {!Pass.config.fpr_bound} the first-occurrence semantics degrade
      (NA040).
    - [reduce] → Count-Min of [reduce_depth] rows × [registers]
      counters, guaranteeing error ≤ (e/w)·mass with probability
      1 − exp(−rows); worse than ({!Pass.config.cm_epsilon},
      {!Pass.config.cm_delta}) warns (NA041).
    - Non-positive widths or depths cannot host a sketch at all
      (NA042). *)

open Newton_query
open Newton_packet

let name = "sketch"
let doc = "Bloom false-positive rate and Count-Min (epsilon, delta) bounds"
let codes = [ "NA040"; "NA041"; "NA042" ]

(* Expected distinct keys: the configured guess, capped by the key
   space — a 1-bit key cannot produce 1000 distinct values. *)
let expected_keys cfg keys =
  let bits =
    List.fold_left
      (fun acc k ->
        let m = k.Ast.mask land Field.full_mask k.Ast.field in
        let rec width n v = if v = 0 then n else width (n + 1) (v lsr 1) in
        acc + width 0 m)
      0 keys
  in
  if bits >= 30 then cfg.Pass.expected_keys
  else min cfg.Pass.expected_keys (1 lsl bits)

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  let cfg = ctx.Pass.cfg in
  let o = cfg.Pass.options in
  let w = o.Newton_compiler.Decompose.registers in
  List.concat
    (List.mapi
       (fun b prims ->
         List.concat
           (List.mapi
              (fun p prim ->
                let span = Diag.Prim { branch = b; prim = p } in
                match prim with
                | Ast.Distinct keys ->
                    let rows = o.Newton_compiler.Decompose.distinct_depth in
                    if w <= 0 || rows <= 0 then
                      [
                        Diag.make ~code:"NA042" ~severity:Diag.Error ~span
                          ~query
                          (Printf.sprintf
                             "Bloom filter with %d rows of %d registers \
                              cannot exist"
                             rows w);
                      ]
                    else
                      let n = float_of_int (expected_keys cfg keys) in
                      let fill = 1.0 -. exp (-.n /. float_of_int w) in
                      let fpr = fill ** float_of_int rows in
                      if fpr > cfg.Pass.fpr_bound then
                        [
                          Diag.make ~code:"NA040" ~severity:Diag.Warning ~span
                            ~query
                            ~hint:
                              (Printf.sprintf
                                 "raise the per-array registers (now %d) or \
                                  add rows"
                                 w)
                            (Printf.sprintf
                               "Bloom false-positive rate %.3f exceeds %.3f \
                                at %d expected keys — distinct will drop \
                                first occurrences"
                               fpr cfg.Pass.fpr_bound (int_of_float n));
                        ]
                      else []
                | Ast.Reduce _ ->
                    let rows = o.Newton_compiler.Decompose.reduce_depth in
                    if w <= 0 || rows <= 0 then
                      [
                        Diag.make ~code:"NA042" ~severity:Diag.Error ~span
                          ~query
                          (Printf.sprintf
                             "Count-Min sketch with %d rows of %d registers \
                              cannot exist"
                             rows w);
                      ]
                    else
                      let eps = 2.718281828 /. float_of_int w in
                      let delta = exp (-.float_of_int rows) in
                      if eps > cfg.Pass.cm_epsilon || delta > cfg.Pass.cm_delta
                      then
                        [
                          Diag.make ~code:"NA041" ~severity:Diag.Warning ~span
                            ~query
                            ~hint:
                              (Printf.sprintf
                                 "epsilon needs width >= %d, delta needs \
                                  depth >= %d"
                                 (int_of_float
                                    (ceil (2.718281828 /. cfg.Pass.cm_epsilon)))
                                 (int_of_float
                                    (ceil (-.log cfg.Pass.cm_delta))))
                            (Printf.sprintf
                               "Count-Min bound (epsilon=%.4f, delta=%.3f) \
                                misses the (%.4f, %.3f) target — counts \
                                overestimate"
                               eps delta cfg.Pass.cm_epsilon cfg.Pass.cm_delta);
                        ]
                      else []
                | Ast.Filter _ | Ast.Map _ -> [])
              prims))
       query.Ast.branches)
