(** Exact packet-space analysis (NA090–NA094), built on {!Space}.

    Where {!Pass_predicates} tracks one interval per (field, mask) pair
    — sound but blind to cross-mask interaction — this pass compiles
    every branch's field predicates to an exact cube-union set and
    decides satisfiability, containment and overlap {e exactly}, with a
    concrete witness packet attached to each finding:

    - NA090: a branch's filter conjunction admits no packet at all
      (Error; the witness is a near-miss — a packet that passes every
      predicate but one, naming the predicate that excludes it);
    - NA091: a later branch's packet space is strictly contained in an
      earlier branch's (Warning; the branch split is vacuous — the
      witness reaches only the earlier branch);
    - NA092: the whole intent's match space is strictly contained in a
      co-resident intent's (Info; the witness reaches only the
      shadowing peer).  Peers that match every packet are skipped —
      an unfiltered intent trivially shadows everything;
    - NA093: the exact number of pipeline passes the densest packet
      takes through the emitted classifier, with the true overlap
      region and a witness packet that recirculates (Info; supersedes
      the former NA082 estimate in {!Pass_p4});
    - NA094: the installed intent set leaves packet space uncovered
      (Info; emitted once per deployment, from the lexicographically
      first intent; the witness matches no installed intent).

    Every space computation runs under the solver's cube budget:
    {!Space.Too_complex} silently drops the affected finding — exact or
    absent, never approximate. *)

open Newton_query
open Newton_compiler

let name = "space"
let doc =
  "exact packet-space analysis: branch satisfiability with near-miss \
   witnesses, branch and cross-intent subsumption, exact recirculation \
   overlap, deployment coverage gaps"
let codes = [ "NA090"; "NA091"; "NA092"; "NA093"; "NA094" ]

(* Exactness by refusal: an over-budget computation yields no
   diagnostics, never an approximate one. *)
let guarded f = try f () with Space.Too_complex -> []

let branch_space branch = Space.of_preds (List.map snd (Ast.cmp_atoms branch))

(* The packets an intent's exports can derive from: the union of its
   branches' filter conjunctions. *)
let query_space (q : Ast.t) =
  List.fold_left
    (fun acc b -> Space.union acc (branch_space b))
    Space.empty q.Ast.branches

(* ---------------- NA090: exact unsatisfiability ---------------- *)

(* A witness for "almost satisfiable": the first predicate whose
   removal leaves the conjunction satisfiable, with a model of the
   rest.  Budget overruns just move on to the next candidate. *)
let near_miss preds =
  let arr = Array.of_list preds in
  let rec go k =
    if k >= Array.length arr then None
    else
      let rest = List.filteri (fun i _ -> i <> k) preds in
      match Space.model (Space.of_preds rest) with
      | Some pkt -> Some (arr.(k), pkt)
      | None | (exception Space.Too_complex) -> go (k + 1)
  in
  go 0

let unsat_diags ~query =
  List.concat
    (List.mapi
       (fun b branch ->
         guarded (fun () ->
             let preds = List.map snd (Ast.cmp_atoms branch) in
             if preds = [] || not (Space.is_empty (Space.of_preds preds))
             then []
             else
               let hint, witness =
                 match near_miss preds with
                 | Some (culprit, pkt) ->
                     ( Printf.sprintf
                         "relaxing %s alone admits packets; the witness \
                          passes every other predicate"
                         (Ast.pred_to_string culprit),
                       Some pkt )
                 | None ->
                     ( "no single predicate is responsible; the conjunction \
                        conflicts as a whole",
                       None )
               in
               [
                 Diag.make ~code:"NA090" ~severity:Diag.Error
                   ~span:(Diag.Branch b) ~query ~hint ?witness
                   (Printf.sprintf
                      "branch %d is exactly unsatisfiable: no packet passes \
                       all %d field predicates"
                      b (List.length preds));
               ]))
       query.Ast.branches)

(* ---------------- NA091: branch subsumption ---------------- *)

let subsumption_diags ~query =
  guarded (fun () ->
      let spaces =
        Array.of_list (List.map branch_space query.Ast.branches)
      in
      let n = Array.length spaces in
      let out = ref [] in
      for j = n - 1 downto 1 do
        if not (Space.is_empty spaces.(j)) then
          let subsumer = ref None in
          for i = j - 1 downto 0 do
            if
              Space.subset spaces.(j) spaces.(i)
              && not (Space.subset spaces.(i) spaces.(j))
            then subsumer := Some i
          done;
          match !subsumer with
          | None -> ()
          | Some i ->
              let witness = Space.model (Space.diff spaces.(i) spaces.(j)) in
              out :=
                Diag.make ~code:"NA091" ~severity:Diag.Warning
                  ~span:(Diag.Branch j) ~query
                  ~hint:
                    (Printf.sprintf
                       "every packet branch %d's filters admit also passes \
                        branch %d; the witness reaches only branch %d"
                       j i i)
                  ?witness
                  (Printf.sprintf
                     "branch %d's packet space is strictly contained in \
                      branch %d's"
                     j i)
                :: !out
      done;
      !out)

(* ---------------- NA092: cross-intent shadowing ---------------- *)

let shadow_diags ~query ~peers =
  guarded (fun () ->
      let ours = query_space query in
      if Space.is_empty ours then []
      else
        List.filter_map
          (fun ((p : Ast.t), _) ->
            try
              let theirs = query_space p in
              if
                (not (Space.is_universe theirs))
                && Space.subset ours theirs
                && not (Space.subset theirs ours)
              then
                let witness = Space.model (Space.diff theirs ours) in
                Some
                  (Diag.make ~code:"NA092" ~severity:Diag.Info
                     ~span:Diag.Query ~query
                     ~hint:
                       "the peer observes every packet this intent can see; \
                        the witness reaches only the shadowing peer"
                     ?witness
                     (Printf.sprintf
                        "intent's match space is strictly contained in \
                         co-resident intent %s (Q%d)"
                        p.Ast.name p.Ast.id))
              else None
            with Space.Too_complex -> None)
          peers)

(* ---------------- NA093: exact recirculation overlap ---------------- *)

(* Classifier spaces of the active branches, from the installed
   newton_init patterns (an unabsorbed branch matches every packet). *)
let entry_spaces (compiled : Compose.t) =
  Array.to_list compiled.Compose.init_entries
  |> List.filter_map (fun (e : Ir.init_entry) ->
         if compiled.Compose.branches.(e.Ir.ie_branch) = [] then None
         else Some (Space.of_matches e.Ir.ie_matches))

(* Largest set of classifier spaces with a common packet, plus that
   common region.  Branch counts are tiny (≤ 6), so plain branch and
   bound suffices. *)
let rec densest count region = function
  | [] -> (count, region)
  | s :: rest -> (
      let skip = densest count region rest in
      match Space.inter region s with
      | meet when Space.is_empty meet -> skip
      | meet ->
          let take = densest (count + 1) meet rest in
          if fst take > fst skip then take else skip)

let recirc_diags ~query (compiled : Compose.t) =
  (* Mirror the former NA082 gate: only judge recirculation for intents
     the rule generator accepts at all. *)
  match Newton_p4gen.Rules.entries compiled with
  | Error _ -> []
  | Ok _ ->
      guarded (fun () ->
          let passes, region =
            densest 0 Space.universe (entry_spaces compiled)
          in
          if passes <= 1 then []
          else
            [
              Diag.make ~code:"NA093" ~severity:Diag.Info ~span:Diag.Query
                ~query
                ~hint:
                  (Printf.sprintf
                     "overlap region: %s; each extra pass costs pipeline \
                      bandwidth, not correctness"
                     (Space.to_string region))
                ?witness:(Space.model region)
                (Printf.sprintf
                   "densest packet takes exactly %d pipeline passes \
                    (branch classifiers overlap; recirculated)"
                   passes);
            ])

(* ---------------- NA094: deployment coverage gap ---------------- *)

let coverage_diags ~query ~peers =
  if peers = [] then []
  else
    let lead (q : Ast.t) = (q.Ast.id, q.Ast.name) in
    (* One report per deployment: the lexicographically first intent
       speaks for the set. *)
    if not (List.for_all (fun ((p : Ast.t), _) -> lead query <= lead p) peers)
    then []
    else
      guarded (fun () ->
          let intents = query :: List.map fst peers in
          let covered =
            List.fold_left
              (fun acc q -> Space.union acc (query_space q))
              Space.empty intents
          in
          match Space.model (Space.compl covered) with
          | None -> []
          | Some pkt ->
              [
                Diag.make ~code:"NA094" ~severity:Diag.Info ~span:Diag.Query
                  ~query ~witness:pkt
                  ~hint:
                    "packets in the gap update no state and trigger no \
                     export; install a broader intent if the deployment \
                     should observe them"
                  (Printf.sprintf
                     "the %d installed intents leave packet space uncovered: \
                      the witness matches none of them"
                     (List.length intents));
              ])

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  unsat_diags ~query
  @ subsumption_diags ~query
  @ shadow_diags ~query ~peers:ctx.Pass.peers
  @ (match ctx.Pass.compiled with
    | Some compiled -> recirc_diags ~query compiled
    | None -> [])
  @ coverage_diags ~query ~peers:ctx.Pass.peers
