(** Shard/state coverage (NA095): a planned Fields/Custom shard
    strategy whose hashed fields fail to cover a stateful primitive's
    keys silently splits its per-key state across replay domains. *)

include Pass.S
