(** The analysis driver: builds the per-query context (compiling once),
    runs every registered pass, and renders reports.

    The driver guarantees {e check never raises on user input}: each
    pass runs under a handler that converts an escaped exception into
    an NA099 diagnostic, compilation failures become NA045 (unless a
    structural error already explains them), and query construction
    errors ({!Ast.Invalid}) become their structural diagnostics. *)

open Newton_query
open Newton_compiler
open Newton_util

(** Registered passes, in severity-of-subject order. *)
let passes : (module Pass.S) list =
  [
    (module Pass_structure);
    (module Pass_width);
    (module Pass_predicates);
    (module Pass_space);
    (module Pass_dataflow);
    (module Pass_threshold);
    (module Pass_sketch);
    (module Pass_capacity);
    (module Pass_conflicts);
    (module Pass_shard);
    (module Pass_cuts);
    (module Pass_p4);
  ]

let make_ctx ?(cfg = Pass.default_config) ?target ?(peers = []) ?(co_resident = [])
    query =
  let compiled, compile_error =
    match Compose.compile ~options:cfg.Pass.options query with
    | c -> (Some c, None)
    | exception Decompose.Unsupported msg -> (None, Some msg)
    | exception Ast.Invalid { errors; _ } ->
        (None, Some (Ast.errors_to_string errors))
  in
  { Pass.query; cfg; compiled; compile_error; peers; co_resident; target }

(** Run every pass over a prepared context. *)
let check_ctx (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  let diags =
    List.concat_map
      (fun (module P : Pass.S) ->
        try P.run ctx
        with exn ->
          [
            Diag.make ~code:"NA099" ~severity:Diag.Error ~query
              (Printf.sprintf "analysis pass %s crashed: %s" P.name
                 (Printexc.to_string exn));
          ])
      passes
  in
  let diags =
    match ctx.Pass.compile_error with
    | Some msg when not (Diag.has_errors diags) ->
        (* Nothing else explains why the query cannot compile. *)
        Diag.make ~code:"NA045" ~severity:Diag.Error ~query
          ~hint:"rewrite the primitive the compiler cannot host"
          (Printf.sprintf "query does not compile: %s" msg)
        :: diags
    | _ -> diags
  in
  List.sort Diag.compare diags

(** Analyse one query. *)
let check_query ?cfg ?target ?peers ?co_resident query =
  check_ctx (make_ctx ?cfg ?target ?peers ?co_resident query)

(** Analyse a set together: each query sees the others as peers and
    co-residents, so conflicts and stacked capacity surface. *)
let check_queries ?(cfg = Pass.default_config) ?target queries =
  let compiled =
    List.map
      (fun q ->
        (q, match Compose.compile ~options:cfg.Pass.options q with
           | c -> Some c
           | exception _ -> None))
      queries
  in
  List.concat_map
    (fun q ->
      let peers = List.filter (fun (p, _) -> p != q) compiled in
      let co_resident = List.filter_map snd peers in
      check_query ~cfg ?target ~peers ~co_resident q)
    queries

(** The deployment gate: analyse an already-compiled query against the
    deployed set.  The compiled artifact (with its actual options) is
    analysed directly — no recompilation.  Capacity is judged for the
    query alone (saturation by many small queries still surfaces at
    install time, where rollback handles it); conflicts see every
    deployed peer. *)
let admission ?(cfg = Pass.default_config) ?target ~deployed compiled =
  let cfg = { cfg with Pass.options = compiled.Compose.options } in
  check_ctx
    {
      Pass.query = compiled.Compose.query;
      cfg;
      compiled = Some compiled;
      compile_error = None;
      peers = List.map (fun (q, c) -> (q, Some c)) deployed;
      co_resident = [];
      target;
    }

(** Human rendering of a report (one diagnostic per paragraph);
    [?witness] appends witness-packet lines. *)
let explain ?witness diags =
  String.concat "\n" (List.map (Diag.to_string ?witness) diags)

let severity_counts diags =
  List.fold_left
    (fun (e, w, i) d ->
      match d.Diag.severity with
      | Diag.Error -> (e + 1, w, i)
      | Diag.Warning -> (e, w + 1, i)
      | Diag.Info -> (e, w, i + 1))
    (0, 0, 0) diags

(** Stable JSON report: a summary object plus the diagnostics array,
    re-sorted into (query, span, code) order so the artifact is stable
    under pass additions and severity retunes; [?witness] embeds
    witness packets. *)
let report_to_json ?witness diags =
  let e, w, i = severity_counts diags in
  let diags = List.sort Diag.compare_stable diags in
  Json.Obj
    [
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int e);
            ("warnings", Json.Int w);
            ("infos", Json.Int i);
          ] );
      ("diagnostics", Json.List (List.map (Diag.to_json ?witness) diags));
    ]

(** Report exit code; [--strict] promotes warnings to errors. *)
let exit_code ?(strict = false) diags =
  let c = Diag.exit_code diags in
  if strict && c = 1 then 2 else c
