(** Cross-query conflicts (NA060–NA061): exact duplicates and
    threshold-divergent twins among co-deployed queries. *)

val name : string
val doc : string
val codes : string list
val run : Pass.ctx -> Diag.t list
