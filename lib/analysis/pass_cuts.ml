(** Cross-query-element (CQE) slice cuts (NA070–NA071).

    Slicing cuts the composed chain every [stages_per_switch] stages;
    each slice lands on a different switch along the forwarding path.
    A combine branch's read-back ([S_read]) fetches the sibling
    branch's register array — legal only when reader and producer share
    a slice:

    - reader in an {e earlier} slice than the producer: the array lives
      on a downstream switch the packet has not reached; the read is
      physically impossible (NA070, error);
    - reader in a {e later} slice: the engine resolves a remote array
      to an all-zero bank, so the combine silently subtracts/minimises
      against zero (NA071, warning). *)

open Newton_compiler
open Ir

let name = "cuts"
let doc = "S_read across CQE slice boundaries"
let codes = [ "NA070"; "NA071" ]

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  match (ctx.Pass.compiled, ctx.Pass.target) with
  | None, _ | _, None -> []
  | Some c, Some t ->
      let n = t.Pass.stages_per_switch in
      if n <= 0 then []
      else
        let slice_of stage = (stage / n) + 1 (* 1-based, like placement *) in
        let producer_stage ar =
          let found = ref None in
          Array.iter
            (List.iter (fun s ->
                 if
                   Ir.is_active s && s.kind = Newton_dataplane.Module_cost.S
                   && s.branch = ar.ar_branch && s.prim = ar.ar_prim
                   && s.suite = ar.ar_suite
                 then found := Some s.stage))
            c.Compose.branches;
          !found
        in
        let diags = ref [] in
        Array.iter
          (List.iter (fun s ->
               match s.cfg with
               | S_cfg { op = S_read ar; _ } when Ir.is_active s -> (
                   match producer_stage ar with
                   | None -> ()
                   | Some pstage ->
                       let rs = slice_of s.stage and ps = slice_of pstage in
                       if rs < ps then
                         diags :=
                           Diag.make ~code:"NA070" ~severity:Diag.Error
                             ~span:(Diag.Cut rs) ~query
                             ~hint:
                               "widen stages_per_switch so the read-back and \
                                the sibling's arrays share a slice"
                             (Printf.sprintf
                                "read-back in slice %d reads branch %d's \
                                 array produced in slice %d — the state is \
                                 downstream of the reader"
                                rs ar.ar_branch ps)
                           :: !diags
                       else if rs > ps then
                         diags :=
                           Diag.make ~code:"NA071" ~severity:Diag.Warning
                             ~span:(Diag.Cut rs) ~query
                             ~hint:
                               "remote arrays read as zero; the combine sees \
                                an empty sibling"
                             (Printf.sprintf
                                "read-back in slice %d reads branch %d's \
                                 array from slice %d on an upstream switch"
                                rs ar.ar_branch ps)
                           :: !diags)
               | _ -> ()))
          c.Compose.branches;
        List.rev !diags
