(** Exact packet-space solver: unions of ternary bit-cubes over the
    18-field header space.

    A cube constrains, per field, the bits of a care mask to fixed
    values; a set is a (not necessarily disjoint) union of cubes.  The
    representation is closed under intersection (pairwise cube meet),
    union (concatenation + absorption) and difference (the classic
    cube-splitting subtraction), which gives complement, emptiness,
    containment and model extraction for free — every cube is non-empty
    by construction, so a set is empty iff it has no cubes, and any
    cube yields a witness packet by reading off its constrained bits.

    Comparison atoms compile exactly: an order predicate over a masked
    field unrolls into at most [width] prefix cubes (the standard
    binary-trie decomposition of an interval, restricted to the mask's
    bit positions — bits outside the mask read as zero, exactly like
    [(packet.field land mask) op value] in the reference evaluator). *)

open Newton_packet
open Newton_query

let nf = Field.count

(* Per-field full masks, indexed by Field.index. *)
let fm = Array.init nf (fun i -> Field.full_mask (Field.of_index i))

(* One ternary cube: for field i, the bits of [c.(i)] are constrained
   to the corresponding bits of [v.(i)].  Invariants: [c] ⊆ full mask,
   [v] ⊆ [c].  A cube is never empty. *)
type cube = { v : int array; c : int array }

type t = cube list

exception Too_complex

(* Cube budget: diffs multiply cube counts; refuse rather than thrash.
   Generous relative to real intents (a branch has a handful of atoms,
   each ≤ width cubes). *)
let max_cubes = 8192

let check_budget cubes =
  if List.length cubes > max_cubes then raise Too_complex;
  cubes

let free_cube () = { v = Array.make nf 0; c = Array.make nf 0 }

let universe = [ free_cube () ]
let empty = []

let is_empty s = s = []
let cube_count = List.length

(* a ⊆ b: b's constraints are a subset of a's and agree on values. *)
let cube_subset a b =
  let ok = ref true in
  for i = 0 to nf - 1 do
    if
      b.c.(i) land lnot a.c.(i) <> 0
      || (a.v.(i) lxor b.v.(i)) land b.c.(i) <> 0
    then ok := false
  done;
  !ok

let cube_inter a b =
  let clash = ref false in
  for i = 0 to nf - 1 do
    if (a.v.(i) lxor b.v.(i)) land (a.c.(i) land b.c.(i)) <> 0 then
      clash := true
  done;
  if !clash then None
  else
    Some
      {
        v = Array.init nf (fun i -> a.v.(i) lor b.v.(i));
        c = Array.init nf (fun i -> a.c.(i) lor b.c.(i));
      }

(* Drop cubes subsumed by another cube of the union. *)
let absorb cubes =
  let rec go kept = function
    | [] -> List.rev kept
    | x :: rest ->
        if
          List.exists (cube_subset x) rest
          || List.exists (cube_subset x) kept
        then go kept rest
        else go (x :: kept) rest
  in
  go [] cubes

let union a b = check_budget (absorb (a @ b))

let inter a b =
  check_budget
    (absorb
       (List.concat_map
          (fun ca -> List.filter_map (fun cb -> cube_inter ca cb) b)
          a))

(* a \ b, as a union of cubes: split a along b's extra care bits —
   flipping each in turn escapes b; the final fully-b-constrained
   residue is the part inside b and is dropped. *)
let cube_minus a b =
  match cube_inter a b with
  | None -> [ a ]
  | Some _ ->
      let out = ref [] in
      let cv = Array.copy a.v and cc = Array.copy a.c in
      for i = 0 to nf - 1 do
        let bits = ref (b.c.(i) land lnot a.c.(i)) in
        while !bits <> 0 do
          let bit = !bits land - !bits in
          bits := !bits land lnot bit;
          let nv = Array.copy cv and nc = Array.copy cc in
          nv.(i) <- nv.(i) lor (bit land lnot b.v.(i));
          nc.(i) <- nc.(i) lor bit;
          out := { v = nv; c = nc } :: !out;
          cv.(i) <- cv.(i) lor (bit land b.v.(i));
          cc.(i) <- cc.(i) lor bit
        done
      done;
      !out

let diff a b =
  List.fold_left
    (fun acc bc ->
      check_budget (absorb (List.concat_map (fun ac -> cube_minus ac bc) acc)))
    a b

let compl s = diff universe s

let subset a b = is_empty (diff a b)

let equal a b = subset a b && subset b a

let is_universe s = subset universe s

(* ---------------- atoms ---------------- *)

(* A cube constraining one field: bits [care] to [value]. *)
let field_cube i value care =
  let u = free_cube () in
  u.v.(i) <- value land care;
  u.c.(i) <- care;
  [ u ]

(* Cubes of (x < value) where x = packet.field land m, support(x) = m.
   Binary-trie walk from the top bit: at a mask bit where value has a
   1, everything below with that bit 0 is smaller; at a non-mask bit
   where value has a 1, x (which reads 0 there) is smaller than value
   for every completion of the equal prefix. *)
let lt_cubes i width m value =
  if value <= 0 then []
  else if value > m then universe
  else begin
    let out = ref [] and pv = ref 0 and pc = ref 0 in
    (try
       for b = width - 1 downto 0 do
         let bit = 1 lsl b in
         if m land bit <> 0 then
           if value land bit <> 0 then begin
             out := field_cube i !pv (!pc lor bit) @ !out;
             pv := !pv lor bit;
             pc := !pc lor bit
           end
           else pc := !pc lor bit
         else if value land bit <> 0 then begin
           out := field_cube i !pv !pc @ !out;
           raise Exit
         end
       done
     with Exit -> ());
    !out
  end

(* Cubes of (x > value), symmetric to {!lt_cubes}. *)
let gt_cubes i width m value =
  if value < 0 then universe
  else if value >= m then []
  else begin
    let out = ref [] and pv = ref 0 and pc = ref 0 in
    (try
       for b = width - 1 downto 0 do
         let bit = 1 lsl b in
         if m land bit <> 0 then
           if value land bit = 0 then begin
             out := field_cube i (!pv lor bit) (!pc lor bit) @ !out;
             pc := !pc lor bit
           end
           else begin
             pv := !pv lor bit;
             pc := !pc lor bit
           end
         else if value land bit <> 0 then raise Exit
       done
     with Exit -> ());
    !out
  end

let atom field mask op value =
  let i = Field.index field in
  let width = Field.width field in
  (* Packet fields are truncated to their width at set time, so bits of
     the mask beyond the width always read zero. *)
  let m = mask land fm.(i) in
  match op with
  | Ast.Eq ->
      if value land lnot m <> 0 then empty else field_cube i value m
  | Ast.Neq ->
      if value land lnot m <> 0 then universe
      else begin
        (* Some constrained bit differs: one single-bit cube per mask
           bit, carrying the flipped value. *)
        let out = ref [] and bits = ref m in
        while !bits <> 0 do
          let bit = !bits land - !bits in
          bits := !bits land lnot bit;
          out := field_cube i (value lxor bit) bit @ !out
        done;
        !out
      end
  | Ast.Lt -> lt_cubes i width m value
  | Ast.Le ->
      if value >= m then universe else lt_cubes i width m (value + 1)
  | Ast.Gt -> gt_cubes i width m value
  | Ast.Ge ->
      if value <= 0 then universe else gt_cubes i width m (value - 1)

let of_pred = function
  | Ast.Cmp { field; mask; op; value } -> atom field mask op value
  | Ast.Result_cmp _ -> universe

let of_preds preds =
  List.fold_left (fun acc p -> inter acc (of_pred p)) universe preds

let of_matches ms =
  List.fold_left
    (fun acc (field, value, mask) ->
      inter acc (atom field mask Ast.Eq value))
    universe ms

(* ---------------- evaluation, models, rendering ---------------- *)

let cube_mem cube pkt =
  let ok = ref true in
  for i = 0 to nf - 1 do
    if
      (Packet.get pkt (Field.of_index i) land cube.c.(i)) <> cube.v.(i)
    then ok := false
  done;
  !ok

let mem s pkt = List.exists (fun cube -> cube_mem cube pkt) s

let packet_of_cube cube =
  let pkt = Packet.create ~ts:0.0 () in
  for i = 0 to nf - 1 do
    if cube.v.(i) <> 0 then Packet.set pkt (Field.of_index i) cube.v.(i)
  done;
  pkt

let model = function [] -> None | cube :: _ -> Some (packet_of_cube cube)

let pred_holds p pkt =
  match p with
  | Ast.Cmp { field; mask; op; value } ->
      Ast.cmp_holds op (Packet.get pkt field land mask) value
  | Ast.Result_cmp _ -> true

let cube_to_string cube =
  let parts = ref [] in
  for i = nf - 1 downto 0 do
    if cube.c.(i) <> 0 then
      parts :=
        Printf.sprintf "%s&0x%x=0x%x"
          (Field.to_string (Field.of_index i))
          cube.c.(i) cube.v.(i)
        :: !parts
  done;
  if !parts = [] then "*" else String.concat " " !parts

let to_string s =
  match s with
  | [] -> "(empty)"
  | cubes -> String.concat " | " (List.map cube_to_string cubes)
