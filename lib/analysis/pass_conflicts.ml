(** Cross-query conflicts (NA060–NA061).

    Two deployed queries with the same primitive structure compete for
    the same newton_init classifier entries and duplicate every sketch.
    An exact structural duplicate is pure waste (NA061, info); the
    same shape with different thresholds usually means one intent
    deployed twice with inconsistent tuning (NA060, warning). *)

open Newton_query

let name = "conflicts"
let doc = "duplicate and threshold-divergent co-deployed queries"
let codes = [ "NA060"; "NA061" ]

(* Thresholds erased: queries that differ only in threshold values get
   equal shapes. *)
let zero_pred = function
  | Ast.Result_cmp { op; _ } -> Ast.Result_cmp { op; value = 0 }
  | Ast.Cmp _ as p -> p

let zero_prim = function
  | Ast.Filter preds -> Ast.Filter (List.map zero_pred preds)
  | p -> p

let shape (q : Ast.t) =
  ( List.map (List.map zero_prim) q.Ast.branches,
    Option.map
      (fun c -> { c with Ast.threshold = zero_pred c.Ast.threshold })
      q.Ast.combine )

let structure (q : Ast.t) = (q.Ast.branches, q.Ast.combine)

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  List.concat_map
    (fun (peer, _) ->
      if peer.Ast.id = query.Ast.id && peer.Ast.name = query.Ast.name then []
      else if structure peer = structure query then
        [
          Diag.make ~code:"NA061" ~severity:Diag.Info ~query
            ~hint:"reuse the existing deployment's reports"
            (Printf.sprintf "exact duplicate of deployed query %s(Q%d)"
               peer.Ast.name peer.Ast.id);
        ]
      else if shape peer = shape query then
        [
          Diag.make ~code:"NA060" ~severity:Diag.Warning ~query
            ~hint:"deploy one query with the stricter threshold"
            (Printf.sprintf
               "same structure as deployed query %s(Q%d), thresholds differ"
               peer.Ast.name peer.Ast.id);
        ]
      else [])
    ctx.Pass.peers
