(** Static capacity (NA050–NA053): what the compiled query asks of the
    pipeline, before any rule is installed.

    Rules: each active slot is one table entry in its
    (stage, kind, metadata-set) cell and every init entry is one
    classifier rule; co-resident queries ({!Pass.ctx.co_resident})
    stack into the same cells.  Registers: the total the query's state
    arrays allocate.  With placement facts ({!Pass.ctx.target}), the
    pass additionally checks each switch's stage commitment and whether
    the chain's tail falls beyond the deepest reachable switch. *)

open Newton_compiler
open Ir

let name = "capacity"
let doc = "rule-cell occupancy, register budget, stage/path fit"
let codes = [ "NA050"; "NA051"; "NA052"; "NA053" ]

let kind_name = Newton_dataplane.Module_cost.kind_to_string

(* (stage, kind, meta) -> rule count of one compiled query. *)
let add_cells tbl (c : Compose.t) =
  Array.iter
    (List.iter (fun s ->
         if Ir.is_active s then
           let key = (s.stage, s.kind, s.meta) in
           Hashtbl.replace tbl key
             (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)))
    c.Compose.branches

let registers_of (c : Compose.t) =
  Array.fold_left
    (fun acc slots ->
      List.fold_left
        (fun acc s ->
          match s.cfg with
          | S_cfg { registers; _ } when Ir.is_active s -> acc + registers
          | _ -> acc)
        acc slots)
    0 c.Compose.branches

let run (ctx : Pass.ctx) =
  let query = ctx.Pass.query in
  let cfg = ctx.Pass.cfg in
  match ctx.Pass.compiled with
  | None -> []
  | Some c ->
      let cells = Hashtbl.create 64 in
      add_cells cells c;
      List.iter (add_cells cells) ctx.Pass.co_resident;
      let init_rules =
        Array.length c.Compose.init_entries
        + List.fold_left
            (fun acc p -> acc + Array.length p.Compose.init_entries)
            0 ctx.Pass.co_resident
      in
      let over_cells =
        Hashtbl.fold
          (fun (stage, kind, meta) n acc ->
            if n > cfg.Pass.rule_capacity then
              Diag.make ~code:"NA050" ~severity:Diag.Error
                ~span:(Diag.Stage stage) ~query
                ~hint:"cells hold 256 entries; deploy fewer queries per cell"
                (Printf.sprintf
                   "%s cell (metadata set %d) needs %d rules, capacity is %d"
                   (kind_name kind) meta n cfg.Pass.rule_capacity)
              :: acc
            else acc)
          cells []
      in
      let over_init =
        if init_rules > cfg.Pass.rule_capacity then
          [
            Diag.make ~code:"NA050" ~severity:Diag.Error ~span:(Diag.Stage 0)
              ~query
              (Printf.sprintf
                 "newton_init needs %d classifier rules, capacity is %d"
                 init_rules cfg.Pass.rule_capacity);
          ]
        else []
      in
      let regs = registers_of c in
      let over_regs =
        if regs > cfg.Pass.register_budget then
          [
            Diag.make ~code:"NA052" ~severity:Diag.Error ~query
              ~hint:"shrink the per-array registers or the sketch depths"
              (Printf.sprintf
                 "query allocates %d state registers, budget is %d" regs
                 cfg.Pass.register_budget);
          ]
        else []
      in
      let placement =
        match ctx.Pass.target with
        | None -> []
        | Some t ->
            let n = t.Pass.stages_per_switch in
            let stages = c.Compose.stats.Compose.stages in
            let slices_needed =
              if n <= 0 then 0 else max 1 ((stages + n - 1) / n)
            in
            let tail =
              if slices_needed > t.Pass.max_path_depth then
                [
                  Diag.make ~code:"NA053" ~severity:Diag.Warning
                    ~span:(Diag.Cut t.Pass.max_path_depth) ~query
                    ~hint:
                      "paths shorter than the slice count leave the tail \
                       uninstalled; reports from it never fire"
                    (Printf.sprintf
                       "query needs %d slices but the deepest reachable \
                        switch sits at depth %d"
                       slices_needed t.Pass.max_path_depth);
                ]
              else []
            in
            let spans =
              Array.to_list
                (Array.mapi
                   (fun sw slice_ids ->
                     let committed =
                       List.fold_left
                         (fun acc d ->
                           if d - 1 < Array.length t.Pass.slice_ranges then
                             let lo, hi = t.Pass.slice_ranges.(d - 1) in
                             acc + (hi - lo + 1)
                           else acc)
                         0 slice_ids
                     in
                     if committed > n then
                       [
                         Diag.make ~code:"NA051" ~severity:Diag.Warning
                           ~span:(Diag.Switch sw) ~query
                           (Printf.sprintf
                              "switch commits %d stages to this query's \
                               slices, pipeline has %d"
                              committed n);
                       ]
                     else [])
                   t.Pass.switch_slices)
            in
            tail @ List.concat spans
      in
      over_cells @ over_init @ over_regs @ placement
