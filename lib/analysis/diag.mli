(** Structured diagnostics: what every analysis pass emits.  Codes are
    stable (NAxxx, append-only); golden tests and front-ends key on
    them.  See docs/ANALYSIS.md for the full code table. *)

open Newton_packet

type severity = Info | Warning | Error

val severity_to_string : severity -> string

(** info 0, warning 1, error 2. *)
val severity_rank : severity -> int

(** Where in the query (or its compiled/placed form) a finding sits. *)
type span =
  | Query                                  (** the query as a whole *)
  | Branch of int
  | Prim of { branch : int; prim : int }
  | Combine
  | Stage of int                           (** a pipeline stage cell *)
  | Switch of int                          (** a placement switch *)
  | Cut of int                             (** a CQE slice (1-based) *)

val span_to_string : span -> string

type t = {
  code : string;          (** stable, e.g. "NA020" *)
  severity : severity;
  query_id : int;
  query_name : string;
  span : span;
  message : string;
  hint : string option;
  witness : Packet.t option;
      (** a concrete packet demonstrating the finding, attached by the
          exact packet-space passes (NA090–NA094) *)
}

val make :
  code:string -> severity:severity -> ?span:span -> ?hint:string ->
  ?witness:Packet.t -> query:Newton_query.Ast.t -> string -> t

(** Compact [field=value] rendering of a witness packet (non-zero
    fields only, IPs as dotted quads). *)
val witness_to_string : Packet.t -> string

(** [?witness] (default false) appends the witness line, when the
    diagnostic carries one. *)
val to_string : ?witness:bool -> t -> string

(** Stable member order: code, severity, query_id, query_name, span,
    message, hint[, witness].  The witness member — non-zero fields
    only — is embedded only when [?witness] is true (default false, so
    existing consumers see an unchanged schema). *)
val to_json : ?witness:bool -> t -> Newton_util.Json.t

(** Severity-major order (errors first) for human-facing reports. *)
val compare : t -> t -> int

(** (query, span, code)-major order for machine output: stable under
    pass additions and severity retunes. *)
val compare_stable : t -> t -> int

(** [Info] for an empty list. *)
val max_severity : t list -> severity

val has_errors : t list -> bool

(** Process exit code of a report: 0 clean/info, 1 warnings, 2 errors. *)
val exit_code : t list -> int
