(** CQE slice-cut validation (NA070–NA071): combine read-backs that
    cross slice boundaries. *)

val name : string
val doc : string
val codes : string list
val run : Pass.ctx -> Diag.t list
