(** The common surface every analysis pass implements, plus the shared
    analysis context the driver ({!Check}) builds once per query.

    Passes are pure: they look at the query AST, the compiled slot IR
    (when compilation succeeded), the optional placement facts and the
    other queries sharing the deployment, and return {!Diag.t} lists.
    They never raise on user input — the driver additionally wraps each
    run so an escaped exception becomes an NA099 diagnostic rather than
    a crash. *)

open Newton_packet
open Newton_query
open Newton_compiler

(** Planned shard strategy, as inspectable facts (see the mli). *)
type shard_facts =
  | Shard_flow
  | Shard_fields of Field.t list
  | Shard_branch_key
  | Shard_custom

(** Tunables the resource passes check against.  Defaults mirror the
    modelled switch: 256-entry rule cells, the register file of a
    Tofino-like stage, and the sketch-accuracy targets the paper's
    evaluation uses. *)
type config = {
  options : Decompose.options;  (** compile options analysis assumes *)
  rule_capacity : int;          (** entries per (stage, kind, set) cell *)
  register_budget : int;        (** registers one query may allocate *)
  expected_keys : int;          (** assumed distinct keys per window *)
  fpr_bound : float;            (** tolerated Bloom false-positive rate *)
  cm_epsilon : float;           (** tolerated CM relative error (of mass) *)
  cm_delta : float;             (** tolerated CM error probability *)
  shard : shard_facts option;   (** planned shard strategy, when known *)
}

let default_config =
  {
    options = Decompose.default_options;
    rule_capacity = 256;
    register_budget = 1 lsl 20;
    expected_keys = 1000;
    fpr_bound = 0.05;
    cm_epsilon = 0.01;
    cm_delta = 0.2;
    shard = None;
  }

(** Placement facts, decoupled from the controller's [Placement.t] so
    the analysis library stays below the controller in the dependency
    order.  Build one with {!target} or from a computed placement. *)
type target = {
  stages_per_switch : int;
  num_switches : int;
  switch_slices : int list array;   (** per switch: 1-based slice ids *)
  slice_ranges : (int * int) array; (** per slice: stage lo/hi (0-based) *)
  max_path_depth : int;             (** deepest slice id actually placed *)
}

let target ~stages_per_switch ~num_switches ~switch_slices ~slice_ranges
    ~max_path_depth =
  { stages_per_switch; num_switches; switch_slices; slice_ranges; max_path_depth }

(** Everything a pass may look at. *)
type ctx = {
  query : Ast.t;
  cfg : config;
  compiled : Compose.t option;        (** None when compilation failed *)
  compile_error : string option;      (** why, when it failed *)
  peers : (Ast.t * Compose.t option) list;
      (** other queries of the deployment (conflict detection) *)
  co_resident : Compose.t list;
      (** compiled queries sharing the pipeline (capacity stacking) *)
  target : target option;             (** placement facts, when known *)
}

module type S = sig
  val name : string
  val doc : string

  (** Codes this pass can emit (documentation + golden-test guard). *)
  val codes : string list

  val run : ctx -> Diag.t list
end
