(** The analysis driver: runs every registered pass over a query (or a
    query set) and renders reports.  Never raises on user input —
    escaped pass exceptions become NA099 diagnostics and compilation
    failures NA045. *)

open Newton_query
open Newton_compiler

(** Registered passes, in severity-of-subject order. *)
val passes : (module Pass.S) list

(** Build the per-query context (compiles the query once; a compile
    failure is recorded, not raised). *)
val make_ctx :
  ?cfg:Pass.config -> ?target:Pass.target ->
  ?peers:(Ast.t * Compose.t option) list -> ?co_resident:Compose.t list ->
  Ast.t -> Pass.ctx

(** Run every pass over a prepared context; sorted, deterministic. *)
val check_ctx : Pass.ctx -> Diag.t list

(** Analyse one query. *)
val check_query :
  ?cfg:Pass.config -> ?target:Pass.target ->
  ?peers:(Ast.t * Compose.t option) list -> ?co_resident:Compose.t list ->
  Ast.t -> Diag.t list

(** Analyse a set together: each query sees the others as peers and
    co-residents, so conflicts and stacked capacity surface. *)
val check_queries :
  ?cfg:Pass.config -> ?target:Pass.target -> Ast.t list -> Diag.t list

(** The deployment gate: analyse an already-compiled query (with its
    actual compile options) against the deployed set — conflicts see
    the peers; capacity judges the query alone. *)
val admission :
  ?cfg:Pass.config -> ?target:Pass.target ->
  deployed:(Ast.t * Compose.t) list -> Compose.t -> Diag.t list

(** Human rendering of a report (one diagnostic per line, hints
    indented); [?witness] (default false) appends witness-packet
    lines. *)
val explain : ?witness:bool -> Diag.t list -> string

(** (errors, warnings, infos). *)
val severity_counts : Diag.t list -> int * int * int

(** Stable JSON report: a summary object plus the diagnostics array.
    The array is re-sorted into {!Diag.compare_stable}'s
    (query, span, code) order so the artifact is byte-stable under
    pass additions and severity retunes; [?witness] (default false)
    embeds witness packets. *)
val report_to_json : ?witness:bool -> Diag.t list -> Newton_util.Json.t

(** Report exit code; [strict] promotes warnings (1) to errors (2). *)
val exit_code : ?strict:bool -> Diag.t list -> int
