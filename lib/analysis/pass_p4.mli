(** P4 emission feasibility (NA080–NA083): key-descriptor/branch-bitmap
    capacity, static-action-menu coverage, same-cell ordering hazards,
    recirculation passes, register-file fit. *)

include Pass.S
