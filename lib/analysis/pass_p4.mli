(** P4 emission feasibility (NA080, NA081, NA083):
    key-descriptor/branch-bitmap capacity, static-action-menu coverage,
    same-cell ordering hazards, register-file fit.  Recirculation
    overlap is {!Pass_space}'s NA093. *)

include Pass.S
