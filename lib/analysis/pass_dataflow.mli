(** Map-projection liveness (NA025–NA026): map keys unused by the next
    keyed primitive. *)

val name : string
val doc : string
val codes : string list
val run : Pass.ctx -> Diag.t list
