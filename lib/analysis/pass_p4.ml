(** P4 emission feasibility (NA080, NA081, NA083).

    A checked intent ultimately deploys as table entries against the
    static program {!Newton_p4gen.Emit} writes; this pass surfaces —
    before deployment — everything that would make
    {!Newton_p4gen.Rules.entries} refuse or the pipeline misbehave:

    - NA080: descriptor/classifier capacity — more operation keys than
      the 60-bit key descriptor encodes, duplicate key fields, or more
      parallel branches than the pending bitmap carries (Error);
    - NA081: semantics the static action menu cannot express — an R
      merge/combine with no table action, a cross-branch [S_read] whose
      target array no branch allocates, or a same-cell ordering hazard
      (the P4 stage applies K/H/S before R, so an earlier-prim R whose
      inputs a later-prim same-cell module overwrites — or a reporting
      R whose keys a same-cell K rewrites — diverges from the
      simulator) (Error);
    - NA083: the query's state arrays exceed the static register file
      (Error).

    The recirculation advisory this pass used to emit as NA082 (an
    overlap estimate from the ternary classifier patterns) is
    superseded by {!Pass_space}'s NA093, which proves the exact pass
    count with the true overlap region and a witness packet. *)

open Newton_compiler

let name = "p4"
let doc =
  "P4 emission feasibility: key-descriptor and branch-bitmap capacity, \
   action-menu coverage, same-cell ordering, register-file fit"
let codes = [ "NA080"; "NA081"; "NA083" ]

let issue_diag ~query (issue : Newton_p4gen.Rules.issue) =
  let open Newton_p4gen.Rules in
  let msg = issue_to_string issue in
  match issue with
  | Too_many_keys { branch; prim; _ } | Duplicate_key { branch; prim; _ } ->
      Diag.make ~code:"NA080" ~severity:Diag.Error
        ~span:(Diag.Prim { branch; prim }) ~query
        ~hint:
          "the 60-bit key descriptor holds 12 distinct fields; drop or \
           merge keys"
        msg
  | Too_many_branches { limit; _ } ->
      Diag.make ~code:"NA080" ~severity:Diag.Error ~span:Diag.Query ~query
        ~hint:
          (Printf.sprintf
             "the pending bitmap carries %d parallel branches; split the \
              intent" limit)
        msg
  | Unsupported_r { branch; prim; _ } ->
      Diag.make ~code:"NA081" ~severity:Diag.Error
        ~span:(Diag.Prim { branch; prim }) ~query
        ~hint:"the static R/T action menu cannot express this merge/combine"
        msg
  | Missing_read_target { branch; prim; _ } ->
      Diag.make ~code:"NA081" ~severity:Diag.Error
        ~span:(Diag.Prim { branch; prim }) ~query
        ~hint:"cross-branch reads need the owning branch to allocate the array"
        msg
  | Registers_exhausted { needed; capacity } ->
      Diag.make ~code:"NA083" ~severity:Diag.Error ~span:Diag.Query ~query
        ~hint:
          (Printf.sprintf
             "the static register file holds %d words; shrink sketches or \
              emit with a larger --registers" capacity)
        (Printf.sprintf
           "query needs %d state words but the register file holds %d" needed
           capacity)

(* Same-cell ordering hazards.  The emitted stage applies K, H, S, R, T
   in that fixed order per (stage, metadata set) cell; the simulator
   runs slots in prim order.  The compiler may place an R earlier in
   the chain into the same cell as a later K/H/S — harmless unless the
   later module overwrites something the R (or its trigger) still
   reads: the key copies of a *reporting* R, or the state result any R
   merges from. *)
let cell_hazards ~query (compiled : Compose.t) =
  let slots =
    Array.to_list compiled.branches |> List.concat
    |> List.filter (fun (s : Ir.slot) -> s.used && not s.removed)
  in
  List.filter_map
    (fun (r : Ir.slot) ->
      match r.kind with
      | Newton_dataplane.Module_cost.R ->
          let clobber =
            List.find_opt
              (fun (o : Ir.slot) ->
                o.branch = r.branch && o.stage = r.stage && o.meta = r.meta
                && o.prim > r.prim
                &&
                match o.kind with
                | Newton_dataplane.Module_cost.K -> (
                    (* K rewrites the key copies a reporting R digests *)
                    match r.cfg with
                    | Ir.R_cfg { report = true; _ } -> true
                    | _ -> false)
                | Newton_dataplane.Module_cost.H -> false
                | Newton_dataplane.Module_cost.S ->
                    (* S rewrites the state result every R merges from *)
                    true
                | Newton_dataplane.Module_cost.R -> false)
              slots
          in
          Option.map
            (fun (o : Ir.slot) ->
              Diag.make ~code:"NA081" ~severity:Diag.Error
                ~span:(Diag.Stage r.stage) ~query
                ~hint:
                  "the P4 stage applies K/H/S before R; this placement \
                   diverges from the simulator"
                (Printf.sprintf
                   "same-cell ordering hazard: R (branch %d prim %d) reads \
                    inputs a later %s (prim %d) overwrites in stage %d set %d"
                   r.branch r.prim
                   (Newton_dataplane.Module_cost.kind_to_string o.kind)
                   o.prim r.stage r.meta))
            clobber
      | _ -> None)
    slots

let run (ctx : Pass.ctx) =
  match ctx.compiled with
  | None -> []
  | Some compiled -> (
      let query = ctx.query in
      match Newton_p4gen.Rules.entries compiled with
      | Error issue -> [ issue_diag ~query issue ]
      | Ok _ -> cell_hazards ~query compiled)
