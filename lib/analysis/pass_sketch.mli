(** Sketch sizing (NA040–NA042): Bloom false-positive rate, Count-Min
    (epsilon, delta), impossible sketch dimensions. *)

val name : string
val doc : string
val codes : string list
val run : Pass.ctx -> Diag.t list
