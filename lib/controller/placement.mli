(** Resilient module rule placement — Algorithm 2 (§5.2): slice the
    composed module chain into M parts and place slice d on every switch
    reachable at depth d from the monitored traffic's edge switches, so
    any forwarding path (including post-failure reroutes) carries the
    right slices. *)

open Newton_network

type t = {
  topo : Topo.t;
  num_slices : int;                        (** M *)
  stages_per_switch : int;                 (** N *)
  slice_stage_ranges : (int * int) array;  (** per slice: stage lo/hi *)
  slices : int list array;                 (** P[s]: slice ids per switch *)
  rules_per_slice : int array;             (** entries one slice instance costs *)
}

val num_slices : t -> int
val slices_of : t -> int -> int list

(** Stage range of a 1-based slice id. *)
val stage_range : t -> int -> int * int

(** Slice [stages] into parts of at most [stages_per_switch].
    @raise Invalid_argument on a non-positive budget. *)
val slice_stages : stages:int -> stages_per_switch:int -> (int * int) array

(** Run Algorithm 2.  [edge_switches] defaults to all host-attached
    switches; [mode] selects the literal simple-path DFS ([`Exact]) or
    the memoised no-backtracking search ([`Memo], default); [enabled]
    supports partial deployment — disabled switches get no slices and
    do not consume a depth level; [usable] supports failure recovery —
    an unusable (failed) switch is neither assigned to nor traversed. *)
val place :
  ?mode:[ `Exact | `Memo ] ->
  ?edge_switches:int list ->
  ?enabled:(int -> bool) ->
  ?usable:(int -> bool) ->
  stages_per_switch:int ->
  topo:Topo.t ->
  Newton_compiler.Compose.t ->
  t

(** Table entries installed network-wide. *)
val total_entries : t -> int

(** Average entries per switch hosting at least one slice. *)
val avg_entries : t -> float

val switches_used : t -> int

(** Are slices 1..min(M, |path|) available at the right depths along
    this switch path? *)
val covers : t -> int list -> bool
