(** Resilient module rule placement — Algorithm 2 (§5.2).

    Computing the forwarding paths of all monitored flows is expensive
    and fragile under failures, so Newton places query slices along
    {e all possible paths}: slice the composed module chain into M parts
    of at most N stages each (N = stages a switch grants to Newton), then
    depth-first-search the topology from every edge switch where the
    monitored traffic enters, assigning slice d to every switch reachable
    at depth d.  Different flows and paths reuse a switch's slice set
    P[s], bounding the redundancy (Fig. 17's per-switch entries flatten
    as the topology grows).

    Two search modes: [`Exact] enumerates simple paths (the literal
    Algorithm 2; exponential, fine for small topologies and used by the
    coverage tests) and [`Memo] memoises (switch, depth) pairs, which
    visits each pair once and matches the exact assignment on the
    hierarchical topologies evaluated here. *)

open Newton_network

type t = {
  topo : Topo.t;
  num_slices : int;                  (** M *)
  stages_per_switch : int;           (** N *)
  slice_stage_ranges : (int * int) array; (** per slice: stage_lo, stage_hi *)
  slices : int list array;           (** P[s]: slice ids (1-based depth) per switch *)
  rules_per_slice : int array;       (** table entries one slice instance costs *)
}

let num_slices t = t.num_slices
let slices_of t s = t.slices.(s)
let stage_range t d = t.slice_stage_ranges.(d - 1)

(** Slice a compiled query of [stages] stages into M parts of at most
    [stages_per_switch] each; also splits the rule count proportionally
    (each module is one rule; +1 newton_init entry per slice instance). *)
let slice_stages ~stages ~stages_per_switch =
  if stages_per_switch <= 0 then
    invalid_arg "Placement.slice_stages: stages_per_switch must be positive";
  let m = max 1 ((stages + stages_per_switch - 1) / stages_per_switch) in
  Array.init m (fun i ->
      let lo = i * stages_per_switch in
      let hi = min (stages - 1) (((i + 1) * stages_per_switch) - 1) in
      (lo, hi))

let rules_in_range (compiled : Newton_compiler.Compose.t) (lo, hi) =
  let modules =
    Array.fold_left
      (fun acc slots ->
        acc
        + List.length
            (List.filter (fun s -> s.Newton_compiler.Ir.stage >= lo && s.Newton_compiler.Ir.stage <= hi) slots))
      0 compiled.Newton_compiler.Compose.branches
  in
  modules + Array.length compiled.Newton_compiler.Compose.init_entries

(** Run Algorithm 2. [edge_switches] are the monitored traffic's first
    hops (S_e); defaults to all host-attached switches.  [enabled]
    supports partial deployment (§7): disabled (legacy) switches get no
    slices and do not consume a depth level — the DFS passes through
    them.  [usable] supports failure recovery: an unusable (failed)
    switch forwards nothing, so the DFS neither assigns to it {e nor}
    passes through it, and it is dropped from the edge set. *)
let place ?(mode = `Memo) ?edge_switches ?enabled ?usable ~stages_per_switch
    ~topo compiled =
  let stages = compiled.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages in
  let ranges = slice_stages ~stages ~stages_per_switch in
  let m = Array.length ranges in
  let slices = Array.make (Topo.num_switches topo) [] in
  let enabled = match enabled with Some f -> f | None -> fun _ -> true in
  let usable = match usable with Some f -> f | None -> fun _ -> true in
  let assign s d =
    if not (List.mem d slices.(s)) then slices.(s) <- d :: slices.(s)
  in
  let edges =
    (match edge_switches with Some e -> e | None -> Topo.edge_switches topo)
    |> List.filter usable
  in
  (match mode with
  | `Exact ->
      (* Literal Algorithm 2: simple-path DFS with path-local discovery. *)
      let discovered = Array.make (Topo.num_switches topo) false in
      let rec topo_dfs s d =
        if d <= m then begin
          let d' = if enabled s then (assign s d; d + 1) else d in
          discovered.(s) <- true;
          List.iter
            (fun s' ->
              if Topo.is_switch topo s' && usable s' && not discovered.(s')
              then topo_dfs s' d')
            (Topo.neighbors topo s);
          discovered.(s) <- false
        end
      in
      List.iter (fun s -> topo_dfs s 1) edges
  | `Memo ->
      (* (from, node, depth) memoisation with no immediate backtracking:
         each triple expands once, and the length-2 cycles a plain
         (node, depth) memo would walk (s -> s' -> s) are excluded, so
         the assignment matches the exact simple-path DFS on the
         hierarchical topologies evaluated here. *)
      let seen = Hashtbl.create 1024 in
      let rec topo_dfs ~from s d =
        if d <= m && not (Hashtbl.mem seen (from, s, d)) then begin
          Hashtbl.add seen (from, s, d) ();
          let d' = if enabled s then (assign s d; d + 1) else d in
          List.iter
            (fun s' ->
              if Topo.is_switch topo s' && usable s' && s' <> from then
                topo_dfs ~from:s s' d')
            (Topo.neighbors topo s)
        end
      in
      List.iter (fun s -> topo_dfs ~from:(-1) s 1) edges);
  Array.iteri (fun i l -> slices.(i) <- List.sort compare l) slices;
  {
    topo;
    num_slices = m;
    stages_per_switch;
    slice_stage_ranges = ranges;
    slices;
    rules_per_slice = Array.map (rules_in_range compiled) ranges;
  }

(** Total table entries the placement installs network-wide. *)
let total_entries t =
  Array.fold_left
    (fun acc ds -> acc + List.fold_left (fun a d -> a + t.rules_per_slice.(d - 1)) 0 ds)
    0 t.slices

(** Average entries per switch (over switches hosting at least one slice,
    matching the paper's per-switch overhead metric). *)
let avg_entries t =
  let used = Array.to_list t.slices |> List.filter (fun l -> l <> []) in
  match used with
  | [] -> 0.0
  | _ ->
      float_of_int (total_entries t) /. float_of_int (List.length used)

(** Number of switches hosting at least one slice. *)
let switches_used t =
  Array.fold_left (fun acc l -> if l = [] then acc else acc + 1) 0 t.slices

(** Coverage check: along [path] (switch list, hop order), are slices
    1..min(M, |path|) available at the right depths?  Algorithm 2's
    guarantee; the remainder (if the path is shorter than M) defers to
    the analyzer. *)
let covers t path =
  let rec go d = function
    | [] -> true
    | s :: rest ->
        if d > t.num_slices then true
        else List.mem d t.slices.(s) && go (d + 1) rest
  in
  go 1 path
