(** The Newton controller: network-wide query deployment (CQE or
    sole-switch), dynamic operations with rule-level latencies, partial
    deployment, failures, and software continuation of slices that
    outlive the forwarding path. *)

open Newton_network
open Newton_runtime
open Newton_dataplane

type mode = [ `Cqe | `Sole ]

type deployment = {
  uid : int;
  compiled : Newton_compiler.Compose.t;
  mode : mode;
  mutable placement : Placement.t option;
      (** [None] for sole-switch mode; re-placed on switch failure *)
  edge_switches : int list option;
      (** deploy-time S_e, replayed on re-placement *)
  stages_per_switch : int;
  mutable installed_rules : int;
}

(** One switch-failure or repair event with its recovery accounting. *)
type recovery = {
  r_switch : int;
  r_event : [ `Fail | `Repair ];
  r_slices_migrated : int;     (** dataplane-to-dataplane state migrations *)
  r_cells_moved : int;         (** occupied register cells merged *)
  r_software_fallbacks : int;  (** slices degraded to the software engine *)
  r_rules_installed : int;     (** table entries installed by recovery *)
  r_latency : float;           (** slowest switch's reconfiguration time *)
}

type t

val create : ?fwd_entries:int -> Topo.t -> t

val topo : t -> Topo.t
val route : t -> Route.t
val engine : t -> int -> Engine.t
val switch : t -> int -> Switch.t
val analyzer : t -> Analyzer.t
val deployments : t -> deployment list
val find_deployment : t -> int -> deployment option

(** Partial deployment (§7): mark a switch as legacy.  Affects
    subsequent deploys and packet processing. *)
val set_enabled : t -> int -> bool -> unit

val is_enabled : t -> int -> bool

(** Raised by {!deploy} when the static-analysis admission gate finds
    error-severity diagnostics; nothing was installed. *)
exception Rejected of Newton_analysis.Diag.t list

(** Placement facts for the analysis passes
    ({!Newton_analysis.Pass.target}) derived from a computed
    placement. *)
val target_of_placement : Placement.t -> Newton_analysis.Pass.target

(** Deploy a compiled query network-wide with admission failures as
    values; returns [Ok (uid, slowest switch's install latency in
    seconds)].  Every deployment first passes the static-analysis
    admission gate: error diagnostics return [Error diags] before any
    rule is installed; warnings are admitted and counted on the
    controller sink ([newton_analysis_warnings_total], labelled
    [stage="analysis"]).  A module cell overflowing mid-rollout rolls
    the partial installs back and returns [Error] with a single NA054
    diagnostic.  Never raises on admission or capacity — the entry
    point for callers (the service loop) that treat refusals as data. *)
val deploy_checked :
  ?mode:mode -> ?edge_switches:int list -> ?stages_per_switch:int -> t ->
  Newton_compiler.Compose.t ->
  (int * float, Newton_analysis.Diag.t list) result

(** Exception form of {!deploy_checked} — a thin wrapper.
    @raise Rejected when static analysis refuses the query.
    @raise Newton_runtime.Engine.Rules_exhausted on install-time
    capacity overflow (after rollback). *)
val deploy :
  ?mode:mode -> ?edge_switches:int list -> ?stages_per_switch:int -> t ->
  Newton_compiler.Compose.t -> int * float

(** Remove a deployment everywhere; returns the slowest removal
    latency. *)
val undeploy : t -> int -> float option

(** Deploy a scheduler plan: each admitted query recompiled with its
    assigned register budget; returns deployment uids in plan order. *)
val deploy_plan :
  ?mode:mode -> ?edge_switches:int list -> ?stages_per_switch:int ->
  ?options:Newton_compiler.Decompose.options -> t -> Scheduler.plan ->
  int list

(** Atomic remove + redeploy of a recompiled query, refusals as
    values.  The replacement is admitted against the deployed set minus
    the query being replaced {e before} anything is removed, so a
    refused update leaves the old deployment running.  [Ok None] for an
    unknown uid. *)
val update_checked :
  t -> int -> Newton_compiler.Compose.t ->
  ((int * float) option, Newton_analysis.Diag.t list) result

(** Exception form of {!update_checked}.
    @raise Rejected when the replacement fails admission. *)
val update : t -> int -> Newton_compiler.Compose.t -> (int * float) option

(** Process one packet along the forwarding path between two hosts:
    CQE deployments run slice d at the d-th Newton-enabled hop with the
    context in the SP header (lost across legacy switches); sole
    deployments run fully at every enabled hop; a query longer than the
    path defers to the analyzer. *)
val process_packet : t -> src_host:int -> dst_host:int -> Newton_packet.Packet.t -> unit

(** All reports so far: data plane network-wide plus the analyzer's
    software-continuation results. *)
val all_reports : t -> Newton_query.Report.t list

(** Monitoring messages: data-plane reports + software status exports. *)
val message_count : t -> int

(** Packets whose query outlived the path and were exported to the
    analyzer (§5.2). *)
val software_deferrals : t -> int

(** SP-header bytes / wire bytes. *)
val sp_overhead_ratio : t -> float

val packets : t -> int

(** Network-wide telemetry snapshot: per-switch engine metrics
    (labelled [switch=<id>]) plus the analyzer's software engine
    ([switch="analyzer"]), merged into one metric set. *)
val snapshot : t -> Newton_telemetry.Snapshot.t

(** Fail a link: forwarding reroutes on the next packet; resilient
    placement keeps monitoring without controller involvement. *)
val fail_link : t -> Route.link -> unit

val repair_link : t -> Route.link -> unit

(** Fail a switch: mark it down (forwarding reroutes around it), re-run
    Algorithm 2 over the surviving topology, install any slices the
    re-placement adds, and migrate each displaced slice's register state
    under the slot's ALU merge op — into every surviving host of the
    slice (rerouted flows fan out, and a key's packets cross exactly one
    of them), or into the software-continuation engine when no resilient
    placement exists.  Dedup memory travels with the state, so
    already-exported reports are not re-emitted.  Sole-switch
    deployments drop the dead instance without migration (every hop
    already holds the full state).  [None] if [s] was already down.
    @raise Invalid_argument if [s] is not a switch. *)
val fail_switch : t -> int -> recovery option

(** Repair a switch: mark it up and re-run Algorithm 2 so it regains its
    slices.  The rejoined switch starts with empty register state and
    converges from the next window boundary; failure-time instances are
    retained to cover the interim.  [None] if [s] was not down.
    @raise Invalid_argument if [s] is not a switch. *)
val repair_switch : t -> int -> recovery option

val is_switch_failed : t -> int -> bool
val failed_switches : t -> int list

(** Failure / repair events in occurrence order. *)
val recoveries : t -> recovery list

(** Network-wide reports after analyzer-style reconciliation:
    epoch-aligned sort + identity dedup, collapsing duplicates from
    sole-switch replication and post-migration re-emission. *)
val reconciled_reports : t -> Newton_query.Report.t list
