(** The Newton controller: network-wide query deployment (CQE or
    sole-switch), dynamic operations with rule-level latencies, partial
    deployment, failures, and software continuation of slices that
    outlive the forwarding path. *)

open Newton_network
open Newton_runtime
open Newton_dataplane

type mode = [ `Cqe | `Sole ]

type deployment = {
  uid : int;
  compiled : Newton_compiler.Compose.t;
  mode : mode;
  placement : Placement.t option; (** [None] for sole-switch mode *)
  mutable installed_rules : int;
}

type t

val create : ?fwd_entries:int -> Topo.t -> t

val topo : t -> Topo.t
val route : t -> Route.t
val engine : t -> int -> Engine.t
val switch : t -> int -> Switch.t
val analyzer : t -> Analyzer.t
val deployments : t -> deployment list
val find_deployment : t -> int -> deployment option

(** Partial deployment (§7): mark a switch as legacy.  Affects
    subsequent deploys and packet processing. *)
val set_enabled : t -> int -> bool -> unit

val is_enabled : t -> int -> bool

(** Deploy a compiled query network-wide; returns (uid, slowest
    switch's install latency in seconds). *)
val deploy :
  ?mode:mode -> ?edge_switches:int list -> ?stages_per_switch:int -> t ->
  Newton_compiler.Compose.t -> int * float

(** Remove a deployment everywhere; returns the slowest removal
    latency. *)
val undeploy : t -> int -> float option

(** Deploy a scheduler plan: each admitted query recompiled with its
    assigned register budget; returns deployment uids in plan order. *)
val deploy_plan :
  ?mode:mode -> ?edge_switches:int list -> ?stages_per_switch:int ->
  ?options:Newton_compiler.Decompose.options -> t -> Scheduler.plan ->
  int list

(** Atomic remove + redeploy of a recompiled query. *)
val update : t -> int -> Newton_compiler.Compose.t -> (int * float) option

(** Process one packet along the forwarding path between two hosts:
    CQE deployments run slice d at the d-th Newton-enabled hop with the
    context in the SP header (lost across legacy switches); sole
    deployments run fully at every enabled hop; a query longer than the
    path defers to the analyzer. *)
val process_packet : t -> src_host:int -> dst_host:int -> Newton_packet.Packet.t -> unit

(** All reports so far: data plane network-wide plus the analyzer's
    software-continuation results. *)
val all_reports : t -> Newton_query.Report.t list

(** Monitoring messages: data-plane reports + software status exports. *)
val message_count : t -> int

(** Packets whose query outlived the path and were exported to the
    analyzer (§5.2). *)
val software_deferrals : t -> int

(** SP-header bytes / wire bytes. *)
val sp_overhead_ratio : t -> float

val packets : t -> int

(** Network-wide telemetry snapshot: per-switch engine metrics
    (labelled [switch=<id>]) plus the analyzer's software engine
    ([switch="analyzer"]), merged into one metric set. *)
val snapshot : t -> Newton_telemetry.Snapshot.t

(** Fail a link: forwarding reroutes on the next packet; resilient
    placement keeps monitoring without controller involvement. *)
val fail_link : t -> Route.link -> unit

val repair_link : t -> Route.link -> unit
