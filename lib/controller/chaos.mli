(** Chaos harness: replay one trace twice — failure-free and under a
    switch fail/repair schedule — then diff the reconciled report sets.
    A diff is {e explained} when its window contains a schedule event;
    unexplained diffs are the recovery subsystem's failure signal. *)

open Newton_network
open Newton_query

type action = [ `Fail | `Repair ]

type event = { at : float; switch : int; action : action }

type diff = {
  d_report : Report.t;
  d_kind : [ `Missing | `Extra ];  (** relative to the failure-free run *)
  d_explained : bool;  (** the diff's window contains a schedule event *)
}

type result = {
  topo_name : string;
  query_ids : int list;
  events : event list;
  baseline_reports : int;  (** reconciled reports, failure-free run *)
  chaos_reports : int;     (** reconciled reports, chaos run *)
  matched : int;           (** identities present in both runs *)
  diffs : diff list;
  recoveries : Deploy.recovery list;  (** chaos run's recovery events *)
}

val unexplained : result -> diff list

(** The facade's stable IP-to-host mapping (hash seed 4242). *)
val host_of_ip : Topo.t -> int -> int

(** Deploy [queries], replay the trace twice (with and without the
    event schedule) and diff the reconciled reports by identity. *)
val run :
  ?mode:Deploy.mode ->
  ?stages_per_switch:int ->
  ?edge_switches:int list ->
  topo:Topo.t ->
  queries:Ast.t list ->
  events:event list ->
  Newton_trace.Gen.t ->
  result

(** Machine-readable diff artifact (the CI chaos leg uploads this);
    ["zero_unexplained_loss"] is the gate [--strict] checks. *)
val to_json : result -> Newton_util.Json.t

val to_json_string : result -> string
