(** Chaos harness: replay one trace twice — once failure-free, once
    under a switch fail/repair schedule — and diff the reconciled
    report sets.

    A diff (a report present in exactly one run) is {e explained} when
    its measurement window, under the owning query's window length,
    contains a fail or repair event: state mid-window on a failing or
    rejoining switch legitimately under- or over-shoots in that window.
    Everything else is {e unexplained} loss — the quantity the recovery
    subsystem is required to hold at zero on deterministic-reroute
    topologies ({!Newton_network.Topo.bypass}). *)

open Newton_network
open Newton_query

type action = [ `Fail | `Repair ]

type event = { at : float; switch : int; action : action }

type diff = {
  d_report : Report.t;
  d_kind : [ `Missing | `Extra ];  (** relative to the failure-free run *)
  d_explained : bool;
}

type result = {
  topo_name : string;
  query_ids : int list;
  events : event list;
  baseline_reports : int;
  chaos_reports : int;
  matched : int;
  diffs : diff list;
  recoveries : Deploy.recovery list;
}

let unexplained r = List.filter (fun d -> not d.d_explained) r.diffs

(* Same stable IP-to-host mapping as the Newton facade (seed 4242), so
   chaos replays see the traffic netrun would. *)
let host_of_ip topo ip =
  let n = Topo.num_hosts topo in
  Topo.num_switches topo + (Newton_sketch.Hash.hash_int ~seed:4242 ip mod n)

(* One replay: deploy every compiled query, then walk the trace firing
   due schedule events between packets. *)
let replay ~mode ~stages_per_switch ?edge_switches ~topo ~compiled ~events
    trace =
  let dep = Deploy.create topo in
  List.iter
    (fun c ->
      ignore (Deploy.deploy ~mode ?edge_switches ~stages_per_switch dep c))
    compiled;
  let pending = ref (List.stable_sort (fun a b -> compare a.at b.at) events) in
  Newton_trace.Gen.iter
    (fun pkt ->
      let ts = Newton_packet.Packet.ts pkt in
      let rec fire () =
        match !pending with
        | e :: rest when e.at <= ts ->
            (match e.action with
            | `Fail -> ignore (Deploy.fail_switch dep e.switch)
            | `Repair -> ignore (Deploy.repair_switch dep e.switch));
            pending := rest;
            fire ()
        | _ -> ()
      in
      fire ();
      let src_host =
        host_of_ip topo (Newton_packet.Packet.get pkt Newton_packet.Field.Src_ip)
      in
      let dst_host =
        host_of_ip topo (Newton_packet.Packet.get pkt Newton_packet.Field.Dst_ip)
      in
      Deploy.process_packet dep ~src_host ~dst_host pkt)
    trace;
  dep

let run ?(mode = `Cqe) ?(stages_per_switch = 12) ?edge_switches ~topo ~queries
    ~events trace =
  let compiled = List.map Newton_compiler.Compose.compile queries in
  let window_of =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (q : Ast.t) -> Hashtbl.replace tbl q.Ast.id q.Ast.window)
      queries;
    fun qid -> Hashtbl.find_opt tbl qid
  in
  let baseline =
    replay ~mode ~stages_per_switch ?edge_switches ~topo ~compiled ~events:[]
      trace
  in
  let chaos =
    replay ~mode ~stages_per_switch ?edge_switches ~topo ~compiled ~events
      trace
  in
  let base_reports = Deploy.reconciled_reports baseline in
  let chaos_reports = Deploy.reconciled_reports chaos in
  (* Report identity, the analyzer's dedup key. *)
  let key (r : Report.t) = (r.Report.query_id, r.Report.window, r.Report.keys) in
  let index reports =
    let tbl = Hashtbl.create 1024 in
    List.iter (fun r -> Hashtbl.replace tbl (key r) ()) reports;
    tbl
  in
  let base_tbl = index base_reports and chaos_tbl = index chaos_reports in
  let explained (r : Report.t) =
    match window_of r.Report.query_id with
    | None -> false
    | Some w ->
        List.exists
          (fun e -> int_of_float (e.at /. w) = r.Report.window)
          events
  in
  let missing =
    List.filter (fun r -> not (Hashtbl.mem chaos_tbl (key r))) base_reports
  in
  let extra =
    List.filter (fun r -> not (Hashtbl.mem base_tbl (key r))) chaos_reports
  in
  let diff kind r = { d_report = r; d_kind = kind; d_explained = explained r } in
  {
    topo_name = Topo.name topo;
    query_ids = List.map (fun (q : Ast.t) -> q.Ast.id) queries;
    events;
    baseline_reports = List.length base_reports;
    chaos_reports = List.length chaos_reports;
    matched = List.length base_reports - List.length missing;
    diffs = List.map (diff `Missing) missing @ List.map (diff `Extra) extra;
    recoveries = Deploy.recoveries chaos;
  }

(* ---------------- JSON artifact ---------------- *)

open Newton_util

let event_json e =
  Json.Obj
    [
      ("at", Json.Float e.at);
      ("switch", Json.Int e.switch);
      ("action", Json.String (match e.action with `Fail -> "fail" | `Repair -> "repair"));
    ]

let diff_json d =
  let r = d.d_report in
  Json.Obj
    [
      ("kind", Json.String (match d.d_kind with `Missing -> "missing" | `Extra -> "extra"));
      ("query", Json.Int r.Report.query_id);
      ("window", Json.Int r.Report.window);
      ( "keys",
        Json.List (Array.to_list (Array.map (fun k -> Json.Int k) r.Report.keys)) );
      ("value", Json.Int r.Report.value);
      ("explained", Json.Bool d.d_explained);
    ]

let recovery_json (r : Deploy.recovery) =
  Json.Obj
    [
      ("switch", Json.Int r.Deploy.r_switch);
      ("event", Json.String (match r.Deploy.r_event with `Fail -> "fail" | `Repair -> "repair"));
      ("slices_migrated", Json.Int r.Deploy.r_slices_migrated);
      ("cells_moved", Json.Int r.Deploy.r_cells_moved);
      ("software_fallbacks", Json.Int r.Deploy.r_software_fallbacks);
      ("rules_installed", Json.Int r.Deploy.r_rules_installed);
      ("latency_ms", Json.Float (r.Deploy.r_latency *. 1e3));
    ]

(** Machine-readable diff artifact: the CI chaos leg uploads this, and
    [newton chaos --strict] gates on ["zero_unexplained_loss"]. *)
let to_json res =
  let unexpl = unexplained res in
  Json.Obj
    [
      ("topology", Json.String res.topo_name);
      ("queries", Json.List (List.map (fun i -> Json.Int i) res.query_ids));
      ("events", Json.List (List.map event_json res.events));
      ("baseline_reports", Json.Int res.baseline_reports);
      ("chaos_reports", Json.Int res.chaos_reports);
      ("matched", Json.Int res.matched);
      ("diffs", Json.List (List.map diff_json res.diffs));
      ("explained", Json.Int (List.length res.diffs - List.length unexpl));
      ("unexplained", Json.Int (List.length unexpl));
      ("recoveries", Json.List (List.map recovery_json res.recoveries));
      ("zero_unexplained_loss", Json.Bool (unexpl = []));
    ]

let to_json_string res = Json.to_string (to_json res)
