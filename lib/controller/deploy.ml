(** The Newton controller: network-wide query deployment and dynamic
    operations.

    Owns one {!Newton_runtime.Engine} (execution) and one
    {!Newton_dataplane.Switch} (resource/timing accounting) per switch,
    plus the software analyzer.  Queries are deployed either with
    cross-switch execution ([`Cqe], the Newton model: slices at depths
    given by Algorithm 2, context threaded through the SP header) or
    sole-switch execution ([`Sole], the baseline of §6.3: the full query
    replicated on every switch, each reporting independently).

    Install/remove latencies follow the runtime-reconfiguration model of
    {!Newton_dataplane.Reconfig}: per-rule driver operations, switches
    updated in parallel — no forwarding interruption, unlike the Sonata
    full-reload path. *)

open Newton_network
open Newton_runtime
open Newton_dataplane

type mode = [ `Cqe | `Sole ]

type deployment = {
  uid : int;
  compiled : Newton_compiler.Compose.t;
  mode : mode;
  mutable placement : Placement.t option; (* None for `Sole; re-placed on failure *)
  edge_switches : int list option; (* deploy-time S_e, replayed on re-placement *)
  stages_per_switch : int;
  mutable installed_rules : int;
}

(** One switch-failure or repair event with its recovery accounting. *)
type recovery = {
  r_switch : int;
  r_event : [ `Fail | `Repair ];
  r_slices_migrated : int;     (** dataplane-to-dataplane state migrations *)
  r_cells_moved : int;         (** occupied register cells merged *)
  r_software_fallbacks : int;  (** slices degraded to the software engine *)
  r_rules_installed : int;     (** table entries installed by recovery *)
  r_latency : float;           (** slowest switch's reconfiguration time *)
}

type t = {
  topo : Topo.t;
  route : Route.t;
  engines : Engine.t array;
  switches : Switch.t array;
  analyzer : Analyzer.t;
  software : Engine.t; (** CPU continuation for slices beyond the path *)
  mutable deployments : deployment list;
  mutable next_uid : int;
  mutable sp_bytes : int;
  mutable wire_bytes : int;
  mutable packets : int;
  mutable software_status_msgs : int;
  enabled : bool array; (** partial deployment: Newton-enabled switches *)
  c_sink : Newton_telemetry.Stats.sink; (** controller-level counters *)
  mutable recoveries : recovery list; (* reverse order *)
}

(* The module layout is loaded once per switch at initialization (§3
   workflow): every stage hosts one K/H/S/R suite per metadata set.
   Queries then only consume table rules and register ranges.  The
   layout's two suites exactly saturate a stage's SALU and TCAM budgets
   — the physical justification for the Module_cost constants. *)
let place_layout sw =
  for stage = 0 to Switch.num_stages sw - 1 do
    List.iter
      (fun set ->
        List.iter
          (fun kind ->
            Switch.place sw ~stage
              ~name:
                (Printf.sprintf "layout_%s_m%d"
                   (Module_cost.kind_to_string kind) set)
              (Module_cost.cost kind))
          Module_cost.all_kinds)
      [ 0; 1 ]
  done

let create ?(fwd_entries = Switch.default_fwd_entries) topo =
  let n = Topo.num_switches topo in
  {
    topo;
    route = Route.create topo;
    engines = Array.init n (fun i -> Engine.create ~switch_id:i ());
    switches =
      Array.init n (fun id ->
          let sw = Switch.create ~id ~fwd_entries () in
          place_layout sw;
          sw);
    analyzer = Analyzer.create ();
    software = Engine.create ~switch_id:(-1) ();
    deployments = [];
    next_uid = 1;
    sp_bytes = 0;
    wire_bytes = 0;
    packets = 0;
    software_status_msgs = 0;
    enabled = Array.make n true;
    c_sink = Newton_telemetry.Stats.create ();
    recoveries = [];
  }

let topo t = t.topo
let route t = t.route
let engine t s = t.engines.(s)
let switch t s = t.switches.(s)
let analyzer t = t.analyzer
let deployments t = t.deployments

let find_deployment t uid = List.find_opt (fun d -> d.uid = uid) t.deployments

(** Partial deployment (§7): mark a switch as legacy (no Newton rules,
    SP headers cannot cross it).  Affects subsequent deploys and packet
    processing; existing deployments keep their installed rules. *)
let set_enabled t s b = t.enabled.(s) <- b

let is_enabled t s = t.enabled.(s)

(* Instance uid scheme: one deployment's slice d on any switch shares
   uid*1000+d so the path executor threads one context across hops. *)
let slice_uid uid d = (uid * 1000) + d

(** Raised by {!deploy} when the static-analysis gate finds
    error-severity diagnostics; nothing is installed. *)
exception Rejected of Newton_analysis.Diag.t list

let () =
  Printexc.register_printer (function
    | Rejected diags ->
        Some
          (Printf.sprintf "deployment rejected by static analysis:\n%s"
             (Newton_analysis.Check.explain diags))
    | _ -> None)

(* Placement facts for the analysis passes, decoupled from
   [Placement.t] so the analysis library needs no controller types. *)
let target_of_placement (p : Placement.t) =
  let max_depth =
    Array.fold_left
      (fun acc ds -> List.fold_left max acc ds)
      0 p.Placement.slices
  in
  Newton_analysis.Pass.target
    ~stages_per_switch:p.Placement.stages_per_switch
    ~num_switches:(Array.length p.Placement.slices)
    ~switch_slices:p.Placement.slices
    ~slice_ranges:p.Placement.slice_stage_ranges ~max_path_depth:max_depth

(* The mandatory admission gate as a value: every deployment passes
   static analysis first.  [Ok diags] admits (warnings counted on the
   controller sink, stage="analysis" in the snapshot); [Error diags]
   refuses before any rule is installed (rejection counted).  Capacity
   is judged for the new query alone — saturation by many co-resident
   queries still surfaces at install time, where the rollback path
   handles it.  [exclude] drops one deployment uid from the peer set
   (the query an update is about to replace). *)
let admit_result t ?exclude ?target compiled =
  let deployed =
    List.filter_map
      (fun d ->
        match exclude with
        | Some uid when uid = d.uid -> None
        | _ -> Some (d.compiled.Newton_compiler.Compose.query, d.compiled))
      t.deployments
  in
  let diags = Newton_analysis.Check.admission ?target ~deployed compiled in
  if Newton_analysis.Diag.has_errors diags then begin
    Newton_telemetry.Stats.bump t.c_sink
      Newton_telemetry.Stats.Analysis_rejections 1;
    Error diags
  end
  else begin
    let _, warnings, _ = Newton_analysis.Check.severity_counts diags in
    if warnings > 0 then
      Newton_telemetry.Stats.bump t.c_sink
        Newton_telemetry.Stats.Analysis_warnings warnings;
    Ok diags
  end

(* Install-time capacity overflow rendered as a diagnostic, so the
   result-typed entry points report it as a value.  The code rides the
   NA05x capacity family (docs/ANALYSIS.md): unlike NA050-NA053 it is
   not predicted by a pass but observed against the live module tables,
   where co-resident deployments already hold cells. *)
let exhausted_diag compiled ~stage ~kind =
  Newton_analysis.Diag.make ~code:"NA054" ~severity:Newton_analysis.Diag.Error
    ~span:(Newton_analysis.Diag.Stage stage)
    ~hint:
      "remove or narrow a co-resident deployment, or grant more \
       stages/registers"
    ~query:compiled.Newton_compiler.Compose.query
    (Printf.sprintf
       "install-time capacity: %s module cell exhausted at stage %d; partial \
        installs rolled back" kind stage)

(* Install a gated deployment (placement already computed by the
   caller).  Returns (uid, latency in seconds) — the latency is the
   slowest switch's rule-install time (switch drivers work in
   parallel).
   @raise Engine.Rules_exhausted when a module cell overflows
   mid-rollout (the caller rolls back). *)
let install_deployment ~mode ~edge_switches ~stages_per_switch ~gate_placement
    t compiled =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  let latencies = ref [] in
  let total_rules = ref 0 in
  let placement =
    match mode with
    | `Sole ->
        Array.iteri
          (fun s engine ->
            if t.enabled.(s) then begin
              let _, rules = Engine.install engine ~uid:(slice_uid uid 1) compiled in
              total_rules := !total_rules + rules;
              latencies := Switch.install_rules t.switches.(s) ~count:rules :: !latencies
            end)
          t.engines;
        None
    | `Cqe ->
        let p = Option.get gate_placement in
        Array.iteri
          (fun s ds ->
            List.iter
              (fun d ->
                let lo, hi = Placement.stage_range p d in
                let _, rules =
                  Engine.install t.engines.(s) ~uid:(slice_uid uid d) ~stage_lo:lo
                    ~stage_hi:hi compiled
                in
                total_rules := !total_rules + rules;
                latencies := Switch.install_rules t.switches.(s) ~count:rules :: !latencies)
              ds)
          p.Placement.slices;
        (* Slices beyond any path length run on the analyzer's CPU. *)
        if p.Placement.num_slices > 0 then begin
          let lo, _ = Placement.stage_range p p.Placement.num_slices in
          ignore lo
        end;
        Some p
  in
  t.deployments <-
    { uid; compiled; mode; placement; edge_switches; stages_per_switch;
      installed_rules = !total_rules }
    :: t.deployments;
  let latency = List.fold_left max 0.0 !latencies in
  (uid, latency)

(* Undo the partial installs of a rollout that died mid-way. *)
let rollback_partial t uid =
  Array.iter
    (fun engine ->
      List.iter
        (fun (inst : Engine.instance) ->
          if Engine.instance_uid inst / 1000 = uid then
            ignore (Engine.remove engine (Engine.instance_uid inst)))
        (Engine.instances engine))
    t.engines;
  t.deployments <- List.filter (fun d -> d.uid <> uid) t.deployments

(* Gate + install, with failures as values the two public entry points
   render their own way: [`Refused] keeps the original diagnostics,
   [`Exhausted] keeps both the engine exception (for the raising
   wrapper) and its NA054 rendering (for the checked one). *)
let deploy_impl ?(mode = `Cqe) ?edge_switches ?(stages_per_switch = 12) t
    compiled =
  let gate_placement =
    match mode with
    | `Sole -> None
    | `Cqe ->
        Some
          (Placement.place ?edge_switches
             ~enabled:(fun s -> t.enabled.(s))
             ~stages_per_switch ~topo:t.topo compiled)
  in
  match
    admit_result t ?target:(Option.map target_of_placement gate_placement)
      compiled
  with
  | Error diags -> Error (`Refused diags)
  | Ok _warnings -> (
      match
        install_deployment ~mode ~edge_switches ~stages_per_switch
          ~gate_placement t compiled
      with
      | r -> Ok r
      | exception (Engine.Rules_exhausted { stage; kind } as e) ->
          rollback_partial t (t.next_uid - 1);
          Error (`Exhausted (e, exhausted_diag compiled ~stage ~kind)))

(** Deploy a compiled query network-wide, admission failures as values:
    [Error diags] when the static-analysis gate refuses the query or a
    module cell overflows mid-rollout (NA054; partial installs rolled
    back).  Never raises on admission or capacity. *)
let deploy_checked ?mode ?edge_switches ?stages_per_switch t compiled =
  match deploy_impl ?mode ?edge_switches ?stages_per_switch t compiled with
  | Ok r -> Ok r
  | Error (`Refused diags) -> Error diags
  | Error (`Exhausted (_, diag)) -> Error [ diag ]

(** Exception form — a thin wrapper over the checked path.
    @raise Rejected when static analysis refuses the query.
    @raise Engine.Rules_exhausted on install-time capacity overflow
    (after rollback). *)
let deploy ?mode ?edge_switches ?stages_per_switch t compiled =
  match deploy_impl ?mode ?edge_switches ?stages_per_switch t compiled with
  | Ok r -> r
  | Error (`Refused diags) -> raise (Rejected diags)
  | Error (`Exhausted (e, _)) -> raise e

(** Remove a deployment everywhere; returns the slowest switch's rule
    removal latency. *)
let undeploy t uid =
  match find_deployment t uid with
  | None -> None
  | Some dep ->
      let latencies = ref [ 0.0 ] in
      Array.iteri
        (fun s engine ->
          let removed = ref 0 in
          List.iter
            (fun inst ->
              if Engine.instance_uid inst / 1000 = uid then
                match Engine.remove engine (Engine.instance_uid inst) with
                | Some rules -> removed := !removed + rules
                | None -> ())
            (Engine.instances engine);
          if !removed > 0 then
            latencies := Switch.remove_rules t.switches.(s) ~count:!removed :: !latencies)
        t.engines;
      t.deployments <- List.filter (fun d -> d.uid <> uid) t.deployments;
      ignore dep;
      Some (List.fold_left max 0.0 !latencies)

(** Deploy a scheduler plan: every admitted query is recompiled with
    its assigned register budget and deployed.  Returns the deployment
    uids in plan order. *)
let deploy_plan ?(mode = `Cqe) ?edge_switches ?(stages_per_switch = 12)
    ?(options = Newton_compiler.Decompose.default_options) t
    (plan : Scheduler.plan) =
  List.map
    (fun (a : Scheduler.assignment) ->
      let compiled =
        Newton_compiler.Compose.compile
          ~options:{ options with Newton_compiler.Decompose.registers = a.Scheduler.registers }
          a.Scheduler.a_query
      in
      fst (deploy ~mode ?edge_switches ~stages_per_switch t compiled))
    plan.Scheduler.admitted

(** Update = atomic remove + install of a recompiled query (the paper's
    query-update operation); forwarding is never interrupted.  The
    replacement is admitted {e before} anything is removed — against
    the deployed set minus the query being replaced — so a refused
    update leaves the old deployment running untouched.  [Ok None] for
    an unknown uid. *)
let update_checked t uid compiled =
  match find_deployment t uid with
  | None -> Ok None
  | Some _ -> (
      let target =
        match
          Placement.place
            ~enabled:(fun s -> t.enabled.(s))
            ~stages_per_switch:12 ~topo:t.topo compiled
        with
        | p -> Some (target_of_placement p)
        | exception _ -> None
      in
      match admit_result t ~exclude:uid ?target compiled with
      | Error diags -> Error diags
      | Ok _ -> (
          let lat_rm = Option.value (undeploy t uid) ~default:0.0 in
          match deploy_checked t compiled with
          | Ok (uid', lat_in) -> Ok (Some (uid', lat_rm +. lat_in))
          | Error diags ->
              (* Only install-time exhaustion can land here (admission
                 passed just above); the old deployment is gone, as
                 with any failed rollout. *)
              Error diags))

(** Exception form of {!update_checked}.
    @raise Rejected when the replacement fails admission (the old
    deployment keeps running). *)
let update t uid compiled =
  match update_checked t uid compiled with
  | Ok r -> r
  | Error diags -> raise (Rejected diags)

(* ---------------- software continuation ---------------- *)

(* The analyzer finishes a query whose remaining slices exceeded the
   forwarding path: it lazily instantiates the tail (slices
   [next_slice..M] as one stage range) and resumes from the exported
   execution status. *)
let software_continue t dep ~next_slice ~ctx pkt =
  match dep.placement with
  | None -> ()
  | Some p ->
      let lo, _ = Placement.stage_range p next_slice in
      let uid = slice_uid dep.uid (500 + next_slice) in
      let inst =
        match Engine.find_instance t.software uid with
        | Some i -> i
        | None ->
            ignore (Engine.install t.software ~uid ~stage_lo:lo dep.compiled);
            Option.get (Engine.find_instance t.software uid)
      in
      Engine.maybe_roll_window t.software (Newton_packet.Packet.ts pkt);
      Newton_telemetry.Stats.bump
        (Engine.sink t.software)
        Newton_telemetry.Stats.Software_continuations 1;
      ignore (Engine.process_instance t.software inst ~ctx pkt)

(* ---------------- packet processing ---------------- *)

(** Process one packet whose flow enters at [src_host] and leaves at
    [dst_host].  Executes every deployment along the forwarding path:
    CQE deployments run slice d at hop d with the context threaded
    through the SP header; sole deployments run the full query
    independently at every hop. *)
let process_packet t ~src_host ~dst_host pkt =
  t.packets <- t.packets + 1;
  t.wire_bytes <- t.wire_bytes + Newton_packet.Packet.get pkt Newton_packet.Field.Pkt_len;
  let flow_hash =
    Newton_packet.Fivetuple.hash (Newton_packet.Fivetuple.of_packet pkt)
  in
  match Route.switch_path ~flow_hash t.route ~src_host ~dst_host with
  | None -> () (* disconnected: packet dropped by routing *)
  | Some [] -> () (* endpoints on the same host: never enters the fabric *)
  | Some path ->
      List.iter
        (fun dep ->
          match dep.mode with
          | `Sole ->
              List.iter
                (fun s ->
                  let engine = t.engines.(s) in
                  match Engine.find_instance engine (slice_uid dep.uid 1) with
                  | Some inst ->
                      Engine.record_packet_seen engine;
                      Engine.maybe_roll_window engine (Newton_packet.Packet.ts pkt);
                      ignore (Engine.process_instance engine inst pkt)
                  | None -> ())
                path
          | `Cqe ->
              let m =
                match dep.placement with
                | Some p -> p.Placement.num_slices
                | None -> 1
              in
              let ctx = ref (Ctx.create ()) in
              (* Depth counts Newton-enabled hops only; the SP header
                 survives only between {e adjacent} enabled switches (§7) —
                 a legacy switch in between loses the snapshot. *)
              let d = ref 0 in
              let prev_enabled_hop = ref (-2) in
              List.iteri
                (fun hop s ->
                  if t.enabled.(s) && (not !ctx.Ctx.stopped) && !d < m then begin
                    incr d;
                    let engine = t.engines.(s) in
                    Newton_telemetry.Stats.bump (Engine.sink engine)
                      Newton_telemetry.Stats.Cqe_hops 1;
                    (match Engine.find_instance engine (slice_uid dep.uid !d) with
                    | Some inst ->
                        Engine.record_packet_seen engine;
                        Engine.maybe_roll_window engine (Newton_packet.Packet.ts pkt);
                        if !d > 1 then begin
                          if hop = !prev_enabled_hop + 1 then begin
                            (* SP header between adjacent Newton hops. *)
                            t.sp_bytes <- t.sp_bytes + Newton_packet.Sp_header.size_bytes;
                            Newton_telemetry.Stats.bump (Engine.sink engine)
                              Newton_telemetry.Stats.Sp_header_bytes
                              Newton_packet.Sp_header.size_bytes;
                            let restored =
                              Ctx.of_sp
                                (Newton_packet.Sp_header.decode
                                   (Newton_packet.Sp_header.encode (Ctx.to_sp !ctx)))
                            in
                            restored.Ctx.stopped <- !ctx.Ctx.stopped;
                            ctx := restored
                          end
                          else
                            (* snapshot lost crossing a legacy switch *)
                            ctx := Ctx.create ()
                        end;
                        ctx := Engine.process_instance engine inst ~ctx:!ctx pkt
                    | None ->
                        (* Placement gap (should not happen under
                           Algorithm 2): defer to the analyzer. *)
                        t.software_status_msgs <- t.software_status_msgs + 1);
                    prev_enabled_hop := hop
                  end)
                path;
              (* Query longer than the (enabled part of the) path: the
                 last switch exports the execution status and the
                 analyzer continues executing the remaining slices in
                 software (§5.2). *)
              if m > !d && !d > 0 && not !ctx.Ctx.stopped then begin
                t.software_status_msgs <- t.software_status_msgs + 1;
                software_continue t dep ~next_slice:(!d + 1) ~ctx:!ctx pkt
              end)
        t.deployments

(** All reports produced so far: data-plane reports network-wide plus
    the analyzer's software-continuation results. *)
let all_reports t =
  Array.fold_left (fun acc e -> acc @ Engine.reports e) (Engine.reports t.software) t.engines

(** Total monitoring messages: one per data-plane report plus software
    status exports. *)
let message_count t =
  Array.fold_left (fun acc e -> acc + Engine.report_count e) 0 t.engines
  + t.software_status_msgs

(** Packets whose query outlived the forwarding path and were exported
    to the analyzer for software continuation (§5.2). *)
let software_deferrals t = t.software_status_msgs

let sp_overhead_ratio t =
  if t.wire_bytes = 0 then 0.0
  else float_of_int t.sp_bytes /. float_of_int t.wire_bytes

let packets t = t.packets

(** Network-wide telemetry snapshot: one {!Introspect.engine_metrics}
    per switch (labelled [switch=<id>]) plus the analyzer's software
    engine ([switch="analyzer"]), merged so same-named families carry
    every switch's samples. *)
let snapshot t =
  let per_switch =
    Array.to_list
      (Array.mapi
         (fun i e ->
           Introspect.engine_metrics
             ~labels:[ ("switch", string_of_int i) ]
             e)
         t.engines)
  in
  Newton_telemetry.Snapshot.merge_all
    (per_switch
    @ [ Introspect.engine_metrics ~labels:[ ("switch", "analyzer") ] t.software;
        Newton_telemetry.Snapshot.of_sink
          ~labels:[ ("switch", "controller") ]
          t.c_sink ])

(* ---------------- failures ---------------- *)

(** Fail a link; forwarding reroutes on the next packet.  Thanks to the
    resilient placement, CQE deployments keep monitoring the rerouted
    traffic without controller intervention. *)
let fail_link t l = Route.fail_link t.route l

let repair_link t l = Route.repair_link t.route l

(* ---------------- switch failure recovery ---------------- *)

let is_switch_failed t s = Route.is_node_failed t.route s
let failed_switches t = Route.failed_nodes t.route
let recoveries t = List.rev t.recoveries

(** Network-wide reports after analyzer-style reconciliation:
    epoch-aligned sort + identity dedup, collapsing the duplicates that
    sole-switch replication and post-migration re-emission produce. *)
let reconciled_reports t = Merge.reports [ all_reports t ]

let bump_c t k n = Newton_telemetry.Stats.bump t.c_sink k n

(* Re-run Algorithm 2 for [dep] over the currently usable topology. *)
let replace_placement t dep =
  Placement.place ?edge_switches:dep.edge_switches
    ~enabled:(fun x -> t.enabled.(x))
    ~usable:(fun x -> not (Route.is_node_failed t.route x))
    ~stages_per_switch:dep.stages_per_switch ~topo:t.topo dep.compiled

(* Install every slice instance [p] calls for that is not present yet
   (skipping failed switches).  A switch out of module-table capacity is
   skipped — the slice keeps its other hosts or degrades to software.
   Accumulates install latencies and the entry count. *)
let install_missing t dep (p : Placement.t) ~latencies ~rules_installed =
  Array.iteri
    (fun s' ds ->
      if not (Route.is_node_failed t.route s') then
        List.iter
          (fun d ->
            if Engine.find_instance t.engines.(s') (slice_uid dep.uid d) = None
            then begin
              let lo, hi = Placement.stage_range p d in
              match
                Engine.install t.engines.(s') ~uid:(slice_uid dep.uid d)
                  ~stage_lo:lo ~stage_hi:hi dep.compiled
              with
              | _, rules ->
                  rules_installed := !rules_installed + rules;
                  dep.installed_rules <- dep.installed_rules + rules;
                  latencies :=
                    Switch.install_rules t.switches.(s') ~count:rules
                    :: !latencies
              | exception Engine.Rules_exhausted _ -> ()
            end)
          ds)
    p.Placement.slices

(* Move one displaced slice's state off the failed switch: merge it into
   {e every} surviving host of the same slice.  Rerouted flows fan out —
   each direction/path meets its own depth-d switch — so no single host
   is "the" replacement; replicating the bank everywhere keeps each
   key's aggregate on whichever host its flow now traverses.  A key's
   packets cross exactly one depth-d switch, so only one replica keeps
   accumulating per key, and the dedup memory (copied along) stops the
   frozen replicas from re-emitting.  When no dataplane host survives,
   the state goes to the software engine's continuation instance for the
   slice, so the analyzer finishes the query with the accumulated state
   (§5.2 degraded mode). *)
let migrate_slice t dep d ~src ~migrated ~cells ~fallbacks =
  let uid_d = slice_uid dep.uid d in
  let op_of = Merge.array_ops src in
  let survivors =
    List.filter_map
      (fun s' ->
        if Route.is_node_failed t.route s' then None
        else Engine.find_instance t.engines.(s') uid_d)
      (Topo.switches t.topo)
  in
  match survivors with
  | _ :: _ ->
      incr migrated;
      List.iter
        (fun dst ->
          let _, c = Engine.absorb_state ~op_of ~src ~dst in
          cells := !cells + c)
        survivors
  | [] -> (
      match dep.placement with
      | None -> ()
      | Some p ->
          let lo, _ = Placement.stage_range p d in
          let uid_sw = slice_uid dep.uid (500 + d) in
          let dst =
            match Engine.find_instance t.software uid_sw with
            | Some i -> i
            | None ->
                ignore (Engine.install t.software ~uid:uid_sw ~stage_lo:lo dep.compiled);
                Option.get (Engine.find_instance t.software uid_sw)
          in
          let _, c = Engine.absorb_state ~op_of:(Merge.array_ops src) ~src ~dst in
          incr fallbacks;
          cells := !cells + c)

(** Fail a switch: mark it down (forwarding reroutes around it), re-run
    Algorithm 2 over the surviving topology, install any slices the
    re-placement adds, and migrate each displaced slice's register state
    — into every surviving host of the slice under the slot's ALU merge
    op, or into the software-continuation engine when no resilient
    placement exists.  The dedup memory travels with the state, so no
    host re-emits reports the failed switch already exported.
    Sole-switch deployments need no migration (every hop holds the full
    state already; merging would double-count) — the dead instance is
    dropped.  Returns the recovery record, or [None] if [s] was already
    down.
    @raise Invalid_argument if [s] is not a switch. *)
let fail_switch t s =
  if not (Topo.is_switch t.topo s) then
    invalid_arg (Printf.sprintf "Deploy.fail_switch: %d is not a switch" s);
  if Route.is_node_failed t.route s then None
  else begin
    Route.fail_node t.route s;
    bump_c t Newton_telemetry.Stats.Switch_failures 1;
    let failed_engine = t.engines.(s) in
    let latencies = ref [ 0.0 ] in
    let migrated = ref 0 and cells = ref 0 and fallbacks = ref 0 in
    let rules_installed = ref 0 in
    List.iter
      (fun dep ->
        match dep.mode with
        | `Sole -> ignore (Engine.remove failed_engine (slice_uid dep.uid 1))
        | `Cqe ->
            let displaced =
              match dep.placement with
              | None -> []
              | Some p -> p.Placement.slices.(s)
            in
            let p' = replace_placement t dep in
            install_missing t dep p' ~latencies ~rules_installed;
            List.iter
              (fun d ->
                match Engine.find_instance failed_engine (slice_uid dep.uid d) with
                | None -> ()
                | Some src ->
                    migrate_slice t dep d ~src ~migrated ~cells ~fallbacks;
                    ignore (Engine.remove failed_engine (slice_uid dep.uid d)))
              displaced;
            dep.placement <- Some p')
      t.deployments;
    bump_c t Newton_telemetry.Stats.Slices_migrated !migrated;
    bump_c t Newton_telemetry.Stats.State_cells_moved !cells;
    bump_c t Newton_telemetry.Stats.Software_fallbacks !fallbacks;
    let r =
      {
        r_switch = s;
        r_event = `Fail;
        r_slices_migrated = !migrated;
        r_cells_moved = !cells;
        r_software_fallbacks = !fallbacks;
        r_rules_installed = !rules_installed;
        r_latency = List.fold_left max 0.0 !latencies;
      }
    in
    t.recoveries <- r :: t.recoveries;
    Some r
  end

(** Repair a switch: mark it up and re-run Algorithm 2 so it regains its
    slices (sole-switch deployments get their full instance back).  The
    rejoined switch starts with {e empty} register state — its windows
    converge from the next boundary; reports stay covered meanwhile by
    the failure-time placement, whose instances are retained.  Returns
    the recovery record, or [None] if [s] was not down.
    @raise Invalid_argument if [s] is not a switch. *)
let repair_switch t s =
  if not (Topo.is_switch t.topo s) then
    invalid_arg (Printf.sprintf "Deploy.repair_switch: %d is not a switch" s);
  if not (Route.is_node_failed t.route s) then None
  else begin
    Route.repair_node t.route s;
    bump_c t Newton_telemetry.Stats.Switch_repairs 1;
    let latencies = ref [ 0.0 ] in
    let rules_installed = ref 0 in
    List.iter
      (fun dep ->
        match dep.mode with
        | `Sole ->
            if
              t.enabled.(s)
              && Engine.find_instance t.engines.(s) (slice_uid dep.uid 1) = None
            then begin
              match
                Engine.install t.engines.(s) ~uid:(slice_uid dep.uid 1)
                  dep.compiled
              with
              | _, rules ->
                  rules_installed := !rules_installed + rules;
                  dep.installed_rules <- dep.installed_rules + rules;
                  latencies :=
                    Switch.install_rules t.switches.(s) ~count:rules :: !latencies
              | exception Engine.Rules_exhausted _ -> ()
            end
        | `Cqe ->
            let p' = replace_placement t dep in
            install_missing t dep p' ~latencies ~rules_installed;
            dep.placement <- Some p')
      t.deployments;
    let r =
      {
        r_switch = s;
        r_event = `Repair;
        r_slices_migrated = 0;
        r_cells_moved = 0;
        r_software_fallbacks = 0;
        r_rules_installed = !rules_installed;
        r_latency = List.fold_left max 0.0 !latencies;
      }
    in
    t.recoveries <- r :: t.recoveries;
    Some r
  end
