(** The Newton controller: network-wide query deployment and dynamic
    operations.

    Owns one {!Newton_runtime.Engine} (execution) and one
    {!Newton_dataplane.Switch} (resource/timing accounting) per switch,
    plus the software analyzer.  Queries are deployed either with
    cross-switch execution ([`Cqe], the Newton model: slices at depths
    given by Algorithm 2, context threaded through the SP header) or
    sole-switch execution ([`Sole], the baseline of §6.3: the full query
    replicated on every switch, each reporting independently).

    Install/remove latencies follow the runtime-reconfiguration model of
    {!Newton_dataplane.Reconfig}: per-rule driver operations, switches
    updated in parallel — no forwarding interruption, unlike the Sonata
    full-reload path. *)

open Newton_network
open Newton_runtime
open Newton_dataplane

type mode = [ `Cqe | `Sole ]

type deployment = {
  uid : int;
  compiled : Newton_compiler.Compose.t;
  mode : mode;
  placement : Placement.t option; (* None for `Sole *)
  mutable installed_rules : int;
}

type t = {
  topo : Topo.t;
  route : Route.t;
  engines : Engine.t array;
  switches : Switch.t array;
  analyzer : Analyzer.t;
  software : Engine.t; (** CPU continuation for slices beyond the path *)
  mutable deployments : deployment list;
  mutable next_uid : int;
  mutable sp_bytes : int;
  mutable wire_bytes : int;
  mutable packets : int;
  mutable software_status_msgs : int;
  enabled : bool array; (** partial deployment: Newton-enabled switches *)
}

(* The module layout is loaded once per switch at initialization (§3
   workflow): every stage hosts one K/H/S/R suite per metadata set.
   Queries then only consume table rules and register ranges.  The
   layout's two suites exactly saturate a stage's SALU and TCAM budgets
   — the physical justification for the Module_cost constants. *)
let place_layout sw =
  for stage = 0 to Switch.num_stages sw - 1 do
    List.iter
      (fun set ->
        List.iter
          (fun kind ->
            Switch.place sw ~stage
              ~name:
                (Printf.sprintf "layout_%s_m%d"
                   (Module_cost.kind_to_string kind) set)
              (Module_cost.cost kind))
          Module_cost.all_kinds)
      [ 0; 1 ]
  done

let create ?(fwd_entries = Switch.default_fwd_entries) topo =
  let n = Topo.num_switches topo in
  {
    topo;
    route = Route.create topo;
    engines = Array.init n (fun i -> Engine.create ~switch_id:i ());
    switches =
      Array.init n (fun id ->
          let sw = Switch.create ~id ~fwd_entries () in
          place_layout sw;
          sw);
    analyzer = Analyzer.create ();
    software = Engine.create ~switch_id:(-1) ();
    deployments = [];
    next_uid = 1;
    sp_bytes = 0;
    wire_bytes = 0;
    packets = 0;
    software_status_msgs = 0;
    enabled = Array.make n true;
  }

let topo t = t.topo
let route t = t.route
let engine t s = t.engines.(s)
let switch t s = t.switches.(s)
let analyzer t = t.analyzer
let deployments t = t.deployments

let find_deployment t uid = List.find_opt (fun d -> d.uid = uid) t.deployments

(** Partial deployment (§7): mark a switch as legacy (no Newton rules,
    SP headers cannot cross it).  Affects subsequent deploys and packet
    processing; existing deployments keep their installed rules. *)
let set_enabled t s b = t.enabled.(s) <- b

let is_enabled t s = t.enabled.(s)

(* Instance uid scheme: one deployment's slice d on any switch shares
   uid*1000+d so the path executor threads one context across hops. *)
let slice_uid uid d = (uid * 1000) + d

(** Deploy a compiled query network-wide.  Returns (uid, latency in
    seconds) — the latency is the slowest switch's rule-install time
    (switch drivers work in parallel). *)
let deploy ?(mode = `Cqe) ?edge_switches ?(stages_per_switch = 12) t compiled =
  let uid = t.next_uid in
  t.next_uid <- uid + 1;
  let latencies = ref [] in
  let total_rules = ref 0 in
  let placement =
    match mode with
    | `Sole ->
        Array.iteri
          (fun s engine ->
            if t.enabled.(s) then begin
              let _, rules = Engine.install engine ~uid:(slice_uid uid 1) compiled in
              total_rules := !total_rules + rules;
              latencies := Switch.install_rules t.switches.(s) ~count:rules :: !latencies
            end)
          t.engines;
        None
    | `Cqe ->
        let p =
          Placement.place ?edge_switches
            ~enabled:(fun s -> t.enabled.(s))
            ~stages_per_switch ~topo:t.topo compiled
        in
        Array.iteri
          (fun s ds ->
            List.iter
              (fun d ->
                let lo, hi = Placement.stage_range p d in
                let _, rules =
                  Engine.install t.engines.(s) ~uid:(slice_uid uid d) ~stage_lo:lo
                    ~stage_hi:hi compiled
                in
                total_rules := !total_rules + rules;
                latencies := Switch.install_rules t.switches.(s) ~count:rules :: !latencies)
              ds)
          p.Placement.slices;
        (* Slices beyond any path length run on the analyzer's CPU. *)
        if p.Placement.num_slices > 0 then begin
          let lo, _ = Placement.stage_range p p.Placement.num_slices in
          ignore lo
        end;
        Some p
  in
  t.deployments <- { uid; compiled; mode; placement; installed_rules = !total_rules } :: t.deployments;
  let latency = List.fold_left max 0.0 !latencies in
  (uid, latency)

(* Wrap [deploy] so a switch running out of module-table capacity
   mid-rollout undoes the partial installs and re-raises. *)
let deploy ?mode ?edge_switches ?stages_per_switch t compiled =
  try deploy ?mode ?edge_switches ?stages_per_switch t compiled
  with Engine.Rules_exhausted _ as e ->
    let uid = t.next_uid - 1 in
    Array.iter
      (fun engine ->
        List.iter
          (fun (inst : Engine.instance) ->
            if Engine.instance_uid inst / 1000 = uid then
              ignore (Engine.remove engine (Engine.instance_uid inst)))
          (Engine.instances engine))
      t.engines;
    raise e

(** Remove a deployment everywhere; returns the slowest switch's rule
    removal latency. *)
let undeploy t uid =
  match find_deployment t uid with
  | None -> None
  | Some dep ->
      let latencies = ref [ 0.0 ] in
      Array.iteri
        (fun s engine ->
          let removed = ref 0 in
          List.iter
            (fun inst ->
              if Engine.instance_uid inst / 1000 = uid then
                match Engine.remove engine (Engine.instance_uid inst) with
                | Some rules -> removed := !removed + rules
                | None -> ())
            (Engine.instances engine);
          if !removed > 0 then
            latencies := Switch.remove_rules t.switches.(s) ~count:!removed :: !latencies)
        t.engines;
      t.deployments <- List.filter (fun d -> d.uid <> uid) t.deployments;
      ignore dep;
      Some (List.fold_left max 0.0 !latencies)

(** Deploy a scheduler plan: every admitted query is recompiled with
    its assigned register budget and deployed.  Returns the deployment
    uids in plan order. *)
let deploy_plan ?(mode = `Cqe) ?edge_switches ?(stages_per_switch = 12)
    ?(options = Newton_compiler.Decompose.default_options) t
    (plan : Scheduler.plan) =
  List.map
    (fun (a : Scheduler.assignment) ->
      let compiled =
        Newton_compiler.Compose.compile
          ~options:{ options with Newton_compiler.Decompose.registers = a.Scheduler.registers }
          a.Scheduler.a_query
      in
      fst (deploy ~mode ?edge_switches ~stages_per_switch t compiled))
    plan.Scheduler.admitted

(** Update = atomic remove + install of a recompiled query (the paper's
    query-update operation); forwarding is never interrupted. *)
let update t uid compiled =
  match undeploy t uid with
  | None -> None
  | Some lat_rm ->
      let mode = `Cqe in
      let uid', lat_in = deploy ~mode t compiled in
      Some (uid', lat_rm +. lat_in)

(* ---------------- software continuation ---------------- *)

(* The analyzer finishes a query whose remaining slices exceeded the
   forwarding path: it lazily instantiates the tail (slices
   [next_slice..M] as one stage range) and resumes from the exported
   execution status. *)
let software_continue t dep ~next_slice ~ctx pkt =
  match dep.placement with
  | None -> ()
  | Some p ->
      let lo, _ = Placement.stage_range p next_slice in
      let uid = slice_uid dep.uid (500 + next_slice) in
      let inst =
        match Engine.find_instance t.software uid with
        | Some i -> i
        | None ->
            ignore (Engine.install t.software ~uid ~stage_lo:lo dep.compiled);
            Option.get (Engine.find_instance t.software uid)
      in
      Engine.maybe_roll_window t.software
        (Newton_packet.Packet.ts pkt)
        dep.compiled.Newton_compiler.Compose.query.Newton_query.Ast.window;
      Newton_telemetry.Stats.bump
        (Engine.sink t.software)
        Newton_telemetry.Stats.Software_continuations 1;
      ignore (Engine.process_instance t.software inst ~ctx pkt)

(* ---------------- packet processing ---------------- *)

(** Process one packet whose flow enters at [src_host] and leaves at
    [dst_host].  Executes every deployment along the forwarding path:
    CQE deployments run slice d at hop d with the context threaded
    through the SP header; sole deployments run the full query
    independently at every hop. *)
let process_packet t ~src_host ~dst_host pkt =
  t.packets <- t.packets + 1;
  t.wire_bytes <- t.wire_bytes + Newton_packet.Packet.get pkt Newton_packet.Field.Pkt_len;
  let flow_hash =
    Newton_packet.Fivetuple.hash (Newton_packet.Fivetuple.of_packet pkt)
  in
  match Route.switch_path ~flow_hash t.route ~src_host ~dst_host with
  | None -> () (* disconnected: packet dropped by routing *)
  | Some [] -> () (* endpoints on the same host: never enters the fabric *)
  | Some path ->
      List.iter
        (fun dep ->
          match dep.mode with
          | `Sole ->
              List.iter
                (fun s ->
                  let engine = t.engines.(s) in
                  match Engine.find_instance engine (slice_uid dep.uid 1) with
                  | Some inst ->
                      Engine.record_packet_seen engine;
                      Engine.maybe_roll_window engine (Newton_packet.Packet.ts pkt)
                        dep.compiled.Newton_compiler.Compose.query.Newton_query.Ast.window;
                      ignore (Engine.process_instance engine inst pkt)
                  | None -> ())
                path
          | `Cqe ->
              let m =
                match dep.placement with
                | Some p -> p.Placement.num_slices
                | None -> 1
              in
              let ctx = ref (Ctx.create ()) in
              (* Depth counts Newton-enabled hops only; the SP header
                 survives only between {e adjacent} enabled switches (§7) —
                 a legacy switch in between loses the snapshot. *)
              let d = ref 0 in
              let prev_enabled_hop = ref (-2) in
              List.iteri
                (fun hop s ->
                  if t.enabled.(s) && (not !ctx.Ctx.stopped) && !d < m then begin
                    incr d;
                    let engine = t.engines.(s) in
                    Newton_telemetry.Stats.bump (Engine.sink engine)
                      Newton_telemetry.Stats.Cqe_hops 1;
                    (match Engine.find_instance engine (slice_uid dep.uid !d) with
                    | Some inst ->
                        Engine.record_packet_seen engine;
                        Engine.maybe_roll_window engine (Newton_packet.Packet.ts pkt)
                          dep.compiled.Newton_compiler.Compose.query.Newton_query.Ast.window;
                        if !d > 1 then begin
                          if hop = !prev_enabled_hop + 1 then begin
                            (* SP header between adjacent Newton hops. *)
                            t.sp_bytes <- t.sp_bytes + Newton_packet.Sp_header.size_bytes;
                            Newton_telemetry.Stats.bump (Engine.sink engine)
                              Newton_telemetry.Stats.Sp_header_bytes
                              Newton_packet.Sp_header.size_bytes;
                            let restored =
                              Ctx.of_sp
                                (Newton_packet.Sp_header.decode
                                   (Newton_packet.Sp_header.encode (Ctx.to_sp !ctx)))
                            in
                            restored.Ctx.stopped <- !ctx.Ctx.stopped;
                            ctx := restored
                          end
                          else
                            (* snapshot lost crossing a legacy switch *)
                            ctx := Ctx.create ()
                        end;
                        ctx := Engine.process_instance engine inst ~ctx:!ctx pkt
                    | None ->
                        (* Placement gap (should not happen under
                           Algorithm 2): defer to the analyzer. *)
                        t.software_status_msgs <- t.software_status_msgs + 1);
                    prev_enabled_hop := hop
                  end)
                path;
              (* Query longer than the (enabled part of the) path: the
                 last switch exports the execution status and the
                 analyzer continues executing the remaining slices in
                 software (§5.2). *)
              if m > !d && !d > 0 && not !ctx.Ctx.stopped then begin
                t.software_status_msgs <- t.software_status_msgs + 1;
                software_continue t dep ~next_slice:(!d + 1) ~ctx:!ctx pkt
              end)
        t.deployments

(** All reports produced so far: data-plane reports network-wide plus
    the analyzer's software-continuation results. *)
let all_reports t =
  Array.fold_left (fun acc e -> acc @ Engine.reports e) (Engine.reports t.software) t.engines

(** Total monitoring messages: one per data-plane report plus software
    status exports. *)
let message_count t =
  Array.fold_left (fun acc e -> acc + Engine.report_count e) 0 t.engines
  + t.software_status_msgs

(** Packets whose query outlived the forwarding path and were exported
    to the analyzer for software continuation (§5.2). *)
let software_deferrals t = t.software_status_msgs

let sp_overhead_ratio t =
  if t.wire_bytes = 0 then 0.0
  else float_of_int t.sp_bytes /. float_of_int t.wire_bytes

let packets t = t.packets

(** Network-wide telemetry snapshot: one {!Introspect.engine_metrics}
    per switch (labelled [switch=<id>]) plus the analyzer's software
    engine ([switch="analyzer"]), merged so same-named families carry
    every switch's samples. *)
let snapshot t =
  let per_switch =
    Array.to_list
      (Array.mapi
         (fun i e ->
           Introspect.engine_metrics
             ~labels:[ ("switch", string_of_int i) ]
             e)
         t.engines)
  in
  Newton_telemetry.Snapshot.merge_all
    (per_switch
    @ [ Introspect.engine_metrics ~labels:[ ("switch", "analyzer") ] t.software ])

(* ---------------- failures ---------------- *)

(** Fail a link; forwarding reroutes on the next packet.  Thanks to the
    resilient placement, CQE deployments keep monitoring the rerouted
    traffic without controller intervention. *)
let fail_link t l = Route.fail_link t.route l

let repair_link t l = Route.repair_link t.route l
