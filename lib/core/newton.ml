(** Newton: intent-driven network traffic monitoring.

    The public facade of the library.  Operators express monitoring
    intents as stream-processing queries ({!Query}, {!Catalog}); Newton
    compiles them to table rules over reconfigurable data-plane modules
    ({!Compiler}), installs them dynamically — no switch reboot — on one
    switch ({!Device}) or across a network with resilient placement and
    cross-switch execution ({!Network}), and exports only the reports the
    intent asks for.

    Quick start:
    {[
      let device = Newton.Device.create () in
      let handle, latency = Newton.Device.add_query device (Newton.Catalog.q4 ()) in
      Array.iter (Newton.Device.process_packet device) packets;
      let scans = Newton.Device.reports device in
      ...
    ]} *)

(* Re-exports: the vocabulary types examples and benches need. *)
module Field = Newton_packet.Field
module Packet = Newton_packet.Packet
module Fivetuple = Newton_packet.Fivetuple
module Sp_header = Newton_packet.Sp_header
module Query = Newton_query.Ast
module Catalog = Newton_query.Catalog
module Report = Newton_query.Report
module Ref_eval = Newton_query.Ref_eval
module Trace = Newton_trace.Gen
module Trace_profile = Newton_trace.Profile
module Attack = Newton_trace.Attack
module Compiler = Newton_compiler.Compose
module Compile_options = Newton_compiler.Decompose
module Topo = Newton_network.Topo
module Route = Newton_network.Route
module Placement = Newton_controller.Placement
module Chaos = Newton_controller.Chaos
module Analyzer = Newton_runtime.Analyzer
module Shard = Newton_runtime.Shard
module Parallel_engine = Newton_runtime.Parallel_engine
module Telemetry = Newton_telemetry
module Introspect = Newton_runtime.Introspect

(** A query installed on a device or network; returned by [add_query]. *)
type handle = { uid : int; query : Newton_query.Ast.t }

(** Device-level Newton (§4): one programmable switch running
    dynamically reconfigurable queries. *)
module Device = struct
  open Newton_runtime
  open Newton_dataplane

  type t = {
    engine : Engine.t;
    switch : Switch.t;
    options : Newton_compiler.Decompose.options;
    mutable handles : handle list;
  }

  let create ?(options = Newton_compiler.Decompose.default_options)
      ?(fwd_entries = Switch.default_fwd_entries) () =
    {
      engine = Engine.create ~switch_id:0 ();
      switch = Switch.create ~id:0 ~fwd_entries ();
      options;
      handles = [];
    }

  let engine t = t.engine
  let switch t = t.switch
  let queries t = List.map (fun h -> h.query) t.handles

  (** Compile and install a query at runtime.  Returns the handle and
      the rule-install latency in seconds; forwarding is never
      interrupted. *)
  let add_query ?options t query =
    let options = Option.value options ~default:t.options in
    let compiled = Newton_compiler.Compose.compile ~options query in
    let uid, rules = Engine.install t.engine compiled in
    let latency = Switch.install_rules t.switch ~count:rules in
    let h = { uid; query } in
    t.handles <- h :: t.handles;
    (h, latency)

  (** Remove an installed query; returns the rule-removal latency, or
      [None] for an unknown handle. *)
  let remove_query t h =
    match Engine.remove t.engine h.uid with
    | None -> None
    | Some rules ->
        t.handles <- List.filter (fun x -> x.uid <> h.uid) t.handles;
        Some (Switch.remove_rules t.switch ~count:rules)

  (** Update = remove + reinstall with new parameters, still at runtime. *)
  let update_query t h query =
    match remove_query t h with
    | None -> None
    | Some lat_rm ->
        let h', lat_in = add_query t query in
        Some (h', lat_rm +. lat_in)

  let process_packet t pkt = Engine.process_packet t.engine pkt
  let process_trace t trace = Newton_trace.Gen.iter (process_packet t) trace
  let reports t = Engine.reports t.engine
  let message_count t = Engine.report_count t.engine
  let monitor_rules t = Engine.total_rules t.engine

  (** Telemetry snapshot of the device: sink counters, rule-table
      utilization, sketch health (see {!Newton_telemetry}). *)
  let metrics t = Newton_runtime.Introspect.engine_metrics t.engine
end

(** Sharded replay (§6-scale evaluation): one switch whose packet
    stream is partitioned across OCaml 5 domains, each shard a replica
    engine, results folded back with the ALU merge ops.  [jobs = 1] is
    bit-identical to {!Device}. *)
module Parallel_device = struct
  open Newton_runtime

  type t = {
    engine : Parallel_engine.t;
    options : Newton_compiler.Decompose.options;
    mutable handles : handle list;
  }

  let create ?(options = Newton_compiler.Decompose.default_options) ?jobs
      ?batch ?shard_key () =
    {
      engine = Parallel_engine.create ?jobs ?batch ?shard_key ~switch_id:0 ();
      options;
      handles = [];
    }

  let engine t = t.engine
  let jobs t = Parallel_engine.jobs t.engine
  let queries t = List.map (fun h -> h.query) t.handles

  (** Compile and install a query on every shard. *)
  let add_query ?options t query =
    let options = Option.value options ~default:t.options in
    let compiled = Newton_compiler.Compose.compile ~options query in
    let uid, _rules = Parallel_engine.install t.engine compiled in
    let h = { uid; query } in
    t.handles <- h :: t.handles;
    h

  let remove_query t h =
    match Parallel_engine.remove t.engine h.uid with
    | None -> false
    | Some _ ->
        t.handles <- List.filter (fun x -> x.uid <> h.uid) t.handles;
        true

  let process_packets t pkts = Parallel_engine.process_packets t.engine pkts
  let process_trace t trace = Parallel_engine.process_trace t.engine trace
  let reports t = Parallel_engine.reports t.engine
  let message_count t = Parallel_engine.message_count t.engine
  let shard_loads t = Parallel_engine.shard_loads t.engine

  (** Telemetry snapshot: per-domain sinks merged, sketch health over
      the ALU-merged banks — totals match the sequential {!Device}. *)
  let metrics t = Newton_runtime.Introspect.parallel_metrics t.engine
end

(** Network-wide Newton (§5): resilient placement + cross-switch query
    execution over a topology. *)
module Network = struct
  module Deploy = Newton_controller.Deploy

  type t = {
    deploy : Deploy.t;
    options : Newton_compiler.Decompose.options;
    mutable handles : handle list;
  }

  let create ?(options = Newton_compiler.Decompose.default_options) topo =
    { deploy = Deploy.create topo; options; handles = [] }

  let controller t = t.deploy
  let topo t = Deploy.topo t.deploy

  (** Deploy a query network-wide.  [mode] defaults to CQE;
      [stages_per_switch] is how many pipeline stages each switch grants
      Newton. Returns the handle and the slowest switch's install
      latency. *)
  let add_query ?(mode = `Cqe) ?edge_switches ?(stages_per_switch = 12)
      ?options t query =
    let options = Option.value options ~default:t.options in
    let compiled = Newton_compiler.Compose.compile ~options query in
    let uid, latency =
      Deploy.deploy ~mode ?edge_switches ~stages_per_switch t.deploy compiled
    in
    let h = { uid; query } in
    t.handles <- h :: t.handles;
    (h, latency)

  let remove_query t h =
    match Deploy.undeploy t.deploy h.uid with
    | None -> None
    | Some latency ->
        t.handles <- List.filter (fun x -> x.uid <> h.uid) t.handles;
        Some latency

  (** Map a trace IP onto a topology host (stable hash). *)
  let host_of_ip topo ip =
    let n = Newton_network.Topo.num_hosts topo in
    Newton_network.Topo.num_switches topo
    + (Newton_sketch.Hash.hash_int ~seed:4242 ip mod n)

  let process_packet t pkt =
    let topo = Deploy.topo t.deploy in
    let src_host = host_of_ip topo (Packet.get pkt Field.Src_ip) in
    let dst_host = host_of_ip topo (Packet.get pkt Field.Dst_ip) in
    Deploy.process_packet t.deploy ~src_host ~dst_host pkt

  let process_trace t trace = Newton_trace.Gen.iter (process_packet t) trace

  let reports t = Deploy.all_reports t.deploy
  let message_count t = Deploy.message_count t.deploy
  let sp_overhead_ratio t = Deploy.sp_overhead_ratio t.deploy
  let fail_link t l = Deploy.fail_link t.deploy l
  let repair_link t l = Deploy.repair_link t.deploy l
  let fail_switch t s = Deploy.fail_switch t.deploy s
  let repair_switch t s = Deploy.repair_switch t.deploy s
  let failed_switches t = Deploy.failed_switches t.deploy
  let reconciled_reports t = Deploy.reconciled_reports t.deploy

  (** Partial deployment (§7): mark a switch as legacy before deploying. *)
  let set_enabled t s b = Deploy.set_enabled t.deploy s b

  (** Packets whose query outlived the path and were deferred to the
      analyzer. *)
  let software_deferrals t = Deploy.software_deferrals t.deploy

  (** Deploy a scheduler plan (each query recompiled with its assigned
      register budget). *)
  let deploy_plan ?mode ?edge_switches ?stages_per_switch t plan =
    Deploy.deploy_plan ?mode ?edge_switches ?stages_per_switch t.deploy plan

  (** Network-wide telemetry snapshot: every switch's engine metrics
      (labelled [switch=<id>]) plus the analyzer's software engine. *)
  let metrics t = Deploy.snapshot t.deploy
end
