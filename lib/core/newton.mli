(** Newton: intent-driven network traffic monitoring — public facade.

    Operators express monitoring intents as stream-processing queries
    ({!Query}, {!Catalog}); Newton compiles them to table rules over
    reconfigurable data-plane modules ({!Compiler}), installs them
    dynamically on one switch ({!Device}) or across a network
    ({!Network}), and exports only the reports the intent asks for. *)

(* Vocabulary re-exports. *)
module Field = Newton_packet.Field
module Packet = Newton_packet.Packet
module Fivetuple = Newton_packet.Fivetuple
module Sp_header = Newton_packet.Sp_header
module Query = Newton_query.Ast
module Catalog = Newton_query.Catalog
module Report = Newton_query.Report
module Ref_eval = Newton_query.Ref_eval
module Trace = Newton_trace.Gen
module Trace_profile = Newton_trace.Profile
module Attack = Newton_trace.Attack
module Compiler = Newton_compiler.Compose
module Compile_options = Newton_compiler.Decompose
module Topo = Newton_network.Topo
module Route = Newton_network.Route
module Placement = Newton_controller.Placement
module Chaos = Newton_controller.Chaos
module Analyzer = Newton_runtime.Analyzer
module Shard = Newton_runtime.Shard
module Parallel_engine = Newton_runtime.Parallel_engine
module Telemetry = Newton_telemetry
module Introspect = Newton_runtime.Introspect

(** A query installed on a device or network; returned by [add_query]. *)
type handle = { uid : int; query : Newton_query.Ast.t }

(** Device-level Newton (§4): one programmable switch running
    dynamically reconfigurable queries. *)
module Device : sig
  type t

  val create :
    ?options:Newton_compiler.Decompose.options ->
    ?fwd_entries:int ->
    unit ->
    t

  val engine : t -> Newton_runtime.Engine.t
  val switch : t -> Newton_dataplane.Switch.t
  val queries : t -> Newton_query.Ast.t list

  (** Compile and install a query at runtime.  Returns the handle and
      the rule-install latency in seconds. *)
  val add_query :
    ?options:Newton_compiler.Decompose.options ->
    t ->
    Newton_query.Ast.t ->
    handle * float

  (** Remove an installed query; returns the rule-removal latency, or
      [None] for an unknown handle. *)
  val remove_query : t -> handle -> float option

  (** Update = remove + reinstall with new parameters, still at runtime. *)
  val update_query : t -> handle -> Newton_query.Ast.t -> (handle * float) option

  val process_packet : t -> Newton_packet.Packet.t -> unit
  val process_trace : t -> Newton_trace.Gen.t -> unit
  val reports : t -> Newton_query.Report.t list
  val message_count : t -> int
  val monitor_rules : t -> int

  (** Telemetry snapshot of the device: sink counters, rule-table
      utilization, sketch health (see {!Newton_telemetry}). *)
  val metrics : t -> Newton_telemetry.Snapshot.t
end

(** Sharded replay (§6-scale evaluation): one switch whose packet
    stream is partitioned across OCaml 5 domains; [jobs = 1] is
    bit-identical to {!Device}. *)
module Parallel_device : sig
  type t

  val create :
    ?options:Newton_compiler.Decompose.options ->
    ?jobs:int ->
    ?batch:int ->
    ?shard_key:Newton_runtime.Shard.strategy ->
    unit ->
    t

  val engine : t -> Newton_runtime.Parallel_engine.t
  val jobs : t -> int
  val queries : t -> Newton_query.Ast.t list

  (** Compile and install a query on every shard. *)
  val add_query :
    ?options:Newton_compiler.Decompose.options ->
    t ->
    Newton_query.Ast.t ->
    handle

  val remove_query : t -> handle -> bool
  val process_packets : t -> Newton_packet.Packet.t array -> unit
  val process_trace : t -> Newton_trace.Gen.t -> unit
  val reports : t -> Newton_query.Report.t list
  val message_count : t -> int
  val shard_loads : t -> int array

  (** Telemetry snapshot: per-domain sinks merged, sketch health over
      the ALU-merged banks — totals match the sequential {!Device}. *)
  val metrics : t -> Newton_telemetry.Snapshot.t
end

(** Network-wide Newton (§5): resilient placement + cross-switch query
    execution over a topology. *)
module Network : sig
  module Deploy = Newton_controller.Deploy

  type t

  val create :
    ?options:Newton_compiler.Decompose.options -> Newton_network.Topo.t -> t

  val controller : t -> Deploy.t
  val topo : t -> Newton_network.Topo.t

  (** Deploy a query network-wide.  [mode] defaults to CQE. *)
  val add_query :
    ?mode:[ `Cqe | `Sole ] ->
    ?edge_switches:int list ->
    ?stages_per_switch:int ->
    ?options:Newton_compiler.Decompose.options ->
    t ->
    Newton_query.Ast.t ->
    handle * float

  val remove_query : t -> handle -> float option

  (** Map a trace IP onto a topology host (stable hash). *)
  val host_of_ip : Newton_network.Topo.t -> int -> int

  val process_packet : t -> Newton_packet.Packet.t -> unit
  val process_trace : t -> Newton_trace.Gen.t -> unit
  val reports : t -> Newton_query.Report.t list
  val message_count : t -> int
  val sp_overhead_ratio : t -> float
  val fail_link : t -> Newton_network.Route.link -> unit
  val repair_link : t -> Newton_network.Route.link -> unit

  (** Fail a switch: reroute around it, re-run Algorithm 2, migrate the
      displaced slices' register state to the surviving hosts (or the
      software engine).  [None] if already down. *)
  val fail_switch : t -> int -> Deploy.recovery option

  (** Repair a switch: it regains its slices with empty state and
      converges from the next window.  [None] if not down. *)
  val repair_switch : t -> int -> Deploy.recovery option

  val failed_switches : t -> int list

  (** Reports after analyzer-style reconciliation (identity dedup). *)
  val reconciled_reports : t -> Newton_query.Report.t list

  (** Partial deployment (§7): mark a switch as legacy before deploying. *)
  val set_enabled : t -> int -> bool -> unit

  (** Packets whose query outlived the path and were deferred to the
      analyzer. *)
  val software_deferrals : t -> int

  (** Deploy a scheduler plan (each query recompiled with its assigned
      register budget). *)
  val deploy_plan :
    ?mode:[ `Cqe | `Sole ] ->
    ?edge_switches:int list ->
    ?stages_per_switch:int ->
    t ->
    Newton_controller.Scheduler.plan ->
    int list

  (** Network-wide telemetry snapshot: every switch's engine metrics
      (labelled [switch=<id>]) plus the analyzer's software engine. *)
  val metrics : t -> Newton_telemetry.Snapshot.t
end
