(** Sonata baseline (Gupta et al., SIGCOMM'18).

    Sonata, like Newton, runs query logic on the data plane and exports
    only intent-relevant reports — so its {e monitoring overhead} matches
    Newton's (Fig. 12).  It differs in two ways this model captures:

    - {b Static queries}: every query create/update/remove compiles a new
      P4 program and reloads the switch, interrupting forwarding for
      seconds ({!Newton_dataplane.Reconfig.reload_outage}, Fig. 10).
    - {b Sole-switch execution}: a query's sketches live in one switch's
      memory; accuracy is capped by per-switch registers (Fig. 14), and
      network-wide deployments replicate the full query per switch.

    The query engine itself reuses {!Newton_runtime.Engine} — Sonata's
    data-plane semantics for the four primitives are the same; only the
    reconfiguration and placement regimes differ. *)

open Newton_runtime
open Newton_dataplane

type t = {
  switch : Switch.t;
  mutable engine : Engine.t;
  mutable outages : float list;  (* seconds, most recent first *)
  mutable queries : Newton_compiler.Compose.t list;
}

let create ?(fwd_entries = Switch.default_fwd_entries) ?(switch_id = 0) () =
  {
    switch = Switch.create ~id:switch_id ~fwd_entries ();
    engine = Engine.create ~switch_id ();
    outages = [];
    queries = [];
  }

let switch t = t.switch
let engine t = t.engine
let outages t = List.rev t.outages
let total_outage t = List.fold_left ( +. ) 0.0 t.outages

(* Reload the pipeline with the current query set: Sonata's only
   reconfiguration path.  All monitoring state is lost and forwarding
   stops for the outage duration. *)
let reload ?(offered_pps = 0.0) t =
  let outage = Switch.full_reload ~offered_pps t.switch in
  t.outages <- outage :: t.outages;
  let engine = Engine.create ~switch_id:(Switch.id t.switch) () in
  List.iter (fun c -> ignore (Engine.install engine c)) t.queries;
  t.engine <- engine;
  outage

(** Install a query: recompile + reboot. Returns the forwarding outage
    in seconds (Newton's equivalent returns milliseconds and no outage). *)
let install_query ?offered_pps t compiled =
  t.queries <- t.queries @ [ compiled ];
  reload ?offered_pps t

let remove_query ?offered_pps t compiled =
  t.queries <- List.filter (fun c -> c != compiled) t.queries;
  reload ?offered_pps t

let process_packet t pkt = Engine.process_packet t.engine pkt
let reports t = Engine.reports t.engine
let message_count t = Engine.report_count t.engine
