(** The traffic-monitoring query AST.

    Newton adopts Sonata's stream-processing abstraction (§2.1): a query
    is a chain of {!primitive}s — [filter], [map], [distinct], [reduce] —
    over the packet stream, evaluated per time window.  Queries that need
    two parallel sub-queries whose results are merged (e.g. SYN-minus-FIN
    for SYN-flood detection, Fig. 6) carry several {!branch}es plus a
    {!combine} step; Newton runs the branches concurrently on the data
    plane and merges through the R module's global result. *)

open Newton_packet

(** A (possibly bit-masked) header field used as an operation key.
    Masking expresses e.g. "the /24 prefix of dip". *)
type key = { field : Field.t; mask : int }

let key ?mask field =
  { field; mask = Option.value mask ~default:(Field.full_mask field) }

let keys fields = List.map (fun f -> key f) fields

(** Comparison operators for predicates. *)
type cmp_op = Eq | Neq | Gt | Ge | Lt | Le

let cmp_holds op a b =
  match op with
  | Eq -> a = b
  | Neq -> a <> b
  | Gt -> a > b
  | Ge -> a >= b
  | Lt -> a < b
  | Le -> a <= b

(** Filter predicates.  [Cmp] tests a (masked) packet header field;
    [Result_cmp] tests the running aggregate produced by an upstream
    [reduce]/[distinct] — this is how threshold filters like
    [filter(count > Th)] are written. *)
type pred =
  | Cmp of { field : Field.t; mask : int; op : cmp_op; value : int }
  | Result_cmp of { op : cmp_op; value : int }

let field_is ?mask field value =
  Cmp { field; mask = Option.value mask ~default:(Field.full_mask field); op = Eq; value }

let result_gt th = Result_cmp { op = Gt; value = th }

(** Aggregation functions for [reduce]. *)
type agg =
  | Count                  (** one per packet *)
  | Sum_field of Field.t   (** sum a header field, e.g. payload bytes *)
  | Max_field of Field.t   (** running maximum of a header field *)

type primitive =
  | Filter of pred list (** conjunction of predicates *)
  | Map of key list     (** project the tuple onto these keys *)
  | Distinct of key list (** pass only the first packet per key per window *)
  | Reduce of { keys : key list; agg : agg }
      (** per-key running aggregate; downstream sees the updated value *)

type branch = primitive list

(** How a multi-branch query merges its branches' per-key aggregates. *)
type combine_op =
  | Sub  (** left - right (clamped at 0), e.g. #SYN - #FIN *)
  | Min  (** min(left, right), e.g. completed = min(#opened, #closed) *)
  | Pair (** export both values; the analyzer applies the final intent *)

type combine = {
  op : combine_op;
  threshold : pred; (** predicate over the combined value, normally [Result_cmp] *)
}

type t = {
  id : int;
  name : string;
  description : string;
  branches : branch list;
  combine : combine option; (** required iff there are >= 2 branches *)
  window : float;           (** state reset period, seconds; paper uses 0.1 *)
}

(** Paper default: stateful primitives evaluate & reset every 100 ms. *)
let default_window = 0.1

let make ?(window = default_window) ?combine ~id ~name ~description branches =
  { id; name; description; branches; combine; window }

let chain ?(window = default_window) ~id ~name ~description prims =
  make ~window ~id ~name ~description [ prims ]

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

type error =
  | Empty_query
  | Empty_branch of int
  | Missing_combine
  | Combine_without_branches
  | Reduce_after_nothing of int  (** Result_cmp with no upstream stateful primitive *)
  | Empty_keys of int
  | Combine_branch_without_reduce of int
  | Combine_field_threshold
  | Combine_arity of int
  | Internal of string

let error_to_string = function
  | Empty_query -> "query has no branches"
  | Empty_branch i -> Printf.sprintf "branch %d is empty" i
  | Missing_combine -> "multi-branch query lacks a combine step"
  | Combine_without_branches -> "combine given but query has a single branch"
  | Reduce_after_nothing i ->
      Printf.sprintf "branch %d: Result_cmp before any distinct/reduce" i
  | Empty_keys i -> Printf.sprintf "branch %d: primitive with empty key list" i
  | Combine_branch_without_reduce i ->
      Printf.sprintf "branch %d: combine requires the branch to end in a reduce" i
  | Combine_field_threshold -> "combine threshold must test the count, not a field"
  | Combine_arity n ->
      Printf.sprintf "combine requires exactly two branches, query has %d" n
  | Internal msg -> "internal invariant violated: " ^ msg

exception Invalid of { query_id : int; query_name : string; errors : error list }

let invalid ?(id = 0) ?(name = "?") errors =
  Invalid { query_id = id; query_name = name; errors }

let errors_to_string errors =
  String.concat "; " (List.map error_to_string errors)

(* Printf-able rendering so an escaped exception still reads as a
   diagnostic, not a constructor dump. *)
let () =
  Printexc.register_printer (function
    | Invalid { query_id; query_name; errors } ->
        Some
          (Printf.sprintf "invalid query %s (Q%d): %s" query_name query_id
             (errors_to_string errors))
    | _ -> None)

(** Structural validation; returns all problems found. *)
let validate t =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  if t.branches = [] then err Empty_query;
  List.iteri
    (fun i b ->
      if b = [] then err (Empty_branch i);
      let stateful_seen = ref false in
      List.iter
        (function
          | Filter preds ->
              List.iter
                (function
                  | Result_cmp _ when not !stateful_seen -> err (Reduce_after_nothing i)
                  | _ -> ())
                preds
          | Map ks -> if ks = [] then err (Empty_keys i)
          | Distinct ks ->
              if ks = [] then err (Empty_keys i);
              stateful_seen := true
          | Reduce { keys; _ } ->
              if keys = [] then err (Empty_keys i);
              stateful_seen := true)
        b)
    t.branches;
  (match (t.combine, t.branches) with
  | None, _ :: _ :: _ -> err Missing_combine
  | Some _, ([] | [ _ ]) -> err Combine_without_branches
  | _ -> ());
  List.rev !errs

let is_valid t = validate t = []

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)

let cmp_to_string = function
  | Eq -> "==" | Neq -> "!=" | Gt -> ">" | Ge -> ">=" | Lt -> "<" | Le -> "<="

let key_to_string k =
  if k.mask = Field.full_mask k.field then Field.to_string k.field
  else Printf.sprintf "%s&0x%x" (Field.to_string k.field) k.mask

let pred_to_string = function
  | Cmp { field; mask; op; value } ->
      if mask = Field.full_mask field then
        Printf.sprintf "pkt.%s %s %d" (Field.to_string field) (cmp_to_string op) value
      else
        Printf.sprintf "(pkt.%s & 0x%x) %s %d" (Field.to_string field) mask
          (cmp_to_string op) value
  | Result_cmp { op; value } ->
      Printf.sprintf "count %s %d" (cmp_to_string op) value

let keys_to_string ks = String.concat ", " (List.map key_to_string ks)

let primitive_to_string = function
  | Filter preds ->
      Printf.sprintf "filter(%s)" (String.concat " && " (List.map pred_to_string preds))
  | Map ks -> Printf.sprintf "map(%s)" (keys_to_string ks)
  | Distinct ks -> Printf.sprintf "distinct(%s)" (keys_to_string ks)
  | Reduce { keys; agg } ->
      let f =
        match agg with
        | Count -> "count"
        | Sum_field f -> "sum " ^ Field.to_string f
        | Max_field f -> "max " ^ Field.to_string f
      in
      Printf.sprintf "reduce(keys=(%s), f=%s)" (keys_to_string keys) f

let combine_op_to_string = function Sub -> "sub" | Min -> "min" | Pair -> "pair"

let to_string t =
  let branches =
    List.mapi
      (fun i b ->
        Printf.sprintf "  branch %d: %s" i
          (String.concat " . " (List.map primitive_to_string b)))
      t.branches
    |> String.concat "\n"
  in
  let combine =
    match t.combine with
    | None -> ""
    | Some { op; threshold } ->
        Printf.sprintf "\n  combine: %s, %s" (combine_op_to_string op)
          (pred_to_string threshold)
  in
  Printf.sprintf "%s (Q%d): %s\n%s%s" t.name t.id t.description branches combine

(* ------------------------------------------------------------------ *)
(* Structure queries used by the compiler                              *)

let num_primitives t =
  List.fold_left (fun acc b -> acc + List.length b) 0 t.branches

(** Keys a primitive operates on, if any. *)
let primitive_keys = function
  | Filter _ -> None
  | Map ks | Distinct ks -> Some ks
  | Reduce { keys; _ } -> Some keys

let keys_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> Field.equal x.field y.field && x.mask = y.mask) a b

(** The packet-space atoms of a branch: every [Cmp] predicate of every
    [Filter], paired with its primitive index (chain order preserved).
    [Result_cmp] thresholds constrain aggregates, not packets, and are
    excluded.  This is the access path the exact space solver compiles
    a branch through. *)
let cmp_atoms branch =
  List.concat
    (List.mapi
       (fun p prim ->
         match prim with
         | Filter preds ->
             List.filter_map
               (function
                 | Cmp _ as atom -> Some (p, atom) | Result_cmp _ -> None)
               preds
         | Map _ | Distinct _ | Reduce _ -> [])
       branch)
