(** DSL printing — the inverse of {!Parser}: for any valid query,
    [Parser.parse (to_dsl q)] reconstructs the same branches and
    combine (ids, names and windows are metadata the text does not
    carry). *)

val key_to_dsl : Ast.key -> string
val pred_to_dsl : Ast.pred -> string
val agg_to_dsl : Ast.agg -> string
val primitive_to_dsl : Ast.primitive -> string

(** @raise Ast.Invalid for a combine with a field threshold. *)
val combine_to_dsl : Ast.combine -> string

(** @raise Ast.Invalid for a combine with a field threshold. *)
val to_dsl : Ast.t -> string
