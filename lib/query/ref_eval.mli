(** Exact reference evaluator: executes a query with unbounded exact
    state — the ground truth for accuracy experiments and the software
    analyzer for query parts deferred to CPU.

    Single-branch queries report a key the first time its aggregate
    satisfies the trailing threshold in a window; multi-branch queries
    evaluate the combine at window end. *)

open Newton_packet

type t

(** @raise Ast.Invalid for a query failing {!Ast.validate}. *)
val create : Ast.t -> t

(** Feed one packet; timestamps must be non-decreasing. *)
val feed : t -> Packet.t -> unit

(** Flush the trailing window's combine step (idempotent). *)
val finish : t -> unit

(** Reports so far, in emission order. *)
val reports : t -> Report.t list

(** Evaluate a query over a whole packet array (create/feed/finish). *)
val evaluate : Ast.t -> Packet.t array -> Report.t list
