(** The nine evaluation queries of the paper's Table 2, plus extension
    queries exercising the byte and maximum aggregations.  All
    thresholds are per 100 ms window and overridable. *)

(** Q1 — hosts receiving more than [th] new TCP connections. *)
val q1 : ?th:int -> unit -> Ast.t

(** Q2 — hosts under SSH brute-force attacks. *)
val q2 : ?th:int -> unit -> Ast.t

(** Q3 — super spreaders (sources contacting many destinations). *)
val q3 : ?th:int -> unit -> Ast.t

(** Q4 — port scanners (sources probing many destination ports). *)
val q4 : ?th:int -> unit -> Ast.t

(** Q5 — hosts under UDP DDoS (many distinct UDP sources). *)
val q5 : ?th:int -> unit -> Ast.t

(** Q6 — SYN-flood victims (#SYN − #FIN, two branches, Sub combine). *)
val q6 : ?th:int -> unit -> Ast.t

(** Q7 — hosts completing many TCP connections (Min combine). *)
val q7 : ?th:int -> unit -> Ast.t

(** Q8 — Slowloris victims (connections vs. bytes, Pair combine; the
    ratio test runs on the analyzer). *)
val q8 : ?th:int -> unit -> Ast.t

(** Q9 — hosts with DNS responses never followed by TCP connections
    (Sub combine). *)
val q9 : ?th:int -> unit -> Ast.t

(** The paper's nine queries, in order. *)
val all : unit -> Ast.t list

(** Bounds of the id range {!by_id} accepts. *)
val min_id : int
val max_id : int

(** The typed rejection for an id outside the catalog; carries the
    valid range so front-ends can print it.  A printer is registered. *)
exception Unknown_id of { id : int; min : int; max : int }

(** Total lookup: [None] outside {!min_id}–{!max_id}. *)
val find : int -> Ast.t option

(** @raise Unknown_id outside {!min_id}–{!max_id}. *)
val by_id : int -> Ast.t

(** Q10 — byte heavy hitters (sum aggregation). *)
val q10 : ?th:int -> unit -> Ast.t

(** Q11 — jumbo senders (max aggregation). *)
val q11 : ?th:int -> unit -> Ast.t

(** Q12 — DNS amplification victims (byte Pair combine). *)
val q12 : ?th:int -> unit -> Ast.t

(** Q13 — ICMP flood victims. *)
val q13 : ?th:int -> unit -> Ast.t

(** Q14 — SYN-ACK reflection victims (Sub combine). *)
val q14 : ?th:int -> unit -> Ast.t

(** Q15 — UDP amplification victims: heavy byte volume from one
    amplifier service port ([port] defaults to 123/NTP; use
    [~port:1900] for SSDP). *)
val q15 : ?port:int -> ?th:int -> unit -> Ast.t

(** Q16 — ICMPv6 scanners: sources echo-requesting many distinct
    hosts. *)
val q16 : ?th:int -> unit -> Ast.t

(** Q17 — tunneled exfiltration: inner sources sending heavy byte
    volume through VXLAN/GRE tunnels ([tun.id != 0]). *)
val q17 : ?th:int -> unit -> Ast.t

(** The extension queries (not part of the paper's evaluation set). *)
val extras : unit -> Ast.t list
