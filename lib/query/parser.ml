(** Textual query DSL — a Sonata-flavoured front-end for operators.

    Grammar (see also the CLI's [--query] option):
    {v
      query    := chain ('||' chain)* ('=>' combine)?
      chain    := prim ('|' prim)*
      prim     := filter(pred (',' | '&&') pred ...)
                | map(key, ...)
                | distinct(key, ...)
                | reduce(key, ..., agg)
      agg      := count | sum field | max field
      key      := field ('&' INT)?
      pred     := count CMP INT
                | field ('&' INT)? CMP value
      value    := INT | IPv4 | tcp | udp | icmp | syn | synack | ack | fin
      combine  := (sub | min | pair) '(' count CMP INT ')'
      field    := sip dip proto sport dport tcp.flags tcp.seq tcp.ack
                  len payload_len ttl dns.qr dns.ancount ig_port
      CMP      := == != > >= < <=
    v}

    Examples:
    {v
      filter(proto == udp, dport == 53) | map(dip) | reduce(dip, count) | filter(count > 100) | map(dip)

      filter(tcp.flags == syn) | map(dip) | reduce(dip, count)
        || filter(tcp.flags & 0x1 == fin) | map(dip) | reduce(dip, count)
        => sub(count > 25)
    v} *)

open Newton_packet
open Lexer

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok =
  let got = peek st in
  if got = tok then advance st
  else fail "expected %s, got %s" (token_to_string tok) (token_to_string got)

(* Field names, allowing dotted forms (tcp.flags, dns.qr). *)
let parse_field st =
  match peek st with
  | IDENT a -> (
      advance st;
      match peek st with
      | DOT -> (
          advance st;
          match peek st with
          | IDENT b -> (
              advance st;
              let name = a ^ "." ^ b in
              match Field.of_string name with
              | f -> f
              | exception Invalid_argument _ -> fail "unknown field %s" name)
          | t -> fail "expected field component after '.', got %s" (token_to_string t))
      | _ -> (
          match Field.of_string a with
          | f -> f
          | exception Invalid_argument _ -> fail "unknown field %s" a))
  | t -> fail "expected a field name, got %s" (token_to_string t)

let value_aliases =
  [ ("tcp", Field.Protocol.tcp); ("udp", Field.Protocol.udp);
    ("icmp", Field.Protocol.icmp); ("icmpv6", Field.Protocol.icmpv6);
    ("gre", Field.Protocol.gre); ("syn", Field.Tcp_flag.syn);
    ("synack", Field.Tcp_flag.syn_ack); ("ack", Field.Tcp_flag.ack);
    ("fin", Field.Tcp_flag.fin); ("rst", Field.Tcp_flag.rst);
    ("psh", Field.Tcp_flag.psh) ]

let parse_value st =
  match peek st with
  | INT v -> advance st; v
  | IP v -> advance st; v
  | IDENT a -> (
      match List.assoc_opt a value_aliases with
      | Some v -> advance st; v
      | None -> fail "unknown value %s (use a number, an IPv4, or %s)" a
                  (String.concat "/" (List.map fst value_aliases)))
  | t -> fail "expected a value, got %s" (token_to_string t)

let parse_cmp st =
  match peek st with
  | EQ -> advance st; Ast.Eq
  | NEQ -> advance st; Ast.Neq
  | GT -> advance st; Ast.Gt
  | GE -> advance st; Ast.Ge
  | LT -> advance st; Ast.Lt
  | LE -> advance st; Ast.Le
  | t -> fail "expected a comparison operator, got %s" (token_to_string t)

(* key := field ('&' INT)? *)
let parse_key st =
  let f = parse_field st in
  match peek st with
  | AMP -> (
      advance st;
      match peek st with
      | INT m -> advance st; Ast.key ~mask:m f
      | t -> fail "expected a mask after '&', got %s" (token_to_string t))
  | _ -> Ast.key f

(* pred := count CMP INT | field ('&' INT)? CMP value *)
let parse_pred st =
  match peek st with
  | IDENT "count" ->
      advance st;
      let op = parse_cmp st in
      let value = parse_value st in
      Ast.Result_cmp { op; value }
  | _ ->
      let k = parse_key st in
      let op = parse_cmp st in
      let value = parse_value st in
      Ast.Cmp { field = k.Ast.field; mask = k.Ast.mask; op; value = value land k.Ast.mask }

let rec parse_list st parse_item sep_ok =
  let item = parse_item st in
  match peek st with
  | COMMA | AMP when sep_ok (peek st) ->
      advance st;
      item :: parse_list st parse_item sep_ok
  | _ -> [ item ]

(* agg := count | sum field | max field *)
let try_parse_agg st =
  match peek st with
  | IDENT "count" ->
      advance st;
      Some Ast.Count
  | IDENT "sum" ->
      advance st;
      Some (Ast.Sum_field (parse_field st))
  | IDENT "max" ->
      advance st;
      Some (Ast.Max_field (parse_field st))
  | _ -> None

let parse_prim st =
  match peek st with
  | IDENT "filter" ->
      advance st;
      expect st LPAREN;
      let preds = parse_list st parse_pred (fun t -> t = COMMA || t = AMP) in
      expect st RPAREN;
      Ast.Filter preds
  | IDENT "map" ->
      advance st;
      expect st LPAREN;
      let ks = parse_list st parse_key (fun t -> t = COMMA) in
      expect st RPAREN;
      Ast.Map ks
  | IDENT "distinct" ->
      advance st;
      expect st LPAREN;
      let ks = parse_list st parse_key (fun t -> t = COMMA) in
      expect st RPAREN;
      Ast.Distinct ks
  | IDENT "reduce" ->
      advance st;
      expect st LPAREN;
      (* keys then a trailing aggregation function *)
      let rec go acc =
        match try_parse_agg st with
        | Some agg ->
            expect st RPAREN;
            (List.rev acc, agg)
        | None -> (
            let k = parse_key st in
            match peek st with
            | COMMA ->
                advance st;
                go (k :: acc)
            | RPAREN -> fail "reduce needs an aggregation (count / sum f / max f)"
            | t -> fail "expected ',' or aggregation in reduce, got %s" (token_to_string t))
      in
      let keys, agg = go [] in
      if keys = [] then fail "reduce needs at least one key";
      Ast.Reduce { keys; agg }
  | t -> fail "expected filter/map/distinct/reduce, got %s" (token_to_string t)

let parse_chain st =
  let rec go acc =
    let p = parse_prim st in
    match peek st with
    | PIPE ->
        advance st;
        go (p :: acc)
    | _ -> List.rev (p :: acc)
  in
  go []

let parse_combine st =
  let op =
    match peek st with
    | IDENT "sub" -> advance st; Ast.Sub
    | IDENT "min" -> advance st; Ast.Min
    | IDENT "pair" -> advance st; Ast.Pair
    | t -> fail "expected sub/min/pair after '=>', got %s" (token_to_string t)
  in
  expect st LPAREN;
  let threshold =
    match parse_pred st with
    | Ast.Result_cmp _ as p -> p
    | Ast.Cmp _ -> fail "combine threshold must test 'count'"
  in
  expect st RPAREN;
  { Ast.op; threshold }

(** Parse a query from its textual form.  [id]/[name]/[description]
    default to generic values; [window] to the paper's 100 ms.
    Raises {!Parse_error} or {!Lexer.Lex_error} on bad input, and
    [Parse_error] if the resulting query fails {!Ast.validate}. *)
let parse ?(id = 0) ?(name = "adhoc") ?(description = "ad-hoc query")
    ?(window = Ast.default_window) src =
  let st = { toks = Lexer.tokenize src } in
  let rec branches acc =
    let b = parse_chain st in
    match peek st with
    | PARALLEL ->
        advance st;
        branches (b :: acc)
    | _ -> List.rev (b :: acc)
  in
  let bs = branches [] in
  let combine =
    match peek st with
    | ARROW ->
        advance st;
        Some (parse_combine st)
    | _ -> None
  in
  expect st EOF;
  let q = Ast.make ~window ?combine ~id ~name ~description bs in
  match Ast.validate q with
  | [] -> q
  | errs ->
      fail "invalid query: %s" (String.concat "; " (List.map Ast.error_to_string errs))

(** [parse_exn] alias kept for symmetry with conventions. *)
let parse_exn = parse

(** Result-typed wrapper. *)
let parse_result ?id ?name ?description ?window src =
  match parse ?id ?name ?description ?window src with
  | q -> Ok q
  | exception Parse_error m -> Error m
  | exception Lexer.Lex_error { pos; msg } ->
      Error (Printf.sprintf "lex error at %d: %s" pos msg)
