(** The traffic-monitoring query AST: chains of stream-processing
    primitives over the packet stream, evaluated per time window, with
    optional parallel branches merged by a combine step (§2.1, Fig. 6). *)

open Newton_packet

(** A (possibly bit-masked) header field used as an operation key. *)
type key = { field : Field.t; mask : int }

(** [key ?mask f]; the mask defaults to the field's full width. *)
val key : ?mask:int -> Field.t -> key

(** Full-mask keys for a field list. *)
val keys : Field.t list -> key list

type cmp_op = Eq | Neq | Gt | Ge | Lt | Le

val cmp_holds : cmp_op -> int -> int -> bool

(** Filter predicates: [Cmp] tests a (masked) header field;
    [Result_cmp] tests the running aggregate of an upstream stateful
    primitive (threshold filters). *)
type pred =
  | Cmp of { field : Field.t; mask : int; op : cmp_op; value : int }
  | Result_cmp of { op : cmp_op; value : int }

(** Masked-equality predicate on a field. *)
val field_is : ?mask:int -> Field.t -> int -> pred

(** [count > th]. *)
val result_gt : int -> pred

type agg =
  | Count                  (** one per packet *)
  | Sum_field of Field.t   (** sum a header field *)
  | Max_field of Field.t   (** running maximum of a header field *)

type primitive =
  | Filter of pred list    (** conjunction *)
  | Map of key list        (** project onto keys *)
  | Distinct of key list   (** first packet per key per window *)
  | Reduce of { keys : key list; agg : agg }

type branch = primitive list

(** How a multi-branch query merges per-key aggregates. *)
type combine_op =
  | Sub  (** left − right, clamped at 0 *)
  | Min
  | Pair (** export both; the analyzer applies the final intent *)

type combine = { op : combine_op; threshold : pred }

type t = {
  id : int;
  name : string;
  description : string;
  branches : branch list;
  combine : combine option; (** required iff ≥ 2 branches *)
  window : float;           (** state-reset period, seconds *)
}

(** The paper's default: 100 ms windows. *)
val default_window : float

val make :
  ?window:float -> ?combine:combine -> id:int -> name:string ->
  description:string -> branch list -> t

(** Single-branch query. *)
val chain :
  ?window:float -> id:int -> name:string -> description:string ->
  primitive list -> t

type error =
  | Empty_query
  | Empty_branch of int
  | Missing_combine
  | Combine_without_branches
  | Reduce_after_nothing of int
  | Empty_keys of int
  | Combine_branch_without_reduce of int
  | Combine_field_threshold
  | Combine_arity of int
  | Internal of string  (** an invariant the front-end should have upheld *)

val error_to_string : error -> string

(** Semicolon-joined rendering of an error list. *)
val errors_to_string : error list -> string

(** The typed rejection every user-reachable front-end path raises for
    a structurally invalid query (instead of [Invalid_argument]); the
    analyzer converts it into diagnostics.  A printer is registered, so
    an escaped exception renders as the error list. *)
exception Invalid of { query_id : int; query_name : string; errors : error list }

(** [invalid ?id ?name errors] builds {!Invalid} (defaults: id 0,
    name ["?"]). *)
val invalid : ?id:int -> ?name:string -> error list -> exn

(** All structural problems found (empty = valid). *)
val validate : t -> error list

val is_valid : t -> bool

val cmp_to_string : cmp_op -> string
val key_to_string : key -> string
val pred_to_string : pred -> string
val keys_to_string : key list -> string
val primitive_to_string : primitive -> string
val combine_op_to_string : combine_op -> string
val to_string : t -> string

(** Total primitives across branches. *)
val num_primitives : t -> int

(** Keys a primitive operates on, if any. *)
val primitive_keys : primitive -> key list option

(** Field-and-mask equality of key lists (order-sensitive). *)
val keys_equal : key list -> key list -> bool

(** The packet-space atoms of a branch: every [Cmp] predicate of every
    [Filter], paired with its primitive index, in chain order
    ([Result_cmp] aggregate thresholds excluded).  The conjunction of
    these atoms is the exact per-packet condition for the branch to
    pass all its filters — the input the packet-space solver compiles. *)
val cmp_atoms : branch -> (int * pred) list
