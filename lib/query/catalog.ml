(** The nine evaluation queries (Table 2 of the paper).

    These follow the Sonata open-source query repository the paper cites
    [25]; thresholds are tuned to the synthetic traces' 100 ms windows so
    injected attacks are clear positives while background traffic stays
    below threshold. *)

open Newton_packet
open Ast

let tcp = Field.Protocol.tcp
let udp = Field.Protocol.udp

(** Q1 — Monitor new TCP connections: hosts receiving many SYNs. *)
let q1 ?(th = 30) () =
  chain ~id:1 ~name:"new_tcp_connections"
    ~description:"hosts receiving more than Th new TCP connections per window"
    [
      Filter [ field_is Field.Proto tcp; field_is Field.Tcp_flags Field.Tcp_flag.syn ];
      Map (keys [ Field.Dst_ip ]);
      Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      Filter [ result_gt th ];
      Map (keys [ Field.Dst_ip ]);
    ]

(** Q2 — Monitor hosts under SSH brute-force attacks: many distinct
    (source, packet-length) pairs to port 22 on one host. *)
let q2 ?(th = 25) () =
  chain ~id:2 ~name:"ssh_brute"
    ~description:"hosts receiving SSH connections from many distinct sources"
    [
      Filter [ field_is Field.Proto tcp; field_is Field.Dst_port 22 ];
      Map (keys [ Field.Dst_ip; Field.Src_ip; Field.Pkt_len ]);
      Distinct (keys [ Field.Dst_ip; Field.Src_ip; Field.Pkt_len ]);
      Map (keys [ Field.Dst_ip ]);
      Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      Filter [ result_gt th ];
      Map (keys [ Field.Dst_ip ]);
    ]

(** Q3 — Monitor super spreaders: sources contacting many distinct
    destinations. *)
let q3 ?(th = 60) () =
  chain ~id:3 ~name:"super_spreader"
    ~description:"sources contacting more than Th distinct destinations"
    [
      Map (keys [ Field.Src_ip; Field.Dst_ip ]);
      Distinct (keys [ Field.Src_ip; Field.Dst_ip ]);
      Map (keys [ Field.Src_ip ]);
      Reduce { keys = keys [ Field.Src_ip ]; agg = Count };
      Filter [ result_gt th ];
      Map (keys [ Field.Src_ip ]);
    ]

(** Q4 — Monitor hosts under port scanning: one source probing many
    distinct destination ports. *)
let q4 ?(th = 40) () =
  chain ~id:4 ~name:"port_scan"
    ~description:"sources probing more than Th distinct destination ports"
    [
      Filter [ field_is Field.Proto tcp ];
      Map (keys [ Field.Src_ip; Field.Dst_port ]);
      Distinct (keys [ Field.Src_ip; Field.Dst_port ]);
      Map (keys [ Field.Src_ip ]);
      Reduce { keys = keys [ Field.Src_ip ]; agg = Count };
      Filter [ result_gt th ];
      Map (keys [ Field.Src_ip ]);
    ]

(** Q5 — Monitor hosts under UDP DDoS: destinations receiving UDP from
    many distinct sources. *)
let q5 ?(th = 35) () =
  chain ~id:5 ~name:"udp_ddos"
    ~description:"hosts receiving UDP traffic from more than Th distinct sources"
    [
      Filter [ field_is Field.Proto udp ];
      Map (keys [ Field.Dst_ip; Field.Src_ip ]);
      Distinct (keys [ Field.Dst_ip; Field.Src_ip ]);
      Map (keys [ Field.Dst_ip ]);
      Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      Filter [ result_gt th ];
      Map (keys [ Field.Dst_ip ]);
    ]

(** Q6 — Monitor hosts under SYN-flood attacks (Fig. 6): per-host
    #SYN minus #FIN exceeding Th — floods open connections they never
    close. Two parallel sub-queries merged on the data plane. *)
let q6 ?(th = 25) () =
  make ~id:6 ~name:"syn_flood"
    ~description:"hosts whose #SYN - #FIN exceeds Th (SYN-flood victims)"
    ~combine:{ op = Sub; threshold = result_gt th }
    [
      [
        Filter [ field_is Field.Proto tcp; field_is Field.Tcp_flags Field.Tcp_flag.syn ];
        Map (keys [ Field.Dst_ip ]);
        Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      ];
      [
        Filter
          [
            field_is Field.Proto tcp;
            Cmp
              {
                field = Field.Tcp_flags;
                mask = Field.Tcp_flag.fin;
                op = Eq;
                value = Field.Tcp_flag.fin;
              };
          ];
        Map (keys [ Field.Dst_ip ]);
        Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      ];
    ]

(** Q7 — Monitor completed TCP connections: hosts where many connections
    both open (SYN) and close (FIN); completed ~= min(#opened, #closed). *)
let q7 ?(th = 20) () =
  make ~id:7 ~name:"completed_tcp"
    ~description:"hosts completing more than Th TCP connections per window"
    ~combine:{ op = Min; threshold = result_gt th }
    [
      [
        Filter [ field_is Field.Proto tcp; field_is Field.Tcp_flags Field.Tcp_flag.syn ];
        Map (keys [ Field.Dst_ip; Field.Src_ip; Field.Src_port ]);
        Distinct (keys [ Field.Dst_ip; Field.Src_ip; Field.Src_port ]);
        Map (keys [ Field.Dst_ip ]);
        Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      ];
      [
        Filter
          [
            field_is Field.Proto tcp;
            Cmp
              {
                field = Field.Tcp_flags;
                mask = Field.Tcp_flag.fin;
                op = Eq;
                value = Field.Tcp_flag.fin;
              };
          ];
        Map (keys [ Field.Dst_ip; Field.Src_ip; Field.Src_port ]);
        Distinct (keys [ Field.Dst_ip; Field.Src_ip; Field.Src_port ]);
        Map (keys [ Field.Dst_ip ]);
        Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      ];
    ]

(** Q8 — Monitor hosts under Slowloris attacks: many connections but few
    payload bytes.  The ratio test runs on the analyzer (the paper notes
    some primitives stay on CPU); the data plane exports both per-host
    aggregates. *)
let q8 ?(th = 60) () =
  make ~id:8 ~name:"slowloris"
    ~description:"hosts with many connections carrying few bytes (Slowloris)"
    ~combine:{ op = Pair; threshold = result_gt th }
    [
      [
        Filter [ field_is Field.Proto tcp; field_is Field.Tcp_flags Field.Tcp_flag.syn ];
        Map (keys [ Field.Dst_ip; Field.Src_ip; Field.Src_port ]);
        Distinct (keys [ Field.Dst_ip; Field.Src_ip; Field.Src_port ]);
        Map (keys [ Field.Dst_ip ]);
        Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      ];
      [
        Filter [ field_is Field.Proto tcp ];
        Map (keys [ Field.Dst_ip ]);
        Reduce { keys = keys [ Field.Dst_ip ]; agg = Sum_field Field.Payload_len };
      ];
    ]

(** Q9 — Monitor hosts that receive DNS answers but never open a TCP
    connection afterwards (DNS-tunnelling / reflection indicator). *)
let q9 ?(th = 1) () =
  make ~id:9 ~name:"dns_no_tcp"
    ~description:"hosts with DNS responses not followed by TCP connections"
    ~combine:{ op = Sub; threshold = result_gt th }
    [
      [
        Filter
          [
            field_is Field.Proto udp;
            field_is Field.Src_port 53;
            field_is Field.Dns_qr 1;
          ];
        Map (keys [ Field.Dst_ip ]);
        Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      ];
      [
        Filter [ field_is Field.Proto tcp; field_is Field.Tcp_flags Field.Tcp_flag.syn ];
        Map (keys [ Field.Src_ip ]);
        Reduce { keys = keys [ Field.Src_ip ]; agg = Count };
      ];
    ]

(** All nine queries with default thresholds, in paper order. *)
let all () =
  [ q1 (); q2 (); q3 (); q4 (); q5 (); q6 (); q7 (); q8 (); q9 () ]

(* ------------------------------------------------------------------ *)
(* Extension queries — beyond the paper's Table 2, exercising the byte
   and maximum aggregations. *)

(** Q10 — heavy hitters by volume: hosts receiving more than [th] bytes
    per window (the traffic-engineering intent of §1). *)
let q10 ?(th = 500_000) () =
  chain ~id:10 ~name:"heavy_hitter_bytes"
    ~description:"hosts receiving more than Th bytes per window"
    [
      Map (keys [ Field.Dst_ip ]);
      Reduce { keys = keys [ Field.Dst_ip ]; agg = Sum_field Field.Pkt_len };
      Filter [ result_gt th ];
      Map (keys [ Field.Dst_ip ]);
    ]

(** Q11 — jumbo senders: sources whose largest packet exceeds [th]
    bytes (MTU-probing / tunnelling indicator; uses the Max ALU). *)
let q11 ?(th = 1400) () =
  chain ~id:11 ~name:"jumbo_senders"
    ~description:"sources sending packets larger than Th bytes"
    [
      Map (keys [ Field.Src_ip ]);
      Reduce { keys = keys [ Field.Src_ip ]; agg = Max_field Field.Pkt_len };
      Filter [ result_gt th ];
      Map (keys [ Field.Src_ip ]);
    ]

(** Q12 — DNS amplification: hosts receiving far more DNS-response
    bytes than they send in queries.  Both byte counts export as a
    [Pair]; the analyzer applies the amplification-ratio intent. *)
let q12 ?(th = 1000) () =
  make ~id:12 ~name:"dns_amplification"
    ~description:"hosts receiving amplified DNS response volume"
    ~combine:{ op = Pair; threshold = result_gt th }
    [
      [
        Filter [ field_is Field.Proto udp; field_is Field.Src_port 53 ];
        Map (keys [ Field.Dst_ip ]);
        Reduce { keys = keys [ Field.Dst_ip ]; agg = Sum_field Field.Pkt_len };
      ];
      [
        Filter [ field_is Field.Proto udp; field_is Field.Dst_port 53 ];
        Map (keys [ Field.Src_ip ]);
        Reduce { keys = keys [ Field.Src_ip ]; agg = Sum_field Field.Pkt_len };
      ];
    ]

(** Q13 — ICMP floods: hosts receiving ICMP above rate [th]. *)
let q13 ?(th = 50) () =
  chain ~id:13 ~name:"icmp_flood"
    ~description:"hosts receiving more than Th ICMP packets per window"
    [
      Filter [ field_is Field.Proto Field.Protocol.icmp ];
      Map (keys [ Field.Dst_ip ]);
      Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      Filter [ result_gt th ];
      Map (keys [ Field.Dst_ip ]);
    ]

(** Q14 — SYN-ACK reflection victims: hosts receiving far more SYN-ACKs
    than the SYNs they sent out (spoofed-source reflection). *)
let q14 ?(th = 30) () =
  make ~id:14 ~name:"synack_reflection"
    ~description:"hosts receiving unsolicited SYN-ACKs (reflection victims)"
    ~combine:{ op = Sub; threshold = result_gt th }
    [
      [
        Filter
          [ field_is Field.Proto tcp; field_is Field.Tcp_flags Field.Tcp_flag.syn_ack ];
        Map (keys [ Field.Dst_ip ]);
        Reduce { keys = keys [ Field.Dst_ip ]; agg = Count };
      ];
      [
        Filter
          [ field_is Field.Proto tcp; field_is Field.Tcp_flags Field.Tcp_flag.syn ];
        Map (keys [ Field.Src_ip ]);
        Reduce { keys = keys [ Field.Src_ip ]; agg = Count };
      ];
    ]

(** Q15 — UDP reflection/amplification floods: victims receiving heavy
    byte volume from a single amplifier service port ([port] defaults
    to NTP; pass [~port:1900] for SSDP). *)
let q15 ?(port = 123) ?(th = 20_000) () =
  chain ~id:15 ~name:"udp_amplification"
    ~description:"hosts receiving amplified UDP volume from one service port"
    [
      Filter [ field_is Field.Proto udp; field_is Field.Src_port port ];
      Map (keys [ Field.Dst_ip ]);
      Reduce { keys = keys [ Field.Dst_ip ]; agg = Sum_field Field.Pkt_len };
      Filter [ result_gt th ];
      Map (keys [ Field.Dst_ip ]);
    ]

(** Q16 — ICMPv6 sweeps: sources echo-requesting many distinct IPv6
    hosts per window (the v6 analogue of Q3's spreader shape). *)
let q16 ?(th = 50) () =
  chain ~id:16 ~name:"icmp6_scan"
    ~description:"sources probing many distinct hosts with ICMPv6 echo requests"
    [
      Filter
        [
          field_is Field.Proto Field.Protocol.icmpv6;
          field_is Field.Icmp_type 128;
        ];
      Map (keys [ Field.Src_ip; Field.Dst_ip ]);
      Distinct (keys [ Field.Src_ip; Field.Dst_ip ]);
      Map (keys [ Field.Src_ip ]);
      Reduce { keys = keys [ Field.Src_ip ]; agg = Count };
      Filter [ result_gt th ];
      Map (keys [ Field.Src_ip ]);
    ]

(** Q17 — tunneled exfiltration: inner sources pushing heavy byte
    volume through any VXLAN/GRE tunnel.  Decap attributes the flow to
    the inner 5-tuple, so the reported host is the actual culprit, not
    the tunnel endpoint. *)
let q17 ?(th = 20_000) () =
  chain ~id:17 ~name:"tunnel_exfiltration"
    ~description:"tunneled sources sending more than Th bytes per window"
    [
      Filter
        [
          Cmp
            {
              field = Field.Tun_id;
              mask = Field.full_mask Field.Tun_id;
              op = Neq;
              value = 0;
            };
        ];
      Map (keys [ Field.Src_ip ]);
      Reduce { keys = keys [ Field.Src_ip ]; agg = Sum_field Field.Pkt_len };
      Filter [ result_gt th ];
      Map (keys [ Field.Src_ip ]);
    ]

(** The extension queries (not part of the paper's evaluation set). *)
let extras () = [ q10 (); q11 (); q12 (); q13 (); q14 (); q15 (); q16 (); q17 () ]

(* ------------------------------------------------------------------ *)
(* Id-based lookup over the whole catalog (paper queries + extras). *)

(** First and last catalog id {!by_id} accepts. *)
let min_id = 1
let max_id = 17

exception Unknown_id of { id : int; min : int; max : int }

let () =
  Printexc.register_printer (function
    | Unknown_id { id; min; max } ->
        Some
          (Printf.sprintf "Catalog.by_id: no query Q%d (valid ids: %d-%d)" id
             min max)
    | _ -> None)

let find id =
  match id with
  | 1 -> Some (q1 ()) | 2 -> Some (q2 ()) | 3 -> Some (q3 ()) | 4 -> Some (q4 ())
  | 5 -> Some (q5 ()) | 6 -> Some (q6 ()) | 7 -> Some (q7 ()) | 8 -> Some (q8 ())
  | 9 -> Some (q9 ()) | 10 -> Some (q10 ()) | 11 -> Some (q11 ())
  | 12 -> Some (q12 ()) | 13 -> Some (q13 ()) | 14 -> Some (q14 ())
  | 15 -> Some (q15 ()) | 16 -> Some (q16 ()) | 17 -> Some (q17 ())
  | _ -> None

let by_id id =
  match find id with
  | Some q -> q
  | None -> raise (Unknown_id { id; min = min_id; max = max_id })
