(** Exact reference evaluator for queries.

    Executes a query over a packet stream with unbounded exact state
    (hashtables instead of sketches).  Its output is the {e ground truth}
    the data-plane runtime is measured against in the accuracy experiments
    (Fig. 14), and it doubles as the software analyzer for query parts
    deferred to CPU.

    Semantics per window (length [query.window]):
    - [Filter]: drop packets failing any predicate; [Result_cmp] reads the
      running aggregate of the nearest upstream stateful primitive.
    - [Map]: project the tuple onto the given (masked) keys.
    - [Distinct]: pass only the first packet per key per window.
    - [Reduce]: update the per-key aggregate; downstream sees the new value.
    - Single-branch queries report a key the first time its aggregate
      satisfies the trailing threshold filter in a window (crossing
      semantics — counts only grow within a window).
    - Multi-branch queries evaluate the combine at window end over the
      union of keys. *)

open Newton_packet
open Newton_sketch

let project pkt keys =
  Array.of_list
    (List.map (fun (k : Ast.key) -> Packet.get pkt k.field land k.mask) keys)

(* Mutable per-branch state, rebuilt each window. *)
type branch_state = {
  mutable distincts : Exact.Distinct.t list; (* one per Distinct, in order *)
  mutable counters : Exact.Counter.t list;   (* one per Reduce, in order *)
  reported : (int array, unit) Hashtbl.t;    (* keys already reported this window *)
}

let fresh_branch_state branch =
  let distincts =
    List.filter_map (function Ast.Distinct _ -> Some (Exact.Distinct.create ()) | _ -> None) branch
  in
  let counters =
    List.filter_map (function Ast.Reduce _ -> Some (Exact.Counter.create ()) | _ -> None) branch
  in
  { distincts; counters; reported = Hashtbl.create 64 }

type t = {
  query : Ast.t;
  mutable states : branch_state list;
  mutable window : int;
  mutable reports : Report.t list; (* reverse order *)
}

let create query =
  (match Ast.validate query with
  | [] -> ()
  | errors ->
      raise (Ast.invalid ~id:query.Ast.id ~name:query.Ast.name errors));
  {
    query;
    states = List.map fresh_branch_state query.Ast.branches;
    window = 0;
    reports = [];
  }

let agg_value pkt = function
  | Ast.Count -> 1
  | Ast.Sum_field f | Ast.Max_field f -> Packet.get pkt f

(* Run one packet through a branch. Returns (survived, keys, result). *)
let run_branch state branch pkt =
  let distincts = ref state.distincts in
  let counters = ref state.counters in
  let next l =
    match !l with
    | [] -> raise (Ast.invalid [ Ast.Internal "Ref_eval: state list exhausted" ])
    | x :: rest ->
        l := rest;
        x
  in
  let keys = ref [||] in
  let result = ref 0 in
  let rec go = function
    | [] -> true
    | prim :: rest -> (
        match prim with
        | Ast.Filter preds ->
            let ok =
              List.for_all
                (function
                  | Ast.Cmp { field; mask; op; value } ->
                      Ast.cmp_holds op (Packet.get pkt field land mask) value
                  | Ast.Result_cmp { op; value } -> Ast.cmp_holds op !result value)
                preds
            in
            if ok then go rest else false
        | Ast.Map ks ->
            keys := project pkt ks;
            go rest
        | Ast.Distinct ks ->
            let d = next distincts in
            let k = project pkt ks in
            if Exact.Distinct.test_and_set d k then false
            else begin
              keys := k;
              go rest
            end
        | Ast.Reduce { keys = ks; agg } ->
            let c = next counters in
            let k = project pkt ks in
            (match agg with
            | Ast.Count | Ast.Sum_field _ ->
                result := Exact.Counter.add c k (agg_value pkt agg)
            | Ast.Max_field _ ->
                result := Exact.Counter.merge_max c k (agg_value pkt agg));
            keys := k;
            go rest)
  in
  let survived = go branch in
  (survived, !keys, !result)

let combine_value op a b =
  match op with
  | Ast.Sub -> max 0 (a - b)
  | Ast.Min -> min a b
  | Ast.Pair -> a

(* Window-end evaluation for multi-branch queries. *)
let flush_combine t =
  match (t.query.Ast.combine, t.states) with
  | Some { op; threshold }, [ sa; sb ] ->
      let counter_of i s =
        match List.rev s.counters with
        | last :: _ -> last
        | [] ->
            raise
              (Ast.invalid ~id:t.query.Ast.id ~name:t.query.Ast.name
                 [ Ast.Combine_branch_without_reduce i ])
      in
      let ca = counter_of 0 sa and cb = counter_of 1 sb in
      Exact.Counter.fold
        (fun k a () ->
          let b = Exact.Counter.count cb k in
          let v = combine_value op a b in
          let passes =
            match threshold with
            | Ast.Result_cmp { op = cmp; value } -> Ast.cmp_holds cmp v value
            | Ast.Cmp _ -> false
          in
          if passes then
            let value2 = match op with Ast.Pair -> Some b | _ -> None in
            t.reports <-
              Report.make ~query_id:t.query.Ast.id ~window:t.window ~keys:k ~value:v
                ~value2 ()
              :: t.reports)
        ca ()
  | Some _, states ->
      raise
        (Ast.invalid ~id:t.query.Ast.id ~name:t.query.Ast.name
           [ Ast.Combine_arity (List.length states) ])
  | None, _ -> ()

let advance_window t new_window =
  flush_combine t;
  t.states <- List.map fresh_branch_state t.query.Ast.branches;
  t.window <- new_window

(** Feed one packet (timestamps must be non-decreasing). *)
let feed t pkt =
  let w = int_of_float (Packet.ts pkt /. t.query.Ast.window) in
  if w <> t.window then advance_window t w;
  match t.query.Ast.combine with
  | None ->
      let state = List.hd t.states in
      let branch = List.hd t.query.Ast.branches in
      let survived, keys, result = run_branch state branch pkt in
      if survived && not (Hashtbl.mem state.reported keys) then begin
        Hashtbl.add state.reported keys ();
        t.reports <-
          Report.make ~query_id:t.query.Ast.id ~window:t.window ~keys ~value:result ()
          :: t.reports
      end
  | Some _ ->
      List.iter2
        (fun state branch -> ignore (run_branch state branch pkt))
        t.states t.query.Ast.branches

(** Finish the stream: evaluate the trailing window's combine step. *)
let finish t =
  flush_combine t;
  t.states <- List.map fresh_branch_state t.query.Ast.branches

let reports t = List.rev t.reports

(** Convenience: evaluate [query] over a full packet array. *)
let evaluate query packets =
  let t = create query in
  Array.iter (feed t) packets;
  finish t;
  reports t
