(** DSL printing: render a query AST in the textual query language such
    that {!Parser.parse} reconstructs the same structure — the inverse
    used to display, store and exchange intents. *)

open Newton_packet

let key_to_dsl (k : Ast.key) =
  if k.Ast.mask = Field.full_mask k.Ast.field then Field.to_string k.Ast.field
  else Printf.sprintf "%s & 0x%X" (Field.to_string k.Ast.field) k.Ast.mask

let cmp_to_dsl = Ast.cmp_to_string

let pred_to_dsl = function
  | Ast.Cmp { field; mask; op; value } ->
      if mask = Field.full_mask field then
        Printf.sprintf "%s %s %d" (Field.to_string field) (cmp_to_dsl op) value
      else
        Printf.sprintf "%s & 0x%X %s %d" (Field.to_string field) mask
          (cmp_to_dsl op) value
  | Ast.Result_cmp { op; value } ->
      Printf.sprintf "count %s %d" (cmp_to_dsl op) value

let agg_to_dsl = function
  | Ast.Count -> "count"
  | Ast.Sum_field f -> "sum " ^ Field.to_string f
  | Ast.Max_field f -> "max " ^ Field.to_string f

let primitive_to_dsl = function
  | Ast.Filter preds ->
      Printf.sprintf "filter(%s)" (String.concat ", " (List.map pred_to_dsl preds))
  | Ast.Map keys ->
      Printf.sprintf "map(%s)" (String.concat ", " (List.map key_to_dsl keys))
  | Ast.Distinct keys ->
      Printf.sprintf "distinct(%s)" (String.concat ", " (List.map key_to_dsl keys))
  | Ast.Reduce { keys; agg } ->
      Printf.sprintf "reduce(%s, %s)"
        (String.concat ", " (List.map key_to_dsl keys))
        (agg_to_dsl agg)

let branch_to_dsl prims = String.concat " | " (List.map primitive_to_dsl prims)

let combine_to_dsl (c : Ast.combine) =
  let op =
    match c.Ast.op with Ast.Sub -> "sub" | Ast.Min -> "min" | Ast.Pair -> "pair"
  in
  match c.Ast.threshold with
  | Ast.Result_cmp { op = cmp; value } ->
      Printf.sprintf "%s(count %s %d)" op (cmp_to_dsl cmp) value
  | Ast.Cmp _ -> raise (Ast.invalid [ Ast.Combine_field_threshold ])

(** Render a query in the textual DSL.  For any valid query,
    [Parser.parse (to_dsl q)] reconstructs the same branches and
    combine (ids, names and windows are metadata the text does not
    carry). *)
let to_dsl (q : Ast.t) =
  let branches = String.concat " || " (List.map branch_to_dsl q.Ast.branches) in
  match q.Ast.combine with
  | None -> branches
  | Some { Ast.threshold = Ast.Cmp _; _ } ->
      raise
        (Ast.invalid ~id:q.Ast.id ~name:q.Ast.name [ Ast.Combine_field_threshold ])
  | Some c -> branches ^ " => " ^ combine_to_dsl c
