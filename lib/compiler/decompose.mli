(** Query-primitive decomposition (§4.1): every primitive becomes a
    suite of K/H/S/R module slots; sketch primitives span several suites
    (Count-Min rows for [reduce], Bloom rows for [distinct]); combine
    queries get read-back slots that fetch the sibling branch's
    aggregate (the Fig. 6 pattern). *)

open Newton_query
open Ir

type options = {
  opt1 : bool;
  opt2 : bool;
  opt3 : bool;
  reduce_depth : int;   (** CM rows per [reduce]; Table 3 uses 2 *)
  distinct_depth : int; (** BF rows per [distinct]; Table 3 uses 3 *)
  registers : int;      (** registers per state-bank array *)
  seed_base : int;
}

val default_options : options

(** All optimizations off — the naive baseline of §6.4. *)
val baseline_options : options

type t = {
  query : Ast.t;
  options : options;
  branches : slot list array;        (** chain order per branch *)
  init_entries : init_entry array;   (** match-all until Opt.1 runs *)
}

(** Raised for primitive shapes the data plane cannot host. *)
exception Unsupported of string

(** The packing formula direct-mode H and the expected R constant share
    for multi-field equality filters. *)
val pack_values : int list -> int

(** Decompose a validated query.
    @raise Ast.Invalid for a query failing {!Ast.validate}.
    @raise Unsupported for unhostable primitive shapes. *)
val decompose : ?options:options -> Ast.t -> t

(** Total slot count before any optimization. *)
val naive_modules : t -> int
