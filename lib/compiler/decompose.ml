(** Query-primitive decomposition (§4.1).

    Turns each primitive of a query into a suite of module slots:

    - [filter] over header fields → K (select the tested fields, masked),
      H (direct mode), S (pass-through), R (ternary guard on the state
      result).  All four are {e used}: hardware R can only match the state
      result, so the value is conveyed through H and S.
    - [filter] over an aggregate ([Result_cmp]) → only R is used (guard on
      the global result).
    - [map] → only K is used (the paper's own Opt.2 example).
    - [reduce] → [reduce_depth] suites forming a multi-array Count-Min
      sketch (Figure 3): per row K/H/S(+)/R, with R folding the running
      minimum into the global result.
    - [distinct] → [distinct_depth] suites forming a Bloom filter: per row
      K/H/S(|)/R; the Or-ALU returns the previous bit, R folds the minimum
      (1 iff the key was present in every row), and the last row guards
      global == 0 so only first occurrences continue.

    Multi-branch (combine) queries additionally get {e read-back} slots:
    the reporting branch re-hashes its key with the sibling branch's seeds,
    reads the sibling's register arrays (S_read), folds the sibling's
    estimate into the second accumulator, and a final R performs the
    combine, guards the threshold and reports (the Fig. 6 pattern). *)

open Newton_query
open Newton_dataplane
open Ir

type options = {
  opt1 : bool;
  opt2 : bool;
  opt3 : bool;
  reduce_depth : int;   (** CM rows per [reduce]; Table 3 uses 2 *)
  distinct_depth : int; (** BF rows per [distinct]; Table 3 uses 3 *)
  registers : int;      (** registers per S array (§6.2 varies 256–4096) *)
  seed_base : int;
}

let default_options =
  {
    opt1 = true;
    opt2 = true;
    opt3 = true;
    reduce_depth = 2;
    distinct_depth = 3;
    registers = Module_cost.default_registers;
    seed_base = 1000;
  }

(** All optimizations off — the naive baseline of §6.4. *)
let baseline_options = { default_options with opt1 = false; opt2 = false; opt3 = false }

type t = {
  query : Ast.t;
  options : options;
  branches : slot list array; (* chain order per branch *)
  init_entries : init_entry array; (* one per branch *)
}

exception Unsupported of string

(* Pack multiple (masked) field values into a single comparable word the
   direct-mode H produces and R matches. The runtime uses the same
   formula over packet fields. *)
let pack_values vs =
  List.fold_left (fun acc v -> ((acc lsl 16) lxor v) land 0x3FFFFFFF) 0 vs

(* Seeds: unique per (branch, prim, suite) so sketch rows are independent. *)
let seed options ~branch ~prim ~suite =
  options.seed_base + (branch * 10007) + (prim * 101) + suite

let filter_suite options ~branch ~prim preds =
  let field_preds, result_preds =
    List.partition (function Ast.Cmp _ -> true | Ast.Result_cmp _ -> false) preds
  in
  match (field_preds, result_preds) with
  | [], [] -> raise (Unsupported "empty filter")
  | [], rps ->
      (* Aggregate-threshold filter: R only. *)
      let guard =
        match rps with
        | [ Ast.Result_cmp { op; value } ] -> (On_g1, op, value)
        | _ -> raise (Unsupported "multiple Result_cmp predicates in one filter")
      in
      [
        make_slot ~kind:K ~branch ~prim ~suite:0 ~used:false (K_cfg []);
        make_slot ~kind:H ~branch ~prim ~suite:0 ~used:false
          (H_cfg { mode = `Direct; range = options.registers });
        make_slot ~kind:S ~branch ~prim ~suite:0 ~used:false
          (S_cfg { op = S_pass; registers = 0 });
        make_slot ~kind:R ~branch ~prim ~suite:0 ~used:true
          (R_cfg { r_nop with guard = Some guard });
      ]
  | fps, [] ->
      let keys, expected, guard =
        match fps with
        | [ Ast.Cmp { field; mask; op; value } ] when op <> Ast.Eq ->
            (* Single non-equality comparison: direct value, range guard. *)
            ([ { Ast.field; mask } ], None, (On_state, op, value land mask))
        | _ ->
            (* Conjunction of (masked) equalities: packed comparison. *)
            let keys =
              List.map
                (function
                  | Ast.Cmp { field; mask; op = Ast.Eq; value = _ } ->
                      { Ast.field; mask }
                  | _ ->
                      raise
                        (Unsupported
                           "filter mixes non-equality with other predicates"))
                fps
            in
            let expected =
              pack_values
                (List.map
                   (function
                     | Ast.Cmp { mask; value; _ } -> value land mask
                     | _ -> assert false)
                   fps)
            in
            (keys, Some expected, (On_state, Ast.Eq, expected))
      in
      ignore expected;
      [
        make_slot ~kind:K ~branch ~prim ~suite:0 ~used:true (K_cfg keys);
        make_slot ~kind:H ~branch ~prim ~suite:0 ~used:true
          (H_cfg { mode = `Direct; range = options.registers });
        make_slot ~kind:S ~branch ~prim ~suite:0 ~used:true
          (S_cfg { op = S_pass; registers = 0 });
        make_slot ~kind:R ~branch ~prim ~suite:0 ~used:true
          (R_cfg { r_nop with guard = Some guard });
      ]
  | _, _ -> raise (Unsupported "filter mixes field and aggregate predicates")

let map_suite ~branch ~prim keys =
  [
    make_slot ~kind:K ~branch ~prim ~suite:0 ~used:true (K_cfg keys);
    make_slot ~kind:H ~branch ~prim ~suite:0 ~used:false
      (H_cfg { mode = `Direct; range = 1 });
    make_slot ~kind:S ~branch ~prim ~suite:0 ~used:false
      (S_cfg { op = S_pass; registers = 0 });
    make_slot ~kind:R ~branch ~prim ~suite:0 ~used:false (R_cfg r_nop);
  ]

let sketch_suites options ~branch ~prim ~depth ~keys ~s_op ~last_guard =
  List.concat
    (List.init depth (fun j ->
         let merge = if j = 0 then (G1, M_set) else (G1, M_min) in
         let guard = if j = depth - 1 then last_guard else None in
         [
           make_slot ~kind:K ~branch ~prim ~suite:j ~used:true (K_cfg keys);
           make_slot ~kind:H ~branch ~prim ~suite:j ~used:true
             (H_cfg { mode = `Hash (seed options ~branch ~prim ~suite:j);
                      range = options.registers });
           make_slot ~kind:S ~branch ~prim ~suite:j ~used:true
             (S_cfg { op = s_op; registers = options.registers });
           make_slot ~kind:R ~branch ~prim ~suite:j ~used:true
             (R_cfg { r_nop with merge = Some merge; guard });
         ]))

let primitive_slots options ~branch ~prim = function
  | Ast.Filter preds -> filter_suite options ~branch ~prim preds
  | Ast.Map keys -> map_suite ~branch ~prim keys
  | Ast.Distinct keys ->
      sketch_suites options ~branch ~prim ~depth:options.distinct_depth ~keys
        ~s_op:S_bf
        ~last_guard:(Some (On_g1, Ast.Eq, 0))
  | Ast.Reduce { keys; agg } ->
      let s_op =
        match agg with
        | Ast.Count -> S_cm (Const 1)
        | Ast.Sum_field f -> S_cm (Field_val f)
        | Ast.Max_field f -> S_max (Field_val f)
      in
      sketch_suites options ~branch ~prim ~depth:options.reduce_depth ~keys
        ~s_op ~last_guard:None

(* Index of the last Reduce primitive in a branch (combine queries read
   the sibling's final reduce arrays). *)
let last_reduce_prim branch_prims =
  let rec go i best = function
    | [] -> best
    | Ast.Reduce _ :: rest -> go (i + 1) (Some i) rest
    | _ :: rest -> go (i + 1) best rest
  in
  match go 0 None branch_prims with
  | Some i -> i
  | None -> raise (Unsupported "combine branch lacks a reduce primitive")

(* Read-back + combine slots appended to branch [branch]: one suite that
   re-hashes the key with the sibling's row-0 seed, reads the sibling's
   row-0 register array, and whose R folds the read value into the second
   accumulator, performs the combine, guards the threshold and reports —
   Fig. 6's "R extracts the minimum between the global result and the
   sibling state" pattern, in a single rule.  Reading only the sibling's
   first CM row trades a little read-back accuracy for three fewer
   modules per combine (documented in DESIGN.md). *)
let combine_slots options ~branch ~other ~other_reduce_prim ~nprims
    (combine : Ast.combine) =
  let guard =
    match combine.threshold with
    | Ast.Result_cmp { op; value } -> Some (On_g1, op, value)
    | Ast.Cmp _ -> raise (Unsupported "combine threshold must be a Result_cmp")
  in
  let comb =
    match combine.op with
    | Ast.Sub -> Some M_sub
    | Ast.Min -> Some M_min
    | Ast.Pair -> None
  in
  let prim = nprims in
  [
    make_slot ~kind:H ~branch ~prim ~suite:0 ~used:true
      (H_cfg
         { mode = `Hash (seed options ~branch:other ~prim:other_reduce_prim ~suite:0);
           range = options.registers });
    make_slot ~kind:S ~branch ~prim ~suite:0 ~used:true
      (S_cfg
         { op = S_read { ar_branch = other; ar_prim = other_reduce_prim; ar_suite = 0 };
           registers = 0 });
    make_slot ~kind:R ~branch ~prim ~suite:0 ~used:true
      (R_cfg { merge = Some (G2, M_set); guard; report = true; combine = comb });
  ]

(* Ensure a single-branch query reports: set report on the last active R
   (normally the threshold filter's guard R), or append a reporting R. *)
let ensure_report ~branch ~nprims slots =
  let rec set_last_r = function
    | [] -> None
    | s :: rest -> (
        match set_last_r rest with
        | Some rest' -> Some (s :: rest')
        | None -> (
            match (s.kind, s.cfg) with
            | R, R_cfg cfg when s.used ->
                Some ({ s with cfg = R_cfg { cfg with report = true } } :: rest)
            | _ -> None))
  in
  match set_last_r slots with
  | Some slots' -> slots'
  | None ->
      slots
      @ [
          make_slot ~kind:R ~branch ~prim:nprims ~suite:0 ~used:true
            (R_cfg { r_nop with report = true });
        ]

(** Decompose a validated query into per-branch module-slot chains. *)
let decompose ?(options = default_options) (query : Ast.t) =
  (match Ast.validate query with
  | [] -> ()
  | errors ->
      raise (Ast.invalid ~id:query.Ast.id ~name:query.Ast.name errors));
  let nbranches = List.length query.Ast.branches in
  let base =
    Array.of_list
      (List.mapi
         (fun b prims ->
           List.concat
             (List.mapi (fun p prim -> primitive_slots options ~branch:b ~prim:p prim) prims))
         query.Ast.branches)
  in
  let branches =
    match query.Ast.combine with
    | None ->
        let nprims = List.length (List.hd query.Ast.branches) in
        [| ensure_report ~branch:0 ~nprims base.(0) |]
    | Some combine ->
        if nbranches <> 2 then
          raise (Unsupported "combine queries must have exactly two branches");
        let prims_a = List.nth query.Ast.branches 0 in
        let prims_b = List.nth query.Ast.branches 1 in
        let ra = last_reduce_prim prims_a in
        let rb = last_reduce_prim prims_b in
        let a =
          base.(0)
          @ combine_slots options ~branch:0 ~other:1 ~other_reduce_prim:rb
              ~nprims:(List.length prims_a) combine
        in
        let b =
          if combine.op = Ast.Min then
            base.(1)
            @ combine_slots options ~branch:1 ~other:0 ~other_reduce_prim:ra
                ~nprims:(List.length prims_b) combine
          else base.(1)
        in
        [| a; b |]
  in
  {
    query;
    options;
    branches;
    init_entries = Array.init (Array.length branches) init_match_all;
  }

(** Total slot count before any optimization — the naive module count. *)
let naive_modules t =
  Array.fold_left (fun acc b -> acc + List.length b) 0 t.branches
