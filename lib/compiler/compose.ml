(** Module rule composition — Algorithm 1 of the paper (§4.3).

    Takes the decomposed slot chains and applies, in order:

    - {b Opt.1} — replace front filters with [newton_init]: when a
      branch's first primitive is a filter whose predicates are (masked)
      equalities over the 5-tuple or TCP flags, its whole suite is dropped
      and the predicates become the branch's [newton_init] ternary entry.
    - {b Opt.2} — remove unneeded modules: slots decomposition marked
      unused, plus redundant K slots whose operation keys equal the keys
      already selected (the running θ of Algorithm 1).
    - {b Opt.3} — vertical composition: consecutive primitives alternate
      between the two metadata sets (tracking θ₁/θ₂ and restoring K when
      the set's keys differ), letting their modules share physical stages.

    Finally, modules are assigned to stages: along one branch's chain a
    slot must be placed strictly after its predecessor when both use the
    same metadata set (write-read dependency, Figure 4) and may share the
    predecessor's stage otherwise; each (kind, metadata set) table exists
    at most once per stage per branch.  Parallel branches of one query
    multiplex the same stage cells (§6.4 "resource multiplexing"). *)

open Newton_query
open Ir

type stats = {
  primitives : int;
  modules_naive : int;
  modules : int;       (** active slots after Opt.1/2 *)
  modules_shared : int; (** distinct (stage, kind, set) cells after multiplexing *)
  stages_naive : int;
  stages : int;
  rules : int;          (** table entries: active slots + init entries *)
}

type t = {
  query : Ast.t;
  options : Decompose.options;
  branches : slot list array;       (** active slots, chain order *)
  init_entries : init_entry array;
  stats : stats;
}

(* ---------------- Opt.1 ---------------- *)

let pred_init_eligible = function
  | Ast.Cmp { field; op = Ast.Eq; _ } -> List.mem field init_fields
  | _ -> false

let front_filter_preds (query : Ast.t) branch_idx =
  match List.nth_opt query.Ast.branches branch_idx with
  | Some (Ast.Filter preds :: _) when preds <> [] && List.for_all pred_init_eligible preds ->
      Some preds
  | _ -> None

(* A TCAM entry has exactly one ternary slot per key field, so a front
   filter constraining a field twice must be merged into a single
   (value, mask) before it can become a classifier entry.  Two masked
   equalities merge iff they agree on every shared mask bit; returns
   [None] when they conflict — absorbing such a filter would silently
   drop one predicate, so the caller must leave it to run in stages. *)
let merged_matches preds =
  let rec add acc field v m =
    match acc with
    | [] -> Some [ (field, v, m) ]
    | (f', v', m') :: rest when Newton_packet.Field.equal f' field ->
        if (v lxor v') land m land m' <> 0 then None
        else Some ((f', v lor v', m lor m') :: rest)
    | x :: rest -> Option.map (fun r -> x :: r) (add rest field v m)
  in
  List.fold_left
    (fun acc p ->
      match (acc, p) with
      | None, _ | Some _, Ast.Result_cmp _ -> None
      | Some acc, Ast.Cmp { field; mask; value; _ } ->
          add acc field (value land mask) mask)
    (Some []) preds

let apply_opt1 (d : Decompose.t) =
  Array.iteri
    (fun b slots ->
      match Option.bind (front_filter_preds d.Decompose.query b) merged_matches with
      | None -> ()
      | Some matches ->
          (* Absorb into newton_init and drop the front suite (prim 0). *)
          d.Decompose.init_entries.(b) <- { ie_branch = b; ie_matches = matches };
          (* Mark absorbed slots unused as well: Opt.3's K restoration
             must never resurrect a front filter newton_init subsumed. *)
          List.iter
            (fun s ->
              if s.prim = 0 then begin
                s.removed <- true;
                s.used <- false
              end)
            slots)
    d.Decompose.branches

(* ---------------- Opt.2 ---------------- *)

let keys_of_slot s = match s.cfg with K_cfg ks -> Some ks | _ -> None

let apply_opt2 (d : Decompose.t) =
  Array.iter
    (fun slots ->
      (* Unused modules. *)
      List.iter (fun s -> if not s.used then s.removed <- true) slots;
      (* Redundant K: same operation keys as the running θ. *)
      let theta = ref None in
      List.iter
        (fun s ->
          if not s.removed then
            match keys_of_slot s with
            | Some ks -> (
                match !theta with
                | Some t when Ast.keys_equal t ks -> s.removed <- true
                | _ -> theta := Some ks)
            | None -> ())
        slots)
    d.Decompose.branches

(* ---------------- Opt.3 ---------------- *)

(* Group a branch's slots by primitive index, preserving chain order. *)
let group_by_prim slots =
  let order = ref [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen s.prim) then begin
        Hashtbl.add seen s.prim ();
        order := s.prim :: !order
      end)
    slots;
  List.rev !order |> List.map (fun p -> (p, List.filter (fun s -> s.prim = p) slots))

(* Group a primitive's slots by suite (sketch row), preserving order. *)
let group_by_suite slots =
  let order = ref [] in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen s.suite) then begin
        Hashtbl.add seen s.suite ();
        order := s.suite :: !order
      end)
    slots;
  List.rev !order |> List.map (fun j -> List.filter (fun s -> s.suite = j) slots)

(* Suites within one sketch primitive are mutually independent (each row
   hashes the same keys), so Opt.3 alternates the metadata set per suite,
   letting rows overlap in the pipeline.  K restoration follows Algorithm
   1: when the suite's set currently selects different keys (the running
   theta of that set), the suite's K -- possibly removed by Opt.2 -- must
   be restored. *)
let apply_opt3 (d : Decompose.t) =
  Array.iter
    (fun slots ->
      let theta = [| None; None |] in
      let label = ref 1 in
      List.iter
        (fun (_p, prim_slots) ->
          List.iter
            (fun suite_slots ->
              let kslot =
                List.find_opt
                  (fun s -> s.kind = Newton_dataplane.Module_cost.K)
                  suite_slots
              in
              match kslot with
              | Some kslot when kslot.used ->
                  let ks = Option.get (keys_of_slot kslot) in
                  let set = 1 - !label in
                  label := set;
                  List.iter (fun s -> s.meta <- set) suite_slots;
                  (match theta.(set) with
                  | Some t when Ast.keys_equal t ks -> kslot.removed <- true
                  | _ ->
                      theta.(set) <- Some ks;
                      kslot.removed <- false)
              | _ ->
                  (* Key-less suites (threshold R, combine read-back) use
                     the keys already selected: toggle to the other set
                     only when both sets hold the same keys. *)
                  let other = 1 - !label in
                  let set =
                    match (theta.(other), theta.(!label)) with
                    | Some a, Some b when Ast.keys_equal a b -> other
                    | _ -> !label
                  in
                  label := set;
                  List.iter (fun s -> s.meta <- set) suite_slots)
            (group_by_suite prim_slots))
        (group_by_prim slots))
    d.Decompose.branches

(* ---------------- Stage assignment ---------------- *)

(* Vertical composition.  Constraints (Figure 4 / Figure 5):
   - within a suite, K -> H -> S -> R occupy strictly increasing stages
     (write-read dependencies on the suite's metadata set);
   - a primitive starts at the previous primitive's gate (its last chain
     slot): the gate's own metadata set must wait one stage past the
     gate, the other set may share the gate's stage;
   - suites of one primitive are independent and overlap freely;
   - each (kind, metadata set) table exists at most once per stage. *)
let assign_vertical slots =
  let occupied = Hashtbl.create 64 in
  let gate_stage = ref (-1) in
  let gate_set = ref (-1) in
  (* Write-after-read hazards on the shared PHV fields.  Each metadata
     set has exactly one operation-key vector, one hash result and one
     state result (Fig. 5), and the branch has one global result, so:
     - all R modules (read-modify-write the global result) follow chain
       order strictly;
     - a K (writes the set's keys) must come after the last H of its set
       (which reads them);
     - an H (writes the set's hash result) after the last S of its set;
     - an S (writes the set's state result) after the last R of its set.
     Without these, a later-chain module would observe a sibling suite's
     value instead of its own (caught by the CQE-equivalence property
     tests). *)
  let last_r_stage = ref (-1) in
  let last_h_of_set = [| -1; -1 |] in
  let last_s_of_set = [| -1; -1 |] in
  let last_r_of_set = [| -1; -1 |] in
  List.iter
    (fun (_p, prim_slots) ->
      let start set =
        if !gate_stage < 0 then 0
        else !gate_stage + if set = !gate_set then 1 else 0
      in
      let last = ref None in
      List.iter
        (fun suite_slots ->
          let prev = ref (-1) in
          List.iter
            (fun s ->
              if is_active s then begin
                let base = if !prev < 0 then start s.meta else !prev + 1 in
                let base =
                  match s.kind with
                  | Newton_dataplane.Module_cost.K ->
                      max base (last_h_of_set.(s.meta) + 1)
                  | Newton_dataplane.Module_cost.H ->
                      max base (last_s_of_set.(s.meta) + 1)
                  | Newton_dataplane.Module_cost.S ->
                      max base (last_r_of_set.(s.meta) + 1)
                  | Newton_dataplane.Module_cost.R ->
                      max base (!last_r_stage + 1)
                in
                let stage = ref base in
                while Hashtbl.mem occupied (!stage, s.kind, s.meta) do
                  incr stage
                done;
                Hashtbl.add occupied (!stage, s.kind, s.meta) ();
                s.stage <- !stage;
                (match s.kind with
                | Newton_dataplane.Module_cost.H ->
                    last_h_of_set.(s.meta) <- max last_h_of_set.(s.meta) !stage
                | Newton_dataplane.Module_cost.S ->
                    last_s_of_set.(s.meta) <- max last_s_of_set.(s.meta) !stage
                | Newton_dataplane.Module_cost.R ->
                    last_r_stage := !stage;
                    last_r_of_set.(s.meta) <- max last_r_of_set.(s.meta) !stage
                | Newton_dataplane.Module_cost.K -> ());
                prev := !stage;
                last := Some (!stage, s.meta)
              end)
            suite_slots)
        (group_by_suite prim_slots);
      match !last with
      | Some (st, set) ->
          gate_stage := st;
          gate_set := set
      | None -> ())
    (group_by_prim slots)

let assign_stages (d : Decompose.t) ~vertical =
  Array.iter
    (fun slots ->
      if vertical then assign_vertical slots
      else begin
        (* Horizontal: one module per stage. *)
        let i = ref 0 in
        List.iter
          (fun s ->
            if is_active s then begin
              s.stage <- !i;
              incr i
            end)
          slots
      end)
    d.Decompose.branches

(* ---------------- Statistics ---------------- *)

let active_slots (d : Decompose.t) =
  Array.fold_left
    (fun acc slots -> acc + List.length (List.filter is_active slots))
    0 d.Decompose.branches

let stage_count (d : Decompose.t) =
  Array.fold_left
    (fun acc slots ->
      List.fold_left (fun m s -> if is_active s then max m (s.stage + 1) else m) acc slots)
    0 d.Decompose.branches

(* Distinct (stage, kind, set) cells across branches: parallel branches
   multiplex the same physical tables. *)
let shared_modules (d : Decompose.t) =
  let cells = Hashtbl.create 64 in
  Array.iter
    (List.iter (fun s ->
         if is_active s then Hashtbl.replace cells (s.stage, s.kind, s.meta) ()))
    d.Decompose.branches;
  Hashtbl.length cells

(** Run Algorithm 1 over a decomposition, honouring its option flags. *)
let compose (d : Decompose.t) =
  let options = d.Decompose.options in
  let naive = Decompose.naive_modules d in
  if options.Decompose.opt1 then apply_opt1 d;
  if options.Decompose.opt2 then apply_opt2 d;
  if options.Decompose.opt3 then apply_opt3 d;
  assign_stages d ~vertical:options.Decompose.opt3;
  let modules = active_slots d in
  let stages = stage_count d in
  let shared = shared_modules d in
  let rules = modules + Array.length d.Decompose.init_entries in
  {
    query = d.Decompose.query;
    options;
    branches = Array.map (List.filter is_active) d.Decompose.branches;
    init_entries = d.Decompose.init_entries;
    stats =
      {
        primitives = Ast.num_primitives d.Decompose.query;
        modules_naive = naive;
        modules;
        modules_shared = shared;
        stages_naive = naive;
        stages;
        rules;
      };
  }

(** One-call pipeline: decompose then compose. *)
let compile ?(options = Decompose.default_options) query =
  compose (Decompose.decompose ~options query)

(** Resource vector consumed by a compiled query: the amortised share of
    each module it holds rules in, plus register memory for its state
    banks. *)
let resource_usage t =
  let open Newton_dataplane in
  Array.fold_left
    (fun acc slots ->
      List.fold_left
        (fun acc s -> Resource.add acc (Module_cost.amortized s.kind))
        acc slots)
    Resource.zero t.branches

let to_string t =
  let s = t.stats in
  Printf.sprintf
    "%s: prims=%d modules %d->%d (shared %d) stages %d->%d rules=%d"
    t.query.Ast.name s.primitives s.modules_naive s.modules s.modules_shared
    s.stages_naive s.stages s.rules
