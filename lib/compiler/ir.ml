(** Compiler intermediate representation: module slots.

    Decomposition (§4.1) turns every query primitive into a {e suite} of
    up to four module slots (K, H, S, R).  A slot carries the rule
    configuration the module's table needs, plus the mutable annotations
    Algorithm 1 manipulates: whether the slot is used (Opt.2), which
    metadata set it writes (Opt.3), and which pipeline stage it was
    assigned (module composition). *)

open Newton_packet

(** Value source for the state bank's Add ALU. *)
type value_src =
  | Const of int        (** e.g. +1 per packet for [Count] *)
  | Field_val of Field.t (** e.g. +payload_len for byte sums *)

(** State-bank rule configuration. *)
type s_op =
  | S_pass         (** state result := hash result (stateless conduit) *)
  | S_bf           (** Bloom-filter bit: prev := reg[h]; reg[h] |= 1; result := prev *)
  | S_cm of value_src (** Count-Min row: reg[h] += v; result := new value *)
  | S_max of value_src (** max-sketch row: reg[h] := max(reg[h], v) *)
  | S_read of array_ref (** read another suite's register array at own hash *)

(** Identifies a register array by the suite that owns it. *)
and array_ref = { ar_branch : int; ar_prim : int; ar_suite : int }

(** Which accumulator an R merge targets.  The paper extends R with a
    "global result" field; combine-queries additionally need a second
    accumulator to hold the sibling branch's read-back value. *)
type acc = G1 | G2

type merge_op = M_set | M_min | M_max | M_add | M_sub

(** Result-process rule configuration: optional merge into an
    accumulator, optional guard (ternary/range match — stop the query on
    mismatch), optional report action. *)
type guard_target = On_state | On_g1 | On_g2

type r_cfg = {
  merge : (acc * merge_op) option;
  guard : (guard_target * Newton_query.Ast.cmp_op * int) option;
  report : bool;
  (** final combine executed before guard: g1 := op(g1, g2) *)
  combine : merge_op option;
}

let r_nop = { merge = None; guard = None; report = false; combine = None }

type m_cfg =
  | K_cfg of Newton_query.Ast.key list
  | H_cfg of { mode : [ `Hash of int | `Direct ]; range : int }
  | S_cfg of { op : s_op; registers : int }
  | R_cfg of r_cfg

type slot = {
  kind : Newton_dataplane.Module_cost.kind;
  branch : int;
  prim : int;
  suite : int;
  cfg : m_cfg;
  mutable used : bool;
  mutable removed : bool;
  mutable meta : int; (* metadata set: 0 or 1 *)
  mutable stage : int; (* -1 = unassigned *)
}

let make_slot ~kind ~branch ~prim ~suite ~used cfg =
  { kind; branch; prim; suite; cfg; used; removed = false; meta = 0; stage = -1 }

let is_active s = s.used && not s.removed

let kind_char s = Newton_dataplane.Module_cost.kind_to_string s.kind

let slot_to_string s =
  Printf.sprintf "%s[b%d.p%d.s%d m%d st%d%s]" (kind_char s) s.branch s.prim
    s.suite s.meta s.stage
    (if s.removed then " removed" else if not s.used then " unused" else "")

(** A newton_init classifier entry: ternary matches over the 5-tuple and
    TCP flags (§4.1 "Concurrency"), dispatching traffic to one branch's
    module chain. *)
type init_entry = {
  ie_branch : int;
  ie_matches : (Field.t * int * int) list; (** (field, value, mask) *)
}

(** Match-all entry for a branch whose front filter was not absorbed. *)
let init_match_all branch = { ie_branch = branch; ie_matches = [] }

(** Fields newton_init can match on: the 5-tuple, TCP control flags,
    and the headers added by the IPv6/ICMP/tunnel decode extension —
    all parsed header fields the classifier sees before any module
    chain runs. *)
let init_fields =
  [ Field.Src_ip; Field.Dst_ip; Field.Proto; Field.Src_port; Field.Dst_port;
    Field.Tcp_flags; Field.Ip_ver; Field.Icmp_type; Field.Icmp_code;
    Field.Tun_id ]
