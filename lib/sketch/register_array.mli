(** A register array — the stateful-memory unit of the state bank.

    Models one SRAM register array of a programmable switch stage:
    fixed-size, word-wide registers, one transactional ALU execution per
    packet.  Windowed queries reset arrays via {!clear}. *)

type t

(** @raise Invalid_argument if the size is not positive. *)
val create : int -> t

val size : t -> int

(** Lifetime count of ALU executions (for accounting). *)
val ops : t -> int

(** @raise Invalid_argument when the index is out of range. *)
val get : t -> int -> int

val set : t -> int -> int -> unit

(** Execute a stateful ALU at an index; returns the ALU result.
    @raise Invalid_argument when the index is out of range. *)
val exec : t -> Alu.t -> int -> int

(** Zero every register (window reset). *)
val clear : t -> unit

(** Independent copy (registers duplicated, op counter carried over). *)
val copy : t -> t

(** Cross-shard combine ops, one per stateful-ALU family: [`Or] unions
    Bloom banks, [`Add] sums Count-Min rows, [`Max] folds running
    maxima.  All are associative and commutative. *)
type merge_op = [ `Add | `Or | `Max ]

val merge_op_to_string : merge_op -> string

(** Fold [src] into [dst] register-by-register.
    @raise Invalid_argument on a size mismatch. *)
val merge_into : op:merge_op -> dst:t -> src:t -> unit

(** Functional merge into a fresh array.
    @raise Invalid_argument on a size mismatch. *)
val merge : op:merge_op -> t -> t -> t

(** Number of non-zero registers. *)
val occupancy : t -> int

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

(** SRAM footprint in bytes at 32-bit words. *)
val sram_bytes : t -> int
