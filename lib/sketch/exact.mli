(** Exact (oracle) counting structures for ground truth.

    The accuracy experiments (Fig. 14) compare sketch answers against
    the true per-key values; these hashtable-backed oracles provide
    them.  Also used by the software analyzer for primitives deferred
    to CPU. *)

module Key : sig
  type t = int array

  val equal : t -> t -> bool
  val hash : t -> int
end

module Tbl : Hashtbl.S with type key = Key.t

(** Exact counter: key vector -> running sum. *)
module Counter : sig
  type t = int Tbl.t

  val create : unit -> t

  (** [add t keys k] adds [k] and returns the new sum. *)
  val add : t -> Key.t -> int -> int

  (** [merge_max t keys v] keeps the running maximum instead of a sum. *)
  val merge_max : t -> Key.t -> int -> int

  val count : t -> Key.t -> int
  val cardinality : t -> int
  val clear : t -> unit
  val fold : (Key.t -> int -> 'a -> 'a) -> t -> 'a -> 'a

  (** Keys whose count strictly exceeds [threshold]. *)
  val over_threshold : t -> int -> (Key.t * int) list
end

(** Exact distinct-set: key vector membership. *)
module Distinct : sig
  type t = unit Tbl.t

  val create : unit -> t

  (** Returns whether the key was already present, then inserts. *)
  val test_and_set : t -> Key.t -> bool

  val mem : t -> Key.t -> bool
  val cardinality : t -> int
  val clear : t -> unit
end
