(** Count-Min sketch over integer key vectors.

    Newton implements the sum form of [reduce] with a CM sketch: d rows of
    w counters, update via the [Add] ALU, query = min over rows.  The paper
    notes a multi-row CM spans several S-module suites (Figure 3) and that
    CQE lets the rows live on {e different switches} — which is exactly how
    Fig. 14's accuracy gains arise.  This module is the reference
    implementation; the runtime composes the same semantics from module
    suites and R's running-min over the global result. *)

type t = {
  rows : Register_array.t array;
  hashes : Hash.t array;
  mutable total : int; (* sum of all inserted counts *)
}

let create ~width ~depth ~seed =
  if depth <= 0 then invalid_arg "Count_min.create: depth must be positive";
  {
    rows = Array.init depth (fun _ -> Register_array.create width);
    hashes = Array.init depth (fun i -> Hash.create ~seed:(seed + i) ~range:width);
    total = 0;
  }

let width t = Register_array.size t.rows.(0)
let depth t = Array.length t.rows
let total t = t.total

(** [add t keys k] increments the key's count by [k] and returns the new
    estimate (min over rows after update) — mirroring the single-pass
    update-and-read the dataplane performs. *)
let add t keys k =
  t.total <- t.total + k;
  let est = ref max_int in
  Array.iteri
    (fun i row ->
      let idx = Hash.apply t.hashes.(i) keys in
      let v = Register_array.exec row (Alu.Add k) idx in
      if v < !est then est := v)
    t.rows;
  !est

(** Point query without update. *)
let estimate t keys =
  let est = ref max_int in
  Array.iteri
    (fun i row ->
      let v = Register_array.get row (Hash.apply t.hashes.(i) keys) in
      if v < !est then est := v)
    t.rows;
  if !est = max_int then 0 else !est

let clear t =
  Array.iter Register_array.clear t.rows;
  t.total <- 0

(** Sum of two sketches built with identical geometry and hash seeds
    (counter-wise [Add] of every row) — the classic CM mergeability
    property.  Estimates over the merged sketch equal estimates over the
    union stream; sharded engines use this to fold per-shard reduce
    state back into one network view.
    @raise Invalid_argument on a geometry or seed mismatch. *)
let merge a b =
  if width a <> width b || depth a <> depth b then
    invalid_arg "Count_min.merge: geometry mismatch";
  Array.iter2
    (fun ha hb ->
      if Hash.seed ha <> Hash.seed hb then
        invalid_arg "Count_min.merge: hash seed mismatch")
    a.hashes b.hashes;
  {
    rows = Array.map2 (fun x y -> Register_array.merge ~op:`Add x y) a.rows b.rows;
    hashes = a.hashes;
    total = a.total + b.total;
  }

(** Standard CM error bound: estimate <= true + (e/w) * total with
    probability 1 - (1/e)^d. *)
let error_bound t =
  let w = float_of_int (width t) in
  Float.exp 1.0 /. w *. float_of_int t.total
