(** Seeded hash functions over integer key vectors, modelling the
    configurable hash units of a programmable switch (H module). *)

type t

(** [create ~seed ~range] — outputs fall in [0, range).
    @raise Invalid_argument if [range <= 0]. *)
val create : seed:int -> range:int -> t

val range : t -> int
val seed : t -> int

(** Hash a single int with a seed; full-width positive output. *)
val hash_int : seed:int -> int -> int

(** Hash a key vector by chained mixing; order-sensitive. *)
val hash_vector : seed:int -> int array -> int

(** [hash5 ~seed a b c d e] = [hash_vector ~seed [|a; b; c; d; e|]]
    without materialising the vector (the flow 5-tuple fast path). *)
val hash5 : seed:int -> int -> int -> int -> int -> int -> int

(** Apply to a key vector, reduced into [0, range). *)
val apply : t -> int array -> int

(** Apply to a single int, reduced into [0, range). *)
val apply_int : t -> int -> int
