(** Count-Min sketch over integer key vectors — the data-plane
    realisation of [reduce]'s sums ([Add]-ALU rows, min over rows).
    Estimates never underestimate. *)

type t

(** @raise Invalid_argument if [depth <= 0]. *)
val create : width:int -> depth:int -> seed:int -> t

val width : t -> int
val depth : t -> int

(** Sum of all inserted counts. *)
val total : t -> int

(** Add [k] to the key's count and return the new estimate (min over
    rows after the update — the data plane's single-pass update+read). *)
val add : t -> int array -> int -> int

(** Point estimate without updating. *)
val estimate : t -> int array -> int

val clear : t -> unit

(** Sum of two same-geometry, same-seed sketches (counter-wise [Add]
    per row): estimates over the merge equal estimates over the union
    stream.
    @raise Invalid_argument on a geometry or seed mismatch. *)
val merge : t -> t -> t

(** Standard CM bound: estimate <= truth + (e/width) * total with
    probability 1 - (1/e)^depth. *)
val error_bound : t -> float
