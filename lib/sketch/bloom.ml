(** Bloom filter over integer key vectors.

    Newton implements the [distinct] primitive with a Bloom filter built
    from k (hash, register-array) pairs using the [Or] ALU — the ALU
    returns the {e previous} bit, so a packet learns in one pass whether
    its key was already present.  This module is both the reference
    implementation used by tests and the building block the runtime
    assembles from S-module suites. *)

type t = {
  arrays : Register_array.t array;
  hashes : Hash.t array;
  mutable inserted : int;
}

(** [create ~width ~depth ~seed] — [depth] hash functions over arrays of
    [width] bits each (modelled one bit per register). *)
let create ~width ~depth ~seed =
  if depth <= 0 then invalid_arg "Bloom.create: depth must be positive";
  {
    arrays = Array.init depth (fun _ -> Register_array.create width);
    hashes = Array.init depth (fun i -> Hash.create ~seed:(seed + i) ~range:width);
    inserted = 0;
  }

let width t = Register_array.size t.arrays.(0)
let depth t = Array.length t.arrays
let inserted t = t.inserted

(** [test_and_set t keys] inserts and returns whether the key was
    (apparently) already present — exactly the dataplane's one-pass
    distinct check. *)
let test_and_set t keys =
  let was_present = ref true in
  Array.iteri
    (fun i arr ->
      let idx = Hash.apply t.hashes.(i) keys in
      let prev = Register_array.exec arr (Alu.Or 1) idx in
      if prev = 0 then was_present := false)
    t.arrays;
  if not !was_present then t.inserted <- t.inserted + 1;
  !was_present

(** Pure membership test (no insertion). *)
let mem t keys =
  Array.for_all2
    (fun arr h -> Register_array.get arr (Hash.apply h keys) <> 0)
    t.arrays t.hashes

let clear t =
  Array.iter Register_array.clear t.arrays;
  t.inserted <- 0

(** Union of two filters built with identical geometry and hash seeds
    (bitwise [Or] of every bank).  [inserted] adds up, so
    {!expected_fpr} stays an upper bound — double-inserted keys are
    counted twice.  Sharded engines use this to fold per-shard distinct
    state back into one network view.
    @raise Invalid_argument on a geometry or seed mismatch. *)
let merge a b =
  if width a <> width b || depth a <> depth b then
    invalid_arg "Bloom.merge: geometry mismatch";
  Array.iter2
    (fun ha hb ->
      if Hash.seed ha <> Hash.seed hb then
        invalid_arg "Bloom.merge: hash seed mismatch")
    a.hashes b.hashes;
  {
    arrays =
      Array.map2 (fun x y -> Register_array.merge ~op:`Or x y) a.arrays b.arrays;
    hashes = a.hashes;
    inserted = a.inserted + b.inserted;
  }

(** Expected false-positive rate given current occupancy. *)
let expected_fpr t =
  let w = float_of_int (width t) in
  let k = float_of_int (depth t) in
  let n = float_of_int t.inserted in
  (1.0 -. exp (-.k *. n /. w)) ** k
