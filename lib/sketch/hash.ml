(** Seeded hash functions over integer key vectors.

    Programmable switches expose a small set of configurable hash units
    (CRC polynomials on Tofino); Newton's H module picks the algorithm and
    output range at rule-install time.  We model a family of independent
    hash functions indexed by [seed], built on a 64-bit mix (xxhash-style
    avalanche), and reduce to an arbitrary power-of-two or general range. *)

type t = { seed : int; range : int }

(** [create ~seed ~range] — hash values fall in [0, range). *)
let create ~seed ~range =
  if range <= 0 then invalid_arg "Hash.create: range must be positive";
  { seed; range }

let range t = t.range
let seed t = t.seed

let mix64 h =
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xFF51AFD7ED558CCDL in
  let h = Int64.logxor h (Int64.shift_right_logical h 33) in
  let h = Int64.mul h 0xC4CEB9FE1A85EC53L in
  Int64.logxor h (Int64.shift_right_logical h 33)

(** Hash a single int with a seed; full 62-bit positive output. *)
let hash_int ~seed v =
  let h =
    mix64 (Int64.logxor (Int64.of_int v) (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L))
  in
  Int64.to_int (Int64.shift_right_logical h 2)

let chain_init seed = Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L

let chain_step acc k =
  mix64 (Int64.add (Int64.logxor acc (Int64.of_int k)) 0x632BE59BD9B4E019L)

let chain_fin acc = Int64.to_int (Int64.shift_right_logical (mix64 acc) 2)

(** Hash a key vector (e.g. masked operation keys) by chaining. *)
let hash_vector ~seed keys =
  let acc = ref (chain_init seed) in
  Array.iter (fun k -> acc := chain_step !acc k) keys;
  chain_fin !acc

(** [hash5 ~seed a b c d e = hash_vector ~seed [|a; b; c; d; e|]],
    without materialising the vector — the per-packet shard-assignment
    path hashes the 5-tuple once per packet at arena-build time, and
    the intermediate array is the only allocation on that path. *)
let hash5 ~seed a b c d e =
  chain_fin
    (chain_step
       (chain_step (chain_step (chain_step (chain_step (chain_init seed) a) b) c)
          d)
       e)

let apply t keys = hash_vector ~seed:t.seed keys mod t.range
let apply_int t v = hash_int ~seed:t.seed v mod t.range
