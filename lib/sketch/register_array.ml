(** A register array — the stateful-memory unit of the state bank (S).

    Models one SRAM register array of a programmable switch stage: a fixed
    number of word-sized registers, each supporting one transactional ALU
    per packet.  Windowed queries ([reduce]/[distinct] over 100 ms windows
    in the paper) reset arrays between windows via [clear]. *)

type t = {
  size : int;
  regs : int array;
  mutable ops : int; (* lifetime ALU executions, for accounting *)
}

let create size =
  if size <= 0 then invalid_arg "Register_array.create: size must be positive";
  { size; regs = Array.make size 0; ops = 0 }

let size t = t.size
let ops t = t.ops

let get t idx =
  if idx < 0 || idx >= t.size then invalid_arg "Register_array.get: index out of range";
  t.regs.(idx)

let set t idx v =
  if idx < 0 || idx >= t.size then invalid_arg "Register_array.set: index out of range";
  t.regs.(idx) <- v

(** Execute a stateful ALU at [idx]; returns the ALU result. *)
let exec t alu idx =
  if idx < 0 || idx >= t.size then
    invalid_arg
      (Printf.sprintf "Register_array.exec: index %d out of range [0,%d)" idx t.size);
  t.ops <- t.ops + 1;
  Alu.exec alu t.regs idx

let clear t = Array.fill t.regs 0 t.size 0

let copy t = { t with regs = Array.copy t.regs }

(* ---------------- shard merging ---------------- *)

(* The cross-shard combine menu mirrors the stateful ALUs: Bloom banks
   union with [`Or], Count-Min rows sum with [`Add], running maxima take
   [`Max].  All three are associative and commutative, so shard state
   folds in any order. *)
type merge_op = [ `Add | `Or | `Max ]

let merge_op_to_string = function `Add -> "+" | `Or -> "|" | `Max -> "max"

let alu_of_merge_op op v =
  match op with `Add -> Alu.Add v | `Or -> Alu.Or v | `Max -> Alu.Max v

(** Fold [src] into [dst] register-by-register with the merge op's ALU;
    merging is not counted as packet ALU executions. *)
let merge_into ~op ~dst ~src =
  if dst.size <> src.size then
    invalid_arg
      (Printf.sprintf "Register_array.merge_into: size mismatch (%d vs %d)"
         dst.size src.size);
  for i = 0 to dst.size - 1 do
    ignore (Alu.exec (alu_of_merge_op op src.regs.(i)) dst.regs i)
  done

(** Functional merge: a fresh array holding [op]-combined registers. *)
let merge ~op a b =
  let t = copy a in
  merge_into ~op ~dst:t ~src:b;
  t

(** Number of non-zero registers (occupancy), used in accuracy analyses. *)
let occupancy t =
  Array.fold_left (fun acc v -> if v <> 0 then acc + 1 else acc) 0 t.regs

let fold f init t = Array.fold_left f init t.regs

(** SRAM footprint in bytes assuming 32-bit words, for resource accounting. *)
let sram_bytes t = t.size * 4
