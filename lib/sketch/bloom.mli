(** Bloom filter over integer key vectors — the data-plane realisation
    of the [distinct] primitive ([Or]-ALU rows over register arrays). *)

type t

(** [create ~width ~depth ~seed]: [depth] independent hash rows over
    [width] one-bit registers each.
    @raise Invalid_argument if [depth <= 0]. *)
val create : width:int -> depth:int -> seed:int -> t

val width : t -> int
val depth : t -> int

(** Distinct keys inserted so far (as observed, no false negatives). *)
val inserted : t -> int

(** Insert and report whether the key was (apparently) already present —
    the data plane's one-pass distinct check. *)
val test_and_set : t -> int array -> bool

(** Pure membership test. *)
val mem : t -> int array -> bool

val clear : t -> unit

(** Union of two same-geometry, same-seed filters (bitwise [Or] per
    bank); [inserted] adds up, keeping {!expected_fpr} an upper bound.
    @raise Invalid_argument on a geometry or seed mismatch. *)
val merge : t -> t -> t

(** Expected false-positive rate at the current occupancy. *)
val expected_fpr : t -> float
