(** The global header-field set.

    Newton's key-selection module (K) operates over a fixed, global set of
    header fields carried in the PHV (packet header vector).  Each query
    primitive selects a subset of these fields — possibly bit-masked, e.g.
    to take an IP prefix — as its operation keys.  This module enumerates
    the fields our pipeline parses, mirroring the fields the Sonata query
    repository uses (5-tuple, TCP flags/seq, lengths, DNS metadata). *)

type t =
  | Src_ip          (** IPv4 source address, 32 bits *)
  | Dst_ip          (** IPv4 destination address, 32 bits *)
  | Proto           (** IP protocol number, 8 bits *)
  | Src_port        (** L4 source port, 16 bits *)
  | Dst_port        (** L4 destination port, 16 bits *)
  | Tcp_flags       (** TCP control flags, 8 bits (CWR..FIN) *)
  | Tcp_seq         (** TCP sequence number, 32 bits *)
  | Tcp_ack         (** TCP acknowledgement number, 32 bits *)
  | Pkt_len         (** total IP length in bytes, 16 bits *)
  | Payload_len     (** L4 payload length in bytes, 16 bits *)
  | Ttl             (** IP TTL, 8 bits *)
  | Dns_qr          (** DNS query/response bit (1 = response), 1 bit *)
  | Dns_ancount     (** DNS answer count, 16 bits *)
  | Ingress_port    (** switch ingress port (metadata), 9 bits *)
  | Ip_ver          (** IP version nibble (4 or 6), 4 bits *)
  | Icmp_type       (** ICMP/ICMPv6 message type, 8 bits *)
  | Icmp_code       (** ICMP/ICMPv6 message code, 8 bits *)
  | Tun_id          (** tunnel id: VXLAN VNI / GRE key (0 = not tunneled), 24 bits *)

let all =
  [ Src_ip; Dst_ip; Proto; Src_port; Dst_port; Tcp_flags; Tcp_seq; Tcp_ack;
    Pkt_len; Payload_len; Ttl; Dns_qr; Dns_ancount; Ingress_port;
    Ip_ver; Icmp_type; Icmp_code; Tun_id ]

let count = List.length all

let index = function
  | Src_ip -> 0 | Dst_ip -> 1 | Proto -> 2 | Src_port -> 3 | Dst_port -> 4
  | Tcp_flags -> 5 | Tcp_seq -> 6 | Tcp_ack -> 7 | Pkt_len -> 8
  | Payload_len -> 9 | Ttl -> 10 | Dns_qr -> 11 | Dns_ancount -> 12
  | Ingress_port -> 13 | Ip_ver -> 14 | Icmp_type -> 15 | Icmp_code -> 16
  | Tun_id -> 17

let of_index = function
  | 0 -> Src_ip | 1 -> Dst_ip | 2 -> Proto | 3 -> Src_port | 4 -> Dst_port
  | 5 -> Tcp_flags | 6 -> Tcp_seq | 7 -> Tcp_ack | 8 -> Pkt_len
  | 9 -> Payload_len | 10 -> Ttl | 11 -> Dns_qr | 12 -> Dns_ancount
  | 13 -> Ingress_port | 14 -> Ip_ver | 15 -> Icmp_type | 16 -> Icmp_code
  | 17 -> Tun_id
  | i -> invalid_arg (Printf.sprintf "Field.of_index: %d" i)

(** Bit width of each field, used for PHV accounting and full masks. *)
let width = function
  | Src_ip | Dst_ip | Tcp_seq | Tcp_ack -> 32
  | Tun_id -> 24
  | Src_port | Dst_port | Pkt_len | Payload_len | Dns_ancount -> 16
  | Proto | Tcp_flags | Ttl | Icmp_type | Icmp_code -> 8
  | Ingress_port -> 9
  | Ip_ver -> 4
  | Dns_qr -> 1

(** All-ones mask for the field's width. *)
let full_mask f = (1 lsl width f) - 1

let to_string = function
  | Src_ip -> "sip" | Dst_ip -> "dip" | Proto -> "proto"
  | Src_port -> "sport" | Dst_port -> "dport" | Tcp_flags -> "tcp.flags"
  | Tcp_seq -> "tcp.seq" | Tcp_ack -> "tcp.ack" | Pkt_len -> "len"
  | Payload_len -> "payload_len" | Ttl -> "ttl" | Dns_qr -> "dns.qr"
  | Dns_ancount -> "dns.ancount" | Ingress_port -> "ig_port"
  | Ip_ver -> "ip.ver" | Icmp_type -> "icmp.type" | Icmp_code -> "icmp.code"
  | Tun_id -> "tun.id"

let pp fmt f = Format.pp_print_string fmt (to_string f)

let of_string = function
  | "sip" -> Src_ip | "dip" -> Dst_ip | "proto" -> Proto
  | "sport" -> Src_port | "dport" -> Dst_port | "tcp.flags" -> Tcp_flags
  | "tcp.seq" -> Tcp_seq | "tcp.ack" -> Tcp_ack | "len" -> Pkt_len
  | "payload_len" -> Payload_len | "ttl" -> Ttl | "dns.qr" -> Dns_qr
  | "dns.ancount" -> Dns_ancount | "ig_port" -> Ingress_port
  | "ip.ver" -> Ip_ver | "icmp.type" -> Icmp_type | "icmp.code" -> Icmp_code
  | "tun.id" -> Tun_id
  | s -> invalid_arg ("Field.of_string: unknown field " ^ s)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = compare (index a) (index b)

(** TCP flag bit positions, for building flag constants in queries. *)
module Tcp_flag = struct
  let fin = 0x01
  let syn = 0x02
  let rst = 0x04
  let psh = 0x08
  let ack = 0x10
  let urg = 0x20
  let syn_ack = syn lor ack
end

(** Common protocol numbers. *)
module Protocol = struct
  let icmp = 1
  let tcp = 6
  let udp = 17
  let gre = 47
  let icmpv6 = 58
end
