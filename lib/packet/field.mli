(** The global header-field set the PHV carries; Newton's K module
    selects (masked) subsets of these as operation keys. *)

type t =
  | Src_ip          (** IPv4 source address, 32 bits *)
  | Dst_ip          (** IPv4 destination address, 32 bits *)
  | Proto           (** IP protocol number, 8 bits *)
  | Src_port        (** L4 source port, 16 bits *)
  | Dst_port        (** L4 destination port, 16 bits *)
  | Tcp_flags       (** TCP control flags, 8 bits *)
  | Tcp_seq         (** TCP sequence number, 32 bits *)
  | Tcp_ack         (** TCP acknowledgement number, 32 bits *)
  | Pkt_len         (** total IP length in bytes, 16 bits *)
  | Payload_len     (** L4 payload length in bytes, 16 bits *)
  | Ttl             (** IP TTL, 8 bits *)
  | Dns_qr          (** DNS query/response bit, 1 bit *)
  | Dns_ancount     (** DNS answer count, 16 bits *)
  | Ingress_port    (** switch ingress port metadata, 9 bits *)
  | Ip_ver          (** IP version nibble (4 or 6), 4 bits *)
  | Icmp_type       (** ICMP/ICMPv6 message type, 8 bits *)
  | Icmp_code       (** ICMP/ICMPv6 message code, 8 bits *)
  | Tun_id          (** tunnel id: VXLAN VNI / GRE key (0 = not tunneled), 24 bits *)

(** Every field, in {!index} order. *)
val all : t list

val count : int

(** Dense index in [0, count). *)
val index : t -> int

(** @raise Invalid_argument outside [0, count). *)
val of_index : int -> t

(** Bit width of the field. *)
val width : t -> int

(** All-ones mask of the field's width. *)
val full_mask : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Inverse of {!to_string}.
    @raise Invalid_argument on an unknown name. *)
val of_string : string -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** TCP control-flag bit constants. *)
module Tcp_flag : sig
  val fin : int
  val syn : int
  val rst : int
  val psh : int
  val ack : int
  val urg : int
  val syn_ack : int
end

(** Common IP protocol numbers. *)
module Protocol : sig
  val icmp : int
  val tcp : int
  val udp : int
  val gre : int
  val icmpv6 : int
end
