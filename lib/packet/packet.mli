(** Packet representation: a timestamp plus a dense vector of global
    header-field values (see {!Field}); allocation-free access in the
    pipeline's hot loop. *)

type t

val num_fields : int

(** An all-zero packet. *)
val create : ?ts:float -> unit -> t

val get : t -> Field.t -> int

(** Set a field; the value is truncated to the field's width. *)
val set : t -> Field.t -> int -> unit

(** Arrival time, seconds since trace start. *)
val ts : t -> float

(** Same fields, different timestamp. *)
val with_ts : t -> float -> t

val copy : t -> t

(** A packet-major field-word buffer (the {!Flat} arena backing store).
    A Bigarray, not an [int array]: arena contents live outside the
    scanned OCaml heap, so multi-million-packet arenas add nothing to
    major-GC mark work. *)
type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [blit_fields p dst off] copies the packet's [num_fields] field words
    into [dst] starting at [off] — the record→arena half of the {!Flat}
    conversion boundary.  No bounds checks; the caller guarantees
    [off + num_fields <= dim dst]. *)
val blit_fields : t -> words -> int -> unit

(** [of_fields ~ts src off] rebuilds a packet from [num_fields] words of
    [src] at [off] — the arena→record half.  No bounds checks. *)
val of_fields : ts:float -> words -> int -> t

(** Construct a packet from common header values; unset fields default
    to zero (length 64, TTL 64, IP version 4). *)
val make :
  ?ts:float -> ?src_ip:int -> ?dst_ip:int -> ?proto:int -> ?src_port:int ->
  ?dst_port:int -> ?tcp_flags:int -> ?tcp_seq:int -> ?tcp_ack:int ->
  ?pkt_len:int -> ?payload_len:int -> ?ttl:int -> ?dns_qr:int ->
  ?dns_ancount:int -> ?ingress_port:int -> ?ip_ver:int -> ?icmp_type:int ->
  ?icmp_code:int -> ?tun_id:int -> unit -> t

val is_tcp : t -> bool
val is_udp : t -> bool

(** [has_flags p mask] — all bits of [mask] set in the TCP flags. *)
val has_flags : t -> int -> bool

(** TCP with flags exactly SYN. *)
val is_syn : t -> bool

val is_syn_ack : t -> bool
val is_fin : t -> bool

(** Dotted-quad rendering of an int-encoded IPv4. *)
val ip_to_string : int -> string

(** @raise Invalid_argument on a malformed dotted quad. *)
val ip_of_string : string -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
