(** Flat packet arenas — contiguous packet-major field words plus an
    unboxed timestamp array; the hot-loop representation of a packet
    stream.  Conversion to/from {!Packet.t} happens only at the arena
    boundary; replay then runs allocation-free over the raw buffers. *)

type t

(** Words per packet in the field buffer ([= Packet.num_fields]). *)
val stride_words : int

(** An all-zero arena of [len] packets.
    @raise Invalid_argument on a negative length. *)
val create : int -> t

val length : t -> int

(** Words per packet ([stride_words]). *)
val stride : t -> int

(** The raw packet-major word buffer (a {!Packet.words} Bigarray, off
    the scanned OCaml heap): packet [i]'s field [f] is at
    [i * stride t + Field.index f].  Hot-loop access only — other
    callers should use {!get}/{!get_idx}. *)
val field_words : t -> Packet.words

(** The raw timestamp buffer, parallel to the packet index.  Hot-loop
    access only. *)
val timestamps : t -> float array

(** Fill slot [i] from a packet (record→arena).
    @raise Invalid_argument when [i] is out of range. *)
val set_packet : t -> int -> Packet.t -> unit

(** Build an arena from a packet array, preserving order. *)
val of_packets : Packet.t array -> t

(** @raise Invalid_argument when the index is out of range. *)
val get : t -> int -> Field.t -> int

(** Field by dense {!Field.index}.
    @raise Invalid_argument when the packet index is out of range. *)
val get_idx : t -> int -> int -> int

(** @raise Invalid_argument when the index is out of range. *)
val ts : t -> int -> float

(** Rebuild slot [i] as a packet (arena→record).
    @raise Invalid_argument when [i] is out of range. *)
val to_packet : t -> int -> Packet.t

val to_packets : t -> Packet.t array

(** Heap footprint of the arena buffers in bytes. *)
val bytes : t -> int
