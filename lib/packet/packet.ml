(** Packet representation.

    A packet is a timestamp plus a dense vector of global header-field
    values (see {!Field}).  Values are stored as plain [int]s — every field
    we model is at most 32 bits, which fits OCaml's 63-bit native int with
    room to spare.  The dense-array layout keeps per-packet processing
    allocation-free in the pipeline's hot loop. *)

type t = {
  ts : float;          (** arrival time in seconds since trace start *)
  fields : int array;  (** indexed by [Field.index] *)
}

let num_fields = Field.count

let create ?(ts = 0.0) () = { ts; fields = Array.make num_fields 0 }

let get t f = t.fields.(Field.index f)
let set t f v = t.fields.(Field.index f) <- v land Field.full_mask f

let ts t = t.ts
let with_ts t ts = { t with ts }

let copy t = { ts = t.ts; fields = Array.copy t.fields }

(* Flat-arena boundary: bulk moves between the record representation
   and a packet-major word buffer (see {!Flat}).  The buffer is a
   Bigarray so arena contents live outside the scanned OCaml heap —
   a multi-million-packet arena adds nothing to major-GC mark work. *)
type words = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let blit_fields t (dst : words) off =
  for j = 0 to num_fields - 1 do
    Bigarray.Array1.unsafe_set dst (off + j) (Array.unsafe_get t.fields j)
  done

let of_fields ~ts (src : words) off =
  let fields = Array.make num_fields 0 in
  for j = 0 to num_fields - 1 do
    Array.unsafe_set fields j (Bigarray.Array1.unsafe_get src (off + j))
  done;
  { ts; fields }

(** Construct a packet from common header values. Unset fields default
    to zero (as a parser would leave invalid headers). *)
let make ?(ts = 0.0) ?(src_ip = 0) ?(dst_ip = 0) ?(proto = 0) ?(src_port = 0)
    ?(dst_port = 0) ?(tcp_flags = 0) ?(tcp_seq = 0) ?(tcp_ack = 0)
    ?(pkt_len = 64) ?(payload_len = 0) ?(ttl = 64) ?(dns_qr = 0)
    ?(dns_ancount = 0) ?(ingress_port = 0) ?(ip_ver = 4) ?(icmp_type = 0)
    ?(icmp_code = 0) ?(tun_id = 0) () =
  let p = create ~ts () in
  set p Src_ip src_ip;
  set p Dst_ip dst_ip;
  set p Proto proto;
  set p Src_port src_port;
  set p Dst_port dst_port;
  set p Tcp_flags tcp_flags;
  set p Tcp_seq tcp_seq;
  set p Tcp_ack tcp_ack;
  set p Pkt_len pkt_len;
  set p Payload_len payload_len;
  set p Ttl ttl;
  set p Dns_qr dns_qr;
  set p Dns_ancount dns_ancount;
  set p Ingress_port ingress_port;
  set p Ip_ver ip_ver;
  set p Icmp_type icmp_type;
  set p Icmp_code icmp_code;
  set p Tun_id tun_id;
  p

let is_tcp t = get t Proto = Field.Protocol.tcp
let is_udp t = get t Proto = Field.Protocol.udp

let has_flags t mask = get t Tcp_flags land mask = mask
let is_syn t = is_tcp t && get t Tcp_flags = Field.Tcp_flag.syn
let is_syn_ack t = is_tcp t && has_flags t Field.Tcp_flag.syn_ack
let is_fin t = is_tcp t && has_flags t Field.Tcp_flag.fin

(** Pretty-print an IPv4 address stored as an int. *)
let ip_to_string ip =
  Printf.sprintf "%d.%d.%d.%d"
    ((ip lsr 24) land 0xff) ((ip lsr 16) land 0xff)
    ((ip lsr 8) land 0xff) (ip land 0xff)

let ip_of_string s =
  match String.split_on_char '.' s |> List.map int_of_string with
  | [ a; b; c; d ]
    when List.for_all (fun x -> x >= 0 && x <= 255) [ a; b; c; d ] ->
      (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
  | _ -> invalid_arg ("Packet.ip_of_string: " ^ s)
  | exception _ -> invalid_arg ("Packet.ip_of_string: " ^ s)

let to_string t =
  Printf.sprintf "[%.6f] %s:%d -> %s:%d proto=%d flags=0x%02x len=%d"
    t.ts
    (ip_to_string (get t Src_ip)) (get t Src_port)
    (ip_to_string (get t Dst_ip)) (get t Dst_port)
    (get t Proto) (get t Tcp_flags) (get t Pkt_len)

let pp fmt t = Format.pp_print_string fmt (to_string t)
