(** Flat packet arenas — the zero-copy hot-loop representation.

    A {!Packet.t} is a record holding a boxed float and a pointer to a
    14-word field array: replaying millions of packets through it means
    two dereferences per field read and a cache-hostile heap layout.  An
    arena stores the same data as two contiguous unboxed buffers:

    - [fields] — packet-major words in a Bigarray ({!Packet.words}),
      [stride = Field.count] per packet, so packet [i]'s field [f]
      lives at [i * stride + Field.index f].  A Bigarray rather than an
      [int array]: an [int array] is a scannable heap block, so a 2M×14
      word arena would add ~30M words to every major-GC mark pass —
      Bigarray storage is invisible to the GC.
    - [ts] — an unboxed [float array] of arrival times (flat already:
      float arrays are unscanned [Double_array_tag] blocks).

    Conversion happens once at the arena boundary ({!of_packets} /
    {!to_packet}); the replay loop then touches only word/float loads
    with no per-packet allocation.  The raw buffers are exposed
    ({!field_words}, {!timestamps}) for the compiled executor — callers
    other than the hot loop should stay on the indexed accessors. *)

type t = {
  len : int;
  stride : int;            (* words per packet = Field.count *)
  ts : float array;        (* unboxed arrival times *)
  fields : Packet.words;   (* len * stride, packet-major, off-heap *)
}

let stride_words = Packet.num_fields

let create len =
  if len < 0 then invalid_arg "Flat.create: negative length";
  let fields =
    Bigarray.Array1.create Bigarray.int Bigarray.c_layout
      (max 1 (len * stride_words))
  in
  (* Bigarray memory is uninitialised; match Array.make semantics. *)
  Bigarray.Array1.fill fields 0;
  { len; stride = stride_words; ts = Array.make (max 1 len) 0.0; fields }

let length t = t.len
let stride t = t.stride

(** The raw packet-major word buffer (hot-loop access only). *)
let field_words t = t.fields

(** The raw timestamp buffer (hot-loop access only). *)
let timestamps t = t.ts

let check_index t i op =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Flat.%s: index %d out of range [0,%d)" op i t.len)

(** Fill slot [i] from a packet (record→arena). *)
let set_packet t i pkt =
  check_index t i "set_packet";
  t.ts.(i) <- Packet.ts pkt;
  Packet.blit_fields pkt t.fields (i * t.stride)

(** Build an arena from a packet array, preserving order. *)
let of_packets packets =
  let t = create (Array.length packets) in
  Array.iteri (fun i pkt -> set_packet t i pkt) packets;
  t

let get t i f =
  check_index t i "get";
  Bigarray.Array1.get t.fields ((i * t.stride) + Field.index f)

(** Field by dense {!Field.index} (no bounds check on the field). *)
let get_idx t i fidx =
  check_index t i "get_idx";
  Bigarray.Array1.get t.fields ((i * t.stride) + fidx)

let ts t i =
  check_index t i "ts";
  t.ts.(i)

(** Rebuild slot [i] as a packet (arena→record). *)
let to_packet t i =
  check_index t i "to_packet";
  Packet.of_fields ~ts:t.ts.(i) t.fields (i * t.stride)

let to_packets t = Array.init t.len (to_packet t)

(** Heap footprint of the arena buffers, in bytes (words are 8 bytes on
    a 64-bit runtime) — for bench reporting. *)
let bytes t = 8 * (t.len + (t.len * t.stride))
