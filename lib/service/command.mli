(** Operator-command tokenizer shared by [newton shell], the service
    daemon's plain-text protocol and the [newton intent] client, so
    quoting and error behavior cannot drift between surfaces. *)

(** Split a command line into tokens.  Spaces/tabs separate; single
    quotes are literal; double quotes honor backslash escapes for
    quote, backslash, [n] and [t]; quotes may be embedded mid-token.
    [Error msg] on an unterminated quote or escape. *)
val tokenize : string -> (string list, string) result
