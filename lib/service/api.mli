(** The typed request/response surface of the service daemon.

    One variant per command and per reply, each with a stable JSON
    codec (one object per line on the wire).  The daemon, the
    [newton intent] client and the tests all go through this module so
    the protocol cannot drift from the types.  Times and latencies
    travel as integer microseconds ([*_us] members). *)

(** How the operator names a query: a catalog id ([q4]) or DSL text. *)
type query_spec = Catalog of int | Dsl of string

type stats_format = Json_format | Prometheus_format

type request =
  | Submit of { spec : query_spec; name : string option }
  | Withdraw of int       (** intent id *)
  | List_intents
  | Status of int         (** intent id *)
  | Stats of stats_format
  | Fail_switch of int
  | Repair_switch of int
  | Shutdown

val spec_to_string : query_spec -> string

(** ["q<digits>"] reads as {!Catalog}, anything else as {!Dsl}. *)
val spec_of_string : string -> query_spec

val stats_format_to_string : stats_format -> string
val stats_format_of_string : string -> stats_format option

val request_to_json : request -> Newton_util.Json.t
val request_of_json : Newton_util.Json.t -> (request, string) result

(** Operator-text form (tokens from {!Command.tokenize}), shared by the
    daemon's plain-text protocol and the [newton intent] CLI:
    {v
      submit q4 | submit <dsl...> [as <name>]
      withdraw <id> | status <id> | list
      stats [json|prom] | fail-switch <s> | repair-switch <s> | shutdown
    v} *)
val request_of_tokens : string list -> (request, string) result

(** Result of a fail/repair event the recovery engine handled. *)
type recovery_info = {
  rc_switch : int;
  rc_event : [ `Fail | `Repair ];
  rc_slices_migrated : int;
  rc_cells_moved : int;
  rc_software_fallbacks : int;
  rc_rules_installed : int;
  rc_latency : float;
}

type response =
  | Accepted of Intent.info
      (** submit succeeded; the intent is [Active] *)
  | Refused of { id : int; diags : Newton_analysis.Diag.t list }
      (** submit refused; the intent is [Failed] with these diagnostics *)
  | Withdrawn_ok of { id : int; latency : float }
  | Intent_list of Intent.info list
  | Intent_status of Intent.info
  | Stats_payload of { format : stats_format; body : string }
  | Recovery_done of recovery_info option
      (** [None] when the switch was already in the requested state *)
  | Stopping
  | Error_resp of { code : string; message : string }

val response_to_json : response -> Newton_util.Json.t
val response_of_json : Newton_util.Json.t -> (response, string) result

(** Line framing: parse/render one newline-delimited JSON message. *)
val request_of_line : string -> (request, string) result

val response_of_line : string -> (response, string) result
val request_to_line : request -> string
val response_to_line : response -> string

(** Human rendering for the [newton intent] client. *)
val response_summary : response -> string

(** [false] exactly for [Refused] and [Error_resp] (client exit code). *)
val response_is_ok : response -> bool
