(** The first-class intent lifecycle behind the service daemon.

    {v
      Submitted --> Analyzed --> Placed --> Active --> Withdrawn
          |             |           |          |
          +-------------+-----------+----------+--> Failed
    v}

    [Withdrawn] and [Failed] are terminal; every transition is legality
    checked and timestamped. *)

type state = Submitted | Analyzed | Placed | Active | Failed | Withdrawn

val state_to_string : state -> string
val state_of_string : string -> state option
val all_states : state list
val is_terminal : state -> bool

(** The legal lifecycle edges: the happy path is strictly ordered
    (never [Active] without [Placed]), [Failed] is reachable from every
    non-terminal state, terminals have no successors. *)
val can_transition : state -> state -> bool

type t = {
  id : int;                         (** daemon-assigned intent id *)
  name : string;
  query : Newton_query.Ast.t;
  source : string;                  (** what the operator submitted *)
  mutable state : state;
  mutable diags : Newton_analysis.Diag.t list;
      (** admission-gate diagnostics *)
  mutable uid : int option;         (** controller deployment uid *)
  mutable rules : int;              (** table rules installed *)
  mutable install_latency : float option;
  mutable uninstall_latency : float option;
  submitted_at : float;
  mutable installed_at : float option;
  mutable finished_at : float option;
  mutable history : (state * float) list;  (** reverse order *)
}

val create :
  id:int -> name:string -> source:string -> now:float ->
  Newton_query.Ast.t -> t

(** Move to a new state, recording the timestamp; [Error] (and no
    mutation) on an illegal edge. *)
val transition : t -> now:float -> state -> (unit, string) result

(** Transition history, oldest first (starts with [Submitted]). *)
val history : t -> (state * float) list

(** The wire-facing summary served by [list]/[status] (and embedded in
    submit responses). *)
type info = {
  i_id : int;
  i_name : string;
  i_query_id : int;
  i_source : string;
  i_state : state;
  i_rules : int;
  i_reports : int;        (** reports attributed to the intent's query *)
  i_warnings : int;
  i_errors : int;
  i_submitted_at : float;
  i_installed_at : float option;
  i_finished_at : float option;
  i_install_latency : float option;
  i_uninstall_latency : float option;
  i_diags : Newton_analysis.Diag.t list;
}

val info : ?reports:int -> t -> info

(** Stable JSON codec.  Times and latencies travel as integer
    microseconds ([*_us] members) so epoch timestamps survive the
    minimal JSON layer's float rendering. *)
val info_to_json : info -> Newton_util.Json.t

val info_of_json : Newton_util.Json.t -> (info, string) result

(** Diagnostics decoder (inverse of {!Newton_analysis.Diag.to_json}),
    shared with the response codecs. *)
val diag_of_json :
  Newton_util.Json.t -> (Newton_analysis.Diag.t, string) result

val diags_of_json :
  Newton_util.Json.t -> (Newton_analysis.Diag.t list, string) result

(** One-line operator rendering for [newton intent list]. *)
val info_to_string : info -> string
