(** The daemon's background replay driver: a time-sorted packet array
    fed into [Deploy.process_packet] in bounded steps between socket
    events, so intents install and withdraw while traffic is flowing.
    The clock is a parameter ([~now]) so tests drive replay
    deterministically. *)

type pace =
  | Asap  (** as fast as the event loop allows *)
  | Realtime of float
      (** schedule packets at trace timestamps divided by the speedup *)

type t

val of_packets :
  ?pace:pace -> topo:Newton_network.Topo.t -> desc:string ->
  Newton_packet.Packet.t array -> t

val of_trace :
  ?pace:pace -> topo:Newton_network.Topo.t -> desc:string ->
  Newton_trace.Gen.t -> t

(** Load from disk: [.pcap]/[.pcapng]/[.cap] through the ingest decoder,
    anything else through [Trace_io].  Raises as those loaders do on
    unreadable input. *)
val load : ?pace:pace -> topo:Newton_network.Topo.t -> string -> t

val length : t -> int
val position : t -> int
val finished : t -> bool
val source : t -> string

(** Replay-side counters ([Packets_processed]); label and merge into
    the daemon's snapshot. *)
val stats : t -> Newton_telemetry.Stats.sink

(** Seconds until the next packet is due ([Some 0.] when due now),
    [None] when the trace is exhausted — the daemon's select timeout. *)
val next_due_in : t -> now:float -> float option

(** Process up to [budget] due packets through the deploy; returns how
    many were processed.  Under [Realtime] pacing the first call fixes
    the schedule origin at [now]. *)
val step : t -> now:float -> budget:int -> Newton_controller.Deploy.t -> int

(** Drain the remainder ignoring pacing (bench/test epilogue); returns
    packets processed. *)
val run_to_end : t -> Newton_controller.Deploy.t -> int
