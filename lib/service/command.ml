(** The operator-command tokenizer shared by every text surface that
    parses commands — [newton shell], the service daemon's plain-text
    protocol and the [newton intent] client.  One implementation means
    quoting and error behavior cannot drift between them.

    Rules: tokens are separated by runs of spaces/tabs; single quotes
    take everything up to the closing quote literally; double quotes
    additionally honor backslash escapes for quote, backslash, [n] and
    [t]; quotes may be embedded mid-token.  An unterminated quote or a
    trailing backslash is an error, never a silent guess. *)

let tokenize line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let toks = ref [] in
  let in_token = ref false in
  let flush () =
    if !in_token then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf;
      in_token := false
    end
  in
  let rec go i =
    if i >= n then Ok ()
    else
      match line.[i] with
      | ' ' | '\t' ->
          flush ();
          go (i + 1)
      | '\'' -> (
          in_token := true;
          match String.index_from_opt line (i + 1) '\'' with
          | None -> Error "unterminated single quote"
          | Some j ->
              Buffer.add_substring buf line (i + 1) (j - i - 1);
              go (j + 1))
      | '"' ->
          in_token := true;
          let rec dq i =
            if i >= n then Error "unterminated double quote"
            else
              match line.[i] with
              | '"' -> Ok (i + 1)
              | '\\' ->
                  if i + 1 >= n then Error "unterminated escape in double quote"
                  else begin
                    (match line.[i + 1] with
                    | '"' -> Buffer.add_char buf '"'
                    | '\\' -> Buffer.add_char buf '\\'
                    | 'n' -> Buffer.add_char buf '\n'
                    | 't' -> Buffer.add_char buf '\t'
                    | c ->
                        (* unknown escape: keep both characters *)
                        Buffer.add_char buf '\\';
                        Buffer.add_char buf c);
                    dq (i + 2)
                  end
              | c ->
                  Buffer.add_char buf c;
                  dq (i + 1)
          in
          Result.bind (dq (i + 1)) go
      | c ->
          in_token := true;
          Buffer.add_char buf c;
          go (i + 1)
  in
  match go 0 with
  | Error _ as e -> e
  | Ok () ->
      flush ();
      Ok (List.rev !toks)
