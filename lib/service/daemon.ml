(** The long-running controller daemon.

    Owns a {!Newton_controller.Deploy.t} plus the intent table, and
    exposes one pure entry point — {!handle} : request -> response —
    that the socket loop, the tests and the bench all share.  The
    socket loop ({!serve}) speaks newline-delimited JSON (and a
    plain-text operator fallback via {!Command}) over a Unix or TCP
    socket, and interleaves request handling with bounded replay steps
    so intents install and withdraw while traffic is flowing. *)

module Deploy = Newton_controller.Deploy
module Stats = Newton_telemetry.Stats
module Snapshot = Newton_telemetry.Snapshot
module Export = Newton_telemetry.Export
module Diag = Newton_analysis.Diag
module Check = Newton_analysis.Check

type t = {
  deploy : Deploy.t;
  stages_per_switch : int;
  mode : Deploy.mode;
  replay : Replay.t option;
  replay_budget : int;
  sink : Stats.sink;  (* service-level counters, stage="service" *)
  intents : (int, Intent.t) Hashtbl.t;
  mutable order : int list;  (* submission order, newest first *)
  mutable next_id : int;
  mutable stopping : bool;
  clock : unit -> float;
}

let create ?(clock = Unix.gettimeofday) ?(stages_per_switch = 12)
    ?(mode = `Cqe) ?(replay_budget = 2048) ?replay topo =
  {
    deploy = Deploy.create topo;
    stages_per_switch;
    mode;
    replay;
    replay_budget;
    sink = Stats.create ();
    intents = Hashtbl.create 16;
    order = [];
    next_id = 1;
    stopping = false;
    clock;
  }

let deploy t = t.deploy
let stopping t = t.stopping
let replay t = t.replay

(* DSL intents get query ids far above the catalog range so their
   reports never collide with catalog queries. *)
let dsl_query_id id = 1000 + id

let resolve_spec t ~name spec =
  match spec with
  | Api.Catalog n -> (
      match Newton_query.Catalog.find n with
      | Some q -> Ok q
      | None -> (
          match
            List.find_opt
              (fun q -> q.Newton_query.Ast.id = n)
              (Newton_query.Catalog.extras ())
          with
          | Some q -> Ok q
          | None -> Error (Printf.sprintf "unknown catalog query q%d" n)))
  | Api.Dsl text ->
      let id = dsl_query_id t.next_id in
      let name =
        match name with Some n -> n | None -> Printf.sprintf "intent-%d" t.next_id
      in
      Newton_query.Parser.parse_result ~id ~name text

(* Reports per query id, computed once per list/status request. *)
let report_counts t =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let q = r.Newton_query.Report.query_id in
      Hashtbl.replace counts q (1 + Option.value ~default:0 (Hashtbl.find_opt counts q)))
    (Deploy.reconciled_reports t.deploy);
  fun query_id -> Option.value ~default:0 (Hashtbl.find_opt counts query_id)

let intent_info counts intent =
  Intent.info ~reports:(counts intent.Intent.query.Newton_query.Ast.id) intent

let intents t =
  let counts = report_counts t in
  List.rev_map (fun id -> intent_info counts (Hashtbl.find t.intents id)) t.order

(* must_transition: lifecycle edges the daemon takes are legal by
   construction; a refusal here is a daemon bug, so it is loud. *)
let must_transition intent ~now state =
  match Intent.transition intent ~now state with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Daemon: " ^ msg)

let fail_intent t intent ~now diags =
  intent.Intent.diags <- diags;
  must_transition intent ~now Intent.Failed;
  Stats.bump t.sink Stats.Intents_failed 1;
  Api.Refused { id = intent.Intent.id; diags }

let submit t ~spec ~name =
  let now = t.clock () in
  match resolve_spec t ~name spec with
  | Error msg -> Api.Error_resp { code = "bad-query"; message = msg }
  | Ok query ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let intent =
        Intent.create ~id ~name:query.Newton_query.Ast.name
          ~source:(Api.spec_to_string spec) ~now query
      in
      Hashtbl.replace t.intents id intent;
      t.order <- id :: t.order;
      Stats.bump t.sink Stats.Intents_submitted 1;
      (* Analysis stage: solo diagnostics ride on the intent whatever
         happens next. *)
      let solo = Check.check_query query in
      intent.Intent.diags <- solo;
      must_transition intent ~now:(t.clock ()) Intent.Analyzed;
      if Diag.has_errors solo then fail_intent t intent ~now:(t.clock ()) solo
      else begin
        let compiled = Newton_compiler.Compose.compile query in
        match
          Deploy.deploy_checked ~mode:t.mode
            ~stages_per_switch:t.stages_per_switch t.deploy compiled
        with
        | Error diags ->
            (* the admission gate saw the deployed set; its verdict
               supersedes the solo diagnostics *)
            fail_intent t intent ~now:(t.clock ()) diags
        | Ok (uid, latency) ->
            must_transition intent ~now:(t.clock ()) Intent.Placed;
            intent.Intent.uid <- Some uid;
            intent.Intent.install_latency <- Some latency;
            (match Deploy.find_deployment t.deploy uid with
            | Some d -> intent.Intent.rules <- d.Deploy.installed_rules
            | None -> ());
            must_transition intent ~now:(t.clock ()) Intent.Active;
            Api.Accepted (intent_info (report_counts t) intent)
      end

let withdraw t id =
  match Hashtbl.find_opt t.intents id with
  | None ->
      Api.Error_resp
        { code = "unknown-intent"; message = Printf.sprintf "no intent #%d" id }
  | Some intent -> (
      match (intent.Intent.state, intent.Intent.uid) with
      | Intent.Active, Some uid ->
          let latency = Option.value ~default:0. (Deploy.undeploy t.deploy uid) in
          intent.Intent.uninstall_latency <- Some latency;
          must_transition intent ~now:(t.clock ()) Intent.Withdrawn;
          Stats.bump t.sink Stats.Intents_withdrawn 1;
          Api.Withdrawn_ok { id; latency }
      | state, _ ->
          Api.Error_resp
            {
              code = "bad-state";
              message =
                Printf.sprintf "intent #%d is %s, only active intents withdraw"
                  id
                  (Intent.state_to_string state);
            })

let snapshot t =
  let service = Snapshot.of_sink t.sink in
  let replayed =
    match t.replay with
    | None -> Snapshot.empty
    | Some r ->
        Snapshot.of_sink ~labels:[ ("stage", "replay") ] (Replay.stats r)
  in
  Snapshot.merge_all [ Deploy.snapshot t.deploy; service; replayed ]

let stats_body t fmt =
  let snap = snapshot t in
  match fmt with
  | Api.Json_format -> Export.to_json_string snap
  | Api.Prometheus_format -> Export.to_prometheus snap

let recovery_info (ev : [ `Fail | `Repair ]) (r : Deploy.recovery) =
  {
    Api.rc_switch = r.Deploy.r_switch;
    rc_event = ev;
    rc_slices_migrated = r.Deploy.r_slices_migrated;
    rc_cells_moved = r.Deploy.r_cells_moved;
    rc_software_fallbacks = r.Deploy.r_software_fallbacks;
    rc_rules_installed = r.Deploy.r_rules_installed;
    rc_latency = r.Deploy.r_latency;
  }

let handle t request =
  match request with
  | Api.Submit { spec; name } -> submit t ~spec ~name
  | Api.Withdraw id -> withdraw t id
  | Api.List_intents -> Api.Intent_list (intents t)
  | Api.Status id -> (
      match Hashtbl.find_opt t.intents id with
      | Some intent -> Api.Intent_status (intent_info (report_counts t) intent)
      | None ->
          Api.Error_resp
            {
              code = "unknown-intent";
              message = Printf.sprintf "no intent #%d" id;
            })
  | Api.Stats fmt -> Api.Stats_payload { format = fmt; body = stats_body t fmt }
  | Api.Fail_switch s -> (
      match Deploy.fail_switch t.deploy s with
      | r -> Api.Recovery_done (Option.map (recovery_info `Fail) r)
      | exception Invalid_argument msg ->
          Api.Error_resp { code = "bad-switch"; message = msg })
  | Api.Repair_switch s -> (
      match Deploy.repair_switch t.deploy s with
      | r -> Api.Recovery_done (Option.map (recovery_info `Repair) r)
      | exception Invalid_argument msg ->
          Api.Error_resp { code = "bad-switch"; message = msg })
  | Api.Shutdown ->
      t.stopping <- true;
      Api.Stopping

(* One wire line -> one response.  A '{' prefix selects the JSON
   protocol; anything else is operator text through the shared
   tokenizer. *)
let handle_line t line =
  let parsed =
    let trimmed = String.trim line in
    if trimmed = "" then Error "empty line"
    else if trimmed.[0] = '{' then Api.request_of_line trimmed
    else
      Result.bind (Command.tokenize trimmed) Api.request_of_tokens
  in
  match parsed with
  | Ok request -> handle t request
  | Error message -> Api.Error_resp { code = "bad-request"; message }

let replay_step t =
  match t.replay with
  | None -> 0
  | Some r ->
      Replay.step r ~now:(t.clock ()) ~budget:t.replay_budget t.deploy

(* ---------------- the socket loop ---------------- *)

type listen = Unix_socket of string | Tcp of int

type client = { fd : Unix.file_descr; buf : Buffer.t }

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0

(* Drain complete lines out of a client buffer, leaving any partial
   trailing line in place. *)
let take_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
      Buffer.clear buf;
      Buffer.add_string buf
        (String.sub s (last + 1) (String.length s - last - 1));
      String.split_on_char '\n' (String.sub s 0 last)

let serve ?(log = ignore) t listen =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let sock, cleanup =
    match listen with
    | Unix_socket path ->
        if Sys.file_exists path then Sys.remove path;
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind sock (Unix.ADDR_UNIX path);
        (sock, fun () -> if Sys.file_exists path then Sys.remove path)
    | Tcp port ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt sock Unix.SO_REUSEADDR true;
        Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        (sock, fun () -> ())
  in
  Unix.listen sock 16;
  log
    (Printf.sprintf "listening on %s"
       (match listen with
       | Unix_socket p -> p
       | Tcp p -> Printf.sprintf "127.0.0.1:%d" p));
  let clients = ref [] in
  let close_client c =
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    clients := List.filter (fun c' -> c' != c) !clients
  in
  let scratch = Bytes.create 65536 in
  let serve_client c =
    List.iter
      (fun line ->
        if String.trim line <> "" then begin
          let resp = handle_line t line in
          write_all c.fd (Api.response_to_line resp ^ "\n")
        end)
      (take_lines c.buf)
  in
  while not t.stopping do
    let timeout =
      match t.replay with
      | None -> 0.2
      | Some r -> (
          if Replay.finished r then 0.2
          else
            match Replay.next_due_in r ~now:(t.clock ()) with
            | None -> 0.2
            | Some dt -> Float.min 0.2 (Float.max 0. dt))
    in
    let fds = sock :: List.map (fun c -> c.fd) !clients in
    let readable, _, _ =
      match Unix.select fds [] [] timeout with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd = sock then begin
          let cfd, _ = Unix.accept sock in
          clients := { fd = cfd; buf = Buffer.create 256 } :: !clients
        end
        else
          match List.find_opt (fun c -> c.fd = fd) !clients with
          | None -> ()
          | Some c -> (
              match Unix.read fd scratch 0 (Bytes.length scratch) with
              | 0 -> close_client c
              | n ->
                  Buffer.add_subbytes c.buf scratch 0 n;
                  serve_client c
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                  close_client c))
      readable;
    ignore (replay_step t)
  done;
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) !clients;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  cleanup ();
  log "daemon stopped"
