(** The typed request/response surface of the service daemon.

    Every command and reply is a variant with a stable JSON codec —
    the daemon, the [newton intent] client and the tests all speak
    through this module, so the wire format cannot drift from the
    types.  On the wire a message is one JSON object per line
    (newline-delimited); the daemon also accepts plain operator text
    ("submit q4") tokenized by {!Command} and mapped by
    {!request_of_tokens}. *)

open Newton_util

(* ---------------- requests ---------------- *)

type query_spec = Catalog of int | Dsl of string

type stats_format = Json_format | Prometheus_format

type request =
  | Submit of { spec : query_spec; name : string option }
  | Withdraw of int
  | List_intents
  | Status of int
  | Stats of stats_format
  | Fail_switch of int
  | Repair_switch of int
  | Shutdown

let spec_to_string = function
  | Catalog n -> Printf.sprintf "q%d" n
  | Dsl s -> s

(* "q<digits>" reads as a catalog reference, anything else as DSL
   text; the DSL grammar has no bare q<N> atom, so the two cannot
   collide. *)
let spec_of_string s =
  if
    String.length s > 1
    && s.[0] = 'q'
    && String.for_all (fun c -> c >= '0' && c <= '9')
         (String.sub s 1 (String.length s - 1))
  then Catalog (int_of_string (String.sub s 1 (String.length s - 1)))
  else Dsl s

let stats_format_to_string = function
  | Json_format -> "json"
  | Prometheus_format -> "prometheus"

let stats_format_of_string = function
  | "json" -> Some Json_format
  | "prometheus" | "prom" -> Some Prometheus_format
  | _ -> None

let request_to_json = function
  | Submit { spec; name } ->
      Json.Obj
        (("cmd", Json.String "submit")
         :: ("query", Json.String (spec_to_string spec))
         :: (match name with
            | None -> []
            | Some n -> [ ("name", Json.String n) ]))
  | Withdraw id ->
      Json.Obj [ ("cmd", Json.String "withdraw"); ("id", Json.Int id) ]
  | List_intents -> Json.Obj [ ("cmd", Json.String "list") ]
  | Status id ->
      Json.Obj [ ("cmd", Json.String "status"); ("id", Json.Int id) ]
  | Stats fmt ->
      Json.Obj
        [
          ("cmd", Json.String "stats");
          ("format", Json.String (stats_format_to_string fmt));
        ]
  | Fail_switch s ->
      Json.Obj [ ("cmd", Json.String "fail-switch"); ("switch", Json.Int s) ]
  | Repair_switch s ->
      Json.Obj [ ("cmd", Json.String "repair-switch"); ("switch", Json.Int s) ]
  | Shutdown -> Json.Obj [ ("cmd", Json.String "shutdown") ]

let int_member name j =
  match Option.bind (Json.member name j) Json.to_int_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "request: missing int member %S" name)

let request_of_json j =
  match Option.bind (Json.member "cmd" j) Json.to_string_opt with
  | None -> Error "request: missing \"cmd\" member"
  | Some cmd -> (
      match cmd with
      | "submit" -> (
          match Option.bind (Json.member "query" j) Json.to_string_opt with
          | None -> Error "submit: missing \"query\" member"
          | Some q ->
              let name =
                Option.bind (Json.member "name" j) Json.to_string_opt
              in
              Ok (Submit { spec = spec_of_string q; name }))
      | "withdraw" -> Result.map (fun id -> Withdraw id) (int_member "id" j)
      | "list" -> Ok List_intents
      | "status" -> Result.map (fun id -> Status id) (int_member "id" j)
      | "stats" -> (
          match Option.bind (Json.member "format" j) Json.to_string_opt with
          | None -> Ok (Stats Json_format)
          | Some f -> (
              match stats_format_of_string f with
              | Some fmt -> Ok (Stats fmt)
              | None -> Error (Printf.sprintf "stats: unknown format %S" f)))
      | "fail-switch" ->
          Result.map (fun s -> Fail_switch s) (int_member "switch" j)
      | "repair-switch" ->
          Result.map (fun s -> Repair_switch s) (int_member "switch" j)
      | "shutdown" -> Ok Shutdown
      | other -> Error (Printf.sprintf "request: unknown command %S" other))

(** Operator-text form, shared by the daemon's plain-text protocol and
    the [newton intent] argument surface:
    {v
      submit q4 | submit <dsl...> [as <name>]
      withdraw <id> | status <id> | list
      stats [json|prom] | fail-switch <s> | repair-switch <s> | shutdown
    v} *)
let request_of_tokens tokens =
  let int_arg what = function
    | [ v ] -> (
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "%s expects an integer, got %S" what v))
    | _ -> Error (Printf.sprintf "usage: %s <int>" what)
  in
  match tokens with
  | [] -> Error "empty command"
  | "submit" :: rest -> (
      (* a trailing "as NAME" names the intent *)
      let rec split acc = function
        | [ "as"; name ] -> (List.rev acc, Some name)
        | [] -> (List.rev acc, None)
        | x :: tl ->
            let body, name = split (x :: acc) tl in
            (body, name)
      in
      let body, name = split [] rest in
      match body with
      | [] -> Error "usage: submit q<N> | submit <dsl> [as <name>]"
      | _ -> Ok (Submit { spec = spec_of_string (String.concat " " body); name })
      )
  | "withdraw" :: rest ->
      Result.map (fun id -> Withdraw id) (int_arg "withdraw" rest)
  | [ "list" ] -> Ok List_intents
  | "status" :: rest -> Result.map (fun id -> Status id) (int_arg "status" rest)
  | [ "stats" ] -> Ok (Stats Json_format)
  | [ "stats"; f ] -> (
      match stats_format_of_string f with
      | Some fmt -> Ok (Stats fmt)
      | None -> Error (Printf.sprintf "stats: unknown format %S" f))
  | "fail-switch" :: rest ->
      Result.map (fun s -> Fail_switch s) (int_arg "fail-switch" rest)
  | "repair-switch" :: rest ->
      Result.map (fun s -> Repair_switch s) (int_arg "repair-switch" rest)
  | [ "shutdown" ] -> Ok Shutdown
  | cmd :: _ -> Error (Printf.sprintf "unknown command %S (try help)" cmd)

(* ---------------- responses ---------------- *)

type recovery_info = {
  rc_switch : int;
  rc_event : [ `Fail | `Repair ];
  rc_slices_migrated : int;
  rc_cells_moved : int;
  rc_software_fallbacks : int;
  rc_rules_installed : int;
  rc_latency : float;
}

type response =
  | Accepted of Intent.info
  | Refused of { id : int; diags : Newton_analysis.Diag.t list }
  | Withdrawn_ok of { id : int; latency : float }
  | Intent_list of Intent.info list
  | Intent_status of Intent.info
  | Stats_payload of { format : stats_format; body : string }
  | Recovery_done of recovery_info option
  | Stopping
  | Error_resp of { code : string; message : string }

let us_of_s s = Json.Int (int_of_float (Float.round (s *. 1e6)))

let s_of_us = function
  | Json.Int us -> Some (float_of_int us /. 1e6)
  | _ -> None

let recovery_to_json r =
  Json.Obj
    [
      ("switch", Json.Int r.rc_switch);
      ( "event",
        Json.String (match r.rc_event with `Fail -> "fail" | `Repair -> "repair")
      );
      ("slices_migrated", Json.Int r.rc_slices_migrated);
      ("cells_moved", Json.Int r.rc_cells_moved);
      ("software_fallbacks", Json.Int r.rc_software_fallbacks);
      ("rules_installed", Json.Int r.rc_rules_installed);
      ("latency_us", us_of_s r.rc_latency);
    ]

let recovery_of_json j =
  let ( let* ) = Result.bind in
  let int_field name =
    match Option.bind (Json.member name j) Json.to_int_opt with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "recovery: missing int %S" name)
  in
  let* rc_switch = int_field "switch" in
  let* rc_slices_migrated = int_field "slices_migrated" in
  let* rc_cells_moved = int_field "cells_moved" in
  let* rc_software_fallbacks = int_field "software_fallbacks" in
  let* rc_rules_installed = int_field "rules_installed" in
  let* rc_latency =
    match Option.bind (Json.member "latency_us" j) s_of_us with
    | Some v -> Ok v
    | None -> Error "recovery: missing \"latency_us\""
  in
  match Option.bind (Json.member "event" j) Json.to_string_opt with
  | Some "fail" ->
      Ok
        { rc_switch; rc_event = `Fail; rc_slices_migrated; rc_cells_moved;
          rc_software_fallbacks; rc_rules_installed; rc_latency }
  | Some "repair" ->
      Ok
        { rc_switch; rc_event = `Repair; rc_slices_migrated; rc_cells_moved;
          rc_software_fallbacks; rc_rules_installed; rc_latency }
  | _ -> Error "recovery: missing or unknown \"event\""

let response_to_json = function
  | Accepted info ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("kind", Json.String "accepted");
          ("intent", Intent.info_to_json info);
        ]
  | Refused { id; diags } ->
      Json.Obj
        [
          ("ok", Json.Bool false);
          ("kind", Json.String "refused");
          ("id", Json.Int id);
          ("diags", Json.List (List.map Newton_analysis.Diag.to_json diags));
        ]
  | Withdrawn_ok { id; latency } ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("kind", Json.String "withdrawn");
          ("id", Json.Int id);
          ("latency_us", us_of_s latency);
        ]
  | Intent_list infos ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("kind", Json.String "intents");
          ("intents", Json.List (List.map Intent.info_to_json infos));
        ]
  | Intent_status info ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("kind", Json.String "intent");
          ("intent", Intent.info_to_json info);
        ]
  | Stats_payload { format; body } ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("kind", Json.String "stats");
          ("format", Json.String (stats_format_to_string format));
          ("body", Json.String body);
        ]
  | Recovery_done r ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("kind", Json.String "recovery");
          ( "recovery",
            match r with None -> Json.Null | Some r -> recovery_to_json r );
        ]
  | Stopping ->
      Json.Obj [ ("ok", Json.Bool true); ("kind", Json.String "stopping") ]
  | Error_resp { code; message } ->
      Json.Obj
        [
          ("ok", Json.Bool false);
          ("kind", Json.String "error");
          ("code", Json.String code);
          ("message", Json.String message);
        ]

let response_of_json j =
  let ( let* ) = Result.bind in
  let intent_member () =
    match Json.member "intent" j with
    | None -> Error "response: missing \"intent\""
    | Some i -> Intent.info_of_json i
  in
  match Option.bind (Json.member "kind" j) Json.to_string_opt with
  | None -> Error "response: missing \"kind\" member"
  | Some "accepted" ->
      Result.map (fun i -> Accepted i) (intent_member ())
  | Some "refused" ->
      let* id =
        match Option.bind (Json.member "id" j) Json.to_int_opt with
        | Some id -> Ok id
        | None -> Error "refused: missing \"id\""
      in
      let* diags =
        match Json.member "diags" j with
        | None -> Ok []
        | Some d -> Intent.diags_of_json d
      in
      Ok (Refused { id; diags })
  | Some "withdrawn" ->
      let* id =
        match Option.bind (Json.member "id" j) Json.to_int_opt with
        | Some id -> Ok id
        | None -> Error "withdrawn: missing \"id\""
      in
      let* latency =
        match Option.bind (Json.member "latency_us" j) s_of_us with
        | Some l -> Ok l
        | None -> Error "withdrawn: missing \"latency_us\""
      in
      Ok (Withdrawn_ok { id; latency })
  | Some "intents" -> (
      match Option.bind (Json.member "intents" j) Json.to_list with
      | None -> Error "intents: missing \"intents\" array"
      | Some items ->
          List.fold_left
            (fun acc item ->
              match (acc, Intent.info_of_json item) with
              | Ok is, Ok i -> Ok (i :: is)
              | (Error _ as e), _ -> e
              | _, (Error _ as e) -> e)
            (Ok []) items
          |> Result.map (fun is -> Intent_list (List.rev is)))
  | Some "intent" -> Result.map (fun i -> Intent_status i) (intent_member ())
  | Some "stats" ->
      let* format =
        match
          Option.bind
            (Option.bind (Json.member "format" j) Json.to_string_opt)
            stats_format_of_string
        with
        | Some f -> Ok f
        | None -> Error "stats: missing or unknown \"format\""
      in
      let* body =
        match Option.bind (Json.member "body" j) Json.to_string_opt with
        | Some b -> Ok b
        | None -> Error "stats: missing \"body\""
      in
      Ok (Stats_payload { format; body })
  | Some "recovery" -> (
      match Json.member "recovery" j with
      | None | Some Json.Null -> Ok (Recovery_done None)
      | Some r -> Result.map (fun r -> Recovery_done (Some r)) (recovery_of_json r))
  | Some "stopping" -> Ok Stopping
  | Some "error" ->
      let* code =
        match Option.bind (Json.member "code" j) Json.to_string_opt with
        | Some c -> Ok c
        | None -> Error "error: missing \"code\""
      in
      let* message =
        match Option.bind (Json.member "message" j) Json.to_string_opt with
        | Some m -> Ok m
        | None -> Error "error: missing \"message\""
      in
      Ok (Error_resp { code; message })
  | Some other -> Error (Printf.sprintf "response: unknown kind %S" other)

(* ---------------- line framing ---------------- *)

let request_of_line line =
  match Json.of_string line with
  | j -> request_of_json j
  | exception Json.Parse_error { msg; _ } ->
      Error (Printf.sprintf "bad JSON request: %s" msg)

let response_of_line line =
  match Json.of_string line with
  | j -> response_of_json j
  | exception Json.Parse_error { msg; _ } ->
      Error (Printf.sprintf "bad JSON response: %s" msg)

let request_to_line r = Json.to_string (request_to_json r)
let response_to_line r = Json.to_string (response_to_json r)

(* ---------------- operator rendering ---------------- *)

let response_summary = function
  | Accepted info ->
      Printf.sprintf "accepted %s" (Intent.info_to_string info)
  | Refused { id; diags } ->
      Printf.sprintf "refused #%d by static analysis:\n%s" id
        (Newton_analysis.Check.explain diags)
  | Withdrawn_ok { id; latency } ->
      Printf.sprintf "withdrawn #%d in %.1f ms" id (latency *. 1e3)
  | Intent_list [] -> "no intents"
  | Intent_list infos ->
      String.concat "\n" (List.map Intent.info_to_string infos)
  | Intent_status info ->
      Json.to_string (Intent.info_to_json info)
  | Stats_payload { body; _ } -> body
  | Recovery_done None -> "no-op (switch already in that state)"
  | Recovery_done (Some r) ->
      Printf.sprintf
        "%s switch %d: %d slices migrated, %d cells moved, %d software \
         fallbacks, %d rules installed, %.2f ms"
        (match r.rc_event with `Fail -> "fail" | `Repair -> "repair")
        r.rc_switch r.rc_slices_migrated r.rc_cells_moved
        r.rc_software_fallbacks r.rc_rules_installed (r.rc_latency *. 1e3)
  | Stopping -> "daemon stopping"
  | Error_resp { code; message } -> Printf.sprintf "error (%s): %s" code message

let response_is_ok = function
  | Accepted _ | Withdrawn_ok _ | Intent_list _ | Intent_status _
  | Stats_payload _ | Recovery_done _ | Stopping -> true
  | Refused _ | Error_resp _ -> false
