(** The first-class intent lifecycle.

    Every query submitted to the service daemon becomes an intent with
    a daemon-assigned id and a state machine:

    {v
      Submitted --> Analyzed --> Placed --> Active --> Withdrawn
          |             |           |          |
          +-------------+-----------+----------+--> Failed
    v}

    [Withdrawn] and [Failed] are terminal.  Transitions are checked —
    an intent can never become [Active] without having been [Placed] —
    and every transition is timestamped, so operators can read the full
    admission/installation history off [status].  Diagnostics from the
    static-analysis admission gate ride on the intent, as do the
    install/uninstall latencies the dataplane reported. *)

open Newton_util

type state = Submitted | Analyzed | Placed | Active | Failed | Withdrawn

let state_to_string = function
  | Submitted -> "submitted"
  | Analyzed -> "analyzed"
  | Placed -> "placed"
  | Active -> "active"
  | Failed -> "failed"
  | Withdrawn -> "withdrawn"

let state_of_string = function
  | "submitted" -> Some Submitted
  | "analyzed" -> Some Analyzed
  | "placed" -> Some Placed
  | "active" -> Some Active
  | "failed" -> Some Failed
  | "withdrawn" -> Some Withdrawn
  | _ -> None

let all_states = [ Submitted; Analyzed; Placed; Active; Failed; Withdrawn ]

let is_terminal = function Failed | Withdrawn -> true | _ -> false

(* The legal edges of the lifecycle.  Failure is reachable from every
   non-terminal state (parse, analysis, placement and install can each
   refuse); the happy path is strictly ordered. *)
let can_transition from into =
  match (from, into) with
  | Submitted, Analyzed
  | Analyzed, Placed
  | Placed, Active
  | Active, Withdrawn -> true
  | (Submitted | Analyzed | Placed | Active), Failed -> true
  | _ -> false

type t = {
  id : int;
  name : string;
  query : Newton_query.Ast.t;
  source : string;
  mutable state : state;
  mutable diags : Newton_analysis.Diag.t list;
  mutable uid : int option;
  mutable rules : int;
  mutable install_latency : float option;
  mutable uninstall_latency : float option;
  submitted_at : float;
  mutable installed_at : float option;
  mutable finished_at : float option;
  mutable history : (state * float) list; (* reverse order *)
}

let create ~id ~name ~source ~now query =
  {
    id;
    name;
    query;
    source;
    state = Submitted;
    diags = [];
    uid = None;
    rules = 0;
    install_latency = None;
    uninstall_latency = None;
    submitted_at = now;
    installed_at = None;
    finished_at = None;
    history = [ (Submitted, now) ];
  }

let transition t ~now into =
  if not (can_transition t.state into) then
    Error
      (Printf.sprintf "illegal intent transition %s -> %s"
         (state_to_string t.state) (state_to_string into))
  else begin
    t.state <- into;
    t.history <- (into, now) :: t.history;
    (match into with
    | Active -> t.installed_at <- Some now
    | Failed | Withdrawn -> t.finished_at <- Some now
    | _ -> ());
    Ok ()
  end

let history t = List.rev t.history

(* ---------------- the wire-facing summary ---------------- *)

type info = {
  i_id : int;
  i_name : string;
  i_query_id : int;
  i_source : string;
  i_state : state;
  i_rules : int;
  i_reports : int;
  i_warnings : int;
  i_errors : int;
  i_submitted_at : float;
  i_installed_at : float option;
  i_finished_at : float option;
  i_install_latency : float option;
  i_uninstall_latency : float option;
  i_diags : Newton_analysis.Diag.t list;
}

let info ?(reports = 0) t =
  let count sev =
    List.length
      (List.filter (fun d -> d.Newton_analysis.Diag.severity = sev) t.diags)
  in
  {
    i_id = t.id;
    i_name = t.name;
    i_query_id = t.query.Newton_query.Ast.id;
    i_source = t.source;
    i_state = t.state;
    i_rules = t.rules;
    i_reports = reports;
    i_warnings = count Newton_analysis.Diag.Warning;
    i_errors = count Newton_analysis.Diag.Error;
    i_submitted_at = t.submitted_at;
    i_installed_at = t.installed_at;
    i_finished_at = t.finished_at;
    i_install_latency = t.install_latency;
    i_uninstall_latency = t.uninstall_latency;
    i_diags = t.diags;
  }

(* Times and latencies travel as integer microseconds: the minimal JSON
   layer renders floats with %g, which would truncate epoch timestamps
   to six significant digits. *)
let us_of_s s = Json.Int (int_of_float (Float.round (s *. 1e6)))
let s_of_us = function
  | Json.Int us -> Some (float_of_int us /. 1e6)
  | _ -> None

let opt_us = function None -> Json.Null | Some s -> us_of_s s

let info_to_json i =
  Json.Obj
    [
      ("id", Json.Int i.i_id);
      ("name", Json.String i.i_name);
      ("query_id", Json.Int i.i_query_id);
      ("source", Json.String i.i_source);
      ("state", Json.String (state_to_string i.i_state));
      ("rules", Json.Int i.i_rules);
      ("reports", Json.Int i.i_reports);
      ("warnings", Json.Int i.i_warnings);
      ("errors", Json.Int i.i_errors);
      ("submitted_at_us", us_of_s i.i_submitted_at);
      ("installed_at_us", opt_us i.i_installed_at);
      ("finished_at_us", opt_us i.i_finished_at);
      ("install_latency_us", opt_us i.i_install_latency);
      ("uninstall_latency_us", opt_us i.i_uninstall_latency);
      ("diags", Json.List (List.map Newton_analysis.Diag.to_json i.i_diags));
    ]

(* ---------------- decoding ---------------- *)

let mem name j = Json.member name j

let int_field name j =
  match Option.bind (mem name j) Json.to_int_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "intent info: missing int %S" name)

let string_field name j =
  match Option.bind (mem name j) Json.to_string_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "intent info: missing string %S" name)

let time_field name j =
  match Option.bind (mem name j) s_of_us with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "intent info: missing time %S" name)

let opt_time_field name j =
  match mem name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match s_of_us v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "intent info: bad time %S" name))

let severity_of_string = function
  | "info" -> Some Newton_analysis.Diag.Info
  | "warning" -> Some Newton_analysis.Diag.Warning
  | "error" -> Some Newton_analysis.Diag.Error
  | _ -> None

(* Inverse of [Diag.span_to_string]; spans the printer cannot emit are
   decode errors. *)
let span_of_string s =
  let tail pfx =
    int_of_string_opt (String.sub s (String.length pfx)
                         (String.length s - String.length pfx))
  in
  let has pfx =
    String.length s > String.length pfx
    && String.sub s 0 (String.length pfx) = pfx
  in
  match s with
  | "query" -> Some Newton_analysis.Diag.Query
  | "combine" -> Some Newton_analysis.Diag.Combine
  | _ when has "stage" ->
      Option.map (fun n -> Newton_analysis.Diag.Stage n) (tail "stage")
  | _ when has "sw" ->
      Option.map (fun n -> Newton_analysis.Diag.Switch n) (tail "sw")
  | _ when has "cut" ->
      Option.map (fun n -> Newton_analysis.Diag.Cut n) (tail "cut")
  | _ when has "b" -> (
      match String.index_opt s '.' with
      | None -> Option.map (fun n -> Newton_analysis.Diag.Branch n) (tail "b")
      | Some dot -> (
          let b = String.sub s 1 (dot - 1) in
          let p = String.sub s (dot + 2) (String.length s - dot - 2) in
          match (int_of_string_opt b, int_of_string_opt p) with
          | Some branch, Some prim ->
              Some (Newton_analysis.Diag.Prim { branch; prim })
          | _ -> None))
  | _ -> None

let diag_of_json j =
  let ( let* ) = Result.bind in
  let* code = string_field "code" j in
  let* sev_s = string_field "severity" j in
  let* query_id = int_field "query_id" j in
  let* query_name = string_field "query_name" j in
  let* span_s = string_field "span" j in
  let* message = string_field "message" j in
  let hint =
    match mem "hint" j with
    | Some (Json.String h) -> Some h
    | _ -> None
  in
  match (severity_of_string sev_s, span_of_string span_s) with
  | Some severity, Some span ->
      Ok
        {
          Newton_analysis.Diag.code;
          severity;
          query_id;
          query_name;
          span;
          message;
          hint;
          (* witness packets are embedded only on request and are not
             part of the lifecycle-API diag schema *)
          witness = None;
        }
  | None, _ -> Error (Printf.sprintf "diag: unknown severity %S" sev_s)
  | _, None -> Error (Printf.sprintf "diag: unknown span %S" span_s)

let diags_of_json j =
  match Json.to_list j with
  | None -> Error "diags: expected an array"
  | Some items ->
      List.fold_left
        (fun acc item ->
          match (acc, diag_of_json item) with
          | Ok ds, Ok d -> Ok (d :: ds)
          | (Error _ as e), _ -> e
          | _, (Error _ as e) -> e)
        (Ok []) items
      |> Result.map List.rev

let info_of_json j =
  let ( let* ) = Result.bind in
  let* i_id = int_field "id" j in
  let* i_name = string_field "name" j in
  let* i_query_id = int_field "query_id" j in
  let* i_source = string_field "source" j in
  let* state_s = string_field "state" j in
  let* i_rules = int_field "rules" j in
  let* i_reports = int_field "reports" j in
  let* i_warnings = int_field "warnings" j in
  let* i_errors = int_field "errors" j in
  let* i_submitted_at = time_field "submitted_at_us" j in
  let* i_installed_at = opt_time_field "installed_at_us" j in
  let* i_finished_at = opt_time_field "finished_at_us" j in
  let* i_install_latency = opt_time_field "install_latency_us" j in
  let* i_uninstall_latency = opt_time_field "uninstall_latency_us" j in
  let* i_diags =
    match mem "diags" j with
    | None -> Ok []
    | Some d -> diags_of_json d
  in
  match state_of_string state_s with
  | None -> Error (Printf.sprintf "intent info: unknown state %S" state_s)
  | Some i_state ->
      Ok
        {
          i_id;
          i_name;
          i_query_id;
          i_source;
          i_state;
          i_rules;
          i_reports;
          i_warnings;
          i_errors;
          i_submitted_at;
          i_installed_at;
          i_finished_at;
          i_install_latency;
          i_uninstall_latency;
          i_diags;
        }

let info_to_string i =
  Printf.sprintf "#%d %-10s %-22s rules=%d reports=%d%s" i.i_id
    (state_to_string i.i_state)
    i.i_name i.i_rules i.i_reports
    (if i.i_errors > 0 then Printf.sprintf " errors=%d" i.i_errors
     else if i.i_warnings > 0 then Printf.sprintf " warnings=%d" i.i_warnings
     else "")
