(** The daemon's background replay driver.

    Holds a time-sorted packet array (from a generated trace, a saved
    trace file or a pcap via [lib/ingest]) and feeds it into
    [Deploy.process_packet] in bounded steps between socket events, so
    intents install and withdraw {e while traffic is flowing}.  Pacing
    mirrors the ingest streamer: [Asap] replays as fast as the event
    loop allows, [Realtime s] schedules each packet at its trace
    timestamp divided by the speedup.  The clock is a parameter
    ([~now]) so tests can drive replay deterministically. *)

open Newton_packet

type pace = Asap | Realtime of float

type t = {
  packets : Packet.t array;
  topo : Newton_network.Topo.t;
  pace : pace;
  source_desc : string;
  first_ts : float;
  mutable pos : int;
  mutable started_at : float option;
  sink : Newton_telemetry.Stats.sink;
}

let of_packets ?(pace = Asap) ~topo ~desc packets =
  {
    packets;
    topo;
    pace;
    source_desc = desc;
    first_ts = (if Array.length packets = 0 then 0. else Packet.ts packets.(0));
    pos = 0;
    started_at = None;
    sink = Newton_telemetry.Stats.create ();
  }

let of_trace ?pace ~topo ~desc trace =
  of_packets ?pace ~topo ~desc (Newton_trace.Gen.packets trace)

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let load ?pace ~topo path =
  let is_capture =
    has_suffix path ".pcap" || has_suffix path ".pcapng"
    || has_suffix path ".cap"
  in
  let trace =
    if is_capture then Newton_ingest.Capture.load path
    else Newton_trace.Trace_io.load path
  in
  of_trace ?pace ~topo ~desc:path trace

let length t = Array.length t.packets
let position t = t.pos
let finished t = t.pos >= Array.length t.packets
let source t = t.source_desc
let stats t = t.sink

(* Seconds of wall clock until the packet at [pos] is due; 0 when due
   now (or when pacing is Asap). *)
let due_in t ~now pos =
  match t.pace with
  | Asap -> 0.
  | Realtime speedup ->
      let started =
        match t.started_at with
        | Some s -> s
        | None ->
            t.started_at <- Some now;
            now
      in
      let rel = (Packet.ts t.packets.(pos) -. t.first_ts) /. speedup in
      Float.max 0. (started +. rel -. now)

let next_due_in t ~now =
  if finished t then None else Some (due_in t ~now t.pos)

let step t ~now ~budget deploy =
  let n = Array.length t.packets in
  let processed = ref 0 in
  while
    !processed < budget && t.pos < n && due_in t ~now t.pos <= 0.
  do
    let pkt = t.packets.(t.pos) in
    let src_host =
      Newton_core.Newton.Network.host_of_ip t.topo (Packet.get pkt Field.Src_ip)
    in
    let dst_host =
      Newton_core.Newton.Network.host_of_ip t.topo (Packet.get pkt Field.Dst_ip)
    in
    Newton_controller.Deploy.process_packet deploy ~src_host ~dst_host pkt;
    t.pos <- t.pos + 1;
    incr processed
  done;
  if !processed > 0 then
    Newton_telemetry.Stats.bump t.sink
      Newton_telemetry.Stats.Packets_processed !processed;
  !processed

let run_to_end t deploy =
  let rec go total =
    (* with ~now beyond any schedule, pacing never blocks *)
    let n = step t ~now:infinity ~budget:max_int deploy in
    if n = 0 then total else go (total + n)
  in
  go 0
