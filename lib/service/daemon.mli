(** The long-running controller daemon behind [newton serve]: owns a
    {!Newton_controller.Deploy.t} and the intent table, handles typed
    {!Api} requests, and (in {!serve}) interleaves newline-delimited
    JSON / operator-text socket traffic with bounded background replay
    steps so intents install and withdraw while traffic flows.

    {!handle} is a pure request -> response function over daemon state
    — the socket loop, the [newton intent] client tests and the churn
    bench all exercise the same core. *)

type t

(** [create topo] builds an idle daemon.  [clock] defaults to
    [Unix.gettimeofday] (tests inject a fake); [replay_budget] bounds
    packets processed per event-loop turn (default 2048). *)
val create :
  ?clock:(unit -> float) -> ?stages_per_switch:int ->
  ?mode:Newton_controller.Deploy.mode -> ?replay_budget:int ->
  ?replay:Replay.t -> Newton_network.Topo.t -> t

val deploy : t -> Newton_controller.Deploy.t
val stopping : t -> bool
val replay : t -> Replay.t option

(** All intents in submission order, with live report counts. *)
val intents : t -> Intent.info list

(** Handle one typed request.  Total: refusals and unknown ids come
    back as [Refused]/[Error_resp], never exceptions. *)
val handle : t -> Api.request -> Api.response

(** One wire line -> one response: a [{]-prefixed line is parsed as a
    JSON request, anything else as operator text through
    {!Command.tokenize}.  Malformed input becomes an [Error_resp]. *)
val handle_line : t -> string -> Api.response

(** Run one bounded replay step (no-op without a replay source);
    returns packets processed. *)
val replay_step : t -> int

(** Deploy snapshot merged with the service counters and the replay
    counters (labelled [stage="replay"]). *)
val snapshot : t -> Newton_telemetry.Snapshot.t

type listen = Unix_socket of string | Tcp of int

(** Run the select loop until a [shutdown] request arrives: accept
    clients, answer line requests, and interleave replay steps.  The
    Unix socket path is unlinked on exit.  [log] receives progress
    lines (default silent). *)
val serve : ?log:(string -> unit) -> t -> listen -> unit
