(** Metric model for Newton's self-monitoring: named, typed families of
    labelled samples (the Prometheus data model), rendered by {!Export}. *)

type kind = Counter | Gauge | Histogram

val kind_to_string : kind -> string

(** Histogram samples carry non-cumulative bucket counts; [bounds.(i)]
    is the inclusive upper edge of bucket [i] and an implicit [+Inf]
    bucket closes the layout ([Array.length counts = Array.length
    bounds + 1]). *)
type value =
  | V of float
  | Buckets of {
      bounds : float array;
      counts : int array;
      sum : float;
      count : int;
    }

type sample = { labels : (string * string) list; value : value }

type t = {
  name : string;
  help : string;
  kind : kind;
  samples : sample list;
}

val sample : ?labels:(string * string) list -> value -> sample

(** Float / int convenience samples. *)
val v : ?labels:(string * string) list -> float -> sample
val vi : ?labels:(string * string) list -> int -> sample

val make : name:string -> help:string -> kind:kind -> sample list -> t
val counter : name:string -> help:string -> sample list -> t
val gauge : name:string -> help:string -> sample list -> t
val histogram : name:string -> help:string -> sample list -> t

(** Deterministic float rendering shared by both exporters. *)
val string_of_value : float -> string

val label_to_string : string * string -> string

(** [{k="v",...}] or [""] when empty. *)
val labels_to_string : (string * string) list -> string
