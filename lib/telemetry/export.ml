(** Snapshot exporters: JSON (the bench/CI artifact format) and the
    Prometheus text exposition format (scrape endpoints, operator
    tooling).  Both renderings are deterministic — sample order is the
    snapshot's, floats print via {!Metric.string_of_value} — so golden
    tests can compare exact strings. *)

open Newton_util

(* ---------------- JSON ---------------- *)

let json_of_value = function
  | Metric.V x ->
      if Float.is_integer x && Float.abs x < 1e15 then
        Json.Int (int_of_float x)
      else Json.Float x
  | Metric.Buckets { bounds; counts; sum; count } ->
      Json.Obj
        [
          ( "buckets",
            Json.List
              (List.init (Array.length counts) (fun i ->
                   Json.Obj
                     [
                       ( "le",
                         if i < Array.length bounds then Json.Float bounds.(i)
                         else Json.String "+Inf" );
                       ("count", Json.Int counts.(i));
                     ])) );
          ("sum", Json.Float sum);
          ("count", Json.Int count);
        ]

let json_of_sample (s : Metric.sample) =
  let labels =
    match s.Metric.labels with
    | [] -> []
    | ls -> [ ("labels", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ls)) ]
  in
  Json.Obj (labels @ [ ("value", json_of_value s.Metric.value) ])

let json_of_metric (m : Metric.t) =
  Json.Obj
    [
      ("name", Json.String m.Metric.name);
      ("kind", Json.String (Metric.kind_to_string m.Metric.kind));
      ("help", Json.String m.Metric.help);
      ("samples", Json.List (List.map json_of_sample m.Metric.samples));
    ]

(** The snapshot as a JSON value: [{"metrics": [...]}]. *)
let to_json (t : Snapshot.t) =
  Json.Obj [ ("metrics", Json.List (List.map json_of_metric t)) ]

let to_json_string t = Json.to_string (to_json t)

(* ---------------- Prometheus text format ---------------- *)

let prom_escape_help s =
  String.concat "\\n" (String.split_on_char '\n' s)

let add_plain_sample buf name (s : Metric.sample) x =
  Buffer.add_string buf name;
  Buffer.add_string buf (Metric.labels_to_string s.Metric.labels);
  Buffer.add_char buf ' ';
  Buffer.add_string buf (Metric.string_of_value x);
  Buffer.add_char buf '\n'

let add_histogram_sample buf name (s : Metric.sample) ~bounds ~counts ~sum
    ~count =
  (* Prometheus buckets are cumulative and carry an [le] label. *)
  let cumulative = ref 0 in
  Array.iteri
    (fun i c ->
      cumulative := !cumulative + c;
      let le =
        if i < Array.length bounds then Metric.string_of_value bounds.(i)
        else "+Inf"
      in
      Buffer.add_string buf name;
      Buffer.add_string buf "_bucket";
      Buffer.add_string buf
        (Metric.labels_to_string (s.Metric.labels @ [ ("le", le) ]));
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int !cumulative);
      Buffer.add_char buf '\n')
    counts;
  add_plain_sample buf (name ^ "_sum") s sum;
  add_plain_sample buf (name ^ "_count") s (float_of_int count)

(** The snapshot in the Prometheus text exposition format. *)
let to_prometheus (t : Snapshot.t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (m : Metric.t) ->
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" m.Metric.name
           (prom_escape_help m.Metric.help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" m.Metric.name
           (Metric.kind_to_string m.Metric.kind));
      List.iter
        (fun (s : Metric.sample) ->
          match s.Metric.value with
          | Metric.V x -> add_plain_sample buf m.Metric.name s x
          | Metric.Buckets { bounds; counts; sum; count } ->
              add_histogram_sample buf m.Metric.name s ~bounds ~counts ~sum
                ~count)
        m.Metric.samples)
    t;
  Buffer.contents buf
