(** Fixed-bound histograms for the telemetry sinks: ascending inclusive
    upper bounds plus an implicit [+Inf] overflow bucket, non-cumulative
    counts, element-wise merge (per-domain sinks fold into one view). *)

type t

(** 1-2-5 decades from 100 µs to 10 s (report latency within a window). *)
val latency_bounds : float array

(** 1-2-5 decades from 1 to 10k (per-window drop / message counts). *)
val count_bounds : float array

(** 1-2-5 decades from 1 µs to 1 s (packet inter-arrival gaps). *)
val interarrival_bounds : float array

(** @raise Invalid_argument unless bounds are strictly ascending. *)
val create : float array -> t

val bounds : t -> float array

(** Observations so far. *)
val count : t -> int

(** Sum of observed values. *)
val sum : t -> float

val observe : t -> float -> unit

(** Non-cumulative counts, overflow bucket last
    ([Array.length (counts t) = Array.length (bounds t) + 1]). *)
val counts : t -> int array

val clear : t -> unit
val copy : t -> t

(** Fold [src] into [dst] bucket-wise.
    @raise Invalid_argument on a bound-layout mismatch. *)
val merge_into : dst:t -> src:t -> unit

(** Functional merge into a fresh histogram. *)
val merge : t -> t -> t

(** The histogram as a {!Metric} sample value. *)
val to_value : t -> Metric.value
