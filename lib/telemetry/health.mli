(** Sketch-health and capacity gauges: pure formulas over observable
    state (register occupancy, table fill, stream mass), identical over
    live per-shard banks and over their ALU merge. *)

(** [used / capacity] clamped to [0, 1]; 0 when the capacity is 0. *)
val utilization : used:int -> capacity:int -> float

(** Fraction of set bits in one Bloom row. *)
val bloom_fill : set_bits:int -> bits:int -> float

(** False-positive estimate from the per-row fill ratios (their
    product); 0 for an empty row list. *)
val bloom_fpr : fills:float list -> float

(** Count-Min per-key error factor [e / width]. *)
val cm_epsilon : width:int -> float

(** Probability the CM bound is exceeded: [(1/e) ^ depth]. *)
val cm_delta : depth:int -> float

(** Absolute error bound [epsilon * mass] at the observed stream mass. *)
val cm_error_bound : width:int -> mass:int -> float
