(** Sketch-health and capacity gauges.

    Pure formulas over observable state — register occupancy, table
    fill, stream mass — so they can be evaluated over live per-shard
    banks or over their ALU merge identically.  The collector in
    [Newton_runtime.Introspect] pairs them with engine state. *)

(** [used / capacity] in [0, 1]; 0 when the capacity is 0. *)
let utilization ~used ~capacity =
  if capacity <= 0 then 0.0
  else
    Float.min 1.0 (Float.max 0.0 (float_of_int used /. float_of_int capacity))

(** Fraction of set bits in one Bloom row. *)
let bloom_fill ~set_bits ~bits = utilization ~used:set_bits ~capacity:bits

(** False-positive estimate of a Bloom filter from its per-row fill
    ratios: a lookup is positive iff every row's probed bit is set, and
    at the current occupancy each row answers 1 with its fill ratio. *)
let bloom_fpr ~fills =
  match fills with
  | [] -> 0.0
  | _ -> List.fold_left (fun acc f -> acc *. Float.min 1.0 (Float.max 0.0 f)) 1.0 fills

(** Count-Min overestimation factor: with width [w], the expected
    per-key error is bounded by [(e / w) * mass]. *)
let cm_epsilon ~width =
  if width <= 0 then Float.infinity else Float.exp 1.0 /. float_of_int width

(** Probability the CM bound is exceeded: [(1 / e) ^ depth]. *)
let cm_delta ~depth =
  if depth <= 0 then 1.0 else Float.exp (-.float_of_int depth)

(** Absolute error bound [epsilon * mass] at the observed stream mass
    (the sum of one row's counters). *)
let cm_error_bound ~width ~mass = cm_epsilon ~width *. float_of_int mass
