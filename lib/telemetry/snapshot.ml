(** A telemetry snapshot: the point-in-time metric families one engine,
    shard group, or network exports.

    Snapshots compose: {!merge} concatenates the sample lists of
    same-named families (labels keep them apart), so a network-wide
    snapshot is the merge of per-switch snapshots, each labelled with
    its switch id. *)

type t = Metric.t list

let empty = []

(** Counter families of a sink, every sample tagged with [labels]
    (e.g. [("switch", "3")]).  The four [Module_hits_*] keys fold into
    one family with a [kind] label; zero-valued counters are kept so
    scrapes always expose the full vocabulary. *)
let of_sink ?(labels = []) sink =
  let sample key =
    Metric.vi ~labels:(labels @ Stats.labels key) (Stats.get sink key)
  in
  (* group keys by metric name, preserving [Stats.all] order *)
  let families =
    List.fold_left
      (fun acc key ->
        let name = Stats.name key in
        match List.assoc_opt name acc with
        | Some keys ->
            (name, keys @ [ key ]) :: List.remove_assoc name acc
        | None -> (name, [ key ]) :: acc)
      [] Stats.all
    |> List.rev
  in
  let counters =
    List.map
      (fun (name, keys) ->
        Metric.counter ~name ~help:(Stats.help (List.hd keys))
          (List.map sample keys))
      families
  in
  let hist name help = function
    | None -> []
    | Some h ->
        [ Metric.histogram ~name ~help
            [ Metric.sample ~labels (Hist.to_value h) ] ]
  in
  counters
  @ hist "newton_report_latency_seconds"
      "Seconds from window start to report emission"
      (Stats.report_latency sink)
  @ hist "newton_report_drops_per_window"
      "Mirror-budget report drops per closed window"
      (Stats.window_drops sink)
  @ hist "newton_ingest_queue_depth"
      "Ingest-queue depth after each arrival turn"
      (Stats.queue_depth sink)
  @ hist "newton_ingest_interarrival_seconds"
      "Capture-timestamp gaps between ingested packets"
      (Stats.interarrival sink)

(** Merge two snapshots: same-named families concatenate their samples
    (first snapshot's family order wins), new families append. *)
let merge (a : t) (b : t) : t =
  let merged_a =
    List.map
      (fun (m : Metric.t) ->
        match List.find_opt (fun (m' : Metric.t) -> m'.Metric.name = m.Metric.name) b with
        | Some m' -> { m with Metric.samples = m.Metric.samples @ m'.Metric.samples }
        | None -> m)
      a
  in
  let fresh_b =
    List.filter
      (fun (m : Metric.t) ->
        not (List.exists (fun (m' : Metric.t) -> m'.Metric.name = m.Metric.name) a))
      b
  in
  merged_a @ fresh_b

let merge_all = function [] -> empty | s :: rest -> List.fold_left merge s rest

let find name (t : t) =
  List.find_opt (fun (m : Metric.t) -> m.Metric.name = name) t

(** Sum of a family's plain-valued samples, optionally restricted to
    samples carrying every pair in [where]; 0 when absent.  Handy for
    test assertions ("merged total = sequential total"). *)
let total ?(where = []) name t =
  match find name t with
  | None -> 0.0
  | Some m ->
      List.fold_left
        (fun acc (s : Metric.sample) ->
          let matches =
            List.for_all
              (fun (k, v) -> List.assoc_opt k s.Metric.labels = Some v)
              where
          in
          match s.Metric.value with
          | Metric.V x when matches -> acc +. x
          | _ -> acc)
        0.0 m.Metric.samples
