(** Event counters and the telemetry sink threaded through the runtime
    ({!Newton_runtime.Engine}, CQE, the controller).  {!null} makes
    every instrumentation point cost one pattern match; per-domain
    sinks fold back together with {!merge}. *)

(** The fixed counter vocabulary. *)
type key =
  | Packets_processed
  | Module_hits_k
  | Module_hits_h
  | Module_hits_s
  | Module_hits_r
  | Guard_stops
  | Reports_emitted
  | Reports_deduped
  | Reports_dropped
  | Window_rolls
  | Cqe_hops
  | Sp_header_bytes
  | Software_continuations
  | Switch_failures
  | Switch_repairs
  | Slices_migrated
  | State_cells_moved
  | Software_fallbacks
  | Ingest_frames
  | Ingest_decoded
  | Ingest_non_ip
  | Ingest_truncated
  | Ingest_fragment
  | Ingest_malformed
  | Ingest_dropped
  | Analysis_warnings
  | Analysis_rejections
  | Intents_submitted
  | Intents_withdrawn
  | Intents_failed

val all : key list

(** Dense index, [0 .. num_keys - 1]. *)
val index : key -> int

val num_keys : int

(** Prometheus-style metric name; the four [Module_hits_*] keys share
    one name and are distinguished by {!labels}. *)
val name : key -> string

val help : key -> string
val labels : key -> (string * string) list

type sink

(** The disabled sink: drops everything, zero allocation. *)
val null : sink

(** A fresh recording sink. *)
val create : unit -> sink

val enabled : sink -> bool

(** [bump sink key n] adds [n] to a counter (no-op on {!null}). *)
val bump : sink -> key -> int -> unit

val get : sink -> key -> int

(** All counters in {!all} order. *)
val counters : sink -> (key * int) list

(** Seconds from window start to report emission. *)
val observe_report_latency : sink -> float -> unit

(** Mirror-budget drops in a closed window. *)
val observe_window_drops : sink -> int -> unit

(** Ingest-queue depth after an arrival turn ({!Newton_ingest}). *)
val observe_queue_depth : sink -> int -> unit

(** Capture-timestamp gap between consecutive ingested packets. *)
val observe_interarrival : sink -> float -> unit

val report_latency : sink -> Hist.t option
val window_drops : sink -> Hist.t option
val queue_depth : sink -> Hist.t option
val interarrival : sink -> Hist.t option

val clear : sink -> unit

(** Sum of two sinks ([null] is the identity): counters add, histograms
    merge bucket-wise.  Associative and commutative. *)
val merge : sink -> sink -> sink

val merge_all : sink list -> sink
