(** Metric model for Newton's self-monitoring (§4–§5 visibility).

    A snapshot is a list of metric families, each a named, typed set of
    labelled samples — deliberately the Prometheus data model, so the
    exporters ({!Export}) are a direct rendering.  Values are produced
    by the runtime collectors ({!Stats} sinks, the per-engine
    introspection in [Newton_runtime.Introspect]); this module only
    defines the shapes. *)

type kind = Counter | Gauge | Histogram

let kind_to_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

(** Histogram samples carry the full bucket layout: [bounds.(i)] is the
    inclusive upper edge of bucket [i] (non-cumulative counts; the
    Prometheus exporter accumulates), with one implicit [+Inf] bucket
    at the end, so [Array.length counts = Array.length bounds + 1]. *)
type value =
  | V of float
  | Buckets of {
      bounds : float array;
      counts : int array;
      sum : float;
      count : int;
    }

type sample = { labels : (string * string) list; value : value }

type t = {
  name : string;  (** full metric name, e.g. ["newton_reports_total"] *)
  help : string;
  kind : kind;
  samples : sample list;
}

let sample ?(labels = []) value = { labels; value }

let v ?labels x = sample ?labels (V x)
let vi ?labels x = sample ?labels (V (float_of_int x))

let make ~name ~help ~kind samples = { name; help; kind; samples }

let counter ~name ~help samples = make ~name ~help ~kind:Counter samples
let gauge ~name ~help samples = make ~name ~help ~kind:Gauge samples
let histogram ~name ~help samples = make ~name ~help ~kind:Histogram samples

(** Deterministic float rendering shared by both exporters: integers
    print without an exponent or trailing [.], everything else as the
    shortest round-trippable decimal. *)
let string_of_value x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.12g" x

let label_to_string (k, v) = Printf.sprintf "%s=%S" k v

let labels_to_string = function
  | [] -> ""
  | ls -> "{" ^ String.concat "," (List.map label_to_string ls) ^ "}"
