(** A telemetry snapshot: point-in-time metric families.  Snapshots
    compose by {!merge} (same-named families concatenate samples), so a
    network-wide snapshot is the merge of labelled per-switch ones. *)

type t = Metric.t list

val empty : t

(** Counter + histogram families of a sink, every sample tagged with
    [labels].  Zero-valued counters are kept so scrapes always expose
    the full vocabulary. *)
val of_sink : ?labels:(string * string) list -> Stats.sink -> t

(** Same-named families concatenate their samples; new families
    append. *)
val merge : t -> t -> t

val merge_all : t list -> t

val find : string -> t -> Metric.t option

(** Sum of a family's plain-valued samples, optionally restricted to
    samples carrying every pair in [where]; 0 when absent. *)
val total : ?where:(string * string) list -> string -> t -> float
