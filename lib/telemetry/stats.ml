(** Event counters and the telemetry sink threaded through the runtime.

    The engine, the CQE path executor and the network controller all
    take a [sink] and bump fixed, array-indexed counters on it as
    packets flow; {!null} is a sink that drops everything, so an
    instrumented hot path costs exactly one branch when telemetry is
    off.  Per-domain sinks ({!Newton_runtime.Parallel_engine}) merge
    with {!merge} — counters add, histograms add bucket-wise — the same
    shape as the ALU merge of sharded sketch state. *)

(** The fixed counter vocabulary.  Adding a key means adding it here,
    in [all], and in [name]/[help] — the compiler enforces the rest. *)
type key =
  | Packets_processed  (** packets run through an engine *)
  | Module_hits_k      (** K (key-selection) slot executions *)
  | Module_hits_h      (** H (hash) slot executions *)
  | Module_hits_s      (** S (state-bank) slot executions *)
  | Module_hits_r      (** R (result-process) slot executions *)
  | Guard_stops        (** chains stopped by an R guard *)
  | Reports_emitted    (** reports exported to the analyzer *)
  | Reports_deduped    (** reports suppressed by per-window dedup *)
  | Reports_dropped    (** reports dropped by the mirror budget *)
  | Window_rolls       (** per-instance window resets *)
  | Cqe_hops           (** per-hop slice executions on the CQE path *)
  | Sp_header_bytes    (** SP snapshot bytes added on the wire *)
  | Software_continuations  (** packets deferred to the CPU analyzer *)
  | Switch_failures    (** switches failed by the recovery subsystem *)
  | Switch_repairs     (** switches repaired and rejoined *)
  | Slices_migrated    (** slice instances re-placed after a failure *)
  | State_cells_moved  (** register cells merged during state migration *)
  | Software_fallbacks (** slices degraded to the software engine *)
  | Ingest_frames      (** capture frames read from a pcap/pcapng file *)
  | Ingest_decoded     (** frames decoded into packets *)
  | Ingest_non_ip      (** frames skipped: not Ethernet/IP *)
  | Ingest_truncated   (** frames skipped: capture cut before headers *)
  | Ingest_fragment    (** frames skipped: non-first IP fragments *)
  | Ingest_malformed   (** frames skipped: internally inconsistent headers *)
  | Ingest_dropped     (** packets dropped on ingest-queue backpressure *)
  | Analysis_warnings  (** static-analysis warnings on admitted queries *)
  | Analysis_rejections (** deployments refused by the analysis gate *)
  | Intents_submitted  (** intents submitted to the service daemon *)
  | Intents_withdrawn  (** active intents withdrawn at runtime *)
  | Intents_failed     (** intents that ended in the [Failed] state *)

let all =
  [ Packets_processed; Module_hits_k; Module_hits_h; Module_hits_s;
    Module_hits_r; Guard_stops; Reports_emitted; Reports_deduped;
    Reports_dropped; Window_rolls; Cqe_hops; Sp_header_bytes;
    Software_continuations; Switch_failures; Switch_repairs;
    Slices_migrated; State_cells_moved; Software_fallbacks;
    Ingest_frames; Ingest_decoded; Ingest_non_ip; Ingest_truncated;
    Ingest_fragment; Ingest_malformed;
    Ingest_dropped; Analysis_warnings; Analysis_rejections;
    Intents_submitted; Intents_withdrawn; Intents_failed ]

let index = function
  | Packets_processed -> 0
  | Module_hits_k -> 1
  | Module_hits_h -> 2
  | Module_hits_s -> 3
  | Module_hits_r -> 4
  | Guard_stops -> 5
  | Reports_emitted -> 6
  | Reports_deduped -> 7
  | Reports_dropped -> 8
  | Window_rolls -> 9
  | Cqe_hops -> 10
  | Sp_header_bytes -> 11
  | Software_continuations -> 12
  | Switch_failures -> 13
  | Switch_repairs -> 14
  | Slices_migrated -> 15
  | State_cells_moved -> 16
  | Software_fallbacks -> 17
  | Ingest_frames -> 18
  | Ingest_decoded -> 19
  | Ingest_non_ip -> 20
  | Ingest_truncated -> 21
  | Ingest_fragment -> 22
  | Ingest_malformed -> 23
  | Ingest_dropped -> 24
  | Analysis_warnings -> 25
  | Analysis_rejections -> 26
  | Intents_submitted -> 27
  | Intents_withdrawn -> 28
  | Intents_failed -> 29

let num_keys = List.length all

(** Prometheus-style metric name (counters end in [_total]). *)
let name = function
  | Packets_processed -> "newton_packets_processed_total"
  | Module_hits_k -> "newton_module_hits_total" (* labelled kind=K *)
  | Module_hits_h -> "newton_module_hits_total"
  | Module_hits_s -> "newton_module_hits_total"
  | Module_hits_r -> "newton_module_hits_total"
  | Guard_stops -> "newton_guard_stops_total"
  | Reports_emitted -> "newton_reports_emitted_total"
  | Reports_deduped -> "newton_reports_deduped_total"
  | Reports_dropped -> "newton_reports_dropped_total"
  | Window_rolls -> "newton_window_rolls_total"
  | Cqe_hops -> "newton_cqe_hops_total"
  | Sp_header_bytes -> "newton_sp_header_bytes_total"
  | Software_continuations -> "newton_software_continuations_total"
  | Switch_failures -> "newton_switch_failures_total"
  | Switch_repairs -> "newton_switch_repairs_total"
  | Slices_migrated -> "newton_slices_migrated_total"
  | State_cells_moved -> "newton_state_cells_moved_total"
  | Software_fallbacks -> "newton_software_fallbacks_total"
  | Ingest_frames -> "newton_ingest_frames_total"
  | Ingest_decoded -> "newton_ingest_decoded_total"
  | Ingest_non_ip -> "newton_ingest_skipped_total" (* labelled reason=non_ip *)
  | Ingest_truncated -> "newton_ingest_skipped_total"
  | Ingest_fragment -> "newton_ingest_skipped_total"
  | Ingest_malformed -> "newton_ingest_skipped_total"
  | Ingest_dropped -> "newton_ingest_dropped_total"
  | Analysis_warnings -> "newton_analysis_warnings_total"
  | Analysis_rejections -> "newton_analysis_rejections_total"
  | Intents_submitted -> "newton_intents_submitted_total"
  | Intents_withdrawn -> "newton_intents_withdrawn_total"
  | Intents_failed -> "newton_intents_failed_total"

let help = function
  | Packets_processed -> "Packets run through the engine"
  | Module_hits_k | Module_hits_h | Module_hits_s | Module_hits_r ->
      "Module slot executions by kind (K/H/S/R)"
  | Guard_stops -> "Chains stopped by an R-module guard"
  | Reports_emitted -> "Reports exported to the analyzer"
  | Reports_deduped -> "Reports suppressed by per-window dedup"
  | Reports_dropped -> "Reports dropped by the mirror-session budget"
  | Window_rolls -> "Per-instance measurement-window resets"
  | Cqe_hops -> "Per-hop slice executions on the CQE path"
  | Sp_header_bytes -> "SP snapshot bytes added on the wire"
  | Software_continuations -> "Packets deferred to the CPU analyzer"
  | Switch_failures -> "Switch failures injected or observed"
  | Switch_repairs -> "Failed switches repaired and rejoined"
  | Slices_migrated -> "Slice instances re-placed after a switch failure"
  | State_cells_moved -> "Occupied register cells merged during state migration"
  | Software_fallbacks -> "Slices degraded to the software engine on failure"
  | Ingest_frames -> "Capture frames read from a pcap/pcapng file"
  | Ingest_decoded -> "Capture frames decoded into packets"
  | Ingest_non_ip | Ingest_truncated | Ingest_fragment | Ingest_malformed ->
      "Capture frames skipped by reason (non_ip/truncated/fragment/malformed)"
  | Ingest_dropped -> "Packets dropped on ingest-queue backpressure"
  | Analysis_warnings -> "Static-analysis warnings carried by admitted queries"
  | Analysis_rejections -> "Deployments refused by the static-analysis gate"
  | Intents_submitted -> "Intents submitted to the service daemon"
  | Intents_withdrawn -> "Active intents withdrawn at runtime"
  | Intents_failed -> "Intents that ended in the Failed lifecycle state"

(** The label set distinguishing samples that share a metric name. *)
let labels = function
  | Module_hits_k -> [ ("kind", "K") ]
  | Module_hits_h -> [ ("kind", "H") ]
  | Module_hits_s -> [ ("kind", "S") ]
  | Module_hits_r -> [ ("kind", "R") ]
  | Ingest_non_ip -> [ ("reason", "non_ip") ]
  | Ingest_truncated -> [ ("reason", "truncated") ]
  | Ingest_fragment -> [ ("reason", "fragment") ]
  | Ingest_malformed -> [ ("reason", "malformed") ]
  | Analysis_warnings | Analysis_rejections -> [ ("stage", "analysis") ]
  | Intents_submitted | Intents_withdrawn | Intents_failed ->
      [ ("stage", "service") ]
  | _ -> []

type active = {
  counts : int array;
  report_latency : Hist.t;  (** seconds from window start to emission *)
  window_drops : Hist.t;    (** budget drops per closed window *)
  queue_depth : Hist.t;     (** ingest-queue depth after each arrival turn *)
  interarrival : Hist.t;    (** capture-timestamp gaps between packets *)
}

(** [Null] is the zero-cost-when-disabled case: every instrumentation
    point is one pattern match. *)
type sink = Null | Active of active

let null = Null

let create () =
  Active
    {
      counts = Array.make num_keys 0;
      report_latency = Hist.create Hist.latency_bounds;
      window_drops = Hist.create Hist.count_bounds;
      queue_depth = Hist.create Hist.count_bounds;
      interarrival = Hist.create Hist.interarrival_bounds;
    }

let enabled = function Null -> false | Active _ -> true

let bump sink k n =
  match sink with
  | Null -> ()
  | Active a ->
      let i = index k in
      a.counts.(i) <- a.counts.(i) + n

let get sink k =
  match sink with Null -> 0 | Active a -> a.counts.(index k)

let observe_report_latency sink secs =
  match sink with Null -> () | Active a -> Hist.observe a.report_latency secs

let observe_window_drops sink n =
  match sink with
  | Null -> ()
  | Active a -> Hist.observe a.window_drops (float_of_int n)

let observe_queue_depth sink n =
  match sink with
  | Null -> ()
  | Active a -> Hist.observe a.queue_depth (float_of_int n)

let observe_interarrival sink secs =
  match sink with Null -> () | Active a -> Hist.observe a.interarrival secs

let report_latency = function
  | Null -> None
  | Active a -> Some a.report_latency

let window_drops = function Null -> None | Active a -> Some a.window_drops
let queue_depth = function Null -> None | Active a -> Some a.queue_depth
let interarrival = function Null -> None | Active a -> Some a.interarrival

let counters sink = List.map (fun k -> (k, get sink k)) all

let clear = function
  | Null -> ()
  | Active a ->
      Array.fill a.counts 0 num_keys 0;
      Hist.clear a.report_latency;
      Hist.clear a.window_drops;
      Hist.clear a.queue_depth;
      Hist.clear a.interarrival

(** Sum of two sinks ([Null] is the identity): counters add, histograms
    merge bucket-wise.  Associative and commutative, like the ALU merge
    of sharded sketch state. *)
let merge a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Active x, Active y ->
      Active
        {
          counts = Array.init num_keys (fun i -> x.counts.(i) + y.counts.(i));
          report_latency = Hist.merge x.report_latency y.report_latency;
          window_drops = Hist.merge x.window_drops y.window_drops;
          queue_depth = Hist.merge x.queue_depth y.queue_depth;
          interarrival = Hist.merge x.interarrival y.interarrival;
        }

let merge_all sinks = List.fold_left merge Null sinks
