(** Fixed-bound histograms for the telemetry sinks.

    Buckets are defined by an ascending array of inclusive upper
    bounds plus an implicit [+Inf] overflow bucket; counts are stored
    non-cumulative (the Prometheus exporter accumulates on render).
    Merging is element-wise addition, which is what lets per-domain
    sinks fold back into one switch-level view ({!Stats.merge}). *)

type t = {
  bounds : float array;
  counts : int array; (* length = Array.length bounds + 1 *)
  mutable sum : float;
  mutable count : int;
}

(** 1-2-5 decades from 100 µs to 10 s: report latency within a 100 ms
    window lands mid-range with room for long windows. *)
let latency_bounds =
  [| 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3; 1e-2; 2e-2; 5e-2; 0.1; 0.2; 0.5;
     1.0; 2.0; 5.0; 10.0 |]

(** 1-2-5 decades from 1 to 10k: per-window drop / message counts. *)
let count_bounds =
  [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0; 2000.0;
     5000.0; 10000.0 |]

(** 1-2-5 decades from 1 µs to 1 s: packet inter-arrival gaps, which sit
    well below report latencies on a backbone capture. *)
let interarrival_bounds =
  [| 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
     1e-2; 2e-2; 5e-2; 0.1; 0.2; 0.5; 1.0 |]

let create bounds =
  let n = Array.length bounds in
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Hist.create: bounds not strictly ascending"
  done;
  { bounds = Array.copy bounds; counts = Array.make (n + 1) 0; sum = 0.0; count = 0 }

let bounds t = Array.copy t.bounds
let count t = t.count
let sum t = t.sum

(* First bucket whose bound covers [x]; the overflow bucket otherwise.
   Linear scan: bound arrays are small and observe is not on the
   per-packet path (reports and window rolls only). *)
let bucket_of t x =
  let n = Array.length t.bounds in
  let rec go i = if i >= n then n else if x <= t.bounds.(i) then i else go (i + 1) in
  go 0

let observe t x =
  let b = bucket_of t x in
  t.counts.(b) <- t.counts.(b) + 1;
  t.sum <- t.sum +. x;
  t.count <- t.count + 1

(** Non-cumulative counts including the overflow bucket. *)
let counts t = Array.copy t.counts

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.sum <- 0.0;
  t.count <- 0

let copy t =
  { bounds = Array.copy t.bounds; counts = Array.copy t.counts; sum = t.sum;
    count = t.count }

(** Fold [src] into [dst] bucket-wise.
    @raise Invalid_argument on a bound-layout mismatch. *)
let merge_into ~dst ~src =
  if dst.bounds <> src.bounds then invalid_arg "Hist.merge_into: bounds mismatch";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.sum <- dst.sum +. src.sum;
  dst.count <- dst.count + src.count

let merge a b =
  let t = copy a in
  merge_into ~dst:t ~src:b;
  t

(** The histogram as a {!Metric} sample value. *)
let to_value t =
  Metric.Buckets
    { bounds = Array.copy t.bounds; counts = Array.copy t.counts; sum = t.sum;
      count = t.count }
