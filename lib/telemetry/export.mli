(** Snapshot exporters: JSON (bench/CI artifacts) and the Prometheus
    text exposition format.  Both renderings are deterministic, so
    golden tests can compare exact strings. *)

(** The snapshot as a JSON value: [{"metrics": [...]}]. *)
val to_json : Snapshot.t -> Newton_util.Json.t

val to_json_string : Snapshot.t -> string

(** The snapshot in the Prometheus text exposition format (cumulative
    [_bucket{le=...}] lines plus [_sum]/[_count] for histograms). *)
val to_prometheus : Snapshot.t -> string
