(** Pre-sharded replay arenas: partition a packet stream into one
    contiguous {!Newton_packet.Flat} arena per shard before replay, so
    the hot loop never dispatches per packet.  Guarantees: stream order
    within each shard, and an exact partition of the input (each packet
    in exactly one arena — no duplicates, no drops). *)

open Newton_packet

(** [build sharder packets] — one arena per shard, [Shard.jobs sharder]
    of them.  The shard function runs once per packet at build time. *)
val build : Shard.t -> Packet.t array -> Flat.t array

(** Single-shard arena: the whole stream in stream order. *)
val build1 : Packet.t array -> Flat.t

(** Packets per shard of a built arena set. *)
val loads : Flat.t array -> int array

val total_packets : Flat.t array -> int
