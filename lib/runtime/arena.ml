(** Pre-sharded replay arenas.

    Partitions a packet stream into one contiguous {!Flat} arena per
    shard {e before} replay starts: a counting pass sizes every arena
    exactly, a fill pass writes each packet's words straight into its
    shard's buffer in stream order.  The shard function runs once per
    packet here, at build time — the replay hot loop never dispatches
    again.  Within a shard, arena order is stream order (the
    order-preservation guarantee the differential tests rely on), and
    the arenas partition the input exactly: every packet lands in
    exactly one shard, no duplicates, no drops. *)

open Newton_packet

(** Build one arena per shard ([Shard.jobs sharder] of them). *)
let build sharder (packets : Packet.t array) =
  let jobs = Shard.jobs sharder in
  let n = Array.length packets in
  if jobs = 1 then [| Flat.of_packets packets |]
  else begin
    let owner = Array.make n 0 in
    let counts = Array.make jobs 0 in
    for i = 0 to n - 1 do
      let s = Shard.assign sharder packets.(i) in
      owner.(i) <- s;
      counts.(s) <- counts.(s) + 1
    done;
    let arenas = Array.init jobs (fun s -> Flat.create counts.(s)) in
    let fill = Array.make jobs 0 in
    for i = 0 to n - 1 do
      let s = owner.(i) in
      Flat.set_packet arenas.(s) fill.(s) packets.(i);
      fill.(s) <- fill.(s) + 1
    done;
    arenas
  end

(** Single-shard arena: the whole stream, stream order. *)
let build1 (packets : Packet.t array) = Flat.of_packets packets

(** Packets per shard of a built arena set. *)
let loads arenas = Array.map Flat.length arenas

let total_packets arenas =
  Array.fold_left (fun acc a -> acc + Flat.length a) 0 arenas
