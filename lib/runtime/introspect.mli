(** Engine introspection: assembling telemetry snapshots from sink
    counters plus gauges computed off live engine state (rule-table
    utilization vs cell capacity, stage occupancy, per-instance
    footprints, Bloom / Count-Min health). *)

open Newton_compiler
open Newton_telemetry

(** Sketch-health gauges of one instance layout over [arrays] — live
    per-shard banks or their ALU merge, evaluated identically. *)
val sketch_metrics :
  labels:(string * string) list ->
  slots:Ir.slot list array ->
  arrays:(Engine.array_key * Newton_sketch.Register_array.t) list ->
  Snapshot.t

(** Full snapshot of a sequential engine, every sample tagged with
    [labels] (e.g. [("switch", "0")]). *)
val engine_metrics : ?labels:(string * string) list -> Engine.t -> Snapshot.t

(** Snapshot of a sharded engine: merged per-domain counters, shard
    loads, shard-0 layout gauges, sketch health over the ALU-merged
    banks.  Counter totals equal the sequential engine's over the same
    stream. *)
val parallel_metrics :
  ?labels:(string * string) list -> Parallel_engine.t -> Snapshot.t
