(** Domain-pool sharded trace replay.

    [jobs] replica {!Engine}s, one per shard; replay partitions packets
    with a {!Shard} strategy, runs each shard's stream in fixed-size
    batches on its own OCaml 5 domain, and merges results with {!Merge}
    (epoch-aligned reports, ALU-merged sketch state).  [jobs = 1] is
    bit-identical to the sequential {!Engine}.  Divergences of sharded
    replay (per-shard Bloom false-positive rates, per-shard report
    budgets, Flow-sharded cross-flow aggregates) are documented in
    docs/PARALLELISM.md. *)

open Newton_packet
open Newton_query
open Newton_sketch
open Newton_compiler

type t

val default_batch : int

(** [create ?jobs ?batch ?shard_key ~switch_id ()] — [jobs] defaults to
    {!Domain_pool.recommended_jobs} and [shard_key] to {!Shard.Flow}.
    @raise Invalid_argument if [jobs < 1] or [batch <= 0]. *)
val create :
  ?jobs:int -> ?batch:int -> ?shard_key:Shard.strategy -> switch_id:int ->
  unit -> t

val jobs : t -> int
val batch : t -> int
val strategy : t -> Shard.strategy
val shard_engines : t -> Engine.t array

(** Merged per-domain telemetry: each shard engine owns its own sink;
    the fold adds counters and histograms (associative/commutative,
    like the ALU merge of sketch state). *)
val merged_sink : t -> Newton_telemetry.Stats.sink

(** Enable (fresh per-shard sinks) or disable
    ([Newton_telemetry.Stats.null]) telemetry on every shard. *)
val set_telemetry : t -> bool -> unit

(** Packets routed to each shard so far. *)
val shard_loads : t -> int array

(** Install a compiled query on every shard under one uid; the rule
    count is the per-switch footprint.
    @raise Engine.Rules_exhausted as {!Engine.install}. *)
val install : t -> ?uid:int -> Compose.t -> int * int

(** Remove an installed query from every shard. *)
val remove : t -> int -> int option

(** Mirror budget, applied per shard. *)
val set_report_budget : t -> int option -> unit

(** Stage 1 of a large replay: pre-shard the stream into contiguous
    per-domain {!Newton_packet.Flat} arenas ({!Arena.build}); the shard
    function runs once per packet here and never again. *)
val build_arenas : t -> Packet.t array -> Flat.t array

(** Stage 2: replay each shard's arena on its own domain through the
    engine's compiled program ({!Engine.process_flat}); state merges
    only at observation points.
    @raise Invalid_argument when the arena count differs from [jobs]. *)
val replay_arenas : t -> Flat.t array -> unit

(** Replay a packet array: calls of at most [batch] packets dispatch
    inline on the calling domain (same shard routing, no shard setup);
    larger calls run {!build_arenas} then {!replay_arenas}. *)
val process_packets : t -> Packet.t array -> unit

val process_trace : t -> Newton_trace.Gen.t -> unit

(** Shard-merged reports (sequential stream when [jobs = 1]). *)
val reports : t -> Report.t list

(** Drain every shard; returns the merged stream. *)
val drain_reports : t -> Report.t list

(** Reports emitted across shards, pre-dedup. *)
val message_count : t -> int

val packets_seen : t -> int

(** ALU-merged register state of one installed query across shards. *)
val merged_arrays :
  t -> int -> (Engine.array_key * Register_array.t) list option

(** Per-shard engine statistics. *)
val stats : t -> Engine.instance_stats list list

val to_string : t -> string
