(** Folding per-shard replay results back into one view.

    Two halves, mirroring what a sharded deployment exports:

    - {b Reports}: each shard emits its reports in packet order; the
      merge concatenates them epoch-aligned — stable-sorted by
      (window, query) so every epoch's reports are contiguous, with
      shard order preserved inside an epoch — then deduplicates by
      report identity, exactly like the analyzer's network-wide dedup.
    - {b Sketch state}: per-shard register arrays combine with the ALU
      merge op of their owning S slot ([`Or] for Bloom banks, [`Add]
      for Count-Min rows, [`Max] for running maxima).  Because every
      shard hashes with the same seeds, the merged banks are
      register-for-register what the sequential engine would hold over
      the same window. *)

open Newton_query
open Newton_sketch
open Newton_compiler

(** The cross-shard combine op of a state slot, when it has mergeable
    state ([S_bf]/[S_cm]/[S_max]). *)
let slot_merge_op (s : Ir.slot) =
  match s.Ir.cfg with
  | Ir.S_cfg { op = Ir.S_bf; _ } -> Some `Or
  | Ir.S_cfg { op = Ir.S_cm _; _ } -> Some `Add
  | Ir.S_cfg { op = Ir.S_max _; _ } -> Some `Max
  | _ -> None

(** Resolve the merge op of each state-bank key from an instance's slot
    layout — the [op_of] argument {!Engine.absorb_state} and the
    cross-shard merge below both need. *)
let array_ops (inst : Engine.instance) =
  let ops = Hashtbl.create 8 in
  Array.iter
    (List.iter (fun (s : Ir.slot) ->
         match slot_merge_op s with
         | Some op -> Hashtbl.replace ops (s.Ir.branch, s.Ir.prim, s.Ir.suite) op
         | None -> ()))
    (Engine.instance_slots inst);
  fun key -> Hashtbl.find_opt ops key

(** Epoch-aligned merge of per-shard report streams: stable sort on
    (window, query) keeps shard-major order within an epoch, then
    first-wins identity dedup. *)
let reports (per_shard : Report.t list list) =
  List.concat per_shard
  |> List.stable_sort (fun (a : Report.t) (b : Report.t) ->
         match compare a.Report.window b.Report.window with
         | 0 -> compare a.Report.query_id b.Report.query_id
         | c -> c)
  |> Report.dedup

(** Merge one instance's register arrays across shards.  [instances]
    are the same installed query on every shard engine (same uid, same
    compiled layout).  Returns the merged array per state-bank key, in
    the order the engine lists them.
    @raise Invalid_argument if the instance lists are shape-mismatched,
    or if a state bank has no merge op in the slot layout — a bank must
    never fall back to an implicit combine (summing a Bloom filter
    would silently corrupt membership bits). *)
let instance_arrays (instances : Engine.instance list) =
  match instances with
  | [] -> []
  | first :: rest ->
      (* Locate the merge op of every array key from the slot layout. *)
      let op_of = Hashtbl.create 8 in
      Array.iter
        (List.iter (fun (s : Ir.slot) ->
             match slot_merge_op s with
             | Some op ->
                 Hashtbl.replace op_of (s.Ir.branch, s.Ir.prim, s.Ir.suite) op
             | None -> ()))
        (Engine.instance_slots first);
      List.map
        (fun (key, arr) ->
          let op =
            match Hashtbl.find_opt op_of key with
            | Some op -> op
            | None ->
                let b, p, s = key in
                invalid_arg
                  (Printf.sprintf
                     "Merge.instance_arrays: state bank (branch %d, prim \
                      %d, suite %d) has no merge op in the slot layout"
                     b p s)
          in
          let merged = Register_array.copy arr in
          List.iter
            (fun (inst : Engine.instance) ->
              match Engine.instance_array inst key with
              | Some src -> Register_array.merge_into ~op ~dst:merged ~src
              | None ->
                  invalid_arg "Merge.instance_arrays: array-key mismatch")
            rest;
          (key, merged))
        (Engine.instance_arrays first)
