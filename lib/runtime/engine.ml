(** Per-switch query execution engine.

    Holds the query instances installed on one switch — each a slice of a
    compiled query's module chain (the whole chain for sole-switch
    execution, a stage range for CQE) — together with the register arrays
    their state banks own.  Packets are run through [newton_init]
    classification and then through each matching instance's slots in
    chain order; windowed state resets every [query.window] seconds as in
    §6 ("values of reduce and distinct are evaluated and reset every
    100 ms").

    Stage placement governs {e which} slots a switch hosts and its
    resource accounting; execution follows chain order, which the
    composition's dependency constraints keep consistent with stage
    order. *)

open Newton_packet
open Newton_sketch
open Newton_query
open Newton_compiler
open Newton_telemetry

type array_key = int * int * int (* branch, prim, suite *)

type instance = {
  uid : int;                       (** controller-assigned install id *)
  compiled : Compose.t;
  stage_lo : int;                  (** slice bounds, inclusive *)
  stage_hi : int;
  slots : Ir.slot list array;      (** hosted slots per branch, chain order *)
  arrays : (array_key, Register_array.t) Hashtbl.t;
  reported : (int * int array, unit) Hashtbl.t; (** (window, keys) dedup *)
  mutable rules : int;             (** table entries this slice holds *)
  mutable window_index : int;      (** this instance's current window *)
}

(* ---------------- compiled flat-arena program ----------------

   The per-packet interpreter above ([process_packet]) pattern-matches
   IR slots, allocates a context and key projections per packet, and
   resolves register arrays through a Hashtbl on every S execution.
   For arena replay ([process_flat]) each installed instance is
   compiled once into a flat program: key fields become dense indices
   with reusable scratch buffers, register arrays become direct
   references, constant ALUs are prebuilt, and branch classifiers
   become (index, value, mask) triples over the arena's word buffer.
   The program is a pure acceleration of the interpreter — observable
   state (reports, arrays, counters) evolves identically, which the
   differential tests assert. *)

type cslot =
  | C_key of {
      ck_meta : int;
      ck_fidx : int array;   (* dense field indices *)
      ck_masks : int array;
      ck_buf : int array;    (* reused projection buffer *)
    }
  | C_hash_direct of { chd_meta : int }
  | C_hash of { ch_meta : int; ch_seed : int; ch_range : int }
  | C_s_pass of { csp_meta : int }
  | C_s_alu of {
      csa_meta : int;
      csa_arr : Register_array.t;
      csa_alu : Alu.t;       (* prebuilt: Or 1 (Bloom), Add/Max const *)
    }
  | C_s_add_field of { caf_meta : int; caf_arr : Register_array.t; caf_fidx : int }
  | C_s_max_field of { cmf_meta : int; cmf_arr : Register_array.t; cmf_fidx : int }
  | C_s_read of { csr_meta : int; csr_arr : Register_array.t option }
  | C_r of {
      cr_meta : int;
      cr_merge : (Ir.acc * Ir.merge_op) option;
      cr_combine : Ir.merge_op option;
      cr_guard : (Ir.guard_target * Ast.cmp_op * int) option;
      cr_report : bool;
    }

type cbranch = {
  (* newton_init entry as parallel arrays (no per-check pointer chase) *)
  cbm_fidx : int array;
  cbm_value : int array;
  cbm_mask : int array;
  cb_slots : cslot array;
}

type cinst = {
  ci : instance;
  ci_window_len : float;
  ci_query_id : int;
  ci_pair : bool;            (* combine op is Pair: reports carry g2 *)
  ci_branches : cbranch array;
  ci_ctx : Ctx.t;            (* branch-0 scratch context *)
  ci_bctx : Ctx.t;           (* scratch for branches > 0 *)
}

type t = {
  switch_id : int;
  (* Mirror-session budget: reports are exported by cloning packets to
     the analyzer; a switch mirrors at most [report_budget] packets per
     window (None = unlimited).  Overflow reports are dropped on the
     wire — the analyzer's dedup sees at-most-once anyway. *)
  mutable report_budget : int option;
  mutable budget_window : int;
  mutable window_reports : int;
  mutable window_drops : int; (* budget drops in the current window *)
  mutable dropped_reports : int;
  (* Telemetry sink: every event below is one [Stats.bump] away;
     [Stats.null] turns the whole layer into a single branch. *)
  mutable sink : Stats.sink;
  mutable instances : instance list;
  (* newton_init: ternary match over the 5-tuple + TCP flags (§4.1
     "Concurrency"), dispatching packets to instance/branch chains.
     Bounded like any hardware table. *)
  init_table : (int * int) Newton_dataplane.Table.t; (* (uid, branch) *)
  (* table entries per physical module cell (stage, kind, set); each
     cell is one hardware table of [Module_cost.rules_per_module]
     capacity — this is what bounds concurrent queries. *)
  cell_rules : (int * Newton_dataplane.Module_cost.kind * int, int) Hashtbl.t;
  mutable reports : Report.t list; (* reverse order *)
  mutable report_count : int;
  mutable packets_seen : int;
  mutable next_uid : int;
  (* Compiled arena program, rebuilt lazily after install/remove. *)
  mutable cprog : cinst array option;
}

(** Raised when a module table cannot accept another query's rule; the
    controller reacts by placing the query elsewhere. *)
exception Rules_exhausted of { stage : int; kind : string }

let create ?(sink = Stats.create ()) ~switch_id () =
  {
    switch_id;
    report_budget = None;
    budget_window = -1;
    window_reports = 0;
    window_drops = 0;
    dropped_reports = 0;
    sink;
    instances = [];
    init_table =
      Newton_dataplane.Table.create ~capacity:1024 ~name:"newton_init"
        ~key_width:(List.length Ir.init_fields) ();
    cell_rules = Hashtbl.create 64;
    reports = [];
    report_count = 0;
    packets_seen = 0;
    next_uid = 1;
    cprog = None;
  }

let switch_id t = t.switch_id

(** Cap the mirror sessions: at most [n] report exports per window. *)
let set_report_budget t n = t.report_budget <- n

let report_budget t = t.report_budget

(** Reports dropped because the mirror budget was exhausted. *)
let dropped_reports t = t.dropped_reports
let instances t = t.instances
let reports t = List.rev t.reports
let report_count t = t.report_count
let packets_seen t = t.packets_seen

let sink t = t.sink
let set_sink t s = t.sink <- s

(** Count a packet against this engine without executing it — the CQE
    path executor and the controller account path hops this way. *)
let record_packet_seen t =
  t.packets_seen <- t.packets_seen + 1;
  Stats.bump t.sink Stats.Packets_processed 1

(* ---------------- instance accessors ---------------- *)

let instance_uid i = i.uid
let instance_compiled i = i.compiled
let instance_query i = i.compiled.Compose.query
let instance_rules i = i.rules
let instance_stage_lo i = i.stage_lo
let instance_stage_hi i = i.stage_hi
let instance_window i = i.window_index
let instance_reported_keys i = Hashtbl.length i.reported
let instance_slots i = i.slots

(* Sorted by (branch, prim, suite) so the listing order is stable
   across runs and OCaml versions (Hashtbl fold order is not). *)
let instance_arrays i =
  Hashtbl.fold (fun key arr acc -> (key, arr) :: acc) i.arrays []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let instance_array i key = Hashtbl.find_opt i.arrays key

(** Install a slice [stage_lo, stage_hi] of a compiled query.  Returns
    the instance uid and the number of table entries installed (module
    rules in the slice + the newton_init entries when stage 0 is here). *)
let install t ?uid ?(stage_lo = 0) ?(stage_hi = max_int) compiled =
  let slots =
    Array.map
      (fun branch_slots ->
        let in_range s = s.Ir.stage >= stage_lo && s.Ir.stage <= stage_hi in
        if stage_lo = 0 then List.filter in_range branch_slots
        else begin
          (* Shadow replication for CQE slices: operation keys and
             per-suite hash results do not cross switches (the 12-byte SP
             header only carries one hash/state per metadata set and the
             global result), so a non-first slice re-installs the
             upstream K of each metadata set it uses and, for every
             hosted state bank whose hash module lives upstream, that
             suite's H (re-hashing locally is how a real deployment
             co-locates each register array with its index computation). *)
          let h_of = Hashtbl.create 8 in
          List.iter
            (fun s ->
              if s.Ir.kind = Newton_dataplane.Module_cost.H && s.Ir.stage < stage_lo
              then Hashtbl.replace h_of (s.Ir.branch, s.Ir.prim, s.Ir.suite) s)
            branch_slots;
          let emitted = Hashtbl.create 8 in
          let emit acc s =
            let key = (s.Ir.kind, s.Ir.branch, s.Ir.prim, s.Ir.suite, s.Ir.meta) in
            if Hashtbl.mem emitted key then acc
            else begin
              Hashtbl.add emitted key ();
              s :: acc
            end
          in
          (* Chain-latest K per metadata set, hosted or upstream: a
             slot needing keys shadows exactly the K whose selection is
             in effect at its chain position. *)
          let last_k = [| None; None |] in
          let acc =
            List.fold_left
              (fun acc s ->
                if s.Ir.kind = Newton_dataplane.Module_cost.K then
                  last_k.(s.Ir.meta) <- Some s;
                if not (in_range s) then acc
                else
                  let needs_keys =
                    match (s.Ir.kind, s.Ir.cfg) with
                    | (Newton_dataplane.Module_cost.H | Newton_dataplane.Module_cost.S), _ ->
                        true
                    | Newton_dataplane.Module_cost.R, Ir.R_cfg { report = true; _ } ->
                        (* reports carry the operation keys *)
                        true
                    | _ -> false
                  in
                  let acc =
                    if needs_keys then
                      match last_k.(s.Ir.meta) with
                      | Some k -> emit acc k
                      | None -> acc
                    else acc
                  in
                  let acc =
                    match s.Ir.kind with
                    | Newton_dataplane.Module_cost.S -> (
                        (* re-hash locally when the suite's H is upstream *)
                        match
                          Hashtbl.find_opt h_of (s.Ir.branch, s.Ir.prim, s.Ir.suite)
                        with
                        | Some h -> emit acc h
                        | None -> acc)
                    | _ -> acc
                  in
                  emit acc s)
              [] branch_slots
          in
                    List.rev acc
        end)
      compiled.Compose.branches
  in
  let arrays = Hashtbl.create 16 in
  Array.iter
    (List.iter (fun s ->
         match s.Ir.cfg with
         | Ir.S_cfg { op = Ir.S_bf | Ir.S_cm _ | Ir.S_max _; registers } ->
             Hashtbl.replace arrays
               (s.Ir.branch, s.Ir.prim, s.Ir.suite)
               (Register_array.create registers)
         | _ -> ()))
    slots;
  let nrules =
    Array.fold_left (fun acc l -> acc + List.length l) 0 slots
    + if stage_lo = 0 then Array.length compiled.Compose.init_entries else 0
  in
  (* CQE slices of one deployment share a controller-assigned uid so the
     path executor can thread one context across switches. *)
  let uid =
    match uid with
    | Some u ->
        t.next_uid <- max t.next_uid (u + 1);
        u
    | None ->
        let u = t.next_uid in
        t.next_uid <- u + 1;
        u
  in
  (* Atomic per-cell rule accounting: every hosted slot is one rule in
     the physical table of its (stage, kind, set) cell, which holds at
     most [Module_cost.rules_per_module] rules.  Check the whole batch
     before committing so a rejected install leaves no residue. *)
  let increments = Hashtbl.create 32 in
  Array.iter
    (List.iter (fun s ->
         let cell = (s.Ir.stage, s.Ir.kind, s.Ir.meta) in
         Hashtbl.replace increments cell
           (1 + Option.value (Hashtbl.find_opt increments cell) ~default:0)))
    slots;
  Hashtbl.iter
    (fun ((stage, kind, _) as cell) inc ->
      let used = Option.value (Hashtbl.find_opt t.cell_rules cell) ~default:0 in
      if used + inc > Newton_dataplane.Module_cost.rules_per_module then
        raise
          (Rules_exhausted
             { stage; kind = Newton_dataplane.Module_cost.kind_to_string kind }))
    increments;
  Hashtbl.iter
    (fun cell inc ->
      Hashtbl.replace t.cell_rules cell
        (inc + Option.value (Hashtbl.find_opt t.cell_rules cell) ~default:0))
    increments;
  (* newton_init entries: ternary over (5-tuple, TCP flags). *)
  if stage_lo = 0 then
    Array.iteri
      (fun b entry ->
        let matches =
          Array.of_list
            (List.map
               (fun field ->
                 match
                   List.find_opt
                     (fun (f, _, _) -> Field.equal f field)
                     entry.Ir.ie_matches
                 with
                 | Some (_, value, mask) -> Newton_dataplane.Table.Ternary { value; mask }
                 | None -> Newton_dataplane.Table.Any)
               Ir.init_fields)
        in
        ignore
          (Newton_dataplane.Table.add t.init_table ~priority:uid ~matches (uid, b)))
      compiled.Compose.init_entries;
  let inst =
    {
      uid;
      compiled;
      stage_lo;
      stage_hi;
      slots;
      arrays;
      reported = Hashtbl.create 64;
      rules = nrules;
      window_index = 0;
    }
  in
  t.instances <- t.instances @ [ inst ];
  t.cprog <- None;
  (uid, nrules)

(** Remove an instance; returns how many table entries were freed, or
    [None] if the uid is unknown. *)
let remove t uid =
  match List.find_opt (fun i -> i.uid = uid) t.instances with
  | None -> None
  | Some inst ->
      t.instances <- List.filter (fun i -> i.uid <> uid) t.instances;
      t.cprog <- None;
      (* release the module-cell rules and the newton_init entries *)
      Array.iter
        (List.iter (fun s ->
             let cell = (s.Ir.stage, s.Ir.kind, s.Ir.meta) in
             match Hashtbl.find_opt t.cell_rules cell with
             | Some n when n > 1 -> Hashtbl.replace t.cell_rules cell (n - 1)
             | Some _ -> Hashtbl.remove t.cell_rules cell
             | None -> ()))
        inst.slots;
      List.iter
        (fun id -> ignore (Newton_dataplane.Table.remove t.init_table id))
        (Newton_dataplane.Table.find_ids t.init_table (fun (u, _) -> u = uid));
      Some inst.rules

let find_instance t uid = List.find_opt (fun i -> i.uid = uid) t.instances

let total_rules t = List.fold_left (fun acc i -> acc + i.rules) 0 t.instances

(** Entries currently in the [newton_init] classifier. *)
let init_table_size t = Newton_dataplane.Table.size t.init_table

(** Rules held per physical module cell (stage, kind, set) — the
    utilization side of the [Module_cost.rules_per_module] capacity. *)
let cell_usage t =
  Hashtbl.fold (fun cell used acc -> (cell, used) :: acc) t.cell_rules []
  |> List.sort compare

(* ---------------- newton_init classification ---------------- *)

let init_entry_matches pkt (e : Ir.init_entry) =
  List.for_all
    (fun (field, value, mask) -> Packet.get pkt field land mask = value)
    e.Ir.ie_matches

(* ---------------- slot execution ---------------- *)

let project pkt keys =
  Array.of_list
    (List.map (fun (k : Ast.key) -> Packet.get pkt k.Ast.field land k.Ast.mask) keys)

(* Direct-mode hash: single key passes through, several keys pack with
   the same formula the compiler used for the expected constant. *)
let direct_value keys =
  match Array.length keys with
  | 0 -> 0
  | 1 -> keys.(0)
  | _ -> Array.fold_left (fun acc v -> ((acc lsl 16) lxor v) land 0x3FFFFFFF) 0 keys

let merge_value op acc v =
  match op with
  | Ir.M_set -> v
  | Ir.M_min -> min acc v
  | Ir.M_max -> max acc v
  | Ir.M_add -> acc + v
  | Ir.M_sub -> max 0 (acc - v)

(* The telemetry counter of a slot-kind execution. *)
let hit_key = function
  | Newton_dataplane.Module_cost.K -> Stats.Module_hits_k
  | Newton_dataplane.Module_cost.H -> Stats.Module_hits_h
  | Newton_dataplane.Module_cost.S -> Stats.Module_hits_s
  | Newton_dataplane.Module_cost.R -> Stats.Module_hits_r

let exec_slot inst (ctx : Ctx.t) pkt (s : Ir.slot) =
  let m = s.Ir.meta in
  match s.Ir.cfg with
  | Ir.K_cfg keys -> ctx.op_keys.(m) <- project pkt keys
  | Ir.H_cfg { mode; range } ->
      let keys = ctx.op_keys.(m) in
      let v =
        match mode with
        | `Direct -> direct_value keys
        | `Hash seed -> Hash.hash_vector ~seed keys mod range
      in
      ctx.hash.(m) <- v
  | Ir.S_cfg { op; _ } -> (
      let idx = ctx.hash.(m) in
      match op with
      | Ir.S_pass -> ctx.state.(m) <- idx
      | Ir.S_bf ->
          let arr = Hashtbl.find inst.arrays (s.Ir.branch, s.Ir.prim, s.Ir.suite) in
          ctx.state.(m) <- Register_array.exec arr (Alu.Or 1) idx
      | Ir.S_cm src ->
          let v =
            match src with Ir.Const k -> k | Ir.Field_val f -> Packet.get pkt f
          in
          let arr = Hashtbl.find inst.arrays (s.Ir.branch, s.Ir.prim, s.Ir.suite) in
          ctx.state.(m) <- Register_array.exec arr (Alu.Add v) idx
      | Ir.S_max src ->
          let v =
            match src with Ir.Const k -> k | Ir.Field_val f -> Packet.get pkt f
          in
          let arr = Hashtbl.find inst.arrays (s.Ir.branch, s.Ir.prim, s.Ir.suite) in
          ctx.state.(m) <- Register_array.exec arr (Alu.Max v) idx
      | Ir.S_read { ar_branch; ar_prim; ar_suite } -> (
          (* Reads the sibling branch's array when hosted locally; a
             remote array (CQE slicing) reads as 0 and the analyzer
             refines — the state-dispersion limitation of §7. *)
          match Hashtbl.find_opt inst.arrays (ar_branch, ar_prim, ar_suite) with
          | Some arr -> ctx.state.(m) <- Register_array.get arr idx
          | None -> ctx.state.(m) <- 0))
  | Ir.R_cfg { merge; guard; report; combine } ->
      (match merge with
      | Some (acc, op) -> (
          let v = ctx.state.(m) in
          match acc with
          | Ir.G1 -> ctx.g1 <- merge_value op ctx.g1 v
          | Ir.G2 -> ctx.g2 <- merge_value op ctx.g2 v)
      | None -> ());
      (match combine with
      | Some op -> ctx.g1 <- merge_value op ctx.g1 ctx.g2
      | None -> ());
      let passes =
        match guard with
        | None -> true
        | Some (target, op, value) ->
            let v =
              match target with
              | Ir.On_state -> ctx.state.(m)
              | Ir.On_g1 -> ctx.g1
              | Ir.On_g2 -> ctx.g2
            in
            Ast.cmp_holds op v value
      in
      ignore report;
      if not passes then ctx.stopped <- true

(* Whether an R slot requests a report (used after a non-stopped pass). *)
let slot_reports (s : Ir.slot) =
  match s.Ir.cfg with Ir.R_cfg { report; _ } -> report | _ -> false

(* ---------------- windowing ---------------- *)

(* Each instance keeps its own window clock: concurrent queries may use
   different window lengths (Ast.window). *)
let roll_instance_window t inst now =
  let w =
    int_of_float (now /. inst.compiled.Compose.query.Ast.window)
  in
  if w <> inst.window_index then begin
    inst.window_index <- w;
    Hashtbl.iter (fun _ arr -> Register_array.clear arr) inst.arrays;
    Hashtbl.reset inst.reported;
    Stats.bump t.sink Stats.Window_rolls 1
  end

(* Wrapper used by the path executor and the controller: rolls every
   instance of the engine.  Window lengths are per-instance
   ([query.window]); there is no per-call override. *)
let maybe_roll_window t now =
  List.iter (fun inst -> roll_instance_window t inst now) t.instances

(* ---------------- state migration ---------------- *)

(** Merge [src]'s sketch state and report-dedup memory into [dst] —
    the state-carrying half of switch-failure recovery.  Both must be
    instances of the same compiled slice (same array keys).

    Window alignment comes first: migrated state only makes sense
    inside one measurement window.  If [src] is in a later window than
    [dst] (a freshly installed replacement starts at window 0), [dst]
    is cleared and adopts [src]'s window; if [src] is in an {e earlier}
    window its state is stale — the next roll would wipe it anyway —
    so nothing is merged.  Arrays then combine under [op_of]'s per-bank
    ALU op, and [src]'s (window, keys) dedup entries are carried over so
    the replacement does not re-emit reports the failed switch already
    exported.  Returns (banks merged, occupied cells moved). *)
let absorb_state ~op_of ~src ~dst =
  if src.window_index > dst.window_index then begin
    Hashtbl.iter (fun _ arr -> Register_array.clear arr) dst.arrays;
    Hashtbl.reset dst.reported;
    dst.window_index <- src.window_index
  end;
  if src.window_index < dst.window_index then (0, 0)
  else begin
    let banks = ref 0 and cells = ref 0 in
    Hashtbl.iter
      (fun key src_arr ->
        match Hashtbl.find_opt dst.arrays key with
        | None -> invalid_arg "Engine.absorb_state: array-key mismatch"
        | Some dst_arr -> (
            match op_of key with
            | None ->
                let b, p, s = key in
                invalid_arg
                  (Printf.sprintf
                     "Engine.absorb_state: state bank (branch %d, prim %d, \
                      suite %d) has no merge op in the slot layout"
                     b p s)
            | Some op ->
                incr banks;
                cells := !cells + Register_array.occupancy src_arr;
                Register_array.merge_into ~op ~dst:dst_arr ~src:src_arr))
      src.arrays;
    Hashtbl.iter (fun k () -> Hashtbl.replace dst.reported k ()) src.reported;
    (!banks, !cells)
  end

(* ---------------- packet processing ---------------- *)

(** Process a packet through one instance, resuming from [ctx] (fresh or
    SP-restored).  Returns the context after the slice (for [newton_fin])
    or [None] if the packet failed classification / a guard. *)
let process_instance t inst ?(ctx = Ctx.create ()) pkt =
  let window = int_of_float (Packet.ts pkt /. inst.compiled.Compose.query.Ast.window) in
  Array.iteri
    (fun b slots ->
      let entry = inst.compiled.Compose.init_entries.(b) in
      if (not ctx.Ctx.stopped) && init_entry_matches pkt entry && slots <> [] then begin
        (* Branch 0 runs on the caller's context (which CQE may have
           restored from an SP header); other branches process disjoint
           traffic and start fresh. *)
        let bctx = if b = 0 then ctx else Ctx.create () in
        let stopped = ref false in
        List.iter
          (fun s ->
            if not !stopped then begin
              Stats.bump t.sink (hit_key s.Ir.kind) 1;
              exec_slot inst bctx pkt s;
              if bctx.Ctx.stopped then begin
                stopped := true;
                Stats.bump t.sink Stats.Guard_stops 1
              end
              else if slot_reports s then begin
                let keys = bctx.Ctx.op_keys.(s.Ir.meta) in
                let dedup_key = (window, keys) in
                if Hashtbl.mem inst.reported dedup_key then
                  Stats.bump t.sink Stats.Reports_deduped 1
                else begin
                  Hashtbl.add inst.reported dedup_key ();
                  let over_budget =
                    match t.report_budget with
                    | Some budget ->
                        if window <> t.budget_window then begin
                          (* close the previous window's drop tally *)
                          if t.budget_window >= 0 then
                            Stats.observe_window_drops t.sink t.window_drops;
                          t.budget_window <- window;
                          t.window_reports <- 0;
                          t.window_drops <- 0
                        end;
                        t.window_reports >= budget
                    | None -> false
                  in
                  if over_budget then begin
                    t.dropped_reports <- t.dropped_reports + 1;
                    t.window_drops <- t.window_drops + 1;
                    Stats.bump t.sink Stats.Reports_dropped 1
                  end
                  else begin
                    t.window_reports <- t.window_reports + 1;
                    let value2 =
                      match inst.compiled.Compose.query.Ast.combine with
                      | Some { op = Ast.Pair; _ } -> Some bctx.Ctx.g2
                      | _ -> None
                    in
                    t.reports <-
                      Report.make ~query_id:inst.compiled.Compose.query.Ast.id
                        ~window ~keys ~value:bctx.Ctx.g1 ~value2 ()
                      :: t.reports;
                    t.report_count <- t.report_count + 1;
                    Stats.bump t.sink Stats.Reports_emitted 1;
                    Stats.observe_report_latency t.sink
                      (Packet.ts pkt
                      -. (float_of_int window
                         *. inst.compiled.Compose.query.Ast.window))
                  end
                end
              end
            end)
          slots;
        (* Propagate branch-0 context for CQE snapshots. *)
        if b = 0 then ctx.Ctx.stopped <- !stopped
      end)
    inst.slots;
  ctx

(** Process one packet through every installed instance (device-level,
    fresh contexts).  Window state rolls based on the packet timestamp. *)
(* The newton_init lookup key: 5-tuple then TCP flags, matching
   [Ir.init_fields] order. *)
let init_key pkt =
  Array.of_list (List.map (fun f -> Packet.get pkt f) Ir.init_fields)

let process_packet t pkt =
  record_packet_seen t;
  (* Classify once through newton_init; a packet may match several
     concurrent queries' entries (chained queries). *)
  let matched = Newton_dataplane.Table.lookup_all t.init_table (init_key pkt) in
  let uids = List.sort_uniq compare (List.map fst matched) in
  List.iter
    (fun inst ->
      if List.mem inst.uid uids then begin
        roll_instance_window t inst (Packet.ts pkt);
        ignore (process_instance t inst pkt)
      end)
    t.instances

(* ---------------- flat-arena execution ---------------- *)

let compile_slot inst (s : Ir.slot) =
  let m = s.Ir.meta in
  let own_array () = Hashtbl.find inst.arrays (s.Ir.branch, s.Ir.prim, s.Ir.suite) in
  match s.Ir.cfg with
  | Ir.K_cfg keys ->
      let fidx =
        Array.of_list (List.map (fun (k : Ast.key) -> Field.index k.Ast.field) keys)
      in
      let masks = Array.of_list (List.map (fun (k : Ast.key) -> k.Ast.mask) keys) in
      C_key
        { ck_meta = m; ck_fidx = fidx; ck_masks = masks;
          ck_buf = Array.make (Array.length fidx) 0 }
  | Ir.H_cfg { mode = `Direct; _ } -> C_hash_direct { chd_meta = m }
  | Ir.H_cfg { mode = `Hash seed; range } ->
      C_hash { ch_meta = m; ch_seed = seed; ch_range = range }
  | Ir.S_cfg { op; _ } -> (
      match op with
      | Ir.S_pass -> C_s_pass { csp_meta = m }
      | Ir.S_bf ->
          C_s_alu { csa_meta = m; csa_arr = own_array (); csa_alu = Alu.Or 1 }
      | Ir.S_cm (Ir.Const k) ->
          C_s_alu { csa_meta = m; csa_arr = own_array (); csa_alu = Alu.Add k }
      | Ir.S_cm (Ir.Field_val f) ->
          C_s_add_field
            { caf_meta = m; caf_arr = own_array (); caf_fidx = Field.index f }
      | Ir.S_max (Ir.Const k) ->
          C_s_alu { csa_meta = m; csa_arr = own_array (); csa_alu = Alu.Max k }
      | Ir.S_max (Ir.Field_val f) ->
          C_s_max_field
            { cmf_meta = m; cmf_arr = own_array (); cmf_fidx = Field.index f }
      | Ir.S_read { ar_branch; ar_prim; ar_suite } ->
          C_s_read
            { csr_meta = m;
              csr_arr = Hashtbl.find_opt inst.arrays (ar_branch, ar_prim, ar_suite) })
  | Ir.R_cfg { merge; guard; report; combine } ->
      C_r
        { cr_meta = m; cr_merge = merge; cr_combine = combine; cr_guard = guard;
          cr_report = report }

let compile_instance inst =
  let q = inst.compiled.Compose.query in
  let branches =
    Array.mapi
      (fun b slots ->
        let entry = inst.compiled.Compose.init_entries.(b) in
        let ms = Array.of_list entry.Ir.ie_matches in
        {
          cbm_fidx = Array.map (fun (f, _, _) -> Field.index f) ms;
          cbm_value = Array.map (fun (_, v, _) -> v) ms;
          cbm_mask = Array.map (fun (_, _, m) -> m) ms;
          cb_slots = Array.of_list (List.map (compile_slot inst) slots);
        })
      inst.slots
  in
  {
    ci = inst;
    ci_window_len = q.Ast.window;
    ci_query_id = q.Ast.id;
    ci_pair =
      (match q.Ast.combine with Some { op = Ast.Pair; _ } -> true | _ -> false);
    ci_branches = branches;
    ci_ctx = Ctx.create ();
    ci_bctx = Ctx.create ();
  }

let compiled_prog t =
  match t.cprog with
  | Some prog -> prog
  | None ->
      (* Non-first CQE slices install no newton_init entries, so the
         classifier never dispatches to them on the device-level path;
         the compiled program skips them the same way. *)
      let prog =
        Array.of_list
          (List.map compile_instance
             (List.filter (fun i -> i.stage_lo = 0) t.instances))
      in
      t.cprog <- Some prog;
      prog

let empty_keys : int array = [||]

(* A fresh-context reset without the allocation: exactly the state
   [Ctx.create] starts a packet with. *)
let reset_scratch_ctx (c : Ctx.t) =
  c.Ctx.op_keys.(0) <- empty_keys;
  c.Ctx.op_keys.(1) <- empty_keys;
  c.Ctx.hash.(0) <- 0;
  c.Ctx.hash.(1) <- 0;
  c.Ctx.state.(0) <- 0;
  c.Ctx.state.(1) <- 0;
  c.Ctx.g1 <- 0;
  c.Ctx.g2 <- 0;
  c.Ctx.stopped <- false

(** Replay a flat arena through every installed instance.  Semantics are
    exactly {!process_packet} over [Flat.to_packet] of each slot — same
    reports, same register state, same counter totals — but execution
    runs the compiled program over the arena's raw buffers, and counter
    telemetry is accumulated locally and folded into the sink once at
    the end of the call (batch-amortised instrumentation). *)
let process_flat t flat =
  let n = Flat.length flat in
  if n > 0 then begin
    let prog = compiled_prog t in
    let words = Flat.field_words flat in
    let tss = Flat.timestamps flat in
    let stride = Flat.stride flat in
    let ninst = Array.length prog in
    (* Batch-amortised counters, flushed after the loop. *)
    let k_hits = ref 0 and h_hits = ref 0 and s_hits = ref 0 and r_hits = ref 0 in
    let guard_stops = ref 0 and emitted = ref 0 in
    let deduped = ref 0 and dropped = ref 0 and rolls = ref 0 in
    for i = 0 to n - 1 do
      let base = i * stride in
      let ts = tss.(i) in
      for ii = 0 to ninst - 1 do
        let cinst = Array.unsafe_get prog ii in
        let inst = cinst.ci in
        let nb = Array.length cinst.ci_branches in
        (* -1 until the first matching branch rolls the window. *)
        let window = ref (-1) in
        let stopped0 = ref false in
        let b = ref 0 in
        while !b < nb && not !stopped0 do
          let cb = cinst.ci_branches.(!b) in
          (* newton_init entry check over the raw words *)
          let matches =
            let nm = Array.length cb.cbm_fidx in
            let ok = ref true in
            let j = ref 0 in
            while !ok && !j < nm do
              if
                Bigarray.Array1.unsafe_get words
                  (base + Array.unsafe_get cb.cbm_fidx !j)
                land Array.unsafe_get cb.cbm_mask !j
                <> Array.unsafe_get cb.cbm_value !j
              then ok := false;
              incr j
            done;
            !ok
          in
          if matches then begin
            if !window < 0 then begin
              (* First matching branch: roll this instance's window, as
                 the classifier match does on the per-packet path. *)
              let w = int_of_float (ts /. cinst.ci_window_len) in
              window := w;
              if w <> inst.window_index then begin
                inst.window_index <- w;
                Hashtbl.iter (fun _ arr -> Register_array.clear arr) inst.arrays;
                Hashtbl.reset inst.reported;
                incr rolls
              end
            end;
            let nslots = Array.length cb.cb_slots in
            if nslots > 0 then begin
              let c = if !b = 0 then cinst.ci_ctx else cinst.ci_bctx in
              reset_scratch_ctx c;
              let stopped = ref false in
              let si = ref 0 in
              while (not !stopped) && !si < nslots do
                (match Array.unsafe_get cb.cb_slots !si with
                | C_key { ck_meta; ck_fidx; ck_masks; ck_buf } ->
                    incr k_hits;
                    for j = 0 to Array.length ck_fidx - 1 do
                      Array.unsafe_set ck_buf j
                        (Bigarray.Array1.unsafe_get words
                           (base + Array.unsafe_get ck_fidx j)
                        land Array.unsafe_get ck_masks j)
                    done;
                    c.Ctx.op_keys.(ck_meta) <- ck_buf
                | C_hash_direct { chd_meta } ->
                    incr h_hits;
                    c.Ctx.hash.(chd_meta) <- direct_value c.Ctx.op_keys.(chd_meta)
                | C_hash { ch_meta; ch_seed; ch_range } ->
                    incr h_hits;
                    c.Ctx.hash.(ch_meta) <-
                      Hash.hash_vector ~seed:ch_seed c.Ctx.op_keys.(ch_meta)
                      mod ch_range
                | C_s_pass { csp_meta } ->
                    incr s_hits;
                    c.Ctx.state.(csp_meta) <- c.Ctx.hash.(csp_meta)
                | C_s_alu { csa_meta; csa_arr; csa_alu } ->
                    incr s_hits;
                    c.Ctx.state.(csa_meta) <-
                      Register_array.exec csa_arr csa_alu c.Ctx.hash.(csa_meta)
                | C_s_add_field { caf_meta; caf_arr; caf_fidx } ->
                    incr s_hits;
                    c.Ctx.state.(caf_meta) <-
                      Register_array.exec caf_arr
                        (Alu.Add (Bigarray.Array1.unsafe_get words (base + caf_fidx)))
                        c.Ctx.hash.(caf_meta)
                | C_s_max_field { cmf_meta; cmf_arr; cmf_fidx } ->
                    incr s_hits;
                    c.Ctx.state.(cmf_meta) <-
                      Register_array.exec cmf_arr
                        (Alu.Max (Bigarray.Array1.unsafe_get words (base + cmf_fidx)))
                        c.Ctx.hash.(cmf_meta)
                | C_s_read { csr_meta; csr_arr } ->
                    incr s_hits;
                    c.Ctx.state.(csr_meta) <-
                      (match csr_arr with
                      | Some arr -> Register_array.get arr c.Ctx.hash.(csr_meta)
                      | None -> 0)
                | C_r { cr_meta; cr_merge; cr_combine; cr_guard; cr_report } -> (
                    incr r_hits;
                    (match cr_merge with
                    | Some (acc, op) -> (
                        let v = c.Ctx.state.(cr_meta) in
                        match acc with
                        | Ir.G1 -> c.Ctx.g1 <- merge_value op c.Ctx.g1 v
                        | Ir.G2 -> c.Ctx.g2 <- merge_value op c.Ctx.g2 v)
                    | None -> ());
                    (match cr_combine with
                    | Some op -> c.Ctx.g1 <- merge_value op c.Ctx.g1 c.Ctx.g2
                    | None -> ());
                    let passes =
                      match cr_guard with
                      | None -> true
                      | Some (target, op, value) ->
                          let v =
                            match target with
                            | Ir.On_state -> c.Ctx.state.(cr_meta)
                            | Ir.On_g1 -> c.Ctx.g1
                            | Ir.On_g2 -> c.Ctx.g2
                          in
                          Ast.cmp_holds op v value
                    in
                    if not passes then begin
                      stopped := true;
                      incr guard_stops
                    end
                    else if cr_report then begin
                      let w = !window in
                      let keys = c.Ctx.op_keys.(cr_meta) in
                      if Hashtbl.mem inst.reported (w, keys) then incr deduped
                      else begin
                        (* The projection buffer is reused across
                           packets; the stored dedup key and report must
                           own their keys. *)
                        let keys = Array.copy keys in
                        Hashtbl.add inst.reported (w, keys) ();
                        let over_budget =
                          match t.report_budget with
                          | Some budget ->
                              if w <> t.budget_window then begin
                                if t.budget_window >= 0 then
                                  Stats.observe_window_drops t.sink
                                    t.window_drops;
                                t.budget_window <- w;
                                t.window_reports <- 0;
                                t.window_drops <- 0
                              end;
                              t.window_reports >= budget
                          | None -> false
                        in
                        if over_budget then begin
                          t.dropped_reports <- t.dropped_reports + 1;
                          t.window_drops <- t.window_drops + 1;
                          incr dropped
                        end
                        else begin
                          t.window_reports <- t.window_reports + 1;
                          let value2 =
                            if cinst.ci_pair then Some c.Ctx.g2 else None
                          in
                          t.reports <-
                            Report.make ~query_id:cinst.ci_query_id ~window:w
                              ~keys ~value:c.Ctx.g1 ~value2 ()
                            :: t.reports;
                          t.report_count <- t.report_count + 1;
                          incr emitted;
                          Stats.observe_report_latency t.sink
                            (ts -. (float_of_int w *. cinst.ci_window_len))
                        end
                      end
                    end));
                incr si
              done;
              if !b = 0 then stopped0 := !stopped
            end
          end;
          incr b
        done
      done
    done;
    t.packets_seen <- t.packets_seen + n;
    let sink = t.sink in
    Stats.bump sink Stats.Packets_processed n;
    if !k_hits > 0 then Stats.bump sink Stats.Module_hits_k !k_hits;
    if !h_hits > 0 then Stats.bump sink Stats.Module_hits_h !h_hits;
    if !s_hits > 0 then Stats.bump sink Stats.Module_hits_s !s_hits;
    if !r_hits > 0 then Stats.bump sink Stats.Module_hits_r !r_hits;
    if !guard_stops > 0 then Stats.bump sink Stats.Guard_stops !guard_stops;
    if !emitted > 0 then Stats.bump sink Stats.Reports_emitted !emitted;
    if !deduped > 0 then Stats.bump sink Stats.Reports_deduped !deduped;
    if !dropped > 0 then Stats.bump sink Stats.Reports_dropped !dropped;
    if !rolls > 0 then Stats.bump sink Stats.Window_rolls !rolls
  end

(** Drain collected reports (e.g. per measurement interval). *)
let drain_reports t =
  let r = List.rev t.reports in
  t.reports <- [];
  r

(* ---------------- observability ---------------- *)

(** Per-instance runtime statistics for operator dashboards. *)
type instance_stats = {
  st_uid : int;
  st_query : string;
  st_rules : int;
  st_stage_lo : int;
  st_stage_hi : int;
  st_arrays : int;            (** register arrays owned by this slice *)
  st_registers : int;         (** registers across those arrays *)
  st_occupancy : int;         (** non-zero registers right now *)
  st_window : int;            (** current window index *)
  st_reported_keys : int;     (** keys reported in the current window *)
}

let instance_stats (inst : instance) =
  let arrays = Hashtbl.fold (fun _ a acc -> a :: acc) inst.arrays [] in
  {
    st_uid = inst.uid;
    st_query = inst.compiled.Compose.query.Ast.name;
    st_rules = inst.rules;
    st_stage_lo = inst.stage_lo;
    st_stage_hi = inst.stage_hi;
    st_arrays = List.length arrays;
    st_registers = List.fold_left (fun acc a -> acc + Register_array.size a) 0 arrays;
    st_occupancy = List.fold_left (fun acc a -> acc + Register_array.occupancy a) 0 arrays;
    st_window = inst.window_index;
    st_reported_keys = Hashtbl.length inst.reported;
  }

(** Statistics for every installed instance. *)
let stats t = List.map instance_stats t.instances

let stats_to_string s =
  Printf.sprintf
    "#%d %-22s rules=%d stages=[%d,%s] arrays=%d regs=%d occ=%d w=%d reported=%d"
    s.st_uid s.st_query s.st_rules s.st_stage_lo
    (if s.st_stage_hi = max_int then "end" else string_of_int s.st_stage_hi)
    s.st_arrays s.st_registers s.st_occupancy s.st_window s.st_reported_keys
