(** Engine introspection: assembling telemetry snapshots.

    Pairs the event counters a {!Newton_telemetry.Stats.sink} has been
    collecting with gauges computed from live engine state — rule-table
    utilization against the [Module_cost.rules_per_module] cell
    capacity, stage occupancy, per-instance footprints, and sketch
    health (Bloom fill / false-positive estimate, Count-Min
    epsilon–delta bounds) read straight off the register arrays.  For
    the sharded engine the counters are the per-domain merge and the
    sketch gauges are evaluated over the ALU-merged banks, so the
    snapshot a 4-shard replay exports totals to the sequential one. *)

open Newton_sketch
open Newton_compiler
open Newton_telemetry

let kind_label k = Newton_dataplane.Module_cost.kind_to_string k

(* ---------------- capacity / occupancy gauges ---------------- *)

let cell_metrics ~labels engine =
  let capacity = Newton_dataplane.Module_cost.rules_per_module in
  let cells = Engine.cell_usage engine in
  let cell_labels (stage, kind, set) =
    labels
    @ [
        ("stage", string_of_int stage);
        ("kind", kind_label kind);
        ("set", string_of_int set);
      ]
  in
  [
    Metric.gauge ~name:"newton_init_entries"
      ~help:"Entries in the newton_init classifier table"
      [ Metric.vi ~labels (Engine.init_table_size engine) ];
    Metric.gauge ~name:"newton_monitor_rules"
      ~help:"Monitoring table entries currently installed"
      [ Metric.vi ~labels (Engine.total_rules engine) ];
    Metric.gauge ~name:"newton_module_cell_rules"
      ~help:"Rules held per physical module cell (stage, kind, set)"
      (List.map
         (fun (cell, used) -> Metric.vi ~labels:(cell_labels cell) used)
         cells);
    Metric.gauge ~name:"newton_module_cell_utilization"
      ~help:
        (Printf.sprintf
           "Module-cell rule utilization against the %d-rule capacity"
           capacity)
      (List.map
         (fun (cell, used) ->
           Metric.v ~labels:(cell_labels cell)
             (Health.utilization ~used ~capacity))
         cells);
  ]

(* Hosted slots per pipeline stage, across every installed instance. *)
let stage_metrics ~labels engine =
  let per_stage = Hashtbl.create 16 in
  List.iter
    (fun inst ->
      Array.iter
        (List.iter (fun (s : Ir.slot) ->
             Hashtbl.replace per_stage s.Ir.stage
               (1 + Option.value (Hashtbl.find_opt per_stage s.Ir.stage) ~default:0)))
        (Engine.instance_slots inst))
    (Engine.instances engine)
  ;
  let stages =
    Hashtbl.fold (fun stage n acc -> (stage, n) :: acc) per_stage []
    |> List.sort compare
  in
  [
    Metric.gauge ~name:"newton_stage_slots"
      ~help:"Module slots hosted per pipeline stage"
      (List.map
         (fun (stage, n) ->
           Metric.vi ~labels:(labels @ [ ("stage", string_of_int stage) ]) n)
         stages);
  ]

(* ---------------- sketch health ---------------- *)

(* The S slots of an instance, grouped by (branch, prim): one group is
   one logical sketch whose rows are the group's suites. *)
let sketch_groups slots =
  let groups = Hashtbl.create 8 in
  Array.iter
    (List.iter (fun (s : Ir.slot) ->
         match s.Ir.cfg with
         | Ir.S_cfg { op = (Ir.S_bf | Ir.S_cm _ | Ir.S_max _) as op; _ } ->
             let k = (s.Ir.branch, s.Ir.prim) in
             let prev = Option.value (Hashtbl.find_opt groups k) ~default:[] in
             Hashtbl.replace groups k ((s.Ir.suite, op) :: prev)
         | _ -> ()))
    slots;
  Hashtbl.fold (fun k rows acc -> (k, List.sort compare rows) :: acc) groups []
  |> List.sort compare

(** Sketch-health gauges of one instance layout over [arrays] — live
    per-shard banks or their ALU merge, evaluated identically. *)
let sketch_metrics ~labels ~slots ~arrays =
  let bloom = ref [] and cm = ref [] in
  List.iter
    (fun ((branch, prim), rows) ->
      let row_arrays =
        List.filter_map
          (fun (suite, op) ->
            List.assoc_opt (branch, prim, suite) arrays
            |> Option.map (fun arr -> (op, arr)))
          rows
      in
      let sk_labels =
        labels
        @ [ ("branch", string_of_int branch); ("prim", string_of_int prim) ]
      in
      match row_arrays with
      | (Ir.S_bf, _) :: _ ->
          let fills =
            List.map
              (fun (_, arr) ->
                Health.bloom_fill
                  ~set_bits:(Register_array.occupancy arr)
                  ~bits:(Register_array.size arr))
              row_arrays
          in
          let mean_fill =
            List.fold_left ( +. ) 0.0 fills /. float_of_int (List.length fills)
          in
          bloom :=
            ( sk_labels,
              mean_fill,
              Health.bloom_fpr ~fills )
            :: !bloom
      | (Ir.S_cm _, first) :: _ ->
          let width = Register_array.size first in
          let depth = List.length row_arrays in
          (* every row receives every update, so any row's sum is the
             stream mass; take the first *)
          let mass = Register_array.fold ( + ) 0 first in
          cm :=
            ( sk_labels,
              Health.cm_epsilon ~width,
              Health.cm_delta ~depth,
              Health.cm_error_bound ~width ~mass )
            :: !cm
      | _ -> ())
    (sketch_groups slots);
  let bloom = List.rev !bloom and cm = List.rev !cm in
  (if bloom = [] then []
   else
     [
       Metric.gauge ~name:"newton_bloom_fill_ratio"
         ~help:"Mean fraction of set bits across a Bloom filter's rows"
         (List.map (fun (l, fill, _) -> Metric.v ~labels:l fill) bloom);
       Metric.gauge ~name:"newton_bloom_fpr_estimate"
         ~help:"Bloom false-positive estimate at current occupancy"
         (List.map (fun (l, _, fpr) -> Metric.v ~labels:l fpr) bloom);
     ])
  @
  if cm = [] then []
  else
    [
      Metric.gauge ~name:"newton_cm_epsilon"
        ~help:"Count-Min per-key error factor e/width"
        (List.map (fun (l, e, _, _) -> Metric.v ~labels:l e) cm);
      Metric.gauge ~name:"newton_cm_delta"
        ~help:"Probability the Count-Min error bound is exceeded"
        (List.map (fun (l, _, d, _) -> Metric.v ~labels:l d) cm);
      Metric.gauge ~name:"newton_cm_error_bound"
        ~help:"Absolute Count-Min error bound at the observed stream mass"
        (List.map (fun (l, _, _, b) -> Metric.v ~labels:l b) cm);
    ]

(* ---------------- per-instance gauges ---------------- *)

let instance_labels ~labels inst =
  labels
  @ [
      ("uid", string_of_int (Engine.instance_uid inst));
      ("query", (Engine.instance_query inst).Newton_query.Ast.name);
    ]

let instance_metrics ~labels engine =
  let insts = Engine.instances engine in
  if insts = [] then []
  else
    let g name help f =
      Metric.gauge ~name ~help
        (List.map
           (fun inst -> Metric.vi ~labels:(instance_labels ~labels inst) (f inst))
           insts)
    in
    [
      g "newton_instance_rules" "Table entries an installed instance holds"
        Engine.instance_rules;
      g "newton_instance_registers" "Registers across an instance's arrays"
        (fun inst ->
          List.fold_left
            (fun acc (_, a) -> acc + Register_array.size a)
            0 (Engine.instance_arrays inst));
      g "newton_instance_register_occupancy"
        "Non-zero registers in an instance's arrays" (fun inst ->
          List.fold_left
            (fun acc (_, a) -> acc + Register_array.occupancy a)
            0 (Engine.instance_arrays inst));
      g "newton_instance_reported_keys"
        "Keys reported (deduped) in the current window"
        Engine.instance_reported_keys;
      g "newton_instance_window" "Current measurement-window index"
        Engine.instance_window;
    ]

(* ---------------- entry points ---------------- *)

(** Full snapshot of a sequential engine: sink counters + capacity,
    stage, per-instance and sketch-health gauges, every sample tagged
    with [labels]. *)
let engine_metrics ?(labels = []) engine =
  Snapshot.of_sink ~labels (Engine.sink engine)
  @ cell_metrics ~labels engine
  @ stage_metrics ~labels engine
  @ instance_metrics ~labels engine
  @ List.concat_map
      (fun inst ->
        sketch_metrics
          ~labels:(instance_labels ~labels inst)
          ~slots:(Engine.instance_slots inst)
          ~arrays:(Engine.instance_arrays inst))
      (Engine.instances engine)

(** Snapshot of a sharded engine: merged per-domain counters, shard
    load gauges, shard-0 layout gauges (every shard installs the same
    rules), and sketch health over the ALU-merged banks — counter
    totals equal the sequential engine's over the same stream. *)
let parallel_metrics ?(labels = []) par =
  let shards = Parallel_engine.shard_engines par in
  let shard0 = shards.(0) in
  let loads = Parallel_engine.shard_loads par in
  Snapshot.of_sink ~labels (Parallel_engine.merged_sink par)
  @ [
      Metric.gauge ~name:"newton_shard_packets"
        ~help:"Packets routed to each replay shard"
        (Array.to_list
           (Array.mapi
              (fun s n ->
                Metric.vi ~labels:(labels @ [ ("shard", string_of_int s) ]) n)
              loads));
    ]
  @ cell_metrics ~labels shard0
  @ stage_metrics ~labels shard0
  @ instance_metrics ~labels shard0
  @ List.concat_map
      (fun inst ->
        let arrays =
          match
            Parallel_engine.merged_arrays par (Engine.instance_uid inst)
          with
          | Some merged -> merged
          | None -> Engine.instance_arrays inst
        in
        sketch_metrics
          ~labels:(instance_labels ~labels inst)
          ~slots:(Engine.instance_slots inst)
          ~arrays)
      (Engine.instances shard0)
