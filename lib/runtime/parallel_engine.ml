(** Domain-pool sharded trace replay (§6-scale evaluation path).

    Wraps [jobs] replica {!Engine}s — one per shard, each owning the
    full rule layout of every installed query but only the state of the
    packets its shard key routes to it.  Replay partitions the packet
    stream with a {!Shard} strategy (order-preserving per shard),
    processes each shard's stream in fixed-size batches on its own
    OCaml 5 domain ({!Domain_pool}), and folds the per-shard results
    back together with {!Merge}: epoch-aligned report concatenation
    plus ALU-merged sketch state.

    With [jobs = 1] the engine degenerates to the sequential
    {!Engine} — same packets, same order, bit-identical reports — which
    is the correctness oracle the differential tests rely on. *)

open Newton_packet

type t = {
  jobs : int;
  batch : int;
  strategy : Shard.strategy;
  sharder : Shard.t;
  shards : Engine.t array;
  mutable shard_packets : int array; (* packets routed per shard, lifetime *)
}

let default_batch = 512

let create ?jobs ?(batch = default_batch) ?(shard_key = Shard.Flow)
    ~switch_id () =
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Parallel_engine.create: jobs < 1"
    | Some j -> j
    | None -> max 1 (Domain_pool.recommended_jobs ())
  in
  if batch <= 0 then invalid_arg "Parallel_engine.create: batch <= 0";
  {
    jobs;
    batch;
    strategy = shard_key;
    sharder = Shard.make ~jobs shard_key;
    shards = Array.init jobs (fun _ -> Engine.create ~switch_id ());
    shard_packets = Array.make jobs 0;
  }

let jobs t = t.jobs
let batch t = t.batch
let strategy t = t.strategy
let shard_engines t = t.shards

(** Merged per-domain telemetry: each shard engine owns its sink (no
    cross-domain contention); the fold adds counters and histograms the
    same way {!Merge} folds sketch state. *)
let merged_sink t =
  Newton_telemetry.Stats.merge_all
    (Array.to_list (Array.map Engine.sink t.shards))

(** Enable (fresh per-shard sinks) or disable ([Stats.null]) telemetry
    on every shard. *)
let set_telemetry t enabled =
  Array.iter
    (fun e ->
      Engine.set_sink e
        (if enabled then Newton_telemetry.Stats.create ()
         else Newton_telemetry.Stats.null))
    t.shards

(** Packets routed to each shard so far (load-balance view). *)
let shard_loads t = Array.copy t.shard_packets

(* ---------------- install / remove ---------------- *)

(** Install a compiled query on every shard under one uid.  The
    returned rule count is the per-switch footprint (each shard is a
    core of the same switch, so rules are counted once).
    @raise Engine.Rules_exhausted as {!Engine.install}; shard 0 is
    installed first, so a rejected install leaves no residue. *)
let install t ?uid compiled =
  let uid, rules = Engine.install t.shards.(0) ?uid compiled in
  for i = 1 to t.jobs - 1 do
    ignore (Engine.install t.shards.(i) ~uid compiled)
  done;
  (uid, rules)

(** Remove an installed query from every shard; freed rules are the
    per-switch count. *)
let remove t uid =
  let freed = Engine.remove t.shards.(0) uid in
  for i = 1 to t.jobs - 1 do
    ignore (Engine.remove t.shards.(i) uid)
  done;
  freed

(** Mirror-session budget, applied per shard (a sharded switch budgets
    each core's mirror port independently; divergence from the
    sequential engine's single budget is documented). *)
let set_report_budget t n =
  Array.iter (fun e -> Engine.set_report_budget e n) t.shards

(* ---------------- replay ---------------- *)

(** Stage 1 of a large replay: pre-shard the stream into contiguous
    per-domain {!Flat} arenas (see {!Arena}).  The shard function runs
    once per packet here — the replay loop never dispatches again. *)
let build_arenas t packets = Arena.build t.sharder packets

(** Stage 2: replay every shard's arena through its engine's compiled
    program, one domain per shard (inline when [jobs = 1]).  ALU state
    and reports stay shard-local throughout; they fold together only at
    observation points ({!reports}, {!merged_arrays}, {!merged_sink}).
    @raise Invalid_argument when the arena count differs from [jobs]. *)
let replay_arenas t arenas =
  if Array.length arenas <> t.jobs then
    invalid_arg
      (Printf.sprintf "Parallel_engine.replay_arenas: %d arenas for %d shards"
         (Array.length arenas) t.jobs);
  if t.jobs = 1 then Engine.process_flat t.shards.(0) arenas.(0)
  else
    (* Cap concurrent domains at the machine's core count: shards are
       CPU-bound, and oversubscribing cores only adds cross-domain GC
       synchronisation.  Arenas are independent, so waves preserve
       semantics exactly. *)
    ignore
      (Domain_pool.run
         ~max_domains:(max 1 (Domain_pool.recommended_jobs ()))
         (Array.init t.jobs (fun s () ->
              Engine.process_flat t.shards.(s) arenas.(s))));
  Array.iteri
    (fun s a -> t.shard_packets.(s) <- t.shard_packets.(s) + Flat.length a)
    arenas

(** Replay a packet array.
    A call of at most [batch] packets is not worth shard setup: it is
    dispatched inline on the calling domain, per packet, with the same
    shard routing — state placement is identical to the arena path, so
    small and large calls can be freely mixed on one engine (the
    chunked ingest driver does exactly that for its tail chunk).
    Larger calls pre-shard into contiguous arenas once, then replay
    each arena on its own domain through the compiled engine program. *)
let process_packets t packets =
  let n = Array.length packets in
  if n = 0 then ()
  else if t.jobs = 1 then begin
    if n <= t.batch then Array.iter (Engine.process_packet t.shards.(0)) packets
    else Engine.process_flat t.shards.(0) (Arena.build1 packets);
    t.shard_packets.(0) <- t.shard_packets.(0) + n
  end
  else if n <= t.batch then
    for i = 0 to n - 1 do
      let s = Shard.assign t.sharder packets.(i) in
      Engine.process_packet t.shards.(s) packets.(i);
      t.shard_packets.(s) <- t.shard_packets.(s) + 1
    done
  else replay_arenas t (build_arenas t packets)

let process_trace t trace =
  if Newton_trace.Gen.length trace > 0 then
    process_packets t (Newton_trace.Gen.packets trace)

(* ---------------- merged results ---------------- *)

(** Shard-merged reports: with [jobs = 1], exactly the sequential
    engine's report stream; otherwise the epoch-aligned {!Merge} of the
    per-shard streams. *)
let reports t =
  if t.jobs = 1 then Engine.reports t.shards.(0)
  else Merge.reports (Array.to_list (Array.map Engine.reports t.shards))

(** Drain every shard and return the merged stream. *)
let drain_reports t =
  if t.jobs = 1 then Engine.drain_reports t.shards.(0)
  else
    Merge.reports (Array.to_list (Array.map Engine.drain_reports t.shards))

(** Total reports emitted across shards (pre-dedup — the monitoring
    message count a sharded deployment puts on the wire). *)
let message_count t =
  Array.fold_left (fun acc e -> acc + Engine.report_count e) 0 t.shards

let packets_seen t =
  Array.fold_left (fun acc e -> acc + Engine.packets_seen e) 0 t.shards

(** ALU-merged register state of one installed query across shards
    (see {!Merge.instance_arrays}); [None] if the uid is unknown. *)
let merged_arrays t uid =
  let instances =
    Array.to_list t.shards
    |> List.filter_map (fun e -> Engine.find_instance e uid)
  in
  match instances with [] -> None | l -> Some (Merge.instance_arrays l)

(** Per-shard engine statistics (one list per shard). *)
let stats t = Array.to_list (Array.map Engine.stats t.shards)

let to_string t =
  Printf.sprintf "parallel-engine jobs=%d batch=%d shard=%s%s" t.jobs t.batch
    (Shard.strategy_to_string t.strategy)
    (if Domain_pool.parallel then "" else " (sequential fallback)")
