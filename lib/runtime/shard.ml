(** Packet-to-shard assignment for the parallel replay engine.

    A shard key decides which replica engine owns a packet's state.  The
    guarantee a strategy must give is {e locality}: any two packets that
    contribute to the same piece of stateful query state (a [distinct]
    entry, a [reduce] counter) must land on the same shard, or the
    shard-local guards will see partial aggregates.

    - [Flow] (the default) hashes the 5-tuple, so every flow's state is
      local.  Queries that aggregate {e across} flows (per-[dip]
      counters, say) see split aggregates — fine for throughput replay,
      documented divergence for thresholds (docs/PARALLELISM.md).
    - [Fields fs] hashes the given header fields' values.
    - [Branch_key c] derives per-branch key extraction from a compiled
      query: a packet is matched against each branch's [newton_init]
      entry and sharded on the {e value} of that branch's aggregation
      keys.  This keeps every aggregate of the query on one shard (the
      Sonata-style partition-by-query-key), so shard-merged results
      match the sequential engine modulo sketch-collision noise.
    - [Custom f] is an escape hatch; [f] must be pure. *)

open Newton_packet
open Newton_sketch
open Newton_query
open Newton_compiler

type strategy =
  | Flow
  | Fields of Field.t list
  | Branch_key of Compose.t
  | Custom of (Packet.t -> int)

(* One seed for every strategy so that assignment is stable across
   runs, engines, and OCaml versions. *)
let shard_seed = 0x5bd1e995

type t = { jobs : int; assign_raw : Packet.t -> int }

(* Same value as [Hash.hash_vector] over the materialised 5-tuple (the
   hash5 equivalence is covered by the shard tests), minus the
   per-packet array allocation — this runs once per packet in the
   arena-build pass. *)
let flow_hash pkt =
  Hash.hash5 ~seed:shard_seed
    (Packet.get pkt Field.Src_ip)
    (Packet.get pkt Field.Dst_ip)
    (Packet.get pkt Field.Proto)
    (Packet.get pkt Field.Src_port)
    (Packet.get pkt Field.Dst_port)

let fields_hash fields pkt =
  Hash.hash_vector ~seed:shard_seed
    (Array.of_list (List.map (fun f -> Packet.get pkt f) fields))

(* The aggregation keys of one branch: the keys of the last stateful
   primitive ([Reduce] wins over [Distinct] — reduce keys are the
   coarser, report-carrying grouping), else the last [Map]. *)
let branch_agg_keys (branch : Ast.primitive list) =
  let last_reduce, last_distinct, last_map =
    List.fold_left
      (fun (r, d, m) prim ->
        match prim with
        | Ast.Reduce { keys; _ } -> (Some keys, d, m)
        | Ast.Distinct keys -> (r, Some keys, m)
        | Ast.Map keys -> (r, d, Some keys)
        | Ast.Filter _ -> (r, d, m))
      (None, None, None) branch
  in
  match (last_reduce, last_distinct, last_map) with
  | Some k, _, _ | None, Some k, _ | None, None, Some k -> k
  | None, None, None -> []

let project pkt (keys : Ast.key list) =
  Array.of_list
    (List.map (fun (k : Ast.key) -> Packet.get pkt k.Ast.field land k.Ast.mask) keys)

let entry_matches pkt (e : Ir.init_entry) =
  List.for_all
    (fun (field, value, mask) -> Packet.get pkt field land mask = value)
    e.Ir.ie_matches

(* Branch_key: precompute (init entry, agg keys) per branch; a packet
   shards on the key values of the first branch it matches, falling
   back to the flow hash when it matches none (such packets never touch
   query state, so any shard is correct). *)
let branch_key_hash (compiled : Compose.t) =
  let plans =
    Array.mapi
      (fun b entry ->
        (entry, branch_agg_keys (List.nth compiled.Compose.query.Ast.branches b)))
      compiled.Compose.init_entries
  in
  fun pkt ->
    let rec pick i =
      if i >= Array.length plans then flow_hash pkt
      else
        let entry, keys = plans.(i) in
        if entry_matches pkt entry then
          match keys with
          | [] -> flow_hash pkt
          | keys -> Hash.hash_vector ~seed:shard_seed (project pkt keys)
        else pick (i + 1)
    in
    pick 0

let make ~jobs strategy =
  if jobs < 1 then invalid_arg "Shard.make: jobs must be >= 1";
  let assign_raw =
    match strategy with
    | Flow -> flow_hash
    | Fields [] -> invalid_arg "Shard.make: Fields []"
    | Fields fs -> fields_hash fs
    | Branch_key compiled -> branch_key_hash compiled
    | Custom f -> f
  in
  { jobs; assign_raw }

let jobs t = t.jobs

(* [land max_int], not [abs]: [abs min_int = min_int] (two's
   complement has no positive counterpart), so a raw hash of [min_int]
   would yield a negative shard index.  Masking the sign bit keeps the
   index in [0, jobs) for every input. *)
let assign t pkt =
  if t.jobs = 1 then 0 else (t.assign_raw pkt land max_int) mod t.jobs

(** The locality-preserving strategy for one compiled query. *)
let for_compiled compiled = Branch_key compiled

let strategy_to_string = function
  | Flow -> "flow"
  | Fields fs ->
      Printf.sprintf "fields(%s)"
        (String.concat "," (List.map Field.to_string fs))
  | Branch_key c -> Printf.sprintf "branch-key(%s)" c.Compose.query.Ast.name
  | Custom _ -> "custom"
