(** Per-switch query execution engine.

    Holds installed query instances — whole chains for sole-switch
    execution or stage-range slices for CQE — with their register
    arrays, a ternary [newton_init] classifier table, per-module-cell
    rule capacity, per-instance 100 ms windows, and report
    deduplication.

    Both {!t} and {!instance} are abstract: every observable — budgets,
    counters, rules, arrays — is reached through accessor functions, so
    callers (the CQE path executor, the controller, the sharded replay
    engine, telemetry) never depend on the engine's representation.
    Runtime events feed the engine's {!Newton_telemetry.Stats.sink};
    pass {!Newton_telemetry.Stats.null} to make the instrumentation
    cost a single branch. *)

open Newton_packet
open Newton_query
open Newton_compiler
open Newton_telemetry

type array_key = int * int * int (** branch, prim, suite *)

(** One installed query slice (abstract; see the [instance_*]
    accessors). *)
type instance

type t

(** Raised when a module table cannot accept another query's rule. *)
exception Rules_exhausted of { stage : int; kind : string }

(** [create ~switch_id ()] — [sink] defaults to a fresh recording sink;
    pass [Stats.null] to disable telemetry entirely. *)
val create : ?sink:Stats.sink -> switch_id:int -> unit -> t

val switch_id : t -> int

(** The engine's telemetry sink. *)
val sink : t -> Stats.sink

val set_sink : t -> Stats.sink -> unit

(** Cap the mirror sessions: at most [n] report exports per window
    ([None] = unlimited, the default).  Overflow reports are dropped on
    the wire. *)
val set_report_budget : t -> int option -> unit

val report_budget : t -> int option

(** Reports dropped because the mirror budget was exhausted. *)
val dropped_reports : t -> int

val instances : t -> instance list

(** Reports in emission order. *)
val reports : t -> Report.t list

val report_count : t -> int
val packets_seen : t -> int

(** Count a packet against this engine without executing it (path-hop
    accounting in the CQE executor and the controller). *)
val record_packet_seen : t -> unit

(** Install a slice [stage_lo, stage_hi] of a compiled query (defaults:
    the whole chain).  Non-first slices re-install shadow K/H modules
    (keys and per-suite hashes do not cross switches).  CQE slices of
    one deployment pass the same [uid].  Returns (uid, table entries).
    @raise Rules_exhausted when a module cell is out of capacity; the
    check is atomic (a rejected install leaves no residue). *)
val install :
  t -> ?uid:int -> ?stage_lo:int -> ?stage_hi:int -> Compose.t -> int * int

(** Remove an instance, releasing its rules and classifier entries;
    returns the freed entry count. *)
val remove : t -> int -> int option

val find_instance : t -> int -> instance option

(** Monitoring table entries currently installed. *)
val total_rules : t -> int

(** Entries currently in the [newton_init] classifier. *)
val init_table_size : t -> int

(** Rules held per physical module cell (stage, kind, metadata set),
    sorted — the utilization side of the
    [Module_cost.rules_per_module] capacity. *)
val cell_usage :
  t -> ((int * Newton_dataplane.Module_cost.kind * int) * int) list

(** Roll an instance's window if [now] crossed a boundary (resets its
    sketch state and report dedup). *)
val roll_instance_window : t -> instance -> float -> unit

(** Roll every instance whose window boundary [now] crossed (used by
    the path executor / controller).  Each instance uses its own query's
    window length — deliberately no per-call window parameter. *)
val maybe_roll_window : t -> float -> unit

(** Merge [src]'s sketch state and report-dedup memory into [dst] (the
    state-carrying half of switch-failure recovery).  Windows align
    first: a [dst] behind [src] is cleared and adopts [src]'s window; a
    [src] behind [dst] is stale and contributes nothing.  Arrays merge
    under [op_of]'s per-bank ALU op (see
    {!Newton_runtime.Merge.slot_merge_op}); [src]'s dedup entries carry
    over so the replacement does not re-emit already-exported reports.
    Returns (banks merged, occupied cells moved).
    @raise Invalid_argument on an array-key mismatch or a bank [op_of]
    cannot resolve. *)
val absorb_state :
  op_of:(array_key -> Newton_sketch.Register_array.merge_op option) ->
  src:instance ->
  dst:instance ->
  int * int

(** Run a packet through one instance, resuming from [ctx] (fresh, or
    SP-restored under CQE); returns the post-slice context. *)
val process_instance : t -> instance -> ?ctx:Ctx.t -> Packet.t -> Ctx.t

(** Device-level processing: classify through [newton_init], roll
    windows, run every matching instance. *)
val process_packet : t -> Packet.t -> unit

(** Replay a whole {!Flat} arena through the compiled per-instance
    program — observationally identical to {!process_packet} over every
    packet of the arena in order (same reports, same register state,
    same counter totals), but with key projections, register-array
    resolution and branch classification pre-compiled, and counter
    telemetry folded into the sink once per call instead of per
    packet.  The program is compiled lazily and cached; {!install} and
    {!remove} invalidate it. *)
val process_flat : t -> Flat.t -> unit

(** Return and clear the collected reports. *)
val drain_reports : t -> Report.t list

(** {2 Instance accessors} *)

val instance_uid : instance -> int
val instance_compiled : instance -> Compose.t

(** The instance's source query ([instance_compiled].query). *)
val instance_query : instance -> Ast.t

(** Table entries this slice holds. *)
val instance_rules : instance -> int

val instance_stage_lo : instance -> int
val instance_stage_hi : instance -> int

(** Current window index. *)
val instance_window : instance -> int

(** Keys reported (deduped) in the current window. *)
val instance_reported_keys : instance -> int

(** Hosted slots per branch, chain order. *)
val instance_slots : instance -> Ir.slot list array

(** The register arrays this slice owns, keyed by (branch, prim,
    suite), sorted by key. *)
val instance_arrays :
  instance -> (array_key * Newton_sketch.Register_array.t) list

val instance_array :
  instance -> array_key -> Newton_sketch.Register_array.t option

(** {2 Operator dashboards} *)

(** Per-instance runtime statistics. *)
type instance_stats = {
  st_uid : int;
  st_query : string;
  st_rules : int;
  st_stage_lo : int;
  st_stage_hi : int;
  st_arrays : int;
  st_registers : int;
  st_occupancy : int;
  st_window : int;
  st_reported_keys : int;
}

val instance_stats : instance -> instance_stats
val stats : t -> instance_stats list
val stats_to_string : instance_stats -> string
