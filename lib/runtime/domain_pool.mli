(** A minimal domain pool for sharded trace replay.

    On OCaml 5 this wraps [Domain]: tasks run on freshly spawned domains,
    at most [max_domains] at a time (waves), and results are joined in
    task order.  On OCaml 4 (no multicore runtime) the same interface
    degrades to in-order sequential execution — shard {e semantics} are
    identical either way, only wall-clock parallelism differs.

    The implementation is selected at build time by a dune rule on
    [%{ocaml_version}]: [domain_pool.ocaml5] or [domain_pool.ocaml4]. *)

(** Whether tasks actually run on parallel domains. *)
val parallel : bool

(** A sensible shard count for this machine:
    [Domain.recommended_domain_count] on OCaml 5, [1] on OCaml 4. *)
val recommended_jobs : unit -> int

(** Run every task and return their results in task order.  At most
    [max_domains] tasks run concurrently (default: the task count).
    Tasks must not share mutable state unless independently
    synchronised.  An exception raised by any task is re-raised after
    the wave it ran in completes.
    @raise Invalid_argument if [max_domains < 1]. *)
val run : ?max_domains:int -> (unit -> 'a) array -> 'a array
