(** Folding per-shard replay results back into one view: epoch-aligned
    report concatenation (+ identity dedup) and ALU-merged sketch state
    ([`Or] Bloom, [`Add] Count-Min, [`Max] running maxima). *)

open Newton_query
open Newton_sketch
open Newton_compiler

(** The cross-shard combine op of a state slot, when it carries
    mergeable state. *)
val slot_merge_op : Ir.slot -> Register_array.merge_op option

(** Resolve the merge op of each state-bank key from an instance's slot
    layout — suitable as the [op_of] argument of
    {!Engine.absorb_state}. *)
val array_ops :
  Engine.instance -> Engine.array_key -> Register_array.merge_op option

(** Merge per-shard report streams: stable sort on (window, query) —
    epochs contiguous, shard-major inside an epoch — then first-wins
    identity dedup (the analyzer's network-wide rule). *)
val reports : Report.t list list -> Report.t list

(** Merge one installed query's register arrays across its per-shard
    instances; the merge op per array comes from its S slot, and the
    result preserves the engine's array-listing order.  With shared
    hash seeds the result is register-for-register the sequential
    engine's state over the same window.
    @raise Invalid_argument on shape mismatch, or when a state bank has
    no merge op in the slot layout (no implicit default: a Bloom bank
    must never be summed by accident). *)
val instance_arrays :
  Engine.instance list -> (Engine.array_key * Register_array.t) list
