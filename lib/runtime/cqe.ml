(** Cross-switch query execution (§5.1).

    Runs a packet through the Newton engines along its forwarding path.
    Between consecutive Newton-enabled switches, the execution context is
    snapshotted into the 12-byte SP header ([newton_fin]) and restored by
    the next switch's parser; the last switch strips the header before
    the packet reaches the destination host.  The byte counters expose
    the <1 % bandwidth overhead claim (§5.1). *)

open Newton_packet

type stats = {
  mutable sp_bytes : int;        (** SP header bytes added on the wire *)
  mutable packets : int;
  mutable wire_bytes : int;      (** raw packet bytes, for the ratio *)
}

let create_stats () = { sp_bytes = 0; packets = 0; wire_bytes = 0 }

let overhead_ratio s =
  if s.wire_bytes = 0 then 0.0 else float_of_int s.sp_bytes /. float_of_int s.wire_bytes

(** Process a packet along [engines] (path order).  Each engine hosts a
    slice of the same query deployment; the context flows through the SP
    header.  [stats] (optional) accumulates bandwidth accounting. *)
let process_path ?stats engines pkt =
  let nengines = List.length engines in
  (match stats with
  | Some s ->
      s.packets <- s.packets + 1;
      s.wire_bytes <- s.wire_bytes + Packet.get pkt Field.Pkt_len
  | None -> ());
  (* Per-instance uid -> context carried along the path. Instances are
     matched across switches by the controller-assigned uid. *)
  let ctxs : (int, Ctx.t) Hashtbl.t = Hashtbl.create 4 in
  List.iteri
    (fun hop engine ->
      Engine.record_packet_seen engine;
      Newton_telemetry.Stats.bump (Engine.sink engine)
        Newton_telemetry.Stats.Cqe_hops 1;
      Engine.maybe_roll_window engine (Packet.ts pkt);
      List.iter
        (fun inst ->
          let uid = Engine.instance_uid inst in
          let ctx =
            match Hashtbl.find_opt ctxs uid with
            | Some c -> c
            | None -> Ctx.create ()
          in
          if not ctx.Ctx.stopped then begin
            (* Parser: decode SP (modelled by passing the same ctx through
               an encode/decode round-trip to honour field widths). *)
            let ctx =
              if hop = 0 then ctx
              else begin
                let restored = Ctx.of_sp (Sp_header.decode (Sp_header.encode (Ctx.to_sp ctx))) in
                restored.Ctx.stopped <- ctx.Ctx.stopped;
                restored
              end
            in
            let ctx' = Engine.process_instance engine inst ~ctx pkt in
            Hashtbl.replace ctxs uid ctx'
          end)
        (Engine.instances engine);
      (* newton_fin: snapshot for the next hop (not after the last). *)
      if hop < nengines - 1 then begin
        Newton_telemetry.Stats.bump (Engine.sink engine)
          Newton_telemetry.Stats.Sp_header_bytes Sp_header.size_bytes;
        match stats with
        | Some s -> s.sp_bytes <- s.sp_bytes + Sp_header.size_bytes
        | None -> ()
      end)
    engines
