(** Packet-to-shard assignment for the parallel replay engine.

    A strategy must preserve {e state locality}: packets contributing to
    the same [distinct]/[reduce] aggregate must land on the same shard,
    or shard-local guards see partial aggregates.  [Flow] gives per-flow
    locality (the default); [Branch_key] gives per-aggregate locality
    for one compiled query; see docs/PARALLELISM.md for the divergence
    each choice admits. *)

open Newton_packet
open Newton_compiler

type strategy =
  | Flow  (** 5-tuple hash: every flow's state is shard-local. *)
  | Fields of Field.t list  (** hash of the given fields' values *)
  | Branch_key of Compose.t
      (** per-branch aggregation-key extraction from a compiled query:
          all state of every aggregate stays on one shard *)
  | Custom of (Packet.t -> int)  (** must be pure *)

(** A compiled sharder for a fixed shard count. *)
type t

(** @raise Invalid_argument if [jobs < 1] or the strategy is
    [Fields []]. *)
val make : jobs:int -> strategy -> t

val jobs : t -> int

(** The owning shard of a packet, in [0, jobs). Deterministic. *)
val assign : t -> Packet.t -> int

(** The locality-preserving strategy for one compiled query
    ([Branch_key]). *)
val for_compiled : Compose.t -> strategy

val strategy_to_string : strategy -> string
