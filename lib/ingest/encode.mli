(** {!Newton_packet.Packet.t} → Ethernet frame bytes — the inverse of
    {!Decode}, so exported synthetic traces open in tcpdump / Wireshark
    and re-ingest to the exact original field vectors.  Non-zero
    [Ingress_port] becomes an 802.1Q VLAN id on the outermost header;
    [Ip_ver] = 6 emits IPv6 with [::a.b.c.d] addresses (XOR-fold
    inverse); ICMP/ICMPv6 packets carry type/code in an 8-byte header;
    UDP port-53 packets get a real DNS header; a non-zero [Tun_id]
    wraps the packet in VXLAN (default) or GRE; IP/TCP/UDP/ICMP
    checksums are computed; payload bytes are zero.  See docs/INGEST.md
    for the full mapping. *)

open Newton_packet

(** Encode one packet as a full (untruncated) Ethernet frame.  When
    [Tun_id] is non-zero the packet is encapsulated ([`Vxlan] by
    default): outer endpoints are synthesized from the tunnel id and
    {!Decode} recovers the inner 5-tuple. *)
val frame : ?tunnel:[ `Vxlan | `Gre ] -> Packet.t -> bytes

(** RFC 1071 internet checksum over a byte range (exposed for tests). *)
val checksum : ?init:int -> bytes -> int -> int -> int
