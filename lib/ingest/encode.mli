(** {!Newton_packet.Packet.t} → Ethernet frame bytes — the inverse of
    {!Decode}, so exported synthetic traces open in tcpdump / Wireshark
    and re-ingest to the exact original field vectors.  Non-zero
    [Ingress_port] becomes an 802.1Q VLAN id; UDP port-53 packets get a
    real DNS header; IP/TCP/UDP checksums are computed; payload bytes
    are zero.  See docs/INGEST.md for the full mapping. *)

open Newton_packet

(** Encode one packet as a full (untruncated) Ethernet frame. *)
val frame : Packet.t -> bytes

(** RFC 1071 internet checksum over a byte range (exposed for tests). *)
val checksum : ?init:int -> bytes -> int -> int -> int
