(** Raw captured frames → {!Newton_packet.Packet.t}: Ethernet
    (optionally 802.1Q/QinQ-tagged) → IPv4/IPv6 → TCP/UDP/ICMP/ICMPv6,
    DNS header bits on UDP port 53, and one level of GRE/VXLAN
    decapsulation (intents see the {e inner} 5-tuple; [Tun_id] carries
    the VNI/key).  Unparseable traffic is a counted skip, never an
    exception.  The field mapping is documented in docs/INGEST.md. *)

open Newton_packet

type skip =
  | Non_ip      (** not Ethernet/IP: ARP, other link types, >2 VLAN tags *)
  | Truncated   (** capture ends before the headers do *)
  | Fragment    (** non-first IP fragment: no L4 header to decode *)
  | Malformed   (** internally inconsistent headers (lengths/flags lie) *)

type result = Decoded of Packet.t | Skipped of skip

val ethertype_ipv4 : int
val ethertype_ipv6 : int
val ethertype_vlan : int
val ethertype_qinq : int

(** The IANA VXLAN UDP destination port (4789). *)
val vxlan_port : int

(** XOR-fold of a 128-bit IPv6 address at [off] into the 32-bit word
    the PHV carries (exposed for tests). *)
val fold_ip6 : bytes -> int -> int

(** Decode one captured frame into a packet stamped [ts].  [linktype]
    defaults to Ethernet; any other link type skips as [Non_ip]. *)
val frame : ?linktype:int -> ts:float -> bytes -> result

val skip_to_string : skip -> string
