(** Raw captured frames → {!Newton_packet.Packet.t}: Ethernet
    (optionally 802.1Q/QinQ-tagged) → IPv4 → TCP/UDP, plus DNS header
    bits on UDP port 53.  Unparseable traffic is a counted skip, never
    an exception.  The field mapping is documented in docs/INGEST.md. *)

open Newton_packet

type skip =
  | Non_ip      (** not Ethernet/IPv4: ARP, IPv6, other link types *)
  | Truncated   (** capture ends before the headers do, or lengths lie *)

type result = Decoded of Packet.t | Skipped of skip

val ethertype_ipv4 : int
val ethertype_vlan : int
val ethertype_qinq : int

(** Decode one captured frame into a packet stamped [ts].  [linktype]
    defaults to Ethernet; any other link type skips as [Non_ip]. *)
val frame : ?linktype:int -> ts:float -> bytes -> result

val skip_to_string : skip -> string
