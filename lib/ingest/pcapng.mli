(** pcapng reader: SHB (per-section byte order, multiple sections), IDB
    (several per section, per-interface link type and [if_tsresol]),
    EPB and SPB packet blocks; other block types are skipped.  Export
    goes through the {!Pcap} writer. *)

exception Format_error of string

type interface = {
  if_linktype : int;
  if_snaplen : int;
  units_per_sec : float;  (** timestamp units per second *)
}

type record = {
  ts : float;      (** seconds; 0 for Simple Packet Blocks (no stamp) *)
  data : bytes;
  orig_len : int;
  linktype : int;  (** of the interface that captured the packet *)
}

type reader

(** Validate the leading Section Header Block.
    @raise Format_error if the input is not pcapng. *)
val create_reader : in_channel -> reader

(** Next packet record, skipping interface/statistics/unknown blocks;
    [`Truncated] when the file ends inside a block.
    @raise Format_error on structurally bad blocks. *)
val read_record : reader -> [ `Record of record | `Truncated | `End ]

(** Fold all packet records; the boolean is [true] iff the file ended
    on a clean block boundary. *)
val fold_records : reader -> ('a -> record -> 'a) -> 'a -> 'a * bool

(** Interface blocks seen so far in the current section. *)
val num_interfaces : reader -> int
