(** {!Newton_packet.Packet.t} → Ethernet frame bytes, the inverse of
    {!Decode} — so synthetic traces export to pcap files that tcpdump /
    tshark / Wireshark open, and re-ingesting an exported trace
    reproduces the original field vectors exactly.

    Encoding choices:
    - MACs are synthesized, locally administered, derived from the IPs
      (02:00:aa:bb:cc:dd) so Wireshark conversations stay readable.
    - A non-zero [Ingress_port] becomes an 802.1Q tag whose VLAN id
      carries the port — the tag {!Decode} maps back.
    - The TCP data offset is chosen as [(Pkt_len - 20 - Payload_len) / 4]
      (option bytes are NOP-padded), so the decoder's payload-length
      arithmetic returns [Payload_len] bit-exactly.  Every packet the
      generators emit is representable; an inconsistent hand-built
      packet is normalized to a minimal 20-byte TCP header.
    - UDP port-53 packets get a real 12-byte DNS header carrying the
      QR bit and answer count.
    - IP and TCP/UDP checksums are computed, payload bytes are zero
      (content is not modeled). *)

open Newton_packet

let min_ip_header = 20

(* RFC 1071 internet checksum over [len] bytes at [off]. *)
let checksum ?(init = 0) b off len =
  let sum = ref init in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let set_u16 b off v = Bytes.set_uint16_be b off (v land 0xFFFF)
let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int (v land 0xFFFFFFFF))

let set_mac b off ip first =
  Bytes.set b off '\x02';
  Bytes.set b (off + 1) (Char.chr first);
  set_u32 b (off + 2) ip

(* The L4 segment a packet implies: header length and total L4 bytes
   (header + payload), normalizing fields a frame cannot represent. *)
let l4_layout p =
  let proto = Packet.get p Field.Proto in
  let payload = Packet.get p Field.Payload_len in
  if proto = Field.Protocol.tcp then begin
    let claimed =
      Packet.get p Field.Pkt_len - min_ip_header - payload
    in
    let hdr =
      if claimed >= 20 && claimed <= 60 && claimed land 3 = 0 then claimed
      else 20
    in
    (hdr, hdr + payload)
  end
  else if proto = Field.Protocol.udp then (8, 8 + payload)
  else (0, 0)

(** Encode one packet as a full (untruncated) Ethernet frame. *)
let frame p =
  let proto = Packet.get p Field.Proto in
  let payload_len = Packet.get p Field.Payload_len in
  let l4_hdr, l4_bytes = l4_layout p in
  (* Buffer size never lies about the headers even if the 16-bit total
     field must clamp a pathological oversized packet. *)
  let ip_total = max (Packet.get p Field.Pkt_len) (min_ip_header + l4_bytes) in
  let vlan = Packet.get p Field.Ingress_port <> 0 in
  let l2 = 14 + (if vlan then 4 else 0) in
  let b = Bytes.make (l2 + ip_total) '\x00' in
  (* Ethernet *)
  set_mac b 0 (Packet.get p Field.Dst_ip) 0;
  set_mac b 6 (Packet.get p Field.Src_ip) 1;
  let ip_off =
    if vlan then begin
      set_u16 b 12 Decode.ethertype_vlan;
      set_u16 b 14 (Packet.get p Field.Ingress_port);
      set_u16 b 16 Decode.ethertype_ipv4;
      18
    end
    else begin
      set_u16 b 12 Decode.ethertype_ipv4;
      14
    end
  in
  (* IPv4, no options *)
  Bytes.set b ip_off '\x45';
  set_u16 b (ip_off + 2) (min ip_total 0xFFFF);
  Bytes.set b (ip_off + 8) (Char.chr (Packet.get p Field.Ttl land 0xFF));
  Bytes.set b (ip_off + 9) (Char.chr (proto land 0xFF));
  set_u32 b (ip_off + 12) (Packet.get p Field.Src_ip);
  set_u32 b (ip_off + 16) (Packet.get p Field.Dst_ip);
  set_u16 b (ip_off + 10) (checksum b ip_off min_ip_header);
  let l4_off = ip_off + min_ip_header in
  let pseudo_sum () =
    (* IP pseudo-header folded in as the checksum's initial value. *)
    let src = Packet.get p Field.Src_ip and dst = Packet.get p Field.Dst_ip in
    (src lsr 16) + (src land 0xFFFF) + (dst lsr 16) + (dst land 0xFFFF)
    + proto + l4_bytes
  in
  if proto = Field.Protocol.tcp then begin
    set_u16 b l4_off (Packet.get p Field.Src_port);
    set_u16 b (l4_off + 2) (Packet.get p Field.Dst_port);
    set_u32 b (l4_off + 4) (Packet.get p Field.Tcp_seq);
    set_u32 b (l4_off + 8) (Packet.get p Field.Tcp_ack);
    Bytes.set b (l4_off + 12) (Char.chr ((l4_hdr / 4) lsl 4));
    Bytes.set b (l4_off + 13)
      (Char.chr (Packet.get p Field.Tcp_flags land 0xFF));
    set_u16 b (l4_off + 14) 8192 (* window *);
    Bytes.fill b (l4_off + 20) (l4_hdr - 20) '\x01' (* NOP option padding *);
    set_u16 b (l4_off + 16) (checksum ~init:(pseudo_sum ()) b l4_off l4_bytes)
  end
  else if proto = Field.Protocol.udp then begin
    set_u16 b l4_off (Packet.get p Field.Src_port);
    set_u16 b (l4_off + 2) (Packet.get p Field.Dst_port);
    set_u16 b (l4_off + 4) (8 + payload_len);
    let sport = Packet.get p Field.Src_port
    and dport = Packet.get p Field.Dst_port in
    if (sport = 53 || dport = 53) && payload_len >= 12 then begin
      (* DNS header: QR flag and answer count are what queries read. *)
      set_u16 b (l4_off + 8 + 2) (Packet.get p Field.Dns_qr lsl 15);
      set_u16 b (l4_off + 8 + 4) 1 (* QDCOUNT *);
      set_u16 b (l4_off + 8 + 6) (Packet.get p Field.Dns_ancount)
    end;
    set_u16 b (l4_off + 6) (checksum ~init:(pseudo_sum ()) b l4_off l4_bytes)
  end;
  b
