(** {!Newton_packet.Packet.t} → Ethernet frame bytes, the inverse of
    {!Decode} — so synthetic traces export to pcap files that tcpdump /
    tshark / Wireshark open, and re-ingesting an exported trace
    reproduces the original field vectors exactly.

    Encoding choices:
    - MACs are synthesized, locally administered, derived from the IPs
      (02:00:aa:bb:cc:dd) so Wireshark conversations stay readable.
    - A non-zero [Ingress_port] becomes an 802.1Q tag on the outermost
      Ethernet header whose VLAN id carries the port — the tag
      {!Decode} maps back.
    - [Ip_ver] = 6 emits an IPv6 frame whose addresses are [::a.b.c.d]
      (the 32-bit address word in the low quad, upper 96 bits zero):
      the decoder's XOR-fold of such an address is the word itself, so
      the round trip is exact.
    - The TCP data offset is chosen as [(Pkt_len - hdr - Payload_len) / 4]
      (option bytes are NOP-padded), so the decoder's payload-length
      arithmetic returns [Payload_len] bit-exactly.  Every packet the
      generators emit is representable; an inconsistent hand-built
      packet is normalized to a minimal 20-byte TCP header.
    - ICMP/ICMPv6 packets get an 8-byte header carrying type and code;
      consistent packets satisfy [Pkt_len = ip_hdr + 8 + Payload_len].
    - UDP port-53 packets get a real 12-byte DNS header carrying the
      QR bit and answer count.
    - A non-zero [Tun_id] wraps the packet in a tunnel: VXLAN by
      default (outer IPv4/UDP to port 4789, VNI = [Tun_id], inner
      Ethernet frame), or GRE with the key bit when [~tunnel:`Gre]
      (outer IPv4 proto 47, key = [Tun_id], inner IP packet).  Outer
      endpoints are synthesized deterministically from the tunnel id;
      {!Decode} attributes the flow to the inner 5-tuple.
    - IP and TCP/UDP/ICMP checksums are computed, payload bytes are
      zero (content is not modeled). *)

open Newton_packet

let min_ip_header = 20
let ip6_header = 40

(* RFC 1071 internet checksum over [len] bytes at [off]. *)
let checksum ?(init = 0) b off len =
  let sum = ref init in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get b !i) lsl 8);
  let s = ref !sum in
  while !s lsr 16 <> 0 do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let set_u16 b off v = Bytes.set_uint16_be b off (v land 0xFFFF)
let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int (v land 0xFFFFFFFF))

let set_mac b off ip first =
  Bytes.set b off '\x02';
  Bytes.set b (off + 1) (Char.chr first);
  set_u32 b (off + 2) ip

let is_icmp proto =
  proto = Field.Protocol.icmp || proto = Field.Protocol.icmpv6

(* The L4 segment a packet implies: header length and total L4 bytes
   (header + payload), normalizing fields a frame cannot represent.
   [ip_hdr] is the IP header size the data offset must absorb. *)
let l4_layout ~ip_hdr p =
  let proto = Packet.get p Field.Proto in
  let payload = Packet.get p Field.Payload_len in
  if proto = Field.Protocol.tcp then begin
    let claimed = Packet.get p Field.Pkt_len - ip_hdr - payload in
    let hdr =
      if claimed >= 20 && claimed <= 60 && claimed land 3 = 0 then claimed
      else 20
    in
    (hdr, hdr + payload)
  end
  else if proto = Field.Protocol.udp then (8, 8 + payload)
  else if is_icmp proto then (8, 8 + payload)
  else (0, 0)

(* IP pseudo-header folded in as the L4 checksum's initial value.  Our
   IPv6 addresses are ::w, so folding the 32-bit words covers both
   families. *)
let pseudo_sum p l4_bytes =
  let src = Packet.get p Field.Src_ip and dst = Packet.get p Field.Dst_ip in
  (src lsr 16) + (src land 0xFFFF) + (dst lsr 16) + (dst land 0xFFFF)
  + Packet.get p Field.Proto + l4_bytes

(* Write the L4 segment (header + zero payload) at [l4_off]. *)
let write_l4 b l4_off ~l4_hdr ~l4_bytes p =
  let proto = Packet.get p Field.Proto in
  let payload_len = Packet.get p Field.Payload_len in
  if proto = Field.Protocol.tcp then begin
    set_u16 b l4_off (Packet.get p Field.Src_port);
    set_u16 b (l4_off + 2) (Packet.get p Field.Dst_port);
    set_u32 b (l4_off + 4) (Packet.get p Field.Tcp_seq);
    set_u32 b (l4_off + 8) (Packet.get p Field.Tcp_ack);
    Bytes.set b (l4_off + 12) (Char.chr ((l4_hdr / 4) lsl 4));
    Bytes.set b (l4_off + 13)
      (Char.chr (Packet.get p Field.Tcp_flags land 0xFF));
    set_u16 b (l4_off + 14) 8192 (* window *);
    Bytes.fill b (l4_off + 20) (l4_hdr - 20) '\x01' (* NOP option padding *);
    set_u16 b (l4_off + 16)
      (checksum ~init:(pseudo_sum p l4_bytes) b l4_off l4_bytes)
  end
  else if proto = Field.Protocol.udp then begin
    set_u16 b l4_off (Packet.get p Field.Src_port);
    set_u16 b (l4_off + 2) (Packet.get p Field.Dst_port);
    set_u16 b (l4_off + 4) (8 + payload_len);
    let sport = Packet.get p Field.Src_port
    and dport = Packet.get p Field.Dst_port in
    if (sport = 53 || dport = 53) && payload_len >= 12 then begin
      (* DNS header: QR flag and answer count are what queries read. *)
      set_u16 b (l4_off + 8 + 2) (Packet.get p Field.Dns_qr lsl 15);
      set_u16 b (l4_off + 8 + 4) 1 (* QDCOUNT *);
      set_u16 b (l4_off + 8 + 6) (Packet.get p Field.Dns_ancount)
    end;
    set_u16 b (l4_off + 6)
      (checksum ~init:(pseudo_sum p l4_bytes) b l4_off l4_bytes)
  end
  else if is_icmp proto then begin
    Bytes.set b l4_off (Char.chr (Packet.get p Field.Icmp_type land 0xFF));
    Bytes.set b (l4_off + 1)
      (Char.chr (Packet.get p Field.Icmp_code land 0xFF));
    (* ICMPv6 checksums include the pseudo-header; ICMPv4 does not. *)
    let init =
      if proto = Field.Protocol.icmpv6 then pseudo_sum p l4_bytes else 0
    in
    set_u16 b (l4_off + 2) (checksum ~init b l4_off l4_bytes)
  end

(* The IP packet (header + L4) alone, link layer excluded. *)
let ip_packet p =
  if Packet.get p Field.Ip_ver = 6 then begin
    let l4_hdr, l4_bytes = l4_layout ~ip_hdr:ip6_header p in
    let payload =
      max (Packet.get p Field.Pkt_len - ip6_header) l4_bytes
    in
    let b = Bytes.make (ip6_header + payload) '\x00' in
    Bytes.set b 0 '\x60';
    set_u16 b 4 (min payload 0xFFFF);
    Bytes.set b 6 (Char.chr (Packet.get p Field.Proto land 0xFF));
    Bytes.set b 7 (Char.chr (Packet.get p Field.Ttl land 0xFF));
    (* ::a.b.c.d — the address word in the low quad. *)
    set_u32 b 20 (Packet.get p Field.Src_ip);
    set_u32 b 36 (Packet.get p Field.Dst_ip);
    write_l4 b ip6_header ~l4_hdr ~l4_bytes p;
    b
  end
  else begin
    let l4_hdr, l4_bytes = l4_layout ~ip_hdr:min_ip_header p in
    (* Buffer size never lies about the headers even if the 16-bit
       total field must clamp a pathological oversized packet. *)
    let total =
      max (Packet.get p Field.Pkt_len) (min_ip_header + l4_bytes)
    in
    let b = Bytes.make total '\x00' in
    Bytes.set b 0 '\x45';
    set_u16 b 2 (min total 0xFFFF);
    Bytes.set b 8 (Char.chr (Packet.get p Field.Ttl land 0xFF));
    Bytes.set b 9 (Char.chr (Packet.get p Field.Proto land 0xFF));
    set_u32 b 12 (Packet.get p Field.Src_ip);
    set_u32 b 16 (Packet.get p Field.Dst_ip);
    set_u16 b 10 (checksum b 0 min_ip_header);
    write_l4 b min_ip_header ~l4_hdr ~l4_bytes p;
    b
  end

(* Ethernet header (14 or 18 bytes with an 802.1Q tag) in front of an
   ethertype [et] payload. *)
let eth_frame ~vlan_vid ~et ~src_ip ~dst_ip payload =
  let l2 = 14 + (if vlan_vid <> 0 then 4 else 0) in
  let b = Bytes.make (l2 + Bytes.length payload) '\x00' in
  set_mac b 0 dst_ip 0;
  set_mac b 6 src_ip 1;
  if vlan_vid <> 0 then begin
    set_u16 b 12 Decode.ethertype_vlan;
    set_u16 b 14 vlan_vid;
    set_u16 b 16 et
  end
  else set_u16 b 12 et;
  Bytes.blit payload 0 b l2 (Bytes.length payload);
  b

let ethertype_of p =
  if Packet.get p Field.Ip_ver = 6 then Decode.ethertype_ipv6
  else Decode.ethertype_ipv4

(* Deterministic outer tunnel endpoints, derived from the tunnel id so
   exported captures stay readable and reproducible. *)
let outer_src tun = 0x0AFF0000 lor (tun lsr 8)
let outer_dst tun = 0x0AFE0000 lor (tun land 0xFFFF)

(* Outer IPv4 header in front of an L3 payload. *)
let outer_ipv4 ~proto ~src_ip ~dst_ip payload =
  let total = min_ip_header + Bytes.length payload in
  let b = Bytes.make total '\x00' in
  Bytes.set b 0 '\x45';
  set_u16 b 2 (min total 0xFFFF);
  Bytes.set b 8 '\x40' (* TTL 64 *);
  Bytes.set b 9 (Char.chr proto);
  set_u32 b 12 src_ip;
  set_u32 b 16 dst_ip;
  set_u16 b 10 (checksum b 0 min_ip_header);
  Bytes.blit payload 0 b min_ip_header (Bytes.length payload);
  b

(** Encode one packet as a full (untruncated) Ethernet frame.  A
    non-zero [Tun_id] wraps it in VXLAN (default) or GRE. *)
let frame ?(tunnel = `Vxlan) p =
  let tun = Packet.get p Field.Tun_id in
  let vlan_vid = Packet.get p Field.Ingress_port in
  if tun = 0 then
    eth_frame ~vlan_vid ~et:(ethertype_of p)
      ~src_ip:(Packet.get p Field.Src_ip) ~dst_ip:(Packet.get p Field.Dst_ip)
      (ip_packet p)
  else begin
    let inner_ip = ip_packet p in
    let src_ip = outer_src tun and dst_ip = outer_dst tun in
    let l3 =
      match tunnel with
      | `Vxlan ->
          (* Outer UDP to 4789 carrying (VXLAN header ++ inner untagged
             Ethernet frame); the VLAN tag stays on the outer header. *)
          let inner_eth =
            eth_frame ~vlan_vid:0 ~et:(ethertype_of p)
              ~src_ip:(Packet.get p Field.Src_ip)
              ~dst_ip:(Packet.get p Field.Dst_ip) inner_ip
          in
          let udp_len = 8 + 8 + Bytes.length inner_eth in
          let u = Bytes.make udp_len '\x00' in
          set_u16 u 0 (0xC000 lor (tun land 0xFFF)) (* entropy source port *);
          set_u16 u 2 Decode.vxlan_port;
          set_u16 u 4 udp_len;
          (* checksum 0 = none, legal for UDP over IPv4 *)
          Bytes.set u 8 '\x08' (* VNI-valid flag *);
          set_u32 u 12 (tun lsl 8);
          Bytes.blit inner_eth 0 u 16 (Bytes.length inner_eth);
          outer_ipv4 ~proto:Field.Protocol.udp ~src_ip ~dst_ip u
      | `Gre ->
          (* GRE with the key bit: 8-byte header, key = tunnel id. *)
          let g = Bytes.make (8 + Bytes.length inner_ip) '\x00' in
          set_u16 g 0 0x2000 (* K *);
          set_u16 g 2 (ethertype_of p);
          set_u32 g 4 tun;
          Bytes.blit inner_ip 0 g 8 (Bytes.length inner_ip);
          outer_ipv4 ~proto:Field.Protocol.gre ~src_ip ~dst_ip g
    in
    eth_frame ~vlan_vid ~et:Decode.ethertype_ipv4 ~src_ip ~dst_ip l3
  end
