(** Classic pcap (libpcap "savefile") reader and writer.

    The reader accepts all four magic variants — native or swapped byte
    order, microsecond or nanosecond timestamp resolution — and streams
    records without loading the file into memory.  The writer emits the
    canonical little-endian form; nanosecond resolution by default, so
    sub-microsecond synthetic timestamps survive the round trip.

    A record's [ts] is seconds as a float ([ts_sec + subsec / resol]).
    Timestamps below ~2^22 seconds (≈48 days — any trace-relative
    clock) round-trip bit-exactly through the nanosecond writer; epoch
    timestamps keep ~0.1 µs of float precision, well inside the 100 ms
    windows the queries use. *)

exception Format_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

(* Magic numbers as written by a little-endian producer. *)
let magic_usec = 0xA1B2C3D4
let magic_nsec = 0xA1B23C4D

let linktype_ethernet = 1

type header = {
  big_endian : bool;  (** file byte order is big-endian *)
  nsec : bool;        (** sub-second field is nanoseconds *)
  snaplen : int;
  linktype : int;
}

type record = {
  ts : float;      (** capture timestamp, seconds *)
  data : bytes;    (** captured bytes ([caplen] of them) *)
  orig_len : int;  (** original frame length on the wire *)
}

(* ---------------- reading ---------------- *)

let get_u32 ~be b off =
  let v =
    if be then Int32.to_int (Bytes.get_int32_be b off)
    else Int32.to_int (Bytes.get_int32_le b off)
  in
  v land 0xFFFFFFFF

let get_u16 ~be b off =
  if be then Bytes.get_uint16_be b off else Bytes.get_uint16_le b off

(* Read exactly [n] bytes, or None at a clean EOF boundary; a partial
   read mid-structure is reported to the caller as [`Short]. *)
let try_read ic n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then `Ok b
    else
      match input ic b off (n - off) with
      | 0 -> if off = 0 then `Eof else `Short
      | k -> go (off + k)
  in
  go 0

let read_header ic =
  match try_read ic 24 with
  | `Eof | `Short -> error "truncated pcap global header"
  | `Ok b ->
      let raw_le = get_u32 ~be:false b 0 in
      let raw_be = get_u32 ~be:true b 0 in
      let big_endian, nsec =
        if raw_le = magic_usec then (false, false)
        else if raw_le = magic_nsec then (false, true)
        else if raw_be = magic_usec then (true, false)
        else if raw_be = magic_nsec then (true, true)
        else error "bad pcap magic 0x%08x" raw_le
      in
      let be = big_endian in
      let major = get_u16 ~be b 4 and minor = get_u16 ~be b 6 in
      if major <> 2 then error "unsupported pcap version %d.%d" major minor;
      { big_endian; nsec; snaplen = get_u32 ~be b 16; linktype = get_u32 ~be b 20 }

(** Next record, or [None] at end of input.  A file that ends in the
    middle of a record (a cut-short capture) yields [`Truncated] so the
    caller can count it as a skip instead of crashing. *)
let read_record header ic =
  let be = header.big_endian in
  match try_read ic 16 with
  | `Eof -> `End
  | `Short -> `Truncated
  | `Ok h -> (
      let sec = get_u32 ~be h 0 in
      let sub = get_u32 ~be h 4 in
      let caplen = get_u32 ~be h 8 in
      let orig_len = get_u32 ~be h 12 in
      (* A caplen beyond any sane snapshot means a corrupt length field;
         reading it as data would chase garbage across the file. *)
      if caplen > 0x4000000 then `Truncated
      else
        match if caplen = 0 then `Ok Bytes.empty else try_read ic caplen with
        | `Eof | `Short -> `Truncated
        | `Ok data ->
            let resol = if header.nsec then 1e9 else 1e6 in
            `Record
              { ts = float_of_int sec +. (float_of_int sub /. resol);
                data; orig_len })

(** Fold over the records of an open channel.  Returns the accumulator
    and [true] when the file ended cleanly on a record boundary,
    [false] when the final record was cut short. *)
let fold_records header ic f init =
  let rec go acc =
    match read_record header ic with
    | `End -> (acc, true)
    | `Truncated -> (acc, false)
    | `Record r -> go (f acc r)
  in
  go init

(* ---------------- writing ---------------- *)

type writer = {
  oc : out_channel;
  w_nsec : bool;
  buf : Buffer.t;
}

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int (v land 0xFFFFFFFF))

(** Split float seconds into (sec, subsec) at the writer's resolution,
    carrying rounded-up subseconds into the seconds field. *)
let split_ts ~nsec ts =
  let resol = if nsec then 1_000_000_000 else 1_000_000 in
  let sec = int_of_float (Float.floor ts) in
  let sub =
    int_of_float (Float.round ((ts -. Float.floor ts) *. float_of_int resol))
  in
  if sub >= resol then (sec + 1, 0) else (sec, sub)

let create_writer ?(nsec = true) ?(snaplen = 0xFFFF) ?(linktype = linktype_ethernet)
    oc =
  let buf = Buffer.create 24 in
  add_u32 buf (if nsec then magic_nsec else magic_usec);
  Buffer.add_uint16_le buf 2;
  Buffer.add_uint16_le buf 4;
  add_u32 buf 0 (* thiszone *);
  add_u32 buf 0 (* sigfigs *);
  add_u32 buf snaplen;
  add_u32 buf linktype;
  Buffer.output_buffer oc buf;
  Buffer.clear buf;
  { oc; w_nsec = nsec; buf }

let write_record w ~ts ?orig_len data =
  let sec, sub = split_ts ~nsec:w.w_nsec ts in
  if sec < 0 then error "pcap cannot encode negative timestamp %g" ts;
  let caplen = Bytes.length data in
  add_u32 w.buf sec;
  add_u32 w.buf sub;
  add_u32 w.buf caplen;
  add_u32 w.buf (Option.value orig_len ~default:caplen);
  Buffer.add_bytes w.buf data;
  if Buffer.length w.buf > 1 lsl 20 then begin
    Buffer.output_buffer w.oc w.buf;
    Buffer.clear w.buf
  end

let flush_writer w =
  Buffer.output_buffer w.oc w.buf;
  Buffer.clear w.buf;
  flush w.oc
