(** pcapng (pcap next generation) reader.

    Supports what real captures are made of: Section Header Blocks (the
    byte-order magic sets per-section endianness; multiple sections may
    follow each other), Interface Description Blocks (several per
    section, each with its own link type and [if_tsresol]), Enhanced
    Packet Blocks, and Simple Packet Blocks.  Every other block type is
    skipped by its declared length.  Writing pcapng is out of scope —
    the {!Pcap} writer is the export path. *)

exception Format_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

let shb_type = 0x0A0D0D0A
let idb_type = 0x00000001
let spb_type = 0x00000003
let epb_type = 0x00000006
let byte_order_magic = 0x1A2B3C4D

(* A block total beyond any sane capture means a corrupt length field;
   allocating it would turn a malformed file into a multi-gigabyte
   Bytes.create.  Same cap as the classic-pcap reader's caplen guard. *)
let max_block_len = 0x4000000

type interface = {
  if_linktype : int;
  if_snaplen : int;
  units_per_sec : float;  (** timestamp units per second *)
}

type record = {
  ts : float;      (** seconds; 0 for Simple Packet Blocks (no stamp) *)
  data : bytes;
  orig_len : int;
  linktype : int;
}

type reader = {
  ic : in_channel;
  mutable be : bool;                  (** current section's byte order *)
  mutable interfaces : interface list;  (** reverse IDB order *)
  mutable n_interfaces : int;
}

let get_u32 ~be b off =
  let v =
    if be then Int32.to_int (Bytes.get_int32_be b off)
    else Int32.to_int (Bytes.get_int32_le b off)
  in
  v land 0xFFFFFFFF

let get_u16 ~be b off =
  if be then Bytes.get_uint16_be b off else Bytes.get_uint16_le b off

let try_read ic n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then `Ok b
    else
      match input ic b off (n - off) with
      | 0 -> if off = 0 then `Eof else `Short
      | k -> go (off + k)
  in
  go 0

(* [if_tsresol] option value: MSB clear = powers of 10, set = powers
   of 2; at most 2^63-safe magnitudes matter, so compute in float. *)
let units_of_tsresol v =
  if v land 0x80 = 0 then 10.0 ** float_of_int (v land 0x7F)
  else 2.0 ** float_of_int (v land 0x7F)

let default_interface_units = 1e6 (* if_tsresol defaults to 6 *)

(* Scan IDB options for if_tsresol (code 9). *)
let tsresol_of_options ~be body off =
  let len = Bytes.length body in
  let rec go off =
    if off + 4 > len then default_interface_units
    else
      let code = get_u16 ~be body off and olen = get_u16 ~be body (off + 2) in
      if code = 0 then default_interface_units
      else if code = 9 && olen >= 1 && off + 4 < len then
        units_of_tsresol (Char.code (Bytes.get body (off + 4)))
      else go (off + 4 + ((olen + 3) land lnot 3))
  in
  go off

let parse_shb r body =
  (* The byte-order magic decides how the rest of the section reads. *)
  if Bytes.length body < 4 then error "pcapng SHB too short";
  let bom_le = get_u32 ~be:false body 0 in
  let bom_be = get_u32 ~be:true body 0 in
  if bom_le = byte_order_magic then r.be <- false
  else if bom_be = byte_order_magic then r.be <- true
  else error "bad pcapng byte-order magic 0x%08x" bom_le;
  if Bytes.length body >= 8 then begin
    let major = get_u16 ~be:r.be body 4 in
    if major <> 1 then error "unsupported pcapng version %d" major
  end;
  (* A new section starts a fresh interface table. *)
  r.interfaces <- [];
  r.n_interfaces <- 0

let parse_idb r body =
  if Bytes.length body < 8 then error "pcapng IDB too short";
  let be = r.be in
  let iface =
    {
      if_linktype = get_u16 ~be body 0;
      if_snaplen = get_u32 ~be body 4;
      units_per_sec = tsresol_of_options ~be body 8;
    }
  in
  r.interfaces <- iface :: r.interfaces;
  r.n_interfaces <- r.n_interfaces + 1

let interface r id =
  if id < 0 || id >= r.n_interfaces then
    error "pcapng packet references unknown interface %d" id;
  List.nth r.interfaces (r.n_interfaces - 1 - id)

let parse_epb r body =
  if Bytes.length body < 20 then error "pcapng EPB too short";
  let be = r.be in
  let iface = interface r (get_u32 ~be body 0) in
  let hi = get_u32 ~be body 4 and lo = get_u32 ~be body 8 in
  let caplen = get_u32 ~be body 12 in
  let orig_len = get_u32 ~be body 16 in
  if caplen > Bytes.length body - 20 then error "pcapng EPB data overruns block";
  let ts =
    ((float_of_int hi *. 4294967296.0) +. float_of_int lo)
    /. iface.units_per_sec
  in
  { ts; data = Bytes.sub body 20 caplen; orig_len; linktype = iface.if_linktype }

let parse_spb r body =
  if Bytes.length body < 4 then error "pcapng SPB too short";
  if r.n_interfaces = 0 then error "pcapng SPB before any interface block";
  let iface = interface r 0 in
  let orig_len = get_u32 ~be:r.be body 0 in
  (* if_snaplen 0 means "no limit" per the pcapng spec, not zero bytes. *)
  let limit = if iface.if_snaplen = 0 then max_int else iface.if_snaplen in
  let caplen = min orig_len (min limit (Bytes.length body - 4)) in
  { ts = 0.0; data = Bytes.sub body 4 caplen; orig_len;
    linktype = iface.if_linktype }

let create_reader ic =
  match try_read ic 4 with
  | `Eof | `Short -> error "truncated pcapng header"
  | `Ok b ->
      if get_u32 ~be:false b 0 <> shb_type then
        error "not a pcapng file (no section header)";
      (* Endianness is unknown until the SHB body is parsed; read the
         block length in both orders and take the plausible one. *)
      (match try_read ic 4 with
      | `Eof | `Short -> error "truncated pcapng section header"
      | `Ok lb ->
          let r = { ic; be = false; interfaces = []; n_interfaces = 0 } in
          let len_le = get_u32 ~be:false lb 0 in
          let len_be = get_u32 ~be:true lb 0 in
          let total =
            if len_le >= 28 && len_le land 3 = 0 && len_le <= 0x10000 then len_le
            else len_be
          in
          if total < 28 || total land 3 <> 0 || total > max_block_len then
            error "bad pcapng section header length";
          (match try_read ic (total - 8) with
          | `Eof | `Short -> error "truncated pcapng section header"
          | `Ok body -> parse_shb r (Bytes.sub body 0 (total - 12)));
          r)

(** Next packet record, skipping non-packet blocks; [`Truncated] when
    the file ends inside a block. *)
let rec read_record r =
  match try_read r.ic 8 with
  | `Eof -> `End
  | `Short -> `Truncated
  | `Ok hd -> (
      (* A following section may flip byte order; the SHB type word is
         palindromic so it reads the same either way. *)
      let btype_raw = get_u32 ~be:false hd 0 in
      if btype_raw = shb_type then begin
        let len_le = get_u32 ~be:false hd 4 in
        let len_be = get_u32 ~be:true hd 4 in
        let total =
          if len_le >= 28 && len_le land 3 = 0 && len_le <= 0x10000 then len_le
          else len_be
        in
        if total < 28 || total land 3 <> 0 || total > max_block_len then
          raise (Format_error "bad pcapng section header length")
        else
          match try_read r.ic (total - 8) with
          | `Eof | `Short -> `Truncated
          | `Ok body ->
              parse_shb r (Bytes.sub body 0 (total - 12));
              read_record r
      end
      else
        let btype = get_u32 ~be:r.be hd 0 in
        let total = get_u32 ~be:r.be hd 4 in
        if total < 12 || total land 3 <> 0 || total > max_block_len then
          raise (Format_error "bad pcapng block length")
        else
          match try_read r.ic (total - 8) with
          | `Eof | `Short -> `Truncated
          | `Ok rest ->
              let body = Bytes.sub rest 0 (total - 12) in
              if btype = idb_type then begin
                parse_idb r body;
                read_record r
              end
              else if btype = epb_type then `Record (parse_epb r body)
              else if btype = spb_type then `Record (parse_spb r body)
              else read_record r (* statistics, name resolution, ... *))

let fold_records r f init =
  let rec go acc =
    match read_record r with
    | `End -> (acc, true)
    | `Truncated -> (acc, false)
    | `Record rec_ -> go (f acc rec_)
  in
  go init

let num_interfaces r = r.n_interfaces
