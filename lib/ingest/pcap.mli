(** Classic pcap (libpcap "savefile") reader and writer.

    The reader accepts all four magic variants (native / byte-swapped,
    microsecond / nanosecond); the writer emits canonical little-endian
    files, nanosecond-resolution by default so trace-relative float
    timestamps (< ~2^22 s) round-trip bit-exactly. *)

exception Format_error of string

val magic_usec : int
val magic_nsec : int

(** LINKTYPE_ETHERNET (1), the only link layer {!Decode} understands. *)
val linktype_ethernet : int

type header = {
  big_endian : bool;  (** file byte order is big-endian *)
  nsec : bool;        (** sub-second field is nanoseconds *)
  snaplen : int;
  linktype : int;
}

type record = {
  ts : float;      (** capture timestamp, seconds *)
  data : bytes;    (** captured bytes *)
  orig_len : int;  (** original frame length on the wire *)
}

(** Parse the 24-byte global header.
    @raise Format_error on bad magic, version, or truncation. *)
val read_header : in_channel -> header

(** Next record; [`Truncated] when the file ends mid-record (count it,
    don't crash), [`End] on a clean record boundary. *)
val read_record :
  header -> in_channel -> [ `Record of record | `Truncated | `End ]

(** Fold all records; the boolean is [true] iff the file ended cleanly
    (no cut-short final record). *)
val fold_records :
  header -> in_channel -> ('a -> record -> 'a) -> 'a -> 'a * bool

type writer

(** Write a global header and return a buffered writer.  Defaults:
    nanosecond resolution, snaplen 65535, Ethernet link type. *)
val create_writer :
  ?nsec:bool -> ?snaplen:int -> ?linktype:int -> out_channel -> writer

(** Append one record.  [orig_len] defaults to the captured length.
    @raise Format_error on a negative timestamp. *)
val write_record : writer -> ts:float -> ?orig_len:int -> bytes -> unit

(** Flush buffered records to the channel (does not close it). *)
val flush_writer : writer -> unit

(** Split float seconds at the writer resolution (sub-second carry
    handled); exposed for tests. *)
val split_ts : nsec:bool -> float -> int * int
