(** Raw captured frames → {!Newton_packet.Packet.t}.

    Parses Ethernet (optionally 802.1Q-tagged) → IPv4 → TCP/UDP, plus
    the DNS header bits the catalog queries consume (QR flag, answer
    count) on UDP port 53.  Anything else — ARP, IPv6, non-Ethernet
    link layers, frames cut before the headers end — is a counted skip,
    never an exception: a backbone capture always contains traffic the
    pipeline does not model.

    Field mapping (documented in docs/INGEST.md):
    - [Pkt_len] is the IPv4 total length (header lengths included,
      link layer excluded), matching the synthetic generator.
    - [Payload_len] is computed from the IP/L4 {e length fields}, not
      the captured byte count, so snaplen-truncated captures still
      yield the on-the-wire payload size.
    - A 802.1Q VLAN id maps onto [Ingress_port] (masked to the field's
      9 bits) — the conventional way port-of-capture metadata survives
      a mirror port; the {!Encode} side writes the same tag back.
    - Non-first IP fragments carry no L4 header: the IP-level fields
      decode and the L4 fields stay zero. *)

open Newton_packet

type skip =
  | Non_ip      (** not Ethernet/IPv4: ARP, IPv6, other link types *)
  | Truncated   (** capture ends before the headers do, or lengths lie *)

type result = Decoded of Packet.t | Skipped of skip

let ethertype_ipv4 = 0x0800
let ethertype_vlan = 0x8100
let ethertype_qinq = 0x88A8

let u16 b off = Bytes.get_uint16_be b off

let u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

(** Decode one captured Ethernet frame into a packet stamped [ts]. *)
let frame ?(linktype = Pcap.linktype_ethernet) ~ts data =
  let len = Bytes.length data in
  if linktype <> Pcap.linktype_ethernet then Skipped Non_ip
  else if len < 14 then Skipped Truncated
  else begin
    (* Ethernet, hopping over at most two VLAN tags (QinQ). *)
    let rec l3_offset off hops =
      if off + 2 > len then None
      else
        let et = u16 data off in
        if (et = ethertype_vlan || et = ethertype_qinq) && hops < 2 then
          if off + 6 > len then None
          else
            match l3_offset (off + 4) (hops + 1) with
            | Some (o, et', inner_vid) ->
                (* the outermost tag wins as capture-port metadata *)
                let own = u16 data (off + 2) land 0xFFF in
                Some (o, et', if own <> 0 then own else inner_vid)
            | None -> None
        else Some (off + 2, et, 0)
    in
    match l3_offset 12 0 with
    | None -> Skipped Truncated
    | Some (_, et, _) when et <> ethertype_ipv4 -> Skipped Non_ip
    | Some (ip_off, _, vid) ->
        if ip_off + 20 > len then Skipped Truncated
        else
          let vihl = Char.code (Bytes.get data ip_off) in
          if vihl lsr 4 <> 4 then Skipped Non_ip
          else
            let ihl = (vihl land 0xF) * 4 in
            let total_len = u16 data (ip_off + 2) in
            if ihl < 20 || total_len < ihl then Skipped Truncated
            else if ip_off + ihl > len then Skipped Truncated
            else begin
              let p = Packet.create ~ts () in
              Packet.set p Field.Src_ip (u32 data (ip_off + 12));
              Packet.set p Field.Dst_ip (u32 data (ip_off + 16));
              Packet.set p Field.Pkt_len total_len;
              Packet.set p Field.Ttl (Char.code (Bytes.get data (ip_off + 8)));
              let proto = Char.code (Bytes.get data (ip_off + 9)) in
              Packet.set p Field.Proto proto;
              if vid <> 0 then Packet.set p Field.Ingress_port vid;
              let frag = u16 data (ip_off + 6) land 0x1FFF in
              let l4_off = ip_off + ihl in
              if frag <> 0 then Decoded p (* no L4 header in later fragments *)
              else if proto = Field.Protocol.tcp then
                if l4_off + 20 > len then Skipped Truncated
                else begin
                  Packet.set p Field.Src_port (u16 data l4_off);
                  Packet.set p Field.Dst_port (u16 data (l4_off + 2));
                  Packet.set p Field.Tcp_seq (u32 data (l4_off + 4));
                  Packet.set p Field.Tcp_ack (u32 data (l4_off + 8));
                  let dataofs =
                    (Char.code (Bytes.get data (l4_off + 12)) lsr 4) * 4
                  in
                  Packet.set p Field.Tcp_flags
                    (Char.code (Bytes.get data (l4_off + 13)));
                  if dataofs < 20 then Skipped Truncated
                  else begin
                    Packet.set p Field.Payload_len
                      (max 0 (total_len - ihl - dataofs));
                    Decoded p
                  end
                end
              else if proto = Field.Protocol.udp then
                if l4_off + 8 > len then Skipped Truncated
                else begin
                  let sport = u16 data l4_off and dport = u16 data (l4_off + 2) in
                  Packet.set p Field.Src_port sport;
                  Packet.set p Field.Dst_port dport;
                  let udp_len = u16 data (l4_off + 4) in
                  Packet.set p Field.Payload_len (max 0 (udp_len - 8));
                  (* DNS header bits, when the capture includes them. *)
                  if (sport = 53 || dport = 53) && l4_off + 8 + 12 <= len then begin
                    let flags = u16 data (l4_off + 8 + 2) in
                    Packet.set p Field.Dns_qr (flags lsr 15);
                    Packet.set p Field.Dns_ancount (u16 data (l4_off + 8 + 6))
                  end;
                  Decoded p
                end
              else Decoded p (* ICMP & friends: IP-level fields only *)
            end
  end

let skip_to_string = function
  | Non_ip -> "non-ip"
  | Truncated -> "truncated"
