(** Raw captured frames → {!Newton_packet.Packet.t}.

    Parses Ethernet (optionally 802.1Q/QinQ-tagged) → IPv4 or IPv6 →
    TCP/UDP/ICMP/ICMPv6, plus the DNS header bits the catalog queries
    consume (QR flag, answer count) on UDP port 53, plus one level of
    GRE or VXLAN decapsulation.  Anything else — ARP, non-Ethernet link
    layers, frames cut before the headers end, headers whose lengths
    lie — is a counted skip, never an exception: a backbone capture
    always contains traffic the pipeline does not model.

    Skip taxonomy:
    - [Non_ip]: traffic the pipeline does not model at all (ARP, other
      link types, a third VLAN tag, unknown EtherTypes).
    - [Truncated]: the capture ends before the headers the packet
      claims to carry (snaplen cuts, torn final records).
    - [Fragment]: a non-first IP fragment.  It carries no L4 header, so
      decoding it would conflate every fragmented flow into one phantom
      port-0 5-tuple; fragments are skipped and counted instead.
    - [Malformed]: internally inconsistent headers — TCP data offset
      below 20, IHL below 20, total length below the header length, UDP
      length below 8, reserved GRE/VXLAN flag bits set, extension
      headers overrunning the IPv6 payload length.

    Field mapping (documented in docs/INGEST.md):
    - [Pkt_len] is the total IP length in bytes including the IP header
      (for IPv6: 40 + payload length), link layer excluded.
    - [Payload_len] is computed from the IP/L4 {e length fields}, not
      the captured byte count, so snaplen-truncated captures still
      yield the on-the-wire payload size.
    - IPv6 addresses are XOR-folded into the 32-bit [Src_ip]/[Dst_ip]
      words (the four 32-bit address words combined); [Ip_ver]
      distinguishes the address families.
    - A 802.1Q VLAN id maps onto [Ingress_port] (masked to the field's
      9 bits); for QinQ stacks the {e innermost} (customer) VID wins.
    - GRE (with inner IPv4/IPv6) and VXLAN are decapsulated one level:
      the 5-tuple, lengths and TTL describe the {e inner} packet, so
      intents monitor the tunneled flow; [Tun_id] carries the VXLAN VNI
      or GRE key (0 = not tunneled). *)

open Newton_packet

type skip =
  | Non_ip      (** not Ethernet/IP: ARP, other link types, >2 VLAN tags *)
  | Truncated   (** capture ends before the headers do *)
  | Fragment    (** non-first IP fragment: no L4 header to decode *)
  | Malformed   (** internally inconsistent headers (lengths/flags lie) *)

type result = Decoded of Packet.t | Skipped of skip

let ethertype_ipv4 = 0x0800
let ethertype_ipv6 = 0x86DD
let ethertype_vlan = 0x8100
let ethertype_qinq = 0x88A8

let vxlan_port = 4789

let u8 b off = Char.code (Bytes.get b off)
let u16 b off = Bytes.get_uint16_be b off
let u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

(* A 128-bit IPv6 address XOR-folded into the 32-bit address word the
   PHV carries.  The fold keeps full entropy for distinct-count and
   per-host queries; Encode writes addresses of the form ::a.b.c.d,
   whose fold is the word itself, so decode∘encode is the identity. *)
let fold_ip6 b off =
  u32 b off lxor u32 b (off + 4) lxor u32 b (off + 8) lxor u32 b (off + 12)

(* Internal control flow: parsing raises, [frame] catches.  Never
   escapes this module. *)
exception Skip of skip

let skipf s = raise (Skip s)

(* IPv6 extension headers we walk through (hop-by-hop, routing,
   destination options share the (next, hdr_ext_len) layout). *)
let is_opt_ext = function 0 | 43 | 60 -> true | _ -> false

let ext_fragment = 44
let ext_no_next = 59
let max_ext_hops = 8

(** Decode one captured Ethernet frame into a packet stamped [ts]. *)
let frame ?(linktype = Pcap.linktype_ethernet) ~ts data =
  let len = Bytes.length data in
  let need off n = if off + n > len then skipf Truncated in
  (* Ethernet type walk from an ethertype position, hopping over at
     most two VLAN tags (QinQ).  Returns (l3 offset, ethertype,
     innermost nonzero VID): for stacked 802.1ad/802.1Q tags the
     innermost customer tag is the one that identifies the port. *)
  let rec eth_walk off hops =
    need off 2;
    let et = u16 data off in
    if (et = ethertype_vlan || et = ethertype_qinq) && hops < 2 then begin
      need off 6;
      let o, et', inner_vid = eth_walk (off + 4) (hops + 1) in
      let own = u16 data (off + 2) land 0xFFF in
      (o, et', if inner_vid <> 0 then inner_vid else own)
    end
    else (off + 2, et, 0)
  in
  (* Mutually recursive over one level of decapsulation: [depth] is 0
     for the outer packet, 1 inside a tunnel (no further decap). *)
  let rec parse_l3 p ~et ~off ~depth =
    if et = ethertype_ipv4 then parse_ipv4 p ~off ~depth
    else if et = ethertype_ipv6 then parse_ipv6 p ~off ~depth
    else skipf Non_ip
  and parse_ipv4 p ~off ~depth =
    need off 20;
    let vihl = u8 data off in
    if vihl lsr 4 <> 4 then skipf Malformed;
    let ihl = (vihl land 0xF) * 4 in
    let total_len = u16 data (off + 2) in
    if ihl < 20 || total_len < ihl then skipf Malformed;
    need off ihl;
    Packet.set p Field.Ip_ver 4;
    Packet.set p Field.Src_ip (u32 data (off + 12));
    Packet.set p Field.Dst_ip (u32 data (off + 16));
    Packet.set p Field.Pkt_len total_len;
    Packet.set p Field.Ttl (u8 data (off + 8));
    let proto = u8 data (off + 9) in
    Packet.set p Field.Proto proto;
    let frag = u16 data (off + 6) land 0x1FFF in
    if frag <> 0 then skipf Fragment;
    parse_l4 p ~proto ~l4_off:(off + ihl) ~l4_len:(total_len - ihl) ~depth
  and parse_ipv6 p ~off ~depth =
    need off 40;
    if u8 data off lsr 4 <> 6 then skipf Malformed;
    let payload_len = u16 data (off + 4) in
    Packet.set p Field.Ip_ver 6;
    Packet.set p Field.Src_ip (fold_ip6 data (off + 8));
    Packet.set p Field.Dst_ip (fold_ip6 data (off + 24));
    Packet.set p Field.Pkt_len (min (40 + payload_len) 0xFFFF);
    Packet.set p Field.Ttl (u8 data (off + 7));
    (* Bounded extension-header walk: [budget] is the IPv6 payload
       remaining per the length field; overrunning it is Malformed,
       running off the capture is Truncated. *)
    let rec walk next ext_off budget hops =
      if is_opt_ext next then begin
        if hops >= max_ext_hops then skipf Malformed;
        need ext_off 2;
        let nh = u8 data ext_off in
        let size = (u8 data (ext_off + 1) + 1) * 8 in
        if size > budget then skipf Malformed;
        need ext_off size;
        walk nh (ext_off + size) (budget - size) (hops + 1)
      end
      else if next = ext_fragment then begin
        if 8 > budget then skipf Malformed;
        need ext_off 8;
        if u16 data (ext_off + 2) lsr 3 <> 0 then skipf Fragment;
        walk (u8 data ext_off) (ext_off + 8) (budget - 8) (hops + 1)
      end
      else begin
        Packet.set p Field.Proto next;
        if next <> ext_no_next then
          parse_l4 p ~proto:next ~l4_off:ext_off ~l4_len:budget ~depth
      end
    in
    walk (u8 data (off + 6)) (off + 40) payload_len 0
  and parse_l4 p ~proto ~l4_off ~l4_len ~depth =
    if proto = Field.Protocol.tcp then begin
      need l4_off 20;
      Packet.set p Field.Src_port (u16 data l4_off);
      Packet.set p Field.Dst_port (u16 data (l4_off + 2));
      Packet.set p Field.Tcp_seq (u32 data (l4_off + 4));
      Packet.set p Field.Tcp_ack (u32 data (l4_off + 8));
      Packet.set p Field.Tcp_flags (u8 data (l4_off + 13));
      let dataofs = (u8 data (l4_off + 12) lsr 4) * 4 in
      if dataofs < 20 || dataofs > l4_len then skipf Malformed;
      need l4_off dataofs;
      Packet.set p Field.Payload_len (l4_len - dataofs)
    end
    else if proto = Field.Protocol.udp then begin
      need l4_off 8;
      let sport = u16 data l4_off and dport = u16 data (l4_off + 2) in
      Packet.set p Field.Src_port sport;
      Packet.set p Field.Dst_port dport;
      let udp_len = u16 data (l4_off + 4) in
      if udp_len < 8 then skipf Malformed;
      Packet.set p Field.Payload_len (udp_len - 8);
      (* DNS header bits, when the capture includes them. *)
      if (sport = 53 || dport = 53) && l4_off + 8 + 12 <= len then begin
        let flags = u16 data (l4_off + 8 + 2) in
        Packet.set p Field.Dns_qr (flags lsr 15);
        Packet.set p Field.Dns_ancount (u16 data (l4_off + 8 + 6))
      end;
      if depth = 0 && dport = vxlan_port && udp_len - 8 >= 8 then
        parse_vxlan p ~off:(l4_off + 8)
    end
    else if proto = Field.Protocol.icmp || proto = Field.Protocol.icmpv6
    then begin
      need l4_off 4;
      Packet.set p Field.Icmp_type (u8 data l4_off);
      Packet.set p Field.Icmp_code (u8 data (l4_off + 1));
      Packet.set p Field.Payload_len (max 0 (l4_len - 8))
    end
    else if proto = Field.Protocol.gre && depth = 0 then
      parse_gre p ~l4_off ~l4_len
    (* other protocols: IP-level fields only *)
  and parse_gre p ~l4_off ~l4_len =
    need l4_off 4;
    let fl = u16 data l4_off in
    (* RFC 2784/2890: only C/K/S flags, version 0; anything else is a
       header we would misparse. *)
    if fl land lnot 0xB000 <> 0 then skipf Malformed;
    let opt mask = if fl land mask <> 0 then 4 else 0 in
    let hdr = 4 + opt 0x8000 + opt 0x2000 + opt 0x1000 in
    if hdr > l4_len then skipf Malformed;
    need l4_off hdr;
    if fl land 0x2000 <> 0 then
      Packet.set p Field.Tun_id (u32 data (l4_off + 4 + opt 0x8000));
    let et = u16 data (l4_off + 2) in
    if et = ethertype_ipv4 || et = ethertype_ipv6 then
      parse_l3 p ~et ~off:(l4_off + hdr) ~depth:1
    (* a payload type we don't model: keep the outer IP fields *)
  and parse_vxlan p ~off =
    need off 8;
    (* RFC 7348: the flags octet of a VXLAN header is exactly 0x08 (VNI
       valid, reserved bits zero).  Anything else on port 4789 is plain
       UDP traffic, not a tunnel — leave it un-decapsulated. *)
    if u8 data off <> 0x08 then ()
    else begin
    Packet.set p Field.Tun_id (u32 data (off + 4) lsr 8);
    (* The outer UDP header must not leak into the inner flow. *)
    List.iter
      (fun f -> Packet.set p f 0)
      Field.
        [ Src_port; Dst_port; Tcp_flags; Tcp_seq; Tcp_ack; Dns_qr;
          Dns_ancount; Payload_len ];
    (* Inner Ethernet frame. *)
    need (off + 8) 14;
    let ip_off, et, vid = eth_walk (off + 8 + 12) 0 in
    if vid <> 0 then Packet.set p Field.Ingress_port vid;
    parse_l3 p ~et ~off:ip_off ~depth:1
    end
  in
  if linktype <> Pcap.linktype_ethernet then Skipped Non_ip
  else if len < 14 then Skipped Truncated
  else
    match
      let ip_off, et, vid = eth_walk 12 0 in
      let p = Packet.create ~ts () in
      if vid <> 0 then Packet.set p Field.Ingress_port vid;
      parse_l3 p ~et ~off:ip_off ~depth:0;
      p
    with
    | p -> Decoded p
    | exception Skip s -> Skipped s

let skip_to_string = function
  | Non_ip -> "non-ip"
  | Truncated -> "truncated"
  | Fragment -> "fragment"
  | Malformed -> "malformed"
