(** Facade over the capture formats: sniff pcap vs. pcapng by magic,
    decode records into packets with counted skips, stream lazily for
    {!Stream.run}, and export synthetic traces back to pcap.

    Every frame pulled through this module is accounted for in the
    telemetry sink: [Ingest_frames] per record, then exactly one of
    [Ingest_decoded] / [Ingest_non_ip] / [Ingest_truncated] /
    [Ingest_fragment] / [Ingest_malformed] (a file cut mid-record also
    counts as truncated). *)

module Stats = Newton_telemetry.Stats
module Gen = Newton_trace.Gen

exception Format_error of string

type format = Pcap_format | Pcapng_format

let format_to_string = function
  | Pcap_format -> "pcap"
  | Pcapng_format -> "pcapng"

let u32le b = Char.code (Bytes.get b 0)
              lor (Char.code (Bytes.get b 1) lsl 8)
              lor (Char.code (Bytes.get b 2) lsl 16)
              lor (Char.code (Bytes.get b 3) lsl 24)

let u32be b = Char.code (Bytes.get b 3)
              lor (Char.code (Bytes.get b 2) lsl 8)
              lor (Char.code (Bytes.get b 1) lsl 16)
              lor (Char.code (Bytes.get b 0) lsl 24)

(* pcapng's block-type magic is a byte palindrome, so one endianness
   suffices to recognize it. *)
let pcapng_magic = 0x0A0D0D0A

let sniff_channel ic =
  let b = Bytes.create 4 in
  (try really_input ic b 0 4
   with End_of_file ->
     raise (Format_error "capture shorter than a format magic"));
  seek_in ic 0;
  let le = u32le b and be = u32be b in
  if le = pcapng_magic then Pcapng_format
  else if
    le = Pcap.magic_usec || be = Pcap.magic_usec || le = Pcap.magic_nsec
    || be = Pcap.magic_nsec
  then Pcap_format
  else raise (Format_error "not a pcap or pcapng capture (bad magic)")

let reraise_format f =
  try f () with
  | Pcap.Format_error m | Pcapng.Format_error m -> raise (Format_error m)

let with_file path f =
  let ic =
    try open_in_bin path
    with Sys_error m -> raise (Format_error m)
  in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      reraise_format (fun () -> f ic))

(* A format-independent record cursor. *)
type cursor =
  | Cpcap of Pcap.header
  | Cng of Pcapng.reader

let open_cursor ic =
  match sniff_channel ic with
  | Pcap_format -> Cpcap (Pcap.read_header ic)
  | Pcapng_format -> Cng (Pcapng.create_reader ic)

(** Next record as [(ts, data, orig_len, linktype)]. *)
let cursor_next cursor ic =
  match cursor with
  | Cpcap h -> (
      match Pcap.read_record h ic with
      | `Record r -> `Record (r.Pcap.ts, r.Pcap.data, r.Pcap.orig_len, h.Pcap.linktype)
      | (`Truncated | `End) as e -> e)
  | Cng r -> (
      match Pcapng.read_record r with
      | `Record r -> `Record (r.Pcapng.ts, r.Pcapng.data, r.Pcapng.orig_len, r.Pcapng.linktype)
      | (`Truncated | `End) as e -> e)

(* Decode one record, keeping the books. *)
let decode_record stats ts data linktype =
  Stats.bump stats Stats.Ingest_frames 1;
  match Decode.frame ~linktype ~ts data with
  | Decode.Decoded p ->
      Stats.bump stats Stats.Ingest_decoded 1;
      Some p
  | Decode.Skipped Decode.Non_ip ->
      Stats.bump stats Stats.Ingest_non_ip 1;
      None
  | Decode.Skipped Decode.Truncated ->
      Stats.bump stats Stats.Ingest_truncated 1;
      None
  | Decode.Skipped Decode.Fragment ->
      Stats.bump stats Stats.Ingest_fragment 1;
      None
  | Decode.Skipped Decode.Malformed ->
      Stats.bump stats Stats.Ingest_malformed 1;
      None

let fold ?(stats = Stats.null) path f init =
  with_file path (fun ic ->
      let cursor = open_cursor ic in
      let rec go acc =
        match cursor_next cursor ic with
        | `Record (ts, data, orig_len, linktype) ->
            ignore orig_len;
            go
              (match decode_record stats ts data linktype with
              | Some p -> f acc p
              | None -> acc)
        | `Truncated ->
            Stats.bump stats Stats.Ingest_frames 1;
            Stats.bump stats Stats.Ingest_truncated 1;
            acc
        | `End -> acc
      in
      go init)

let load ?stats path =
  let rev = fold ?stats path (fun acc p -> p :: acc) [] in
  Gen.of_packets ~name:(Filename.basename path)
    (Array.of_list (List.rev rev))

let with_source ?(stats = Stats.null) path f =
  with_file path (fun ic ->
      let cursor = open_cursor ic in
      let finished = ref false in
      let rec next () =
        if !finished then None
        else
          match reraise_format (fun () -> cursor_next cursor ic) with
          | `Record (ts, data, _orig, linktype) -> (
              match decode_record stats ts data linktype with
              | Some p -> Some p
              | None -> next ())
          | `Truncated ->
              Stats.bump stats Stats.Ingest_frames 1;
              Stats.bump stats Stats.Ingest_truncated 1;
              finished := true;
              None
          | `End ->
              finished := true;
              None
      in
      f next)

let export ?nsec trace path =
  let oc =
    try open_out_bin path
    with Sys_error m -> raise (Format_error m)
  in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      reraise_format (fun () ->
          let w = Pcap.create_writer ?nsec oc in
          Gen.iter
            (fun p ->
              Pcap.write_record w ~ts:(Newton_packet.Packet.ts p)
                (Encode.frame p))
            trace;
          Pcap.flush_writer w))

type info = {
  format : format;
  frames : int;        (** capture records in the file *)
  decoded : int;
  non_ip : int;
  truncated : int;     (** decoder skips + a file cut mid-record *)
  fragment : int;      (** non-first IP fragments *)
  malformed : int;     (** internally inconsistent headers *)
  clean_end : bool;    (** file ended on a record/block boundary *)
  interfaces : int;    (** pcapng interface blocks; 1 for classic pcap *)
  linktype : int;      (** pcap link type; -1 when per-interface (pcapng) *)
  nsec : bool option;  (** pcap sub-second unit; [None] for pcapng *)
  big_endian : bool option;  (** pcap byte order; [None] for pcapng *)
  snaplen : int;       (** pcap snap length; -1 when per-interface *)
  first_ts : float option;
  last_ts : float option;
}

let info path =
  with_file path (fun ic ->
      let cursor = open_cursor ic in
      let stats = Stats.create () in
      let first_ts = ref None and last_ts = ref None in
      let rec go () =
        match cursor_next cursor ic with
        | `Record (ts, data, _orig, linktype) ->
            if !first_ts = None then first_ts := Some ts;
            last_ts := Some ts;
            ignore (decode_record stats ts data linktype);
            go ()
        | `Truncated ->
            Stats.bump stats Stats.Ingest_frames 1;
            Stats.bump stats Stats.Ingest_truncated 1;
            false
        | `End -> true
      in
      let clean_end = go () in
      let format, interfaces, linktype, nsec, big_endian, snaplen =
        match cursor with
        | Cpcap h ->
            ( Pcap_format, 1, h.Pcap.linktype, Some h.Pcap.nsec,
              Some h.Pcap.big_endian, h.Pcap.snaplen )
        | Cng r -> (Pcapng_format, Pcapng.num_interfaces r, -1, None, None, -1)
      in
      {
        format;
        frames = Stats.get stats Stats.Ingest_frames;
        decoded = Stats.get stats Stats.Ingest_decoded;
        non_ip = Stats.get stats Stats.Ingest_non_ip;
        truncated = Stats.get stats Stats.Ingest_truncated;
        fragment = Stats.get stats Stats.Ingest_fragment;
        malformed = Stats.get stats Stats.Ingest_malformed;
        clean_end;
        interfaces;
        linktype;
        nsec;
        big_endian;
        snaplen;
        first_ts = !first_ts;
        last_ts = !last_ts;
      })
