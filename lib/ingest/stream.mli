(** Paced, bounded-queue streaming replay.

    The driver alternates arrival turns (pull what the pacing mode
    says is ready from the source) and service turns (hand at most
    [chunk] queued packets to the sink as one batch) over a bounded
    FIFO.  A full queue engages the backpressure policy: {!Block}
    pauses the source (lossless — a capture file can wait), {!Drop}
    models a live capture that cannot and counts the overflow.

    Single-threaded and deterministic under {!Asap}: with a fixed
    source, queue depth, chunk and burst, delivery order and drop
    counts are reproducible. *)

type pace =
  | Asap                (** replay as fast as the consumer allows *)
  | Realtime of float   (** pace by capture timestamps, [speedup] x *)

type policy = Block | Drop

(** A pull source; [None] means exhausted (and stays [None]). *)
type source = unit -> Newton_packet.Packet.t option

type summary = {
  delivered : int;     (** packets handed to the sink *)
  dropped : int;       (** packets discarded on a full queue *)
  chunks : int;        (** sink invocations *)
  wall_seconds : float;
}

val default_depth : int
val default_chunk : int

val of_packets : Newton_packet.Packet.t array -> source
val of_trace : Newton_trace.Gen.t -> source

(** [run source sink] pumps the source dry (under {!Drop}, packets
    overflowing the queue are discarded rather than delivered).

    [depth] bounds the queue (default {!default_depth}); [chunk] is
    the service batch (default {!default_chunk}) — when [depth] is
    smaller than [chunk], batches are capped at [depth] and the queue
    is serviced whenever it fills; [burst] is the {!Asap} arrival
    batch (default [chunk] — keep it at or below [depth] unless
    deliberately overrunning); [stats] receives [Ingest_dropped]
    bumps, queue-depth and inter-arrival observations.

    @raise Invalid_argument on a non-positive [depth], [chunk],
    [burst] or speedup. *)
val run :
  ?depth:int ->
  ?chunk:int ->
  ?burst:int ->
  ?pace:pace ->
  ?policy:policy ->
  ?stats:Newton_telemetry.Stats.sink ->
  source ->
  (Newton_packet.Packet.t array -> unit) ->
  summary
