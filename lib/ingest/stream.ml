(** Paced, bounded-queue streaming replay: the driver between a packet
    source (a decoded capture file, a synthetic trace) and a consumer
    (engine, sharded engine, network controller).

    The driver alternates {e arrival turns} and {e service turns} over
    a bounded FIFO that models the ingest ring between capture and
    processing:

    - an arrival turn pulls the packets the pacing mode says are ready
      — a fixed burst in [Asap] mode, everything due by the wall clock
      in [Realtime] mode (capture timestamps scaled by [speedup]) —
      and enqueues them;
    - a service turn pops at most [chunk] packets and hands them to
      the sink as one batch.  Service fires when the queue reaches the
      lesser of [chunk] and [depth] (a queue shallower than the batch
      still drains), when the source is exhausted, and — on paced
      replays — whenever an arrival turn pulled nothing, so queued
      packets are delivered promptly instead of waiting for a full
      batch to become due.

    When an arrival finds the queue full, the backpressure policy
    decides: [Block] pauses the source (a file can wait — lossless),
    [Drop] models a live capture that cannot ([`count-and-drop`]: the
    overflow is discarded and counted).  With the default burst no
    larger than the queue, [Asap]+[Drop] never actually drops; a burst
    above the queue depth — or a paced microburst bigger than the ring
    — overruns deterministically, which is what the backpressure tests
    pin down.

    Telemetry: dropped packets bump [Ingest_dropped]; queue depth is
    observed after every arrival turn and capture-timestamp gaps for
    every pulled packet ({!Newton_telemetry.Stats}). *)

open Newton_packet
module Stats = Newton_telemetry.Stats

type pace =
  | Asap                (** replay as fast as the consumer allows *)
  | Realtime of float   (** capture-timestamp pacing, [speedup] x *)

type policy = Block | Drop

type source = unit -> Packet.t option

type summary = {
  delivered : int;     (** packets handed to the sink *)
  dropped : int;       (** packets discarded on a full queue *)
  chunks : int;        (** sink invocations *)
  wall_seconds : float;
}

let default_depth = 4096
let default_chunk = 1024

let of_packets (packets : Packet.t array) : source =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length packets then None
    else begin
      let p = packets.(!i) in
      incr i;
      Some p
    end

let of_trace trace = of_packets (Newton_trace.Gen.packets trace)

(* One-slot lookahead so pacing can ask "when is the next packet due"
   without consuming it. *)
type 'a peekable = { mutable slot : 'a option; next : unit -> 'a option }

let peek pk =
  match pk.slot with
  | Some _ as s -> s
  | None ->
      pk.slot <- pk.next ();
      pk.slot

let pop pk =
  match peek pk with
  | None -> None
  | some ->
      pk.slot <- None;
      some

let run ?(depth = default_depth) ?(chunk = default_chunk) ?burst ?(pace = Asap)
    ?(policy = Block) ?(stats = Stats.null) (source : source)
    (sink : Packet.t array -> unit) =
  if depth < 1 then invalid_arg "Stream.run: depth must be positive";
  if chunk < 1 then invalid_arg "Stream.run: chunk must be positive";
  let burst = Option.value burst ~default:chunk in
  if burst < 1 then invalid_arg "Stream.run: burst must be positive";
  (match pace with
  | Realtime s when s <= 0.0 ->
      invalid_arg "Stream.run: speedup must be positive"
  | _ -> ());
  let src = { slot = None; next = source } in
  let q : Packet.t Queue.t = Queue.create () in
  let t_start = Unix.gettimeofday () in
  (* Wall-clock origin for Realtime pacing, fixed at the first packet. *)
  let clock = ref None in
  let due p =
    match pace with
    | Asap -> 0.0
    | Realtime speedup ->
        let ts = Packet.ts p in
        let t0_wall, t0_ts =
          match !clock with
          | Some c -> c
          | None ->
              let c = (t_start, ts) in
              clock := Some c;
              c
        in
        t0_wall +. ((ts -. t0_ts) /. speedup)
  in
  let prev_ts = ref nan in
  let dropped = ref 0 in
  let delivered = ref 0 in
  let chunks = ref 0 in
  let pull_one () =
    match pop src with
    | None -> ()
    | Some p ->
        let ts = Packet.ts p in
        if Float.is_nan !prev_ts |> not then
          Stats.observe_interarrival stats (Float.max 0.0 (ts -. !prev_ts));
        prev_ts := ts;
        if Queue.length q < depth then Queue.add p q
        else begin
          incr dropped;
          Stats.bump stats Stats.Ingest_dropped 1
        end
  in
  (* Returns how many packets the turn consumed from the source, so the
     loop can tell a paused/idle turn from a productive one. *)
  let arrival_turn () =
    let pulled = ref 0 in
    (match pace with
    | Asap ->
        (* [Block]: the source pauses at the high-water mark; [Drop]:
           the full burst arrives regardless and overflow is counted. *)
        let budget =
          match policy with
          | Block -> min burst (depth - Queue.length q)
          | Drop -> burst
        in
        while !pulled < budget && peek src <> None do
          pull_one ();
          incr pulled
        done
    | Realtime _ ->
        (* Sleep only when idle: queue drained and nothing due yet. *)
        (match peek src with
        | Some p when Queue.is_empty q ->
            let wait = due p -. Unix.gettimeofday () in
            if wait > 1e-4 then Unix.sleepf wait
        | _ -> ());
        let now = Unix.gettimeofday () in
        let ready p = due p <= now in
        let continue = ref true in
        while !continue do
          match peek src with
          | Some p when ready p ->
              if policy = Block && Queue.length q >= depth then continue := false
              else begin
                pull_one ();
                incr pulled
              end
          | _ -> continue := false
        done);
    Stats.observe_queue_depth stats (Queue.length q);
    !pulled
  in
  let service_turn () =
    let n = min chunk (Queue.length q) in
    if n > 0 then begin
      let batch = Array.init n (fun _ -> Queue.pop q) in
      sink batch;
      delivered := !delivered + n;
      incr chunks
    end
  in
  (* A queue shallower than [chunk] can never hold a full batch, so
     service at the high-water mark — otherwise [Block] would pause the
     source forever with the service condition unreachable. *)
  let service_at = min chunk depth in
  let paced = match pace with Realtime _ -> true | Asap -> false in
  let rec loop () =
    let pulled = arrival_turn () in
    (* Paced replays also deliver a partial batch whenever an arrival
       turn produced nothing: the queued packets would otherwise sit
       undelivered (and the loop would spin) until enough of the
       capture became due to fill a whole chunk. *)
    if
      Queue.length q >= service_at
      || peek src = None
      || (paced && pulled = 0)
    then service_turn ();
    if peek src <> None || not (Queue.is_empty q) then loop ()
  in
  (match peek src with None -> () | Some _ -> loop ());
  {
    delivered = !delivered;
    dropped = !dropped;
    chunks = !chunks;
    wall_seconds = Unix.gettimeofday () -. t_start;
  }
