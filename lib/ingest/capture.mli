(** Facade over the capture formats: magic-based sniffing, decoded
    loading and lazy streaming of pcap/pcapng files, and pcap export of
    synthetic traces.  All counted in the telemetry sink: one
    [Ingest_frames] bump per record, then exactly one of
    [Ingest_decoded] / [Ingest_non_ip] / [Ingest_truncated] /
    [Ingest_fragment] / [Ingest_malformed]. *)

(** Raised for any structural problem with a capture file — bad magic,
    bad version, malformed block, unreadable path.  Frame-level damage
    (a record the capture cut short, a non-IP frame) is a counted skip
    instead, never an exception. *)
exception Format_error of string

type format = Pcap_format | Pcapng_format

val format_to_string : format -> string

(** Identify the capture format from the leading magic, leaving the
    channel repositioned at the start.
    @raise Format_error if the magic is unknown or the file too short *)
val sniff_channel : in_channel -> format

(** Decode a capture into packets, in file order.
    @raise Format_error on a structurally bad file *)
val fold :
  ?stats:Newton_telemetry.Stats.sink ->
  string ->
  ('a -> Newton_packet.Packet.t -> 'a) ->
  'a ->
  'a

(** The whole capture as a trace named after the file. *)
val load : ?stats:Newton_telemetry.Stats.sink -> string -> Newton_trace.Gen.t

(** [with_source path f] opens the capture and hands [f] a lazy pull
    source (decoding record-by-record — the whole file is never
    resident) for {!Stream.run}.  The file is closed when [f] returns
    or raises. *)
val with_source :
  ?stats:Newton_telemetry.Stats.sink ->
  string ->
  (Stream.source -> 'a) ->
  'a

(** Export a trace as a classic pcap file (nanosecond resolution by
    default, see {!Pcap.create_writer}). *)
val export : ?nsec:bool -> Newton_trace.Gen.t -> string -> unit

type info = {
  format : format;
  frames : int;        (** capture records in the file *)
  decoded : int;
  non_ip : int;
  truncated : int;     (** decoder skips + a file cut mid-record *)
  fragment : int;      (** non-first IP fragments *)
  malformed : int;     (** internally inconsistent headers *)
  clean_end : bool;    (** file ended on a record/block boundary *)
  interfaces : int;    (** pcapng interface blocks; 1 for classic pcap *)
  linktype : int;      (** pcap link type; -1 when per-interface (pcapng) *)
  nsec : bool option;  (** pcap sub-second unit; [None] for pcapng *)
  big_endian : bool option;  (** pcap byte order; [None] for pcapng *)
  snaplen : int;       (** pcap snap length; -1 when per-interface *)
  first_ts : float option;
  last_ts : float option;
}

(** One pass over the file: format details plus decode accounting —
    what [newton pcap-info] prints. *)
val info : string -> info
