(** Trace serialization: save generated traces to disk and replay them
    later, so experiments can share the exact same packet stream across
    processes (the role pcap files play for the real system).

    Format (little-endian):
    {v
      magic   "NTRC"            4 bytes
      version u8                currently 2
      name    u16 len + bytes   profile name
      count   u32               number of packets
      packets count * (f64 ts + fields * u32)
    v}

    Version 2 widened records from 14 to {!Field.count} fields when the
    decode extension added [Ip_ver]/[Icmp_type]/[Icmp_code]/[Tun_id].
    Version-1 files still load: their records carry the first 14 fields
    and the rest default to zero (with [Ip_ver] = 4 — every v1 trace
    predates IPv6 support). *)

open Newton_packet

let magic = "NTRC"
let version = 2

(* Fields per record in a version-1 file: the prefix of [Field.all]
   before the v2 additions. *)
let v1_field_count = 14

exception Format_error of string

let save (trace : Gen.t) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create (1 lsl 16) in
      Buffer.add_string buf magic;
      Buffer.add_uint8 buf version;
      let name = (Gen.profile trace).Profile.name in
      Buffer.add_uint16_le buf (String.length name);
      Buffer.add_string buf name;
      Buffer.add_int32_le buf (Int32.of_int (Gen.length trace));
      Gen.iter
        (fun p ->
          Buffer.add_int64_le buf (Int64.bits_of_float (Packet.ts p));
          List.iter
            (fun f -> Buffer.add_int32_le buf (Int32.of_int (Packet.get p f)))
            Field.all;
          if Buffer.length buf > 1 lsl 20 then begin
            Buffer.output_buffer oc buf;
            Buffer.clear buf
          end)
        trace;
      Buffer.output_buffer oc buf)

let read_exactly ic n =
  let b = Bytes.create n in
  really_input ic b 0 n;
  b

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         let m = really_input_string ic 4 in
         if m <> magic then raise (Format_error ("bad magic " ^ m))
       with End_of_file -> raise (Format_error "truncated header"));
      let v = input_byte ic in
      if v <> 1 && v <> version then
        raise (Format_error (Printf.sprintf "unsupported version %d" v));
      let name_len = Bytes.get_uint16_le (read_exactly ic 2) 0 in
      let name = really_input_string ic name_len in
      let count = Int32.to_int (Bytes.get_int32_le (read_exactly ic 4) 0) in
      if count < 0 then raise (Format_error "negative packet count");
      let fields_per_record = if v = 1 then v1_field_count else Field.count in
      let record_bytes = 8 + (fields_per_record * 4) in
      let read_record () =
        let b = read_exactly ic record_bytes in
        let ts = Int64.float_of_bits (Bytes.get_int64_le b 0) in
        let p = Packet.create ~ts () in
        List.iteri
          (fun i f ->
            (* Fields are stored as unsigned 32-bit words: mask off the
               sign extension [Int32.to_int] reintroduces so values with
               the high bit set (IPs >= 128.0.0.0) round-trip intact. *)
            if i < fields_per_record then
              Packet.set p f
                (Int32.to_int (Bytes.get_int32_le b (8 + (i * 4)))
                land 0xFFFFFFFF))
          Field.all;
        if v = 1 then Packet.set p Field.Ip_ver 4;
        p
      in
      (* Records are read sequentially into a preallocated array — not
         inside [Array.init], whose element evaluation order is
         unspecified and could permute (or interleave) the stream. *)
      let packets =
        if count = 0 then [||]
        else begin
          let arr = Array.make count (Packet.create ~ts:0.0 ()) in
          (try
             for i = 0 to count - 1 do
               arr.(i) <- read_record ()
             done
           with End_of_file -> raise (Format_error "truncated packet data"));
          arr
        end
      in
      Gen.of_packets ~name:("loaded:" ^ name) packets)
