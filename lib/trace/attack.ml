(** Attack traffic injectors.

    Each of the nine evaluation queries (Table 2 of the paper) detects a
    specific behaviour; these injectors synthesise flows that exhibit it so
    every query has ground-truth positives in the trace.  Each injector
    returns the packets it adds plus the identity of the entity a correct
    query should report (victim or culprit IP). *)

open Newton_packet

type t =
  | Syn_flood of { victim : int; attackers : int; syns_per_attacker : int }
      (** many SYNs, no completing ACKs → Q6 (and inflates Q1) *)
  | Port_scan of { scanner : int; victim : int; ports : int }
      (** one source probing many destination ports → Q4 *)
  | Super_spreader of { source : int; fanout : int }
      (** one source contacting many distinct destinations → Q3 *)
  | Udp_ddos of { victim : int; attackers : int; pkts_per_attacker : int }
      (** high-rate UDP from many sources to one destination → Q5 *)
  | Ssh_brute of { victim : int; attackers : int; attempts_each : int }
      (** many short completed TCP connections to port 22 → Q2, Q7 *)
  | Slowloris of { victim : int; conns : int }
      (** many connections, few bytes each, to one web server → Q8 *)
  | Dns_orphan of { resolver : int; victims : int }
      (** DNS responses never followed by a TCP connection → Q9 *)
  | Icmp_flood of { victim : int; attackers : int; pkts_per_attacker : int }
      (** high-rate ICMP from many sources → Q13 *)
  | Reflection of { victim : int; reflectors : int; pkts_each : int }
      (** unsolicited SYN-ACKs bounced off reflectors → Q14 *)
  | Amplification of { victim : int; reflectors : int; pkts_each : int; port : int }
      (** amplified UDP responses from service port [port] (123 = NTP,
          1900 = SSDP) flooding one victim → Q15 *)
  | Icmp6_scan of { scanner : int; fanout : int }
      (** one source sweeping many hosts with ICMPv6 echo requests → Q16 *)
  | Tunnel_exfil of { src : int; dst : int; tun_id : int; pkts : int }
      (** bulk transfer hidden inside a VXLAN/GRE tunnel; the inner
          source is the culprit → Q17 *)

(** The IP address a correct detector should report for this attack. *)
let reported_host = function
  | Syn_flood { victim; _ } -> victim
  | Port_scan { victim; _ } -> victim
  | Super_spreader { source; _ } -> source
  | Udp_ddos { victim; _ } -> victim
  | Ssh_brute { victim; _ } -> victim
  | Slowloris { victim; _ } -> victim
  | Dns_orphan { victims; _ } -> victims (* count, not a host; see generate *)
  | Icmp_flood { victim; _ } -> victim
  | Reflection { victim; _ } -> victim
  | Amplification { victim; _ } -> victim
  | Icmp6_scan { scanner; _ } -> scanner
  | Tunnel_exfil { src; _ } -> src

let to_string = function
  | Syn_flood { victim; attackers; syns_per_attacker } ->
      Printf.sprintf "syn_flood(victim=%s, %d attackers x %d syns)"
        (Packet.ip_to_string victim) attackers syns_per_attacker
  | Port_scan { scanner; victim; ports } ->
      Printf.sprintf "port_scan(%s -> %s, %d ports)"
        (Packet.ip_to_string scanner) (Packet.ip_to_string victim) ports
  | Super_spreader { source; fanout } ->
      Printf.sprintf "super_spreader(%s, fanout=%d)" (Packet.ip_to_string source) fanout
  | Udp_ddos { victim; attackers; pkts_per_attacker } ->
      Printf.sprintf "udp_ddos(victim=%s, %d attackers x %d pkts)"
        (Packet.ip_to_string victim) attackers pkts_per_attacker
  | Ssh_brute { victim; attackers; attempts_each } ->
      Printf.sprintf "ssh_brute(victim=%s, %d attackers x %d attempts)"
        (Packet.ip_to_string victim) attackers attempts_each
  | Slowloris { victim; conns } ->
      Printf.sprintf "slowloris(victim=%s, %d conns)" (Packet.ip_to_string victim) conns
  | Dns_orphan { resolver; victims } ->
      Printf.sprintf "dns_orphan(resolver=%s, %d victims)"
        (Packet.ip_to_string resolver) victims
  | Icmp_flood { victim; attackers; pkts_per_attacker } ->
      Printf.sprintf "icmp_flood(victim=%s, %d attackers x %d pkts)"
        (Packet.ip_to_string victim) attackers pkts_per_attacker
  | Reflection { victim; reflectors; pkts_each } ->
      Printf.sprintf "reflection(victim=%s, %d reflectors x %d)"
        (Packet.ip_to_string victim) reflectors pkts_each
  | Amplification { victim; reflectors; pkts_each; port } ->
      Printf.sprintf "amplification(%s, victim=%s, %d reflectors x %d)"
        (match port with 123 -> "ntp" | 1900 -> "ssdp" | p -> string_of_int p)
        (Packet.ip_to_string victim) reflectors pkts_each
  | Icmp6_scan { scanner; fanout } ->
      Printf.sprintf "icmp6_scan(%s, fanout=%d)"
        (Packet.ip_to_string scanner) fanout
  | Tunnel_exfil { src; dst; tun_id; pkts } ->
      Printf.sprintf "tunnel_exfil(%s -> %s, vni=0x%x, %d pkts)"
        (Packet.ip_to_string src) (Packet.ip_to_string dst) tun_id pkts

(* Address-space carving: attack hosts live in 10.200.0.0/16 so they never
   collide with background hosts (10.0.0.0/16) or with each other. *)
let attack_base = 0x0AC80000 (* 10.200.0.0 *)

let host_of offset = attack_base + offset

(** Generate the packets of an attack, timestamps uniform over
    [0, duration). Returns packets in arbitrary order (the trace builder
    sorts globally). *)
let generate rng ~duration attack =
  let ts () = Newton_util.Prng.float_range rng duration in
  let pkts = ref [] in
  let emit p = pkts := p :: !pkts in
  let tcp = Field.Protocol.tcp and udp = Field.Protocol.udp in
  let flag = Field.Tcp_flag.syn in
  (match attack with
  | Syn_flood { victim; attackers; syns_per_attacker } ->
      for a = 0 to attackers - 1 do
        let src = host_of (0x1000 + a) in
        for s = 0 to syns_per_attacker - 1 do
          emit
            (Packet.make ~ts:(ts ()) ~src_ip:src ~dst_ip:victim ~proto:tcp
               ~src_port:(20000 + s) ~dst_port:80 ~tcp_flags:flag ~pkt_len:60 ())
        done
      done
  | Port_scan { scanner; victim; ports } ->
      for p = 0 to ports - 1 do
        emit
          (Packet.make ~ts:(ts ()) ~src_ip:scanner ~dst_ip:victim ~proto:tcp
             ~src_port:45000 ~dst_port:(1 + p) ~tcp_flags:flag ~pkt_len:60 ())
      done
  | Super_spreader { source; fanout } ->
      for d = 0 to fanout - 1 do
        emit
          (Packet.make ~ts:(ts ()) ~src_ip:source ~dst_ip:(host_of (0x8000 + d))
             ~proto:tcp ~src_port:(30000 + (d land 0xfff)) ~dst_port:80
             ~tcp_flags:flag ~pkt_len:60 ())
      done
  | Udp_ddos { victim; attackers; pkts_per_attacker } ->
      for a = 0 to attackers - 1 do
        let src = host_of (0x2000 + a) in
        for _ = 1 to pkts_per_attacker do
          emit
            (Packet.make ~ts:(ts ()) ~src_ip:src ~dst_ip:victim ~proto:udp
               ~src_port:(1024 + Newton_util.Prng.int rng 60000) ~dst_port:123
               ~pkt_len:512 ~payload_len:480 ())
        done
      done
  | Ssh_brute { victim; attackers; attempts_each } ->
      for a = 0 to attackers - 1 do
        let src = host_of (0x3000 + a) in
        for s = 0 to attempts_each - 1 do
          let t0 = ts () in
          let sport = 40000 + s in
          (* Complete, short connection: SYN / SYN-ACK / ACK / FIN / FIN. *)
          emit
            (Packet.make ~ts:t0 ~src_ip:src ~dst_ip:victim ~proto:tcp
               ~src_port:sport ~dst_port:22 ~tcp_flags:flag ~pkt_len:60 ());
          emit
            (Packet.make ~ts:(t0 +. 1e-4) ~src_ip:victim ~dst_ip:src ~proto:tcp
               ~src_port:22 ~dst_port:sport ~tcp_flags:Field.Tcp_flag.syn_ack
               ~pkt_len:60 ());
          emit
            (Packet.make ~ts:(t0 +. 2e-4) ~src_ip:src ~dst_ip:victim ~proto:tcp
               ~src_port:sport ~dst_port:22 ~tcp_flags:Field.Tcp_flag.ack
               ~pkt_len:60 ());
          emit
            (Packet.make ~ts:(t0 +. 3e-4) ~src_ip:src ~dst_ip:victim ~proto:tcp
               ~src_port:sport ~dst_port:22
               ~tcp_flags:(Field.Tcp_flag.fin lor Field.Tcp_flag.ack)
               ~pkt_len:60 ())
        done
      done
  | Slowloris { victim; conns } ->
      for c = 0 to conns - 1 do
        let src = host_of (0x4000 + (c / 16)) in
        let sport = 50000 + (c land 0x3fff) in
        let t0 = ts () in
        emit
          (Packet.make ~ts:t0 ~src_ip:src ~dst_ip:victim ~proto:tcp
             ~src_port:sport ~dst_port:80 ~tcp_flags:flag ~pkt_len:60 ());
        emit
          (Packet.make ~ts:(t0 +. 1e-4) ~src_ip:victim ~dst_ip:src ~proto:tcp
             ~src_port:80 ~dst_port:sport ~tcp_flags:Field.Tcp_flag.syn_ack
             ~pkt_len:60 ());
        emit
          (Packet.make ~ts:(t0 +. 2e-4) ~src_ip:src ~dst_ip:victim ~proto:tcp
             ~src_port:sport ~dst_port:80 ~tcp_flags:Field.Tcp_flag.ack
             ~pkt_len:60 ());
        (* A trickle of tiny payload segments: many connections, few bytes. *)
        emit
          (Packet.make ~ts:(t0 +. 3e-4) ~src_ip:src ~dst_ip:victim ~proto:tcp
             ~src_port:sport ~dst_port:80 ~tcp_flags:Field.Tcp_flag.psh
             ~pkt_len:61 ~payload_len:1 ())
      done
  | Dns_orphan { resolver; victims } ->
      for v = 0 to victims - 1 do
        let host = host_of (0x5000 + v) in
        let t0 = ts () in
        (* Query, then repeated responses (the client never accepts and
           the resolver retries); the host never opens the advertised TCP
           connection afterwards — exactly Q9's signature.  A well-behaved
           resolution sees exactly one response, so the retries are what
           make orphaned hosts cross Q9's threshold. *)
        emit
          (Packet.make ~ts:t0 ~src_ip:host ~dst_ip:resolver ~proto:udp
             ~src_port:(10000 + v) ~dst_port:53 ~pkt_len:80 ~payload_len:40 ());
        for retry = 1 to 3 do
          emit
            (Packet.make
               ~ts:(t0 +. (5e-4 *. float_of_int retry))
               ~src_ip:resolver ~dst_ip:host ~proto:udp ~src_port:53
               ~dst_port:(10000 + v) ~dns_qr:1 ~dns_ancount:1 ~pkt_len:120
               ~payload_len:80 ())
        done
      done
  | Icmp_flood { victim; attackers; pkts_per_attacker } ->
      for a = 0 to attackers - 1 do
        let src = host_of (0x6000 + a) in
        for _ = 1 to pkts_per_attacker do
          (* A classic 84-byte echo request: 20 IP + 8 ICMP + 56 payload,
             so the frame encodes/decodes to these exact fields. *)
          emit
            (Packet.make ~ts:(ts ()) ~src_ip:src ~dst_ip:victim
               ~proto:Field.Protocol.icmp ~icmp_type:8 ~pkt_len:84
               ~payload_len:56 ())
        done
      done
  | Reflection { victim; reflectors; pkts_each } ->
      (* The attacker spoofs the victim's address towards reflectors,
         which answer with SYN-ACKs the victim never solicited. *)
      for r = 0 to reflectors - 1 do
        let reflector = host_of (0x7000 + r) in
        for i = 1 to pkts_each do
          emit
            (Packet.make ~ts:(ts ()) ~src_ip:reflector ~dst_ip:victim ~proto:tcp
               ~src_port:80 ~dst_port:(40000 + i)
               ~tcp_flags:Field.Tcp_flag.syn_ack ~pkt_len:60 ())
        done
      done
  | Amplification { victim; reflectors; pkts_each; port } ->
      (* Spoofed requests bounce off open NTP/SSDP reflectors, which
         answer the victim with large responses from the service port. *)
      for r = 0 to reflectors - 1 do
        let reflector = host_of (0x9000 + r) in
        for _ = 1 to pkts_each do
          emit
            (Packet.make ~ts:(ts ()) ~src_ip:reflector ~dst_ip:victim
               ~proto:udp ~src_port:port
               ~dst_port:(1024 + Newton_util.Prng.int rng 60000)
               ~pkt_len:1028 ~payload_len:1000 ())
        done
      done
  | Icmp6_scan { scanner; fanout } ->
      for d = 0 to fanout - 1 do
        (* ICMPv6 echo request (type 128): 40 IPv6 + 8 ICMPv6 + 56. *)
        emit
          (Packet.make ~ts:(ts ()) ~src_ip:scanner ~dst_ip:(host_of (0xA000 + d))
             ~proto:Field.Protocol.icmpv6 ~ip_ver:6 ~icmp_type:128
             ~pkt_len:104 ~payload_len:56 ())
      done
  | Tunnel_exfil { src; dst; tun_id; pkts } ->
      for i = 1 to pkts do
        emit
          (Packet.make ~ts:(ts ()) ~src_ip:src ~dst_ip:dst ~proto:udp
             ~src_port:(40000 + (i land 0xFF)) ~dst_port:443 ~tun_id
             ~pkt_len:1228 ~payload_len:1200 ())
      done);
  !pkts

(** Default attack suite sized so each query has clear positives in
    every one of the paper's 100 ms windows (a 1-second trace has ten;
    per-window intensity must clear the catalog's default thresholds). *)
let default_suite =
  [
    Syn_flood { victim = host_of 1; attackers = 40; syns_per_attacker = 25 };
    Port_scan { scanner = host_of 2; victim = host_of 3; ports = 800 };
    Super_spreader { source = host_of 4; fanout = 1000 };
    Udp_ddos { victim = host_of 5; attackers = 80; pkts_per_attacker = 15 };
    Ssh_brute { victim = host_of 6; attackers = 15; attempts_each = 20 };
    Slowloris { victim = host_of 7; conns = 800 };
    Dns_orphan { resolver = host_of 8; victims = 150 };
  ]

(** The scenario-diversity attacks behind the extension queries
    Q15–Q17: IPv6, ICMPv6 and tunneled traffic.  Kept out of
    {!default_suite} so existing differential baselines stay stable. *)
let extras_suite =
  [
    Amplification { victim = host_of 9; reflectors = 50; pkts_each = 10; port = 123 };
    Amplification { victim = host_of 10; reflectors = 50; pkts_each = 10; port = 1900 };
    Icmp6_scan { scanner = host_of 11; fanout = 900 };
    Tunnel_exfil { src = host_of 12; dst = host_of 13; tun_id = 0xBEEF; pkts = 400 };
  ]

(** {!default_suite} plus {!extras_suite}: every injector in the repo. *)
let extended_suite = default_suite @ extras_suite
