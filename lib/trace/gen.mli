(** Trace generation: time-sorted packet streams from a profile, a seed
    and an attack list.  The same (profile, seed, attacks) triple always
    yields the identical trace. *)

open Newton_packet

type t

val packets : t -> Packet.t array
val length : t -> int
val profile : t -> Profile.t
val attacks : t -> Attack.t list

(** Generate a trace deterministically. *)
val generate : ?attacks:Attack.t list -> seed:int -> Profile.t -> t

(** Wrap a time-sorted packet array (e.g. loaded from disk). *)
val of_packets : name:string -> Packet.t array -> t

val iter : (Packet.t -> unit) -> t -> unit
val fold : ('a -> Packet.t -> 'a) -> 'a -> t -> 'a

(** Visit the trace as consecutive sub-array chunks of [chunk] packets
    (the last one may be shorter) — the batched replay path.  Each chunk
    is a fresh sub-array.
    @raise Invalid_argument if [chunk <= 0]. *)
val iter_chunks : chunk:int -> (Packet.t array -> unit) -> t -> unit

(** The same chunks as a list (empty for an empty trace). *)
val chunks : chunk:int -> t -> Packet.t array list

(** Total bytes on the wire. *)
val total_bytes : t -> int
