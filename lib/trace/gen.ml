(** Trace generation: background traffic + injected attacks.

    Produces a time-sorted packet array from a {!Profile}, a PRNG seed and
    an attack list.  Background flows draw their endpoints from a Zipfian
    popularity distribution over the host pool and their sizes from a
    Pareto distribution — the heavy-tailed mix that makes heavy-hitter /
    sketch experiments behave like real backbone traces. *)

open Newton_packet

(* Background hosts live in 10.0.0.0/16, disjoint from Attack hosts. *)
let background_base = 0x0A000000

type t = {
  packets : Packet.t array;
  profile : Profile.t;
  attacks : Attack.t list;
}

let packets t = t.packets
let length t = Array.length t.packets
let profile t = t.profile
let attacks t = t.attacks

let host_pool profile =
  Array.init profile.Profile.hosts (fun i -> background_base + i + 1)

(* Emit the packets of one background TCP flow. *)
let tcp_flow rng profile ~src ~dst ~sport ~dport ~npkts ~start acc =
  let tcp = Field.Protocol.tcp in
  let dt = ref 0.0 in
  let step () =
    dt := !dt +. Newton_util.Prng.exponential rng 2000.0;
    start +. !dt
  in
  let acc = ref acc in
  let emit p = acc := p :: !acc in
  emit
    (Packet.make ~ts:start ~src_ip:src ~dst_ip:dst ~proto:tcp ~src_port:sport
       ~dst_port:dport ~tcp_flags:Field.Tcp_flag.syn ~pkt_len:60 ());
  emit
    (Packet.make ~ts:(step ()) ~src_ip:dst ~dst_ip:src ~proto:tcp
       ~src_port:dport ~dst_port:sport ~tcp_flags:Field.Tcp_flag.syn_ack
       ~pkt_len:60 ());
  emit
    (Packet.make ~ts:(step ()) ~src_ip:src ~dst_ip:dst ~proto:tcp
       ~src_port:sport ~dst_port:dport ~tcp_flags:Field.Tcp_flag.ack
       ~pkt_len:52 ());
  for _ = 1 to npkts do
    let fwd = Newton_util.Prng.bernoulli rng 0.6 in
    let len = 64 + Newton_util.Prng.int rng 1380 in
    let sip, dip, sp, dp =
      if fwd then (src, dst, sport, dport) else (dst, src, dport, sport)
    in
    emit
      (Packet.make ~ts:(step ()) ~src_ip:sip ~dst_ip:dip ~proto:tcp
         ~src_port:sp ~dst_port:dp ~tcp_flags:Field.Tcp_flag.ack ~pkt_len:len
         ~payload_len:(len - 52) ())
  done;
  if Newton_util.Prng.bernoulli rng profile.Profile.complete_fraction then begin
    emit
      (Packet.make ~ts:(step ()) ~src_ip:src ~dst_ip:dst ~proto:tcp
         ~src_port:sport ~dst_port:dport
         ~tcp_flags:(Field.Tcp_flag.fin lor Field.Tcp_flag.ack) ~pkt_len:52 ());
    emit
      (Packet.make ~ts:(step ()) ~src_ip:dst ~dst_ip:src ~proto:tcp
         ~src_port:dport ~dst_port:sport
         ~tcp_flags:(Field.Tcp_flag.fin lor Field.Tcp_flag.ack) ~pkt_len:52 ())
  end;
  !acc

(* One background UDP flow; DNS flows get a query/response pair, and most
   are followed by a TCP connection to the resolved host (so only orphaned
   DNS — the Q9 injector — looks anomalous). *)
let udp_flow rng profile ~src ~dst ~sport ~npkts ~start ~is_dns acc =
  let udp = Field.Protocol.udp in
  let acc = ref acc in
  let emit p = acc := p :: !acc in
  if is_dns then begin
    emit
      (Packet.make ~ts:start ~src_ip:src ~dst_ip:dst ~proto:udp ~src_port:sport
         ~dst_port:53 ~pkt_len:80 ~payload_len:40 ());
    emit
      (Packet.make ~ts:(start +. 5e-4) ~src_ip:dst ~dst_ip:src ~proto:udp
         ~src_port:53 ~dst_port:sport ~dns_qr:1 ~dns_ancount:1 ~pkt_len:140
         ~payload_len:100 ());
    (* Follow-up TCP connection, as a well-behaved client would make. *)
    emit
      (Packet.make ~ts:(start +. 2e-3) ~src_ip:src
         ~dst_ip:(background_base + 0xF000 + (sport land 0xff)) ~proto:Field.Protocol.tcp
         ~src_port:(sport + 1) ~dst_port:80 ~tcp_flags:Field.Tcp_flag.syn
         ~pkt_len:60 ())
  end
  else begin
    let dt = ref 0.0 in
    for _ = 1 to max 1 npkts do
      dt := !dt +. Newton_util.Prng.exponential rng 1000.0;
      let len = 64 + Newton_util.Prng.int rng 1200 in
      emit
        (Packet.make ~ts:(start +. !dt) ~src_ip:src ~dst_ip:dst ~proto:udp
           ~src_port:sport ~dst_port:(1024 + Newton_util.Prng.int rng 8000)
           ~pkt_len:len ~payload_len:(len - 28) ())
    done
  end;
  ignore profile;
  !acc

(* Bursty flow-arrival sampler: the duration splits into epochs whose
   weights skew with [burstiness]; a flow picks an epoch by weight and a
   uniform offset inside it.  burstiness = 0 degenerates to uniform. *)
let start_sampler rng (profile : Profile.t) =
  if profile.Profile.burstiness <= 0.0 then
    fun () -> Newton_util.Prng.float_range rng profile.Profile.duration
  else begin
    let epochs = 10 in
    (* Zipf-skewed epoch weights (rank shuffled per seed), mixed with a
       uniform floor: burstiness b puts weight (1-b) on the floor and b
       on the skew, so b = 0.9 concentrates ~40% of arrivals in the
       hottest epoch. *)
    let ranks = Array.init epochs (fun i -> i + 1) in
    Newton_util.Prng.shuffle rng ranks;
    let weights =
      Array.init epochs (fun i ->
          (1.0 -. profile.Profile.burstiness)
          +. (profile.Profile.burstiness
             *. (1.0 /. (float_of_int ranks.(i) ** 2.0))))
    in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make epochs 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i w ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      weights;
    let epoch_len = profile.Profile.duration /. float_of_int epochs in
    fun () ->
      let u = Newton_util.Prng.float rng in
      let rec pick i = if i >= epochs - 1 || cdf.(i) >= u then i else pick (i + 1) in
      let e = pick 0 in
      (float_of_int e *. epoch_len) +. Newton_util.Prng.float_range rng epoch_len
  end

(** Generate a trace. [seed] makes generation deterministic; the same
    (profile, seed, attacks) triple always yields the identical trace, so
    different monitoring systems can be replayed over equal inputs. *)
let generate ?(attacks = []) ~seed (profile : Profile.t) =
  let rng = Newton_util.Prng.of_int seed in
  let hosts = host_pool profile in
  let zipf = Newton_util.Zipf.create ~n:profile.hosts ~exponent:profile.zipf_exponent in
  let sample_start = start_sampler rng profile in
  let acc = ref [] in
  for _ = 1 to profile.flows do
    let src = hosts.(Newton_util.Zipf.sample zipf rng - 1) in
    let dst = hosts.(Newton_util.Zipf.sample zipf rng - 1) in
    let dst = if dst = src then hosts.((src - background_base) mod profile.hosts) else dst in
    let sport = 1024 + Newton_util.Prng.int rng 60000 in
    let start = sample_start () in
    let npkts =
      int_of_float
        (Newton_util.Prng.pareto rng ~alpha:profile.pareto_alpha
           ~xm:(profile.mean_flow_pkts *. (profile.pareto_alpha -. 1.0) /. profile.pareto_alpha))
      |> max 1 |> min 4096
    in
    if Newton_util.Prng.bernoulli rng profile.tcp_fraction then
      let dport = Newton_util.Prng.choice rng [| 80; 443; 443; 8080; 22; 25 |] in
      acc := tcp_flow rng profile ~src ~dst ~sport ~dport ~npkts ~start !acc
    else
      let is_dns = Newton_util.Prng.bernoulli rng profile.dns_fraction in
      acc := udp_flow rng profile ~src ~dst ~sport ~npkts ~start ~is_dns !acc
  done;
  List.iter
    (fun a -> acc := List.rev_append (Attack.generate rng ~duration:profile.duration a) !acc)
    attacks;
  let packets = Array.of_list !acc in
  Array.sort (fun a b -> Float.compare (Packet.ts a) (Packet.ts b)) packets;
  { packets; profile; attacks }

(** Wrap a raw packet array (e.g. one loaded from disk) as a trace.
    Packets must already be time-sorted; the profile records only the
    given name. *)
let of_packets ~name packets =
  {
    packets;
    profile = { Profile.caida_like with Profile.name; flows = 0 };
    attacks = [];
  }

let iter f t = Array.iter f t.packets
let fold f init t = Array.fold_left f init t.packets

(** Batched replay: visit consecutive chunks of [chunk] packets (the
    last may be shorter). *)
let iter_chunks ~chunk f t =
  if chunk <= 0 then invalid_arg "Gen.iter_chunks: chunk must be positive";
  let n = Array.length t.packets in
  let i = ref 0 in
  while !i < n do
    let len = min chunk (n - !i) in
    f (Array.sub t.packets !i len);
    i := !i + len
  done

let chunks ~chunk t =
  let acc = ref [] in
  iter_chunks ~chunk (fun c -> acc := c :: !acc) t;
  List.rev !acc

(** Total bytes on the wire, for bandwidth-overhead ratios. *)
let total_bytes t =
  Array.fold_left (fun acc p -> acc + Packet.get p Field.Pkt_len) 0 t.packets
