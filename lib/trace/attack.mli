(** Attack traffic injectors: one per detection intent of the paper's
    Table 2 queries, so every query has ground-truth positives. *)

open Newton_packet

type t =
  | Syn_flood of { victim : int; attackers : int; syns_per_attacker : int }
  | Port_scan of { scanner : int; victim : int; ports : int }
  | Super_spreader of { source : int; fanout : int }
  | Udp_ddos of { victim : int; attackers : int; pkts_per_attacker : int }
  | Ssh_brute of { victim : int; attackers : int; attempts_each : int }
  | Slowloris of { victim : int; conns : int }
  | Dns_orphan of { resolver : int; victims : int }
  | Icmp_flood of { victim : int; attackers : int; pkts_per_attacker : int }
  | Reflection of { victim : int; reflectors : int; pkts_each : int }
  | Amplification of { victim : int; reflectors : int; pkts_each : int; port : int }
  | Icmp6_scan of { scanner : int; fanout : int }
  | Tunnel_exfil of { src : int; dst : int; tun_id : int; pkts : int }

(** The IP a correct detector should report. *)
val reported_host : t -> int

val to_string : t -> string

(** Attack infrastructure addresses live in 10.200.0.0/16, disjoint
    from background hosts. *)
val host_of : int -> int

(** Generate the attack's packets with timestamps uniform over
    [0, duration); unsorted (the trace builder sorts globally). *)
val generate : Newton_util.Prng.t -> duration:float -> t -> Packet.t list

(** One of each attack, sized so every catalog query has clear
    positives in each 100 ms window of a 1-second trace. *)
val default_suite : t list

(** The IPv6/ICMPv6/tunnel attacks behind extension queries Q15–Q17
    (NTP + SSDP amplification, ICMPv6 sweep, tunneled exfiltration).
    Kept separate so {!default_suite} traces stay byte-stable. *)
val extras_suite : t list

(** {!default_suite} plus {!extras_suite}. *)
val extended_suite : t list
