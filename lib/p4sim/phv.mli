(** Wire-packet synthesis: lower a simulator {!Newton_packet.Packet}
    to a canonical byte string whose parse + normalization under the
    emitted program recovers exactly the original canonical fields.
    Field vectors with no parseable encoding (e.g. TCP fields on a GRE
    packet) return a typed [Error] so the differential harness can skip
    them on both sides. *)

(** Why a field vector has no canonical wire encoding. *)
type error =
  | Bad_ip_version of int
  | Tunnel_over_ipv6
  | Stray_l4_fields of { proto : int; fields : string list }
  | Dns_without_port_53
  | Dns_inside_tunnel
  | Unsolvable_overhead of { proto : int; pkt_len : int; payload_len : int }
  | Field_overflow of { field : string; value : int; limit : int }

val error_to_string : error -> string

(** Ethernet-frame bytes for the packet's field vector (MACs and
    checksums zeroed; tunnels use VXLAN).  The ingress port is switch
    metadata, not bytes — pass it to {!Interp.run} separately. *)
val synthesize : Newton_packet.Packet.t -> (string, error) result
