(** Differential harness: replay the same trace through the simulator
    engine and the interpreted P4 pipeline and compare report
    multisets — the ground truth that emission + rule generation
    preserve engine semantics. *)

type outcome = {
  query_id : int;
  total : int;  (** packets offered *)
  replayed : int;  (** packets run on both targets *)
  skipped : int;  (** packets with no wire encoding *)
  skip_reasons : (string * int) list;  (** {!Phv.error} text -> count *)
  engine_reports : Newton_query.Report.t list;
  p4_reports : Newton_query.Report.t list;
}

(** Report multisets identical? *)
val matched : outcome -> bool

(** First report present on exactly one side (sorted order), if any. *)
val first_disagreement :
  outcome ->
  [ `Engine_only of Newton_query.Report.t
  | `P4_only of Newton_query.Report.t ]
  option

val report_to_string : Newton_query.Report.t -> string

(** One-line human summary (coverage, report counts, first divergence). *)
val describe : outcome -> string

(** Compile [query], install it on a fresh engine and a fresh
    interpreter over the emitted program, replay [packets] (timestamp
    order) through both, and collect reports.  Packets with no wire
    encoding are skipped on both sides and counted.  [Error] when the
    query has no rule encoding. *)
val run_query :
  ?class_id:int ->
  ?layout:Newton_p4gen.Emit.layout ->
  Newton_query.Ast.t ->
  Newton_packet.Packet.t list ->
  (outcome, Newton_p4gen.Rules.issue) Stdlib.result
