(** Wire-packet synthesis: invert the emitted program's parser and
    normalization prologue on a simulator {!Newton_packet.Packet}.

    The engine consumes canonical field vectors; the P4 pipeline
    consumes bytes.  To differentially test them on the *same* traffic,
    each simulator packet is lowered to a byte string such that parsing
    and normalizing it recovers exactly the original field vector.  The
    encoding is canonical (zero MACs/checksums, single-option-free
    headers, VXLAN for every tunnel) — the differential only needs the
    canonical-field round trip, not byte-level realism.

    Not every field vector is a parseable packet (the simulator can set
    e.g. TCP fields on a GRE packet); those come back as a typed
    [Error], and the harness skips them on both sides so the comparison
    stays apples-to-apples. *)

open Newton_packet

(** Why a field vector has no canonical wire encoding. *)
type error =
  | Bad_ip_version of int
  | Tunnel_over_ipv6
  | Stray_l4_fields of { proto : int; fields : string list }
  | Dns_without_port_53
  | Dns_inside_tunnel
  | Unsolvable_overhead of { proto : int; pkt_len : int; payload_len : int }
  | Field_overflow of { field : string; value : int; limit : int }

let error_to_string = function
  | Bad_ip_version v -> Printf.sprintf "unencodable IP version %d" v
  | Tunnel_over_ipv6 -> "tunneled IPv6 has no canonical encapsulation"
  | Stray_l4_fields { proto; fields } ->
      Printf.sprintf "protocol %d cannot carry fields: %s" proto
        (String.concat ", " fields)
  | Dns_without_port_53 -> "DNS fields require src or dst port 53"
  | Dns_inside_tunnel -> "no inner-DNS parse path"
  | Unsolvable_overhead { proto; pkt_len; payload_len } ->
      Printf.sprintf
        "no header-length solution for proto %d with pkt_len %d payload_len %d"
        proto pkt_len payload_len
  | Field_overflow { field; value; limit } ->
      Printf.sprintf "%s = %d exceeds wire limit %d" field value limit

(* ---------------- bit-level writer ---------------- *)

(* Headers are packed MSB-first, mirroring {!Interp}'s extraction. *)
type writer = { buf : Buffer.t; mutable acc : int; mutable nbits : int }

let writer () = { buf = Buffer.create 64; acc = 0; nbits = 0 }

let put w width value =
  (* feed bits MSB-first, flushing whole bytes *)
  for i = width - 1 downto 0 do
    w.acc <- (w.acc lsl 1) lor ((value lsr i) land 1);
    w.nbits <- w.nbits + 1;
    if w.nbits = 8 then begin
      Buffer.add_char w.buf (Char.chr w.acc);
      w.acc <- 0;
      w.nbits <- 0
    end
  done

let contents w =
  assert (w.nbits = 0);
  Buffer.contents w.buf

(* ---------------- header encoders ---------------- *)

let put_ethernet w ether_type =
  put w 48 0; put w 48 0; put w 16 ether_type

let put_ipv4 w ~ihl ~total_len ~ttl ~proto ~src ~dst =
  put w 4 4; put w 4 ihl; put w 8 0;
  put w 16 total_len; put w 16 0; put w 3 0; put w 13 0;
  put w 8 ttl; put w 8 proto; put w 16 0;
  put w 32 src; put w 32 dst

let put_ipv6 w ~payload_len ~next_hdr ~hop ~src ~dst =
  put w 4 6; put w 8 0; put w 20 0;
  put w 16 payload_len; put w 8 next_hdr; put w 8 hop;
  (* the normalizer XOR-folds the four words; word 0 carries the fold *)
  put w 32 src; put w 32 0; put w 32 0; put w 32 0;
  put w 32 dst; put w 32 0; put w 32 0; put w 32 0

let put_tcp w ~sport ~dport ~seq ~ack ~doff ~flags =
  put w 16 sport; put w 16 dport; put w 32 seq; put w 32 ack;
  put w 4 doff; put w 4 0; put w 8 flags;
  put w 16 0; put w 16 0; put w 16 0

let put_udp w ~sport ~dport ~len =
  put w 16 sport; put w 16 dport; put w 16 len; put w 16 0

let put_icmp w ~type_ ~code =
  put w 8 type_; put w 8 code; put w 16 0

let put_dns w ~qr ~ancount =
  put w 16 0; put w 1 qr; put w 15 0; put w 16 0; put w 16 ancount

let put_vxlan w ~vni =
  put w 8 0x08; put w 24 0; put w 24 vni; put w 8 0

(* ---------------- synthesis ---------------- *)

let proto_icmp = Field.Protocol.icmp
let proto_tcp = Field.Protocol.tcp
let proto_udp = Field.Protocol.udp
let proto_icmpv6 = Field.Protocol.icmpv6

(* Split pkt_len - payload_len into 4*ihl + 4*doff with both nibbles in
   [5, 15]; prefers the minimal IHL, mirroring real stacks. *)
let solve_ihl_doff ~proto ~pkt_len ~payload_len =
  let overhead = pkt_len - payload_len in
  if overhead < 0 || overhead mod 4 <> 0 then
    Error (Unsolvable_overhead { proto; pkt_len; payload_len })
  else
    let words = overhead / 4 in
    if words >= 10 && words <= 20 then Ok (5, words - 5)
    else if words > 20 && words <= 30 then Ok (words - 15, 15)
    else Error (Unsolvable_overhead { proto; pkt_len; payload_len })

let solve_ihl ~extra ~proto ~pkt_len ~payload_len =
  (* pkt_len = 4*ihl + extra + payload_len *)
  let overhead = pkt_len - payload_len - extra in
  if overhead >= 20 && overhead <= 60 && overhead mod 4 = 0 then
    Ok (overhead / 4)
  else Error (Unsolvable_overhead { proto; pkt_len; payload_len })

let ( let* ) = Result.bind

let check_zero pkt proto fields =
  let stray =
    List.filter_map
      (fun f -> if Packet.get pkt f <> 0 then Some (Field.to_string f) else None)
      fields
  in
  if stray = [] then Ok () else Error (Stray_l4_fields { proto; fields = stray })

let check_fit field value limit =
  if value > limit then Error (Field_overflow { field; value; limit }) else Ok ()

let tcp_extras = [ Field.Tcp_flags; Field.Tcp_seq; Field.Tcp_ack ]
let dns_extras = [ Field.Dns_qr; Field.Dns_ancount ]
let icmp_extras = [ Field.Icmp_type; Field.Icmp_code ]
let port_extras = [ Field.Src_port; Field.Dst_port ]

(* Emit the L4 stack (shared between the plain and inner paths).
   [dns_ok] gates the DNS header: no inner-DNS parse state exists.
   Returns the IHL the enclosing IPv4 header must carry (None for v6). *)
let encode_l4 w pkt ~proto ~v6 ~dns_ok =
  let g f = Packet.get pkt f in
  let pkt_len = g Field.Pkt_len and payload_len = g Field.Payload_len in
  let has_dns = g Field.Dns_qr <> 0 || g Field.Dns_ancount <> 0 in
  if proto = proto_tcp then
    let* () = check_zero pkt proto (dns_extras @ icmp_extras) in
    let* ihl, doff =
      if v6 then
        (* v6 normalization: payload = (pkt_len - 40) - 4*doff *)
        let overhead = pkt_len - 40 - payload_len in
        if overhead >= 20 && overhead <= 60 && overhead mod 4 = 0 then
          Ok (None, overhead / 4)
        else Error (Unsolvable_overhead { proto; pkt_len; payload_len })
      else
        let* ihl, doff = solve_ihl_doff ~proto ~pkt_len ~payload_len in
        Ok (Some ihl, doff)
    in
    put_tcp w ~sport:(g Field.Src_port) ~dport:(g Field.Dst_port)
      ~seq:(g Field.Tcp_seq) ~ack:(g Field.Tcp_ack) ~doff
      ~flags:(g Field.Tcp_flags);
    Ok ihl
  else if proto = proto_udp then
    let* () = check_zero pkt proto (tcp_extras @ icmp_extras) in
    let sport = g Field.Src_port and dport = g Field.Dst_port in
    let is_dns_port = sport = 53 || dport = 53 in
    let* () =
      if has_dns && not dns_ok then Error Dns_inside_tunnel
      else if has_dns && not is_dns_port then Error Dns_without_port_53
      else Ok ()
    in
    let* () = check_fit "udp.length" (payload_len + 8) 0xFFFF in
    put_udp w ~sport ~dport ~len:(payload_len + 8);
    if is_dns_port && dns_ok then
      put_dns w ~qr:(g Field.Dns_qr) ~ancount:(g Field.Dns_ancount);
    Ok (if v6 then None else Some 5)
  else if (if v6 then proto = proto_icmpv6 else proto = proto_icmp) then
    let* () = check_zero pkt proto (port_extras @ tcp_extras @ dns_extras) in
    let* ihl =
      if v6 then
        (* v6 normalization pins payload_len = pkt_len - 48: no knob *)
        if payload_len = pkt_len - 48 then Ok None
        else Error (Unsolvable_overhead { proto; pkt_len; payload_len })
      else
        let* ihl = solve_ihl ~extra:8 ~proto ~pkt_len ~payload_len in
        Ok (Some ihl)
    in
    put_icmp w ~type_:(g Field.Icmp_type) ~code:(g Field.Icmp_code);
    Ok ihl
  else
    (* no parseable L4 header: every L4-derived field must be zero *)
    let* () =
      check_zero pkt proto
        (port_extras @ tcp_extras @ dns_extras @ icmp_extras
        @ [ Field.Payload_len ])
    in
    Ok (if v6 then None else Some 5)

let synthesize pkt =
  let g f = Packet.get pkt f in
  let ip_ver = g Field.Ip_ver in
  let tun_id = g Field.Tun_id in
  let proto = g Field.Proto in
  if ip_ver <> 4 && ip_ver <> 6 then Error (Bad_ip_version ip_ver)
  else if tun_id <> 0 && ip_ver = 6 then Error Tunnel_over_ipv6
  else if tun_id <> 0 then begin
    (* canonical VXLAN encapsulation; the inner stack carries the flow *)
    let w = writer () in
    put_ethernet w 0x0800;
    put_ipv4 w ~ihl:5 ~total_len:1300 ~ttl:64 ~proto:proto_udp
      ~src:0x0A000001 ~dst:0x0A000002;
    (* the outer UDP length encodes payload_len for inner protocols
       that carry no L4 header of their own (nothing later overrides it) *)
    let* () = check_fit "udp.length" (g Field.Payload_len + 8) 0xFFFF in
    put_udp w ~sport:4790 ~dport:4789 ~len:(g Field.Payload_len + 8);
    put_vxlan w ~vni:tun_id;
    put_ethernet w 0x0800;
    (* inner IPv4 fields land after a two-pass normalize: reserve the
       header slot, then encode L4 to learn the IHL *)
    let inner = writer () in
    let* ihl = encode_l4 inner pkt ~proto ~v6:false ~dns_ok:false in
    let ihl = Option.value ihl ~default:5 in
    let* () = check_fit "ipv4.total_len" (g Field.Pkt_len) 0xFFFF in
    put_ipv4 w ~ihl ~total_len:(g Field.Pkt_len) ~ttl:(g Field.Ttl) ~proto
      ~src:(g Field.Src_ip) ~dst:(g Field.Dst_ip);
    Buffer.add_string w.buf (contents inner);
    Ok (contents w)
  end
  else if ip_ver = 4 then begin
    let w = writer () in
    put_ethernet w 0x0800;
    let l4 = writer () in
    let* ihl = encode_l4 l4 pkt ~proto ~v6:false ~dns_ok:true in
    let ihl = Option.value ihl ~default:5 in
    let* () = check_fit "ipv4.total_len" (g Field.Pkt_len) 0xFFFF in
    put_ipv4 w ~ihl ~total_len:(g Field.Pkt_len) ~ttl:(g Field.Ttl) ~proto
      ~src:(g Field.Src_ip) ~dst:(g Field.Dst_ip);
    Buffer.add_string w.buf (contents l4);
    Ok (contents w)
  end
  else begin
    let w = writer () in
    put_ethernet w 0x86DD;
    let* () = check_fit "ipv6.payload_len" (g Field.Pkt_len - 40) 0xFFFF in
    if g Field.Pkt_len < 40 then
      Error
        (Unsolvable_overhead
           { proto; pkt_len = g Field.Pkt_len; payload_len = g Field.Payload_len })
    else begin
      put_ipv6 w ~payload_len:(g Field.Pkt_len - 40) ~next_hdr:proto
        ~hop:(g Field.Ttl) ~src:(g Field.Src_ip) ~dst:(g Field.Dst_ip);
      let* _ = encode_l4 w pkt ~proto ~v6:true ~dns_ok:true in
      Ok (contents w)
    end
  end
