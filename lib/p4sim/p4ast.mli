(** Abstract syntax for the P4-16 subset {!Newton_p4gen.Emit} produces.
    Built by {!P4parse}, executed by {!Interp}; anything outside the
    subset is a parse error by design. *)

type binop =
  | Add | Sub
  | Band | Bor | Bxor
  | Shl | Shr
  | Eq | Ne | Lt | Gt | Le | Ge
  | Land | Lor

type expr =
  | Int of int
  | Ref of string list          (** dotted path: [hdr.ipv4.src_addr] *)
  | Cast of int * expr          (** [(bit<N>) e] *)
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr  (** [c ? a : b] *)
  | Is_valid of string list     (** [hdr.x.isValid()] *)
  | Tuple of expr list          (** [{ e, ... }] — extern call arguments *)

type stmt =
  | Decl of { width : int; name : string; init : expr option }
  | Assign of string list * expr
  | If of expr * stmt list * stmt list
  | Call of { path : string list; generic : string option; args : expr list }
      (** any call statement: [tbl.apply()], [newton_state.read(x, i)],
          [hash(...)], [digest<T>(...)], [hdr.sp.setValid()], ... *)

type match_kind = Exact | Ternary | Range

type table = {
  t_name : string;
  t_keys : (expr * match_kind) list;
  t_actions : string list;
  t_size : int option;
  t_default : string;
}

type action = {
  a_name : string;
  a_params : (string * int) list;  (** parameter name, bit width *)
  a_body : stmt list;
}

(** A select-case keyset element. *)
type pat = P_int of int | P_any

type transition =
  | T_accept
  | T_direct of string
  | T_select of expr list * (pat list * string) list

type pstate = {
  ps_name : string;
  ps_extracts : string list list;  (** header paths extracted, in order *)
  ps_transition : transition;
}

type header_type = { h_name : string; h_fields : (string * int) list }

(** A struct field: name, type (either [`Bit width] or a named header
    type), and the @field_list ids annotating it. *)
type struct_field = {
  sf_name : string;
  sf_type : [ `Bit of int | `Named of string ];
  sf_field_lists : int list;
}

type struct_type = { s_name : string; s_fields : struct_field list }

type control = {
  c_name : string;
  c_registers : (string * int) list;  (** register<bit<32>>(N) name *)
  c_actions : action list;
  c_tables : table list;
  c_apply : stmt list;
}

type program = {
  header_types : header_type list;
  structs : struct_type list;
  parser_states : pstate list;
  controls : control list;
}

val find_header_type : program -> string -> header_type option
val find_struct : program -> string -> struct_type option
val find_control : program -> string -> control option
val find_state : program -> string -> pstate option

(** Render a dotted path back to source form. *)
val path_to_string : string list -> string
