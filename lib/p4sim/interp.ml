(** Interpreter for the emitted v1model subset.

    Executes a parsed {!P4ast.program} the way a v1model target would:
    parse the byte string into headers, run the ingress control's apply
    block (tables consult runtime-installed entries; register externs
    hit a word-addressed state file; [digest] collects report records),
    and loop on [recirculate_preserving_field_list] with user metadata
    cleared except the preserved field list.

    The extern semantics mirror the simulator's on purpose — the
    differential harness ({!Diff}) is only meaningful if
    [HashAlgorithm.crc32_custom] is the same seeded vector hash and
    [HashAlgorithm.identity] the same 30-bit packing fold the engine
    uses.  Both delegate to {!Newton_sketch.Hash} / the engine's
    direct-fold definition rather than re-implementing them. *)

open P4ast

exception Runtime_error of string
exception Install_error of string

let rt_fail fmt = Printf.ksprintf (fun m -> raise (Runtime_error m)) fmt
let ins_fail fmt = Printf.ksprintf (fun m -> raise (Install_error m)) fmt

(** Passes a single packet may take through the pipeline; a pending
    bitmap that never drains past this is a rule-generation bug. *)
let max_passes = 32

let mask_of_width w = if w >= 62 then max_int else (1 lsl w) - 1
let m32 = 0xFFFFFFFF

(* ---------------- installed entries ---------------- *)

type emtch =
  | Exact_v of int
  | Tern_v of int * int  (* value, mask *)
  | Range_v of int * int  (* lo, hi inclusive *)

type installed = {
  im : emtch array;  (* aligned with the table's declared keys *)
  iaction : string;
  iparams : (string * int) list;
  iprio : int;
  iseq : int;  (* install order; earlier wins a priority tie *)
}

(* ---------------- the instance ---------------- *)

type t = {
  ingress : control;
  header_insts : (string, string) Hashtbl.t;  (* instance -> header type *)
  header_types : (string, header_type) Hashtbl.t;
  widths : (string, int) Hashtbl.t;  (* dotted path -> declared bit width *)
  preserved : string list;  (* metadata paths in @field_list(1) *)
  registers : (string, int array) Hashtbl.t;
  actions : (string, action) Hashtbl.t;
  tables : (string, table) Hashtbl.t;
  entries : (string, installed list ref) Hashtbl.t;
  mutable seq : int;
  mutable last_passes : int;  (* pipeline passes of the last run packet *)
  states : (string, pstate) Hashtbl.t;
}

let create prog =
  let ingress =
    match List.find_opt (fun c -> c.c_tables <> []) prog.controls with
    | Some c -> c
    | None -> rt_fail "program has no control with tables"
  in
  let header_types = Hashtbl.create 32 in
  List.iter (fun h -> Hashtbl.replace header_types h.h_name h) prog.header_types;
  let header_insts = Hashtbl.create 32 in
  let widths = Hashtbl.create 256 in
  let preserved = ref [] in
  List.iter
    (fun s ->
      (* emission convention: [headers_t] is bound as [hdr], the
         metadata struct as [meta] *)
      let prefix = if s.s_name = "headers_t" then "hdr" else "meta" in
      List.iter
        (fun f ->
          match f.sf_type with
          | `Bit w ->
              let path = prefix ^ "." ^ f.sf_name in
              Hashtbl.replace widths path w;
              if List.mem 1 f.sf_field_lists then preserved := path :: !preserved
          | `Named ty ->
              Hashtbl.replace header_insts f.sf_name ty;
              (match Hashtbl.find_opt header_types ty with
              | Some h ->
                  List.iter
                    (fun (fname, w) ->
                      Hashtbl.replace widths
                        (Printf.sprintf "%s.%s.%s" prefix f.sf_name fname)
                        w)
                    h.h_fields
              | None -> ()))
        s.s_fields)
    prog.structs;
  let registers = Hashtbl.create 4 in
  List.iter
    (fun (name, n) -> Hashtbl.replace registers name (Array.make n 0))
    ingress.c_registers;
  let actions = Hashtbl.create 1024 in
  List.iter (fun a -> Hashtbl.replace actions a.a_name a) ingress.c_actions;
  let tables = Hashtbl.create 256 in
  let entries = Hashtbl.create 256 in
  List.iter
    (fun tbl ->
      Hashtbl.replace tables tbl.t_name tbl;
      Hashtbl.replace entries tbl.t_name (ref []))
    ingress.c_tables;
  let states = Hashtbl.create 32 in
  List.iter (fun st -> Hashtbl.replace states st.ps_name st) prog.parser_states;
  {
    ingress;
    header_insts;
    header_types;
    widths;
    preserved = !preserved;
    registers;
    actions;
    tables;
    entries;
    seq = 0;
    last_passes = 0;
    states;
  }

(* ---------------- rule installation ---------------- *)

let key_name = function
  | Ref path -> path_to_string path
  | e ->
      ins_fail "table key is not a field reference (%s)"
        (match e with Int v -> string_of_int v | _ -> "<expr>")

let param_int table (name, s) =
  match int_of_string_opt s with
  | Some v -> (name, v)
  | None -> ins_fail "table %s: parameter %s=%S is not an integer" table name s

let align_match table key kind (matches : Newton_p4gen.Rules.mtch list) =
  let found =
    List.find_opt
      (function
        | Newton_p4gen.Rules.M_exact (f, _)
        | M_ternary (f, _, _)
        | M_range (f, _, _) -> f = key)
      matches
  in
  match kind, found with
  | Exact, Some (M_exact (_, v)) -> Exact_v v
  | Exact, Some _ -> ins_fail "table %s: key %s needs an exact match" table key
  | Exact, None -> ins_fail "table %s: no match given for exact key %s" table key
  | Ternary, Some (M_ternary (_, v, m)) -> Tern_v (v, m)
  | Ternary, Some (M_exact (_, v)) -> Tern_v (v, m32)
  | Ternary, Some _ -> ins_fail "table %s: key %s needs a ternary match" table key
  | Ternary, None -> Tern_v (0, 0)  (* unconstrained *)
  | Range, Some (M_range (_, lo, hi)) -> Range_v (lo, hi)
  | Range, Some (M_exact (_, v)) -> Range_v (v, v)
  | Range, Some _ -> ins_fail "table %s: key %s needs a range match" table key
  | Range, None -> Range_v (0, max_int)  (* unconstrained *)

let install t (rules : Newton_p4gen.Rules.entry list) =
  List.iter
    (fun (e : Newton_p4gen.Rules.entry) ->
      match Hashtbl.find_opt t.tables e.table with
      | None -> ins_fail "no such table: %s" e.table
      | Some tbl ->
          if not (List.mem e.action tbl.t_actions) then
            ins_fail "table %s has no action %s" e.table e.action;
          let im =
            Array.of_list
              (List.map
                 (fun (kexpr, kind) ->
                   align_match e.table (key_name kexpr) kind e.matches)
                 tbl.t_keys)
          in
          let inst =
            {
              im;
              iaction = e.action;
              iparams = List.map (param_int e.table) e.params;
              iprio = e.priority;
              iseq = t.seq;
            }
          in
          t.seq <- t.seq + 1;
          let cell = Hashtbl.find t.entries e.table in
          cell := inst :: !cell)
    rules

let clear_entries t =
  Hashtbl.iter (fun _ cell -> cell := []) t.entries;
  t.seq <- 0

let clear_state t =
  Hashtbl.iter (fun _ arr -> Array.fill arr 0 (Array.length arr) 0) t.registers

(* ---------------- per-pass environment ---------------- *)

type env = {
  vals : (string, int) Hashtbl.t;
  valid : (string, bool) Hashtbl.t;
  mutable locals : (string, int ref * int) Hashtbl.t;
  mutable digests : int array list;  (* reversed *)
  mutable recirc : bool;
}

let fresh_env () =
  {
    vals = Hashtbl.create 512;
    valid = Hashtbl.create 32;
    locals = Hashtbl.create 8;
    digests = [];
    recirc = false;
  }

let get_val env path =
  Option.value (Hashtbl.find_opt env.vals path) ~default:0

let set_path t env path v =
  match path with
  | [ name ] when Hashtbl.mem env.locals name ->
      let cell, w = Hashtbl.find env.locals name in
      cell := v land mask_of_width w
  | _ ->
      let key = path_to_string path in
      let w =
        Option.value (Hashtbl.find_opt t.widths key) ~default:62
      in
      Hashtbl.replace env.vals key (v land mask_of_width w)

(* ---------------- expression evaluation ---------------- *)

let bool_int b = if b then 1 else 0

let rec eval t env = function
  | Int v -> v
  | Ref [ name ] when Hashtbl.mem env.locals name ->
      !(fst (Hashtbl.find env.locals name))
  | Ref path -> get_val env (path_to_string path)
  | Cast (w, e) -> eval t env e land mask_of_width w
  | Is_valid path -> (
      match path with
      | _ :: inst :: _ ->
          bool_int (Option.value (Hashtbl.find_opt env.valid inst) ~default:false)
      | _ -> 0)
  | Cond (c, a, b) -> if eval t env c <> 0 then eval t env a else eval t env b
  | Tuple _ -> rt_fail "tuple outside an extern argument position"
  | Binop (op, a, b) ->
      let x = eval t env a in
      let y = eval t env b in
      (* all emitted arithmetic is bit<32>: wrap there *)
      (match op with
      | Add -> (x + y) land m32
      | Sub -> (x - y) land m32
      | Shl -> (x lsl y) land m32
      | Shr -> x lsr y
      | Band -> x land y
      | Bor -> x lor y
      | Bxor -> x lxor y
      | Eq -> bool_int (x = y)
      | Ne -> bool_int (x <> y)
      | Lt -> bool_int (x < y)
      | Gt -> bool_int (x > y)
      | Le -> bool_int (x <= y)
      | Ge -> bool_int (x >= y)
      | Land -> bool_int (x <> 0 && y <> 0)
      | Lor -> bool_int (x <> 0 || y <> 0))

(* ---------------- hash externs ---------------- *)

(* Decode the key-descriptor convention: 12 x 5-bit codes, code 0
   terminates, code c selects tuple element c (= field index c-1's key
   copy, which rides at tuple position 1 + (c-1)). *)
let described_keys desc (tuple : int array) =
  let rec go pos acc =
    if pos >= Newton_p4gen.Emit.desc_positions then List.rev acc
    else
      let code = (desc lsr (5 * pos)) land 0x1F in
      if code = 0 then List.rev acc
      else if code >= Array.length tuple then
        rt_fail "hash descriptor code %d outside tuple" code
      else go (pos + 1) (tuple.(code) :: acc)
  in
  Array.of_list (go 0 [])

(* The engine's direct (packing) mode, bit for bit. *)
let direct_value keys =
  match Array.length keys with
  | 0 -> 0
  | 1 -> keys.(0)
  | _ ->
      Array.fold_left
        (fun acc v -> ((acc lsl 16) lxor v) land 0x3FFFFFFF)
        0 keys

let exec_hash t env args =
  match args with
  | [ Ref dst; Ref algo; seed_e; Tuple input; range_e ] ->
      let tuple = Array.of_list (List.map (eval t env) input) in
      if Array.length tuple = 0 then rt_fail "empty hash input tuple";
      let keys = described_keys tuple.(0) tuple in
      let value =
        match List.rev algo with
        | "crc32_custom" :: _ ->
            let seed = eval t env seed_e in
            let range = eval t env range_e in
            let h = Newton_sketch.Hash.hash_vector ~seed keys in
            if range > 0 then h mod range else h
        | "identity" :: _ -> direct_value keys
        | a :: _ -> rt_fail "unknown hash algorithm %s" a
        | [] -> rt_fail "hash call without an algorithm"
      in
      set_path t env dst value
  | _ -> rt_fail "malformed hash() call"

(* ---------------- statements / actions / tables ---------------- *)

let match_hits keys im =
  let n = Array.length keys in
  Array.length im = n
  && (let ok = ref true in
      for i = 0 to n - 1 do
        (match im.(i) with
        | Exact_v v -> if keys.(i) <> v then ok := false
        | Tern_v (v, m) -> if keys.(i) land m <> v then ok := false
        | Range_v (lo, hi) -> if keys.(i) < lo || keys.(i) > hi then ok := false)
      done;
      !ok)

let lookup t env tbl =
  let keys = Array.of_list (List.map (fun (e, _) -> eval t env e) tbl.t_keys) in
  let candidates =
    List.filter (fun e -> match_hits keys e.im)
      !(Hashtbl.find t.entries tbl.t_name)
  in
  List.fold_left
    (fun best e ->
      match best with
      | None -> Some e
      | Some b ->
          if e.iprio > b.iprio || (e.iprio = b.iprio && e.iseq < b.iseq) then
            Some e
          else best)
    None candidates

let rec exec_stmt t env = function
  | Decl { width; name; init } ->
      let v = match init with Some e -> eval t env e | None -> 0 in
      Hashtbl.replace env.locals name (ref (v land mask_of_width width), width)
  | Assign (path, e) -> set_path t env path (eval t env e)
  | If (c, then_, else_) ->
      exec_stmts t env (if eval t env c <> 0 then then_ else else_)
  | Call { path; generic; args } -> (
      match path, generic with
      | [ "hash" ], _ -> exec_hash t env args
      | [ "digest" ], Some _ -> (
          match args with
          | [ _receiver; Tuple fields ] ->
              env.digests <-
                Array.of_list (List.map (eval t env) fields) :: env.digests
          | _ -> rt_fail "malformed digest() call")
      | [ "recirculate_preserving_field_list" ], _ -> env.recirc <- true
      | [ "NoAction" ], _ | [ "mark_to_drop" ], _ -> ()
      | [ reg; "read" ], _ when Hashtbl.mem t.registers reg -> (
          match args with
          | [ Ref dst; idx_e ] ->
              let arr = Hashtbl.find t.registers reg in
              let idx = eval t env idx_e in
              if idx < 0 || idx >= Array.length arr then
                rt_fail "%s.read: index %d outside %d words" reg idx
                  (Array.length arr);
              set_path t env dst arr.(idx)
          | _ -> rt_fail "malformed %s.read call" reg)
      | [ reg; "write" ], _ when Hashtbl.mem t.registers reg -> (
          match args with
          | [ idx_e; val_e ] ->
              let arr = Hashtbl.find t.registers reg in
              let idx = eval t env idx_e in
              if idx < 0 || idx >= Array.length arr then
                rt_fail "%s.write: index %d outside %d words" reg idx
                  (Array.length arr);
              arr.(idx) <- eval t env val_e land m32
          | _ -> rt_fail "malformed %s.write call" reg)
      | [ tname; "apply" ], _ when Hashtbl.mem t.tables tname ->
          apply_table t env (Hashtbl.find t.tables tname)
      | _ :: rest, _ when List.mem "setValid" rest || List.mem "setInvalid" rest
        -> (
          match path with
          | _ :: inst :: _ ->
              Hashtbl.replace env.valid inst (List.mem "setValid" rest)
          | _ -> ())
      | _ -> rt_fail "unknown call %s" (path_to_string path))

and exec_stmts t env stmts = List.iter (exec_stmt t env) stmts

and run_action t env name params =
  if name = "NoAction" then ()
  else
    match Hashtbl.find_opt t.actions name with
    | None -> rt_fail "unknown action %s" name
    | Some a ->
        let saved = env.locals in
        env.locals <- Hashtbl.create 8;
        List.iter
          (fun (pname, w) ->
            let v =
              match List.assoc_opt pname params with
              | Some v -> v
              | None -> rt_fail "action %s: missing parameter %s" name pname
            in
            Hashtbl.replace env.locals pname (ref (v land mask_of_width w), w))
          a.a_params;
        exec_stmts t env a.a_body;
        env.locals <- saved

and apply_table t env tbl =
  match lookup t env tbl with
  | Some e -> run_action t env e.iaction e.iparams
  | None -> run_action t env tbl.t_default []

(* ---------------- parser execution ---------------- *)

(* MSB-first bit cursor over the synthesized bytes. *)
let read_bits bytes pos n =
  let v = ref 0 in
  for _ = 1 to n do
    let byte = Char.code bytes.[!pos lsr 3] in
    let bit = (byte lsr (7 - (!pos land 7))) land 1 in
    v := (!v lsl 1) lor bit;
    incr pos
  done;
  !v

let pat_matches pats keys =
  List.for_all2
    (fun p k -> match p with P_any -> true | P_int v -> v = k)
    pats keys

let parse_packet t env bytes =
  let bitlen = 8 * String.length bytes in
  let pos = ref 0 in
  let rec go name =
    match Hashtbl.find_opt t.states name with
    | None -> ()  (* accept *)
    | Some st ->
        let short = ref false in
        List.iter
          (fun hdr_path ->
            if not !short then
              match hdr_path with
              | [ _; inst ] -> (
                  match
                    Option.bind
                      (Hashtbl.find_opt t.header_insts inst)
                      (Hashtbl.find_opt t.header_types)
                  with
                  | None -> rt_fail "extract of unknown header %s" inst
                  | Some ht ->
                      let total =
                        List.fold_left (fun a (_, w) -> a + w) 0 ht.h_fields
                      in
                      if !pos + total > bitlen then
                        (* truncated packet: stop parsing, leave invalid *)
                        short := true
                      else begin
                        List.iter
                          (fun (fname, w) ->
                            Hashtbl.replace env.vals
                              (Printf.sprintf "hdr.%s.%s" inst fname)
                              (read_bits bytes pos w))
                          ht.h_fields;
                        Hashtbl.replace env.valid inst true
                      end)
              | p -> rt_fail "unsupported extract target %s" (path_to_string p))
          st.ps_extracts;
        if not !short then
          match st.ps_transition with
          | T_accept -> ()
          | T_direct next -> go next
          | T_select (keys, cases) -> (
              let kv = List.map (eval t env) keys in
              match
                List.find_opt (fun (pats, _) -> pat_matches pats kv) cases
              with
              | Some (_, target) -> if target <> "accept" then go target
              | None -> ())
  in
  go "start"

(* ---------------- packet execution ---------------- *)

(** Run one packet (as synthesized bytes) through the pipeline,
    following recirculations; returns the digest records emitted, in
    order.  Each digest is the evaluated field tuple of the emitted
    [newton_report_t]. *)
let run t ?(ingress_port = 0) bytes =
  let digests = ref [] in
  let preserved = ref [] in
  let passes = ref 0 in
  let continue = ref true in
  while !continue do
    if !passes >= max_passes then
      rt_fail "recirculation did not converge after %d passes" max_passes;
    let env = fresh_env () in
    Hashtbl.replace env.vals "std_meta.ingress_port" ingress_port;
    (* v1model: 0 = normal, 4 = recirculated instance *)
    Hashtbl.replace env.vals "std_meta.instance_type"
      (if !passes = 0 then 0 else 4);
    List.iter (fun (p, v) -> Hashtbl.replace env.vals p v) !preserved;
    parse_packet t env bytes;
    exec_stmts t env t.ingress.c_apply;
    digests := List.rev_append env.digests !digests;
    if env.recirc then
      preserved := List.map (fun p -> (p, get_val env p)) t.preserved
    else continue := false;
    incr passes
  done;
  t.last_passes <- !passes;
  List.rev !digests

(** Pipeline passes (1 + recirculations) the most recent {!run} packet
    took; 0 before any run. *)
let last_passes t = t.last_passes

let register_words t =
  Hashtbl.fold (fun _ arr acc -> acc + Array.length arr) t.registers 0
