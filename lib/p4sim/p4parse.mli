(** Lexer + recursive-descent parser for the P4 subset {!Newton_p4gen.Emit}
    writes.  Unknown syntax is emission drift and raises {!Parse_error}. *)

exception Parse_error of { line : int; msg : string }

(** Parse a complete emitted program.
    @raise Parse_error on anything outside the emitted subset. *)
val parse : string -> P4ast.program
