(** The pinned differential corpus: a mixed v4/v6/ICMPv6/VXLAN-tunnel
    trace on which every catalog query Q1-Q17 produces at least one
    report, so a differential run exercises every emitted table family
    and both recirculation and Pair-combine digest paths.

    The stock attack suites leave Q12/Q13/Q14 silent — neither injects
    an ICMP flood, a SYN-ACK reflection, or port-53 amplified volume —
    so this corpus appends those three scenarios on top of the
    extended (IPv6/tunnel) suite.  Keep the recipe stable: tests and
    the CI differential leg pin their expectations to it. *)

open Newton_trace

let coverage_attacks =
  Attack.extended_suite
  @ [
      Attack.Icmp_flood
        { victim = Attack.host_of 20; attackers = 30; pkts_per_attacker = 30 };
      Attack.Amplification
        { victim = Attack.host_of 22; reflectors = 20; pkts_each = 10; port = 53 };
      Attack.Amplification
        { victim = Attack.host_of 22; reflectors = 20; pkts_each = 10; port = 53 };
      Attack.Reflection
        { victim = Attack.host_of 21; reflectors = 60; pkts_each = 10 };
      (* volume for Q10 (byte heavy hitters, >500 KB/window to one
         host): 6000 amplified 1028-byte responses toward one victim *)
      Attack.Amplification
        { victim = Attack.host_of 23; reflectors = 60; pkts_each = 100;
          port = 123 };
    ]

let coverage_packets ?(seed = 7) ?(scale = 0.15) () =
  let trace =
    Gen.generate ~attacks:coverage_attacks ~seed
      (Profile.scale Profile.caida_like scale)
  in
  Array.to_list (Gen.packets trace)
