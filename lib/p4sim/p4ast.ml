(** Abstract syntax for the P4-16 subset {!Newton_p4gen.Emit} produces.

    This is deliberately not a general P4 front-end: it covers exactly
    the constructs found in an emitted [newton.p4] — bit<N> types,
    header/struct declarations, a parser with select transitions,
    match-action tables with exact/ternary/range keys, register
    read/write, the v1model [hash]/[digest]/[recirculate] externs, and
    straight-line action bodies with conditionals.  {!P4parse} builds
    it; {!Interp} executes it.  Anything outside the subset is a parse
    error, which is the point: the differential harness should fail
    loudly the moment emission drifts out of the modelled language. *)

type binop =
  | Add | Sub
  | Band | Bor | Bxor
  | Shl | Shr
  | Eq | Ne | Lt | Gt | Le | Ge
  | Land | Lor

type expr =
  | Int of int
  | Ref of string list          (** dotted path: [hdr.ipv4.src_addr] *)
  | Cast of int * expr          (** [(bit<N>) e] *)
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr  (** [c ? a : b] *)
  | Is_valid of string list     (** [hdr.x.isValid()] *)
  | Tuple of expr list          (** [{ e, ... }] — extern call arguments *)

type stmt =
  | Decl of { width : int; name : string; init : expr option }
  | Assign of string list * expr
  | If of expr * stmt list * stmt list
  | Call of { path : string list; generic : string option; args : expr list }
      (** any call statement: [tbl.apply()], [newton_state.read(x, i)],
          [hash(...)], [digest<T>(...)], [hdr.sp.setValid()], ... *)

type match_kind = Exact | Ternary | Range

type table = {
  t_name : string;
  t_keys : (expr * match_kind) list;
  t_actions : string list;
  t_size : int option;
  t_default : string;
}

type action = {
  a_name : string;
  a_params : (string * int) list;  (** parameter name, bit width *)
  a_body : stmt list;
}

(** A select-case keyset element. *)
type pat = P_int of int | P_any

type transition =
  | T_accept
  | T_direct of string
  | T_select of expr list * (pat list * string) list

type pstate = {
  ps_name : string;
  ps_extracts : string list list;  (** header paths extracted, in order *)
  ps_transition : transition;
}

type header_type = { h_name : string; h_fields : (string * int) list }

(** A struct field: name, type (either [`Bit width] or a named header
    type), and the @field_list ids annotating it. *)
type struct_field = {
  sf_name : string;
  sf_type : [ `Bit of int | `Named of string ];
  sf_field_lists : int list;
}

type struct_type = { s_name : string; s_fields : struct_field list }

type control = {
  c_name : string;
  c_registers : (string * int) list;  (** register<bit<32>>(N) name *)
  c_actions : action list;
  c_tables : table list;
  c_apply : stmt list;
}

type program = {
  header_types : header_type list;
  structs : struct_type list;
  parser_states : pstate list;
  controls : control list;
}

(* ---------------- lookups ---------------- *)

let find_header_type p name =
  List.find_opt (fun h -> h.h_name = name) p.header_types

let find_struct p name = List.find_opt (fun s -> s.s_name = name) p.structs

let find_control p name = List.find_opt (fun c -> c.c_name = name) p.controls

let find_state p name =
  List.find_opt (fun s -> s.ps_name = name) p.parser_states

(** Render a dotted path back to source form (diagnostics, table-key
    naming). *)
let path_to_string path = String.concat "." path
