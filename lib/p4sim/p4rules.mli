(** Wire-format loader: the exact inverse of
    {!Newton_p4gen.Rules.to_json}. *)

exception Bad_document of string

(** Parse a rule document (JSON array of entries).
    @raise Bad_document on malformed JSON or missing members. *)
val of_json : string -> Newton_p4gen.Rules.entry list
