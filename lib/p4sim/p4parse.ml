(** Lexer + recursive-descent parser for the emitted P4 subset.

    The grammar is exactly what {!Newton_p4gen.Emit} writes: header and
    struct declarations, one parser with select transitions, controls
    holding register/action/table declarations plus an [apply] block,
    and a trailing package instantiation (skipped).  Unknown syntax
    raises {!Parse_error} with position context — the differential
    harness treats that as emission drift, not something to recover
    from. *)

open P4ast

exception Parse_error of { line : int; msg : string }

let fail line fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

(* ---------------- lexer ---------------- *)

type token =
  | Tident of string
  | Tint of int
  | Tsym of string  (* punctuation / operators, possibly two-char *)

type lexed = { tok : token; tline : int }

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = out := { tok; tline = !line } :: !out in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (incr line; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      (* preprocessor include: skip to end of line *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      while !i + 1 < n && not (src.[!i] = '*' && src.[!i + 1] = '/') do
        if src.[!i] = '\n' then incr line;
        incr i
      done;
      i := min n (!i + 2)
    end
    else if is_digit c then begin
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X')
      then begin
        let start = !i in
        i := !i + 2;
        while
          !i < n
          && (is_digit src.[!i]
             || (src.[!i] >= 'a' && src.[!i] <= 'f')
             || (src.[!i] >= 'A' && src.[!i] <= 'F'))
        do incr i done;
        push (Tint (int_of_string (String.sub src start (!i - start))))
      end
      else begin
        let start = !i in
        while !i < n && is_digit src.[!i] do incr i done;
        (* width-prefixed literals (8w0x..) never appear in emitted code *)
        push (Tint (int_of_string (String.sub src start (!i - start))))
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      push (Tident (String.sub src start (!i - start)))
    end
    else begin
      let two =
        if !i + 1 < n then String.sub src !i 2 else ""
      in
      match two with
      (* note: no ">>" — it only occurs closing register<bit<32>>, and
         emitted expressions never right-shift *)
      | "==" | "!=" | "<=" | ">=" | "<<" | "&&" | "||" ->
          push (Tsym two); i := !i + 2
      | _ -> push (Tsym (String.make 1 c)); incr i
    end
  done;
  Array.of_list (List.rev !out)

(* ---------------- token stream ---------------- *)

type stream = { toks : lexed array; mutable pos : int }

let cur s =
  if s.pos < Array.length s.toks then Some s.toks.(s.pos) else None

let cur_line s =
  match cur s with Some l -> l.tline | None -> -1

let tok_to_string = function
  | Tident id -> id
  | Tint v -> string_of_int v
  | Tsym sy -> sy

let advance s = s.pos <- s.pos + 1

let peek_tok s = Option.map (fun l -> l.tok) (cur s)

let peek2_tok s =
  if s.pos + 1 < Array.length s.toks then Some s.toks.(s.pos + 1).tok
  else None

let eat_sym s sy =
  match peek_tok s with
  | Some (Tsym x) when x = sy -> advance s
  | Some t -> fail (cur_line s) "expected '%s', got '%s'" sy (tok_to_string t)
  | None -> fail (cur_line s) "expected '%s' at end of input" sy

let eat_ident s =
  match peek_tok s with
  | Some (Tident id) -> advance s; id
  | Some t -> fail (cur_line s) "expected identifier, got '%s'" (tok_to_string t)
  | None -> fail (cur_line s) "expected identifier at end of input"

let eat_kw s kw =
  let id = eat_ident s in
  if id <> kw then fail (cur_line s) "expected '%s', got '%s'" kw id

let eat_int s =
  match peek_tok s with
  | Some (Tint v) -> advance s; v
  | Some t -> fail (cur_line s) "expected integer, got '%s'" (tok_to_string t)
  | None -> fail (cur_line s) "expected integer at end of input"

let sym_is s sy =
  match peek_tok s with Some (Tsym x) -> x = sy | _ -> false

let ident_is s id =
  match peek_tok s with Some (Tident x) -> x = id | _ -> false

(* bit<N> *)
let eat_bit_type s =
  eat_kw s "bit";
  eat_sym s "<";
  let w = eat_int s in
  eat_sym s ">";
  w

(* ---------------- expressions ---------------- *)

(* a.b.c — possibly ending in isValid() *)
let eat_path s =
  let rec go acc =
    let id = eat_ident s in
    if sym_is s "." then (advance s; go (id :: acc))
    else List.rev (id :: acc)
  in
  go []

let rec parse_expr s = parse_cond s

and parse_cond s =
  let c = parse_binop s 0 in
  if sym_is s "?" then begin
    advance s;
    let a = parse_expr s in
    eat_sym s ":";
    let b = parse_cond s in
    Cond (c, a, b)
  end
  else c

(* precedence-climbing over left-associative binary operators *)
and binop_levels =
  [| [ ("||", Lor) ];
     [ ("&&", Land) ];
     [ ("|", Bor) ];
     [ ("^", Bxor) ];
     [ ("&", Band) ];
     [ ("==", Eq); ("!=", Ne) ];
     [ ("<", Lt); (">", Gt); ("<=", Le); (">=", Ge) ];
     [ ("<<", Shl) ];
     [ ("+", Add); ("-", Sub) ] |]

and parse_binop s level =
  if level >= Array.length binop_levels then parse_primary s
  else begin
    let ops = binop_levels.(level) in
    let lhs = ref (parse_binop s (level + 1)) in
    let continue = ref true in
    while !continue do
      match peek_tok s with
      | Some (Tsym sy) when List.mem_assoc sy ops ->
          advance s;
          let rhs = parse_binop s (level + 1) in
          lhs := Binop (List.assoc sy ops, !lhs, rhs)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_primary s =
  match peek_tok s with
  | Some (Tint v) -> advance s; Int v
  | Some (Tsym "{") ->
      advance s;
      let rec go acc =
        let e = parse_expr s in
        if sym_is s "," then (advance s; go (e :: acc))
        else (eat_sym s "}"; List.rev (e :: acc))
      in
      Tuple (go [])
  | Some (Tsym "(") ->
      advance s;
      if ident_is s "bit" then begin
        (* cast: (bit<N>) expr *)
        let w = eat_bit_type s in
        eat_sym s ")";
        Cast (w, parse_primary s)
      end
      else begin
        let e = parse_expr s in
        eat_sym s ")";
        e
      end
  | Some (Tident _) ->
      let path = eat_path s in
      (match List.rev path, peek_tok s with
      | "isValid" :: rest, Some (Tsym "(") ->
          advance s;
          eat_sym s ")";
          Is_valid (List.rev rest)
      | _ -> Ref path)
  | Some t -> fail (cur_line s) "expected expression, got '%s'" (tok_to_string t)
  | None -> fail (cur_line s) "expected expression at end of input"

let parse_args s =
  eat_sym s "(";
  if sym_is s ")" then (advance s; [])
  else begin
    let rec go acc =
      let e = parse_expr s in
      if sym_is s "," then (advance s; go (e :: acc))
      else (eat_sym s ")"; List.rev (e :: acc))
    in
    go []
  end

(* ---------------- statements ---------------- *)

let rec parse_stmt s =
  match peek_tok s with
  | Some (Tident "bit") ->
      let width = eat_bit_type s in
      let name = eat_ident s in
      let init =
        if sym_is s "=" then (advance s; Some (parse_expr s)) else None
      in
      eat_sym s ";";
      Decl { width; name; init }
  | Some (Tident "if") ->
      advance s;
      eat_sym s "(";
      let c = parse_expr s in
      eat_sym s ")";
      let then_ = parse_block s in
      let else_ =
        if ident_is s "else" then begin
          advance s;
          if ident_is s "if" then [ parse_stmt s ] else parse_block s
        end
        else []
      in
      If (c, then_, else_)
  | Some (Tident "digest") when peek2_tok s = Some (Tsym "<") ->
      advance s;
      eat_sym s "<";
      let g = eat_ident s in
      eat_sym s ">";
      let args = parse_args s in
      eat_sym s ";";
      Call { path = [ "digest" ]; generic = Some g; args }
  | Some (Tident _) ->
      let path = eat_path s in
      if sym_is s "=" then begin
        advance s;
        let e = parse_expr s in
        eat_sym s ";";
        Assign (path, e)
      end
      else begin
        let args = parse_args s in
        eat_sym s ";";
        Call { path; generic = None; args }
      end
  | Some t -> fail (cur_line s) "expected statement, got '%s'" (tok_to_string t)
  | None -> fail (cur_line s) "expected statement at end of input"

and parse_block s =
  eat_sym s "{";
  let rec go acc =
    if sym_is s "}" then (advance s; List.rev acc)
    else go (parse_stmt s :: acc)
  in
  go []

(* ---------------- declarations ---------------- *)

let parse_header s =
  let name = eat_ident s in
  eat_sym s "{";
  let fields = ref [] in
  while not (sym_is s "}") do
    let w = eat_bit_type s in
    let f = eat_ident s in
    eat_sym s ";";
    fields := (f, w) :: !fields
  done;
  advance s;
  { h_name = name; h_fields = List.rev !fields }

let parse_struct s =
  let name = eat_ident s in
  eat_sym s "{";
  let fields = ref [] in
  while not (sym_is s "}") do
    let fls = ref [] in
    while sym_is s "@" do
      advance s;
      let ann = eat_ident s in
      eat_sym s "(";
      let v = eat_int s in
      eat_sym s ")";
      if ann = "field_list" then fls := v :: !fls
    done;
    let ty =
      if ident_is s "bit" then `Bit (eat_bit_type s)
      else `Named (eat_ident s)
    in
    let f = eat_ident s in
    eat_sym s ";";
    fields :=
      { sf_name = f; sf_type = ty; sf_field_lists = List.rev !fls } :: !fields
  done;
  advance s;
  { s_name = name; s_fields = List.rev !fields }

(* skip a parenthesized parameter list without interpreting it *)
let skip_parens s =
  eat_sym s "(";
  let depth = ref 1 in
  while !depth > 0 do
    match peek_tok s with
    | Some (Tsym "(") -> advance s; incr depth
    | Some (Tsym ")") -> advance s; decr depth
    | Some _ -> advance s
    | None -> fail (cur_line s) "unbalanced parentheses"
  done

let parse_select_case s =
  (* keyset: INT | _ | ( pat, pat, ... ) | default *)
  let pat_one () =
    match peek_tok s with
    | Some (Tint v) -> advance s; P_int v
    | Some (Tident "_") -> advance s; P_any
    | Some t -> fail (cur_line s) "expected keyset element, got '%s'" (tok_to_string t)
    | None -> fail (cur_line s) "expected keyset element at end of input"
  in
  let pats =
    if ident_is s "default" then (advance s; `Default)
    else if sym_is s "(" then begin
      advance s;
      let rec go acc =
        let p = pat_one () in
        if sym_is s "," then (advance s; go (p :: acc))
        else (eat_sym s ")"; List.rev (p :: acc))
      in
      `Pats (go [])
    end
    else `Pats [ pat_one () ]
  in
  eat_sym s ":";
  let target = eat_ident s in
  eat_sym s ";";
  (pats, target)

let parse_state s =
  let name = eat_ident s in
  eat_sym s "{";
  let extracts = ref [] in
  let transition = ref T_accept in
  while not (sym_is s "}") do
    if ident_is s "transition" then begin
      advance s;
      if ident_is s "accept" then begin
        advance s; eat_sym s ";"; transition := T_accept
      end
      else if ident_is s "select" then begin
        advance s;
        eat_sym s "(";
        let rec go acc =
          let e = parse_expr s in
          if sym_is s "," then (advance s; go (e :: acc))
          else (eat_sym s ")"; List.rev (e :: acc))
        in
        let keys = go [] in
        let arity = List.length keys in
        eat_sym s "{";
        let cases = ref [] in
        while not (sym_is s "}") do
          match parse_select_case s with
          | `Default, target ->
              cases := (List.init arity (fun _ -> P_any), target) :: !cases
          | `Pats pats, target ->
              if List.length pats <> arity then
                fail (cur_line s) "select keyset arity mismatch";
              cases := (pats, target) :: !cases
        done;
        advance s;
        transition := T_select (keys, List.rev !cases)
      end
      else begin
        let target = eat_ident s in
        eat_sym s ";";
        transition := T_direct target
      end
    end
    else begin
      (* pkt.extract(hdr.x); *)
      let path = eat_path s in
      (match List.rev path with
      | "extract" :: _ -> ()
      | _ -> fail (cur_line s) "expected extract or transition in state %s" name);
      eat_sym s "(";
      let hdr = eat_path s in
      eat_sym s ")";
      eat_sym s ";";
      extracts := hdr :: !extracts
    end
  done;
  advance s;
  { ps_name = name; ps_extracts = List.rev !extracts; ps_transition = !transition }

let parse_parser s =
  let _name = eat_ident s in
  skip_parens s;
  eat_sym s "{";
  let states = ref [] in
  while not (sym_is s "}") do
    eat_kw s "state";
    states := parse_state s :: !states
  done;
  advance s;
  List.rev !states

let parse_action s =
  let name = eat_ident s in
  eat_sym s "(";
  let params = ref [] in
  if sym_is s ")" then advance s
  else begin
    let rec go () =
      let w = eat_bit_type s in
      let p = eat_ident s in
      params := (p, w) :: !params;
      if sym_is s "," then (advance s; go ()) else eat_sym s ")"
    in
    go ()
  end;
  let body = parse_block s in
  { a_name = name; a_params = List.rev !params; a_body = body }

let parse_table s =
  let name = eat_ident s in
  eat_sym s "{";
  let keys = ref [] in
  let actions = ref [] in
  let size = ref None in
  let default = ref "NoAction" in
  while not (sym_is s "}") do
    match eat_ident s with
    | "key" ->
        eat_sym s "=";
        eat_sym s "{";
        while not (sym_is s "}") do
          let e = parse_expr s in
          eat_sym s ":";
          let mk =
            match eat_ident s with
            | "exact" -> Exact
            | "ternary" -> Ternary
            | "range" -> Range
            | mk -> fail (cur_line s) "unknown match kind '%s'" mk
          in
          eat_sym s ";";
          keys := (e, mk) :: !keys
        done;
        advance s
    | "actions" ->
        eat_sym s "=";
        eat_sym s "{";
        while not (sym_is s "}") do
          let a = eat_ident s in
          eat_sym s ";";
          actions := a :: !actions
        done;
        advance s
    | "size" ->
        eat_sym s "=";
        size := Some (eat_int s);
        eat_sym s ";"
    | "default_action" ->
        eat_sym s "=";
        let a = eat_ident s in
        if sym_is s "(" then skip_parens s;
        eat_sym s ";";
        default := a
    | prop -> fail (cur_line s) "unknown table property '%s'" prop
  done;
  advance s;
  {
    t_name = name;
    t_keys = List.rev !keys;
    t_actions = List.rev !actions;
    t_size = !size;
    t_default = !default;
  }

let parse_control s =
  let name = eat_ident s in
  skip_parens s;
  eat_sym s "{";
  let registers = ref [] in
  let actions = ref [] in
  let tables = ref [] in
  let apply = ref [] in
  while not (sym_is s "}") do
    match peek_tok s with
    | Some (Tident "register") ->
        advance s;
        eat_sym s "<";
        let _w = eat_bit_type s in
        (* `>>` closing register<bit<32>> lexes as one `>` + one `>`
           only if unmerged; the lexer never merges `>>`, so: *)
        eat_sym s ">";
        eat_sym s "(";
        let n = eat_int s in
        eat_sym s ")";
        let rname = eat_ident s in
        eat_sym s ";";
        registers := (rname, n) :: !registers
    | Some (Tident "action") ->
        advance s;
        actions := parse_action s :: !actions
    | Some (Tident "table") ->
        advance s;
        tables := parse_table s :: !tables
    | Some (Tident "apply") ->
        advance s;
        apply := parse_block s
    | Some t ->
        fail (cur_line s) "unexpected '%s' in control %s" (tok_to_string t) name
    | None -> fail (cur_line s) "unterminated control %s" name
  done;
  advance s;
  {
    c_name = name;
    c_registers = List.rev !registers;
    c_actions = List.rev !actions;
    c_tables = List.rev !tables;
    c_apply = !apply;
  }

(* ---------------- top level ---------------- *)

let parse src =
  let s = { toks = tokenize src; pos = 0 } in
  let header_types = ref [] in
  let structs = ref [] in
  let parser_states = ref [] in
  let controls = ref [] in
  let stop = ref false in
  while not !stop do
    match peek_tok s with
    | None -> stop := true
    | Some (Tident "header") ->
        advance s;
        header_types := parse_header s :: !header_types
    | Some (Tident "struct") ->
        advance s;
        structs := parse_struct s :: !structs
    | Some (Tident "parser") ->
        advance s;
        parser_states := parse_parser s @ !parser_states
    | Some (Tident "control") ->
        advance s;
        controls := parse_control s :: !controls
    | Some (Tident _) ->
        (* package instantiation (V1Switch(...) main;) — skip to ';' *)
        advance s;
        if sym_is s "(" then skip_parens s;
        while not (sym_is s ";") && cur s <> None do advance s done;
        if sym_is s ";" then advance s
    | Some t -> fail (cur_line s) "unexpected top-level '%s'" (tok_to_string t)
  done;
  {
    header_types = List.rev !header_types;
    structs = List.rev !structs;
    parser_states = List.rev !parser_states;
    controls = List.rev !controls;
  }
