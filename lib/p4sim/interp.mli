(** Interpreter for the emitted v1model subset: parses synthesized
    bytes into headers, runs the ingress apply block against
    runtime-installed table entries, models the register/hash/digest
    externs with the engine's exact semantics, and follows
    [recirculate_preserving_field_list] loops. *)

exception Runtime_error of string
exception Install_error of string

(** Recirculation-pass cap per packet; exceeding it raises
    {!Runtime_error} (a rule-generation bug, not traffic-dependent). *)
val max_passes : int

type t

(** Instantiate a parsed program: resolves the ingress control (the one
    carrying tables), header layouts, declared widths, registers and
    the @field_list(1) preservation set.
    @raise Runtime_error if the program has no control with tables. *)
val create : P4ast.program -> t

(** Install controller rules (the {!Newton_p4gen.Rules} wire entries).
    @raise Install_error on unknown tables/actions or malformed
    matches. *)
val install : t -> Newton_p4gen.Rules.entry list -> unit

(** Remove all installed entries (tables fall back to defaults). *)
val clear_entries : t -> unit

(** Zero the register file — the window-roll reset. *)
val clear_state : t -> unit

(** Total register words across the program's register declarations. *)
val register_words : t -> int

(** Run one packet through the pipeline (recirculations included);
    returns emitted digests in order, each the evaluated field tuple of
    the digest's struct.
    @raise Runtime_error on semantic drift (unknown calls, register
    out-of-bounds, non-converging recirculation). *)
val run : t -> ?ingress_port:int -> string -> int array list

(** Pipeline passes (1 + recirculations) the most recent {!run} packet
    took; 0 before any run.  The observable NA093's witness replay
    asserts against. *)
val last_passes : t -> int

