(** The pinned differential corpus: mixed v4/v6/ICMPv6/VXLAN traffic on
    which every catalog query Q1-Q17 reports at least once.  Tests, the
    bench, and [newton p4 diff --coverage-corpus] all replay this. *)

(** The extended attack suite plus the three scenarios (ICMP flood,
    port-53 amplification, SYN-ACK reflection) that Q12/Q13/Q14 need. *)
val coverage_attacks : Newton_trace.Attack.t list

(** Generate the corpus, timestamp-ordered.  Defaults ([seed]=7,
    [scale]=0.15 of the CAIDA-like profile, ~62k packets) are the
    pinned full-coverage recipe; changing either voids the every-query-
    reports guarantee. *)
val coverage_packets : ?seed:int -> ?scale:float -> unit -> Newton_packet.Packet.t list
