(** Wire-format loader: parse a rule document (the JSON array
    {!Newton_p4gen.Rules.to_json} writes and [newton p4 emit
    --rules-out] ships) back into typed entries for {!Interp.install}.

    Exact inverse of the serializer — round-tripping through it is part
    of the test suite, so the controller-to-switch wire format cannot
    drift silently. *)

open Newton_util

exception Bad_document of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad_document m)) fmt

let req name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> v
  | None -> fail "entry lacks %s" name

let match_of_json j : Newton_p4gen.Rules.mtch =
  let field = req "field" Json.to_string_opt j in
  match req "type" Json.to_string_opt j with
  | "exact" -> M_exact (field, req "value" Json.to_int_opt j)
  | "ternary" ->
      M_ternary (field, req "value" Json.to_int_opt j, req "mask" Json.to_int_opt j)
  | "range" -> M_range (field, req "lo" Json.to_int_opt j, req "hi" Json.to_int_opt j)
  | ty -> fail "unknown match type %S" ty

let entry_of_json j : Newton_p4gen.Rules.entry =
  let params =
    match Json.member "params" j with
    | Some (Json.Obj kvs) ->
        List.map
          (fun (k, v) ->
            match Json.to_string_opt v with
            | Some s -> (k, s)
            | None -> fail "param %s is not a string" k)
          kvs
    | Some _ -> fail "params is not an object"
    | None -> []
  in
  let matches =
    match Option.bind (Json.member "match" j) Json.to_list with
    | Some ms -> List.map match_of_json ms
    | None -> fail "entry lacks match array"
  in
  {
    table = req "table" Json.to_string_opt j;
    matches;
    action = req "action" Json.to_string_opt j;
    params;
    priority = req "priority" Json.to_int_opt j;
  }

(** Parse a full rule document.
    @raise Bad_document on malformed JSON or missing members. *)
let of_json src =
  match Json.of_string src with
  | exception Json.Parse_error { pos; msg } ->
      fail "JSON error at %d: %s" pos msg
  | Json.List entries -> List.map entry_of_json entries
  | _ -> fail "top level is not an array"
