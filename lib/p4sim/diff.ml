(** Differential harness: the same trace through the simulator engine
    and the interpreted P4 pipeline, asserting report identity.

    For one query it compiles once, installs on both targets, lowers
    each packet to wire bytes ({!Phv}), replays it through
    {!Newton_runtime.Engine.process_packet} and {!Interp.run}, decodes
    the interpreter's digests into {!Newton_query.Report} values, and
    compares the two report multisets.  This is the repo's ground-truth
    check that emission + rule generation preserve engine semantics —
    any divergence in hashing, window rolls, guard evaluation, branch
    recirculation or report dedup shows up as a report mismatch.

    Mirrored engine semantics the harness re-implements deliberately
    (see engine.ml):
    - a packet rolls the instance's window only if it matches one of
      the compiled [init_entries] (all branches, empty-slot ones too);
    - window rolls clear sketch state *and* report-dedup memory;
    - report dedup is first-occurrence-wins on (window, key vector);
    - [value2] is exported only for [Pair]-combined queries.

    Packets whose field vectors have no wire encoding are skipped on
    *both* sides (the comparison stays apples-to-apples); the skip
    counts are part of the result so tests can assert full coverage on
    curated corpora. *)

open Newton_packet
open Newton_query

type outcome = {
  query_id : int;
  total : int;  (** packets offered *)
  replayed : int;  (** packets run on both targets *)
  skipped : int;  (** packets with no wire encoding *)
  skip_reasons : (string * int) list;
  engine_reports : Report.t list;
  p4_reports : Report.t list;
}

let sorted reports = List.sort Report.compare reports

let matched r =
  let a = sorted r.engine_reports and b = sorted r.p4_reports in
  List.length a = List.length b
  && List.for_all2 (fun x y -> Report.compare x y = 0) a b

(* First report present in exactly one sorted multiset, if any. *)
let first_disagreement r =
  let rec go a b =
    match a, b with
    | [], [] -> None
    | x :: _, [] -> Some (`Engine_only x)
    | [], y :: _ -> Some (`P4_only y)
    | x :: a', y :: b' ->
        let c = Report.compare x y in
        if c = 0 then go a' b'
        else if c < 0 then Some (`Engine_only x)
        else Some (`P4_only y)
  in
  go (sorted r.engine_reports) (sorted r.p4_reports)

let report_to_string (r : Report.t) =
  Printf.sprintf "q%d w%d keys[%s] value %d%s" r.query_id r.window
    (String.concat ";" (Array.to_list (Array.map string_of_int r.keys)))
    r.value
    (match r.value2 with Some v -> Printf.sprintf " value2 %d" v | None -> "")

let describe r =
  let head =
    Printf.sprintf "q%d: %d/%d packets replayed (%d unencodable), %d vs %d reports"
      r.query_id r.replayed r.total r.skipped
      (List.length r.engine_reports)
      (List.length r.p4_reports)
  in
  if matched r then head ^ " — identical"
  else
    match first_disagreement r with
    | Some (`Engine_only rep) ->
        Printf.sprintf "%s — engine-only report: %s" head (report_to_string rep)
    | Some (`P4_only rep) ->
        Printf.sprintf "%s — p4-only report: %s" head (report_to_string rep)
    | None -> head ^ " — multiset mismatch"

(* ---------------- digest decoding ---------------- *)

(* Digest layout (newton_report_t, positional): class_id, desc,
   eighteen key copies in Field.index order, g1, g2. *)
let decode_digest ~pair ~window (d : int array) =
  let nfields = List.length Field.all in
  if Array.length d <> 2 + nfields + 2 then
    invalid_arg
      (Printf.sprintf "digest has %d fields, expected %d" (Array.length d)
         (4 + nfields));
  let desc = d.(1) in
  let keys =
    let rec go pos acc =
      if pos >= Newton_p4gen.Emit.desc_positions then List.rev acc
      else
        let code = (desc lsr (5 * pos)) land 0x1F in
        if code = 0 then List.rev acc else go (pos + 1) (d.(1 + code) :: acc)
    in
    Array.of_list (go 0 [])
  in
  let g1 = d.(2 + nfields) and g2 = d.(3 + nfields) in
  ( keys,
    fun ~query_id ->
      Report.make
        ~value2:(if pair then Some g2 else None)
        ~query_id ~window ~keys ~value:g1 () )

(* ---------------- the harness ---------------- *)

let init_entry_matches pkt (ie : Newton_compiler.Ir.init_entry) =
  List.for_all
    (fun (f, v, m) -> Packet.get pkt f land m = v)
    ie.Newton_compiler.Ir.ie_matches

let run_query ?class_id ?(layout = Newton_p4gen.Emit.default_layout) query
    packets =
  let compiled = Newton_compiler.Compose.compile query in
  match Newton_p4gen.Rules.entries ?class_id ~layout compiled with
  | Error issue -> Error issue
  | Ok rules ->
      (* engine target *)
      let engine =
        Newton_runtime.Engine.create ~sink:Newton_telemetry.Stats.null
          ~switch_id:0 ()
      in
      let _uid = Newton_runtime.Engine.install engine compiled in
      (* interpreted-P4 target *)
      let interp =
        Interp.create (P4parse.parse (Newton_p4gen.Emit.program ~layout ()))
      in
      Interp.install interp rules;
      let pair =
        match query.Ast.combine with
        | Some { Ast.op = Ast.Pair; _ } -> true
        | _ -> false
      in
      let window = ref 0 in
      let seen = Hashtbl.create 256 in  (* (window, keys) dedup *)
      let p4_reports = ref [] in
      let skips = Hashtbl.create 8 in
      let total = ref 0 and replayed = ref 0 and skipped = ref 0 in
      List.iter
        (fun pkt ->
          incr total;
          match Phv.synthesize pkt with
          | Error why ->
              incr skipped;
              let key = Phv.error_to_string why in
              Hashtbl.replace skips key
                (1 + Option.value (Hashtbl.find_opt skips key) ~default:0)
          | Ok bytes ->
              incr replayed;
              (* the engine rolls an instance's window only when the
                 packet classifies into it; mirror that gate *)
              if
                Array.exists (init_entry_matches pkt)
                  compiled.Newton_compiler.Compose.init_entries
              then begin
                let w = int_of_float (Packet.ts pkt /. query.Ast.window) in
                if w <> !window then begin
                  window := w;
                  Interp.clear_state interp;
                  Hashtbl.reset seen
                end
              end;
              Newton_runtime.Engine.process_packet engine pkt;
              List.iter
                (fun digest ->
                  let keys, mk = decode_digest ~pair ~window:!window digest in
                  let dedup_key = (!window, Array.to_list keys) in
                  if not (Hashtbl.mem seen dedup_key) then begin
                    Hashtbl.replace seen dedup_key ();
                    p4_reports := mk ~query_id:query.Ast.id :: !p4_reports
                  end)
                (Interp.run interp
                   ~ingress_port:(Packet.get pkt Field.Ingress_port)
                   bytes))
        packets;
      Ok
        {
          query_id = query.Ast.id;
          total = !total;
          replayed = !replayed;
          skipped = !skipped;
          skip_reasons =
            List.sort compare
              (Hashtbl.fold (fun k v acc -> (k, v) :: acc) skips []);
          engine_reports = Newton_runtime.Engine.drain_reports engine;
          p4_reports = List.rev !p4_reports;
        }
