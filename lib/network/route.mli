(** Routing over a {!Topo} with link and node failures: BFS shortest
    paths with deterministic per-flow ECMP, rerouting around failed
    links and failed switches. *)

type link = int * int

type t

val create : Topo.t -> t
val topo : t -> Topo.t

(** Links are normalised, so (a,b) and (b,a) refer to the same link. *)
val fail_link : t -> link -> unit

val repair_link : t -> link -> unit

(** Fail a whole node: every incident link becomes unusable and no path
    may transit it (a failed switch forwards nothing — unlike a legacy
    switch, which forwards but runs no Newton rules). *)
val fail_node : t -> int -> unit

val repair_node : t -> int -> unit
val is_node_failed : t -> int -> bool
val failed_nodes : t -> int list

(** Repair every failed link and node. *)
val clear_failures : t -> unit

val failed_links : t -> link list
val is_failed : t -> link -> bool

(** BFS distances from a node over usable links; unreachable = [max_int]. *)
val distances : t -> int -> int array

(** One shortest path (inclusive node list) with deterministic ECMP
    tie-breaking by [flow_hash]; [None] when disconnected. *)
val shortest_path : ?flow_hash:int -> t -> src:int -> dst:int -> int list option

(** The switch-only portion of a host-to-host shortest path. *)
val switch_path :
  ?flow_hash:int -> t -> src_host:int -> dst_host:int -> int list option

(** All equal-cost shortest paths between two nodes. *)
val all_shortest_paths : t -> src:int -> dst:int -> int list list

(** All simple paths of at most [max_hops] links. *)
val all_paths_bounded : t -> src:int -> dst:int -> max_hops:int -> int list list

val path_length : int list -> int

(** Number of switches on the host-to-host path. *)
val hop_count : ?flow_hash:int -> t -> src_host:int -> dst_host:int -> int option
