(** Network topologies.

    Nodes are integers: switches are [0 .. num_switches-1], hosts are
    [num_switches .. num_switches+num_hosts-1].  The evaluation uses
    three families, matching §6: a linear chain (the 3-switch testbed of
    Fig. 8), k-ary fat-trees (Fig. 17), and a North-America ISP backbone
    modelled after the AT&T OC-768 map the paper cites. *)

type node = int

type t = {
  name : string;
  num_switches : int;
  num_hosts : int;
  adj : node list array; (* adjacency over all nodes, switches then hosts *)
}

let name t = t.name
let num_switches t = t.num_switches
let num_hosts t = t.num_hosts
let num_nodes t = t.num_switches + t.num_hosts
let is_switch t n = n >= 0 && n < t.num_switches
let is_host t n = n >= t.num_switches && n < num_nodes t
let switches t = List.init t.num_switches Fun.id
let hosts t = List.init t.num_hosts (fun i -> t.num_switches + i)
let neighbors t n = t.adj.(n)

(** Switches directly connected to at least one host. *)
let edge_switches t =
  List.filter (fun s -> List.exists (fun n -> is_host t n) t.adj.(s)) (switches t)

(** The switch a host hangs off (hosts are single-homed here). *)
let host_switch t h =
  match List.find_opt (fun n -> is_switch t n) t.adj.(h) with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Topo.host_switch: host %d unattached" h)

(** All switch-switch links, each reported once as (a, b) with a < b. *)
let links t =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if is_switch t b && a < b then Some (a, b) else None)
        t.adj.(a))
    (switches t)

let degree t n = List.length t.adj.(n)

let build ~name ~num_switches ~num_hosts edges host_links =
  let n = num_switches + num_hosts in
  let adj = Array.make n [] in
  let add a b =
    if a < 0 || a >= n || b < 0 || b >= n then
      invalid_arg (Printf.sprintf "Topo.build(%s): bad edge %d-%d" name a b);
    if not (List.mem b adj.(a)) then adj.(a) <- b :: adj.(a);
    if not (List.mem a adj.(b)) then adj.(b) <- a :: adj.(b)
  in
  List.iter (fun (a, b) -> add a b) edges;
  List.iter (fun (h, s) -> add (num_switches + h) s) host_links;
  { name; num_switches; num_hosts; adj }

(** Linear chain of [n] switches with one host at each end — the paper's
    3-switch testbed topology (Fig. 8) generalised. *)
let linear n =
  if n < 1 then invalid_arg "Topo.linear: need at least one switch";
  build
    ~name:(Printf.sprintf "linear-%d" n)
    ~num_switches:n ~num_hosts:2
    (List.init (n - 1) (fun i -> (i, i + 1)))
    [ (0, 0); (1, n - 1) ]

(** Bypass topology: two end switches joined by two disjoint switch
    chains — a [short]-switch primary path and a [long]-switch backup.
    One host per end.  Shortest-path routing uses the primary chain
    exclusively; failing any primary switch deterministically shifts
    {e all} traffic onto the backup, which makes it the reference
    topology for switch-failure recovery tests (a single-path reroute
    with no ECMP spreading). *)
let bypass ?(short = 1) ?(long = 2) () =
  if short < 1 || long <= short then
    invalid_arg "Topo.bypass: need 1 <= short < long";
  (* Switch ids: 0 and 1 are the ends; 2..1+short the primary chain;
     2+short..1+short+long the backup chain. *)
  let num_switches = 2 + short + long in
  let chain first len =
    (* 0 - first - first+1 - ... - first+len-1 - 1 *)
    ((0, first) :: List.init (len - 1) (fun i -> (first + i, first + i + 1)))
    @ [ (first + len - 1, 1) ]
  in
  build
    ~name:(Printf.sprintf "bypass-%d-%d" short long)
    ~num_switches ~num_hosts:2
    (chain 2 short @ chain (2 + short) long)
    [ (0, 0); (1, 1) ]

(** k-ary fat-tree: k pods, (k/2)^2 core switches, k/2 aggregation and
    k/2 edge switches per pod, k/2 hosts per edge switch (scaled-down
    host count keeps experiments fast while preserving path structure). *)
let fat_tree ?(hosts_per_edge = 2) k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topo.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let num_core = half * half in
  let num_agg = k * half in
  let num_edge = k * half in
  let num_switches = num_core + num_agg + num_edge in
  let core i = i in
  let agg pod i = num_core + (pod * half) + i in
  let edge pod i = num_core + num_agg + (pod * half) + i in
  let edges = ref [] in
  for pod = 0 to k - 1 do
    for a = 0 to half - 1 do
      (* Aggregation a of this pod connects to core group a. *)
      for c = 0 to half - 1 do
        edges := (agg pod a, core ((a * half) + c)) :: !edges
      done;
      (* Full bipartite agg-edge inside the pod. *)
      for e = 0 to half - 1 do
        edges := (agg pod a, edge pod e) :: !edges
      done
    done
  done;
  let num_hosts = num_edge * hosts_per_edge in
  let host_links =
    List.concat
      (List.init num_edge (fun e ->
           List.init hosts_per_edge (fun h ->
               ((e * hosts_per_edge) + h, num_core + num_agg + e))))
  in
  build
    ~name:(Printf.sprintf "fat-tree-k%d" k)
    ~num_switches ~num_hosts !edges host_links

(** Pod of an edge switch in a fat-tree (for locality-aware workloads). *)
let fat_tree_num_core k = k / 2 * (k / 2)

(** North-America ISP backbone modelled on the AT&T OC-768 map [67]:
    25 cities, mesh-like long-haul links, one host (stub network) per
    city. Index 0 is San Francisco and 1 is Los Angeles — the paper's
    "traffic emitted from California" enters there. *)
let isp_cities =
  [| "SanFrancisco"; "LosAngeles"; "Seattle"; "SaltLakeCity"; "Phoenix";
     "Denver"; "Albuquerque"; "Dallas"; "Houston"; "SanAntonio";
     "KansasCity"; "StLouis"; "Chicago"; "Minneapolis"; "Detroit";
     "Cleveland"; "Nashville"; "Atlanta"; "NewOrleans"; "Miami";
     "Raleigh"; "WashingtonDC"; "Philadelphia"; "NewYork"; "Boston" |]

let isp () =
  let edges =
    [ (0, 1); (0, 2); (0, 3); (1, 4); (1, 3); (2, 3); (2, 13); (3, 5);
      (4, 6); (4, 1); (5, 6); (5, 10); (5, 12); (6, 7); (7, 8); (7, 10);
      (7, 16); (8, 9); (8, 18); (9, 7); (10, 11); (10, 13); (11, 12);
      (11, 16); (12, 13); (12, 14); (12, 15); (14, 15); (15, 21); (16, 17);
      (17, 18); (17, 19); (17, 20); (18, 19); (20, 21); (21, 22); (22, 23);
      (23, 24); (12, 23); (5, 7); (0, 5); (17, 21); (19, 20) ]
  in
  let n = Array.length isp_cities in
  build ~name:"na-isp" ~num_switches:n ~num_hosts:n edges
    (List.init n (fun i -> (i, i)))

(** Waxman random graph: switches placed uniformly in the unit square,
    link probability decaying with distance; extra edges ensure
    connectivity.  One host per switch.  Used to check that placement
    and routing hold beyond the structured topologies. *)
let waxman ?(alpha = 0.4) ?(beta = 0.25) ~switches ~seed () =
  if switches < 1 then invalid_arg "Topo.waxman: need at least one switch";
  let rng = Newton_util.Prng.of_int seed in
  let xs = Array.init switches (fun _ -> Newton_util.Prng.float rng) in
  let ys = Array.init switches (fun _ -> Newton_util.Prng.float rng) in
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  let edges = ref [] in
  for i = 0 to switches - 1 do
    for j = i + 1 to switches - 1 do
      let p = alpha *. exp (-.dist i j /. (beta *. Float.sqrt 2.0)) in
      if Newton_util.Prng.bernoulli rng p then edges := (i, j) :: !edges
    done
  done;
  (* Stitch components together: union-find over the sampled edges, then
     connect representatives in index order. *)
  let parent = Array.init switches Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  List.iter (fun (i, j) -> union i j) !edges;
  for i = 1 to switches - 1 do
    if find i <> find 0 then begin
      edges := (i - 1, i) :: !edges;
      union (i - 1) i
    end
  done;
  build
    ~name:(Printf.sprintf "waxman-%d-s%d" switches seed)
    ~num_switches:switches ~num_hosts:switches !edges
    (List.init switches (fun i -> (i, i)))

let to_string t =
  Printf.sprintf "%s: %d switches, %d hosts, %d links" t.name t.num_switches
    t.num_hosts (List.length (links t))
