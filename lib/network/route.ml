(** Routing over a {!Topo}, with link and node failures.

    Provides shortest-path forwarding (BFS, deterministic ECMP
    tie-breaking by a flow hash) and failure injection: failed links and
    failed nodes (whole switches, §5.2 switch-failure recovery) are
    excluded and paths recomputed, which models the "forwarding paths are
    mutable and change over time" dynamics of §5.2. *)

type link = int * int

let norm (a, b) = if a <= b then (a, b) else (b, a)

module Link_set = Set.Make (struct
  type t = link

  let compare = compare
end)

module Int_set = Set.Make (Int)

type t = {
  topo : Topo.t;
  mutable failed : Link_set.t;
  mutable failed_nodes : Int_set.t;
}

let create topo = { topo; failed = Link_set.empty; failed_nodes = Int_set.empty }

let topo t = t.topo

let fail_link t l = t.failed <- Link_set.add (norm l) t.failed
let repair_link t l = t.failed <- Link_set.remove (norm l) t.failed

(* A failed node drops off the forwarding graph entirely: every link
   incident to it is unusable and no path may transit it.  Unlike a
   legacy (Newton-disabled) switch, which still forwards, a failed
   switch forwards nothing. *)
let fail_node t n = t.failed_nodes <- Int_set.add n t.failed_nodes
let repair_node t n = t.failed_nodes <- Int_set.remove n t.failed_nodes
let is_node_failed t n = Int_set.mem n t.failed_nodes
let failed_nodes t = Int_set.elements t.failed_nodes

let clear_failures t =
  t.failed <- Link_set.empty;
  t.failed_nodes <- Int_set.empty

let failed_links t = Link_set.elements t.failed
let is_failed t l = Link_set.mem (norm l) t.failed

let usable_neighbors t n =
  if is_node_failed t n then []
  else
    List.filter
      (fun m -> not (is_failed t (n, m)) && not (is_node_failed t m))
      (Topo.neighbors t.topo n)

(** BFS distances from [src] over usable links and nodes.
    Unreachable = max_int. *)
let distances t src =
  let n = Topo.num_nodes t.topo in
  let dist = Array.make n max_int in
  if is_node_failed t src then dist
  else begin
    dist.(src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (usable_neighbors t u)
    done;
    dist
  end

(** One shortest path from [src] to [dst] (node list, inclusive), with
    deterministic ECMP tie-breaking by [flow_hash].  [None] if
    disconnected. *)
let shortest_path ?(flow_hash = 0) t ~src ~dst =
  if is_node_failed t src || is_node_failed t dst then None
  else if src = dst then Some [ src ]
  else
    let dist = distances t dst in
    if dist.(src) = max_int then None
    else begin
      let path = ref [ src ] in
      let cur = ref src in
      let hop = ref 0 in
      while !cur <> dst do
        let nexts =
          List.filter (fun v -> dist.(v) = dist.(!cur) - 1) (usable_neighbors t !cur)
          |> List.sort compare
        in
        let n = List.length nexts in
        let pick = List.nth nexts ((flow_hash + !hop) mod n) in
        path := pick :: !path;
        cur := pick;
        incr hop
      done;
      Some (List.rev !path)
    end

(** The switch-only portion of a host-to-host path. *)
let switch_path ?flow_hash t ~src_host ~dst_host =
  match shortest_path ?flow_hash t ~src:src_host ~dst:dst_host with
  | None -> None
  | Some path -> Some (List.filter (fun n -> Topo.is_switch t.topo n) path)

(** All shortest paths between two nodes (used by resilience analysis;
    exponential in theory, small in practice on our topologies). *)
let all_shortest_paths t ~src ~dst =
  let dist = distances t dst in
  if dist.(src) = max_int then []
  else
    let rec extend node =
      if node = dst then [ [ dst ] ]
      else
        List.concat_map
          (fun v ->
            if dist.(v) = dist.(node) - 1 then
              List.map (fun p -> node :: p) (extend v)
            else [])
          (usable_neighbors t node)
    in
    extend src

(** All simple paths from [src] to [dst] of length at most [max_hops]
    switches — the "all the possible paths" of Algorithm 2's coverage
    guarantee. *)
let all_paths_bounded t ~src ~dst ~max_hops =
  if is_node_failed t src || is_node_failed t dst then []
  else
  let rec go node visited len =
    if node = dst then [ [ dst ] ]
    else if len >= max_hops then []
    else
      List.concat_map
        (fun v ->
          if List.mem v visited then []
          else List.map (fun p -> node :: p) (go v (v :: visited) (len + 1)))
        (usable_neighbors t node)
  in
  go src [ src ] 0

let path_length path = List.length path - 1

(** Hop count between two hosts under current failures. *)
let hop_count ?flow_hash t ~src_host ~dst_host =
  Option.map List.length (switch_path ?flow_hash t ~src_host ~dst_host)
