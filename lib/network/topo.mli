(** Network topologies.  Nodes are integers: switches come first
    ([0 .. num_switches-1]), then hosts.  Three families match the
    paper's evaluation: linear chains (the Fig. 8 testbed), k-ary
    fat-trees (Fig. 17) and a North-America ISP backbone. *)

type node = int

type t

val name : t -> string
val num_switches : t -> int
val num_hosts : t -> int
val num_nodes : t -> int
val is_switch : t -> node -> bool
val is_host : t -> node -> bool
val switches : t -> node list
val hosts : t -> node list
val neighbors : t -> node -> node list

(** Switches directly connected to at least one host. *)
val edge_switches : t -> node list

(** The switch a (single-homed) host hangs off.
    @raise Invalid_argument for an unattached host. *)
val host_switch : t -> node -> node

(** All switch-switch links, each once as (a, b) with a < b. *)
val links : t -> (node * node) list

val degree : t -> node -> int

(** Build from explicit switch-switch edges and (host, switch)
    attachments.
    @raise Invalid_argument on out-of-range endpoints. *)
val build :
  name:string -> num_switches:int -> num_hosts:int ->
  (node * node) list -> (int * node) list -> t

(** Chain of [n] switches with one host at each end.
    @raise Invalid_argument if [n < 1]. *)
val linear : int -> t

(** Two end switches (ids 0 and 1, one host each) joined by two
    disjoint chains: a [short]-switch primary (ids [2..1+short]) and a
    [long]-switch backup.  Failing any primary switch shifts all
    traffic onto the backup — a deterministic single-path reroute,
    the reference topology for switch-failure recovery tests.
    @raise Invalid_argument unless [1 <= short < long]. *)
val bypass : ?short:int -> ?long:int -> unit -> t

(** k-ary fat-tree: (k/2)² core, k·k/2 aggregation and edge switches,
    [hosts_per_edge] hosts per edge switch.
    @raise Invalid_argument for odd or non-positive k. *)
val fat_tree : ?hosts_per_edge:int -> int -> t

val fat_tree_num_core : int -> int

(** City names of the ISP backbone, index-aligned with its switches;
    index 0/1 are the California edges. *)
val isp_cities : string array

(** 25-city North-America backbone modelled on the AT&T OC-768 map. *)
val isp : unit -> t

(** Waxman random graph (connected; one host per switch).
    @raise Invalid_argument if [switches < 1]. *)
val waxman : ?alpha:float -> ?beta:float -> switches:int -> seed:int -> unit -> t

val to_string : t -> string
