(** The [Newton] umbrella: the one module external users open.

    [open Newton] pulls in the full public surface — the query DSL and
    catalog, the compiler, runtime engines, telemetry, trace tooling,
    and the {!Device} / {!Parallel_device} / {!Network} facades —
    without depending on any [Newton_*] internal library name, which
    are free to move between PRs. *)

include Newton_core.Newton

(** Runtime internals (engines, analyzer, introspection) for users who
    need more than the facades expose. *)
module Runtime = Newton_runtime

(** Capture-file ingestion: pcap/pcapng readers, the frame decoder,
    pcap export, and the paced streaming driver. *)
module Ingest = Newton_ingest

(** Static query/IR/placement analysis: diagnostics ([Diag]), the pass
    registry and driver ([Check]) behind [newton check] and the
    deployment admission gate. *)
module Analysis = Newton_analysis

(** The controller service: intent lifecycle, the typed daemon API and
    the [newton serve] socket loop. *)
module Service = Newton_service
