(** The [Newton] umbrella: the one module external users open.

    Re-exports the full public surface — query DSL ({!Query},
    {!Catalog}), compiler ({!Compiler}), runtime ({!Runtime},
    {!Parallel_engine}), telemetry ({!Telemetry}), trace tooling
    ({!Trace}), and the {!Device} / {!Parallel_device} / {!Network}
    facades — so programs never depend on [Newton_*] internal library
    names. *)

include module type of struct
  include Newton_core.Newton
end

(** Runtime internals (engines, analyzer, introspection) for users who
    need more than the facades expose. *)
module Runtime = Newton_runtime

(** Capture-file ingestion: pcap/pcapng readers, the frame decoder,
    pcap export, and the paced streaming driver. *)
module Ingest = Newton_ingest

(** Static query/IR/placement analysis: diagnostics ([Diag]), the pass
    registry and driver ([Check]) behind [newton check] and the
    deployment admission gate. *)
module Analysis = Newton_analysis

(** The controller service: intent lifecycle, the typed daemon API and
    the [newton serve] socket loop. *)
module Service = Newton_service
