(** Tests for the exact packet-space solver ({!Newton_analysis.Space})
    and the space/shard pass families (NA090–NA095).

    The solver is validated two ways: algebraic properties checked
    pointwise against the reference predicate evaluator on random
    packets, and model extraction (every model of a compiled predicate
    set satisfies the predicates under [ref_eval] semantics).  The
    passes are validated by witness replay: every witness packet a
    NA090–NA094 diagnostic carries is replayed through the runtime
    Engine (filter-clone intents with a count>0 trigger) — and through
    the interpreted P4 pipeline for NA093 — asserting the diagnosed
    behaviour actually occurs. *)

open Newton_packet
open Newton_query
module Space = Newton_analysis.Space
module Diag = Newton_analysis.Diag
module Pass = Newton_analysis.Pass
module Check = Newton_analysis.Check
module Engine = Newton_runtime.Engine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------- generators ---------------- *)

let gen_fields =
  [ Field.Src_ip; Field.Src_port; Field.Proto; Field.Tcp_flags; Field.Dns_qr ]

let gen_atom =
  QCheck.Gen.(
    let* field = oneofl gen_fields in
    let fm = Field.full_mask field in
    let* mask = oneofl [ fm; fm land 0xFF00; fm land 0x0F0F; fm land 0x3 ] in
    let* op = oneofl Ast.[ Eq; Neq; Gt; Ge; Lt; Le ] in
    (* values straddle the mask range, including unreachable ones *)
    let* value = int_bound (min max_int (fm + (fm / 2) + 2)) in
    return (Ast.Cmp { field; mask; op; value }))

let gen_packet =
  QCheck.Gen.(
    let* seed = int_bound 0x3FFFFFFF in
    let pkt = Packet.create ~ts:0.0 () in
    let st = ref seed in
    List.iter
      (fun f ->
        st := (!st * 1103515245) + 12345;
        Packet.set pkt f (!st land Field.full_mask f))
      Field.all;
    return pkt)

let arb_atom = QCheck.make gen_atom
let arb_preds n = QCheck.make QCheck.Gen.(list_size (int_bound n) gen_atom)
let arb_packet = QCheck.make gen_packet

(* Narrow-field atoms for the properties that take complements and
   differences: an order predicate on a w-bit field compiles to up to w
   cubes, and compl/diff multiply cube counts, so 32-bit fields make
   those properties churn toward the cube budget instead of testing
   anything.  8-bit fields keep every derived set small. *)
let gen_atom_narrow =
  QCheck.Gen.(
    let* field = oneofl [ Field.Proto; Field.Tcp_flags; Field.Icmp_type; Field.Dns_qr ] in
    let fm = Field.full_mask field in
    let* mask = oneofl [ fm; fm land 0x0F; fm land 0x3 ] in
    let* op = oneofl Ast.[ Eq; Neq; Gt; Ge; Lt; Le ] in
    let* value = int_bound (min max_int (fm + (fm / 2) + 2)) in
    return (Ast.Cmp { field; mask; op; value }))

let arb_atom_narrow = QCheck.make gen_atom_narrow

let arb_preds_narrow n =
  QCheck.make QCheck.Gen.(list_size (int_bound n) gen_atom_narrow)

let holds = Space.pred_holds

let preds_hold preds pkt = List.for_all (fun p -> holds p pkt) preds

(* ---------------- solver: pointwise semantics ---------------- *)

let prop_atom_matches_ref_eval =
  QCheck.Test.make ~count:2000 ~name:"atom membership = ref_eval"
    (QCheck.pair arb_atom arb_packet)
    (fun (pred, pkt) -> Space.mem (Space.of_pred pred) pkt = holds pred pkt)

let prop_conjunction =
  QCheck.Test.make ~count:500 ~name:"of_preds = conjunction"
    (QCheck.pair (arb_preds 4) arb_packet)
    (fun (preds, pkt) ->
      try Space.mem (Space.of_preds preds) pkt = preds_hold preds pkt
      with Space.Too_complex -> QCheck.assume_fail ())

let prop_boolean_algebra =
  QCheck.Test.make ~count:300 ~name:"inter/union/diff/compl are pointwise"
    (QCheck.triple arb_atom_narrow arb_atom_narrow arb_packet)
    (fun (pa, pb, pkt) ->
      try
        let a = Space.of_pred pa and b = Space.of_pred pb in
        let ma = Space.mem a pkt and mb = Space.mem b pkt in
        Space.mem (Space.inter a b) pkt = (ma && mb)
        && Space.mem (Space.union a b) pkt = (ma || mb)
        && Space.mem (Space.diff a b) pkt = (ma && not mb)
        && Space.mem (Space.compl a) pkt = not ma
      with Space.Too_complex -> QCheck.assume_fail ())

let prop_model_satisfies =
  QCheck.Test.make ~count:500 ~name:"model satisfies its predicates"
    (arb_preds 4) (fun preds ->
      try
        match Space.model (Space.of_preds preds) with
        | None -> true
        | Some pkt -> preds_hold preds pkt
      with Space.Too_complex -> QCheck.assume_fail ())

let prop_subset_is_containment =
  QCheck.Test.make ~count:300 ~name:"subset decides containment"
    (QCheck.triple (arb_preds_narrow 2) (arb_preds_narrow 2) arb_packet)
    (fun (pa, pb, pkt) ->
      try
        let a = Space.of_preds pa and b = Space.of_preds pb in
        (* subset a b means every member of a is in b: check on pkt *)
        (not (Space.subset a b))
        || (not (Space.mem a pkt))
        || Space.mem b pkt
      with Space.Too_complex -> QCheck.assume_fail ())

(* ---------------- solver: boundaries ---------------- *)

let test_atom_boundaries () =
  let sp = Field.Src_port in
  let a op v = Space.atom sp 0xFFFF op v in
  checkb "x < 0 empty" true (Space.is_empty (a Ast.Lt 0));
  checkb "x <= 0xFFFF universe" true (Space.is_universe (a Ast.Le 0xFFFF));
  checkb "x > 0xFFFF empty" true (Space.is_empty (a Ast.Gt 0xFFFF));
  checkb "x > 70000 empty (over-wide value)" true
    (Space.is_empty (a Ast.Gt 70000));
  checkb "x >= 0 universe" true (Space.is_universe (a Ast.Ge 0));
  checkb "eq outside mask empty" true
    (Space.is_empty (Space.atom sp 0xFF00 Ast.Eq 0x1234));
  checkb "neq outside mask universe" true
    (Space.is_universe (Space.atom sp 0xFF00 Ast.Neq 0x1234));
  (* masked order predicate: (x & 0xF0) < 0x20 holds iff the masked
     value is 0x00 or 0x10, whatever the unmasked bits are *)
  let m = Space.atom sp 0xF0 Ast.Lt 0x20 in
  let pkt v =
    let p = Packet.create () in
    Packet.set p sp v;
    p
  in
  checkb "0x10f member" true (Space.mem m (pkt 0x10F));
  checkb "0x11f member" true (Space.mem m (pkt 0x11F));
  checkb "0x9f not member" false (Space.mem m (pkt 0x9F));
  checkb "0x25 not member" false (Space.mem m (pkt 0x25));
  (* interval via conjunction is exact *)
  let band = Space.inter (a Ast.Ge 100) (a Ast.Le 101) in
  checkb "100 in [100,101]" true (Space.mem band (pkt 100));
  checkb "101 in [100,101]" true (Space.mem band (pkt 101));
  checkb "99 out" false (Space.mem band (pkt 99));
  checkb "102 out" false (Space.mem band (pkt 102));
  checkb "[100,101] minus both endpoints empty" true
    (Space.is_empty
       (Space.diff band
          (Space.union (a Ast.Eq 100) (a Ast.Eq 101))))

let test_cross_mask_exactness () =
  (* (sport & 0xFF00) == 0x1200 && sport == 0x1100 is unsatisfiable,
     which per-(field,mask) interval tracking cannot see. *)
  let s =
    Space.of_preds
      [
        Ast.Cmp { field = Field.Src_port; mask = 0xFF00; op = Ast.Eq; value = 0x1200 };
        Ast.Cmp { field = Field.Src_port; mask = 0xFFFF; op = Ast.Eq; value = 0x1100 };
      ]
  in
  checkb "cross-mask contradiction is empty" true (Space.is_empty s);
  let s' =
    Space.of_preds
      [
        Ast.Cmp { field = Field.Src_port; mask = 0xFF00; op = Ast.Eq; value = 0x1200 };
        Ast.Cmp { field = Field.Src_port; mask = 0xFFFF; op = Ast.Eq; value = 0x1234 };
      ]
  in
  checkb "consistent cross-mask pair is satisfiable" false (Space.is_empty s')

(* ---------------- witness replay through the Engine ---------------- *)

(* A filter-clone probe intent: does the runtime Engine let [pkt]
   through [preds]?  The clone reduces on dip with a count>0 trigger,
   so any admitted packet exports a report. *)
let engine_sees preds pkt =
  let dip = Ast.key Field.Dst_ip in
  let probe =
    (* one Filter per predicate: a single mixed-operator filter is not
       decomposable, and the originating branches split theirs too *)
    Ast.chain ~id:990 ~name:"probe" ~description:""
      (List.map (fun p -> Ast.Filter [ p ]) preds
       @ [
           Ast.Map [ dip ];
           Ast.Reduce { keys = [ dip ]; agg = Ast.Count };
           Ast.Filter [ Ast.result_gt 0 ];
           Ast.Map [ dip ];
         ])
  in
  let e = Engine.create ~switch_id:0 () in
  let _ = Engine.install e (Newton_compiler.Compose.compile probe) in
  Engine.process_packet e (Packet.with_ts pkt 0.01);
  Engine.report_count e > 0

let branch_preds branch = List.map snd (Ast.cmp_atoms branch)

let branch_admits branch pkt =
  let preds = branch_preds branch in
  let statically = preds_hold preds pkt in
  (* engine and solver must agree on every replay *)
  checkb "engine agrees with solver on witness" statically
    (engine_sees preds pkt);
  statically

let query_admits (q : Ast.t) pkt =
  List.exists (fun b -> branch_admits b pkt) q.Ast.branches

(* ---------------- NA090: exact unsatisfiability ---------------- *)

let cross_mask_contra =
  Ast.Filter
    [
      Ast.Cmp { field = Field.Src_port; mask = 0xFF00; op = Ast.Eq; value = 0x1200 };
      Ast.Cmp { field = Field.Src_port; mask = 0xFFFF; op = Ast.Eq; value = 0x1100 };
    ]

let dip = Ast.key Field.Dst_ip

let tail keys th =
  [
    Ast.Map keys;
    Ast.Reduce { keys; agg = Ast.Count };
    Ast.Filter [ Ast.result_gt th ];
    Ast.Map keys;
  ]

let test_na090_cross_mask () =
  let q =
    Ast.chain ~id:950 ~name:"contra" ~description:""
      (cross_mask_contra :: tail [ dip ] 5)
  in
  let ds = Check.check_query q in
  checkb "NA090 error" true
    (List.exists
       (fun d -> d.Diag.code = "NA090" && d.Diag.severity = Diag.Error)
       ds);
  (* the interval pass cannot see this one *)
  checkb "NA020 blind to cross-mask" false
    (List.exists (fun d -> d.Diag.code = "NA020") ds);
  match List.find_opt (fun d -> d.Diag.code = "NA090") ds with
  | None -> Alcotest.fail "NA090 expected"
  | Some d -> (
      match (d.Diag.witness, d.Diag.span) with
      | Some pkt, Diag.Branch b ->
          let preds = branch_preds (List.nth q.Ast.branches b) in
          let failing = List.filter (fun p -> not (holds p pkt)) preds in
          checki "near-miss witness fails exactly one predicate" 1
            (List.length failing);
          (* diagnosed behaviour: the branch never fires — not even for
             its own near-miss witness *)
          checkb "engine drops the witness" false
            (engine_sees preds pkt);
          (* relaxing the failing predicate admits it *)
          let relaxed = List.filter (fun p -> holds p pkt) preds in
          checkb "engine admits the witness once relaxed" true
            (engine_sees relaxed pkt)
      | _ -> Alcotest.fail "NA090 should carry a witness and a branch span")

(* ---------------- NA091: branch subsumption ---------------- *)

let test_na091_subsumed_branch () =
  let syn =
    Ast.Filter
      [ Ast.field_is Field.Proto 6; Ast.field_is Field.Tcp_flags 2 ]
  in
  let tcp = Ast.Filter [ Ast.field_is Field.Proto 6 ] in
  let q =
    Ast.make ~id:951 ~name:"subsumed" ~description:""
      ~combine:{ Ast.op = Ast.Sub; threshold = Ast.result_gt 10 }
      [ tcp :: tail [ dip ] 0; syn :: tail [ dip ] 0 ]
  in
  let ds = Check.check_query q in
  match
    List.find_opt
      (fun d -> d.Diag.code = "NA091" && d.Diag.severity = Diag.Warning)
      ds
  with
  | None -> Alcotest.fail "NA091 expected"
  | Some d -> (
      checkb "span is the later branch" true (d.Diag.span = Diag.Branch 1);
      match d.Diag.witness with
      | None -> Alcotest.fail "NA091 should carry a witness"
      | Some pkt ->
          (* the witness reaches only the earlier branch *)
          checkb "witness passes the subsuming branch" true
            (branch_admits (List.nth q.Ast.branches 0) pkt);
          checkb "witness fails the subsumed branch" false
            (branch_admits (List.nth q.Ast.branches 1) pkt))

(* ---------------- NA092: cross-intent shadowing ---------------- *)

let test_na092_shadowed_intent () =
  let narrow =
    Ast.chain ~id:952 ~name:"dns_req" ~description:""
      (Ast.Filter
         [ Ast.field_is Field.Proto 17; Ast.field_is Field.Dst_port 53 ]
      :: tail [ dip ] 5)
  in
  let broad =
    Ast.chain ~id:953 ~name:"udp_all" ~description:""
      (Ast.Filter [ Ast.field_is Field.Proto 17 ] :: tail [ dip ] 5)
  in
  let ds = Check.check_queries [ narrow; broad ] in
  match
    List.find_opt
      (fun d -> d.Diag.code = "NA092" && d.Diag.query_id = 952)
      ds
  with
  | None -> Alcotest.fail "NA092 expected on the narrow intent"
  | Some d -> (
      checkb "info severity" true (d.Diag.severity = Diag.Info);
      match d.Diag.witness with
      | None -> Alcotest.fail "NA092 should carry a witness"
      | Some pkt ->
          checkb "witness reaches the shadowing peer" true
            (query_admits broad pkt);
          checkb "witness misses the shadowed intent" false
            (query_admits narrow pkt))

let test_na092_skips_unfiltered_peers () =
  (* An intent with no front filter matches everything; flagging every
     co-resident intent as shadowed by it would be noise. *)
  let narrow =
    Ast.chain ~id:954 ~name:"narrow" ~description:""
      (Ast.Filter [ Ast.field_is Field.Proto 17 ] :: tail [ dip ] 5)
  in
  let unfiltered =
    Ast.chain ~id:955 ~name:"everything" ~description:"" (tail [ dip ] 5)
  in
  let ds = Check.check_queries [ narrow; unfiltered ] in
  checkb "no NA092 against a match-all peer" false
    (List.exists (fun d -> d.Diag.code = "NA092") ds)

(* ---------------- NA093: exact recirculation, p4sim replay ------- *)

let overlay_on_wire_base witness =
  (* Witness packets zero every unconstrained field; give them a
     parseable spine (IPv4, sane lengths) without touching any field
     the witness pins. *)
  let base = Packet.make ~ts:0.0 () in
  List.iter
    (fun f ->
      let v = Packet.get witness f in
      if v <> 0 then Packet.set base f v)
    Field.all;
  base

let replay_passes (q : Ast.t) pkt =
  let layout = Newton_p4gen.Emit.default_layout in
  let compiled = Newton_compiler.Compose.compile q in
  match Newton_p4gen.Rules.entries ~layout compiled with
  | Error issue ->
      Alcotest.fail (Newton_p4gen.Rules.issue_to_string issue)
  | Ok rules -> (
      let interp =
        Newton_p4sim.Interp.create
          (Newton_p4sim.P4parse.parse (Newton_p4gen.Emit.program ~layout ()))
      in
      (* NA093 speaks about classifier overlap.  The newton_recirc
         cancel entry is the orthogonal guard short-circuit: a single
         witness packet cannot trip branch 0's count threshold, so the
         guard stop would clear the pending bitmap and mask the very
         recirculation under test.  Replay without it. *)
      Newton_p4sim.Interp.install interp
        (List.filter
           (fun (r : Newton_p4gen.Rules.entry) ->
             r.Newton_p4gen.Rules.table <> "newton_recirc")
           rules);
      match Newton_p4sim.Phv.synthesize pkt with
      | Error why ->
          Alcotest.fail
            ("witness not wire-encodable: "
            ^ Newton_p4sim.Phv.error_to_string why)
      | Ok bytes ->
          ignore
            (Newton_p4sim.Interp.run interp
               ~ingress_port:(Packet.get pkt Field.Ingress_port)
               bytes);
          Newton_p4sim.Interp.last_passes interp)

let test_na093_witness_recirculates () =
  let q = Catalog.q12 () in
  let ds = Check.check_query q in
  match List.find_opt (fun d -> d.Diag.code = "NA093") ds with
  | None -> Alcotest.fail "NA093 expected on Q12"
  | Some d -> (
      match d.Diag.witness with
      | None -> Alcotest.fail "NA093 should carry a witness"
      | Some w ->
          let pkt = overlay_on_wire_base w in
          let expected =
            Newton_p4gen.Rules.overlap_passes
              (Newton_compiler.Compose.compile q)
          in
          checkb "diagnosed overlap exceeds one pass" true (expected > 1);
          checki "interpreted pipeline recirculates exactly as diagnosed"
            expected (replay_passes q pkt))

let test_na093_quiet_on_disjoint_branches () =
  (* Q6 (SYN minus FIN) has disjoint branch classifiers: no packet is
     both, so no recirculation and no NA093. *)
  let ds = Check.check_query (Catalog.q6 ()) in
  checkb "no NA093 on disjoint branches" false
    (List.exists (fun d -> d.Diag.code = "NA093") ds)

(* ---------------- NA094: coverage gap ---------------- *)

let test_na094_coverage_gap () =
  let tcp =
    Ast.chain ~id:956 ~name:"tcp_only" ~description:""
      (Ast.Filter [ Ast.field_is Field.Proto 6 ] :: tail [ dip ] 5)
  in
  let udp =
    Ast.chain ~id:957 ~name:"udp_only" ~description:""
      (Ast.Filter [ Ast.field_is Field.Proto 17 ] :: tail [ dip ] 5)
  in
  let ds = Check.check_queries [ tcp; udp ] in
  let gaps = List.filter (fun d -> d.Diag.code = "NA094") ds in
  checki "one gap report per deployment" 1 (List.length gaps);
  let d = List.hd gaps in
  checkb "emitted by the first intent" true (d.Diag.query_id = 956);
  match d.Diag.witness with
  | None -> Alcotest.fail "NA094 should carry a witness"
  | Some pkt ->
      checkb "witness matches no installed intent" false
        (query_admits tcp pkt || query_admits udp pkt)

let test_na094_quiet_when_covered () =
  let tcp =
    Ast.chain ~id:956 ~name:"tcp_only" ~description:""
      (Ast.Filter [ Ast.field_is Field.Proto 6 ] :: tail [ dip ] 5)
  in
  let rest =
    Ast.chain ~id:957 ~name:"not_tcp" ~description:""
      (Ast.Filter
         [ Ast.Cmp { field = Field.Proto; mask = 0xFF; op = Ast.Neq; value = 6 } ]
      :: tail [ dip ] 5)
  in
  let ds = Check.check_queries [ tcp; rest ] in
  checkb "no NA094 when the set covers every packet" false
    (List.exists (fun d -> d.Diag.code = "NA094") ds)

(* ---------------- NA095: shard coverage ---------------- *)

let shard_cfg shard = { Pass.default_config with Pass.shard = Some shard }

let na095 cfg q =
  List.exists (fun d -> d.Diag.code = "NA095" && d.Diag.severity = Diag.Warning)
    (Check.check_query ~cfg q)

let test_na095_shard_coverage () =
  let by_dip = Ast.chain ~id:958 ~name:"per_dst" ~description:"" (tail [ dip ] 5) in
  checkb "hashing a non-key field splits state" true
    (na095 (shard_cfg (Pass.Shard_fields [ Field.Src_ip ])) by_dip);
  checkb "hashing the key field is safe" false
    (na095 (shard_cfg (Pass.Shard_fields [ Field.Dst_ip ])) by_dip);
  checkb "flow shard carries its own story" false
    (na095 (shard_cfg Pass.Shard_flow) by_dip);
  checkb "custom shard cannot be proven" true
    (na095 (shard_cfg Pass.Shard_custom) by_dip);
  (* a masked key hashes unmasked low bits into the domain choice *)
  let masked = Ast.key ~mask:0xFFFFFF00 Field.Dst_ip in
  let by_prefix =
    Ast.chain ~id:959 ~name:"per_prefix" ~description:"" (tail [ masked ] 5)
  in
  checkb "masked key under a full-value hash splits state" true
    (na095 (shard_cfg (Pass.Shard_fields [ Field.Dst_ip ])) by_prefix)

(* ---------------- witness replay sweep over a mutated corpus ------ *)

(* Every catalog intent, plus an unsatisfiable mutant of each (a
   cross-mask contradiction prepended to its first branch).  Checked as
   one deployment, every NA090–NA094 witness in the report is replayed
   through the Engine probe; NA093 witnesses additionally drive the
   interpreted P4 pipeline. *)
let mutated_corpus () =
  let base = Catalog.all () @ Catalog.extras () in
  let mutants =
    List.map
      (fun (q : Ast.t) ->
        match q.Ast.branches with
        | first :: rest ->
            {
              q with
              Ast.id = q.Ast.id + 800;
              name = q.Ast.name ^ "_unsat";
              branches = (cross_mask_contra :: first) :: rest;
            }
        | [] -> q)
      base
  in
  base @ mutants

let test_witness_replay_sweep () =
  let corpus = mutated_corpus () in
  let by_id id = List.find (fun (q : Ast.t) -> q.Ast.id = id) corpus in
  let diags = Check.check_queries corpus in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let code = d.Diag.code in
      if String.length code = 5 && String.sub code 0 4 = "NA09" then begin
        Hashtbl.replace seen code
          (1 + Option.value (Hashtbl.find_opt seen code) ~default:0);
        let q = by_id d.Diag.query_id in
        match (code, d.Diag.witness) with
        | "NA090", Some pkt -> (
            match d.Diag.span with
            | Diag.Branch b ->
                let preds = branch_preds (List.nth q.Ast.branches b) in
                checki
                  (Printf.sprintf "%s: near-miss fails exactly one pred"
                     q.Ast.name)
                  1
                  (List.length
                     (List.filter (fun p -> not (holds p pkt)) preds));
                checkb "engine drops the branch's witness" false
                  (engine_sees preds pkt)
            | _ -> Alcotest.fail "NA090 span should be a branch")
        | "NA091", Some pkt -> (
            match d.Diag.span with
            | Diag.Branch j ->
                checkb "witness fails the subsumed branch" false
                  (branch_admits (List.nth q.Ast.branches j) pkt);
                checkb "witness passes an earlier branch" true
                  (List.exists
                     (fun i -> branch_admits (List.nth q.Ast.branches i) pkt)
                     (List.init j Fun.id))
            | _ -> Alcotest.fail "NA091 span should be a branch")
        | "NA092", Some pkt ->
            checkb
              (Printf.sprintf "%s: shadow witness misses the intent"
                 q.Ast.name)
              false (query_admits q pkt);
            checkb "shadow witness reaches some peer" true
              (List.exists
                 (fun (p : Ast.t) -> p.Ast.id <> q.Ast.id && query_admits p pkt)
                 corpus)
        | "NA093", Some pkt ->
            let expected =
              Newton_p4gen.Rules.overlap_passes
                (Newton_compiler.Compose.compile q)
            in
            checkb "diagnosed overlap exceeds one pass" true (expected > 1);
            checki
              (Printf.sprintf "%s: witness recirculates as diagnosed"
                 q.Ast.name)
              expected
              (replay_passes q (overlay_on_wire_base pkt))
        | "NA094", Some pkt ->
            List.iter
              (fun (p : Ast.t) ->
                checkb
                  (Printf.sprintf "gap witness misses %s" p.Ast.name)
                  false (query_admits p pkt))
              corpus
        | _, None ->
            (* NA090's witness search can come up dry on multi-way
               conflicts; everything else must carry one. *)
            checkb (code ^ " may only lack a witness if NA090") true
              (code = "NA090")
        | _ -> ()
      end)
    diags;
  (* The sweep must actually exercise the exact passes.  NA091 and
     NA094 are exercised by their targeted tests instead: the catalog
     has no subsumed branches, and on a 30+-intent deployment the
     coverage complement exceeds the cube budget, so NA094 stays
     silent by design (exactness by refusal). *)
  List.iter
    (fun code ->
      checkb (code ^ " demonstrated by the corpus") true
        (Hashtbl.mem seen code))
    [ "NA090"; "NA092"; "NA093" ]

(* ---------------- stable report ordering ---------------- *)

let test_stable_report_order () =
  let corpus = mutated_corpus () in
  let diags = Check.check_queries corpus in
  let json_order diags =
    match
      Newton_util.Json.member "diagnostics" (Check.report_to_json diags)
    with
    | Some (Newton_util.Json.List items) ->
        List.map Newton_util.Json.to_string items
    | _ -> Alcotest.fail "diagnostics array expected"
  in
  (* registration/severity order in, (query, span, code) order out:
     reversing the input must not change the artifact *)
  Alcotest.(check (list string))
    "report order independent of pass emission order" (json_order diags)
    (json_order (List.rev diags));
  let keys =
    List.map
      (fun d -> (d.Diag.query_id, d.Diag.query_name))
      (List.sort Diag.compare_stable diags)
  in
  checkb "stable order groups by query" true
    (keys = List.sort compare keys)

let suite =
  [
    ("atom boundaries", `Quick, test_atom_boundaries);
    ("cross-mask exactness", `Quick, test_cross_mask_exactness);
    ("NA090 cross-mask unsat + witness", `Quick, test_na090_cross_mask);
    ("NA091 subsumed branch + witness", `Quick, test_na091_subsumed_branch);
    ("NA092 shadowed intent + witness", `Quick, test_na092_shadowed_intent);
    ("NA092 skips unfiltered peers", `Quick, test_na092_skips_unfiltered_peers);
    ("NA093 witness recirculates (p4sim)", `Quick,
     test_na093_witness_recirculates);
    ("NA093 quiet on disjoint branches", `Quick,
     test_na093_quiet_on_disjoint_branches);
    ("NA094 coverage gap + witness", `Quick, test_na094_coverage_gap);
    ("NA094 quiet when covered", `Quick, test_na094_quiet_when_covered);
    ("NA095 shard coverage", `Quick, test_na095_shard_coverage);
    ("witness replay sweep", `Quick, test_witness_replay_sweep);
    ("stable report order", `Quick, test_stable_report_order);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_atom_matches_ref_eval;
        prop_conjunction;
        prop_boolean_algebra;
        prop_model_satisfies;
        prop_subset_is_containment;
      ]
