(** Tests for Newton_analysis: the catalog is diagnostically clean
    (golden baseline), one deliberately bad intent per diagnostic
    code, JSON report stability, the deployment admission gate, and a
    check-never-raises property over generated queries. *)

open Newton_packet
open Newton_query
module Diag = Newton_analysis.Diag
module Pass = Newton_analysis.Pass
module Check = Newton_analysis.Check

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let codes diags = List.map (fun d -> d.Diag.code) diags
let has code diags = List.mem code (codes diags)

let has_sev code sev diags =
  List.exists (fun d -> d.Diag.code = code && d.Diag.severity = sev) diags

(* ---------------- construction helpers ---------------- *)

let dip = Ast.key Field.Dst_ip
let sip = Ast.key Field.Src_ip
let sport = Ast.key Field.Src_port

let reduce keys = Ast.Reduce { keys; agg = Ast.Count }

(* The canonical well-formed tail: map → reduce → threshold → project. *)
let tail keys th =
  [ Ast.Map keys; reduce keys; Ast.Filter [ Ast.result_gt th ]; Ast.Map keys ]

let chain1 prims = Ast.chain ~id:900 ~name:"bad" ~description:"" prims

let mk ?combine branches =
  Ast.make ?combine ~id:900 ~name:"bad" ~description:"" branches

let sub_combine = { Ast.op = Ast.Sub; threshold = Ast.result_gt 10 }

(* ---------------- golden: the catalog is clean ---------------- *)

let all_queries () = Catalog.all () @ Catalog.extras ()

(* Clean = no warnings or errors.  Info-severity notes (e.g. NA082's
   recirculation-bandwidth advisory) are expected on some catalog
   queries and survive --strict, so they don't break the golden. *)
let actionable diags =
  List.filter (fun d -> d.Diag.severity <> Diag.Info) diags

let test_catalog_clean () =
  List.iter
    (fun q ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s clean" q.Ast.name)
        []
        (codes (actionable (Check.check_query q))))
    (all_queries ())

let test_catalog_clean_together () =
  checki "no actionable diagnostics across the combined set" 0
    (List.length (actionable (Check.check_queries (all_queries ()))))

let test_na093_recirculation_info () =
  (* Q12's branches overlap (a packet can be both DNS query and
     response side), so the space pass proves the extra pipeline pass —
     as an Info with a witness, never an error. *)
  let ds = Check.check_query (Catalog.q12 ()) in
  checkb "NA093 info on overlapping-branch query" true
    (has_sev "NA093" Diag.Info ds);
  checkb "no NA093 error" true (not (has_sev "NA093" Diag.Error ds));
  match List.find_opt (fun d -> d.Diag.code = "NA093") ds with
  | None -> Alcotest.fail "NA093 diagnostic expected"
  | Some d -> checkb "NA093 carries a witness" true (d.Diag.witness <> None)

(* ---------------- structure (NA001-NA009) ---------------- *)

let test_na001_empty_query () =
  checkb "NA001" true (has_sev "NA001" Diag.Error (Check.check_query (mk [])))

let test_na002_empty_branch () =
  checkb "NA002" true
    (has_sev "NA002" Diag.Error (Check.check_query (mk [ [] ])))

let test_na003_missing_combine () =
  let q = mk [ tail [ dip ] 5; tail [ sip ] 5 ] in
  checkb "NA003" true (has_sev "NA003" Diag.Error (Check.check_query q))

let test_na004_combine_without_branches () =
  let q = mk ~combine:sub_combine [ tail [ dip ] 5 ] in
  checkb "NA004" true (has_sev "NA004" Diag.Error (Check.check_query q))

let test_na005_threshold_before_state () =
  let q = chain1 [ Ast.Filter [ Ast.result_gt 5 ]; Ast.Map [ dip ] ] in
  checkb "NA005" true (has_sev "NA005" Diag.Error (Check.check_query q))

let test_na006_empty_keys () =
  let q = chain1 [ Ast.Map [] ] in
  checkb "NA006" true (has_sev "NA006" Diag.Error (Check.check_query q))

let test_na007_combine_branch_without_reduce () =
  let q = mk ~combine:sub_combine [ tail [ dip ] 5; [ Ast.Map [ dip ] ] ] in
  checkb "NA007" true (has_sev "NA007" Diag.Error (Check.check_query q))

let test_na008_combine_field_threshold () =
  let combine = { Ast.op = Ast.Sub; threshold = Ast.field_is Field.Proto 6 } in
  let q = mk ~combine [ tail [ dip ] 5; tail [ dip ] 5 ] in
  checkb "NA008" true (has_sev "NA008" Diag.Error (Check.check_query q))

let test_na009_combine_arity () =
  let q =
    mk ~combine:sub_combine [ tail [ dip ] 5; tail [ dip ] 5; tail [ dip ] 5 ]
  in
  checkb "NA009" true (has_sev "NA009" Diag.Error (Check.check_query q))

(* ---------------- widths (NA010-NA014) ---------------- *)

let test_na010_mask_wider_than_field () =
  let q = chain1 (tail [ Ast.key ~mask:0x1FFFF Field.Src_port ] 5) in
  checkb "NA010" true (has_sev "NA010" Diag.Error (Check.check_query q))

let test_na011_zero_mask () =
  let q = chain1 (tail [ Ast.key ~mask:0 Field.Dst_ip ] 5) in
  checkb "NA011" true (has_sev "NA011" Diag.Error (Check.check_query q))

let test_na012_value_too_wide () =
  let pred =
    Ast.Cmp { field = Field.Src_port; mask = 0xFFFF; op = Ast.Gt; value = 70000 }
  in
  let q = chain1 (Ast.Filter [ pred ] :: tail [ dip ] 5) in
  checkb "NA012" true (has_sev "NA012" Diag.Error (Check.check_query q))

let test_na013_eq_value_outside_mask () =
  let pred =
    Ast.Cmp { field = Field.Src_port; mask = 0xFF00; op = Ast.Eq; value = 0x1234 }
  in
  let q = chain1 (Ast.Filter [ pred ] :: tail [ dip ] 5) in
  checkb "NA013" true (has_sev "NA013" Diag.Error (Check.check_query q))

let test_na014_packed_filter_too_wide () =
  (* Two equality predicates summing to 40 mask bits, placed mid-chain
     so newton_init absorption cannot rescue them. *)
  let wide =
    Ast.Filter
      [ Ast.field_is Field.Src_ip 0x0A000001; Ast.field_is Field.Proto 6 ]
  in
  let q = chain1 ([ Ast.Map [ sip ] ] @ [ wide ] @ tail [ sip ] 5) in
  checkb "NA014" true (has_sev "NA014" Diag.Warning (Check.check_query q))

let test_na015_icmp_field_without_proto () =
  (* Filtering on icmp.type without pinning the protocol silently
     matches the zero type the decoder leaves on non-ICMP packets. *)
  let q =
    chain1 (Ast.Filter [ Ast.field_is Field.Icmp_type 128 ] :: tail [ sip ] 5)
  in
  checkb "NA015 filter" true (has_sev "NA015" Diag.Warning (Check.check_query q));
  (* Keying on icmp.code without the pin is the same mistake. *)
  let q = chain1 (tail [ Ast.key Field.Icmp_code ] 5) in
  checkb "NA015 key" true (has_sev "NA015" Diag.Warning (Check.check_query q));
  (* Pinning the protocol anywhere in the branch silences it. *)
  let pinned =
    chain1
      (Ast.Filter
         [
           Ast.field_is Field.Proto Field.Protocol.icmpv6;
           Ast.field_is Field.Icmp_type 128;
         ]
      :: tail [ sip ] 5)
  in
  checkb "pinned branch is quiet" false (has "NA015" (Check.check_query pinned))

(* ---------------- predicates (NA020-NA022) ---------------- *)

let gt v = Ast.Cmp { field = Field.Src_port; mask = 0xFFFF; op = Ast.Gt; value = v }
let lt v = Ast.Cmp { field = Field.Src_port; mask = 0xFFFF; op = Ast.Lt; value = v }

let test_na020_unsat_conjunction () =
  let q = chain1 (Ast.Filter [ gt 100; lt 50 ] :: tail [ dip ] 5) in
  checkb "NA020" true (has_sev "NA020" Diag.Error (Check.check_query q))

let test_na021_tautology () =
  let always =
    Ast.Cmp { field = Field.Src_port; mask = 0xFFFF; op = Ast.Ge; value = 0 }
  in
  let q = chain1 (Ast.Filter [ always ] :: tail [ dip ] 5) in
  checkb "NA021" true (has_sev "NA021" Diag.Warning (Check.check_query q))

let test_na022_implied_filter () =
  let q =
    chain1
      (Ast.Filter [ gt 100 ] :: Ast.Map [ dip; sport ] :: Ast.Filter [ gt 50 ]
       :: tail [ dip ] 5)
  in
  checkb "NA022" true (has_sev "NA022" Diag.Warning (Check.check_query q))

(* ---------------- dataflow (NA025-NA026) ---------------- *)

let test_na025_partially_dead_map () =
  let q =
    chain1
      [
        Ast.Map [ dip; sport ];
        reduce [ dip ];
        Ast.Filter [ Ast.result_gt 5 ];
        Ast.Map [ dip ];
      ]
  in
  checkb "NA025" true (has_sev "NA025" Diag.Warning (Check.check_query q))

let test_na026_dead_map () =
  let q =
    chain1
      [
        Ast.Map [ sport ];
        Ast.Map [ dip ];
        reduce [ dip ];
        Ast.Filter [ Ast.result_gt 5 ];
        Ast.Map [ dip ];
      ]
  in
  checkb "NA026" true (has_sev "NA026" Diag.Warning (Check.check_query q))

(* ---------------- thresholds (NA030-NA031) ---------------- *)

let test_na030_unreachable_threshold () =
  let q =
    chain1
      [
        Ast.Map [ dip ];
        reduce [ dip ];
        Ast.Filter [ Ast.Result_cmp { op = Ast.Gt; value = 0x7FFFFFFF } ];
        Ast.Map [ dip ];
      ]
  in
  checkb "NA030" true (has_sev "NA030" Diag.Error (Check.check_query q))

let test_na031_trivial_threshold () =
  let q =
    chain1
      [
        Ast.Map [ dip ];
        reduce [ dip ];
        Ast.Filter [ Ast.Result_cmp { op = Ast.Ge; value = 0 } ];
        Ast.Map [ dip ];
      ]
  in
  checkb "NA031" true (has_sev "NA031" Diag.Warning (Check.check_query q))

(* ---------------- sketches (NA040-NA042) ---------------- *)

let narrow registers =
  {
    Pass.default_config with
    Pass.options =
      { Newton_compiler.Decompose.default_options with registers };
  }

let test_na040_bloom_fpr () =
  let diags = Check.check_query ~cfg:(narrow 512) (Catalog.q3 ()) in
  checkb "NA040" true (has_sev "NA040" Diag.Warning diags)

let test_na041_cm_bounds () =
  let q = chain1 (tail [ dip ] 5) in
  let diags = Check.check_query ~cfg:(narrow 128) q in
  checkb "NA041" true (has_sev "NA041" Diag.Warning diags)

let test_na042_impossible_sketch () =
  let q = chain1 (tail [ dip ] 5) in
  let diags = Check.check_query ~cfg:(narrow 0) q in
  checkb "NA042" true (has_sev "NA042" Diag.Error diags)

(* ---------------- compilability (NA045) ---------------- *)

let test_na045_uncompilable () =
  (* Structurally valid, but decompose refuses two aggregate
     predicates in one filter. *)
  let q =
    chain1
      [
        Ast.Map [ dip ];
        reduce [ dip ];
        Ast.Filter [ Ast.result_gt 5; Ast.result_gt 7 ];
        Ast.Map [ dip ];
      ]
  in
  checkb "NA045" true (has_sev "NA045" Diag.Error (Check.check_query q))

(* ---------------- capacity (NA050-NA053) ---------------- *)

let test_na050_cell_overflow () =
  let cfg = { Pass.default_config with Pass.rule_capacity = 0 } in
  let diags = Check.check_query ~cfg (Catalog.q1 ()) in
  checkb "NA050" true (has_sev "NA050" Diag.Error diags)

let test_na052_register_budget () =
  let cfg = { Pass.default_config with Pass.register_budget = 1 } in
  let diags = Check.check_query ~cfg (Catalog.q1 ()) in
  checkb "NA052" true (has_sev "NA052" Diag.Error diags)

let shallow_target =
  Pass.target ~stages_per_switch:4 ~num_switches:1 ~switch_slices:[| [ 1 ] |]
    ~slice_ranges:[| (0, 3) |] ~max_path_depth:1

let test_na053_tail_beyond_path () =
  (* Q6 needs 7 stages = 2 slices of 4; a path one switch deep cannot
     host the second. *)
  let diags = Check.check_query ~target:shallow_target (Catalog.q6 ()) in
  checkb "NA053" true (has_sev "NA053" Diag.Warning diags)

let overcommit_target =
  Pass.target ~stages_per_switch:4 ~num_switches:1
    ~switch_slices:[| [ 1; 2 ] |]
    ~slice_ranges:[| (0, 3); (4, 6) |]
    ~max_path_depth:2

let test_na051_switch_overcommit () =
  let diags = Check.check_query ~target:overcommit_target (Catalog.q6 ()) in
  checkb "NA051" true (has_sev "NA051" Diag.Warning diags)

(* ---------------- conflicts (NA060-NA061) ---------------- *)

let th_query ~id ~name th =
  Ast.chain ~id ~name ~description:"" (tail [ dip ] th)

let test_na060_shape_conflict () =
  let a = th_query ~id:901 ~name:"a" 10 and b = th_query ~id:902 ~name:"b" 20 in
  let diags = Check.check_queries [ a; b ] in
  checkb "NA060" true (has_sev "NA060" Diag.Warning diags)

let test_na061_exact_duplicate () =
  let a = th_query ~id:901 ~name:"a" 10 and b = th_query ~id:902 ~name:"b" 10 in
  let diags = Check.check_queries [ a; b ] in
  checkb "NA061" true (has_sev "NA061" Diag.Info diags)

(* ---------------- slice cuts (NA071) ---------------- *)

let test_na071_cross_slice_read () =
  (* At 4 stages per slice Q6's combine read-back lands one slice after
     the sibling's array: admitted, but it reads zeros remotely. *)
  let diags = Check.check_query ~target:overcommit_target (Catalog.q6 ()) in
  checkb "NA071" true (has_sev "NA071" Diag.Warning diags)

(* ---------------- report rendering ---------------- *)

let test_json_stability () =
  let q = chain1 (tail [ dip ] 5) in
  let d =
    Diag.make ~code:"NA011" ~severity:Diag.Error
      ~span:(Diag.Prim { branch = 0; prim = 0 })
      ~hint:"h" ~query:q "zero mask"
  in
  checks "diag json"
    "{\"code\":\"NA011\",\"severity\":\"error\",\"query_id\":900,\
     \"query_name\":\"bad\",\"span\":\"b0.p0\",\"message\":\"zero mask\",\
     \"hint\":\"h\"}"
    (Newton_util.Json.to_string (Diag.to_json d));
  let report = Check.report_to_json [ d ] in
  checks "report summary"
    "{\"errors\":1,\"warnings\":0,\"infos\":0}"
    (Newton_util.Json.to_string
       (Option.get (Newton_util.Json.member "summary" report)))

let test_exit_codes () =
  let q = chain1 (tail [ dip ] 5) in
  let err = Diag.make ~code:"NA030" ~severity:Diag.Error ~query:q "e" in
  let warn = Diag.make ~code:"NA031" ~severity:Diag.Warning ~query:q "w" in
  let info = Diag.make ~code:"NA061" ~severity:Diag.Info ~query:q "i" in
  checki "clean" 0 (Check.exit_code []);
  checki "info" 0 (Check.exit_code [ info ]);
  checki "warn" 1 (Check.exit_code [ warn; info ]);
  checki "error" 2 (Check.exit_code [ err; warn ]);
  checki "strict promotes warnings" 2 (Check.exit_code ~strict:true [ warn ]);
  checki "strict keeps clean" 0 (Check.exit_code ~strict:true [ info ])

let test_errors_sort_first () =
  let q = chain1 (Ast.Filter [ gt 100; lt 50; gt 50 ] :: tail [ dip ] 5) in
  match Check.check_query q with
  | [] -> Alcotest.fail "expected diagnostics"
  | first :: _ -> checkb "error first" true (first.Diag.severity = Diag.Error)

(* ---------------- deployment admission gate ---------------- *)

module Deploy = Newton_controller.Deploy
module Topo = Newton_network.Topo

let compile q = Newton_compiler.Compose.compile q

let unreachable_query =
  Ast.chain ~id:903 ~name:"unreachable" ~description:""
    [
      Ast.Map [ dip ];
      reduce [ dip ];
      Ast.Filter [ Ast.Result_cmp { op = Ast.Gt; value = 0x7FFFFFFF } ];
      Ast.Map [ dip ];
    ]

let trivial_query =
  Ast.chain ~id:904 ~name:"trivial" ~description:""
    [
      Ast.Map [ dip ];
      reduce [ dip ];
      Ast.Filter [ Ast.Result_cmp { op = Ast.Ge; value = 0 } ];
      Ast.Map [ dip ];
    ]

let test_deploy_rejects_errors () =
  let ctl = Deploy.create (Topo.linear 2) in
  (match Deploy.deploy ctl (compile unreachable_query) with
  | _ -> Alcotest.fail "deploy should have been rejected"
  | exception Deploy.Rejected diags ->
      checkb "carries NA030" true (has "NA030" diags));
  checki "no deployment recorded" 0 (List.length (Deploy.deployments ctl));
  List.iter
    (fun s ->
      checki
        (Printf.sprintf "switch %d has no rules" s)
        0
        (Newton_runtime.Engine.total_rules (Deploy.engine ctl s)))
    (Topo.switches (Deploy.topo ctl));
  checkb "rejection counted" true
    (Newton_telemetry.Snapshot.total "newton_analysis_rejections_total"
       (Deploy.snapshot ctl)
    >= 1.0)

let test_deploy_admits_warnings () =
  let ctl = Deploy.create (Topo.linear 2) in
  let uid, _ = Deploy.deploy ctl (compile trivial_query) in
  checkb "deployment recorded" true (Deploy.find_deployment ctl uid <> None);
  checkb "warning counted" true
    (Newton_telemetry.Snapshot.total "newton_analysis_warnings_total"
       (Deploy.snapshot ctl)
    >= 1.0)

let test_deploy_clean_counts_nothing () =
  let ctl = Deploy.create (Topo.linear 2) in
  let _ = Deploy.deploy ctl (compile (Catalog.q1 ())) in
  let snap = Deploy.snapshot ctl in
  checkb "no rejections" true
    (Newton_telemetry.Snapshot.total "newton_analysis_rejections_total" snap
    = 0.0);
  checkb "no warnings" true
    (Newton_telemetry.Snapshot.total "newton_analysis_warnings_total" snap
    = 0.0)

(* ---------------- properties ---------------- *)

(* Analysis is total: parser/constructor-accepted queries never make
   [check_query] raise, whatever the diagnostics. *)
let prop_check_never_raises =
  QCheck.Test.make ~count:200 ~name:"check_query never raises"
    Test_properties.arb_query (fun q ->
      ignore (Check.check_query q);
      true)

let prop_check_matches_validate =
  QCheck.Test.make ~count:200 ~name:"generated valid queries have no errors"
    Test_properties.arb_query (fun q ->
      not (Diag.has_errors (Check.check_query q)))

let suite =
  [
    ("catalog clean", `Quick, test_catalog_clean);
    ("catalog clean together", `Quick, test_catalog_clean_together);
    ("NA093 recirculation info", `Quick, test_na093_recirculation_info);
    ("NA001 empty query", `Quick, test_na001_empty_query);
    ("NA002 empty branch", `Quick, test_na002_empty_branch);
    ("NA003 missing combine", `Quick, test_na003_missing_combine);
    ("NA004 combine without branches", `Quick, test_na004_combine_without_branches);
    ("NA005 threshold before state", `Quick, test_na005_threshold_before_state);
    ("NA006 empty keys", `Quick, test_na006_empty_keys);
    ("NA007 branch without reduce", `Quick, test_na007_combine_branch_without_reduce);
    ("NA008 field combine threshold", `Quick, test_na008_combine_field_threshold);
    ("NA009 combine arity", `Quick, test_na009_combine_arity);
    ("NA010 wide mask", `Quick, test_na010_mask_wider_than_field);
    ("NA011 zero mask", `Quick, test_na011_zero_mask);
    ("NA012 wide value", `Quick, test_na012_value_too_wide);
    ("NA013 value outside mask", `Quick, test_na013_eq_value_outside_mask);
    ("NA014 packed filter", `Quick, test_na014_packed_filter_too_wide);
    ("NA015 icmp field without proto pin", `Quick,
     test_na015_icmp_field_without_proto);
    ("NA020 unsat conjunction", `Quick, test_na020_unsat_conjunction);
    ("NA021 tautology", `Quick, test_na021_tautology);
    ("NA022 implied filter", `Quick, test_na022_implied_filter);
    ("NA025 partially dead map", `Quick, test_na025_partially_dead_map);
    ("NA026 dead map", `Quick, test_na026_dead_map);
    ("NA030 unreachable threshold", `Quick, test_na030_unreachable_threshold);
    ("NA031 trivial threshold", `Quick, test_na031_trivial_threshold);
    ("NA040 bloom fpr", `Quick, test_na040_bloom_fpr);
    ("NA041 cm bounds", `Quick, test_na041_cm_bounds);
    ("NA042 impossible sketch", `Quick, test_na042_impossible_sketch);
    ("NA045 uncompilable", `Quick, test_na045_uncompilable);
    ("NA050 cell overflow", `Quick, test_na050_cell_overflow);
    ("NA052 register budget", `Quick, test_na052_register_budget);
    ("NA053 tail beyond path", `Quick, test_na053_tail_beyond_path);
    ("NA051 switch overcommit", `Quick, test_na051_switch_overcommit);
    ("NA060 shape conflict", `Quick, test_na060_shape_conflict);
    ("NA061 exact duplicate", `Quick, test_na061_exact_duplicate);
    ("NA071 cross-slice read", `Quick, test_na071_cross_slice_read);
    ("json stability", `Quick, test_json_stability);
    ("exit codes", `Quick, test_exit_codes);
    ("errors sort first", `Quick, test_errors_sort_first);
    ("deploy rejects errors", `Quick, test_deploy_rejects_errors);
    ("deploy admits warnings", `Quick, test_deploy_admits_warnings);
    ("deploy clean counts nothing", `Quick, test_deploy_clean_counts_nothing);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_check_never_raises; prop_check_matches_validate ]
