(** Tests for the capture-ingestion subsystem: pcap/pcapng readers, the
    pcap writer, frame decode/encode round-trips, malformed-input
    handling, the streaming driver's backpressure and pacing, and the
    export → re-ingest differential against native replay. *)

open Newton_packet
open Newton_ingest
module Stats = Newton_telemetry.Stats
module Gen = Newton_trace.Gen
module Profile = Newton_trace.Profile
module Attack = Newton_trace.Attack
module N = Newton_core.Newton

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("newton_" ^ name)

let write_file path b =
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = Bytes.create n in
  really_input ic b 0 n;
  close_in ic;
  b

let with_in path f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let sample_trace ?(seed = 11) ?(flows = 400) () =
  Gen.generate ~attacks:Attack.default_suite ~seed
    (Profile.with_flows Profile.caida_like flows)

(* ---------------- pcap writer → reader ---------------- *)

let test_pcap_roundtrip_bits () =
  let path = tmp "rt.pcap" in
  (* Timestamps that are exact in both binary floating point and
     nanosecond integers, so equality can be bitwise. *)
  let stamps = [ 0.0; 0.25; 1.5; 3.375; 1024.0; 4194303.5 ] in
  let datas =
    List.mapi
      (fun i ts -> (ts, Bytes.make (20 + i) (Char.chr (0x40 + i))))
      stamps
  in
  let oc = open_out_bin path in
  let w = Pcap.create_writer ~snaplen:2222 oc in
  List.iter (fun (ts, d) -> Pcap.write_record w ~ts d) datas;
  Pcap.flush_writer w;
  close_out oc;
  with_in path (fun ic ->
      let h = Pcap.read_header ic in
      checkb "little-endian" false h.Pcap.big_endian;
      checkb "nanosecond" true h.Pcap.nsec;
      checki "snaplen" 2222 h.Pcap.snaplen;
      checki "linktype" Pcap.linktype_ethernet h.Pcap.linktype;
      let recs, clean =
        Pcap.fold_records h ic (fun acc r -> r :: acc) []
      in
      checkb "clean end" true clean;
      let recs = List.rev recs in
      checki "record count" (List.length datas) (List.length recs);
      List.iter2
        (fun (ts, d) (r : Pcap.record) ->
          checkb (Printf.sprintf "ts %g bit-identical" ts) true
            (Int64.equal (Int64.bits_of_float ts)
               (Int64.bits_of_float r.Pcap.ts));
          checkb "data identical" true (Bytes.equal d r.Pcap.data);
          checki "orig_len" (Bytes.length d) r.Pcap.orig_len)
        datas recs);
  (* Idempotence: writing the read-back records reproduces the file
     byte for byte. *)
  let path2 = tmp "rt2.pcap" in
  with_in path (fun ic ->
      let h = Pcap.read_header ic in
      let oc = open_out_bin path2 in
      let w = Pcap.create_writer ~snaplen:h.Pcap.snaplen oc in
      let (), _ =
        Pcap.fold_records h ic
          (fun () (r : Pcap.record) ->
            Pcap.write_record w ~ts:r.Pcap.ts ~orig_len:r.Pcap.orig_len
              r.Pcap.data)
          ()
      in
      Pcap.flush_writer w;
      close_out oc);
  checkb "write∘read idempotent" true
    (Bytes.equal (read_file path) (read_file path2));
  Sys.remove path;
  Sys.remove path2

let test_split_ts () =
  let check what exp got =
    Alcotest.(check (pair int int)) what exp got
  in
  check "nsec 2.5" (2, 500_000_000) (Pcap.split_ts ~nsec:true 2.5);
  check "usec 1.25" (1, 250_000) (Pcap.split_ts ~nsec:false 1.25);
  check "nsec integer" (7, 0) (Pcap.split_ts ~nsec:true 7.0);
  (* Sub-second rounding that lands on the next second must carry. *)
  check "nsec carry" (3, 0) (Pcap.split_ts ~nsec:true 2.999_999_999_9);
  check "usec carry" (1, 0) (Pcap.split_ts ~nsec:false 0.999_999_9)

(* Classic pcap is read in all four magic variants; exercise the
   big-endian microsecond one the writer never produces. *)
let test_pcap_big_endian_usec () =
  let buf = Buffer.create 64 in
  let u32 v = Buffer.add_int32_be buf (Int32.of_int v) in
  let u16 v = Buffer.add_uint16_be buf v in
  u32 Pcap.magic_usec;
  u16 2; u16 4;
  u32 0; u32 0;
  u32 65535;
  u32 Pcap.linktype_ethernet;
  (* one record at t = 1.25 s *)
  u32 1; u32 250_000;
  u32 6; u32 60;
  Buffer.add_string buf "abcdef";
  let path = tmp "be.pcap" in
  write_file path (Buffer.to_bytes buf);
  with_in path (fun ic ->
      let h = Pcap.read_header ic in
      checkb "big-endian" true h.Pcap.big_endian;
      checkb "usec" false h.Pcap.nsec;
      match Pcap.read_record h ic with
      | `Record r ->
          checkb "ts 1.25" true (r.Pcap.ts = 1.25);
          checki "orig_len" 60 r.Pcap.orig_len;
          checkb "data" true (Bytes.equal r.Pcap.data (Bytes.of_string "abcdef"));
          checkb "then end" true (Pcap.read_record h ic = `End)
      | _ -> Alcotest.fail "expected a record");
  Sys.remove path

(* ---------------- decode ∘ encode ---------------- *)

let fields_equal p q =
  List.for_all (fun f -> Packet.get p f = Packet.get q f) Field.all

let test_decode_encode_generated () =
  let trace = sample_trace () in
  Array.iter
    (fun p ->
      match Decode.frame ~ts:(Packet.ts p) (Encode.frame p) with
      | Decode.Decoded q ->
          if not (fields_equal p q) then
            Alcotest.failf "field mismatch: %s vs %s" (Packet.to_string p)
              (Packet.to_string q)
      | Decode.Skipped s ->
          Alcotest.failf "generated packet skipped (%s): %s"
            (Decode.skip_to_string s) (Packet.to_string p))
    (Gen.packets trace)

let test_decode_encode_handmade () =
  let cases =
    [
      (* VLAN-tagged TCP with seq/ack and options-padded header *)
      Packet.make ~ts:0.5 ~src_ip:0x0A000001 ~dst_ip:0xC0A80102
        ~proto:Field.Protocol.tcp ~src_port:443 ~dst_port:51515
        ~tcp_flags:Field.Tcp_flag.(syn lor ack) ~tcp_seq:0xDEADBEEF
        ~tcp_ack:0x12345678 ~pkt_len:1500 ~payload_len:1440
        ~ingress_port:37 ();
      (* max 9-bit ingress port *)
      Packet.make ~proto:Field.Protocol.tcp ~pkt_len:52 ~payload_len:0
        ~ingress_port:511 ();
      (* DNS response over UDP *)
      Packet.make ~proto:Field.Protocol.udp ~src_port:53 ~dst_port:3333
        ~pkt_len:120 ~payload_len:92 ~dns_qr:1 ~dns_ancount:5 ();
      (* DNS query, client side *)
      Packet.make ~proto:Field.Protocol.udp ~src_port:3333 ~dst_port:53
        ~pkt_len:68 ~payload_len:40 ~dns_qr:0 ();
      (* ICMP echo request: 20 IP + 8 ICMP + 56 payload *)
      Packet.make ~proto:Field.Protocol.icmp ~src_ip:1 ~dst_ip:2 ~pkt_len:84
        ~payload_len:56 ~icmp_type:8 ~ttl:3 ();
      (* ICMP destination-unreachable with a type/code pair *)
      Packet.make ~proto:Field.Protocol.icmp ~src_ip:3 ~dst_ip:4 ~pkt_len:56
        ~payload_len:28 ~icmp_type:3 ~icmp_code:1 ();
      (* IPv6 TCP with a VLAN tag *)
      Packet.make ~ip_ver:6 ~proto:Field.Protocol.tcp ~src_ip:0x20010DB8
        ~dst_ip:0xFE800001 ~src_port:443 ~dst_port:40000
        ~tcp_flags:Field.Tcp_flag.ack ~pkt_len:1000 ~payload_len:940
        ~ingress_port:12 ();
      (* ICMPv6 echo request *)
      Packet.make ~ip_ver:6 ~proto:Field.Protocol.icmpv6 ~src_ip:5 ~dst_ip:6
        ~icmp_type:128 ~pkt_len:104 ~payload_len:56 ();
      (* VXLAN-tunneled inner UDP flow *)
      Packet.make ~proto:Field.Protocol.udp ~src_port:40001 ~dst_port:443
        ~tun_id:0xABCDE ~pkt_len:228 ~payload_len:200 ();
    ]
  in
  List.iter
    (fun p ->
      match Decode.frame ~ts:(Packet.ts p) (Encode.frame p) with
      | Decode.Decoded q ->
          List.iter
            (fun f ->
              checki (Field.to_string f) (Packet.get p f) (Packet.get q f))
            Field.all
      | Decode.Skipped s ->
          Alcotest.failf "skipped (%s)" (Decode.skip_to_string s))
    cases

let test_decode_skips () =
  let skip = function
    | Decode.Skipped s -> Decode.skip_to_string s
    | Decode.Decoded _ -> "decoded"
  in
  let eth ethertype rest =
    let b = Bytes.make (14 + Bytes.length rest) '\x00' in
    Bytes.set_uint16_be b 12 ethertype;
    Bytes.blit rest 0 b 14 (Bytes.length rest);
    b
  in
  Alcotest.(check string) "arp" "non-ip"
    (skip (Decode.frame ~ts:0.0 (eth 0x0806 (Bytes.make 28 '\x00'))));
  Alcotest.(check string) "ipv6 zero version nibble" "malformed"
    (skip (Decode.frame ~ts:0.0 (eth 0x86DD (Bytes.make 40 '\x00'))));
  Alcotest.(check string) "runt frame" "truncated"
    (skip (Decode.frame ~ts:0.0 (Bytes.make 10 '\x00')));
  Alcotest.(check string) "cut before ip header ends" "truncated"
    (skip (Decode.frame ~ts:0.0 (eth 0x0800 (Bytes.make 12 '\x45'))));
  Alcotest.(check string) "non-ethernet linktype" "non-ip"
    (skip (Decode.frame ~linktype:101 ~ts:0.0 (Bytes.make 60 '\x00')));
  (* A later IP fragment has no L4 header: decoding it with port 0 would
     conflate all fragments into one phantom 5-tuple, so it is a typed
     skip instead. *)
  let frag =
    let p =
      Packet.make ~proto:Field.Protocol.tcp ~src_port:80 ~dst_port:8080
        ~pkt_len:400 ~payload_len:340 ()
    in
    let b = Encode.frame p in
    Bytes.set_uint16_be b (14 + 6) 0x00B9 (* fragment offset 185 *);
    b
  in
  Alcotest.(check string) "later ipv4 fragment" "fragment"
    (skip (Decode.frame ~ts:0.0 frag))

(* ---------------- decode hardening regressions ---------------- *)

let skip_name = function
  | Decode.Skipped s -> Decode.skip_to_string s
  | Decode.Decoded _ -> "decoded"

(* TCP data offsets that lie are [Malformed]; a capture that merely ends
   inside the options region is [Truncated].  The distinction is what
   the stage=ingest telemetry counts separately. *)
let test_malformed_tcp_dataofs () =
  let base () =
    Encode.frame
      (Packet.make ~proto:Field.Protocol.tcp ~src_port:80 ~dst_port:8080
         ~pkt_len:52 ~payload_len:0 ())
  in
  let dataofs_off = 14 + 20 + 12 in
  (* dataofs 4*4 = 16 bytes: below the 20-byte minimum. *)
  let b = base () in
  Bytes.set b dataofs_off (Char.chr 0x40);
  Alcotest.(check string) "dataofs below 20" "malformed"
    (skip_name (Decode.frame ~ts:0.0 b));
  (* dataofs 15*4 = 60 bytes: beyond the IP total length's L4 region. *)
  let b = base () in
  Bytes.set b dataofs_off (Char.chr 0xF0);
  Alcotest.(check string) "dataofs beyond total length" "malformed"
    (skip_name (Decode.frame ~ts:0.0 b));
  (* A valid 40-byte option region cut short by the snaplen is a
     truncation of the capture, not a malformed header. *)
  let full =
    Encode.frame
      (Packet.make ~proto:Field.Protocol.tcp ~src_port:80 ~dst_port:8080
         ~pkt_len:1500 ~payload_len:1440 ())
  in
  Alcotest.(check string) "capture cut inside tcp options" "truncated"
    (skip_name (Decode.frame ~ts:0.0 (Bytes.sub full 0 (14 + 20 + 24))))

(* UDP length fields below the 8-byte header are malformed. *)
let test_malformed_udp_length () =
  let b =
    Encode.frame
      (Packet.make ~proto:Field.Protocol.udp ~src_port:1111 ~dst_port:2222
         ~pkt_len:128 ~payload_len:100 ())
  in
  Bytes.set_uint16_be b (14 + 20 + 4) 7;
  Alcotest.(check string) "udp length below 8" "malformed"
    (skip_name (Decode.frame ~ts:0.0 b))

(* Insert [n] 802.1ad service tags (vid [base_vid + i]) in front of
   whatever tag/ethertype the encoded frame already carries. *)
let push_svlan_tags n base_vid frame =
  let extra = 4 * n in
  let b = Bytes.create (Bytes.length frame + extra) in
  Bytes.blit frame 0 b 0 12;
  for i = 0 to n - 1 do
    Bytes.set_uint16_be b (12 + (4 * i)) 0x88A8;
    Bytes.set_uint16_be b (12 + (4 * i) + 2) (base_vid + i)
  done;
  Bytes.blit frame 12 b (12 + extra) (Bytes.length frame - 12);
  b

(* QinQ regression: the innermost (customer) VID identifies the port,
   not the outermost service tag; >2 tags are unmodeled traffic. *)
let test_qinq_inner_vid_wins () =
  let p =
    Packet.make ~proto:Field.Protocol.tcp ~src_port:80 ~dst_port:8080
      ~pkt_len:52 ~payload_len:0 ~ingress_port:42 ()
  in
  let single = Encode.frame p in
  (match Decode.frame ~ts:0.0 single with
  | Decode.Decoded q ->
      checki "single tag vid" 42 (Packet.get q Field.Ingress_port)
  | r -> Alcotest.failf "single tag skipped (%s)" (skip_name r));
  (match Decode.frame ~ts:0.0 (push_svlan_tags 1 500 single) with
  | Decode.Decoded q ->
      checki "qinq customer vid wins" 42 (Packet.get q Field.Ingress_port)
  | r -> Alcotest.failf "qinq frame skipped (%s)" (skip_name r));
  Alcotest.(check string) "three stacked tags" "non-ip"
    (skip_name (Decode.frame ~ts:0.0 (push_svlan_tags 2 500 single)))

(* Hand-built IPv6 frame: [exts] are raw extension-header bytes between
   the fixed header and an 8-byte UDP header; [payload_len] is the
   value written into the IPv6 length field. *)
let ip6_frame ?payload_len ~first_next exts =
  let ext_bytes = Bytes.concat Bytes.empty exts in
  let ext_len = Bytes.length ext_bytes in
  let payload_len = Option.value payload_len ~default:(ext_len + 8) in
  let b = Bytes.make (14 + 40 + ext_len + 8) '\x00' in
  Bytes.set_uint16_be b 12 0x86DD;
  Bytes.set b 14 (Char.chr 0x60);
  Bytes.set_uint16_be b (14 + 4) payload_len;
  Bytes.set b (14 + 6) (Char.chr first_next);
  Bytes.set b (14 + 7) (Char.chr 64);
  Bytes.set_int32_be b (14 + 8 + 12) 5l (* src ::5 *);
  Bytes.set_int32_be b (14 + 24 + 12) 6l (* dst ::6 *);
  let udp_off = 14 + 40 + ext_len in
  Bytes.blit ext_bytes 0 b (14 + 40) ext_len;
  Bytes.set_uint16_be b udp_off 1234;
  Bytes.set_uint16_be b (udp_off + 2) 5678;
  Bytes.set_uint16_be b (udp_off + 4) 8;
  b

let test_ipv6_extension_headers () =
  (* Hop-by-hop then destination options, then UDP. *)
  let hbh next =
    let e = Bytes.make 8 '\x00' in
    Bytes.set e 0 (Char.chr next);
    e
  in
  (match Decode.frame ~ts:0.0 (ip6_frame ~first_next:0 [ hbh 60; hbh 17 ]) with
  | Decode.Decoded q ->
      checki "proto after ext walk" Field.Protocol.udp (Packet.get q Field.Proto);
      checki "src port" 1234 (Packet.get q Field.Src_port);
      checki "pkt_len" (40 + 24) (Packet.get q Field.Pkt_len);
      checki "src_ip fold" 5 (Packet.get q Field.Src_ip)
  | r -> Alcotest.failf "ext chain skipped (%s)" (skip_name r));
  (* Capture cut inside a claimed extension header. *)
  let cut = ip6_frame ~first_next:0 ~payload_len:64 [ hbh 17 ] in
  Alcotest.(check string) "capture cut inside ext header" "truncated"
    (skip_name (Decode.frame ~ts:0.0 (Bytes.sub cut 0 (14 + 40 + 3))));
  (* Extension chain longer than the payload-length field admits. *)
  let lying =
    let e = Bytes.make 8 '\x00' in
    Bytes.set e 0 (Char.chr 17);
    Bytes.set e 1 (Char.chr 3) (* claims (3+1)*8 = 32 bytes *);
    ip6_frame ~first_next:0 ~payload_len:16 [ e ]
  in
  Alcotest.(check string) "ext header overruns payload length" "malformed"
    (skip_name (Decode.frame ~ts:0.0 lying));
  (* No-next-header terminator: IP-level fields only, decoded. *)
  (match Decode.frame ~ts:0.0 (ip6_frame ~first_next:59 ~payload_len:8 []) with
  | Decode.Decoded q ->
      checki "no-next proto" 59 (Packet.get q Field.Proto);
      checki "no-next ports zero" 0 (Packet.get q Field.Src_port)
  | r -> Alcotest.failf "no-next skipped (%s)" (skip_name r));
  (* A non-first IPv6 fragment is a fragment skip, like IPv4. *)
  let frag_ext offset =
    let e = Bytes.make 8 '\x00' in
    Bytes.set e 0 (Char.chr 17);
    Bytes.set_uint16_be e 2 (offset lsl 3);
    e
  in
  Alcotest.(check string) "ipv6 later fragment" "fragment"
    (skip_name (Decode.frame ~ts:0.0 (ip6_frame ~first_next:44 [ frag_ext 100 ])));
  (match Decode.frame ~ts:0.0 (ip6_frame ~first_next:44 [ frag_ext 0 ]) with
  | Decode.Decoded q ->
      checki "first fragment decodes with ports" 1234
        (Packet.get q Field.Src_port)
  | r -> Alcotest.failf "first ipv6 fragment skipped (%s)" (skip_name r))

let test_bogus_gre_flags () =
  let p =
    Packet.make ~proto:Field.Protocol.udp ~src_port:40001 ~dst_port:443
      ~tun_id:0x77 ~pkt_len:128 ~payload_len:100 ()
  in
  let b = Encode.frame ~tunnel:`Gre p in
  (* The GRE flag word sits right after the outer IPv4 header. *)
  let gre_off = 14 + 20 in
  checki "encoded gre has the key flag" 0x2000 (Bytes.get_uint16_be b gre_off);
  Bytes.set_uint16_be b gre_off 0x2001 (* version 1 (PPTP) *);
  Alcotest.(check string) "gre version 1" "malformed"
    (skip_name (Decode.frame ~ts:0.0 b));
  Bytes.set_uint16_be b gre_off 0x2400 (* reserved bit set *);
  Alcotest.(check string) "gre reserved flag" "malformed"
    (skip_name (Decode.frame ~ts:0.0 b))

(* decode ∘ encode over the extended attack corpus (IPv6, ICMPv6 and
   tunneled flows on top of background traffic), for both tunnel
   encodings. *)
let extended_trace ?(seed = 13) ?(flows = 200) () =
  Gen.generate ~attacks:Attack.extended_suite ~seed
    (Profile.with_flows Profile.caida_like flows)

let test_decode_encode_extended () =
  let trace = extended_trace () in
  let saw_v6 = ref 0 and saw_tun = ref 0 and saw_icmp6 = ref 0 in
  Array.iteri
    (fun i p ->
      if Packet.get p Field.Ip_ver = 6 then incr saw_v6;
      if Packet.get p Field.Tun_id <> 0 then incr saw_tun;
      if Packet.get p Field.Proto = Field.Protocol.icmpv6 then incr saw_icmp6;
      (* Alternate encapsulations so both decap paths see traffic. *)
      let tunnel = if i land 1 = 0 then `Vxlan else `Gre in
      match Decode.frame ~ts:(Packet.ts p) (Encode.frame ~tunnel p) with
      | Decode.Decoded q ->
          if not (fields_equal p q) then
            Alcotest.failf "field mismatch: %s vs %s" (Packet.to_string p)
              (Packet.to_string q)
      | Decode.Skipped s ->
          Alcotest.failf "extended packet skipped (%s): %s"
            (Decode.skip_to_string s) (Packet.to_string p))
    (Gen.packets trace);
  checkb "trace exercises ipv6" true (!saw_v6 > 0);
  checkb "trace exercises tunnels" true (!saw_tun > 0);
  checkb "trace exercises icmpv6" true (!saw_icmp6 > 0)

(* Tunneled flows must attribute to the inner 5-tuple: the whole point
   of decapsulation is that intents monitor the tunneled flow, not the
   tunnel endpoints. *)
let test_tunnel_inner_tuple_attribution () =
  let inner_src = 0x0AC8000C and inner_dst = 0x0AC8000D in
  let p =
    Packet.make ~src_ip:inner_src ~dst_ip:inner_dst
      ~proto:Field.Protocol.udp ~src_port:40001 ~dst_port:443 ~tun_id:0xBEEF
      ~pkt_len:228 ~payload_len:200 ()
  in
  List.iter
    (fun tunnel ->
      let tag = match tunnel with `Vxlan -> "vxlan" | `Gre -> "gre" in
      let b = Encode.frame ~tunnel p in
      (* The outer header really is a different 5-tuple on the wire. *)
      let outer_src = Bytes.get_int32_be b (14 + 12) in
      checkb (tag ^ " outer src differs") true
        (Int32.to_int outer_src land 0xFFFFFFFF <> inner_src);
      match Decode.frame ~ts:0.0 b with
      | Decode.Decoded q ->
          checki (tag ^ " inner src attributed") inner_src
            (Packet.get q Field.Src_ip);
          checki (tag ^ " inner dst attributed") inner_dst
            (Packet.get q Field.Dst_ip);
          checki (tag ^ " inner sport") 40001 (Packet.get q Field.Src_port);
          checki (tag ^ " vni") 0xBEEF (Packet.get q Field.Tun_id)
      | r -> Alcotest.failf "%s frame skipped (%s)" tag (skip_name r))
    [ `Vxlan; `Gre ]

(* Fragment and malformed skips are distinct counted reasons in the
   ingest telemetry, end to end through the capture reader. *)
let test_fragment_malformed_counted () =
  let path = tmp "skips.pcap" in
  let good =
    Encode.frame
      (Packet.make ~proto:Field.Protocol.tcp ~src_port:80 ~dst_port:8080
         ~pkt_len:52 ~payload_len:0 ())
  in
  let fragment =
    let b =
      Encode.frame
        (Packet.make ~proto:Field.Protocol.udp ~src_port:53 ~dst_port:3333
           ~pkt_len:400 ~payload_len:372 ())
    in
    Bytes.set_uint16_be b (14 + 6) 0x00B9;
    b
  in
  let malformed =
    let b =
      Encode.frame
        (Packet.make ~proto:Field.Protocol.tcp ~src_port:1 ~dst_port:2
           ~pkt_len:52 ~payload_len:0 ())
    in
    Bytes.set b (14 + 20 + 12) (Char.chr 0x40);
    b
  in
  let oc = open_out_bin path in
  let w = Pcap.create_writer oc in
  List.iteri (fun i b -> Pcap.write_record w ~ts:(float_of_int i) b)
    [ good; fragment; malformed ];
  Pcap.flush_writer w;
  close_out oc;
  let stats = Stats.create () in
  let loaded = Capture.load ~stats path in
  checki "one packet decoded" 1 (Gen.length loaded);
  checki "fragment counted" 1 (Stats.get stats Stats.Ingest_fragment);
  checki "malformed counted" 1 (Stats.get stats Stats.Ingest_malformed);
  checki "nothing else skipped" 0
    (Stats.get stats Stats.Ingest_non_ip
    + Stats.get stats Stats.Ingest_truncated);
  let i = Capture.info path in
  checki "info fragment" 1 i.Capture.fragment;
  checki "info malformed" 1 i.Capture.malformed;
  Sys.remove path

(* ---------------- export → re-ingest differential ---------------- *)

let report_strings reports =
  reports |> List.map Newton_query.Report.to_string |> List.sort compare

let run_device trace =
  let d = N.Device.create () in
  List.iter (fun q -> ignore (N.Device.add_query d q)) (Newton_query.Catalog.all ());
  N.Device.process_trace d trace;
  report_strings (N.Device.reports d)

(* The extended corpus survives the full pcap round trip: every frame
   (IPv6, ICMPv6, VXLAN-tunneled) re-ingests to the original fields. *)
let test_export_reingest_extended () =
  let trace = extended_trace ~seed:23 ~flows:150 () in
  let path = tmp "ext.pcap" in
  Capture.export trace path;
  let stats = Stats.create () in
  let loaded = Capture.load ~stats path in
  checki "every frame decoded" (Gen.length trace)
    (Stats.get stats Stats.Ingest_decoded);
  checki "no skips" 0
    (Stats.get stats Stats.Ingest_non_ip
    + Stats.get stats Stats.Ingest_truncated
    + Stats.get stats Stats.Ingest_fragment
    + Stats.get stats Stats.Ingest_malformed);
  Array.iteri
    (fun i p ->
      if not (fields_equal p (Gen.packets loaded).(i)) then
        Alcotest.failf "packet %d differs after pcap round trip: %s vs %s" i
          (Packet.to_string p)
          (Packet.to_string (Gen.packets loaded).(i)))
    (Gen.packets trace);
  Sys.remove path

let test_export_reingest_differential () =
  let trace = sample_trace ~seed:21 () in
  let path = tmp "diff.pcap" in
  Capture.export trace path;
  let stats = Stats.create () in
  let loaded = Capture.load ~stats path in
  checki "every frame decoded" (Gen.length trace)
    (Stats.get stats Stats.Ingest_decoded);
  checki "no skips"
    0
    (Stats.get stats Stats.Ingest_non_ip + Stats.get stats Stats.Ingest_truncated);
  Alcotest.(check (list string))
    "identical reports for the full catalog (sequential)" (run_device trace)
    (run_device loaded);
  (* Sharded replay must agree too (per-query-key sharding). *)
  List.iter
    (fun qid ->
      let run_parallel t =
        let q = Newton_query.Catalog.by_id qid in
        let shard_key =
          Newton_runtime.Shard.for_compiled (Newton_compiler.Compose.compile q)
        in
        let pdev = N.Parallel_device.create ~jobs:2 ~shard_key () in
        ignore (N.Parallel_device.add_query pdev q);
        N.Parallel_device.process_trace pdev t;
        report_strings (N.Parallel_device.reports pdev)
      in
      Alcotest.(check (list string))
        (Printf.sprintf "identical reports under --jobs 2 (Q%d)" qid)
        (run_parallel trace) (run_parallel loaded))
    [ 1; 4 ];
  Sys.remove path

(* ---------------- malformed input ---------------- *)

let expect_format_error what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Capture.Format_error" what
  | exception Capture.Format_error _ -> ()

let test_malformed_errors () =
  let path = tmp "bad.pcap" in
  (* zero-length capture *)
  write_file path Bytes.empty;
  expect_format_error "empty file" (fun () -> Capture.load path);
  expect_format_error "empty file info" (fun () -> Capture.info path);
  (* bad magic *)
  write_file path (Bytes.of_string "this is not a capture, sorry");
  expect_format_error "bad magic" (fun () -> Capture.load path);
  (* truncated global header: valid magic, then nothing *)
  let b = Bytes.create 10 in
  Bytes.set_int32_le b 0 (Int32.of_int Pcap.magic_nsec);
  write_file path (Bytes.sub b 0 10);
  expect_format_error "truncated global header" (fun () -> Capture.load path);
  (* pcapng: SHB magic but cut before the body *)
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int 0x0A0D0D0A);
  Bytes.set_int32_le b 4 28l;
  write_file path b;
  expect_format_error "truncated pcapng SHB" (fun () -> Capture.info path);
  Sys.remove path

let test_truncated_frame_body () =
  let trace = sample_trace ~seed:5 ~flows:60 () in
  let path = tmp "cut.pcap" in
  Capture.export trace path;
  let whole = read_file path in
  (* Cut the final record's body short. *)
  write_file path (Bytes.sub whole 0 (Bytes.length whole - 7));
  let stats = Stats.create () in
  let loaded = Capture.load ~stats path in
  let n = Gen.length trace in
  checki "one packet lost" (n - 1) (Gen.length loaded);
  checki "frames counted" n (Stats.get stats Stats.Ingest_frames);
  checki "truncation counted" 1 (Stats.get stats Stats.Ingest_truncated);
  let i = Capture.info path in
  checkb "info reports unclean end" false i.Capture.clean_end;
  checki "info truncated" 1 i.Capture.truncated;
  (* Cutting inside a record *header* is also a counted skip. *)
  write_file path (Bytes.sub whole 0 (24 + 5));
  let stats2 = Stats.create () in
  let loaded2 = Capture.load ~stats:stats2 path in
  checki "no packets" 0 (Gen.length loaded2);
  checki "header cut counted" 1 (Stats.get stats2 Stats.Ingest_truncated);
  Sys.remove path

(* ---------------- pcapng ---------------- *)

(* Build a pcapng file: one little-endian section with two interfaces
   (usec and nsec resolution) and an unknown block, then a big-endian
   section, checking section reset and per-interface timestamps. *)
let build_pcapng frame_a frame_b frame_c =
  let buf = Buffer.create 512 in
  let block ~be btype body =
    let u32 v =
      if be then Buffer.add_int32_be buf (Int32.of_int v)
      else Buffer.add_int32_le buf (Int32.of_int v)
    in
    let pad = (4 - Bytes.length body land 3) land 3 in
    let total = 12 + Bytes.length body + pad in
    u32 btype;
    u32 total;
    Buffer.add_bytes buf body;
    Buffer.add_string buf (String.make pad '\x00');
    u32 total
  in
  let body ~be k =
    let b = Buffer.create 64 in
    let u16 v =
      if be then Buffer.add_uint16_be b v else Buffer.add_uint16_le b v
    in
    let u32 v =
      if be then Buffer.add_int32_be b (Int32.of_int v)
      else Buffer.add_int32_le b (Int32.of_int v)
    in
    k ~u16 ~u32 b;
    Buffer.to_bytes b
  in
  let shb ~be =
    block ~be 0x0A0D0D0A
      (body ~be (fun ~u16 ~u32 _ ->
           u32 0x1A2B3C4D;
           u16 1; u16 0;
           u32 0xFFFFFFFF; u32 0xFFFFFFFF (* section length unknown *)))
  in
  let idb ~be ~tsresol =
    block ~be 0x00000001
      (body ~be (fun ~u16 ~u32 b ->
           u16 Pcap.linktype_ethernet;
           u16 0;
           u32 65535;
           match tsresol with
           | None -> ()
           | Some v ->
               u16 9; u16 1;
               Buffer.add_char b (Char.chr v);
               Buffer.add_string b "\x00\x00\x00";
               u16 0; u16 0 (* opt_endofopt *)))
  in
  let epb ~be ~iface ~hi ~lo frame =
    block ~be 0x00000006
      (body ~be (fun ~u16:_ ~u32 b ->
           u32 iface;
           u32 hi; u32 lo;
           u32 (Bytes.length frame);
           u32 (Bytes.length frame);
           Buffer.add_bytes b frame))
  in
  (* section 1: little-endian *)
  shb ~be:false;
  idb ~be:false ~tsresol:None (* default usec *);
  idb ~be:false ~tsresol:(Some 9) (* nanoseconds *);
  (* unknown block type: must be skipped by length *)
  block ~be:false 0x0BAD
    (body ~be:false (fun ~u16:_ ~u32 _ -> u32 0x12345678));
  epb ~be:false ~iface:0 ~hi:0 ~lo:2_500_000 frame_a (* 2.5 s in usec *);
  epb ~be:false ~iface:1 ~hi:0 ~lo:750_000_000 frame_b (* 0.75 s in ns *);
  (* section 2: big-endian, fresh interface table *)
  shb ~be:true;
  idb ~be:true ~tsresol:None;
  epb ~be:true ~iface:0 ~hi:0 ~lo:125_000 frame_c (* 0.125 s in usec *);
  Buffer.to_bytes buf

let test_pcapng_multi_interface () =
  let mk ts src =
    Packet.make ~ts ~src_ip:src ~dst_ip:99 ~proto:Field.Protocol.udp
      ~src_port:1000 ~dst_port:2000 ~pkt_len:64 ~payload_len:36 ()
  in
  let pa = mk 2.5 1 and pb = mk 0.75 2 and pc = mk 0.125 3 in
  let path = tmp "multi.pcapng" in
  write_file path
    (build_pcapng (Encode.frame pa) (Encode.frame pb) (Encode.frame pc));
  let stats = Stats.create () in
  let loaded = Capture.load ~stats path in
  checki "three frames" 3 (Stats.get stats Stats.Ingest_frames);
  checki "three decoded" 3 (Stats.get stats Stats.Ingest_decoded);
  let pkts = Gen.packets loaded in
  List.iteri
    (fun i p ->
      let q = pkts.(i) in
      checkb (Printf.sprintf "pkt %d ts" i) true (Packet.ts p = Packet.ts q);
      checkb (Printf.sprintf "pkt %d fields" i) true (fields_equal p q))
    [ pa; pb; pc ];
  let i = Capture.info path in
  checkb "pcapng format" true (i.Capture.format = Capture.Pcapng_format);
  checkb "clean end" true i.Capture.clean_end;
  checki "interfaces in final section" 1 i.Capture.interfaces;
  Sys.remove path

(* Corrupt/giant pcapng block lengths must be rejected before any
   allocation, in both the section-header and the generic block path —
   the classic-pcap reader already caps caplen the same way. *)
let test_pcapng_oversized_block () =
  let path = tmp "huge.pcapng" in
  (* A ~268 MB section header right at the start of the file. *)
  let buf = Buffer.create 16 in
  Buffer.add_int32_le buf (Int32.of_int 0x0A0D0D0A);
  Buffer.add_int32_be buf (Int32.of_int 0x0FFFFFF0);
  write_file path (Buffer.to_bytes buf);
  expect_format_error "giant SHB" (fun () -> Capture.load path);
  (* A ~268 MB unknown block after a valid section header. *)
  let buf = Buffer.create 64 in
  let u32 v = Buffer.add_int32_le buf (Int32.of_int v) in
  u32 0x0A0D0D0A; u32 28;
  u32 0x1A2B3C4D;
  Buffer.add_uint16_le buf 1; Buffer.add_uint16_le buf 0;
  u32 0xFFFFFFFF; u32 0xFFFFFFFF;
  u32 28;
  u32 0x0BAD;
  u32 0x0FFFFFF0;
  write_file path (Buffer.to_bytes buf);
  expect_format_error "giant block" (fun () -> Capture.load path);
  Sys.remove path

(* An IDB snaplen of 0 means "no limit" per the spec; Simple Packet
   Blocks under such an interface must keep their full data. *)
let test_pcapng_spb_snaplen_zero () =
  let buf = Buffer.create 128 in
  let u32 v = Buffer.add_int32_le buf (Int32.of_int v) in
  let u16 v = Buffer.add_uint16_le buf v in
  (* SHB *)
  u32 0x0A0D0D0A; u32 28; u32 0x1A2B3C4D; u16 1; u16 0;
  u32 0xFFFFFFFF; u32 0xFFFFFFFF; u32 28;
  (* IDB declaring snaplen 0 (unlimited) *)
  u32 0x00000001; u32 20; u16 Pcap.linktype_ethernet; u16 0; u32 0; u32 20;
  (* SPB carrying a 60-byte frame *)
  u32 0x00000003; u32 76; u32 60;
  Buffer.add_string buf (String.make 60 'x');
  u32 76;
  let path = tmp "spb.pcapng" in
  write_file path (Buffer.to_bytes buf);
  with_in path (fun ic ->
      let r = Pcapng.create_reader ic in
      match Pcapng.read_record r with
      | `Record rec_ ->
          checki "full frame captured" 60 (Bytes.length rec_.Pcapng.data);
          checki "orig_len" 60 rec_.Pcapng.orig_len;
          checkb "then end" true (Pcapng.read_record r = `End)
      | _ -> Alcotest.fail "expected a record");
  Sys.remove path

(* ---------------- streaming driver ---------------- *)

let seq_packets n =
  Array.init n (fun i ->
      Packet.make ~ts:(float_of_int i *. 0.002) ~src_ip:i ~dst_ip:1
        ~proto:Field.Protocol.udp ~pkt_len:64 ~payload_len:20 ())

(* Drop policy: a burst larger than the queue overruns it
   deterministically — arrivals of 50 against a 10-deep queue keep 10
   and shed 40, twice over a 100-packet source. *)
let test_stream_drop () =
  let stats = Stats.create () in
  let delivered = ref [] in
  let s =
    Stream.run ~depth:10 ~chunk:10 ~burst:50 ~policy:Stream.Drop ~stats
      (Stream.of_packets (seq_packets 100))
      (fun batch -> Array.iter (fun p -> delivered := p :: !delivered) batch)
  in
  checki "delivered" 20 s.Stream.delivered;
  checki "dropped" 80 s.Stream.dropped;
  checki "conservation" 100 (s.Stream.delivered + s.Stream.dropped);
  checki "dropped counter" 80 (Stats.get stats Stats.Ingest_dropped);
  (* Survivors arrive in source order. *)
  let ids =
    List.rev_map (fun p -> Packet.get p Field.Src_ip) !delivered
  in
  checkb "in order" true (List.sort compare ids = ids)

let test_stream_block () =
  let stats = Stats.create () in
  let count = ref 0 in
  let s =
    Stream.run ~depth:10 ~chunk:10 ~burst:50 ~policy:Stream.Block ~stats
      (Stream.of_packets (seq_packets 100))
      (fun batch -> count := !count + Array.length batch)
  in
  checki "all delivered" 100 s.Stream.delivered;
  checki "sink saw all" 100 !count;
  checki "nothing dropped" 0 s.Stream.dropped;
  checki "ten full chunks" 10 s.Stream.chunks;
  (* Queue depth was observed; inter-arrival gaps were recorded. *)
  (match Stats.queue_depth stats with
  | Some h -> checkb "queue depth observed" true (Newton_telemetry.Hist.count h > 0)
  | None -> Alcotest.fail "no queue-depth histogram");
  match Stats.interarrival stats with
  | Some h -> checki "interarrival gaps" 99 (Newton_telemetry.Hist.count h)
  | None -> Alcotest.fail "no interarrival histogram"

(* Regression: [Block] with a queue shallower than the chunk used to
   livelock — the arrival budget hit 0 at a full queue while the
   service condition (a whole chunk queued) stayed unreachable.  The
   queue now drains at its high-water mark instead. *)
let test_stream_block_shallow_queue () =
  let count = ref 0 in
  let s =
    Stream.run ~depth:4 ~chunk:16 ~policy:Stream.Block
      (Stream.of_packets (seq_packets 50))
      (fun batch ->
        checkb "batch capped by depth" true (Array.length batch <= 4);
        count := !count + Array.length batch)
  in
  checki "all delivered" 50 s.Stream.delivered;
  checki "sink saw all" 50 !count;
  checki "nothing dropped" 0 s.Stream.dropped;
  checki "depth-sized chunks" 13 s.Stream.chunks;
  (* The paced path must drain a shallow queue too. *)
  let s =
    Stream.run ~depth:4 ~chunk:16 ~policy:Stream.Block
      ~pace:(Stream.Realtime 1000.0)
      (Stream.of_packets (seq_packets 20))
      (fun _ -> ())
  in
  checki "paced: all delivered" 20 s.Stream.delivered;
  checki "paced: nothing dropped" 0 s.Stream.dropped

let test_stream_realtime_pacing () =
  let pkts = seq_packets 60 in
  (* 118 ms of capture at 4x → at least ~30 ms of wall clock. *)
  let s =
    Stream.run ~pace:(Stream.Realtime 4.0)
      (Stream.of_packets pkts)
      (fun _ -> ())
  in
  checki "all delivered" 60 s.Stream.delivered;
  checki "none dropped" 0 s.Stream.dropped;
  checkb "paced slower than asap" true (s.Stream.wall_seconds >= 0.02);
  checkb "speedup respected" true (s.Stream.wall_seconds < 2.0)

let test_stream_invalid_args () =
  let src = Stream.of_packets (seq_packets 1) in
  let expect what f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
    | exception Invalid_argument _ -> ()
  in
  expect "depth 0" (fun () -> Stream.run ~depth:0 src (fun _ -> ()));
  expect "chunk 0" (fun () -> Stream.run ~chunk:0 src (fun _ -> ()));
  expect "burst 0" (fun () -> Stream.run ~burst:0 src (fun _ -> ()));
  expect "speedup 0" (fun () ->
      Stream.run ~pace:(Stream.Realtime 0.0) src (fun _ -> ()))

(* Streaming a capture file delivers the same packets as loading it. *)
let test_stream_from_capture_file () =
  let trace = sample_trace ~seed:3 ~flows:80 () in
  let path = tmp "stream.pcap" in
  Capture.export trace path;
  let got = ref [] in
  let s =
    Capture.with_source path (fun src ->
        Stream.run ~depth:64 ~chunk:16 src (fun batch ->
            Array.iter (fun p -> got := p :: !got) batch))
  in
  checki "delivered everything" (Gen.length trace) s.Stream.delivered;
  let got = Array.of_list (List.rev !got) in
  (* Streaming must equal loading the same file (timestamps included —
     both went through the same nanosecond quantization). *)
  Array.iteri
    (fun i p ->
      if not (fields_equal p got.(i) && Packet.ts p = Packet.ts got.(i)) then
        Alcotest.failf "packet %d differs between stream and load" i)
    (Gen.packets (Capture.load path));
  (* And stay within the writer's half-nanosecond of the original. *)
  Array.iteri
    (fun i p ->
      checkb
        (Printf.sprintf "packet %d ts within 0.5 ns" i)
        true
        (Float.abs (Packet.ts p -. Packet.ts got.(i)) <= 0.5e-9);
      if not (fields_equal p got.(i)) then
        Alcotest.failf "packet %d fields differ after streaming" i)
    (Gen.packets trace);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "pcap writer/reader bit round-trip" `Quick
      test_pcap_roundtrip_bits;
    Alcotest.test_case "split_ts resolution and carry" `Quick test_split_ts;
    Alcotest.test_case "big-endian usec pcap reads" `Quick
      test_pcap_big_endian_usec;
    Alcotest.test_case "decode∘encode: generated traces" `Quick
      test_decode_encode_generated;
    Alcotest.test_case "decode∘encode: VLAN/DNS/ICMP shapes" `Quick
      test_decode_encode_handmade;
    Alcotest.test_case "decoder skips are counted, never raised" `Quick
      test_decode_skips;
    Alcotest.test_case "malformed tcp data offsets" `Quick
      test_malformed_tcp_dataofs;
    Alcotest.test_case "malformed udp length" `Quick test_malformed_udp_length;
    Alcotest.test_case "qinq: innermost customer vid wins" `Quick
      test_qinq_inner_vid_wins;
    Alcotest.test_case "ipv6 extension-header walk" `Quick
      test_ipv6_extension_headers;
    Alcotest.test_case "bogus gre flags are malformed" `Quick
      test_bogus_gre_flags;
    Alcotest.test_case "decode∘encode: extended corpus (v6/icmp6/tunnels)"
      `Quick test_decode_encode_extended;
    Alcotest.test_case "tunneled flows attribute to the inner 5-tuple" `Quick
      test_tunnel_inner_tuple_attribution;
    Alcotest.test_case "fragment/malformed are distinct counted skips" `Quick
      test_fragment_malformed_counted;
    Alcotest.test_case "export→re-ingest: extended corpus round trip" `Quick
      test_export_reingest_extended;
    Alcotest.test_case "export→re-ingest report differential" `Slow
      test_export_reingest_differential;
    Alcotest.test_case "malformed captures raise clean errors" `Quick
      test_malformed_errors;
    Alcotest.test_case "truncated frame body is a counted skip" `Quick
      test_truncated_frame_body;
    Alcotest.test_case "pcapng multi-interface + sections" `Quick
      test_pcapng_multi_interface;
    Alcotest.test_case "pcapng oversized block lengths rejected" `Quick
      test_pcapng_oversized_block;
    Alcotest.test_case "pcapng SPB under snaplen-0 interface" `Quick
      test_pcapng_spb_snaplen_zero;
    Alcotest.test_case "stream backpressure: drop" `Quick test_stream_drop;
    Alcotest.test_case "stream backpressure: block" `Quick test_stream_block;
    Alcotest.test_case "stream block with shallow queue (depth < chunk)" `Quick
      test_stream_block_shallow_queue;
    Alcotest.test_case "stream realtime pacing" `Slow
      test_stream_realtime_pacing;
    Alcotest.test_case "stream argument validation" `Quick
      test_stream_invalid_args;
    Alcotest.test_case "stream from capture file" `Quick
      test_stream_from_capture_file;
  ]
