(** Tests for the extension queries (Q10–Q17, beyond the paper's
    Table 2): the byte/maximum aggregations, and the IPv6/ICMPv6/tunnel
    detection scenarios with their ground-truth injectors. *)

open Newton_query
open Newton_core.Newton

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_extras_valid_and_compile () =
  List.iter
    (fun q ->
      checkb (q.Ast.name ^ " valid") true (Ast.is_valid q);
      let c = Newton_compiler.Compose.compile q in
      checkb (q.Ast.name ^ " fits pipeline") true
        (c.Newton_compiler.Compose.stats.Newton_compiler.Compose.stages <= 12))
    (Catalog.extras ())

let test_q10_heavy_hitter_bytes () =
  let victim = Newton_trace.Attack.host_of 5 in
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Udp_ddos { victim; attackers = 80; pkts_per_attacker = 15 } ]
      ~seed:9
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 500)
  in
  (* ~120 x 512-byte flood packets per window = ~60 KB, far above
     ordinary per-host volume at this trace size. *)
  let d = Device.create () in
  let _ = Device.add_query d (Catalog.q10 ~th:30_000 ()) in
  Device.process_trace d trace;
  let victims =
    Device.reports d |> List.map (fun r -> r.Report.keys.(0)) |> List.sort_uniq compare
  in
  checkb "flood victim is a byte heavy hitter" true (List.mem victim victims)

let test_q10_matches_reference () =
  let trace =
    Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed:10
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 800)
  in
  let q = Catalog.q10 ~th:50_000 () in
  let truth = Ref_eval.evaluate q (Newton_trace.Gen.packets trace) in
  let d = Device.create () in
  let _ = Device.add_query d q in
  Device.process_trace d trace;
  let a = Analyzer.score ~truth ~detected:(Device.reports d) in
  checkb "recall 1.0 (sums never underestimate)" true (a.Newton_runtime.Analyzer.recall >= 0.999)

let test_q11_max_aggregation () =
  let d = Device.create () in
  let _ = Device.add_query d (Catalog.q11 ~th:1400 ()) in
  (* One jumbo sender among small-packet hosts. *)
  for i = 1 to 5 do
    Device.process_packet d
      (Packet.make ~ts:0.01 ~src_ip:100 ~dst_ip:1 ~proto:6 ~src_port:i
         ~dst_port:80 ~pkt_len:200 ())
  done;
  Device.process_packet d
    (Packet.make ~ts:0.02 ~src_ip:200 ~dst_ip:1 ~proto:6 ~src_port:9
       ~dst_port:80 ~pkt_len:1500 ());
  (match Device.reports d with
  | [ r ] ->
      checki "jumbo sender reported" 200 r.Report.keys.(0);
      checki "value is the maximum" 1500 r.Report.value
  | l -> Alcotest.failf "expected 1 report, got %d" (List.length l));
  (* Repeated jumbo packets from the same host report once per window. *)
  Device.process_packet d
    (Packet.make ~ts:0.03 ~src_ip:200 ~dst_ip:1 ~proto:6 ~src_port:9
       ~dst_port:80 ~pkt_len:1500 ());
  checki "deduped within the window" 1 (Device.message_count d)

let test_q11_max_reference_equivalence () =
  let trace =
    Newton_trace.Gen.generate ~seed:12
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 600)
  in
  let q = Catalog.q11 ~th:1400 () in
  let truth = Ref_eval.evaluate q (Newton_trace.Gen.packets trace) in
  let d = Device.create () in
  let _ = Device.add_query d q in
  Device.process_trace d trace;
  let a = Analyzer.score ~truth ~detected:(Device.reports d) in
  checkb "max sketch never misses" true (a.Newton_runtime.Analyzer.recall >= 0.999)

let test_q12_amplification_pair () =
  let d = Device.create () in
  let _ = Device.add_query d (Catalog.q12 ~th:1000 ()) in
  let victim = 777 in
  (* Tiny query out, large responses in: the Pair exports both byte
     counts; the analyzer sees responses >> queries. *)
  Device.process_packet d
    (Packet.make ~ts:0.01 ~src_ip:victim ~dst_ip:53053 ~proto:17 ~src_port:4444
       ~dst_port:53 ~pkt_len:64 ());
  for i = 1 to 3 do
    Device.process_packet d
      (Packet.make ~ts:(0.01 +. (0.001 *. float_of_int i)) ~src_ip:53053
         ~dst_ip:victim ~proto:17 ~src_port:53 ~dst_port:4444 ~pkt_len:1400 ())
  done;
  match Device.reports d with
  | r :: _ ->
      checki "victim reported" victim r.Report.keys.(0);
      checkb "response volume crossed" true (r.Report.value > 1000);
      checkb "query volume exported too" true (r.Report.value2 <> None)
  | [] -> Alcotest.fail "expected an amplification report"

let test_q13_icmp_flood () =
  let victim = Newton_trace.Attack.host_of 9 in
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Icmp_flood { victim; attackers = 60; pkts_per_attacker = 15 } ]
      ~seed:14
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 400)
  in
  let d = Device.create () in
  let _ = Device.add_query d (Catalog.q13 ~th:50 ()) in
  Device.process_trace d trace;
  let victims =
    Device.reports d |> List.map (fun r -> r.Report.keys.(0)) |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "only the flood victim" [ victim ] victims

let test_q14_reflection () =
  let victim = Newton_trace.Attack.host_of 10 in
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Reflection { victim; reflectors = 50; pkts_each = 10 } ]
      ~seed:15
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 400)
  in
  let q = Catalog.q14 ~th:30 () in
  (* ground truth agrees with the data plane *)
  let truth = Ref_eval.evaluate q (Newton_trace.Gen.packets trace) in
  checkb "reference finds the reflection victim" true
    (List.exists (fun (r : Report.t) -> r.Report.keys.(0) = victim) truth);
  let d = Device.create () in
  let _ = Device.add_query d q in
  Device.process_trace d trace;
  let a = Analyzer.score ~truth ~detected:(Device.reports d) in
  checkb "data plane recall 1.0" true (a.Newton_runtime.Analyzer.recall >= 0.999);
  (* Ordinary clients making their own connections are not reported:
     their outbound SYNs cancel the SYN-ACKs they legitimately receive. *)
  checkb "benign hosts mostly silent" true (a.Newton_runtime.Analyzer.precision >= 0.5)

(* Shared scaffolding for the Q15-Q17 detection-accuracy tests: run one
   injector over background traffic, evaluate the query on both the
   reference evaluator and the data plane, and require every
   ground-truth culprit detected (zero false negatives). *)
let detection_accuracy ~what ~seed ~attack ~culprit q =
  let trace =
    Newton_trace.Gen.generate ~attacks:[ attack ] ~seed
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 400)
  in
  let truth = Ref_eval.evaluate q (Newton_trace.Gen.packets trace) in
  checkb (what ^ ": reference finds the culprit") true
    (List.exists (fun (r : Report.t) -> r.Report.keys.(0) = culprit) truth);
  let d = Device.create () in
  let _ = Device.add_query d q in
  Device.process_trace d trace;
  let detected = Device.reports d in
  checkb (what ^ ": data plane reports the culprit") true
    (List.exists (fun (r : Report.t) -> r.Report.keys.(0) = culprit) detected);
  let a = Analyzer.score ~truth ~detected in
  checkb (what ^ ": zero false negatives") true
    (a.Newton_runtime.Analyzer.recall >= 0.999)

let test_q15_ntp_amplification () =
  let victim = Newton_trace.Attack.host_of 9 in
  detection_accuracy ~what:"ntp" ~seed:16
    ~attack:
      (Newton_trace.Attack.Amplification
         { victim; reflectors = 50; pkts_each = 10; port = 123 })
    ~culprit:victim
    (Catalog.q15 ())

let test_q15_ssdp_amplification () =
  let victim = Newton_trace.Attack.host_of 10 in
  detection_accuracy ~what:"ssdp" ~seed:17
    ~attack:
      (Newton_trace.Attack.Amplification
         { victim; reflectors = 50; pkts_each = 10; port = 1900 })
    ~culprit:victim
    (Catalog.q15 ~port:1900 ())

let test_q16_icmp6_scan () =
  let scanner = Newton_trace.Attack.host_of 11 in
  detection_accuracy ~what:"icmp6 scan" ~seed:18
    ~attack:(Newton_trace.Attack.Icmp6_scan { scanner; fanout = 900 })
    ~culprit:scanner
    (Catalog.q16 ());
  (* Background traffic has no ICMPv6, so nothing else can be named:
     the scanner is the only host ever reported. *)
  let trace =
    Newton_trace.Gen.generate
      ~attacks:[ Newton_trace.Attack.Icmp6_scan { scanner; fanout = 900 } ]
      ~seed:18
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 400)
  in
  let d = Device.create () in
  let _ = Device.add_query d (Catalog.q16 ()) in
  Device.process_trace d trace;
  let hosts =
    Device.reports d |> List.map (fun r -> r.Report.keys.(0))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "only the scanner" [ scanner ] hosts

let test_q17_tunnel_exfiltration () =
  let src = Newton_trace.Attack.host_of 12 in
  detection_accuracy ~what:"tunnel exfil" ~seed:19
    ~attack:
      (Newton_trace.Attack.Tunnel_exfil
         { src; dst = Newton_trace.Attack.host_of 13; tun_id = 0xBEEF; pkts = 400 })
    ~culprit:src
    (Catalog.q17 ())

(* The detection survives the wire: export the trace to pcap, re-ingest
   it through the decoder (VXLAN decap included), and the tunneled
   source is still the one reported — proof the inner 5-tuple is what
   the intent monitors. *)
let test_q17_detects_after_pcap_roundtrip () =
  let src = Newton_trace.Attack.host_of 12 in
  let trace =
    Newton_trace.Gen.generate
      ~attacks:
        [
          Newton_trace.Attack.Tunnel_exfil
            { src; dst = Newton_trace.Attack.host_of 13; tun_id = 0xBEEF; pkts = 400 };
        ]
      ~seed:20
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 200)
  in
  let path =
    Filename.concat (Filename.get_temp_dir_name ()) "newton_q17.pcap"
  in
  Newton_ingest.Capture.export trace path;
  let loaded = Newton_ingest.Capture.load path in
  let d = Device.create () in
  let _ = Device.add_query d (Catalog.q17 ()) in
  Device.process_trace d loaded;
  let hosts =
    Device.reports d |> List.map (fun r -> r.Report.keys.(0))
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "tunneled source survives re-ingest" [ src ] hosts;
  Sys.remove path

(* Every extension query is admissible: `newton check` finds nothing to
   complain about (the Q16 ICMP filter pins the protocol, so NA015
   stays quiet). *)
let test_extras_check_clean () =
  List.iter
    (fun q ->
      checki (q.Ast.name ^ " checks clean") 0
        (List.length
           (List.filter
              (fun d ->
                d.Newton_analysis.Diag.severity <> Newton_analysis.Diag.Info)
              (Newton_analysis.Check.check_query q))))
    (Catalog.extras ())

let test_extras_dynamic_install () =
  (* Extension queries install at runtime like any other. *)
  let d = Device.create () in
  List.iter
    (fun q ->
      let _, lat = Device.add_query d q in
      checkb (q.Ast.name ^ " installs in ms") true (lat < 0.02))
    (Catalog.extras ());
  checki "all extras live" 8 (List.length (Device.queries d))

let suite =
  [
    ("extras valid and compile", `Quick, test_extras_valid_and_compile);
    ("q10 heavy hitter bytes", `Quick, test_q10_heavy_hitter_bytes);
    ("q10 matches reference", `Quick, test_q10_matches_reference);
    ("q11 max aggregation", `Quick, test_q11_max_aggregation);
    ("q11 max reference equivalence", `Quick, test_q11_max_reference_equivalence);
    ("q12 amplification pair", `Quick, test_q12_amplification_pair);
    ("q13 icmp flood", `Quick, test_q13_icmp_flood);
    ("q14 reflection", `Quick, test_q14_reflection);
    ("q15 ntp amplification", `Quick, test_q15_ntp_amplification);
    ("q15 ssdp amplification", `Quick, test_q15_ssdp_amplification);
    ("q16 icmp6 scan", `Quick, test_q16_icmp6_scan);
    ("q17 tunnel exfiltration", `Quick, test_q17_tunnel_exfiltration);
    ("q17 detects after pcap roundtrip", `Quick,
     test_q17_detects_after_pcap_roundtrip);
    ("extras check clean", `Quick, test_extras_check_clean);
    ("extras dynamic install", `Quick, test_extras_dynamic_install);
  ]
