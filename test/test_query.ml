(** Tests for Newton_query: AST validation, the Q1–Q9 catalog, reports
    and the exact reference evaluator. *)

open Newton_packet
open Newton_query
open Newton_query.Ast

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------------- AST ---------------- *)

let test_key_defaults_full_mask () =
  let k = key Field.Dst_ip in
  checki "full mask" (Field.full_mask Field.Dst_ip) k.mask

let test_cmp_holds () =
  checkb "eq" true (cmp_holds Eq 3 3);
  checkb "neq" true (cmp_holds Neq 3 4);
  checkb "gt" false (cmp_holds Gt 3 3);
  checkb "ge" true (cmp_holds Ge 3 3);
  checkb "lt" true (cmp_holds Lt 2 3);
  checkb "le" false (cmp_holds Le 4 3)

let test_validate_ok () =
  List.iter
    (fun q -> Alcotest.(check (list string)) ("valid " ^ q.name) []
        (List.map error_to_string (validate q)))
    (Catalog.all ())

let test_validate_empty_query () =
  let q = make ~id:0 ~name:"empty" ~description:"" [] in
  checkb "empty query invalid" false (is_valid q)

let test_validate_empty_branch () =
  let q = make ~id:0 ~name:"eb" ~description:"" [ [] ] in
  checkb "empty branch invalid" false (is_valid q)

let test_validate_missing_combine () =
  let b = [ Map (keys [ Field.Dst_ip ]) ] in
  let q = make ~id:0 ~name:"mc" ~description:"" [ b; b ] in
  checkb "two branches need combine" true (List.mem Missing_combine (validate q))

let test_validate_combine_single_branch () =
  let q =
    make ~id:0 ~name:"cs" ~description:""
      ~combine:{ op = Sub; threshold = result_gt 1 }
      [ [ Map (keys [ Field.Dst_ip ]) ] ]
  in
  checkb "combine without branches flagged" true
    (List.mem Combine_without_branches (validate q))

let test_validate_result_cmp_before_stateful () =
  let q = chain ~id:0 ~name:"rc" ~description:"" [ Filter [ result_gt 5 ] ] in
  checkb "Result_cmp needs upstream state" true
    (List.exists (function Reduce_after_nothing _ -> true | _ -> false) (validate q))

let test_validate_empty_keys () =
  let q = chain ~id:0 ~name:"ek" ~description:"" [ Map [] ] in
  checkb "empty keys flagged" true
    (List.exists (function Empty_keys _ -> true | _ -> false) (validate q))

let test_keys_equal () =
  let a = keys [ Field.Dst_ip; Field.Src_ip ] in
  let b = keys [ Field.Dst_ip; Field.Src_ip ] in
  let c = keys [ Field.Src_ip; Field.Dst_ip ] in
  checkb "equal" true (keys_equal a b);
  checkb "order matters" false (keys_equal a c);
  checkb "mask matters" false
    (keys_equal [ key ~mask:0xff Field.Dst_ip ] [ key Field.Dst_ip ])

let test_num_primitives () =
  checki "q1 has 5" 5 (num_primitives (Catalog.q1 ()));
  checki "q6 spans branches" 6 (num_primitives (Catalog.q6 ()))

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_to_string_plain () =
  let s = to_string (Catalog.q4 ()) in
  checkb "mentions distinct" true (contains s "distinct");
  checkb "mentions reduce" true (contains s "reduce");
  let s6 = to_string (Catalog.q6 ()) in
  checkb "mentions combine" true (contains s6 "combine")

(* ---------------- Catalog ---------------- *)

let test_catalog_ids_sequential () =
  List.iteri (fun i q -> checki "id order" (i + 1) q.id) (Catalog.all ())

let test_catalog_by_id () =
  for i = 1 to 17 do
    checki "by_id consistent" i (Catalog.by_id i).id
  done;
  checkb "by_id rejects" true
    (try ignore (Catalog.by_id 18); false
     with Catalog.Unknown_id { id = 18; min = 1; max = 17 } -> true);
  checkb "find is total" true (Catalog.find 18 = None);
  checkb "find hits" true
    (match Catalog.find 3 with Some q -> q.id = 3 | None -> false)

let test_catalog_thresholds_configurable () =
  let q = Catalog.q1 ~th:99 () in
  let has_th =
    List.exists
      (function
        | Filter preds ->
            List.exists (function Result_cmp { value = 99; _ } -> true | _ -> false) preds
        | _ -> false)
      (List.hd q.branches)
  in
  checkb "threshold propagates" true has_th

let test_catalog_combine_queries () =
  List.iter
    (fun id ->
      let q = Catalog.by_id id in
      checkb "has combine" true (q.combine <> None);
      checki "two branches" 2 (List.length q.branches))
    [ 6; 7; 8; 9 ]

(* ---------------- Report ---------------- *)

let test_report_dedup () =
  let r1 = Report.make ~query_id:1 ~window:0 ~keys:[| 5 |] ~value:10 () in
  let r2 = Report.make ~query_id:1 ~window:0 ~keys:[| 5 |] ~value:99 () in
  let r3 = Report.make ~query_id:1 ~window:1 ~keys:[| 5 |] ~value:10 () in
  checki "dedup by identity" 2 (List.length (Report.dedup [ r1; r2; r3 ]))

let test_report_reported_keys () =
  let r1 = Report.make ~query_id:1 ~window:0 ~keys:[| 5 |] ~value:1 () in
  let r2 = Report.make ~query_id:1 ~window:3 ~keys:[| 5 |] ~value:1 () in
  let r3 = Report.make ~query_id:1 ~window:0 ~keys:[| 6 |] ~value:1 () in
  checki "distinct key vectors" 2 (List.length (Report.reported_keys [ r1; r2; r3 ]))

(* ---------------- Ref_eval ---------------- *)

let syn ~ts ~src ~dst =
  Packet.make ~ts ~src_ip:src ~dst_ip:dst ~proto:6 ~src_port:1000 ~dst_port:80
    ~tcp_flags:Field.Tcp_flag.syn ()

let test_ref_eval_filter_drops () =
  let q =
    chain ~id:1 ~name:"t" ~description:""
      [ Filter [ field_is Field.Proto 6 ]; Map (keys [ Field.Dst_ip ]) ]
  in
  let pkts = [| Packet.make ~proto:17 () |] in
  checki "udp dropped by tcp filter" 0 (List.length (Ref_eval.evaluate q pkts))

let test_ref_eval_map_reports_keys () =
  let q = chain ~id:1 ~name:"t" ~description:"" [ Map (keys [ Field.Dst_ip ]) ] in
  let pkts = [| Packet.make ~dst_ip:42 () |] in
  match Ref_eval.evaluate q pkts with
  | [ r ] -> Alcotest.(check (array int)) "projected key" [| 42 |] r.Report.keys
  | l -> Alcotest.failf "expected one report, got %d" (List.length l)

let test_ref_eval_map_masks () =
  let q = chain ~id:1 ~name:"t" ~description:"" [ Map [ key ~mask:0xFF00 Field.Dst_port ] ] in
  let pkts = [| Packet.make ~dst_port:0x1234 () |] in
  match Ref_eval.evaluate q pkts with
  | [ r ] -> checki "masked" 0x1200 r.Report.keys.(0)
  | _ -> Alcotest.fail "expected one report"

let test_ref_eval_distinct_passes_first_only () =
  let q = chain ~id:1 ~name:"t" ~description:"" [ Distinct (keys [ Field.Dst_ip ]) ] in
  let pkts = Array.init 5 (fun i -> Packet.make ~ts:(0.001 *. float_of_int i) ~dst_ip:7 ()) in
  checki "one report for duplicates" 1 (List.length (Ref_eval.evaluate q pkts))

let test_ref_eval_reduce_threshold_crossing () =
  let q =
    chain ~id:1 ~name:"t" ~description:""
      [ Reduce { keys = keys [ Field.Dst_ip ]; agg = Count }; Filter [ result_gt 3 ] ]
  in
  let pkts = Array.init 10 (fun i -> syn ~ts:(0.001 *. float_of_int i) ~src:i ~dst:9) in
  (* count crosses 3 once; the key reports exactly once in the window *)
  checki "single crossing report" 1 (List.length (Ref_eval.evaluate q pkts))

let test_ref_eval_window_resets_state () =
  let q =
    chain ~id:1 ~name:"t" ~description:""
      [ Reduce { keys = keys [ Field.Dst_ip ]; agg = Count }; Filter [ result_gt 2 ] ]
  in
  (* 3 packets in window 0 and 2 in window 1: only window 0 crosses. *)
  let pkts =
    [| syn ~ts:0.01 ~src:1 ~dst:5; syn ~ts:0.02 ~src:2 ~dst:5; syn ~ts:0.03 ~src:3 ~dst:5;
       syn ~ts:0.11 ~src:4 ~dst:5; syn ~ts:0.12 ~src:5 ~dst:5 |]
  in
  let reports = Ref_eval.evaluate q pkts in
  checki "one report, window 0 only" 1 (List.length reports);
  checki "window index" 0 (List.hd reports).Report.window

let test_ref_eval_sum_field () =
  let q =
    chain ~id:1 ~name:"t" ~description:""
      [ Reduce { keys = keys [ Field.Dst_ip ]; agg = Sum_field Field.Payload_len };
        Filter [ result_gt 100 ] ]
  in
  let pkts = [| Packet.make ~ts:0.0 ~dst_ip:1 ~payload_len:150 () |] in
  checki "byte sum crosses" 1 (List.length (Ref_eval.evaluate q pkts))

let test_ref_eval_sub_combine () =
  let q = Catalog.q6 ~th:2 () in
  (* 4 SYNs, 1 FIN to host 9 in one window: diff = 3 > 2. *)
  let fin =
    Packet.make ~ts:0.05 ~src_ip:1 ~dst_ip:9 ~proto:6
      ~tcp_flags:(Field.Tcp_flag.fin lor Field.Tcp_flag.ack) ()
  in
  let pkts =
    Array.append (Array.init 4 (fun i -> syn ~ts:(0.01 *. float_of_int (i + 1)) ~src:i ~dst:9)) [| fin |]
  in
  let reports = Ref_eval.evaluate q pkts in
  checki "flood host reported" 1 (List.length reports);
  checki "value is diff" 3 (List.hd reports).Report.value

let test_ref_eval_sub_combine_balanced_silent () =
  let q = Catalog.q6 ~th:1 () in
  let fin ~ts ~dst =
    Packet.make ~ts ~src_ip:1 ~dst_ip:dst ~proto:6
      ~tcp_flags:(Field.Tcp_flag.fin lor Field.Tcp_flag.ack) ()
  in
  let pkts = [| syn ~ts:0.01 ~src:1 ~dst:9; fin ~ts:0.02 ~dst:9 |] in
  checki "balanced host silent" 0 (List.length (Ref_eval.evaluate q pkts))

let test_ref_eval_pair_combine_reports_both () =
  let q = Catalog.q8 ~th:0 () in
  (* one connection with payload to host 9 *)
  let pkts =
    [| syn ~ts:0.01 ~src:1 ~dst:9;
       Packet.make ~ts:0.02 ~src_ip:1 ~dst_ip:9 ~proto:6 ~src_port:1000
         ~dst_port:80 ~tcp_flags:Field.Tcp_flag.psh ~payload_len:50 () |]
  in
  match Ref_eval.evaluate q pkts with
  | [ r ] ->
      checki "conns" 1 r.Report.value;
      Alcotest.(check (option int)) "bytes exported too" (Some 50) r.Report.value2
  | l -> Alcotest.failf "expected one report, got %d" (List.length l)

let test_ref_eval_rejects_invalid () =
  let bad = make ~id:0 ~name:"bad" ~description:"" [] in
  checkb "create rejects invalid" true
    (try ignore (Ref_eval.create bad); false
     with Ast.Invalid { errors; _ } -> List.mem Ast.Empty_query errors)

let test_ref_eval_finish_idempotent () =
  let t = Ref_eval.create (Catalog.q6 ()) in
  Ref_eval.feed t (syn ~ts:0.01 ~src:1 ~dst:9);
  Ref_eval.finish t;
  Ref_eval.finish t;
  checkb "no duplicate reports from double finish" true
    (List.length (Ref_eval.reports t) <= 1)

let suite =
  [
    ("key defaults full mask", `Quick, test_key_defaults_full_mask);
    ("cmp_holds", `Quick, test_cmp_holds);
    ("catalog queries validate", `Quick, test_validate_ok);
    ("validate empty query", `Quick, test_validate_empty_query);
    ("validate empty branch", `Quick, test_validate_empty_branch);
    ("validate missing combine", `Quick, test_validate_missing_combine);
    ("validate combine single branch", `Quick, test_validate_combine_single_branch);
    ("validate result_cmp before stateful", `Quick, test_validate_result_cmp_before_stateful);
    ("validate empty keys", `Quick, test_validate_empty_keys);
    ("keys_equal", `Quick, test_keys_equal);
    ("num_primitives", `Quick, test_num_primitives);
    ("to_string plain", `Quick, test_to_string_plain);
    ("catalog ids sequential", `Quick, test_catalog_ids_sequential);
    ("catalog by_id", `Quick, test_catalog_by_id);
    ("catalog thresholds configurable", `Quick, test_catalog_thresholds_configurable);
    ("catalog combine queries", `Quick, test_catalog_combine_queries);
    ("report dedup", `Quick, test_report_dedup);
    ("report reported_keys", `Quick, test_report_reported_keys);
    ("ref_eval filter drops", `Quick, test_ref_eval_filter_drops);
    ("ref_eval map reports keys", `Quick, test_ref_eval_map_reports_keys);
    ("ref_eval map masks", `Quick, test_ref_eval_map_masks);
    ("ref_eval distinct first only", `Quick, test_ref_eval_distinct_passes_first_only);
    ("ref_eval reduce threshold crossing", `Quick, test_ref_eval_reduce_threshold_crossing);
    ("ref_eval window resets", `Quick, test_ref_eval_window_resets_state);
    ("ref_eval sum field", `Quick, test_ref_eval_sum_field);
    ("ref_eval sub combine", `Quick, test_ref_eval_sub_combine);
    ("ref_eval sub combine balanced silent", `Quick, test_ref_eval_sub_combine_balanced_silent);
    ("ref_eval pair combine reports both", `Quick, test_ref_eval_pair_combine_reports_both);
    ("ref_eval rejects invalid", `Quick, test_ref_eval_rejects_invalid);
    ("ref_eval finish idempotent", `Quick, test_ref_eval_finish_idempotent);
  ]
