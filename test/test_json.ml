(** Tests for the minimal JSON implementation. *)

open Newton_util

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let test_parse_scalars () =
  checkb "null" true (Json.of_string "null" = Json.Null);
  checkb "true" true (Json.of_string "true" = Json.Bool true);
  checkb "false" true (Json.of_string "false" = Json.Bool false);
  checkb "int" true (Json.of_string "42" = Json.Int 42);
  checkb "negative" true (Json.of_string "-7" = Json.Int (-7));
  checkb "float" true (Json.of_string "3.25" = Json.Float 3.25);
  checkb "exponent" true (Json.of_string "1e3" = Json.Float 1000.0)

let test_parse_strings () =
  checkb "plain" true (Json.of_string {|"hello"|} = Json.String "hello");
  checkb "escapes" true
    (Json.of_string {|"a\"b\\c\nd\te"|} = Json.String "a\"b\\c\nd\te");
  checkb "unicode ascii" true (Json.of_string {|"A"|} = Json.String "A")

let test_parse_containers () =
  checkb "empty array" true (Json.of_string "[]" = Json.List []);
  checkb "empty object" true (Json.of_string "{}" = Json.Obj []);
  (match Json.of_string {| [1, "two", [3], {"k": 4}] |} with
  | Json.List [ Json.Int 1; Json.String "two"; Json.List [ Json.Int 3 ];
                Json.Obj [ ("k", Json.Int 4) ] ] -> ()
  | _ -> Alcotest.fail "nested structure");
  match Json.of_string {| {"a": 1, "b": [true, null]} |} with
  | Json.Obj [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ] -> ()
  | _ -> Alcotest.fail "object shape"

let test_roundtrip () =
  let v =
    Json.Obj
      [ ("table", Json.String "newton_k_s0_m0");
        ("priority", Json.Int 10);
        ("match", Json.List [ Json.Obj [ ("value", Json.Int 6) ] ]);
        ("weird", Json.String "quote\" backslash\\ tab\t") ]
  in
  checkb "print/parse roundtrip" true (Json.of_string (Json.to_string v) = v)

let test_rejects_malformed () =
  let bad s =
    match Json.of_string s with
    | _ -> false
    | exception Json.Parse_error _ -> true
  in
  checkb "unterminated string" true (bad {|"abc|});
  checkb "trailing garbage" true (bad "1 2");
  checkb "missing colon" true (bad {|{"a" 1}|});
  checkb "missing bracket" true (bad "[1, 2");
  checkb "bare word" true (bad "flurp");
  checkb "empty" true (bad "")

let test_accessors () =
  let v = Json.of_string {| {"x": 5, "s": "y", "l": [1]} |} in
  checki "member int" 5 (Option.get (Json.to_int_opt (Option.get (Json.member "x" v))));
  checks "member string" "y"
    (Option.get (Json.to_string_opt (Option.get (Json.member "s" v))));
  checki "member list" 1 (List.length (Option.get (Json.to_list (Option.get (Json.member "l" v)))));
  checkb "absent member" true (Json.member "nope" v = None)

let test_parses_rule_documents () =
  (* The generator's own output parses. *)
  let c = Newton_compiler.Compose.compile (Newton_query.Catalog.q6 ()) in
  let json = Newton_p4gen.Rules.to_json (Newton_p4gen.Rules.entries_exn c) in
  match Json.of_string json with
  | Json.List entries ->
      checki "all entries parsed"
        (List.length (Newton_p4gen.Rules.entries_exn c))
        (List.length entries)
  | _ -> Alcotest.fail "expected an array"

let gen_json =
  QCheck.Gen.(
    sized_size (int_range 0 3) @@ fix (fun self n ->
        if n = 0 then
          oneof
            [ return Newton_util.Json.Null;
              map (fun b -> Newton_util.Json.Bool b) bool;
              map (fun i -> Newton_util.Json.Int i) (int_range (-1000000) 1000000);
              map (fun s -> Newton_util.Json.String s)
                (string_size ~gen:printable (int_range 0 12)) ]
        else
          oneof
            [ map (fun l -> Newton_util.Json.List l)
                (list_size (int_range 0 4) (self (n - 1)));
              map
                (fun kvs ->
                  (* keys must be unique for roundtrip equality *)
                  let _, kvs =
                    List.fold_left
                      (fun (i, acc) (k, v) -> (i + 1, (Printf.sprintf "%s_%d" k i, v) :: acc))
                      (0, []) kvs
                  in
                  Newton_util.Json.Obj (List.rev kvs))
                (list_size (int_range 0 4)
                   (pair (string_size ~gen:printable (int_range 0 8)) (self (n - 1)))) ]))

let qcheck_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"json: print/parse roundtrip"
    (QCheck.make ~print:Newton_util.Json.to_string gen_json)
    (fun v -> Newton_util.Json.of_string (Newton_util.Json.to_string v) = v)

let suite =
  [
    ("parse scalars", `Quick, test_parse_scalars);
    ("parse strings", `Quick, test_parse_strings);
    ("parse containers", `Quick, test_parse_containers);
    ("roundtrip", `Quick, test_roundtrip);
    ("rejects malformed", `Quick, test_rejects_malformed);
    ("accessors", `Quick, test_accessors);
    ("parses rule documents", `Quick, test_parses_rule_documents);
    QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
  ]
