(** Tests for Newton_service: the intent lifecycle state machine, the
    typed API's JSON codecs, the shared command tokenizer, and the
    daemon core — including submit-while-replaying equivalence against
    a static deployment. *)

open Newton_service

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* A deterministic fake clock so lifecycle timestamps are exact. *)
let make_clock () =
  let now = ref 1000.0 in
  ( (fun () ->
      now := !now +. 0.001;
      !now),
    now )

let q4_ast () = Newton_query.Catalog.by_id 4

(* A query the admission gate refuses: NA030, threshold unreachable. *)
let rejectable_dsl =
  "map(dip) | reduce(dip, count) | filter(count > 2147483647) | map(dip)"

(* ---------------- lifecycle legality ---------------- *)

let test_lifecycle_happy_path () =
  let intent =
    Intent.create ~id:1 ~name:"x" ~source:"q4" ~now:1. (q4_ast ())
  in
  checkb "starts submitted" true (intent.Intent.state = Intent.Submitted);
  List.iter
    (fun s ->
      match Intent.transition intent ~now:2. s with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)
    [ Intent.Analyzed; Intent.Placed; Intent.Active; Intent.Withdrawn ];
  checkb "ends withdrawn" true (intent.Intent.state = Intent.Withdrawn);
  checki "history has every state" 5 (List.length (Intent.history intent))

let test_no_active_without_placed () =
  (* Exhaustive edge check against the declared legality relation: the
     only inbound edge to Active is from Placed. *)
  List.iter
    (fun from ->
      let legal = Intent.can_transition from Intent.Active in
      checkb
        (Printf.sprintf "%s -> active" (Intent.state_to_string from))
        (from = Intent.Placed) legal)
    Intent.all_states;
  let intent =
    Intent.create ~id:1 ~name:"x" ~source:"q4" ~now:1. (q4_ast ())
  in
  checkb "submitted -> active refused" true
    (Result.is_error (Intent.transition intent ~now:2. Intent.Active));
  checkb "state unchanged on refusal" true
    (intent.Intent.state = Intent.Submitted)

let test_terminals_have_no_successors () =
  List.iter
    (fun terminal ->
      checkb
        (Intent.state_to_string terminal ^ " is terminal")
        true (Intent.is_terminal terminal);
      List.iter
        (fun into ->
          checkb
            (Printf.sprintf "%s -> %s illegal"
               (Intent.state_to_string terminal)
               (Intent.state_to_string into))
            false
            (Intent.can_transition terminal into))
        Intent.all_states)
    [ Intent.Withdrawn; Intent.Failed ]

let test_failed_reachable_from_non_terminals () =
  List.iter
    (fun from ->
      checkb
        (Printf.sprintf "%s -> failed" (Intent.state_to_string from))
        (not (Intent.is_terminal from))
        (Intent.can_transition from Intent.Failed))
    Intent.all_states

(* ---------------- tokenizer ---------------- *)

let test_tokenize_plain () =
  match Command.tokenize "submit q4 as  probe" with
  | Ok toks ->
      Alcotest.(check (list string)) "tokens" [ "submit"; "q4"; "as"; "probe" ] toks
  | Error m -> Alcotest.fail m

let test_tokenize_quotes () =
  (match Command.tokenize "submit 'filter(proto == udp) | map(dip)'" with
  | Ok toks ->
      Alcotest.(check (list string)) "single quotes"
        [ "submit"; "filter(proto == udp) | map(dip)" ]
        toks
  | Error m -> Alcotest.fail m);
  match Command.tokenize "a \"b \\\"c\\\" d\" e'f g'" with
  | Ok toks ->
      Alcotest.(check (list string)) "escapes and embedded quotes"
        [ "a"; "b \"c\" d"; "ef g" ] toks
  | Error m -> Alcotest.fail m

let test_tokenize_errors () =
  checkb "unterminated single" true
    (Result.is_error (Command.tokenize "a 'b"));
  checkb "unterminated double" true
    (Result.is_error (Command.tokenize "a \"b"));
  checkb "trailing escape" true
    (Result.is_error (Command.tokenize "a \"b\\"));
  (match Command.tokenize "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty line should tokenize to []");
  match Command.tokenize "a '' b" with
  | Ok toks ->
      Alcotest.(check (list string)) "empty quoted token survives"
        [ "a"; ""; "b" ] toks
  | Error m -> Alcotest.fail m

(* ---------------- request/response codec round-trips ---------------- *)

let roundtrip_request r =
  match Api.request_of_line (Api.request_to_line r) with
  | Ok r' -> checkb "request round-trips" true (r = r')
  | Error m -> Alcotest.fail m

let test_request_roundtrips () =
  List.iter roundtrip_request
    [
      Api.Submit { spec = Api.Catalog 4; name = None };
      Api.Submit { spec = Api.Catalog 12; name = Some "extra" };
      Api.Submit { spec = Api.Dsl rejectable_dsl; name = Some "bad one" };
      Api.Withdraw 3;
      Api.List_intents;
      Api.Status 7;
      Api.Stats Api.Json_format;
      Api.Stats Api.Prometheus_format;
      Api.Fail_switch 2;
      Api.Repair_switch 2;
      Api.Shutdown;
    ]

let sample_diag () =
  {
    Newton_analysis.Diag.code = "NA030";
    severity = Newton_analysis.Diag.Error;
    query_id = 1003;
    query_name = "bad";
    span = Newton_analysis.Diag.Prim { branch = 0; prim = 2 };
    message = "threshold can never hold";
    hint = Some "lower the threshold";
    witness = None;
  }

let sample_info ?(state = Intent.Active) () =
  {
    Intent.i_id = 3;
    i_name = "port_scan";
    i_query_id = 4;
    i_source = "q4";
    i_state = state;
    i_rules = 42;
    i_reports = 17;
    i_warnings = 1;
    i_errors = (if state = Intent.Failed then 1 else 0);
    i_submitted_at = 1754650000.123456;
    i_installed_at = (if state = Intent.Failed then None else Some 1754650000.623456);
    i_finished_at = None;
    i_install_latency = Some 0.0056;
    i_uninstall_latency = None;
    i_diags = (if state = Intent.Failed then [ sample_diag () ] else []);
  }

let roundtrip_response r =
  match Api.response_of_line (Api.response_to_line r) with
  | Ok r' -> checkb "response round-trips" true (r = r')
  | Error m -> Alcotest.fail m

let test_response_roundtrips () =
  List.iter roundtrip_response
    [
      Api.Accepted (sample_info ());
      Api.Refused { id = 9; diags = [ sample_diag () ] };
      Api.Withdrawn_ok { id = 9; latency = 0.0061 };
      Api.Intent_list [];
      Api.Intent_list [ sample_info (); sample_info ~state:Intent.Failed () ];
      Api.Intent_status (sample_info ~state:Intent.Failed ());
      Api.Stats_payload { format = Api.Prometheus_format; body = "# HELP x\n" };
      Api.Recovery_done None;
      Api.Recovery_done
        (Some
           {
             Api.rc_switch = 2;
             rc_event = `Fail;
             rc_slices_migrated = 3;
             rc_cells_moved = 120;
             rc_software_fallbacks = 1;
             rc_rules_installed = 14;
             rc_latency = 0.0123;
           });
      Api.Stopping;
      Api.Error_resp { code = "bad-state"; message = "intent #2 is failed" };
    ]

(* Epoch timestamps survive the codec exactly (integer microseconds,
   not %g-rendered floats). *)
let test_info_time_precision () =
  let info = sample_info () in
  match Api.response_of_line (Api.response_to_line (Api.Accepted info)) with
  | Ok (Api.Accepted i) ->
      checkb "submitted_at exact" true
        (Float.abs (i.Intent.i_submitted_at -. info.Intent.i_submitted_at)
        < 1e-6);
      checkb "installed_at exact" true
        (match (i.Intent.i_installed_at, info.Intent.i_installed_at) with
        | Some a, Some b -> Float.abs (a -. b) < 1e-6
        | _ -> false)
  | _ -> Alcotest.fail "accepted did not round-trip"

let test_request_of_tokens () =
  let ok line expect =
    match Result.bind (Command.tokenize line) Api.request_of_tokens with
    | Ok r -> checkb line true (r = expect)
    | Error m -> Alcotest.fail (line ^ ": " ^ m)
  in
  ok "submit q4" (Api.Submit { spec = Api.Catalog 4; name = None });
  ok "submit q4 as probe" (Api.Submit { spec = Api.Catalog 4; name = Some "probe" });
  ok
    (Printf.sprintf "submit '%s'" rejectable_dsl)
    (Api.Submit { spec = Api.Dsl rejectable_dsl; name = None });
  ok "withdraw 3" (Api.Withdraw 3);
  ok "list" Api.List_intents;
  ok "status 7" (Api.Status 7);
  ok "stats" (Api.Stats Api.Json_format);
  ok "stats prom" (Api.Stats Api.Prometheus_format);
  ok "fail-switch 2" (Api.Fail_switch 2);
  ok "repair-switch 2" (Api.Repair_switch 2);
  ok "shutdown" Api.Shutdown;
  checkb "withdraw x is an error" true
    (Result.is_error (Api.request_of_tokens [ "withdraw"; "x" ]));
  checkb "unknown command is an error" true
    (Result.is_error (Api.request_of_tokens [ "frobnicate" ]))

(* ---------------- daemon core ---------------- *)

let make_daemon ?replay () =
  let clock, _ = make_clock () in
  let topo = Newton_network.Topo.linear 4 in
  Daemon.create ~clock ?replay topo

let test_submit_withdraw_lifecycle () =
  let d = make_daemon () in
  (match Daemon.handle d (Api.Submit { spec = Api.Catalog 4; name = None }) with
  | Api.Accepted info ->
      checki "id 1" 1 info.Intent.i_id;
      checkb "active" true (info.Intent.i_state = Intent.Active);
      checkb "rules installed" true (info.Intent.i_rules > 0);
      checkb "install latency recorded" true
        (info.Intent.i_install_latency <> None)
  | other -> Alcotest.fail (Api.response_summary other));
  (match Daemon.handle d (Api.Withdraw 1) with
  | Api.Withdrawn_ok { id; _ } -> checki "withdrawn id" 1 id
  | other -> Alcotest.fail (Api.response_summary other));
  (* Withdrawn is terminal: a second withdraw is a bad-state error. *)
  (match Daemon.handle d (Api.Withdraw 1) with
  | Api.Error_resp { code; _ } -> checks "second withdraw" "bad-state" code
  | other -> Alcotest.fail (Api.response_summary other));
  match Daemon.handle d (Api.Status 1) with
  | Api.Intent_status info ->
      checkb "status shows withdrawn" true
        (info.Intent.i_state = Intent.Withdrawn);
      checkb "uninstall latency recorded" true
        (info.Intent.i_uninstall_latency <> None)
  | other -> Alcotest.fail (Api.response_summary other)

let test_rejected_intent_fails_with_diags () =
  let d = make_daemon () in
  (match
     Daemon.handle d (Api.Submit { spec = Api.Dsl rejectable_dsl; name = None })
   with
  | Api.Refused { id; diags } ->
      checki "id assigned" 1 id;
      checkb "NA030 attached" true
        (List.exists (fun g -> g.Newton_analysis.Diag.code = "NA030") diags)
  | other -> Alcotest.fail (Api.response_summary other));
  match Daemon.handle d (Api.Status 1) with
  | Api.Intent_status info ->
      checkb "failed" true (info.Intent.i_state = Intent.Failed);
      checkb "diags ride on the intent" true
        (List.exists
           (fun g -> g.Newton_analysis.Diag.code = "NA030")
           info.Intent.i_diags);
      checkb "error counted" true (info.Intent.i_errors > 0)
  | other -> Alcotest.fail (Api.response_summary other)

let test_unknown_ids_are_errors () =
  let d = make_daemon () in
  (match Daemon.handle d (Api.Withdraw 42) with
  | Api.Error_resp { code; _ } -> checks "withdraw" "unknown-intent" code
  | other -> Alcotest.fail (Api.response_summary other));
  (match Daemon.handle d (Api.Status 42) with
  | Api.Error_resp { code; _ } -> checks "status" "unknown-intent" code
  | other -> Alcotest.fail (Api.response_summary other));
  match Daemon.handle d (Api.Submit { spec = Api.Catalog 99; name = None }) with
  | Api.Error_resp { code; _ } -> checks "submit q99" "bad-query" code
  | other -> Alcotest.fail (Api.response_summary other)

let test_handle_line_text_and_json () =
  let d = make_daemon () in
  (match Daemon.handle_line d "submit q4" with
  | Api.Accepted _ -> ()
  | other -> Alcotest.fail (Api.response_summary other));
  (match
     Daemon.handle_line d
       (Api.request_to_line (Api.Submit { spec = Api.Catalog 1; name = None }))
   with
  | Api.Accepted info -> checki "json submit id" 2 info.Intent.i_id
  | other -> Alcotest.fail (Api.response_summary other));
  (match Daemon.handle_line d "{not json" with
  | Api.Error_resp { code; _ } -> checks "bad json" "bad-request" code
  | other -> Alcotest.fail (Api.response_summary other));
  match Daemon.handle_line d "submit 'q4" with
  | Api.Error_resp { code; _ } -> checks "bad quoting" "bad-request" code
  | other -> Alcotest.fail (Api.response_summary other)

let test_shutdown_sets_stopping () =
  let d = make_daemon () in
  checkb "not stopping" false (Daemon.stopping d);
  (match Daemon.handle d Api.Shutdown with
  | Api.Stopping -> ()
  | other -> Alcotest.fail (Api.response_summary other));
  checkb "stopping" true (Daemon.stopping d)

(* ---------------- churn vs static equivalence ---------------- *)

let report_key r =
  let open Newton_query.Report in
  ( r.query_id,
    r.window,
    Array.to_list r.keys,
    r.value,
    r.value2 )

let sorted_keys rs = List.sort compare (List.map report_key rs)

(* Submitting an intent while a trace replays, then withdrawing a
   different one mid-replay, must leave the surviving intent's
   reconciled reports identical to a static deploy-everything-first
   run over the same trace. *)
let test_churn_matches_static () =
  let topo () = Newton_network.Topo.linear 4 in
  let trace =
    Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite
      ~seed:7
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 800)
  in
  let n = Newton_trace.Gen.length trace in
  (* churned run: q1 before replay, q4 submitted mid-replay and kept,
     q1 withdrawn mid-replay *)
  let replay =
    Replay.of_trace ~topo:(topo ()) ~desc:"churn" trace
  in
  let clock, _ = make_clock () in
  let d = Daemon.create ~clock ~replay ~replay_budget:max_int (topo ()) in
  (match Daemon.handle d (Api.Submit { spec = Api.Catalog 1; name = None }) with
  | Api.Accepted _ -> ()
  | other -> Alcotest.fail (Api.response_summary other));
  let third = n / 3 in
  let stepped = Replay.step replay ~now:infinity ~budget:third (Daemon.deploy d) in
  checki "first third replayed" third stepped;
  (match Daemon.handle d (Api.Submit { spec = Api.Catalog 4; name = None }) with
  | Api.Accepted _ -> ()
  | other -> Alcotest.fail (Api.response_summary other));
  ignore (Replay.step replay ~now:infinity ~budget:third (Daemon.deploy d));
  (match Daemon.handle d (Api.Withdraw 1) with
  | Api.Withdrawn_ok _ -> ()
  | other -> Alcotest.fail (Api.response_summary other));
  ignore (Replay.run_to_end replay (Daemon.deploy d));
  checkb "replay finished" true (Replay.finished replay);
  let churned =
    List.filter
      (fun r -> r.Newton_query.Report.query_id = 4)
      (Newton_controller.Deploy.reconciled_reports (Daemon.deploy d))
  in
  (* static run: only the surviving query (q4), deployed before the
     same packets it saw in the churned run (the last two thirds) *)
  let deploy = Newton_controller.Deploy.create (topo ()) in
  (match
     Newton_controller.Deploy.deploy_checked deploy
       (Newton_compiler.Compose.compile (Newton_query.Catalog.by_id 4))
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "static deploy refused");
  let static_replay =
    Replay.of_trace ~topo:(topo ()) ~desc:"static" trace
  in
  ignore (Replay.step static_replay ~now:infinity ~budget:third deploy);
  (* q4 was not installed for the first third in the churned run; the
     static run must compare over the same surviving window, so drop
     the reports the static run emitted there. *)
  let early =
    List.filter
      (fun r -> r.Newton_query.Report.query_id = 4)
      (Newton_controller.Deploy.reconciled_reports deploy)
  in
  ignore (Replay.run_to_end static_replay deploy);
  let static_all =
    List.filter
      (fun r -> r.Newton_query.Report.query_id = 4)
      (Newton_controller.Deploy.reconciled_reports deploy)
  in
  let early_keys = sorted_keys early in
  let static_keys =
    List.filter
      (fun k -> not (List.mem k early_keys))
      (sorted_keys static_all)
  in
  let churned_keys = sorted_keys churned in
  (* zero report loss: everything the static run reports after the
     install point is present in the churned run *)
  let lost =
    List.filter (fun k -> not (List.mem k churned_keys)) static_keys
  in
  checki "zero report loss" 0 (List.length lost);
  let extra =
    List.filter (fun k -> not (List.mem k static_keys)) churned_keys
  in
  (* window boundaries at the install point may add one partial-window
     report; nothing beyond that *)
  checkb "no spurious report flood" true (List.length extra <= 2)

let test_replay_budget_bounds_step () =
  let topo = Newton_network.Topo.linear 4 in
  let trace =
    Newton_trace.Gen.generate ~seed:3
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 200)
  in
  let replay = Replay.of_trace ~topo ~desc:"bounded" trace in
  let deploy = Newton_controller.Deploy.create topo in
  let stepped = Replay.step replay ~now:infinity ~budget:5 deploy in
  checki "budget respected" 5 stepped;
  checki "position advanced" 5 (Replay.position replay)

let suite =
  [
    Alcotest.test_case "lifecycle happy path" `Quick test_lifecycle_happy_path;
    Alcotest.test_case "no active without placed" `Quick
      test_no_active_without_placed;
    Alcotest.test_case "terminals have no successors" `Quick
      test_terminals_have_no_successors;
    Alcotest.test_case "failed reachable from non-terminals" `Quick
      test_failed_reachable_from_non_terminals;
    Alcotest.test_case "tokenize plain" `Quick test_tokenize_plain;
    Alcotest.test_case "tokenize quotes" `Quick test_tokenize_quotes;
    Alcotest.test_case "tokenize errors" `Quick test_tokenize_errors;
    Alcotest.test_case "request codec round-trips" `Quick
      test_request_roundtrips;
    Alcotest.test_case "response codec round-trips" `Quick
      test_response_roundtrips;
    Alcotest.test_case "info time precision" `Quick test_info_time_precision;
    Alcotest.test_case "request of tokens" `Quick test_request_of_tokens;
    Alcotest.test_case "submit/withdraw lifecycle" `Quick
      test_submit_withdraw_lifecycle;
    Alcotest.test_case "rejected intent fails with diags" `Quick
      test_rejected_intent_fails_with_diags;
    Alcotest.test_case "unknown ids are errors" `Quick
      test_unknown_ids_are_errors;
    Alcotest.test_case "handle_line text and json" `Quick
      test_handle_line_text_and_json;
    Alcotest.test_case "shutdown sets stopping" `Quick
      test_shutdown_sets_stopping;
    Alcotest.test_case "churn matches static deploy" `Quick
      test_churn_matches_static;
    Alcotest.test_case "replay budget bounds step" `Quick
      test_replay_budget_bounds_step;
  ]
