(** Telemetry subsystem tests: counter monotonicity under replay,
    parallel sink merge == sequential sink (per-query differential over
    the full catalog), sketch-health gauge bounds, and golden
    Prometheus / JSON renderings. *)

open Newton_query
open Newton_runtime
open Newton_telemetry

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let compile = Newton_compiler.Compose.compile

let attack_trace ?(flows = 400) ?(seed = 7) () =
  Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite ~seed
    (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like flows)

(* ---------------- sink basics ---------------- *)

let test_null_sink_is_inert () =
  let s = Stats.null in
  checkb "disabled" false (Stats.enabled s);
  Stats.bump s Stats.Packets_processed 5;
  Stats.observe_report_latency s 0.1;
  checki "no count" 0 (Stats.get s Stats.Packets_processed);
  checkb "no histogram" true (Stats.report_latency s = None)

let test_bump_and_get () =
  let s = Stats.create () in
  checkb "enabled" true (Stats.enabled s);
  Stats.bump s Stats.Cqe_hops 3;
  Stats.bump s Stats.Cqe_hops 4;
  checki "accumulates" 7 (Stats.get s Stats.Cqe_hops);
  checki "others zero" 0 (Stats.get s Stats.Guard_stops)

let test_merge_adds_counters_and_hists () =
  let a = Stats.create () and b = Stats.create () in
  Stats.bump a Stats.Reports_emitted 2;
  Stats.bump b Stats.Reports_emitted 5;
  Stats.observe_report_latency a 0.001;
  Stats.observe_report_latency b 0.5;
  let m = Stats.merge a b in
  checki "counters add" 7 (Stats.get m Stats.Reports_emitted);
  (match Stats.report_latency m with
  | None -> Alcotest.fail "merged sink lost histogram"
  | Some h ->
      checki "observations add" 2 (Hist.count h));
  (* null is the identity on both sides *)
  checki "null left" 7 (Stats.get (Stats.merge Stats.null m) Stats.Reports_emitted);
  checki "null right" 7 (Stats.get (Stats.merge m Stats.null) Stats.Reports_emitted)

(* ---------------- counter monotonicity ---------------- *)

(* Replay a trace in chunks: every counter is non-decreasing across
   chunk boundaries (counters only ever bump). *)
let test_counters_monotonic () =
  let trace = attack_trace () in
  let packets = Newton_trace.Gen.packets trace in
  let e = Engine.create ~switch_id:0 () in
  ignore (Engine.install e (compile (Catalog.q1 ())));
  ignore (Engine.install e (compile (Catalog.q4 ())));
  let prev = Array.make Stats.num_keys 0 in
  let n = Array.length packets in
  let chunk = max 1 (n / 7) in
  let i = ref 0 in
  while !i < n do
    let hi = min n (!i + chunk) in
    for j = !i to hi - 1 do
      Engine.process_packet e packets.(j)
    done;
    i := hi;
    List.iter
      (fun k ->
        let v = Stats.get (Engine.sink e) k in
        if v < prev.(Stats.index k) then
          Alcotest.failf "counter %s decreased: %d -> %d" (Stats.name k)
            prev.(Stats.index k) v;
        prev.(Stats.index k) <- v)
      Stats.all
  done;
  checki "packets counted" n (Stats.get (Engine.sink e) Stats.Packets_processed)

let test_engine_counters_track_reality () =
  let trace = attack_trace () in
  let e = Engine.create ~switch_id:0 () in
  ignore (Engine.install e (compile (Catalog.q4 ())));
  Newton_trace.Gen.iter (Engine.process_packet e) trace;
  let s = Engine.sink e in
  checki "packets" (Engine.packets_seen e) (Stats.get s Stats.Packets_processed);
  checki "reports" (Engine.report_count e) (Stats.get s Stats.Reports_emitted);
  checkb "module hits happened" true (Stats.get s Stats.Module_hits_k > 0)

(* ---------------- parallel merge == sequential ---------------- *)

(* Branch-key sharding + wide banks (the differential setup of the
   parallel suite): the merged per-domain sinks must total exactly the
   sequential engine's sink, for every catalog query.  Window_rolls is
   excluded — each shard rolls its own window clock, so roll counts
   legitimately differ from the single sequential clock. *)
let differential_options =
  { Newton_compiler.Decompose.default_options with registers = 65536 }

let test_parallel_sink_equals_sequential () =
  List.iter
    (fun q ->
      let trace = attack_trace () in
      let compiled = compile ~options:differential_options q in
      let seq = Engine.create ~switch_id:0 () in
      ignore (Engine.install seq compiled);
      Newton_trace.Gen.iter (Engine.process_packet seq) trace;
      let par =
        Parallel_engine.create ~jobs:4 ~shard_key:(Shard.for_compiled compiled)
          ~switch_id:0 ()
      in
      ignore (Parallel_engine.install par compiled);
      Parallel_engine.process_trace par trace;
      let ms = Engine.sink seq and mp = Parallel_engine.merged_sink par in
      List.iter
        (fun k ->
          if k <> Stats.Window_rolls then
            checki
              (Printf.sprintf "Q%d %s" q.Ast.id (Stats.name k))
              (Stats.get ms k) (Stats.get mp k))
        Stats.all)
    (Catalog.all ())

let test_set_telemetry_toggles_shards () =
  let par = Parallel_engine.create ~jobs:2 ~switch_id:0 () in
  Parallel_engine.set_telemetry par false;
  Array.iter
    (fun e -> checkb "disabled" false (Stats.enabled (Engine.sink e)))
    (Parallel_engine.shard_engines par);
  Parallel_engine.set_telemetry par true;
  Array.iter
    (fun e -> checkb "re-enabled" true (Stats.enabled (Engine.sink e)))
    (Parallel_engine.shard_engines par)

(* ---------------- health gauges ---------------- *)

let test_health_formulas () =
  Alcotest.(check (float 1e-9)) "utilization" 0.5 (Health.utilization ~used:128 ~capacity:256);
  Alcotest.(check (float 1e-9)) "utilization clamps" 1.0 (Health.utilization ~used:300 ~capacity:256);
  Alcotest.(check (float 1e-9)) "bloom fill" 0.25 (Health.bloom_fill ~set_bits:16 ~bits:64);
  Alcotest.(check (float 1e-9)) "bloom fpr = product" 0.125
    (Health.bloom_fpr ~fills:[ 0.5; 0.5; 0.5 ]);
  Alcotest.(check (float 1e-9)) "cm epsilon" (Float.exp 1.0 /. 1024.0)
    (Health.cm_epsilon ~width:1024);
  Alcotest.(check (float 1e-9)) "cm delta" (Float.exp (-3.0)) (Health.cm_delta ~depth:3);
  Alcotest.(check (float 1e-6)) "cm bound = eps * mass"
    (Health.cm_epsilon ~width:512 *. 1000.0)
    (Health.cm_error_bound ~width:512 ~mass:1000)

(* Every exported health gauge of a live engine stays in its legal
   range: fills and fprs in [0,1], epsilon/delta in (0,1], bounds
   non-negative. *)
let test_health_gauges_bounded () =
  let trace = attack_trace () in
  let e = Engine.create ~switch_id:0 () in
  List.iter (fun q -> ignore (Engine.install e (compile q))) (Catalog.all ());
  Newton_trace.Gen.iter (Engine.process_packet e) trace;
  let snap = Introspect.engine_metrics e in
  let check_range name lo hi =
    match Snapshot.find name snap with
    | None -> ()
    | Some m ->
        List.iter
          (fun (s : Metric.sample) ->
            match s.Metric.value with
            | Metric.V f ->
                if f < lo || f > hi then
                  Alcotest.failf "%s out of range: %g" name f
            | Metric.Buckets _ -> ())
          m.Metric.samples
  in
  check_range "newton_bloom_fill_ratio" 0.0 1.0;
  check_range "newton_bloom_fpr_estimate" 0.0 1.0;
  check_range "newton_module_cell_utilization" 0.0 1.0;
  check_range "newton_cm_epsilon" 0.0 1.0;
  check_range "newton_cm_delta" 0.0 1.0;
  check_range "newton_cm_error_bound" 0.0 infinity;
  checkb "bloom gauge present" true
    (Snapshot.find "newton_bloom_fpr_estimate" snap <> None
    || Snapshot.find "newton_cm_epsilon" snap <> None)

let test_cell_utilization_tracks_rules () =
  let e = Engine.create ~switch_id:0 () in
  ignore (Engine.install e (compile (Catalog.q4 ())));
  let snap = Introspect.engine_metrics e in
  let total_cells = Snapshot.total "newton_module_cell_rules" snap in
  checkb "cells hold the installed rules" true (total_cells > 0.0);
  Alcotest.(check (float 1e-9))
    "utilization = rules / capacity"
    (total_cells
    /. float_of_int Newton_dataplane.Module_cost.rules_per_module)
    (Snapshot.total "newton_module_cell_utilization" snap)

(* ---------------- histograms ---------------- *)

let test_hist_merge_equals_concat () =
  let a = Hist.create Hist.latency_bounds
  and b = Hist.create Hist.latency_bounds
  and all = Hist.create Hist.latency_bounds in
  let xs = [ 0.0001; 0.003; 0.2; 5.0; 100.0 ]
  and ys = [ 0.0005; 0.05; 1.0 ] in
  List.iter (Hist.observe a) xs;
  List.iter (Hist.observe b) ys;
  List.iter (Hist.observe all) (xs @ ys);
  let m = Hist.merge a b in
  checkb "bucket-wise equal" true (Hist.counts m = Hist.counts all);
  checki "count" (Hist.count all) (Hist.count m);
  Alcotest.(check (float 1e-9)) "sum" (Hist.sum all) (Hist.sum m)

let test_hist_rejects_mismatched_bounds () =
  let a = Hist.create Hist.latency_bounds and b = Hist.create Hist.count_bounds in
  checkb "raises" true
    (try
       ignore (Hist.merge a b);
       false
     with Invalid_argument _ -> true)

(* ---------------- golden exports ---------------- *)

let golden_snapshot () =
  let h = Hist.create [| 1.0; 5.0 |] in
  Hist.observe h 0.5;
  Hist.observe h 2.0;
  Hist.observe h 99.0;
  [
    Metric.counter ~name:"newton_test_total" ~help:"A test counter"
      [
        Metric.vi ~labels:[ ("kind", "K") ] 3;
        Metric.vi ~labels:[ ("kind", "R") ] 0;
      ];
    Metric.gauge ~name:"newton_test_ratio" ~help:"A test gauge"
      [ Metric.v 0.25 ];
    Metric.histogram ~name:"newton_test_seconds" ~help:"A test histogram"
      [ Metric.sample (Hist.to_value h) ];
  ]

let test_prometheus_golden () =
  let expected =
    "# HELP newton_test_total A test counter\n\
     # TYPE newton_test_total counter\n\
     newton_test_total{kind=\"K\"} 3\n\
     newton_test_total{kind=\"R\"} 0\n\
     # HELP newton_test_ratio A test gauge\n\
     # TYPE newton_test_ratio gauge\n\
     newton_test_ratio 0.25\n\
     # HELP newton_test_seconds A test histogram\n\
     # TYPE newton_test_seconds histogram\n\
     newton_test_seconds_bucket{le=\"1\"} 1\n\
     newton_test_seconds_bucket{le=\"5\"} 2\n\
     newton_test_seconds_bucket{le=\"+Inf\"} 3\n\
     newton_test_seconds_sum 101.5\n\
     newton_test_seconds_count 3\n"
  in
  Alcotest.(check string)
    "prometheus text" expected
    (Export.to_prometheus (golden_snapshot ()))

let test_json_golden () =
  let json = Export.to_json_string (golden_snapshot ()) in
  (* exact-string golden on the counter family; structural checks on
     the rest (bucket encoding is exercised by its own assertions) *)
  checkb "counter family" true
    (let needle =
       "{\"name\":\"newton_test_total\",\"kind\":\"counter\",\"help\":\"A \
        test counter\",\"samples\":[{\"labels\":{\"kind\":\"K\"},\"value\":3},{\"labels\":{\"kind\":\"R\"},\"value\":0}]}"
     in
     let rec contains i =
       i + String.length needle <= String.length json
       && (String.sub json i (String.length needle) = needle
          || contains (i + 1))
     in
     contains 0);
  (* JSON buckets are non-cumulative (the +Inf bucket holds only its
     own observation), unlike the cumulative Prometheus rendering *)
  checkb "inf bucket encoded" true
    (let needle = "\"le\":\"+Inf\",\"count\":1" in
     let rec contains i =
       i + String.length needle <= String.length json
       && (String.sub json i (String.length needle) = needle
          || contains (i + 1))
     in
     contains 0)

(* Prometheus rendering of a real engine parses as exposition lines:
   every non-comment line is [name{labels} value]. *)
let test_prometheus_well_formed () =
  let e = Engine.create ~switch_id:0 () in
  ignore (Engine.install e (compile (Catalog.q1 ())));
  Newton_trace.Gen.iter (Engine.process_packet e) (attack_trace ());
  let text = Export.to_prometheus (Introspect.engine_metrics e) in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "malformed line: %s" line
        | Some i -> (
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            match float_of_string_opt v with
            | Some _ -> ()
            | None -> Alcotest.failf "bad value in line: %s" line))
    (String.split_on_char '\n' text)

(* ---------------- snapshot algebra ---------------- *)

let test_snapshot_merge_concatenates () =
  let s1 = Snapshot.of_sink ~labels:[ ("switch", "0") ] (Stats.create ()) in
  let s2 = Snapshot.of_sink ~labels:[ ("switch", "1") ] (Stats.create ()) in
  let m = Snapshot.merge s1 s2 in
  checki "families not duplicated" (List.length s1) (List.length m);
  match Snapshot.find "newton_packets_processed_total" m with
  | None -> Alcotest.fail "family missing"
  | Some f -> checki "samples from both switches" 2 (List.length f.Metric.samples)

let test_snapshot_total_filters () =
  let s = Stats.create () in
  Stats.bump s Stats.Module_hits_k 5;
  Stats.bump s Stats.Module_hits_r 7;
  let snap = Snapshot.of_sink s in
  Alcotest.(check (float 1e-9))
    "total over kinds" 12.0
    (Snapshot.total "newton_module_hits_total" snap);
  Alcotest.(check (float 1e-9))
    "filtered by label" 7.0
    (Snapshot.total ~where:[ ("kind", "R") ] "newton_module_hits_total" snap)

let suite =
  [
    Alcotest.test_case "null sink is inert" `Quick test_null_sink_is_inert;
    Alcotest.test_case "bump and get" `Quick test_bump_and_get;
    Alcotest.test_case "merge adds counters and hists" `Quick
      test_merge_adds_counters_and_hists;
    Alcotest.test_case "counters monotonic under replay" `Quick
      test_counters_monotonic;
    Alcotest.test_case "engine counters track reality" `Quick
      test_engine_counters_track_reality;
    Alcotest.test_case "parallel merged sink = sequential (catalog)" `Slow
      test_parallel_sink_equals_sequential;
    Alcotest.test_case "set_telemetry toggles shards" `Quick
      test_set_telemetry_toggles_shards;
    Alcotest.test_case "health formulas" `Quick test_health_formulas;
    Alcotest.test_case "health gauges bounded" `Quick test_health_gauges_bounded;
    Alcotest.test_case "cell utilization tracks rules" `Quick
      test_cell_utilization_tracks_rules;
    Alcotest.test_case "hist merge = concat" `Quick test_hist_merge_equals_concat;
    Alcotest.test_case "hist rejects mismatched bounds" `Quick
      test_hist_rejects_mismatched_bounds;
    Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
    Alcotest.test_case "json golden" `Quick test_json_golden;
    Alcotest.test_case "prometheus well-formed" `Quick
      test_prometheus_well_formed;
    Alcotest.test_case "snapshot merge concatenates" `Quick
      test_snapshot_merge_concatenates;
    Alcotest.test_case "snapshot total filters" `Quick
      test_snapshot_total_filters;
  ]
