(** Tests for the P4 interpreter subsystem: program parsing, packet
    synthesis, rule-document round-trips, and the differential harness
    proving the interpreted pipeline reports exactly what the
    simulator engine reports on the pinned mixed corpus. *)

open Newton_p4sim

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let program_text = lazy (Newton_p4gen.Emit.program ())
let program = lazy (P4parse.parse (Lazy.force program_text))

(* ---------------- parsing the emitted program ---------------- *)

let test_emitted_program_parses () =
  let p = Lazy.force program in
  checkb "headers_t declared" true
    (P4ast.find_struct p "headers_t" <> None);
  checkb "metadata_t declared" true
    (P4ast.find_struct p "metadata_t" <> None);
  checkb "parser has a start state" true (P4ast.find_state p "start" <> None);
  let ingress =
    List.find_opt
      (fun (c : P4ast.control) -> c.P4ast.c_tables <> [])
      p.P4ast.controls
  in
  match ingress with
  | None -> Alcotest.fail "no control with tables"
  | Some c ->
      checkb "ingress declares the register file" true
        (List.exists (fun (n, _) -> n = "newton_state") c.P4ast.c_registers);
      (* default layout: 12 stages x 2 sets x (K,H,S,R,T) + init,
         resume, recirc, fin *)
      checki "table count" ((12 * 2 * 5) + 4) (List.length c.P4ast.c_tables)

let test_parse_rejects_garbage () =
  checkb "syntax error is typed" true
    (try
       ignore (P4parse.parse "control { this is not p4 }");
       false
     with P4parse.Parse_error _ -> true)

(* ---------------- rule-document round-trip ---------------- *)

let test_rules_json_round_trip () =
  List.iter
    (fun q ->
      let entries =
        Newton_p4gen.Rules.entries_exn
          (Newton_compiler.Compose.compile q)
      in
      let back = P4rules.of_json (Newton_p4gen.Rules.to_json entries) in
      checkb
        (Printf.sprintf "Q%d rules survive JSON round-trip"
           q.Newton_query.Ast.id)
        true
        (entries = back))
    [ Newton_query.Catalog.q4 (); Newton_query.Catalog.q12 ();
      Newton_query.Catalog.q17 () ]

let test_bad_rule_document_rejected () =
  checkb "malformed document is typed" true
    (try ignore (P4rules.of_json "{\"not\":\"an array\"}"); false
     with P4rules.Bad_document _ -> true)

(* ---------------- packet synthesis ---------------- *)

let test_phv_typed_errors () =
  let expect what err pkt =
    match Phv.synthesize pkt with
    | Error e -> Alcotest.(check string) what err (Phv.error_to_string e)
    | Ok _ -> Alcotest.failf "%s: expected %s" what err
  in
  expect "dns needs port 53"
    (Phv.error_to_string Phv.Dns_without_port_53)
    (Newton_packet.Packet.make ~proto:17 ~src_port:1234 ~dst_port:4444
       ~dns_qr:1 ());
  expect "tunnels are v4-only"
    (Phv.error_to_string Phv.Tunnel_over_ipv6)
    (Newton_packet.Packet.make ~ip_ver:6 ~proto:17 ~tun_id:9 ());
  expect "ip version is 4 or 6"
    (Phv.error_to_string (Phv.Bad_ip_version 5))
    (Newton_packet.Packet.make ~ip_ver:5 ())

let test_phv_corpus_fully_encodable () =
  (* Every packet the generator can produce has a wire encoding. *)
  let n_bad = ref 0 in
  List.iter
    (fun pkt ->
      match Phv.synthesize pkt with Ok _ -> () | Error _ -> incr n_bad)
    (Corpus.coverage_packets ~scale:0.02 ());
  checki "unencodable packets" 0 !n_bad

(* ---------------- the differential ---------------- *)

(* The tentpole acceptance check: identical report multisets between
   the simulator engine and the interpreted P4 pipeline for every
   catalog query Q1-Q17 on the pinned mixed v4/v6/ICMPv6/tunnel
   corpus, with full packet coverage and at least one report per
   query (so the identity is never vacuous). *)
let test_differential_all_queries () =
  let packets = Corpus.coverage_packets () in
  List.iter
    (fun q ->
      match Diff.run_query q packets with
      | Error issue ->
          Alcotest.failf "Q%d has no rule encoding: %s" q.Newton_query.Ast.id
            (Newton_p4gen.Rules.issue_to_string issue)
      | Ok r ->
          checki
            (Printf.sprintf "Q%d: all packets encodable" q.Newton_query.Ast.id)
            0 r.Diff.skipped;
          checkb
            (Printf.sprintf "Q%d: engine actually reports"
               q.Newton_query.Ast.id)
            true
            (r.Diff.engine_reports <> []);
          if not (Diff.matched r) then
            Alcotest.failf "Q%d diverged: %s" q.Newton_query.Ast.id
              (Diff.describe r))
    (Newton_query.Catalog.all () @ Newton_query.Catalog.extras ())

(* Divergence is detected, not defined away: perturb one interpreter
   report and the harness must flag the outcome. *)
let test_differential_detects_divergence () =
  let packets = Corpus.coverage_packets ~scale:0.02 () in
  match Diff.run_query (Newton_query.Catalog.q1 ()) packets with
  | Error _ -> Alcotest.fail "q1 must have a rule encoding"
  | Ok r ->
      checkb "baseline matches" true (Diff.matched r);
      checkb "baseline reports" true (r.Diff.p4_reports <> []);
      let broken =
        { r with Diff.p4_reports = List.tl r.Diff.p4_reports }
      in
      checkb "dropped report detected" false (Diff.matched broken);
      checkb "disagreement localized" true
        (match Diff.first_disagreement broken with
        | Some (`Engine_only _) -> true
        | _ -> false)

let suite =
  [
    ("emitted program parses", `Quick, test_emitted_program_parses);
    ("parse rejects garbage", `Quick, test_parse_rejects_garbage);
    ("rules json round trip", `Quick, test_rules_json_round_trip);
    ("bad rule document rejected", `Quick, test_bad_rule_document_rejected);
    ("phv typed errors", `Quick, test_phv_typed_errors);
    ("phv corpus fully encodable", `Quick, test_phv_corpus_fully_encodable);
    ("differential detects divergence", `Quick, test_differential_detects_divergence);
    ("differential all queries", `Slow, test_differential_all_queries);
  ]
