(** Tests for the concurrent-query scheduler (the §7 open question). *)

open Newton_query
open Newton_controller

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let d ?(weight = 1.0) ?(min_registers = 256) ?(max_registers = 8192) q =
  Scheduler.demand ~weight ~min_registers ~max_registers q

let test_demand_validation () =
  checkb "rejects zero weight" true
    (try ignore (Scheduler.demand ~weight:0.0 (Catalog.q1 ())); false
     with Invalid_argument _ -> true);
  checkb "rejects inverted band" true
    (try ignore (Scheduler.demand ~min_registers:100 ~max_registers:50 (Catalog.q1 ())); false
     with Invalid_argument _ -> true)

let test_everything_fits_when_pool_is_large () =
  let plan =
    Scheduler.plan ~register_pool:1_000_000
      (List.map (fun q -> d q) (Catalog.all ()))
  in
  checki "all admitted" 9 (List.length plan.Scheduler.admitted);
  checki "none rejected" 0 (List.length plan.Scheduler.rejected)

let test_rejects_when_pool_too_small () =
  let plan =
    Scheduler.plan ~register_pool:2_000
      (List.map (fun q -> d ~min_registers:512 q) (Catalog.all ()))
  in
  checkb "some rejected under pressure" true (plan.Scheduler.rejected <> []);
  checkb "pool respected" true
    (plan.Scheduler.pool_used <= plan.Scheduler.pool_total)

let test_minimums_guaranteed () =
  let plan =
    Scheduler.plan ~register_pool:50_000
      (List.map (fun q -> d ~min_registers:512 q) (Catalog.all ()))
  in
  List.iter
    (fun (a : Scheduler.assignment) ->
      checkb "per-array minimum honoured" true (a.Scheduler.registers >= 512))
    plan.Scheduler.admitted

let test_waterfill_favours_heavy_queries () =
  let q1 = Catalog.q1 () and q4 = Catalog.q4 () in
  let plan =
    Scheduler.plan ~register_pool:50_000
      [ d ~weight:10.0 ~max_registers:65536 q1;
        d ~weight:1.0 ~max_registers:65536 q4 ]
  in
  let r q = Option.get (Scheduler.registers_of plan q) in
  checkb "10x weight gets more registers per array" true (r q1 > r q4)

let test_waterfill_respects_max () =
  let q1 = Catalog.q1 () in
  let plan =
    Scheduler.plan ~register_pool:10_000_000
      [ d ~max_registers:4096 q1 ]
  in
  checkb "capped at max" true
    (Option.get (Scheduler.registers_of plan q1) <= 4096)

let test_rule_capacity_admission () =
  (* Module tables hold 256 rules per cell; 300 Q4 clones cannot all be
     admitted no matter the register pool. *)
  let demands = List.init 300 (fun _ -> d ~min_registers:1 (Catalog.q4 ())) in
  let plan = Scheduler.plan ~register_pool:10_000_000 demands in
  checki "admission stops at the rule capacity"
    Newton_dataplane.Module_cost.rules_per_module
    (List.length plan.Scheduler.admitted);
  checki "rest rejected" (300 - 256) (List.length plan.Scheduler.rejected)

let test_plan_is_installable () =
  (* The planned register budgets compile and install within engine
     capacity. *)
  let plan =
    Scheduler.plan ~register_pool:100_000
      [ d ~weight:4.0 (Catalog.q1 ()); d (Catalog.q4 ()); d (Catalog.q5 ()) ]
  in
  let e = Newton_runtime.Engine.create ~switch_id:0 () in
  List.iter
    (fun (a : Scheduler.assignment) ->
      let options =
        { Newton_compiler.Decompose.default_options with
          registers = a.Scheduler.registers }
      in
      ignore
        (Newton_runtime.Engine.install e
           (Newton_compiler.Compose.compile ~options a.Scheduler.a_query)))
    plan.Scheduler.admitted;
  checki "all planned queries installed" 3
    (List.length (Newton_runtime.Engine.instances e))

let test_allocation_improves_skewed_accuracy () =
  (* Two Q1-style detectors: one watches heavy traffic (many keys), one
     light.  Weighted allocation beats an even split on the heavy one's
     accuracy at equal total memory. *)
  let heavy_trace =
    Newton_trace.Gen.generate
      ~attacks:
        [ Newton_trace.Attack.Syn_flood
            { victim = Newton_trace.Attack.host_of 1; attackers = 60; syns_per_attacker = 40 } ]
      ~seed:42
      (Newton_trace.Profile.with_flows
         { Newton_trace.Profile.caida_like with mean_flow_pkts = 4.0 }
         12_000)
  in
  let q = Catalog.q1 ~th:5 () in
  let truth = Ref_eval.evaluate q (Newton_trace.Gen.packets heavy_trace) in
  let precision registers =
    let options =
      { Newton_compiler.Decompose.default_options with registers }
    in
    let dev = Newton_core.Newton.Device.create ~options () in
    let _ = Newton_core.Newton.Device.add_query dev q in
    Newton_core.Newton.Device.process_trace dev heavy_trace;
    (Newton_runtime.Analyzer.score ~truth
       ~detected:(Newton_core.Newton.Device.reports dev)).Newton_runtime.Analyzer.precision
  in
  (* Even split of a 2048-register pool across two queries: 1024 each.
     Weighted plan gives the heavy query most of the pool. *)
  let plan =
    Scheduler.plan ~register_pool:(2 * 2048 * 2 (* arrays *) )
      [ Scheduler.demand ~weight:8.0 ~min_registers:256 ~max_registers:4096 q;
        Scheduler.demand ~weight:1.0 ~min_registers:256 ~max_registers:4096 (Catalog.q10 ()) ]
  in
  let planned = Option.get (Scheduler.registers_of plan q) in
  checkb "heavy query gets more than an even split" true (planned > 1024);
  checkb "weighted allocation at least as accurate" true
    (precision planned >= precision 1024)

let suite =
  [
    ("demand validation", `Quick, test_demand_validation);
    ("everything fits in a large pool", `Quick, test_everything_fits_when_pool_is_large);
    ("rejects when pool too small", `Quick, test_rejects_when_pool_too_small);
    ("minimums guaranteed", `Quick, test_minimums_guaranteed);
    ("waterfill favours heavy queries", `Quick, test_waterfill_favours_heavy_queries);
    ("waterfill respects max", `Quick, test_waterfill_respects_max);
    ("rule capacity admission", `Quick, test_rule_capacity_admission);
    ("plan is installable", `Quick, test_plan_is_installable);
    ("allocation improves skewed accuracy", `Slow, test_allocation_improves_skewed_accuracy);
  ]
