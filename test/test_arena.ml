(** Properties of the pre-sharded replay arenas.

    The arena builder ({!Newton_runtime.Arena}) and the flat packet
    representation ({!Newton_packet.Flat}) carry the parallel replay
    hot path, so their two contracts are checked exhaustively over
    random packet streams:

    - {e exact partition}: [Arena.build] places every input packet in
      exactly one shard arena — no duplicates, no drops — and within a
      shard, arena order is stream order;
    - {e lossless representation}: a [Packet.t] survives the
      record→arena→record round trip field-for-field, timestamp
      included.

    Plus the supporting equivalences: the flow 5-tuple hash fast path
    equals the generic vector hash, and [Engine.process_flat] over an
    arena is observationally the per-packet interpreter. *)

open Newton_packet
open Newton_runtime

(* ---------------- random packet streams ---------------- *)

(* Random values per field, masked to the field's width by Packet.set;
   a small value pool makes shard collisions (several packets of one
   flow) likely, which is what the order property needs to bite. *)
let gen_packet =
  QCheck.Gen.(
    let* ts = float_bound_inclusive 2.0 in
    let* fields =
      array_size (return Field.count) (int_bound ((1 lsl 30) - 1))
    in
    return
      (let p = Packet.create ~ts () in
       List.iter
         (fun f -> Packet.set p f (fields.(Field.index f) land 0xff))
         Field.all;
       p))

let gen_packets = QCheck.Gen.(array_size (int_bound 400) gen_packet)

let arb_packets =
  QCheck.make
    ~print:(fun ps -> Printf.sprintf "<%d packets>" (Array.length ps))
    gen_packets

let packet_equal a b =
  Packet.ts a = Packet.ts b
  && List.for_all (fun f -> Packet.get a f = Packet.get b f) Field.all

(* A packet's identity within a stream: its position.  The partition
   property compares positions, not field values, so duplicate packets
   cannot mask a drop-plus-double-count. *)
let positions_by_shard sharder packets =
  let jobs = Shard.jobs sharder in
  let by_shard = Array.make jobs [] in
  Array.iteri
    (fun i p ->
      let s = Shard.assign sharder p in
      by_shard.(s) <- i :: by_shard.(s))
    packets;
  Array.map List.rev by_shard

(* ---------------- properties ---------------- *)

let prop_partition_exact =
  QCheck.Test.make ~count:100 ~name:"arena build partitions exactly, in order"
    (QCheck.pair arb_packets (QCheck.int_range 1 8))
    (fun (packets, jobs) ->
      let sharder = Shard.make ~jobs Shard.Flow in
      let arenas = Arena.build sharder packets in
      Array.length arenas = jobs
      && Arena.total_packets arenas = Array.length packets
      && Array.for_all2
           (fun arena expected ->
             (* Shard arena = exactly the stream's packets assigned to
                this shard, in stream order, field-for-field. *)
             Flat.length arena = List.length expected
             && List.for_all2
                  (fun slot pos ->
                    packet_equal (Flat.to_packet arena slot) packets.(pos))
                  (List.init (Flat.length arena) Fun.id)
                  expected)
           arenas
           (positions_by_shard sharder packets))

let prop_flat_roundtrip =
  QCheck.Test.make ~count:200 ~name:"flat arena round-trips packets exactly"
    arb_packets (fun packets ->
      let flat = Flat.of_packets packets in
      Flat.length flat = Array.length packets
      && Array.for_all2 packet_equal (Flat.to_packets flat) packets
      && Array.for_all
           (fun i ->
             Flat.ts flat i = Packet.ts packets.(i)
             && List.for_all
                  (fun f -> Flat.get flat i f = Packet.get packets.(i) f)
                  Field.all)
           (Array.init (Array.length packets) Fun.id))

let prop_hash5 =
  QCheck.Test.make ~count:500 ~name:"hash5 equals hash_vector on 5-tuples"
    QCheck.(
      pair (int_range 0 1000)
        (list_of_size (QCheck.Gen.return 5) (int_range 0 ((1 lsl 32) - 1))))
    (fun (seed, keys) ->
      match keys with
      | [ a; b; c; d; e ] ->
          Newton_sketch.Hash.hash5 ~seed a b c d e
          = Newton_sketch.Hash.hash_vector ~seed (Array.of_list keys)
      | _ -> false)

(* ---------------- process_flat differential ---------------- *)

(* Arena replay through the compiled program vs the per-packet
   interpreter, on a real attack trace with a stateful catalog query:
   same reports (order and payload), same register state, same packet
   count.  The sharded variants of this differential live in
   test_parallel.ml; this one pins the single-engine contract of
   [process_flat] itself. *)
let test_process_flat_differential () =
  let trace =
    Newton_trace.Gen.generate ~attacks:Newton_trace.Attack.default_suite
      ~seed:11
      (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like 500)
  in
  let packets = Newton_trace.Gen.packets trace in
  let compiled =
    Newton_compiler.Compose.compile
      ~options:
        { Newton_compiler.Decompose.default_options with registers = 65536 }
      (Newton_query.Catalog.q1 ())
  in
  let interp = Engine.create ~switch_id:0 () in
  let flat_e = Engine.create ~switch_id:0 () in
  ignore (Engine.install interp compiled);
  ignore (Engine.install flat_e compiled);
  Array.iter (Engine.process_packet interp) packets;
  Engine.process_flat flat_e (Arena.build1 packets);
  Alcotest.(check int)
    "packets seen" (Engine.packets_seen interp) (Engine.packets_seen flat_e);
  let show r = Newton_query.Report.to_string r in
  Alcotest.(check (list string))
    "report streams identical"
    (List.map show (Engine.reports interp))
    (List.map show (Engine.reports flat_e))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_partition_exact; prop_flat_roundtrip; prop_hash5 ]
  @ [
      Alcotest.test_case "process_flat differential vs interpreter" `Quick
        test_process_flat_differential;
    ]
