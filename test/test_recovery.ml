(** Switch-failure recovery: state-carrying re-placement, the chaos
    differential harness, and the hot-path regressions that rode along
    (shard assignment, merge-op strictness). *)

open Newton_network
open Newton_controller
open Newton_runtime

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let compile = Newton_compiler.Compose.compile
let q4 () = compile (Newton_query.Catalog.q4 ())

let gen_trace ?(attacks = true) ?(flows = 1500) ~seed () =
  Newton_trace.Gen.generate
    ~attacks:(if attacks then Newton_trace.Attack.default_suite else [])
    ~seed
    (Newton_trace.Profile.with_flows Newton_trace.Profile.caida_like flows)

let last_ts trace =
  let pkts = Newton_trace.Gen.packets trace in
  Newton_packet.Packet.ts pkts.(Array.length pkts - 1)

let replay_deploy dep topo trace =
  Newton_trace.Gen.iter
    (fun pkt ->
      let src_host =
        Chaos.host_of_ip topo (Newton_packet.Packet.get pkt Newton_packet.Field.Src_ip)
      in
      let dst_host =
        Chaos.host_of_ip topo (Newton_packet.Packet.get pkt Newton_packet.Field.Dst_ip)
      in
      Deploy.process_packet dep ~src_host ~dst_host pkt)
    trace

(* ---------------- shard assignment (hot-path regression) ---------------- *)

(* [abs min_int = min_int]: a raw hash of [min_int] used to produce a
   negative shard index and crash the replay engine. *)
let test_shard_min_int () =
  let sharder = Shard.make ~jobs:3 (Shard.Custom (fun _ -> min_int)) in
  let pkt = Newton_packet.Packet.create ~ts:0.0 () in
  let s = Shard.assign sharder pkt in
  checkb "in range" true (s >= 0 && s < 3)

let test_shard_negative_raw () =
  let sharder = Shard.make ~jobs:4 (Shard.Custom (fun _ -> -7)) in
  let pkt = Newton_packet.Packet.create ~ts:0.0 () in
  let s = Shard.assign sharder pkt in
  checkb "in range" true (s >= 0 && s < 4)

(* ---------------- Placement ?usable ---------------- *)

let test_placement_usable_blocks_switch () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let p =
    Placement.place ~usable:(fun s -> s <> 2) ~stages_per_switch:4 ~topo (q4 ())
  in
  Alcotest.(check (list int)) "failed switch gets nothing" []
    (Placement.slices_of p 2);
  (* The backup chain still carries every depth. *)
  checkb "slice 2 survives on backup" true
    (List.mem 2 (Placement.slices_of p 3) || List.mem 2 (Placement.slices_of p 4))

let test_placement_usable_exact_matches_memo () =
  let topo = Topo.bypass ~short:2 ~long:3 () in
  let usable s = s <> 3 in
  let pe = Placement.place ~mode:`Exact ~usable ~stages_per_switch:4 ~topo (q4 ()) in
  let pm = Placement.place ~mode:`Memo ~usable ~stages_per_switch:4 ~topo (q4 ()) in
  Array.iteri
    (fun s ds -> Alcotest.(check (list int)) "exact = memo" ds (Placement.slices_of pm s))
    pe.Placement.slices

(* ---------------- Engine.absorb_state ---------------- *)

(* Split one trace across two engines (same installed query), absorb one
   into the other, and check the merge is register-for-register the ALU
   merge of the two banks. *)
let test_absorb_state_is_alu_merge () =
  let compiled = q4 () in
  let mk () =
    let e = Engine.create ~switch_id:0 () in
    ignore (Engine.install e ~uid:7 compiled);
    e
  in
  let a = mk () and b = mk () in
  let trace = gen_trace ~seed:11 () in
  Array.iteri
    (fun i pkt -> Engine.process_packet (if i mod 2 = 0 then a else b) pkt)
    (Newton_trace.Gen.packets trace);
  let ia = Option.get (Engine.find_instance a 7) in
  let ib = Option.get (Engine.find_instance b 7) in
  checki "same final window" (Engine.instance_window ia) (Engine.instance_window ib);
  let op_of = Merge.array_ops ia in
  let expected =
    List.map
      (fun (key, arr_a) ->
        let arr_b = Option.get (Engine.instance_array ib key) in
        let op = Option.get (op_of key) in
        (key, Newton_sketch.Register_array.merge ~op arr_a arr_b))
      (Engine.instance_arrays ia)
  in
  let banks, _cells = Engine.absorb_state ~op_of ~src:ib ~dst:ia in
  checkb "merged at least one bank" true (banks > 0);
  List.iter
    (fun (key, want) ->
      let got = Option.get (Engine.instance_array ia key) in
      for i = 0 to Newton_sketch.Register_array.size want - 1 do
        checki "register" (Newton_sketch.Register_array.get want i)
          (Newton_sketch.Register_array.get got i)
      done)
    expected

let test_absorb_state_stale_src_is_noop () =
  let compiled = q4 () in
  let mk () =
    let e = Engine.create ~switch_id:0 () in
    ignore (Engine.install e ~uid:7 compiled);
    e
  in
  let a = mk () and b = mk () in
  let trace = gen_trace ~flows:300 ~seed:12 () in
  (* Only [a] processes, so its window advances past [b]'s window 0. *)
  Newton_trace.Gen.iter (Engine.process_packet a) trace;
  let ia = Option.get (Engine.find_instance a 7) in
  let ib = Option.get (Engine.find_instance b 7) in
  checkb "a rolled forward" true (Engine.instance_window ia > 0);
  let before = List.map (fun (k, arr) -> (k, Newton_sketch.Register_array.copy arr))
      (Engine.instance_arrays ia)
  in
  let banks, cells = Engine.absorb_state ~op_of:(Merge.array_ops ia) ~src:ib ~dst:ia in
  checki "no banks" 0 banks;
  checki "no cells" 0 cells;
  List.iter
    (fun (key, want) ->
      let got = Option.get (Engine.instance_array ia key) in
      for i = 0 to Newton_sketch.Register_array.size want - 1 do
        checki "register untouched" (Newton_sketch.Register_array.get want i)
          (Newton_sketch.Register_array.get got i)
      done)
    before

(* ---------------- fail_switch state migration ---------------- *)

let slice_uid uid d = (uid * 1000) + d

(* Fail the primary-chain switch mid-trace and check the displaced
   slice's bank lands register-identical on every surviving host. *)
let test_fail_switch_migrates_register_identical () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let dep = Deploy.create topo in
  let uid, _ = Deploy.deploy ~stages_per_switch:4 dep (q4 ()) in
  let trace = gen_trace ~seed:21 () in
  replay_deploy dep topo trace;
  let src_inst =
    Option.get (Engine.find_instance (Deploy.engine dep 2) (slice_uid uid 2))
  in
  let src_copy =
    List.map
      (fun (k, arr) -> (k, Newton_sketch.Register_array.copy arr))
      (Engine.instance_arrays src_inst)
  in
  checkb "failed switch accumulated state" true
    (List.exists
       (fun (_, arr) -> Newton_sketch.Register_array.occupancy arr > 0)
       src_copy);
  let r = Option.get (Deploy.fail_switch dep 2) in
  checkb "slices migrated" true (r.Deploy.r_slices_migrated > 0);
  checkb "cells moved" true (r.Deploy.r_cells_moved > 0);
  checki "no software fallback" 0 r.Deploy.r_software_fallbacks;
  (* Both backup-chain hosts of slice 2 hold the migrated bank: their
     own state was empty (no traffic crossed them), so post-migration
     they are register-identical to the failed switch's bank. *)
  List.iter
    (fun host ->
      let dst =
        Option.get (Engine.find_instance (Deploy.engine dep host) (slice_uid uid 2))
      in
      checki "window aligned" (Engine.instance_window src_inst)
        (Engine.instance_window dst);
      List.iter
        (fun (key, want) ->
          let got = Option.get (Engine.instance_array dst key) in
          for i = 0 to Newton_sketch.Register_array.size want - 1 do
            checki "migrated register"
              (Newton_sketch.Register_array.get want i)
              (Newton_sketch.Register_array.get got i)
          done)
        src_copy)
    [ 3; 4 ];
  (* The dead engine no longer holds the instance. *)
  checkb "failed engine cleared" true
    (Engine.find_instance (Deploy.engine dep 2) (slice_uid uid 2) = None)

let test_fail_switch_idempotent_and_validated () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let dep = Deploy.create topo in
  ignore (Deploy.deploy ~stages_per_switch:4 dep (q4 ()));
  checkb "first fail recovers" true (Deploy.fail_switch dep 2 <> None);
  checkb "second fail is a no-op" true (Deploy.fail_switch dep 2 = None);
  checkb "repair of a live switch is a no-op" true (Deploy.repair_switch dep 3 = None);
  checkb "rejects hosts" true
    (try ignore (Deploy.fail_switch dep 99); false with Invalid_argument _ -> true)

let test_repair_switch_rejoins () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let dep = Deploy.create topo in
  let uid, _ = Deploy.deploy ~stages_per_switch:4 dep (q4 ()) in
  ignore (Deploy.fail_switch dep 2);
  Alcotest.(check (list int)) "marked failed" [ 2 ] (Deploy.failed_switches dep);
  let r = Option.get (Deploy.repair_switch dep 2) in
  checkb "repair reinstalls rules" true (r.Deploy.r_rules_installed > 0);
  checkb "repair pays reconfiguration latency" true (r.Deploy.r_latency > 0.0);
  checkb "unmarked" true (Deploy.failed_switches dep = []);
  checkb "slice reinstalled on the repaired switch" true
    (Engine.find_instance (Deploy.engine dep 2) (slice_uid uid 2) <> None);
  (* Traffic routes over the primary chain again. *)
  let path =
    Option.get (Route.switch_path (Deploy.route dep) ~src_host:5 ~dst_host:6)
  in
  checkb "primary path restored" true (List.mem 2 path)

(* Failing every dataplane host of a slice degrades it to the software
   engine, carrying the state along. *)
let test_software_fallback_when_no_host_survives () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let dep = Deploy.create topo in
  ignore (Deploy.deploy ~stages_per_switch:4 dep (q4 ()));
  let trace = gen_trace ~flows:800 ~seed:23 () in
  replay_deploy dep topo trace;
  let r2 = Option.get (Deploy.fail_switch dep 2) in
  checkb "first failure migrates to the backup chain" true
    (r2.Deploy.r_slices_migrated > 0);
  ignore (Deploy.fail_switch dep 3);
  let r = Option.get (Deploy.fail_switch dep 4) in
  (* With the whole interior dead, slice 2 has no dataplane host left:
     its state continues in the software engine instead of migrating. *)
  checkb "software fallback engaged" true (r.Deploy.r_software_fallbacks > 0);
  checki "nothing left to migrate to" 0 r.Deploy.r_slices_migrated

let test_sole_mode_fail_repair () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let dep = Deploy.create topo in
  let uid, _ = Deploy.deploy ~mode:`Sole dep (q4 ()) in
  checkb "installed" true
    (Engine.find_instance (Deploy.engine dep 2) (slice_uid uid 1) <> None);
  let r = Option.get (Deploy.fail_switch dep 2) in
  checki "no migration in sole mode" 0 r.Deploy.r_slices_migrated;
  checkb "instance dropped" true
    (Engine.find_instance (Deploy.engine dep 2) (slice_uid uid 1) = None);
  ignore (Deploy.repair_switch dep 2);
  checkb "instance reinstalled" true
    (Engine.find_instance (Deploy.engine dep 2) (slice_uid uid 1) <> None)

(* ---------------- chaos differential ---------------- *)

let catalog () = Newton_query.Catalog.all ()

(* Acceptance bar: failing the single primary-chain switch leaves all
   nine catalog queries reporting identically to the failure-free run —
   zero unexplained diffs, every query still present in the output. *)
let test_differential_all_queries_single_fail () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let trace = gen_trace ~seed:42 () in
  let events =
    [ { Chaos.at = last_ts trace /. 2.0; switch = 2; action = `Fail } ]
  in
  let res =
    Chaos.run ~stages_per_switch:4 ~topo ~queries:(catalog ()) ~events trace
  in
  checkb "baseline produced reports" true (res.Chaos.baseline_reports > 0);
  checki "no unexplained diffs" 0 (List.length (Chaos.unexplained res));
  checki "no diffs at all on deterministic reroute" 0 (List.length res.Chaos.diffs);
  checki "all reports matched" res.Chaos.baseline_reports res.Chaos.matched;
  let migrated =
    List.fold_left
      (fun acc (r : Deploy.recovery) -> acc + r.Deploy.r_slices_migrated)
      0 res.Chaos.recoveries
  in
  checkb "recovery migrated state" true (migrated > 0)

let test_differential_fail_then_repair () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let trace = gen_trace ~seed:43 () in
  let t = last_ts trace in
  let events =
    [
      { Chaos.at = t /. 3.0; switch = 2; action = `Fail };
      { Chaos.at = 2.0 *. t /. 3.0; switch = 2; action = `Repair };
    ]
  in
  let res =
    Chaos.run ~stages_per_switch:4 ~topo ~queries:(catalog ()) ~events trace
  in
  checkb "baseline produced reports" true (res.Chaos.baseline_reports > 0);
  checki "no unexplained diffs" 0 (List.length (Chaos.unexplained res));
  checki "two recovery events" 2 (List.length res.Chaos.recoveries);
  let repair =
    List.find (fun (r : Deploy.recovery) -> r.Deploy.r_event = `Repair)
      res.Chaos.recoveries
  in
  checkb "repair reinstalled the primary switch" true
    (repair.Deploy.r_rules_installed > 0)

let test_chaos_json_artifact_shape () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let trace = gen_trace ~flows:600 ~seed:44 () in
  let events =
    [ { Chaos.at = last_ts trace /. 2.0; switch = 2; action = `Fail } ]
  in
  let res =
    Chaos.run ~stages_per_switch:4 ~topo
      ~queries:[ Newton_query.Catalog.q4 () ]
      ~events trace
  in
  match Chaos.to_json res with
  | Newton_util.Json.Obj fields ->
      List.iter
        (fun k -> checkb k true (List.mem_assoc k fields))
        [ "topology"; "queries"; "events"; "baseline_reports"; "chaos_reports";
          "matched"; "diffs"; "explained"; "unexplained"; "recoveries";
          "zero_unexplained_loss" ]
  | _ -> Alcotest.fail "chaos artifact must be a JSON object"

(* ---------------- merge strictness / ordering ---------------- *)

let test_instance_arrays_sorted_and_merge_preserves_order () =
  let e = Engine.create ~switch_id:0 () in
  ignore (Engine.install e ~uid:3 (q4 ()));
  let inst = Option.get (Engine.find_instance e 3) in
  let keys = List.map fst (Engine.instance_arrays inst) in
  checkb "sorted" true (List.sort compare keys = keys);
  let merged = Merge.instance_arrays [ inst; inst ] in
  Alcotest.(check (list (triple int int int))) "merge preserves engine order"
    keys (List.map fst merged)

(* ---------------- recovery telemetry keys ---------------- *)

let test_recovery_stats_keys () =
  let open Newton_telemetry in
  let sink = Stats.create () in
  Stats.bump sink Stats.Switch_failures 2;
  Stats.bump sink Stats.Slices_migrated 5;
  checki "failures" 2 (Stats.get sink Stats.Switch_failures);
  checki "migrated" 5 (Stats.get sink Stats.Slices_migrated);
  (* Dense, collision-free index space. *)
  let idx = List.map Stats.index Stats.all in
  checki "indices dense" (List.length Stats.all)
    (List.length (List.sort_uniq compare idx));
  List.iter
    (fun k -> checkb "named" true (String.length (Stats.name k) > 0))
    [ Stats.Switch_failures; Stats.Switch_repairs; Stats.Slices_migrated;
      Stats.State_cells_moved; Stats.Software_fallbacks ]

let test_controller_snapshot_has_recovery_counters () =
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let dep = Deploy.create topo in
  ignore (Deploy.deploy ~stages_per_switch:4 dep (q4 ()));
  ignore (Deploy.fail_switch dep 2);
  let snap = Deploy.snapshot dep in
  let total name = Newton_telemetry.Snapshot.total name snap in
  checkb "switch_failures counted" true
    (total "newton_switch_failures_total" >= 1.0)

(* ---------------- facade ---------------- *)

let test_facade_fail_repair () =
  let open Newton_core.Newton in
  let topo = Topo.bypass ~short:1 ~long:2 () in
  let net = Network.create topo in
  ignore (Network.add_query ~stages_per_switch:4 net (Newton_query.Catalog.q4 ()));
  let r = Option.get (Network.fail_switch net 2) in
  checkb "facade fail recovers" true (r.Network.Deploy.r_event = `Fail);
  Alcotest.(check (list int)) "failed listed" [ 2 ] (Network.failed_switches net);
  checkb "facade repair" true (Network.repair_switch net 2 <> None);
  checkb "reports reconcile" true (Network.reconciled_reports net = [])

let suite =
  [
    ("shard assign: min_int raw hash", `Quick, test_shard_min_int);
    ("shard assign: negative raw hash", `Quick, test_shard_negative_raw);
    ("placement: usable blocks failed switch", `Quick, test_placement_usable_blocks_switch);
    ("placement: usable exact = memo", `Quick, test_placement_usable_exact_matches_memo);
    ("absorb_state = ALU merge", `Quick, test_absorb_state_is_alu_merge);
    ("absorb_state: stale source is a no-op", `Quick, test_absorb_state_stale_src_is_noop);
    ("fail_switch migrates register-identical state", `Quick,
     test_fail_switch_migrates_register_identical);
    ("fail/repair idempotence + validation", `Quick, test_fail_switch_idempotent_and_validated);
    ("repair_switch rejoins cleanly", `Quick, test_repair_switch_rejoins);
    ("software fallback when no host survives", `Quick,
     test_software_fallback_when_no_host_survives);
    ("sole mode fail/repair", `Quick, test_sole_mode_fail_repair);
    ("differential: 9 queries, single fail", `Quick, test_differential_all_queries_single_fail);
    ("differential: fail then repair", `Quick, test_differential_fail_then_repair);
    ("chaos JSON artifact shape", `Quick, test_chaos_json_artifact_shape);
    ("instance_arrays sorted; merge preserves order", `Quick,
     test_instance_arrays_sorted_and_merge_preserves_order);
    ("recovery telemetry keys", `Quick, test_recovery_stats_keys);
    ("controller snapshot carries recovery counters", `Quick,
     test_controller_snapshot_has_recovery_counters);
    ("facade fail/repair", `Quick, test_facade_fail_repair);
  ]
