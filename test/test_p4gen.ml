(** Tests for the P4 program generator and the runtime rule generator. *)

open Newton_p4gen

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_occurrences s sub =
  let m = String.length sub in
  let rec go i acc =
    if i + m > String.length s then acc
    else if String.sub s i m = sub then go (i + m) (acc + 1)
    else go (i + 1) acc
  in
  if m = 0 then 0 else go 0 0

let small_layout = { Emit.stages = 3; registers = 1024; rules_per_table = 64 }

(* ---------------- program emission ---------------- *)

let test_program_structure () =
  let p = Emit.program ~layout:small_layout () in
  List.iter
    (fun piece -> checkb ("contains " ^ piece) true (contains p piece))
    [ "#include <v1model.p4>"; "header sp_t"; "struct metadata_t";
      "parser NewtonParser"; "control NewtonIngress"; "table newton_init";
      "table newton_fin"; "V1Switch"; "NewtonDeparser" ]

let test_program_table_counts () =
  let p = Emit.program ~layout:small_layout () in
  (* 3 stages x 2 sets per module kind (K, H, S, R, plus R's trigger T) *)
  checki "K tables" 6 (count_occurrences p "table newton_k_s");
  checki "H tables" 6 (count_occurrences p "table newton_h_s");
  checki "S tables" 6 (count_occurrences p "table newton_s_s");
  checki "R tables" 6 (count_occurrences p "table newton_r_s");
  checki "T tables" 6 (count_occurrences p "table newton_t_s");
  (* one global register file sized per (stage, set) bank *)
  checki "register file" 1
    (count_occurrences p "register<bit<32>>(6144) newton_state;")

let test_program_sp_layout () =
  let p = Emit.program ~layout:small_layout () in
  (* The SP header carries the full per-set hash/state results plus
     the global results between hops. *)
  checkb "class id 16 bits" true (contains p "bit<16> class_id;");
  checkb "hash fields 32 bits" true (contains p "bit<32> hash1;");
  checkb "state fields 32 bits" true (contains p "bit<32> state1;");
  checkb "fin exports hash results into the SP header" true
    (contains p "hdr.sp.hash0 = meta.hash0_result;");
  checkb "fin emits on the SP ethertype" true (contains p "0x88B5")

let test_program_applies_all_modules () =
  let p = Emit.program ~layout:small_layout () in
  (* every module table (5 kinds x 3 stages x 2 sets) is applied
     exactly once in the control flow *)
  checki "apply calls" 30 (count_occurrences p "_m0.apply()" + count_occurrences p "_m1.apply()")

let test_program_scales_with_layout () =
  let small = Emit.program ~layout:small_layout () in
  let large = Emit.program ~layout:{ small_layout with Emit.stages = 12 } () in
  checkb "more stages emit more code" true (String.length large > String.length small)

let test_program_rejects_bad_layout () =
  checkb "rejects zero stages" true
    (try ignore (Emit.program ~layout:{ small_layout with Emit.stages = 0 } ()); false
     with Invalid_argument _ -> true)

let test_table_names_stable () =
  Alcotest.(check string) "table name scheme" "newton_s_s4_m1"
    (Emit.table_name ~stage:4 ~kind:Newton_dataplane.Module_cost.S ~set:1)

(* ---------------- rule generation ---------------- *)

let compile = Newton_compiler.Compose.compile

let test_rules_cover_compiled_slots () =
  (* Every used module slot of every catalog query gets at least one
     entry in its module table, and every query configures the
     classifier — the rule document fully deploys what the compiler
     placed. *)
  List.iter
    (fun q ->
      let c = compile q in
      let entries = Rules.entries_exn c in
      let used =
        Array.to_list c.Newton_compiler.Compose.branches
        |> List.concat
        |> List.filter (fun (s : Newton_compiler.Ir.slot) ->
               s.Newton_compiler.Ir.used && not s.Newton_compiler.Ir.removed)
      in
      checkb (Printf.sprintf "Q%d: has used slots" q.Newton_query.Ast.id) true
        (used <> []);
      List.iter
        (fun (s : Newton_compiler.Ir.slot) ->
          let table =
            Emit.table_name ~stage:s.Newton_compiler.Ir.stage
              ~kind:s.Newton_compiler.Ir.kind ~set:s.Newton_compiler.Ir.meta
          in
          (* a threshold/report R configures its paired trigger table
             instead of the R table itself *)
          let trigger =
            Emit.trigger_name ~stage:s.Newton_compiler.Ir.stage
              ~set:s.Newton_compiler.Ir.meta
          in
          checkb
            (Printf.sprintf "Q%d: %s configured" q.Newton_query.Ast.id table)
            true
            (List.exists
               (fun (e : Rules.entry) ->
                 e.Rules.table = table || e.Rules.table = trigger)
               entries))
        used;
      checkb
        (Printf.sprintf "Q%d: classifier configured" q.Newton_query.Ast.id)
        true
        (List.exists
           (fun (e : Rules.entry) -> e.Rules.table = "newton_init")
           entries))
    (Newton_query.Catalog.all ())

let test_rules_reference_emitted_tables () =
  let layout = { Emit.default_layout with Emit.stages = 12 } in
  let p = Emit.program ~layout () in
  let c = compile (Newton_query.Catalog.q4 ()) in
  List.iter
    (fun (e : Rules.entry) ->
      checkb ("emitted program declares " ^ e.Rules.table) true
        (contains p ("table " ^ e.Rules.table)))
    (Rules.entries_exn c)

let test_rules_init_entry_shape () =
  let c = compile (Newton_query.Catalog.q1 ()) in
  match List.filter (fun (e : Rules.entry) -> e.Rules.table = "newton_init") (Rules.entries_exn c) with
  | [ e ] ->
      Alcotest.(check string) "action" "set_class" e.Rules.action;
      checkb "ternary matches on proto+flags" true (List.length e.Rules.matches = 2)
  | l -> Alcotest.failf "expected 1 init entry, got %d" (List.length l)

let test_rules_k_masks () =
  let c = compile (Newton_query.Catalog.q1 ()) in
  let k_entries =
    List.filter
      (fun (e : Rules.entry) -> contains e.Rules.action "_select")
      (Rules.entries_exn c)
  in
  checkb "K entries exist" true (k_entries <> []);
  List.iter
    (fun (e : Rules.entry) ->
      (* Q1 selects dip: its mask parameter is full, others zero. *)
      let full =
        List.filter (fun (_, v) -> v = "0xffffffff") e.Rules.params
      in
      checki "exactly one selected field" 1 (List.length full))
    k_entries

let test_rules_threshold_becomes_range () =
  let c = compile (Newton_query.Catalog.q1 ~th:30 ()) in
  let has_range =
    List.exists
      (fun (e : Rules.entry) ->
        List.exists
          (function Rules.M_range ("meta.global_result", 31, _) -> true | _ -> false)
          e.Rules.matches)
      (Rules.entries_exn c)
  in
  checkb "count > 30 compiles to a [31, max] range match" true has_range

let test_rules_distinct_classes_per_branch () =
  let c = compile (Newton_query.Catalog.q6 ()) in
  let inits =
    List.filter (fun (e : Rules.entry) -> e.Rules.table = "newton_init") (Rules.entries_exn c)
  in
  let classes =
    List.filter_map
      (fun (e : Rules.entry) -> List.assoc_opt "class_id" e.Rules.params)
      inits
    |> List.sort_uniq compare
  in
  checki "two branches, two traffic classes" 2 (List.length classes)

let test_rules_json_renders () =
  let c = compile (Newton_query.Catalog.q4 ()) in
  let json = Rules.to_json (Rules.entries_exn c) in
  checkb "json array" true (String.length json > 2 && json.[0] = '[');
  checkb "mentions the classifier" true (contains json "newton_init");
  checkb "no unescaped quotes in fields" true (not (contains json "\"\"\""));
  (* entry count = line count of entries *)
  checki "one line per entry"
    (List.length (Rules.entries_exn c))
    (count_occurrences json "{\"table\"")

let test_rules_fit_emitted_table_sizes () =
  (* Per-table entry counts of a full catalog deployment stay within the
     emitted table sizes. *)
  let per_table = Hashtbl.create 64 in
  List.iteri
    (fun i q ->
      List.iter
        (fun (e : Rules.entry) ->
          Hashtbl.replace per_table e.Rules.table
            (1 + Option.value (Hashtbl.find_opt per_table e.Rules.table) ~default:0))
        (Rules.entries_exn ~class_id:(1 + (i * 10)) (compile q)))
    (Newton_query.Catalog.all ());
  let cap = Emit.default_layout.Emit.rules_per_table in
  Hashtbl.iter
    (fun table n ->
      let limit = if table = "newton_init" then 4 * cap else cap in
      checkb (table ^ " within size") true (n <= limit))
    per_table

(* ---------------- field-mapping totality (all 18 constructors) ----- *)

let test_field_mappings_total () =
  let fields = Newton_packet.Field.all in
  checki "catalog of fields" 18 (List.length fields);
  let p = Emit.program () in
  List.iter
    (fun f ->
      (* Every field has a classifier spelling, a canonical metadata
         spelling, per-set key copies — and the emitted program
         declares each of them.  A new Field constructor that reaches
         main without growing these maps fails here, not at a switch
         deployment. *)
      let init = Rules.init_field_name f in
      let meta = Emit.meta_field f in
      Alcotest.(check string)
        (Newton_packet.Field.to_string f ^ " classifier = canonical meta")
        meta init;
      checkb (meta ^ " declared in metadata_t") true
        (contains p
           (Printf.sprintf "bit<32> f_%s;" (Emit.field_slug f)));
      List.iter
        (fun set ->
          let key = Emit.key_field ~set f in
          checkb (key ^ " key copy declared") true
            (contains p
               (Printf.sprintf "bit<32> key%d_%s;" set (Emit.field_slug f))))
        [ 0; 1 ];
      (* the report struct carries every key copy positionally *)
      checkb ("report field k_" ^ Emit.field_slug f) true
        (contains p (Printf.sprintf "bit<32> k_%s;" (Emit.field_slug f))))
    fields

let test_descriptor_encoding () =
  let key f = { Newton_query.Ast.field = f; mask = 0xFFFFFFFF } in
  checki "empty key list" 0 (Rules.descriptor []);
  (* position p holds Field.index + 1 in 5 bits, low-to-high *)
  checki "dip then sport"
    ((Newton_packet.Field.index Newton_packet.Field.Dst_ip + 1)
    lor ((Newton_packet.Field.index Newton_packet.Field.Src_port + 1) lsl 5))
    (Rules.descriptor [ key Newton_packet.Field.Dst_ip; key Newton_packet.Field.Src_port ]);
  (* the highest field index still fits its 5-bit position *)
  let last = List.nth Newton_packet.Field.all 17 in
  checki "last field code fits 5 bits"
    (Newton_packet.Field.index last + 1)
    (Rules.descriptor [ key last ] land 0x1F)

(* ---------------- typed issues ---------------- *)

let test_registers_exhausted_is_typed () =
  (* A one-word register file cannot hold any catalog query's state:
     the generator reports a typed issue, never an exception. *)
  let alloc = Rules.allocator ~state_words:1 Emit.default_layout in
  match Rules.entries ~alloc (compile (Newton_query.Catalog.q1 ())) with
  | Error (Rules.Registers_exhausted { capacity = 1; needed }) ->
      checkb "needed exceeds capacity" true (needed > 1)
  | Error i -> Alcotest.failf "unexpected issue: %s" (Rules.issue_to_string i)
  | Ok _ -> Alcotest.fail "expected Registers_exhausted"

let test_entries_exn_raises_on_issue () =
  let alloc = Rules.allocator ~state_words:1 Emit.default_layout in
  checkb "entries_exn raises Invalid_argument" true
    (try
       ignore (Rules.entries_exn ~alloc (compile (Newton_query.Catalog.q1 ())));
       false
     with Invalid_argument _ -> true)

let test_shared_allocator_co_residency () =
  (* Two queries carved from one allocator never share state words. *)
  let alloc = Rules.allocator ~state_words:max_int Emit.default_layout in
  let q1 = compile (Newton_query.Catalog.q1 ()) in
  let e1 = Rules.entries_exn ~class_id:1 ~alloc q1 in
  let w1 = Rules.words_used alloc in
  let e4 = Rules.entries_exn ~class_id:11 ~alloc (compile (Newton_query.Catalog.q4 ())) in
  let w2 = Rules.words_used alloc in
  checkb "first query allocates" true (w1 > 0);
  checkb "second query allocates beyond the first" true (w2 > w1);
  let bases entries =
    List.concat_map
      (fun (e : Rules.entry) ->
        match List.assoc_opt "base" e.Rules.params with
        | Some b -> [ int_of_string b ]
        | None -> [])
      entries
  in
  List.iter
    (fun b4 -> checkb "offsets disjoint" true (b4 >= w1))
    (List.filter (fun b -> b > 0) (bases e4));
  ignore e1

let suite =
  [
    ("program structure", `Quick, test_program_structure);
    ("program table counts", `Quick, test_program_table_counts);
    ("program sp layout", `Quick, test_program_sp_layout);
    ("program applies all modules", `Quick, test_program_applies_all_modules);
    ("program scales with layout", `Quick, test_program_scales_with_layout);
    ("program rejects bad layout", `Quick, test_program_rejects_bad_layout);
    ("table names stable", `Quick, test_table_names_stable);
    ("rules cover compiled slots", `Quick, test_rules_cover_compiled_slots);
    ("rules reference emitted tables", `Quick, test_rules_reference_emitted_tables);
    ("rules init entry shape", `Quick, test_rules_init_entry_shape);
    ("rules k masks", `Quick, test_rules_k_masks);
    ("rules threshold becomes range", `Quick, test_rules_threshold_becomes_range);
    ("rules distinct classes per branch", `Quick, test_rules_distinct_classes_per_branch);
    ("rules json renders", `Quick, test_rules_json_renders);
    ("rules fit emitted table sizes", `Quick, test_rules_fit_emitted_table_sizes);
    ("field mappings total over all 18 fields", `Quick, test_field_mappings_total);
    ("descriptor encoding", `Quick, test_descriptor_encoding);
    ("registers exhausted is typed", `Quick, test_registers_exhausted_is_typed);
    ("entries_exn raises on issue", `Quick, test_entries_exn_raises_on_issue);
    ("shared allocator co-residency", `Quick, test_shared_allocator_co_residency);
  ]
